// Quickstart: the five-minute tour of the lcpower public API.
//
//  1. generate a scientific field,
//  2. compress it with SZ and ZFP under an absolute error bound,
//  3. measure the energy of that compression on a simulated CloudLab node
//     across its DVFS range,
//  4. fit the paper's power model P(f) = a f^b + c,
//  5. apply the Eqn 3 tuning rule and report the savings.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "compress/common/metrics.hpp"
#include "compress/common/registry.hpp"
#include "core/model_tables.hpp"
#include "core/platform.hpp"
#include "core/sweep.hpp"
#include "data/generators.hpp"
#include "model/power_law.hpp"
#include "tuning/optimizer.hpp"
#include "tuning/rule.hpp"

int main() {
  using namespace lcp;

  // 1. A CESM-ATM-like climate field (13 levels of 90x180 lat-lon).
  const auto field = data::generate_cesm_atm(13, 90, 180, /*seed=*/42);
  std::printf("field: %s  %s  %.1f MB\n", field.name().c_str(),
              field.dims().to_string().c_str(), field.size_bytes().mb());

  // 2. Compress with both codecs at a 1e-3 absolute bound and verify.
  const auto bound = compress::ErrorBound::absolute(1e-3);
  for (compress::CodecId id : compress::all_codecs()) {
    const auto codec = compress::make_compressor(id);
    const auto report = compress::round_trip(*codec, field, bound);
    if (!report) {
      std::fprintf(stderr, "%s failed: %s\n", codec->name().c_str(),
                   report.status().to_string().c_str());
      return 1;
    }
    std::printf(
        "%-4s ratio %.2fx  bitrate %.2f bits/val  max|err| %.2e  "
        "bound %s  (%.0f ms compress)\n",
        codec->name().c_str(), report->compression_ratio, report->bit_rate,
        report->error.max_abs_error,
        report->bound_respected ? "OK" : "VIOLATED",
        report->compress_time.ms());
  }

  // 3. Sweep the Broadwell m510 node's DVFS range, 10 repeats per step,
  //    with the compression workload calibrated from the SZ run above.
  core::Platform node{power::ChipId::kBroadwellD1548, power::NoiseModel{},
                      /*seed=*/7};
  const auto sz = compress::make_compressor(compress::CodecId::kSz);
  const auto sz_report = compress::round_trip(*sz, field, bound);
  const auto workload = power::compression_workload(
      node.spec(), sz_report->compress_time, /*cpu_fraction=*/0.53,
      /*activity=*/1.0);
  const auto sweep = core::frequency_sweep(node, workload, /*repeats=*/10);
  std::printf("\nDVFS sweep on %s (%s): %zu grid points\n",
              node.spec().cpu_name.c_str(), node.spec().series.c_str(),
              sweep.size());

  // 4. Fit the paper's model to the scaled power curve.
  const auto curve = core::scale_by_max_frequency(sweep,
                                                  core::SweepMetric::kPower);
  const auto fit = model::fit_power_law(curve.f_ghz, curve.value);
  if (!fit) {
    std::fprintf(stderr, "fit failed: %s\n", fit.status().to_string().c_str());
    return 1;
  }
  std::printf("fitted power model: P(f)/P(f_max) = %s   (RMSE %.4f)\n",
              fit->to_string().c_str(), fit->stats.rmse);

  // 5. Apply Eqn 3 and report what it buys.
  const auto rule = tuning::paper_rule();
  const auto report = tuning::evaluate_tuning(
      node.spec(), workload, node.spec().f_max,
      rule.compression_frequency(node.spec().f_max));
  std::printf(
      "\nEqn 3 tuning (%.2f GHz -> %.2f GHz):\n"
      "  power  %.1f W -> %.1f W  (-%.1f%%)\n"
      "  time   %.2f s -> %.2f s  (+%.1f%%)\n"
      "  energy %.1f J -> %.1f J  (-%.1f%%)\n",
      report.f_base.ghz(), report.f_tuned.ghz(), report.power_base.watts(),
      report.power_tuned.watts(), 100.0 * report.power_savings(),
      report.runtime_base.seconds(), report.runtime_tuned.seconds(),
      100.0 * report.runtime_increase(), report.energy_base.joules(),
      report.energy_tuned.joules(), 100.0 * report.energy_savings());

  const auto f_opt = tuning::energy_optimal_frequency(node.spec(), workload);
  std::printf("energy-optimal DVFS point for this workload: %.2f GHz\n",
              f_opt.ghz());
  return 0;
}
