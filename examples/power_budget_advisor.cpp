// Power-budget advisor: the operator-facing use of the power model. Given
// a per-node package power cap (the "limited power budgets" the abstract
// targets), recommend the highest DVFS point whose modeled compression /
// I/O power stays under the cap, and show the runtime cost of honoring it.
//
// Build & run:  ./build/examples/power_budget_advisor [cap_watts]

#include <cstdio>
#include <cstdlib>

#include "core/platform.hpp"
#include "dvfs/frequency_range.hpp"
#include "io/transit_model.hpp"
#include "power/workload.hpp"
#include "tuning/optimizer.hpp"

namespace {

using namespace lcp;

/// Highest grid frequency whose modeled power is within the cap; f_min if
/// even that exceeds it (the budget is then infeasible for this workload).
GigaHertz advise(const power::ChipSpec& spec, const power::Workload& w,
                 Watts cap, bool& feasible) {
  const dvfs::FrequencyRange range{spec.f_min, spec.f_max, spec.f_step};
  GigaHertz best = spec.f_min;
  feasible = false;
  for (GigaHertz f : range.steps()) {
    if (power::workload_power(w, spec, f) <= cap) {
      best = f;
      feasible = true;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const double cap_watts = argc > 1 ? std::atof(argv[1]) : 11.0;
  if (cap_watts <= 0.0) {
    std::fprintf(stderr, "usage: %s [cap_watts > 0]\n", argv[0]);
    return 2;
  }
  const Watts cap{cap_watts};

  std::printf("power-budget advisor: package cap %.1f W per node\n\n",
              cap.watts());

  for (power::ChipId id : power::all_chips()) {
    const auto& spec = power::chip(id);
    std::printf("%s (%s, TDP %.0f W)\n", spec.cpu_name.c_str(),
                spec.series.c_str(), spec.tdp.watts());

    struct Scenario {
      const char* name;
      power::Workload workload;
    };
    const Scenario scenarios[] = {
        {"SZ compression",
         power::compression_workload(spec, Seconds{10.0}, 0.53, 1.0)},
        {"ZFP compression",
         power::compression_workload(spec, Seconds{10.0}, 0.50, 0.94)},
        {"NFS write 4GB",
         io::transit_workload(spec, Bytes::from_gb(4), {})},
    };
    for (const auto& s : scenarios) {
      bool feasible = false;
      const auto f = advise(spec, s.workload, cap, feasible);
      if (!feasible) {
        std::printf(
            "  %-16s cap infeasible: even %.2f GHz draws %.1f W\n", s.name,
            spec.f_min.ghz(),
            power::workload_power(s.workload, spec, spec.f_min).watts());
        continue;
      }
      const auto report =
          tuning::evaluate_tuning(spec, s.workload, spec.f_max, f);
      std::printf(
          "  %-16s run at %.2f GHz (%.0f%% of max): %.1f W, runtime "
          "+%.1f%%, energy %+.1f%%\n",
          s.name, f.ghz(), 100.0 * f.ghz() / spec.f_max.ghz(),
          report.power_tuned.watts(), 100.0 * report.runtime_increase(),
          -100.0 * report.energy_savings());
    }
    std::printf("\n");
  }

  std::printf(
      "Note: runtimes are relative to the chip's own max clock; energy is\n"
      "negative when the cap also saves net joules (paper Section V-A.3).\n");
  return 0;
}
