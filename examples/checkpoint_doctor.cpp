// Checkpoint doctor: triage tool for a damaged checkpoint stream. Builds
// a demo checkpoint (Nyx-like field, SZ-compressed slabs in a CRC-framed
// container), corrupts a chosen number of slabs, then walks the stream
// the way a restart would: per-chunk verdicts, what was recovered, what
// was filled, and whether the manifest had to come from its tail replica.
//
// Build & run:  ./build/examples/checkpoint_doctor [corrupt_slabs] [fill]
//   corrupt_slabs  how many slabs to damage (default 3)
//   fill           "zero" (default) or "interp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "compress/common/checkpoint.hpp"
#include "compress/common/framing.hpp"
#include "data/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace lcp;

// Byte offset of frame chunk `index`'s payload (length field lives 8
// bytes into each 16-byte chunk header).
std::size_t chunk_payload_offset(const std::vector<std::uint8_t>& bytes,
                                 std::size_t index) {
  std::size_t pos = compress::kFrameHeaderBytes;
  for (std::size_t i = 0; i < index; ++i) {
    const std::size_t len = static_cast<std::size_t>(bytes[pos + 8]) |
                            static_cast<std::size_t>(bytes[pos + 9]) << 8 |
                            static_cast<std::size_t>(bytes[pos + 10]) << 16 |
                            static_cast<std::size_t>(bytes[pos + 11]) << 24;
    pos += compress::kChunkHeaderBytes + len;
  }
  return pos + compress::kChunkHeaderBytes;
}

}  // namespace

int main(int argc, char** argv) {
  int corrupt_slabs = argc > 1 ? std::atoi(argv[1]) : 3;
  compress::RecoveryPolicy policy;
  if (argc > 2) {
    if (std::strcmp(argv[2], "interp") == 0) {
      policy.fill = compress::RecoveryFill::kInterpolate;
    } else if (std::strcmp(argv[2], "zero") != 0) {
      std::fprintf(stderr, "usage: %s [corrupt_slabs] [zero|interp]\n",
                   argv[0]);
      return 2;
    }
  }

  // Demo checkpoint: 26^3 Nyx-like field, ~18 slabs of 1 Ki elements.
  const data::Field field = data::generate_nyx(26, /*seed=*/7);
  compress::CheckpointOptions opts;
  opts.codec = "sz";
  opts.bound = compress::ErrorBound::absolute(1e-3);
  opts.chunk_elements = 1024;
  auto checkpoint = compress::write_checkpoint(field, opts);
  if (!checkpoint) {
    std::fprintf(stderr, "write_checkpoint: %s\n",
                 checkpoint.status().to_string().c_str());
    return 1;
  }
  const auto info = compress::probe_frame(*checkpoint);
  if (!info) {
    std::fprintf(stderr, "probe_frame: %s\n",
                 info.status().to_string().c_str());
    return 1;
  }
  const int slab_count = static_cast<int>(info->chunk_count) - 2;
  if (corrupt_slabs < 0 || corrupt_slabs > slab_count) {
    std::fprintf(stderr, "corrupt_slabs must be in 0..%d\n", slab_count);
    return 2;
  }

  std::printf("checkpoint doctor: %zu elements, %d slabs, %zu framed bytes\n",
              field.values().size(), slab_count, checkpoint->size());
  std::printf("damage: %d slab(s), fill policy: %s\n\n", corrupt_slabs,
              policy.fill == compress::RecoveryFill::kInterpolate
                  ? "interpolate"
                  : "zero");

  // Seeded damage: flip one byte in each victim slab's payload.
  std::vector<std::size_t> order(static_cast<std::size_t>(slab_count));
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng{2026};
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }
  for (int v = 0; v < corrupt_slabs; ++v) {
    const std::size_t off =
        chunk_payload_offset(*checkpoint, order[static_cast<std::size_t>(v)] + 1);
    (*checkpoint)[off + 3] ^= 0x5A;
  }

  const auto report = compress::recover_checkpoint(*checkpoint, policy);
  if (!report) {
    std::fprintf(stderr, "recover_checkpoint: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }

  std::printf("  slab  chunk  elements           frame     verdict\n");
  std::printf("  ----  -----  -----------------  --------  -------\n");
  for (std::size_t i = 0; i < report->slabs.size(); ++i) {
    const auto& s = report->slabs[i];
    std::printf("  %4zu  %5u  [%7zu,%7zu)  %-8s  %s\n", i, s.chunk_seq,
                s.element_offset, s.element_offset + s.element_count,
                std::string(compress::chunk_state_name(s.frame_state)).c_str(),
                s.recovered ? "ok" : s.status.to_string().c_str());
  }

  std::printf("\n  manifest: %s\n", report->manifest_from_replica
                                        ? "recovered from tail replica"
                                        : "chunk 0 intact");
  std::printf("  %s\n", report->summary().c_str());
  if (!report->complete()) {
    std::printf("  %zu of %zu elements filled (%s)\n", report->lost_elements,
                report->total_elements,
                policy.fill == compress::RecoveryFill::kInterpolate
                    ? "linear ramp between surviving neighbors"
                    : "zeros");
  }
  return 0;
}
