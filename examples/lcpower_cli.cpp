// lcpower_cli: a small command-line front end over the library, in the
// spirit of the sz/zfp executables plus the paper's tuning workflow.
//
//   lcpower_cli compress  <dataset> <codec> <abs_eb>     round-trip report
//     codecs: sz | sz2 (second-order predictor) | zfp
//   lcpower_cli sweep     <chip> <codec> <abs_eb>        DVFS sweep + fit
//   lcpower_cli dump      <chip> <gb> <abs_eb>           Fig 6-style plan
//   lcpower_cli datasets                                 list datasets
//
// datasets: cesm | hacc | nyx | isabel    codecs: sz | zfp
// chips: broadwell | skylake

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "compress/common/metrics.hpp"
#include "compress/common/registry.hpp"
#include "core/compression_study.hpp"
#include "core/dump_experiment.hpp"
#include "core/platform.hpp"
#include "core/sweep.hpp"
#include "data/registry.hpp"
#include "model/power_law.hpp"
#include "support/ascii_plot.hpp"
#include "tuning/rule.hpp"

namespace {

using namespace lcp;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s datasets\n"
               "  %s compress <cesm|hacc|nyx|isabel> <sz|sz2|zfp> <abs_eb>\n"
               "  %s sweep <broadwell|skylake> <sz|zfp> <abs_eb>\n"
               "  %s dump <broadwell|skylake> <gb> <abs_eb>\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

bool parse_dataset(const std::string& name, data::DatasetId& out) {
  if (name == "cesm") {
    out = data::DatasetId::kCesmAtm;
  } else if (name == "hacc") {
    out = data::DatasetId::kHacc;
  } else if (name == "nyx") {
    out = data::DatasetId::kNyx;
  } else if (name == "isabel") {
    out = data::DatasetId::kIsabel;
  } else {
    return false;
  }
  return true;
}

bool parse_chip(const std::string& name, power::ChipId& out) {
  if (name == "broadwell") {
    out = power::ChipId::kBroadwellD1548;
  } else if (name == "skylake") {
    out = power::ChipId::kSkylake4114;
  } else {
    return false;
  }
  return true;
}

int cmd_datasets() {
  for (const auto& spec : data::table1_datasets()) {
    std::printf("%-10s paper %-16s ci %-12s %.1f MB\n", spec.domain.c_str(),
                spec.paper_dims.to_string().c_str(),
                spec.ci_dims.to_string().c_str(), spec.paper_size_mb);
  }
  const auto& isabel = data::isabel_dataset();
  std::printf("%-10s paper %-16s ci %-12s (validation set)\n",
              isabel.domain.c_str(), isabel.paper_dims.to_string().c_str(),
              isabel.ci_dims.to_string().c_str());
  return 0;
}

int cmd_compress(const std::string& dataset_name, const std::string& codec_name,
                 double eb) {
  data::DatasetId dataset{};
  if (!parse_dataset(dataset_name, dataset)) {
    return 2;
  }
  auto codec = compress::make_compressor(codec_name);
  if (!codec) {
    std::fprintf(stderr, "%s\n", codec.status().to_string().c_str());
    return 2;
  }
  const auto field = data::generate_dataset(dataset, data::Scale::kCi, 42);
  const auto report = compress::round_trip(
      **codec, field, compress::ErrorBound::absolute(eb));
  if (!report) {
    std::fprintf(stderr, "compress failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf(
      "dataset   : %s %s (%.1f MB)\n"
      "codec     : %s, abs bound %.3e\n"
      "ratio     : %.3fx (%.3f bits/value)\n"
      "max |err| : %.3e (%s)\n"
      "psnr      : %.1f dB\n"
      "compress  : %.1f ms   decompress: %.1f ms\n",
      field.name().c_str(), field.dims().to_string().c_str(),
      field.size_bytes().mb(), report->codec.c_str(), eb,
      report->compression_ratio, report->bit_rate,
      report->error.max_abs_error,
      report->bound_respected ? "within bound" : "BOUND VIOLATED",
      report->error.psnr_db, report->compress_time.ms(),
      report->decompress_time.ms());
  return report->bound_respected ? 0 : 1;
}

int cmd_sweep(const std::string& chip_name, const std::string& codec_name,
              double eb) {
  power::ChipId chip{};
  if (!parse_chip(chip_name, chip)) {
    return 2;
  }
  const compress::CodecId codec_id = codec_name == "sz"
                                         ? compress::CodecId::kSz
                                         : compress::CodecId::kZfp;
  const auto cal = core::calibrate_codec(codec_id, data::DatasetId::kNyx, eb,
                                         data::Scale::kCi, 42);
  if (!cal) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 cal.status().to_string().c_str());
    return 1;
  }
  core::Platform node{chip, power::NoiseModel{}, 7};
  const auto workload = core::workload_from_calibration(*cal, node.spec());
  const auto sweep = core::frequency_sweep(node, workload, 10);
  const auto power_curve =
      core::scale_by_max_frequency(sweep, core::SweepMetric::kPower);
  const auto runtime_curve =
      core::scale_by_max_frequency(sweep, core::SweepMetric::kRuntime);

  PlotSeries p{"power", 'P', power_curve.f_ghz, power_curve.value};
  PlotSeries t{"runtime", 'T', runtime_curve.f_ghz, runtime_curve.value};
  PlotOptions options;
  options.title = "scaled power (P) and runtime (T) vs frequency — " +
                  node.spec().series + " / " + codec_name;
  options.x_label = "GHz";
  options.y_label = "value / value@f_max";
  std::printf("%s", render_plot({p, t}, options).c_str());

  const auto fit = model::fit_power_law(power_curve.f_ghz, power_curve.value);
  if (fit) {
    std::printf("\nfitted: P(f)/P(f_max) = %s  (SSE %.4f RMSE %.4f R^2 %.4f)\n",
                fit->to_string().c_str(), fit->stats.sse, fit->stats.rmse,
                fit->stats.r_squared);
  }
  return 0;
}

int cmd_dump(const std::string& chip_name, double gb, double eb) {
  power::ChipId chip{};
  if (!parse_chip(chip_name, chip) || gb <= 0.0) {
    return 2;
  }
  core::DumpConfig cfg;
  cfg.chip = chip;
  cfg.total_bytes = Bytes::from_gb(gb);
  cfg.error_bounds = {eb};
  const auto result = core::run_dump_experiment(cfg);
  if (!result) {
    std::fprintf(stderr, "dump failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto& o = result->outcomes[0];
  std::printf(
      "dump %.0f GB NYX via SZ(%.0e) on %s over 10GbE NFS\n"
      "  compression ratio : %.2fx -> %.1f GB on the wire\n"
      "  base clock        : %.2f kJ in %.0f s\n"
      "  Eqn 3 tuned       : %.2f kJ in %.0f s\n"
      "  savings           : %.2f kJ (%.1f%%), +%.1f%% runtime\n",
      gb, eb, chip_name.c_str(), o.compression_ratio,
      o.compressed_bytes.gb(), o.plan.energy_base.kj(),
      o.plan.runtime_base.seconds(), o.plan.energy_tuned.kj(),
      o.plan.runtime_tuned.seconds(), o.plan.energy_saved().kj(),
      100.0 * o.plan.energy_savings(),
      100.0 * o.plan.runtime_increase());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage(argv[0]);
  }
  const std::string cmd = argv[1];
  if (cmd == "datasets") {
    return cmd_datasets();
  }
  if (cmd == "compress" && argc == 5) {
    return cmd_compress(argv[2], argv[3], std::atof(argv[4]));
  }
  if (cmd == "sweep" && argc == 5) {
    const std::string codec = argv[3];
    if (codec != "sz" && codec != "zfp") {
      return usage(argv[0]);
    }
    return cmd_sweep(argv[2], codec, std::atof(argv[4]));
  }
  if (cmd == "dump" && argc == 5) {
    return cmd_dump(argv[2], std::atof(argv[3]), std::atof(argv[4]));
  }
  return usage(argv[0]);
}
