// Degraded-dump planner: does the paper's Eqn 3 tuning rule still pay
// off when the NFS link is lossy?
//
//  1. compress a climate field with SZ under an absolute error bound,
//  2. probe a fault-injected link at the requested loss rate and measure
//     the actual retransmit/backoff behavior of the retrying client,
//  3. price the retries into the Table V transit model,
//  4. build the two-stage compressed-dump plan on the clean and on the
//     degraded link and compare energy/runtime/savings.
//
// Build & run:  ./build/examples/degraded_dump_planner [loss_percent]
//               (default 5, i.e. 5% of RPC chunks are dropped)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "compress/common/metrics.hpp"
#include "compress/common/registry.hpp"
#include "data/generators.hpp"
#include "io/fault.hpp"
#include "io/nfs_client.hpp"
#include "io/nfs_server.hpp"
#include "io/transit_model.hpp"
#include "power/chip_model.hpp"
#include "tuning/io_plan.hpp"
#include "tuning/rule.hpp"

int main(int argc, char** argv) {
  using namespace lcp;

  double loss_percent = 5.0;
  if (argc > 1) {
    loss_percent = std::atof(argv[1]);
  }
  if (loss_percent < 0.0 || loss_percent > 60.0) {
    std::fprintf(stderr, "usage: %s [loss_percent in 0..60]\n", argv[0]);
    return 2;
  }
  const double loss_rate = loss_percent / 100.0;

  // 1. Compress a CESM-ATM-like field with SZ at a 1e-3 absolute bound.
  const auto field = data::generate_cesm_atm(13, 90, 180, /*seed=*/42);
  const auto codec = compress::make_compressor(compress::CodecId::kSz);
  const auto report = compress::round_trip(
      *codec, field, compress::ErrorBound::absolute(1e-3));
  if (!report) {
    std::fprintf(stderr, "compression failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  const Bytes dump_bytes{static_cast<std::uint64_t>(
      field.size_bytes().bytes() / report->compression_ratio)};
  std::printf("dump: %s  %.2f MB raw -> %.2f MB compressed (%.2fx)\n",
              field.name().c_str(), field.size_bytes().mb(), dump_bytes.mb(),
              report->compression_ratio);

  // 2. Probe the lossy link: a real (byte-moving) transfer through the
  //    fault injector measures how much the retry loop actually costs.
  const io::FaultPlan plan = io::FaultPlan::loss(/*seed=*/2026, loss_rate);
  const io::FaultInjector injector{plan};
  io::NfsServer server;
  io::NfsClientConfig client_cfg;
  client_cfg.rpc_chunk_bytes = 64 * 1024;
  io::NfsClient client{server, client_cfg};
  client.attach_fault_injector(&injector);

  std::vector<std::uint8_t> probe(client_cfg.rpc_chunk_bytes * 128);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    probe[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  const Status st = client.write_file("probe", probe);
  if (!st.is_ok()) {
    std::fprintf(stderr, "link unusable at %.1f%% loss: %s\n", loss_percent,
                 st.to_string().c_str());
    return 1;
  }
  const auto profile = io::retry_profile_from_stats(
      client.retry_stats(), Bytes{probe.size()}, dump_bytes);
  std::printf(
      "link probe at %.1f%% loss: %zu rpcs, %zu retries, "
      "%.1f%% bytes retransmitted, %.3f s idle per dump\n",
      loss_percent, client.rpcs_issued(),
      static_cast<std::size_t>(client.retry_stats().retries),
      100.0 * profile.retransmit_fraction, profile.idle_seconds.seconds());

  // 3-4. Price the retries into the transit model and plan the dump on
  //      both chips, clean link vs degraded link.
  const io::TransitModelConfig transit;
  const auto rule = tuning::paper_rule();
  for (power::ChipId chip : power::all_chips()) {
    const auto& spec = power::chip(chip);
    const auto compress_w = power::compression_workload(
        spec, report->compress_time, /*cpu_fraction=*/0.53, /*activity=*/1.0);
    const auto clean_w = io::transit_workload(spec, dump_bytes, transit);
    const auto degraded_w =
        io::transit_workload(spec, dump_bytes, transit, profile);
    const auto dump = tuning::plan_compressed_dump_under_faults(
        spec, compress_w, clean_w, degraded_w, rule);

    std::printf(
        "\n%s (%s):\n"
        "  clean link:    tuned %.1f J / %.2f s  (saves %.1f%% energy)\n"
        "  degraded link: tuned %.1f J / %.2f s  (saves %.1f%% energy)\n"
        "  fault overhead on the tuned plan: +%.1f J, +%.3f s\n",
        spec.cpu_name.c_str(), spec.series.c_str(),
        dump.clean.energy_tuned.joules(),
        dump.clean.runtime_tuned.seconds(),
        100.0 * dump.clean.energy_savings(),
        dump.degraded.energy_tuned.joules(),
        dump.degraded.runtime_tuned.seconds(),
        100.0 * dump.degraded.energy_savings(),
        dump.fault_energy_overhead().joules(),
        dump.fault_runtime_overhead().seconds());
    if (dump.degraded.energy_savings() > 0.0) {
      std::printf("  => Eqn 3 tuning still pays off on the lossy link\n");
    } else {
      std::printf("  => faults have erased the tuning gain on this chip\n");
    }
  }
  return 0;
}
