// Checkpoint pipeline: the workload the paper's introduction motivates —
// a long-running simulation (HACC-like) periodically dumps snapshots that
// must be compressed and shipped to an NFS. This example runs the whole
// pipeline end to end: data really moves through the compressor and the
// simulated NFS, while the platform model accounts time and energy for
// both a base-clock and an Eqn 3-tuned schedule.
//
// Build & run:  ./build/examples/checkpoint_pipeline [snapshots]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "compress/common/registry.hpp"
#include "core/platform.hpp"
#include "data/generators.hpp"
#include "io/nfs_client.hpp"
#include "io/transit_model.hpp"
#include "tuning/io_plan.hpp"
#include "tuning/rule.hpp"

int main(int argc, char** argv) {
  using namespace lcp;
  const int snapshots = argc > 1 ? std::atoi(argv[1]) : 4;
  if (snapshots <= 0 || snapshots > 64) {
    std::fprintf(stderr, "usage: %s [snapshots 1..64]\n", argv[0]);
    return 2;
  }

  const auto& spec = power::chip(power::ChipId::kBroadwellD1548);
  const auto rule = tuning::paper_rule();
  const auto codec = compress::make_compressor(compress::CodecId::kSz);
  const auto bound = compress::ErrorBound::absolute(1e-3);

  io::NfsServer server;
  io::NfsClient client{server};
  io::TransitModelConfig transit;

  std::printf(
      "checkpoint pipeline: %d HACC-like snapshots -> SZ(1e-3 abs) -> NFS "
      "(10 GbE)\nnode: %s (%s)\n\n",
      snapshots, spec.cpu_name.c_str(), spec.series.c_str());

  Joules total_base{0.0};
  Joules total_tuned{0.0};
  Seconds time_base{0.0};
  Seconds time_tuned{0.0};
  Bytes raw_total{0};

  for (int snap = 0; snap < snapshots; ++snap) {
    // Each snapshot: a particle-coordinate stream (timestep-varying seed).
    const auto field =
        data::generate_hacc(1 << 20, 1000 + static_cast<std::uint64_t>(snap));
    auto compressed = codec->compress(field, bound);
    if (!compressed) {
      std::fprintf(stderr, "compress failed: %s\n",
                   compressed.status().to_string().c_str());
      return 1;
    }
    raw_total = raw_total + field.size_bytes();

    // Really ship the container to the NFS server.
    const std::string path = "/ckpt/hacc_" + std::to_string(snap) + ".sz";
    if (const auto status = client.write_file(path, compressed->container);
        !status.is_ok()) {
      std::fprintf(stderr, "nfs write failed: %s\n",
                   status.to_string().c_str());
      return 1;
    }

    // Account energy/time under both schedules.
    const auto compress_w = power::compression_workload(
        spec, compressed->native_wall_time, 0.53, 1.0);
    const auto write_w = io::transit_workload(
        spec, Bytes{compressed->container.size()}, transit);
    const auto cmp =
        tuning::plan_compressed_dump(spec, compress_w, write_w, rule);
    total_base = total_base + cmp.energy_base;
    total_tuned = total_tuned + cmp.energy_tuned;
    time_base = time_base + cmp.runtime_base;
    time_tuned = time_tuned + cmp.runtime_tuned;

    std::printf(
        "snap %2d: %6.1f MB -> %6.1f MB (CR %.2fx)  base %6.2f J | tuned "
        "%6.2f J\n",
        snap, field.size_bytes().mb(),
        static_cast<double>(compressed->container.size()) / 1e6,
        compressed->compression_ratio(), cmp.energy_base.joules(),
        cmp.energy_tuned.joules());
  }

  std::printf("\nNFS server now holds %zu files, %.1f MB total (raw %.1f MB)\n",
              server.file_count(), server.total_bytes_stored().mb(),
              raw_total.mb());
  std::printf(
      "schedule totals:\n"
      "  base clock : %8.2f J in %7.2f s\n"
      "  Eqn 3 tuned: %8.2f J in %7.2f s\n"
      "  saved      : %8.2f J (%.1f%%) for +%.1f%% wall time\n",
      total_base.joules(), time_base.seconds(), total_tuned.joules(),
      time_tuned.seconds(), (total_base - total_tuned).joules(),
      100.0 * (1.0 - total_tuned / total_base),
      100.0 * (time_tuned / time_base - 1.0));

  // Integrity spot-check: read one checkpoint back and decompress it.
  const auto stored = server.read_file("/ckpt/hacc_0.sz");
  if (!stored) {
    std::fprintf(stderr, "readback failed\n");
    return 1;
  }
  auto decoded = compress::decompress_any(*stored);
  if (!decoded) {
    std::fprintf(stderr, "decompress failed: %s\n",
                 decoded.status().to_string().c_str());
    return 1;
  }
  std::printf("\nintegrity check: snapshot 0 decompresses to %s (%zu values)\n",
              decoded->field.dims().to_string().c_str(),
              decoded->field.element_count());
  return 0;
}
