// I/O-window scheduler: a nightly checkpoint window holds several
// compression and write jobs; the operator grants a wall-clock budget
// relative to the all-at-max-clock baseline, and the scheduler picks a
// per-job DVFS point minimizing energy inside that budget — the per-
// workload generalization of Eqn 3 the paper's conclusion anticipates.
//
// Build & run:  ./build/examples/io_window_scheduler [slack_percent]

#include <cstdio>
#include <cstdlib>

#include "io/transit_model.hpp"
#include "tuning/scheduler.hpp"

int main(int argc, char** argv) {
  using namespace lcp;
  const double slack_percent = argc > 1 ? std::atof(argv[1]) : 8.0;
  if (slack_percent < 0.0 || slack_percent > 500.0) {
    std::fprintf(stderr, "usage: %s [slack_percent 0..500]\n", argv[0]);
    return 2;
  }

  const auto& spec = power::chip(power::ChipId::kBroadwellD1548);

  // A plausible checkpoint window: three field compressions of different
  // sizes/codecs and two NFS writes.
  const std::vector<tuning::Job> jobs = {
      {"sz  CESM 674MB",
       power::compression_workload(spec, Seconds{18.0}, 0.53, 1.0)},
      {"sz  NYX 537MB",
       power::compression_workload(spec, Seconds{14.0}, 0.53, 1.0)},
      {"zfp HACC 1047MB",
       power::compression_workload(spec, Seconds{25.0}, 0.50, 0.94)},
      {"nfs write 4GB", io::transit_workload(spec, Bytes::from_gb(4), {})},
      {"nfs write 9GB", io::transit_workload(spec, Bytes::from_gb(9), {})},
  };

  const auto baseline = tuning::schedule_baseline(spec, jobs);
  const Seconds deadline =
      baseline.total_runtime * (1.0 + slack_percent / 100.0);
  const auto tuned = tuning::schedule_for_deadline(spec, jobs, deadline);
  if (!tuned) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 tuned.status().to_string().c_str());
    return 1;
  }

  std::printf(
      "I/O window on %s — %.1f%% wall-clock slack granted\n\n"
      "%-18s %10s %10s %10s %10s\n",
      spec.cpu_name.c_str(), slack_percent, "job", "base f", "tuned f",
      "t (s)", "E (J)");
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& b = baseline.jobs[j];
    const auto& t = tuned->jobs[j];
    std::printf("%-18s %7.2fGHz %7.2fGHz %10.2f %10.1f\n",
                t.job.name.c_str(), b.frequency.ghz(), t.frequency.ghz(),
                t.runtime.seconds(), t.energy.joules());
  }
  std::printf(
      "\nwindow totals:\n"
      "  baseline : %8.1f J in %7.2f s\n"
      "  scheduled: %8.1f J in %7.2f s (deadline %.2f s)\n"
      "  saved    : %8.1f J (%.1f%%)\n",
      baseline.total_energy.joules(), baseline.total_runtime.seconds(),
      tuned->total_energy.joules(), tuned->total_runtime.seconds(),
      deadline.seconds(),
      (baseline.total_energy - tuned->total_energy).joules(),
      100.0 * (1.0 - tuned->total_energy / baseline.total_energy));

  // Compare against the paper's one-size Eqn 3 rule applied blindly.
  double eqn3_energy = 0.0;
  double eqn3_runtime = 0.0;
  for (const auto& job : jobs) {
    const bool is_write = job.name.find("nfs") != std::string::npos;
    const double fraction = is_write ? 0.85 : 0.875;
    const GigaHertz f{spec.f_max.ghz() * fraction};
    eqn3_energy += power::workload_energy(job.workload, spec, f).joules();
    eqn3_runtime += power::workload_runtime(job.workload, spec, f).seconds();
  }
  std::printf(
      "\nEqn 3 fixed rule for reference: %8.1f J in %7.2f s\n"
      "(the scheduler matches or beats it whenever the deadline allows)\n",
      eqn3_energy, eqn3_runtime);
  return 0;
}
