// ReplicaSet suite: quorum-gated fan-out writes, verified reads with
// rotation failover, per-replica fault injection, and the replication
// byte accounting the transit energy model prices.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "io/fault.hpp"
#include "io/nfs_server.hpp"
#include "io/replica_set.hpp"
#include "support/checksum.hpp"
#include "support/scoped_thread.hpp"

namespace lcp::io {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t salt = 0) {
  std::vector<std::uint8_t> out(n);
  std::iota(out.begin(), out.end(), salt);
  return out;
}

struct Rig {
  NfsServer s0, s1, s2;
  ReplicaSet set{{&s0, &s1, &s2}, {}};

  NfsServer& server(std::size_t i) { return set.server(i); }
};

TEST(ReplicaSetTest, WriteFansOutToEveryReplica) {
  Rig rig;
  const auto data = pattern(1000);
  const auto outcome = rig.set.write_file("f", data);
  ASSERT_TRUE(outcome.ok()) << outcome.status.message();
  EXPECT_EQ(outcome.acks, 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    const auto stored = rig.server(r).read_file("f");
    ASSERT_TRUE(stored.has_value());
    EXPECT_TRUE(std::equal(data.begin(), data.end(), stored->begin(),
                           stored->end()));
  }
  // Replication tax: 3x the logical bytes went on the wire.
  EXPECT_EQ(rig.set.bytes_replicated().bytes(), 3u * data.size());
}

TEST(ReplicaSetTest, DefaultQuorumIsMajority) {
  Rig rig;
  EXPECT_EQ(rig.set.write_quorum(), 2u);
  NfsServer lone;
  ReplicaSet single{{&lone}, {}};
  EXPECT_EQ(single.write_quorum(), 1u);
}

TEST(ReplicaSetTest, WriteSucceedsWithOneReplicaDown) {
  Rig rig;
  rig.set.set_replica_down(1, true);
  const auto outcome = rig.set.write_file("f", pattern(100));
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.acks, 2u);
  EXPECT_FALSE(outcome.per_replica[1].is_ok());
  EXPECT_EQ(outcome.per_replica[1].code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(rig.server(1).has_file("f"));
  // A down replica costs no wire traffic.
  EXPECT_EQ(rig.set.bytes_replicated().bytes(), 200u);
}

TEST(ReplicaSetTest, WriteFailsBelowQuorumWithTypedStatus) {
  Rig rig;
  rig.set.set_replica_down(0, true);
  rig.set.set_replica_down(2, true);
  const auto outcome = rig.set.write_file("f", pattern(100));
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.acks, 1u);
  EXPECT_EQ(outcome.status.code(), ErrorCode::kUnavailable);
  EXPECT_NE(outcome.status.message().find("quorum"), std::string::npos);
  // The surviving replica still holds its copy (no rollback semantics).
  EXPECT_TRUE(rig.server(1).has_file("f"));
}

TEST(ReplicaSetTest, ReadPrefersRequestedReplica) {
  Rig rig;
  ASSERT_TRUE(rig.set.write_file("f", pattern(64)).ok());
  const auto got = rig.set.read_file("f", /*preferred=*/2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->replica, 2u);
  EXPECT_EQ(got->failovers, 0u);
}

TEST(ReplicaSetTest, ReadFailsOverPastDownReplica) {
  Rig rig;
  ASSERT_TRUE(rig.set.write_file("f", pattern(64)).ok());
  rig.set.set_replica_down(1, true);
  const auto got = rig.set.read_file("f", /*preferred=*/1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->replica, 2u);
  EXPECT_EQ(got->failovers, 1u);
  EXPECT_EQ(rig.set.read_failovers(), 1u);
}

TEST(ReplicaSetTest, ReadFailsOverPastCorruptCopy) {
  Rig rig;
  const auto data = pattern(64);
  ASSERT_TRUE(rig.set.write_file("f", data).ok());
  const std::uint32_t want = crc32c(data);
  // Replace replica 0's copy with garbage; the verifier must reject it
  // and the read must land on replica 1.
  ASSERT_TRUE(rig.server(0).remove_file("f").has_value());
  ASSERT_TRUE(rig.server(0).handle_write("f", pattern(64, 7)).is_ok());
  const auto got = rig.set.read_file(
      "f", /*preferred=*/0, [want](std::span<const std::uint8_t> bytes) {
        if (crc32c(bytes) != want) {
          return Status::corrupt_data("crc mismatch");
        }
        return Status::ok();
      });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->replica, 1u);
  EXPECT_EQ(got->failovers, 1u);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), got->bytes.begin(),
                         got->bytes.end()));
  // The rejected fetch still moved bytes: both copies were paid for.
  EXPECT_EQ(rig.set.bytes_fetched(), 128u);
}

TEST(ReplicaSetTest, ReadFailsWhenEveryCopyRejected) {
  Rig rig;
  ASSERT_TRUE(rig.set.write_file("f", pattern(64)).ok());
  const auto got = rig.set.read_file(
      "f", 0, [](std::span<const std::uint8_t>) {
        return Status::corrupt_data("always reject");
      });
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.status().code(), ErrorCode::kCorruptData);
  EXPECT_NE(got.status().message().find("all 3 replicas"), std::string::npos);
}

TEST(ReplicaSetTest, ReadOfMissingFileIsTypedError) {
  Rig rig;
  const auto got = rig.set.read_file("nope");
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ReplicaSetTest, RemoveFileFreesEveryCopyAndSkipsMissing) {
  Rig rig;
  ASSERT_TRUE(rig.set.write_file("f", pattern(100)).ok());
  // Replica 1 already lost its copy; remove must not fail on it.
  ASSERT_TRUE(rig.server(1).remove_file("f").has_value());
  const auto freed = rig.set.remove_file("f");
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(*freed, 200u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_FALSE(rig.server(r).has_file("f"));
  }
}

TEST(ReplicaSetTest, ConcurrentDownToggleDuringReads) {
  // Regression for the data race the -Wthread-safety migration flushed
  // out: Replica::down was a plain bool, so an admin thread flipping it
  // raced every reader probing the same flag mid-failover. The flag is
  // atomic now; under tsan this test fails on the old code.
  Rig rig;
  const auto data = pattern(256);
  ASSERT_TRUE(rig.set.write_file("f", data).ok());

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads_ok{0};
  std::vector<ScopedThread> readers;
  for (std::size_t t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Rotate the preferred replica so every reader keeps probing the
        // toggled flag on replica 0 from a different failover position.
        const auto got = rig.set.read_file("f", t % 3);
        // Replicas 1 and 2 stay up, so the read must always verify.
        ASSERT_TRUE(got.has_value()) << got.status().message();
        ASSERT_EQ(got->bytes.size(), data.size());
        reads_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Keep toggling until the readers have demonstrably overlapped with the
  // flips (a fixed toggle count can finish before the first reader thread
  // is even scheduled); readers always make progress, so this terminates.
  std::size_t toggles = 0;
  while (toggles < 2000 ||
         reads_ok.load(std::memory_order_relaxed) < 300) {
    rig.set.set_replica_down(0, (toggles & 1) == 0);
    ++toggles;
  }
  rig.set.set_replica_down(0, false);
  stop.store(true, std::memory_order_relaxed);
  readers.clear();  // joins

  EXPECT_GE(reads_ok.load(), 300u);
  EXPECT_FALSE(rig.set.replica_down(0));
}

TEST(ReplicaSetTest, PerReplicaFaultInjectorIsIndependent) {
  Rig rig;
  // Replica 0 is hard-down via an episode covering every chunk; the other
  // replicas see a clean link. The write must still reach quorum.
  FaultPlan plan;
  plan.episodes.push_back({FaultKind::kServerUnavailable, 0, 1u << 20,
                           kFaultPersistsForever});
  FaultInjector injector{plan};
  rig.set.attach_fault_injector(0, &injector);
  const auto outcome = rig.set.write_file("f", pattern(1000));
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.acks, 2u);
  EXPECT_FALSE(outcome.per_replica[0].is_ok());
  EXPECT_EQ(outcome.per_replica[0].code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(rig.server(1).has_file("f"));
  EXPECT_TRUE(rig.server(2).has_file("f"));
}

TEST(ReplicaSetTest, TransientFaultAbsorbedByRetries) {
  Rig rig;
  // One dropped attempt on replica 2's first chunk; backoff rides it out
  // and all three replicas converge byte-identically.
  FaultPlan plan;
  plan.targeted.push_back({0, FaultKind::kDrop, 1});
  FaultInjector injector{plan};
  rig.set.attach_fault_injector(2, &injector);
  const auto data = pattern(500);
  const auto outcome = rig.set.write_file("f", data);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.acks, 3u);
  const auto stored = rig.server(2).read_file("f");
  ASSERT_TRUE(stored.has_value());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), stored->begin(),
                         stored->end()));
  EXPECT_GE(rig.set.client(2).retry_stats().retries, 1u);
}

}  // namespace
}  // namespace lcp::io
