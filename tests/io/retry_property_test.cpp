// Property/soak coverage for the retry loop: 200 randomized
// (seed, loss-rate, chunk-size) trials. Invariants under test:
//   - backoff sleeps grow monotonically (un-jittered) up to the cap, and
//     the jittered sleep stays inside the configured jitter band;
//   - no RPC ever exceeds the configured attempt budget;
//   - no corruption escapes CRC32C verification: a successful write_file
//     always leaves the server byte-identical to the input;
//   - the whole trial replays exactly from its seed.
// All waits are modeled, so the soak runs thousands of faulted RPCs fast.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "io/fault.hpp"
#include "io/nfs_client.hpp"
#include "io/nfs_server.hpp"
#include "support/rng.hpp"

namespace lcp::io {
namespace {

struct TrialResult {
  Status status = Status::ok();
  std::vector<std::uint8_t> stored;
  std::vector<RpcAttempt> trace;
  RetryStats stats;
};

TrialResult run_trial(std::uint64_t seed, double loss_rate,
                      double corrupt_rate, std::size_t chunk_bytes,
                      std::size_t data_bytes, const RetryPolicy& policy) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_rate = loss_rate;
  plan.corrupt_rate = corrupt_rate;

  NfsServer server;
  FaultInjector injector{plan};
  NfsClientConfig cfg;
  cfg.rpc_chunk_bytes = chunk_bytes;
  cfg.retry = policy;
  NfsClient client{server, cfg};
  client.attach_fault_injector(&injector);

  std::vector<std::uint8_t> data(data_bytes);
  Rng fill{seed ^ 0xF111};
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(fill.next_u64());
  }

  TrialResult r;
  r.status = client.write_file("soak", data);
  if (r.status.is_ok()) {
    const auto read = server.read_file("soak");
    r.stored.assign(read->begin(), read->end());
    EXPECT_EQ(r.stored, data) << "corruption escaped checksum verification";
  }
  r.trace = client.trace();
  r.stats = client.retry_stats();
  return r;
}

TEST(RetryPropertyTest, TwoHundredRandomizedTrialsHoldAllInvariants) {
  Rng meta{0x50AC'5EED};
  const RetryPolicy policy = [] {
    RetryPolicy p;
    p.max_attempts = 8;
    p.backoff_initial = Seconds{5e-3};
    p.backoff_cap = Seconds{80e-3};  // low cap so trials actually reach it
    return p;
  }();
  const double cap = policy.backoff_cap.seconds();
  const double jitter = policy.jitter_fraction;

  std::size_t failed_trials = 0;
  std::size_t capped_sleeps = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t seed = meta.next_u64();
    const double loss = meta.uniform(0.0, 0.25);
    const double corrupt = meta.uniform(0.0, 0.10);
    const std::size_t chunk = 1 + meta.uniform_index(512);
    const std::size_t bytes = 1 + meta.uniform_index(8192);
    SCOPED_TRACE("trial " + std::to_string(trial) + " seed " +
                 std::to_string(seed));

    const TrialResult r =
        run_trial(seed, loss, corrupt, chunk, bytes, policy);
    if (!r.status.is_ok()) {
      ++failed_trials;
      EXPECT_NE(r.status.code(), ErrorCode::kOk);
    }

    // Group the trace per RPC and check the attempt budget and the
    // backoff ladder.
    std::map<std::uint64_t, std::vector<const RpcAttempt*>> by_rpc;
    for (const auto& entry : r.trace) {
      by_rpc[entry.rpc_index].push_back(&entry);
    }
    for (const auto& [rpc, attempts] : by_rpc) {
      EXPECT_LE(attempts.size(), policy.max_attempts);
      double prev_base = 0.0;
      for (const auto* a : attempts) {
        if (a->backoff_base.seconds() == 0.0) {
          continue;  // final or successful attempt: no sleep scheduled
        }
        const double base = a->backoff_base.seconds();
        EXPECT_GE(base, prev_base) << "backoff shrank within rpc " << rpc;
        EXPECT_LE(base, cap + 1e-12);
        if (base == cap) {
          ++capped_sleeps;
        }
        prev_base = base;
        const double lo = base * (1.0 - jitter) - 1e-12;
        const double hi = base * (1.0 + jitter) + 1e-12;
        EXPECT_GE(a->backoff.seconds(), lo);
        EXPECT_LE(a->backoff.seconds(), hi);
      }
    }

    // Determinism: a sample of trials is replayed and must match exactly.
    if (trial % 16 == 0) {
      const TrialResult replay =
          run_trial(seed, loss, corrupt, chunk, bytes, policy);
      EXPECT_EQ(r.trace, replay.trace);
      EXPECT_EQ(r.status.to_string(), replay.status.to_string());
      EXPECT_EQ(r.stored, replay.stored);
    }
  }

  // The randomized grid must actually exercise the interesting regimes:
  // some sleeps at the cap, but the vast majority of trials delivered.
  EXPECT_GT(capped_sleeps, 0u);
  EXPECT_LT(failed_trials, 40u);
}

}  // namespace
}  // namespace lcp::io
