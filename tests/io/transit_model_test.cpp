#include "io/transit_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lcp::io {
namespace {

using power::ChipId;

const power::ChipSpec& bdw() { return power::chip(ChipId::kBroadwellD1548); }
const power::ChipSpec& skl() { return power::chip(ChipId::kSkylake4114); }

TEST(TransitModelTest, PaperSizesLadder) {
  const auto& sizes = paper_transit_sizes();
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_DOUBLE_EQ(sizes.front().gb(), 1.0);
  EXPECT_DOUBLE_EQ(sizes.back().gb(), 16.0);
}

TEST(TransitModelTest, FloorIsMaxOfWireAndDisk) {
  TransitModelConfig config;
  const auto n = Bytes::from_gb(1);
  const auto floor = transit_floor(n, config);
  EXPECT_DOUBLE_EQ(
      floor.seconds(),
      std::max(config.link.wire_time(n).seconds(),
               config.disk.write_time(n).seconds()));
  // With defaults the 0.35 GB/s disk, not the 1.175 GB/s wire, is the floor.
  EXPECT_DOUBLE_EQ(floor.seconds(), config.disk.write_time(n).seconds());
}

TEST(TransitModelTest, BroadwellIsCpuBoundAcrossItsRange) {
  // Fig 4: Broadwell transit runtime keeps scaling with frequency.
  TransitModelConfig config;
  const auto w = transit_workload(bdw(), Bytes::from_gb(1), config);
  const auto t_max = power::workload_runtime(w, bdw(), bdw().f_max);
  const auto t_min = power::workload_runtime(w, bdw(), bdw().f_min);
  EXPECT_GT(t_min.seconds(), t_max.seconds() * 1.5);
}

TEST(TransitModelTest, SkylakeRuntimeIsStagnantAtHighFrequency) {
  // Fig 4: Skylake hits the pipeline floor over the upper range.
  TransitModelConfig config;
  const auto w = transit_workload(skl(), Bytes::from_gb(1), config);
  const auto t_220 = power::workload_runtime(w, skl(), GigaHertz{2.2});
  const auto t_180 = power::workload_runtime(w, skl(), GigaHertz{1.8});
  EXPECT_NEAR(t_220.seconds(), t_180.seconds(), t_220.seconds() * 0.02);
  // But at the very bottom it becomes CPU-bound again.
  const auto t_080 = power::workload_runtime(w, skl(), GigaHertz{0.8});
  EXPECT_GT(t_080.seconds(), t_220.seconds() * 1.2);
}

TEST(TransitModelTest, RuntimeScalesWithSize) {
  TransitModelConfig config;
  const auto w1 = transit_workload(bdw(), Bytes::from_gb(1), config);
  const auto w8 = transit_workload(bdw(), Bytes::from_gb(8), config);
  const double t1 = power::workload_runtime(w1, bdw(), bdw().f_max).seconds();
  const double t8 = power::workload_runtime(w8, bdw(), bdw().f_max).seconds();
  EXPECT_NEAR(t8 / t1, 8.0, 0.2);  // setup cost breaks exact linearity
}

TEST(TransitModelTest, TransitActivityLowerThanCompression) {
  // This is what produces the 0.9 scaled-power floor of Fig 3 vs the 0.8
  // of Fig 1.
  TransitModelConfig config;
  const auto w = transit_workload(bdw(), Bytes::from_gb(1), config);
  EXPECT_LT(w.activity, 1.0);
  EXPECT_GT(w.activity, 0.2);
}

TEST(TransitModelTest, FifteenPercentDropCostsRoughlyPaperRuntime) {
  // Paper: -15% frequency => +9.3% runtime averaged over both chips.
  TransitModelConfig config;
  double total_increase = 0.0;
  for (ChipId id : power::all_chips()) {
    const auto& spec = power::chip(id);
    const auto w = transit_workload(spec, Bytes::from_gb(4), config);
    const double t_base =
        power::workload_runtime(w, spec, spec.f_max).seconds();
    const double t_tuned =
        power::workload_runtime(w, spec, spec.f_max * 0.85).seconds();
    total_increase += t_tuned / t_base - 1.0;
  }
  const double mean_increase = total_increase / 2.0;
  EXPECT_GT(mean_increase, 0.03);
  EXPECT_LT(mean_increase, 0.16);
}

}  // namespace
}  // namespace lcp::io
