// Fault-matrix suite for the retrying NFS client: every fault kind at
// every chunk position must either leave the stored file byte-identical
// to the input (after retries) or surface a typed Status — and the whole
// episode must replay bit-for-bit from its seed.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "io/fault.hpp"
#include "io/nfs_client.hpp"
#include "io/nfs_server.hpp"

namespace lcp::io {
namespace {

constexpr std::size_t kChunk = 100;
constexpr std::size_t kChunks = 10;
constexpr std::size_t kBytes = kChunk * kChunks;

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::iota(out.begin(), out.end(), 0);
  return out;
}

struct FaultRun {
  Status status = Status::ok();
  std::vector<std::uint8_t> stored;
  bool file_exists = false;
  std::uint64_t client_bytes = 0;
  std::size_t client_rpcs = 0;
  std::size_t server_rpcs = 0;
  RetryStats stats;
  std::vector<RpcAttempt> trace;
};

FaultRun run_plan(const FaultPlan& plan, std::size_t data_bytes = kBytes,
             RetryPolicy policy = {}) {
  NfsServer server;
  FaultInjector injector{plan};
  NfsClientConfig cfg;
  cfg.rpc_chunk_bytes = kChunk;
  cfg.retry = policy;
  NfsClient client{server, cfg};
  client.attach_fault_injector(&injector);

  const auto data = pattern(data_bytes);
  FaultRun r;
  r.status = client.write_file("f", data);
  r.file_exists = server.has_file("f");
  if (r.file_exists) {
    const auto read = server.read_file("f");
    r.stored.assign(read->begin(), read->end());
  }
  r.client_bytes = client.bytes_sent().bytes();
  r.client_rpcs = client.rpcs_issued();
  r.server_rpcs = server.rpc_count();
  r.stats = client.retry_stats();
  r.trace = client.trace();
  return r;
}

void expect_counters_reconcile(const FaultRun& r, std::size_t data_bytes = kBytes) {
  // Every attempt put payload on the wire; only timed-out ones never
  // reached the server.
  EXPECT_EQ(r.client_rpcs, r.server_rpcs + r.stats.timeouts);
  EXPECT_EQ(r.client_rpcs, r.stats.rpc_attempts);
  EXPECT_EQ(r.trace.size(), r.stats.rpc_attempts);
  if (r.status.is_ok()) {
    // Payload conservation: logical bytes once, plus the retransmits.
    EXPECT_EQ(r.client_bytes, data_bytes + r.stats.bytes_retransmitted);
  }
}

struct MatrixCase {
  const char* name;
  FaultKind kind;
};

const MatrixCase kKinds[] = {
    {"drop", FaultKind::kDrop},
    {"corrupt", FaultKind::kCorrupt},
    {"delay", FaultKind::kDelay},
    {"reject", FaultKind::kReject},
    {"disk-full", FaultKind::kDiskFull},
    {"server-unavailable", FaultKind::kServerUnavailable},
};

const std::uint64_t kPositions[] = {0, kChunks / 2, kChunks - 1};

TEST(FaultMatrixTest, EveryKindAtEveryPositionRecoversIntact) {
  for (const auto& kase : kKinds) {
    for (std::uint64_t pos : kPositions) {
      FaultPlan plan;
      plan.targeted.push_back({pos, kase.kind, /*persist_attempts=*/2});
      const FaultRun r = run_plan(plan);
      SCOPED_TRACE(std::string(kase.name) + " at chunk " +
                   std::to_string(pos));
      ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
      EXPECT_EQ(r.stored, pattern(kBytes));
      expect_counters_reconcile(r);
      // The targeted chunk needed retries unless the fault was a
      // sub-deadline delay (which succeeds on the first attempt, late).
      if (kase.kind != FaultKind::kDelay) {
        EXPECT_GT(r.stats.retries, 0u);
        EXPECT_GT(r.stats.backoff_idle.seconds(), 0.0);
      } else {
        EXPECT_GT(r.stats.injected_delay.seconds(), 0.0);
      }
    }
  }
}

TEST(FaultMatrixTest, EveryKindOnEveryNthChunkRecoversIntact) {
  for (const auto& kase : kKinds) {
    FaultPlan plan;
    plan.periodic.push_back({/*period=*/3, /*phase=*/1, kase.kind,
                             /*persist_attempts=*/1});
    const FaultRun r = run_plan(plan);
    SCOPED_TRACE(kase.name);
    ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    EXPECT_EQ(r.stored, pattern(kBytes));
    expect_counters_reconcile(r);
  }
}

TEST(FaultMatrixTest, PersistentFaultSurfacesTypedStatus) {
  struct Expectation {
    FaultKind kind;
    ErrorCode code;
  };
  const Expectation cases[] = {
      {FaultKind::kDrop, ErrorCode::kUnavailable},
      {FaultKind::kCorrupt, ErrorCode::kCorruptData},
      {FaultKind::kReject, ErrorCode::kUnavailable},
      {FaultKind::kDiskFull, ErrorCode::kOutOfRange},
      {FaultKind::kServerUnavailable, ErrorCode::kUnavailable},
  };
  for (const auto& kase : cases) {
    FaultPlan plan;
    const std::uint64_t pos = kChunks / 2;
    plan.targeted.push_back({pos, kase.kind, kFaultPersistsForever});
    const FaultRun r = run_plan(plan);
    SCOPED_TRACE(fault_kind_name(kase.kind));
    ASSERT_FALSE(r.status.is_ok());
    EXPECT_EQ(r.status.code(), kase.code) << r.status.to_string();
    // No silent truncation: the error names the rpc and the retry budget.
    EXPECT_NE(r.status.message().find("failed after"), std::string::npos);
    // Chunks before the failed one landed intact.
    ASSERT_GE(r.stored.size(), pos * kChunk);
    const auto expected = pattern(kBytes);
    EXPECT_TRUE(std::equal(r.stored.begin(),
                           r.stored.begin() + static_cast<std::ptrdiff_t>(
                                                  pos * kChunk),
                           expected.begin()));
    expect_counters_reconcile(r);
  }
}

TEST(FaultMatrixTest, OverDeadlineDelayBehavesLikeALoss) {
  FaultPlan plan;
  plan.delay_seconds = Seconds{5.0};  // above the default 1.1 s timeout
  plan.targeted.push_back({3, FaultKind::kDelay, 1});
  const FaultRun r = run_plan(plan);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.stored, pattern(kBytes));
  EXPECT_EQ(r.stats.timeouts, 1u);
  EXPECT_DOUBLE_EQ(r.stats.timeout_wait.seconds(),
                   RetryPolicy{}.rpc_timeout.seconds());
  expect_counters_reconcile(r);
}

TEST(FaultMatrixTest, SameSeedReproducesTheSameRetryTraceTwice) {
  FaultPlan plan;
  plan.seed = 0xDEADBEEF;
  plan.drop_rate = 0.15;
  plan.corrupt_rate = 0.10;
  plan.delay_rate = 0.05;
  plan.reject_rate = 0.05;
  const FaultRun a = run_plan(plan);
  const FaultRun b = run_plan(plan);
  EXPECT_EQ(a.status.to_string(), b.status.to_string());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.client_bytes, b.client_bytes);
  EXPECT_EQ(a.stored, b.stored);
  // A different seed yields a different episode.
  FaultPlan other = plan;
  other.seed = 0xBEEFDEAD;
  const FaultRun c = run_plan(other);
  EXPECT_NE(a.trace, c.trace);
}

TEST(FaultMatrixTest, RandomLossStormStillDeliversOrFailsTyped) {
  FaultPlan plan = FaultPlan::loss(/*seed=*/7, /*rate=*/0.3);
  plan.corrupt_rate = 0.1;
  const FaultRun r = run_plan(plan);
  if (r.status.is_ok()) {
    EXPECT_EQ(r.stored, pattern(kBytes));
  } else {
    EXPECT_NE(r.status.code(), ErrorCode::kOk);
  }
  expect_counters_reconcile(r);
}

TEST(FaultMatrixTest, EmptyFileSurvivesFaultPath) {
  FaultPlan plan;
  plan.targeted.push_back({0, FaultKind::kDrop, 1});
  const FaultRun r = run_plan(plan, /*data_bytes=*/0);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_TRUE(r.file_exists);
  EXPECT_TRUE(r.stored.empty());
}

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfTheKey) {
  FaultPlan plan = FaultPlan::loss(42, 0.5);
  plan.corrupt_rate = 0.3;
  FaultInjector a{plan};
  FaultInjector b{plan};
  // Query in different orders; decisions must only depend on the key.
  for (std::uint64_t rpc = 0; rpc < 64; ++rpc) {
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
      const auto da = a.decide(rpc, attempt, 128);
      const auto db = b.decide(63 - rpc, 3 - attempt, 128);
      const auto da2 = a.decide(rpc, attempt, 128);
      EXPECT_EQ(da.kind, da2.kind);
      EXPECT_EQ(da.corrupt_offset, da2.corrupt_offset);
      EXPECT_EQ(da.corrupt_mask, da2.corrupt_mask);
      (void)db;
    }
  }
  // Attempts draw independent fates: a chunk dropped at attempt 0 is not
  // doomed at attempt 1 (seed 42 at 50% loss must recover at least once).
  bool some_recovery = false;
  for (std::uint64_t rpc = 0; rpc < 64; ++rpc) {
    if (a.decide(rpc, 0, 128).kind == FaultKind::kDrop &&
        a.decide(rpc, 1, 128).kind == FaultKind::kNone) {
      some_recovery = true;
    }
  }
  EXPECT_TRUE(some_recovery);
}

}  // namespace
}  // namespace lcp::io
