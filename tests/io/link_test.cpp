#include "io/link.hpp"

#include <gtest/gtest.h>

namespace lcp::io {
namespace {

TEST(LinkTest, TenGigabitPayloadRate) {
  const LinkSpec link;  // defaults: 10 Gbps, 94% efficiency
  EXPECT_NEAR(link.payload_bytes_per_second(), 1.175e9, 1e6);
}

TEST(LinkTest, WireTimeScalesLinearly) {
  const LinkSpec link;
  const auto t1 = link.wire_time(Bytes::from_gb(1));
  const auto t4 = link.wire_time(Bytes::from_gb(4));
  EXPECT_NEAR(t4 / t1, 4.0, 1e-9);
  EXPECT_NEAR(t1.seconds(), 1e9 / 1.175e9, 1e-3);
}

TEST(LinkTest, EfficiencyReducesThroughput) {
  LinkSpec lossy;
  lossy.protocol_efficiency = 0.5;
  const LinkSpec clean;
  EXPECT_GT(lossy.wire_time(Bytes::from_gb(1)).seconds(),
            clean.wire_time(Bytes::from_gb(1)).seconds());
}

TEST(LinkTest, ZeroBytesTakeZeroTime) {
  const LinkSpec link;
  EXPECT_DOUBLE_EQ(link.wire_time(Bytes{0}).seconds(), 0.0);
}

}  // namespace
}  // namespace lcp::io
