#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "compress/common/framing.hpp"
#include "io/nfs_client.hpp"
#include "io/nfs_server.hpp"

namespace lcp::io {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::iota(out.begin(), out.end(), 0);
  return out;
}

TEST(NfsServerTest, StoresAndReadsBack) {
  NfsServer server;
  const auto data = pattern(100);
  ASSERT_TRUE(server.handle_write("/dump/a.bin", data).is_ok());
  const auto read = server.read_file("/dump/a.bin");
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(std::vector<std::uint8_t>(read->begin(), read->end()), data);
}

TEST(NfsServerTest, AppendsAcrossWrites) {
  NfsServer server;
  ASSERT_TRUE(server.handle_write("f", pattern(10)).is_ok());
  ASSERT_TRUE(server.handle_write("f", pattern(5)).is_ok());
  const auto read = server.read_file("f");
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->size(), 15u);
  EXPECT_EQ(server.total_bytes_stored().bytes(), 15u);
  EXPECT_EQ(server.rpc_count(), 2u);
}

TEST(NfsServerTest, RejectsEmptyPathAndMissingFile) {
  NfsServer server;
  EXPECT_FALSE(server.handle_write("", pattern(4)).is_ok());
  EXPECT_FALSE(server.read_file("missing").has_value());
}

TEST(NfsServerTest, RemoveAllClearsState) {
  NfsServer server;
  ASSERT_TRUE(server.handle_write("f", pattern(10)).is_ok());
  server.remove_all();
  EXPECT_EQ(server.file_count(), 0u);
  EXPECT_EQ(server.total_bytes_stored().bytes(), 0u);
  // rpcs_ used to survive remove_all(), leaving the counters inconsistent
  // with the (now empty) store.
  EXPECT_EQ(server.rpc_count(), 0u);
}

TEST(NfsServerTest, OffsetWriteIsIdempotentAndReturnsVerifier) {
  NfsServer server;
  const auto data = pattern(64);
  const auto first = server.handle_write_at("f", 0, data);
  ASSERT_TRUE(first.has_value());
  // Retransmitting the same chunk at the same offset is a no-op for the
  // stored bytes and the byte accounting (only growth counts).
  const auto again = server.handle_write_at("f", 0, data);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*first, *again);
  EXPECT_EQ(server.total_bytes_stored().bytes(), 64u);
  EXPECT_EQ(server.rpc_count(), 2u);
  const auto read = server.read_file("f");
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(std::vector<std::uint8_t>(read->begin(), read->end()), data);
}

TEST(NfsServerTest, OffsetWritePastEndZeroFillsTheGap) {
  NfsServer server;
  ASSERT_TRUE(server.handle_write_at("f", 10, pattern(5)).has_value());
  const auto read = server.read_file("f");
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), 15u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*read)[i], 0u);
  }
  EXPECT_EQ(server.total_bytes_stored().bytes(), 15u);
}

TEST(NfsCountersTest, ResetAndRewriteCycleReconciles) {
  NfsServer server;
  NfsClientConfig config;
  config.rpc_chunk_bytes = 128;
  NfsClient client{server, config};
  ASSERT_TRUE(client.write_file("a", pattern(1000)).is_ok());
  ASSERT_TRUE(client.write_file("b", pattern(300)).is_ok());
  EXPECT_EQ(client.bytes_sent().bytes(), server.total_bytes_stored().bytes());
  EXPECT_EQ(client.rpcs_issued(), server.rpc_count());

  // Reset both sides and rewrite: every counter pair must reconcile again
  // from zero (the stale-rpcs_ bug made server.rpc_count() run ahead).
  server.remove_all();
  client.reset_counters();
  EXPECT_EQ(client.bytes_sent().bytes(), 0u);
  EXPECT_EQ(client.rpcs_issued(), 0u);
  EXPECT_EQ(server.rpc_count(), 0u);

  ASSERT_TRUE(client.write_file("a", pattern(513)).is_ok());
  EXPECT_EQ(client.bytes_sent().bytes(), 513u);
  EXPECT_EQ(server.total_bytes_stored().bytes(), 513u);
  EXPECT_EQ(client.bytes_sent().bytes(), server.total_bytes_stored().bytes());
  EXPECT_EQ(client.rpcs_issued(), 5u);  // ceil(513/128)
  EXPECT_EQ(client.rpcs_issued(), server.rpc_count());
}

TEST(NfsClientTest, ChunkedWritePreservesBytes) {
  NfsServer server;
  NfsClientConfig config;
  config.rpc_chunk_bytes = 64;
  NfsClient client{server, config};
  const auto data = pattern(1000);  // 15 full chunks + remainder
  ASSERT_TRUE(client.write_file("big", data).is_ok());

  EXPECT_EQ(client.bytes_sent().bytes(), 1000u);
  EXPECT_EQ(client.rpcs_issued(), 16u);
  EXPECT_EQ(server.total_bytes_stored().bytes(), 1000u);
  const auto read = server.read_file("big");
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(std::vector<std::uint8_t>(read->begin(), read->end()), data);
}

TEST(NfsClientTest, ConservationClientSentEqualsServerStored) {
  NfsServer server;
  NfsClient client{server};
  ASSERT_TRUE(client.write_file("a", pattern(5000)).is_ok());
  ASSERT_TRUE(client.write_file("b", pattern(123)).is_ok());
  EXPECT_EQ(client.bytes_sent().bytes(),
            server.total_bytes_stored().bytes());
  EXPECT_EQ(server.file_count(), 2u);
}

TEST(NfsClientTest, EmptyFileCreatesEntry) {
  NfsServer server;
  NfsClient client{server};
  ASSERT_TRUE(client.write_file("empty", {}).is_ok());
  EXPECT_TRUE(server.has_file("empty"));
  const auto read = server.read_file("empty");
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->empty());
}

TEST(NfsClientTest, ZeroChunkSizeRejected) {
  NfsServer server;
  NfsClientConfig config;
  config.rpc_chunk_bytes = 0;
  NfsClient client{server, config};
  EXPECT_FALSE(client.write_file("x", pattern(10)).is_ok());
}

TEST(DiskSpecTest, WriteTimeFollowsThroughput) {
  DiskSpec disk;  // 0.35 GB/s default
  EXPECT_NEAR(disk.write_time(Bytes::from_gb(1)).seconds(), 1e9 / 0.35e9,
              1e-6);
}

TEST(NfsClientTest, FramedWriteRoundTripsThroughServer) {
  NfsServer server;
  NfsClient client{server};
  const auto data = pattern(50'000);
  ASSERT_TRUE(client.write_file_framed("ckpt", data).is_ok());

  const auto stored = server.read_file("ckpt");
  ASSERT_TRUE(stored.has_value());
  EXPECT_GT(stored->size(), data.size());  // frame overhead on the wire
  EXPECT_EQ(client.framed_overhead_bytes().bytes(),
            stored->size() - data.size());

  auto back = compress::read_framed(*stored);
  ASSERT_TRUE(back.has_value()) << back.status().to_string();
  EXPECT_EQ(*back, data);
}

TEST(NfsClientTest, FramedWriteUsesExplicitChunkSize) {
  NfsServer server;
  NfsClient client{server};
  const auto data = pattern(10'000);
  ASSERT_TRUE(client.write_file_framed("ckpt", data, 1024).is_ok());
  const auto stored = server.read_file("ckpt");
  ASSERT_TRUE(stored.has_value());
  auto info = compress::probe_frame(*stored);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->chunk_bytes, 1024u);
  EXPECT_EQ(info->chunk_count, 10u);  // ceil(10000 / 1024)
}

TEST(NfsClientTest, FramedWriteSurvivesStorageCorruption) {
  // End-to-end story: framed write, storage-side damage, partial read.
  NfsServer server;
  NfsClient client{server};
  const auto data = pattern(8 * 1024);
  ASSERT_TRUE(client.write_file_framed("ckpt", data, 1024).is_ok());
  auto stored = server.read_file("ckpt");
  ASSERT_TRUE(stored.has_value());
  std::vector<std::uint8_t> damaged(stored->begin(), stored->end());
  damaged[compress::kFrameHeaderBytes + compress::kChunkHeaderBytes + 10] ^=
      0xFF;  // kill chunk 0

  auto rec = compress::recover_framed(damaged);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->intact_chunks(), rec->chunks.size() - 1);
  EXPECT_NE(rec->chunks[0].state, compress::ChunkState::kIntact);
}

}  // namespace
}  // namespace lcp::io
