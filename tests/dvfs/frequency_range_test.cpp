#include "dvfs/frequency_range.hpp"

#include <gtest/gtest.h>

namespace lcp::dvfs {
namespace {

TEST(FrequencyRangeTest, BroadwellGridHas25Points) {
  // 0.8 .. 2.0 GHz at 50 MHz: 25 steps (Section III-B).
  const FrequencyRange r{GigaHertz{0.8}, GigaHertz{2.0},
                         GigaHertz::from_mhz(50)};
  const auto steps = r.steps();
  EXPECT_EQ(steps.size(), 25u);
  EXPECT_DOUBLE_EQ(steps.front().ghz(), 0.8);
  EXPECT_DOUBLE_EQ(steps.back().ghz(), 2.0);
}

TEST(FrequencyRangeTest, SkylakeGridHas29Points) {
  const FrequencyRange r{GigaHertz{0.8}, GigaHertz{2.2},
                         GigaHertz::from_mhz(50)};
  EXPECT_EQ(r.steps().size(), 29u);
}

TEST(FrequencyRangeTest, StepsAreUniform) {
  const FrequencyRange r{GigaHertz{0.8}, GigaHertz{2.0},
                         GigaHertz::from_mhz(50)};
  const auto steps = r.steps();
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_NEAR(steps[i].ghz() - steps[i - 1].ghz(), 0.05, 1e-9);
  }
}

TEST(FrequencyRangeTest, NonAlignedMaxIsStillIncluded) {
  const FrequencyRange r{GigaHertz{1.0}, GigaHertz{1.07},
                         GigaHertz::from_mhz(50)};
  const auto steps = r.steps();
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_DOUBLE_EQ(steps[1].ghz(), 1.05);
  EXPECT_DOUBLE_EQ(steps[2].ghz(), 1.07);
}

TEST(FrequencyRangeTest, ContainsInclusiveEndpoints) {
  const FrequencyRange r{GigaHertz{0.8}, GigaHertz{2.0},
                         GigaHertz::from_mhz(50)};
  EXPECT_TRUE(r.contains(GigaHertz{0.8}));
  EXPECT_TRUE(r.contains(GigaHertz{2.0}));
  EXPECT_TRUE(r.contains(GigaHertz{1.33}));
  EXPECT_FALSE(r.contains(GigaHertz{0.75}));
  EXPECT_FALSE(r.contains(GigaHertz{2.05}));
}

TEST(FrequencyRangeTest, QuantizeSnapsToNearestGridPoint) {
  const FrequencyRange r{GigaHertz{0.8}, GigaHertz{2.0},
                         GigaHertz::from_mhz(50)};
  EXPECT_DOUBLE_EQ(r.quantize(GigaHertz{1.774}).ghz(), 1.75);
  EXPECT_DOUBLE_EQ(r.quantize(GigaHertz{1.776}).ghz(), 1.80);
  EXPECT_DOUBLE_EQ(r.quantize(GigaHertz{0.1}).ghz(), 0.8);
  EXPECT_DOUBLE_EQ(r.quantize(GigaHertz{9.9}).ghz(), 2.0);
}

TEST(FrequencyRangeTest, DegenerateSinglePointRange) {
  const FrequencyRange r{GigaHertz{1.0}, GigaHertz{1.0},
                         GigaHertz::from_mhz(50)};
  EXPECT_EQ(r.steps().size(), 1u);
  EXPECT_DOUBLE_EQ(r.quantize(GigaHertz{5.0}).ghz(), 1.0);
}

}  // namespace
}  // namespace lcp::dvfs
