#include "dvfs/governor.hpp"

#include <gtest/gtest.h>

namespace lcp::dvfs {
namespace {

using power::ChipId;

TEST(GovernorTest, StartsAtMaxClock) {
  Governor gov{power::chip(ChipId::kBroadwellD1548)};
  EXPECT_DOUBLE_EQ(gov.current().ghz(), 2.0);
}

TEST(GovernorTest, SetFrequencyPinsAndSnaps) {
  Governor gov{power::chip(ChipId::kBroadwellD1548)};
  ASSERT_TRUE(gov.set_frequency(GigaHertz{1.51}).is_ok());
  EXPECT_DOUBLE_EQ(gov.current().ghz(), 1.50);
}

TEST(GovernorTest, OutOfRangeRequestFailsAndLeavesStateUntouched) {
  Governor gov{power::chip(ChipId::kBroadwellD1548)};
  const auto status = gov.set_frequency(GigaHertz{3.0});
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kOutOfRange);
  EXPECT_DOUBLE_EQ(gov.current().ghz(), 2.0);
}

TEST(GovernorTest, FractionOfMaxImplementsEqnThree) {
  Governor gov{power::chip(ChipId::kSkylake4114)};
  ASSERT_TRUE(gov.set_fraction_of_max(0.875).is_ok());
  // 0.875 * 2.2 = 1.925 GHz, snapped to the 50 MHz grid -> 1.90 or 1.95.
  EXPECT_NEAR(gov.current().ghz(), 1.925, 0.026);
  ASSERT_TRUE(gov.set_fraction_of_max(0.85).is_ok());
  EXPECT_NEAR(gov.current().ghz(), 1.87, 0.026);
}

TEST(GovernorTest, InvalidFractionRejected) {
  Governor gov{power::chip(ChipId::kBroadwellD1548)};
  EXPECT_FALSE(gov.set_fraction_of_max(0.0).is_ok());
  EXPECT_FALSE(gov.set_fraction_of_max(-0.5).is_ok());
  EXPECT_FALSE(gov.set_fraction_of_max(1.5).is_ok());
}

TEST(GovernorTest, ResetRestoresMaxAndTransitionsCount) {
  Governor gov{power::chip(ChipId::kBroadwellD1548)};
  ASSERT_TRUE(gov.set_frequency(GigaHertz{1.0}).is_ok());
  ASSERT_TRUE(gov.set_frequency(GigaHertz{1.2}).is_ok());
  EXPECT_EQ(gov.transition_count(), 2u);
  gov.reset();
  EXPECT_DOUBLE_EQ(gov.current().ghz(), 2.0);
}

TEST(GovernorTest, RangeMatchesChip) {
  Governor gov{power::chip(ChipId::kSkylake4114)};
  EXPECT_DOUBLE_EQ(gov.range().min().ghz(), 0.8);
  EXPECT_DOUBLE_EQ(gov.range().max().ghz(), 2.2);
}

}  // namespace
}  // namespace lcp::dvfs
