// Parameterized property suite: both codecs, every dataset family, every
// paper error bound — the absolute-error guarantee, round-trip shape
// integrity and ratio sanity must hold across the whole grid.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <string>
#include <tuple>

#include "compress/common/metrics.hpp"
#include "compress/common/registry.hpp"
#include "data/generators.hpp"
#include "data/registry.hpp"

namespace lcp::compress {
namespace {

data::Field small_dataset(data::DatasetId id, std::uint64_t seed) {
  switch (id) {
    case data::DatasetId::kCesmAtm:
      return data::generate_cesm_atm(4, 36, 72, seed);
    case data::DatasetId::kHacc:
      return data::generate_hacc(16384, seed);
    case data::DatasetId::kNyx:
      return data::generate_nyx(24, seed);
    case data::DatasetId::kIsabel:
      return data::generate_isabel(data::IsabelKind::kPressure, 8, 24, 24,
                                   seed);
  }
  return {};
}

using Param = std::tuple<CodecId, data::DatasetId, double>;

class CodecPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(CodecPropertyTest, AbsoluteErrorBoundIsHonoured) {
  const auto [codec_id, dataset_id, eb_rel] = GetParam();
  const auto field = small_dataset(dataset_id, 11);
  // Bounds are relative to the value range so every dataset (K-scale CESM,
  // 1e10-scale NYX) is exercised in a comparable regime.
  const double eb = static_cast<double>(field.value_range().span()) * eb_rel;
  const auto codec = make_compressor(codec_id);
  const auto report = round_trip(*codec, field, ErrorBound::absolute(eb));
  ASSERT_TRUE(report.has_value()) << report.status().to_string();
  EXPECT_TRUE(report->bound_respected)
      << codec->name() << " on " << data::dataset_name(dataset_id)
      << " eb=" << eb << " max_err=" << report->error.max_abs_error;
}

TEST_P(CodecPropertyTest, DecodedFieldPreservesShapeAndName) {
  const auto [codec_id, dataset_id, eb_rel] = GetParam();
  const auto field = small_dataset(dataset_id, 13);
  const double eb = static_cast<double>(field.value_range().span()) * eb_rel;
  const auto codec = make_compressor(codec_id);
  auto compressed = codec->compress(field, ErrorBound::absolute(eb));
  ASSERT_TRUE(compressed.has_value());
  auto decoded = codec->decompress(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->field.dims(), field.dims());
  EXPECT_EQ(decoded->field.name(), field.name());
}

TEST_P(CodecPropertyTest, RatioAboveOneOnSmoothData) {
  const auto [codec_id, dataset_id, eb_rel] = GetParam();
  if (dataset_id == data::DatasetId::kHacc) {
    GTEST_SKIP() << "HACC particle streams are near-incompressible by design";
  }
  const auto field = small_dataset(dataset_id, 17);
  const double eb = static_cast<double>(field.value_range().span()) * eb_rel;
  const auto codec = make_compressor(codec_id);
  auto compressed = codec->compress(field, ErrorBound::absolute(eb));
  ASSERT_TRUE(compressed.has_value());
  EXPECT_GT(compressed->compression_ratio(), 1.0)
      << codec->name() << " on " << data::dataset_name(dataset_id);
}

TEST_P(CodecPropertyTest, CompressionIsDeterministic) {
  const auto [codec_id, dataset_id, eb_rel] = GetParam();
  const auto field = small_dataset(dataset_id, 19);
  const double eb = static_cast<double>(field.value_range().span()) * eb_rel;
  const auto codec = make_compressor(codec_id);
  auto a = codec->compress(field, ErrorBound::absolute(eb));
  auto b = codec->compress(field, ErrorBound::absolute(eb));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->container, b->container);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [codec_id, dataset_id, eb] = info.param;
  std::string name = codec_name(codec_id);
  name += "_";
  name += data::dataset_name(dataset_id);
  name += "_eb";
  name += std::to_string(static_cast<int>(-std::log10(eb)));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsDatasetsBounds, CodecPropertyTest,
    ::testing::Combine(
        ::testing::Values(CodecId::kSz, CodecId::kZfp),
        ::testing::Values(data::DatasetId::kCesmAtm, data::DatasetId::kHacc,
                          data::DatasetId::kNyx, data::DatasetId::kIsabel),
        ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4)),
    param_name);

}  // namespace
}  // namespace lcp::compress
