#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "compress/zfp/embedded_coder.hpp"
#include "compress/zfp/negabinary.hpp"
#include "support/rng.hpp"

namespace lcp::zfp {
namespace {

TEST(NegabinaryTest, ZeroMapsToZero) {
  EXPECT_EQ(to_negabinary(0), 0u);
  EXPECT_EQ(from_negabinary(0), 0);
}

TEST(NegabinaryTest, RoundTripsAllSmallValues) {
  for (std::int64_t x = -4096; x <= 4096; ++x) {
    EXPECT_EQ(from_negabinary(to_negabinary(x)), x);
  }
}

TEST(NegabinaryTest, RoundTripsRandomLargeValues) {
  Rng rng{1};
  for (int i = 0; i < 10000; ++i) {
    const auto x = static_cast<std::int64_t>(rng.next_u64() >> 2) *
                   (rng.uniform() < 0.5 ? 1 : -1);
    EXPECT_EQ(from_negabinary(to_negabinary(x)), x);
  }
}

TEST(NegabinaryTest, SmallMagnitudesHaveSmallPatterns) {
  // The property embedded coding depends on: |x| small => high bits zero.
  for (std::int64_t x = -100; x <= 100; ++x) {
    EXPECT_LT(to_negabinary(x), 1u << 9) << x;
  }
}

TEST(NegabinaryTest, TruncationErrorBound) {
  // Zeroing bits below `plane` changes the value by < 2^(plane+1).
  Rng rng{2};
  for (int trial = 0; trial < 2000; ++trial) {
    const auto x = static_cast<std::int64_t>(rng.next_u64() % (1ULL << 40)) -
                   (1LL << 39);
    const unsigned plane = 1 + static_cast<unsigned>(rng.uniform_index(30));
    const std::uint64_t nb = to_negabinary(x);
    const std::uint64_t mask = ~((std::uint64_t{1} << plane) - 1);
    const std::int64_t truncated = from_negabinary(nb & mask);
    EXPECT_LT(std::llabs(truncated - x), truncation_error_bound(plane))
        << "x=" << x << " plane=" << plane;
  }
}

std::vector<std::uint64_t> code_round_trip(
    const std::vector<std::uint64_t>& coeffs, unsigned hi, unsigned lo) {
  BitWriter w;
  encode_block_planes(coeffs, hi, lo, w);
  const auto bytes = w.finish();
  BitReader r{bytes};
  std::vector<std::uint64_t> out(coeffs.size(), 0);
  EXPECT_TRUE(decode_block_planes(out, hi, lo, r));
  return out;
}

TEST(EmbeddedCoderTest, FullPrecisionIsLossless) {
  Rng rng{3};
  std::vector<std::uint64_t> coeffs(64);
  for (auto& c : coeffs) {
    c = rng.next_u64() & ((1ULL << 40) - 1);
  }
  EXPECT_EQ(code_round_trip(coeffs, 39, 0), coeffs);
}

TEST(EmbeddedCoderTest, AllZeroBlockIsTiny) {
  const std::vector<std::uint64_t> coeffs(64, 0);
  BitWriter w;
  encode_block_planes(coeffs, 39, 0, w);
  // One "no significance" bit per plane.
  EXPECT_EQ(w.bit_count(), 40u);
  const auto bytes = w.finish();
  BitReader r{bytes};
  std::vector<std::uint64_t> out(64, 0);
  EXPECT_TRUE(decode_block_planes(out, 39, 0, r));
  EXPECT_EQ(out, coeffs);
}

TEST(EmbeddedCoderTest, TruncatedPlanesMatchMasking) {
  // Decoding planes [lo, hi] must equal the original with bits below lo
  // zeroed — the embedded-coding invariant.
  Rng rng{4};
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint64_t> coeffs(16);
    for (auto& c : coeffs) {
      // Skewed magnitudes like real transform output.
      const unsigned bits = static_cast<unsigned>(rng.uniform_index(38));
      c = rng.next_u64() & ((1ULL << bits) - 1);
    }
    const unsigned lo = static_cast<unsigned>(rng.uniform_index(20));
    const auto decoded = code_round_trip(coeffs, 39, lo);
    const std::uint64_t mask = ~((std::uint64_t{1} << lo) - 1);
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      EXPECT_EQ(decoded[i], coeffs[i] & mask) << "i=" << i << " lo=" << lo;
    }
  }
}

TEST(EmbeddedCoderTest, ProgressivePrefixProperty) {
  // Decoding a prefix of planes yields the same coefficients as encoding
  // only those planes — the stream is truncatable.
  Rng rng{5};
  std::vector<std::uint64_t> coeffs(16);
  for (auto& c : coeffs) {
    c = rng.next_u64() & ((1ULL << 30) - 1);
  }
  BitWriter w;
  encode_block_planes(coeffs, 29, 0, w);
  const auto full = w.finish();

  BitWriter w10;
  encode_block_planes(coeffs, 29, 20, w10);
  const auto top10 = w10.finish();

  // The first bits of the full stream are exactly the 10-plane stream.
  BitReader rf{full};
  BitReader rt{top10};
  std::vector<std::uint64_t> a(16, 0);
  std::vector<std::uint64_t> b(16, 0);
  EXPECT_TRUE(decode_block_planes(a, 29, 20, rf));
  EXPECT_TRUE(decode_block_planes(b, 29, 20, rt));
  EXPECT_EQ(a, b);
}

TEST(EmbeddedCoderTest, SignificancePrefixGrowthOrderMatters) {
  // A single large trailing coefficient costs unary offset bits but must
  // still round-trip.
  std::vector<std::uint64_t> coeffs(64, 0);
  coeffs[63] = 1ULL << 35;
  EXPECT_EQ(code_round_trip(coeffs, 39, 0), coeffs);
}

TEST(EmbeddedCoderTest, DecodeDetectsTruncatedStream) {
  Rng rng{6};
  std::vector<std::uint64_t> coeffs(64);
  for (auto& c : coeffs) {
    c = rng.next_u64() & ((1ULL << 40) - 1);
  }
  BitWriter w;
  encode_block_planes(coeffs, 39, 0, w);
  auto bytes = w.finish();
  bytes.resize(bytes.size() / 4);
  BitReader r{bytes};
  std::vector<std::uint64_t> out(64, 0);
  // Either detected (false) or decodes with zero-padded tail; must not
  // crash or write out of bounds. Most truncations are detected via
  // overflow.
  (void)decode_block_planes(out, 39, 0, r);
  EXPECT_TRUE(r.overflowed());
}

}  // namespace
}  // namespace lcp::zfp
