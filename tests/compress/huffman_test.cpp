#include "compress/sz/huffman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace lcp::sz {
namespace {

std::vector<std::uint32_t> decode_or_die(const std::vector<std::uint8_t>& blob) {
  auto decoded = huffman_decode(blob);
  EXPECT_TRUE(decoded.has_value()) << decoded.status().to_string();
  return decoded.has_value() ? *decoded : std::vector<std::uint32_t>{};
}

TEST(HuffmanTest, EmptyInputRoundTrips) {
  const auto blob = huffman_encode({}, 16);
  EXPECT_TRUE(decode_or_die(blob).empty());
}

TEST(HuffmanTest, SingleSymbolAlphabetRoundTrips) {
  const std::vector<std::uint32_t> symbols(100, 3);
  const auto blob = huffman_encode(symbols, 8);
  EXPECT_EQ(decode_or_die(blob), symbols);
}

TEST(HuffmanTest, TwoSymbolsRoundTrip) {
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 64; ++i) {
    symbols.push_back(i % 3 == 0 ? 1u : 0u);
  }
  const auto blob = huffman_encode(symbols, 2);
  EXPECT_EQ(decode_or_die(blob), symbols);
}

TEST(HuffmanTest, SkewedDistributionCompresses) {
  // 95% of symbols are one value: entropy ~0.3 bits -> big savings over the
  // 16-bit raw representation.
  Rng rng{1};
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    symbols.push_back(rng.uniform() < 0.95 ? 32768u
                                           : static_cast<std::uint32_t>(
                                                 32760 + rng.uniform_index(16)));
  }
  const auto blob = huffman_encode(symbols, 65536);
  EXPECT_EQ(decode_or_die(blob), symbols);
  EXPECT_LT(blob.size(), symbols.size());  // < 1 byte per 16-bit symbol
}

TEST(HuffmanTest, UniformRandomRoundTrips) {
  Rng rng{2};
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(static_cast<std::uint32_t>(rng.uniform_index(257)));
  }
  const auto blob = huffman_encode(symbols, 257);
  EXPECT_EQ(decode_or_die(blob), symbols);
}

TEST(HuffmanTest, LargeAlphabetSparseUseRoundTrips) {
  // SZ uses a 65536-symbol alphabet of which few codes appear.
  std::vector<std::uint32_t> symbols = {0, 65535, 32768, 32769, 32767, 0, 0};
  const auto blob = huffman_encode(symbols, 65536);
  EXPECT_EQ(decode_or_die(blob), symbols);
}

TEST(HuffmanTest, RandomizedRoundTripProperty) {
  Rng rng{77};
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t alphabet =
        2 + static_cast<std::uint32_t>(rng.uniform_index(1000));
    const std::size_t count = rng.uniform_index(3000);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(count);
    // Zipf-ish skew to exercise variable code lengths.
    for (std::size_t i = 0; i < count; ++i) {
      const double u = rng.uniform();
      symbols.push_back(
          static_cast<std::uint32_t>(u * u * u * (alphabet - 1)));
    }
    const auto blob = huffman_encode(symbols, alphabet);
    EXPECT_EQ(decode_or_die(blob), symbols);
  }
}

TEST(HuffmanTest, CodeLengthsSatisfyKraft) {
  Rng rng{5};
  std::vector<std::uint64_t> freq(300, 0);
  for (int i = 0; i < 10000; ++i) {
    ++freq[static_cast<std::size_t>(rng.uniform() * rng.uniform() * 299)];
  }
  const auto lengths = huffman_code_lengths(freq);
  long double kraft = 0.0L;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) {
      EXPECT_GT(lengths[s], 0u);
      kraft += std::pow(2.0L, -static_cast<long double>(lengths[s]));
    } else {
      EXPECT_EQ(lengths[s], 0u);
    }
  }
  EXPECT_LE(kraft, 1.0L + 1e-12L);
}

TEST(HuffmanTest, DecodeRejectsTruncatedBlob) {
  std::vector<std::uint32_t> symbols(100, 1);
  auto blob = huffman_encode(symbols, 4);
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(huffman_decode(blob).has_value());
}

TEST(HuffmanTest, DecodeRejectsCountAboveLimit) {
  const std::vector<std::uint32_t> symbols(100, 1);
  const auto blob = huffman_encode(symbols, 4);
  EXPECT_FALSE(huffman_decode(blob, 50).has_value());
}

TEST(HuffmanTest, DecodeRejectsGarbage) {
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  EXPECT_FALSE(huffman_decode(garbage).has_value());
}

TEST(HuffmanTest, GeometricHistogramYieldsPathTreeDepths) {
  // freq[i] = 2^i degenerates the Huffman tree into a path: the two rarest
  // symbols sit at depth n-1 and each wealthier symbol one level higher.
  // Regression for the topological-pass depth computation in build_lengths.
  constexpr std::size_t kSymbols = 24;
  std::vector<std::uint64_t> freq(kSymbols);
  for (std::size_t i = 0; i < kSymbols; ++i) {
    freq[i] = std::uint64_t{1} << i;
  }
  const auto lengths = huffman_code_lengths(freq);
  ASSERT_EQ(lengths.size(), kSymbols);
  EXPECT_EQ(lengths[0], kSymbols - 1);
  EXPECT_EQ(lengths[1], kSymbols - 1);
  for (std::size_t s = 2; s < kSymbols; ++s) {
    EXPECT_EQ(lengths[s], kSymbols - s) << "symbol " << s;
  }
}

TEST(HuffmanTest, DeepCodesBeyondDecodeTableRoundTrip) {
  // The geometric histogram produces code lengths up to 15 bits — past the
  // decoder's 11-bit primary table — so this round-trip exercises the
  // canonical fallback path alongside the table fast path.
  constexpr std::size_t kSymbols = 16;
  std::vector<std::uint32_t> symbols;
  for (std::uint32_t s = 0; s < kSymbols; ++s) {
    const std::size_t copies = std::size_t{1} << s;
    symbols.insert(symbols.end(), copies, s);
  }
  Rng rng{29};
  for (std::size_t i = symbols.size(); i > 1; --i) {
    std::swap(symbols[i - 1], symbols[rng.uniform_index(i)]);
  }
  const auto blob = huffman_encode(symbols, kSymbols);
  const auto decoded = huffman_decode(blob, symbols.size());
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(*decoded, symbols);
}

}  // namespace
}  // namespace lcp::sz
