#include "compress/common/parallel.hpp"

#include <gtest/gtest.h>

#include "compress/common/registry.hpp"
#include "data/field.hpp"
#include "data/generators.hpp"

namespace lcp::compress {
namespace {

TEST(ChunkRowsTest, SplitsAlongSlowestAxis) {
  const auto rows = chunk_rows(data::Dims::d3(20, 100, 100), 50000);
  // plane = 10000 elements -> 5 rows per chunk -> 4 chunks of 5.
  EXPECT_EQ(rows, (std::vector<std::size_t>{5, 5, 5, 5}));
}

TEST(ChunkRowsTest, RowsSumToExtentForAwkwardSplits) {
  for (std::size_t target : {1ul, 999ul, 123456ul, 100000000ul}) {
    const auto rows = chunk_rows(data::Dims::d3(17, 33, 7), target);
    std::size_t total = 0;
    for (std::size_t r : rows) {
      EXPECT_GT(r, 0u);
      total += r;
    }
    EXPECT_EQ(total, 17u) << target;
  }
}

TEST(ChunkRowsTest, TinyTargetStillGivesWholePlanes) {
  const auto rows = chunk_rows(data::Dims::d2(4, 1000), 10);
  EXPECT_EQ(rows, (std::vector<std::size_t>{1, 1, 1, 1}));
}

class ParallelCodecTest : public ::testing::TestWithParam<CodecId> {};

TEST_P(ParallelCodecTest, RoundTripMatchesFieldAndBound) {
  ThreadPool pool{3};
  const auto codec = make_compressor(GetParam());
  const auto field = data::generate_cesm_atm(12, 40, 60, 5);
  ParallelOptions options;
  options.target_chunk_elements = 4000;  // force many chunks

  const auto bound = ErrorBound::absolute(1e-3);
  auto compressed = parallel_compress(*codec, field, bound, pool, options);
  ASSERT_TRUE(compressed.has_value()) << compressed.status().to_string();

  auto decoded = parallel_decompress(*codec, compressed->container, pool);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->field.dims(), field.dims());
  EXPECT_EQ(decoded->field.name(), field.name());

  const auto err = data::compare_fields(field, decoded->field);
  ASSERT_TRUE(err.has_value());
  EXPECT_LE(err->max_abs_error, 1e-3 * (1 + 1e-6));
}

TEST_P(ParallelCodecTest, OneDimensionalFieldChunks) {
  ThreadPool pool{2};
  const auto codec = make_compressor(GetParam());
  const auto field = data::generate_hacc(50000, 5);
  ParallelOptions options;
  options.target_chunk_elements = 8192;
  auto compressed = parallel_compress(*codec, field,
                                      ErrorBound::absolute(1e-2), pool,
                                      options);
  ASSERT_TRUE(compressed.has_value());
  auto decoded = parallel_decompress(*codec, compressed->container, pool);
  ASSERT_TRUE(decoded.has_value());
  const auto err = data::compare_fields(field, decoded->field);
  ASSERT_TRUE(err.has_value());
  EXPECT_LE(err->max_abs_error, 1e-2 * (1 + 1e-6));
}

TEST_P(ParallelCodecTest, SingleChunkDegenerateCase) {
  ThreadPool pool{2};
  const auto codec = make_compressor(GetParam());
  const auto field = data::generate_nyx(16, 6);
  ParallelOptions options;
  options.target_chunk_elements = 1 << 30;  // everything in one chunk
  auto compressed = parallel_compress(*codec, field,
                                      ErrorBound::absolute(1e-3), pool,
                                      options);
  ASSERT_TRUE(compressed.has_value());
  auto decoded = parallel_decompress(*codec, compressed->container, pool);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->field.element_count(), field.element_count());
}

TEST_P(ParallelCodecTest, ChunkingIsDeterministic) {
  ThreadPool pool{4};
  const auto codec = make_compressor(GetParam());
  const auto field = data::generate_cesm_atm(8, 30, 30, 7);
  ParallelOptions options;
  options.target_chunk_elements = 2000;
  auto a = parallel_compress(*codec, field, ErrorBound::absolute(1e-2), pool,
                             options);
  auto b = parallel_compress(*codec, field, ErrorBound::absolute(1e-2), pool,
                             options);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->container, b->container);
}

TEST_P(ParallelCodecTest, WorkerCountNeverChangesTheBytes) {
  // Chunk boundaries depend only on the options, so the frame must be
  // byte-identical no matter how many workers raced over the chunks —
  // including 0 (hardware concurrency) and a deliberately odd 7 that does
  // not divide the 13-chunk split.
  const auto codec = make_compressor(GetParam());
  const auto field = data::generate_cesm_atm(13, 24, 36, 9);
  ParallelOptions options;
  options.target_chunk_elements = 24 * 36;  // one hyperplane per chunk
  const auto bound = ErrorBound::absolute(1e-3);

  ThreadPool reference_pool{1};
  auto reference =
      parallel_compress(*codec, field, bound, reference_pool, options);
  ASSERT_TRUE(reference.has_value());

  for (std::size_t workers : {std::size_t{0}, std::size_t{7}}) {
    ThreadPool pool{workers};
    auto compressed = parallel_compress(*codec, field, bound, pool, options);
    ASSERT_TRUE(compressed.has_value()) << workers;
    EXPECT_EQ(compressed->container, reference->container) << workers;

    auto decoded = parallel_decompress(*codec, compressed->container, pool);
    ASSERT_TRUE(decoded.has_value()) << workers;
    auto reference_decoded =
        parallel_decompress(*codec, reference->container, reference_pool);
    ASSERT_TRUE(reference_decoded.has_value()) << workers;
    ASSERT_EQ(decoded->field.element_count(),
              reference_decoded->field.element_count());
    const auto lhs = decoded->field.values();
    const auto rhs = reference_decoded->field.values();
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      ASSERT_EQ(lhs[i], rhs[i]) << "element " << i << " workers " << workers;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothCodecs, ParallelCodecTest,
                         ::testing::Values(CodecId::kSz, CodecId::kZfp),
                         [](const auto& suite_info) {
                           return std::string{codec_name(suite_info.param)};
                         });

TEST(ParallelFrameTest, DecompressRejectsCodecMismatch) {
  ThreadPool pool{2};
  const auto sz = make_compressor(CodecId::kSz);
  const auto zfp = make_compressor(CodecId::kZfp);
  const auto field = data::generate_nyx(8, 8);
  auto compressed =
      parallel_compress(*sz, field, ErrorBound::absolute(1e-2), pool);
  ASSERT_TRUE(compressed.has_value());
  const auto decoded = parallel_decompress(*zfp, compressed->container, pool);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ParallelFrameTest, DecompressRejectsTruncationAndGarbage) {
  ThreadPool pool{2};
  const auto codec = make_compressor(CodecId::kSz);
  const auto field = data::generate_nyx(8, 9);
  auto compressed =
      parallel_compress(*codec, field, ErrorBound::absolute(1e-2), pool);
  ASSERT_TRUE(compressed.has_value());

  auto truncated = compressed->container;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(parallel_decompress(*codec, truncated, pool).has_value());

  const std::vector<std::uint8_t> garbage(100, 0x5A);
  EXPECT_FALSE(parallel_decompress(*codec, garbage, pool).has_value());
}

TEST(ParallelFrameTest, CompressRejectsEmptyField) {
  ThreadPool pool{1};
  const auto codec = make_compressor(CodecId::kSz);
  data::Field empty;
  EXPECT_FALSE(
      parallel_compress(*codec, empty, ErrorBound::absolute(1e-2), pool)
          .has_value());
}

}  // namespace
}  // namespace lcp::compress
