#include "compress/lossless/shuffle_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "compress/common/metrics.hpp"
#include "compress/common/registry.hpp"
#include "data/generators.hpp"
#include "support/rng.hpp"

namespace lcp::lossless {
namespace {

TEST(ShuffleTest, ShuffleUnshuffleIsIdentity) {
  Rng rng{1};
  std::vector<float> values(1000);
  for (auto& v : values) {
    v = static_cast<float>(rng.normal(0.0, 100.0));
  }
  std::vector<std::uint8_t> shuffled(values.size() * 4);
  shuffle_bytes(values, shuffled);
  std::vector<float> back(values.size());
  unshuffle_bytes(shuffled, back);
  EXPECT_EQ(back, values);
}

TEST(ShuffleTest, GroupsBytePlanes) {
  // Two floats whose byte patterns are known.
  const std::vector<float> values = {
      std::bit_cast<float>(std::uint32_t{0x04030201}),
      std::bit_cast<float>(std::uint32_t{0x44434241})};
  std::vector<std::uint8_t> shuffled(8);
  shuffle_bytes(values, shuffled);
  EXPECT_EQ(shuffled, (std::vector<std::uint8_t>{0x01, 0x41, 0x02, 0x42,
                                                 0x03, 0x43, 0x04, 0x44}));
}

TEST(ShuffleCodecTest, RoundTripIsBitExact) {
  const auto field = data::generate_cesm_atm(4, 32, 32, 3);
  ShuffleCodec codec;
  auto compressed =
      codec.compress(field, compress::ErrorBound::absolute(1e-3));
  ASSERT_TRUE(compressed.has_value());
  auto decoded = codec.decompress(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::equal(field.values().begin(), field.values().end(),
                         decoded->field.values().begin()));
}

TEST(ShuffleCodecTest, CompressesScientificDataSomewhat) {
  const auto field = data::generate_cesm_atm(4, 48, 48, 4);
  ShuffleCodec codec;
  auto compressed =
      codec.compress(field, compress::ErrorBound::absolute(1e-3));
  ASSERT_TRUE(compressed.has_value());
  EXPECT_GT(compressed->compression_ratio(), 1.05);
}

TEST(ShuffleCodecTest, LossyBeatsLosslessOnRatio) {
  // The paper's motivating claim, reproduced: at a useful bound, SZ's
  // ratio exceeds the lossless baseline's by a wide margin.
  const auto field = data::generate_nyx(24, 5);
  ShuffleCodec lossless;
  const auto sz = compress::make_compressor(compress::CodecId::kSz);
  const auto bound = compress::ErrorBound::absolute(
      static_cast<double>(field.value_range().span()) * 1e-3);
  auto r_lossless = lossless.compress(field, bound);
  auto r_sz = sz->compress(field, bound);
  ASSERT_TRUE(r_lossless.has_value());
  ASSERT_TRUE(r_sz.has_value());
  EXPECT_GT(r_sz->compression_ratio(),
            1.5 * r_lossless->compression_ratio());
}

TEST(ShuffleCodecTest, RegistryLookupAndAnyRouting) {
  auto codec = compress::make_compressor("lossless");
  ASSERT_TRUE(codec.has_value());
  EXPECT_EQ((*codec)->name(), "lossless");

  const auto field = data::generate_hacc(4096, 6);
  auto compressed =
      (*codec)->compress(field, compress::ErrorBound::absolute(1.0));
  ASSERT_TRUE(compressed.has_value());
  auto decoded = compress::decompress_any(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::equal(field.values().begin(), field.values().end(),
                         decoded->field.values().begin()));
}

TEST(ShuffleCodecTest, HandlesNonFiniteValues) {
  // Lossless path has no finite requirement: NaN/Inf round-trip bit-exact.
  data::Field field{"weird", data::Dims::d1(4),
                    {std::numeric_limits<float>::quiet_NaN(),
                     std::numeric_limits<float>::infinity(), -0.0F, 1.0F}};
  ShuffleCodec codec;
  auto compressed =
      codec.compress(field, compress::ErrorBound::absolute(1e-3));
  ASSERT_TRUE(compressed.has_value());
  auto decoded = codec.decompress(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::isnan(decoded->field.values()[0]));
  EXPECT_TRUE(std::isinf(decoded->field.values()[1]));
  EXPECT_EQ(std::bit_cast<std::uint32_t>(decoded->field.values()[2]),
            std::bit_cast<std::uint32_t>(-0.0F));
}

TEST(ShuffleCodecTest, RejectsCorruptAndForeignContainers) {
  const auto field = data::generate_nyx(8, 7);
  ShuffleCodec codec;
  auto compressed =
      codec.compress(field, compress::ErrorBound::absolute(1e-3));
  ASSERT_TRUE(compressed.has_value());
  auto cut = compressed->container;
  cut.resize(cut.size() / 2);
  EXPECT_FALSE(codec.decompress(cut).has_value());

  const auto sz = compress::make_compressor(compress::CodecId::kSz);
  auto sz_blob = sz->compress(field, compress::ErrorBound::absolute(1e-2));
  ASSERT_TRUE(sz_blob.has_value());
  EXPECT_FALSE(codec.decompress(sz_blob->container).has_value());
}

}  // namespace
}  // namespace lcp::lossless
