#include "compress/zfp/transform.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "support/rng.hpp"

namespace lcp::zfp {
namespace {

TEST(TransformTest, Lift4IsExactlyInvertible) {
  Rng rng{1};
  for (int trial = 0; trial < 1000; ++trial) {
    std::array<std::int64_t, 4> line{};
    for (auto& v : line) {
      v = static_cast<std::int64_t>(rng.next_u64() % (1ULL << 40)) -
          (1LL << 39);
    }
    auto copy = line;
    forward_lift4(copy.data(), 1);
    inverse_lift4(copy.data(), 1);
    EXPECT_EQ(copy, line);
  }
}

TEST(TransformTest, Lift4WithStride) {
  std::vector<std::int64_t> grid(16);
  std::iota(grid.begin(), grid.end(), -8);
  auto copy = grid;
  forward_lift4(copy.data() + 1, 4);  // one column of a 4x4 block
  inverse_lift4(copy.data() + 1, 4);
  EXPECT_EQ(copy, grid);
}

TEST(TransformTest, FullBlockInvertibleAllRanks) {
  Rng rng{2};
  for (std::size_t rank = 1; rank <= 3; ++rank) {
    const std::size_t n = std::size_t{1} << (2 * rank);
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<std::int64_t> block(n);
      for (auto& v : block) {
        v = static_cast<std::int64_t>(rng.next_u64() % (1ULL << 58)) -
            (1LL << 57);
      }
      auto copy = block;
      forward_transform(copy, rank);
      inverse_transform(copy, rank);
      EXPECT_EQ(copy, block) << "rank " << rank;
    }
  }
}

TEST(TransformTest, ConstantBlockConcentratesInDcCoefficient) {
  std::vector<std::int64_t> block(64, 1000);
  forward_transform(block, 3);
  EXPECT_EQ(block[0], 1000);
  for (std::size_t i = 1; i < 64; ++i) {
    EXPECT_EQ(block[i], 0) << i;
  }
}

TEST(TransformTest, LinearRampHasSmallHighFrequencyCoefficients) {
  std::vector<std::int64_t> block(4);
  std::iota(block.begin(), block.end(), 1000000);
  forward_transform(block, 1);
  // Smooth coefficient carries the magnitude; details are tiny.
  EXPECT_GT(std::llabs(block[0]), 100000);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_LT(std::llabs(block[i]), 16) << i;
  }
}

TEST(TransformTest, GrowthBoundedByEightInThreeD) {
  Rng rng{3};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::int64_t> block(64);
    std::int64_t max_in = 0;
    for (auto& v : block) {
      v = static_cast<std::int64_t>(rng.next_u64() % (1ULL << 30)) -
          (1LL << 29);
      max_in = std::max<std::int64_t>(max_in, std::llabs(v));
    }
    forward_transform(block, 3);
    for (auto v : block) {
      EXPECT_LE(std::llabs(v), 8 * max_in + 8);
    }
  }
}

TEST(CoefficientOrderTest, IsAPermutation) {
  for (std::size_t rank = 1; rank <= 3; ++rank) {
    const auto& order = coefficient_order(rank);
    const std::size_t n = std::size_t{1} << (2 * rank);
    ASSERT_EQ(order.size(), n);
    std::vector<bool> seen(n, false);
    for (auto idx : order) {
      ASSERT_LT(idx, n);
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
}

TEST(CoefficientOrderTest, DcComesFirst) {
  for (std::size_t rank = 1; rank <= 3; ++rank) {
    EXPECT_EQ(coefficient_order(rank)[0], 0u);
  }
}

TEST(CoefficientOrderTest, WeightIsNonDecreasingAlongOrder) {
  // Recompute weights independently and verify the order sorts them.
  auto weight = [](std::uint16_t idx, std::size_t rank) {
    static constexpr unsigned kW[4] = {0, 1, 2, 2};
    unsigned total = 0;
    for (std::size_t a = 0; a < rank; ++a) {
      total += kW[idx & 3];
      idx = static_cast<std::uint16_t>(idx >> 2);
    }
    return total;
  };
  for (std::size_t rank = 1; rank <= 3; ++rank) {
    const auto& order = coefficient_order(rank);
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_LE(weight(order[i - 1], rank), weight(order[i], rank));
    }
  }
}

}  // namespace
}  // namespace lcp::zfp
