#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "compress/sz/lorenzo.hpp"
#include "compress/sz/quantizer.hpp"

namespace lcp::sz {
namespace {

TEST(LorenzoTest, FirstElementPredictsZero) {
  const std::vector<float> d = {5.0F};
  EXPECT_EQ(lorenzo_predict_1d(d, 0), 0.0F);
  EXPECT_EQ(lorenzo_predict_2d(d, 0, 0, 1), 0.0F);
  EXPECT_EQ(lorenzo_predict_3d(d, 0, 0, 0, 1, 1), 0.0F);
}

TEST(LorenzoTest, OneDUsesPreviousNeighbor) {
  const std::vector<float> d = {1.0F, 4.0F, 9.0F};
  EXPECT_EQ(lorenzo_predict_1d(d, 1), 1.0F);
  EXPECT_EQ(lorenzo_predict_1d(d, 2), 4.0F);
}

TEST(LorenzoTest, TwoDIsExactOnBilinearData) {
  // f(i,j) = 3i + 2j + 1 is reproduced exactly by the 2-D Lorenzo stencil.
  const std::size_t n0 = 4;
  const std::size_t n1 = 5;
  std::vector<float> d(n0 * n1);
  for (std::size_t i = 0; i < n0; ++i) {
    for (std::size_t j = 0; j < n1; ++j) {
      d[i * n1 + j] = 3.0F * i + 2.0F * j + 1.0F;
    }
  }
  for (std::size_t i = 1; i < n0; ++i) {
    for (std::size_t j = 1; j < n1; ++j) {
      EXPECT_FLOAT_EQ(lorenzo_predict_2d(d, i, j, n1), d[i * n1 + j]);
    }
  }
}

TEST(LorenzoTest, ThreeDIsExactOnTrilinearData) {
  const std::size_t n = 4;
  std::vector<float> d(n * n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        d[(i * n + j) * n + k] = 2.0F * i - 1.5F * j + 0.5F * k + 7.0F;
      }
    }
  }
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 1; j < n; ++j) {
      for (std::size_t k = 1; k < n; ++k) {
        EXPECT_FLOAT_EQ(lorenzo_predict_3d(d, i, j, k, n, n),
                        d[(i * n + j) * n + k]);
      }
    }
  }
}

TEST(LorenzoTest, BordersDegradeToLowerOrder) {
  const std::size_t n1 = 3;
  const std::vector<float> d = {1.0F, 2.0F, 3.0F, 4.0F, 0.0F, 0.0F};
  // Row 1, col 0: only the north neighbor exists.
  EXPECT_EQ(lorenzo_predict_2d(d, 1, 0, n1), 1.0F);
  // Row 0, col 1: only the west neighbor exists.
  EXPECT_EQ(lorenzo_predict_2d(d, 0, 1, n1), 1.0F);
}

TEST(QuantizerTest, QuantizedReconstructionHonoursBound) {
  const LinearQuantizer q{0.01};
  float recon = 0.0F;
  const auto code = q.quantize(3.14159, 3.0, recon);
  ASSERT_TRUE(code.has_value());
  EXPECT_NE(*code, 0u);
  EXPECT_LE(std::fabs(recon - 3.14159), 0.01 + 1e-12);
  EXPECT_FLOAT_EQ(q.reconstruct(*code, 3.0), recon);
}

TEST(QuantizerTest, PerfectPredictionGivesCenterCode) {
  const LinearQuantizer q{0.5};
  float recon = 0.0F;
  const auto code = q.quantize(10.0, 10.0, recon);
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, q.radius());
  EXPECT_FLOAT_EQ(recon, 10.0F);
}

TEST(QuantizerTest, ResidualBeyondRadiusIsUnpredictable) {
  const LinearQuantizer q{1e-6, 1024};
  float recon = 0.0F;
  EXPECT_FALSE(q.quantize(1.0, 0.0, recon).has_value());
}

TEST(QuantizerTest, NanResidualIsUnpredictable) {
  const LinearQuantizer q{0.1};
  float recon = 0.0F;
  EXPECT_FALSE(
      q.quantize(std::numeric_limits<double>::quiet_NaN(), 0.0, recon)
          .has_value());
}

TEST(QuantizerTest, HugeMagnitudeFloatRoundingFallsBackToExact) {
  // Near 1e30 a float32 ulp dwarfs a 1e-3 bound: the quantizer must refuse
  // rather than return an out-of-bound reconstruction.
  const LinearQuantizer q{1e-3};
  float recon = 0.0F;
  const auto code = q.quantize(1.0e30, 1.0e30 + 1.0e25, recon);
  EXPECT_FALSE(code.has_value());
}

TEST(QuantizerTest, RoundTripAcrossResidualSweep) {
  // Residuals landing exactly on a bin edge may be rejected when float32
  // rounding pushes the realized error a hair past the bound — that is the
  // correct conservative behaviour, so the property is: every *accepted*
  // code is in-bound, and the overwhelming majority are accepted.
  const LinearQuantizer q{0.05};
  int accepted = 0;
  int total = 0;
  for (double r = -100.0; r <= 100.0; r += 0.37) {
    ++total;
    float recon = 0.0F;
    const auto code = q.quantize(r, 0.0, recon);
    if (!code.has_value()) {
      continue;
    }
    ++accepted;
    EXPECT_LE(std::fabs(static_cast<double>(recon) - r), 0.05 + 1e-9) << r;
    EXPECT_FLOAT_EQ(q.reconstruct(*code, 0.0), recon);
  }
  EXPECT_GT(accepted, total * 9 / 10);
}

TEST(QuantizerTest, AlphabetSizeIsTwiceRadius) {
  const LinearQuantizer q{0.1, 4096};
  EXPECT_EQ(q.alphabet_size(), 8192u);
}

}  // namespace
}  // namespace lcp::sz
