#include "compress/sz/zlite.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace lcp::sz {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

void expect_round_trip(const std::vector<std::uint8_t>& input) {
  const auto compressed = zlite_compress(input);
  const auto decompressed = zlite_decompress(compressed);
  ASSERT_TRUE(decompressed.has_value()) << decompressed.status().to_string();
  EXPECT_EQ(*decompressed, input);
}

TEST(ZliteTest, EmptyInput) { expect_round_trip({}); }

TEST(ZliteTest, ShortInputBelowMinMatch) { expect_round_trip({1, 2, 3}); }

TEST(ZliteTest, RepetitiveTextCompresses) {
  std::string s;
  for (int i = 0; i < 200; ++i) {
    s += "lossy compression saves energy. ";
  }
  const auto input = bytes_of(s);
  const auto compressed = zlite_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 5);
  expect_round_trip(input);
}

TEST(ZliteTest, AllZerosCompressAndRestore) {
  expect_round_trip(std::vector<std::uint8_t>(10000, 0));
}

TEST(ZliteTest, OverlappingMatchRle) {
  // "aaaa..." forces dist=1 matches with len > dist (overlap copy path).
  expect_round_trip(std::vector<std::uint8_t>(500, 'a'));
}

TEST(ZliteTest, IncompressibleRandomRoundTripsWithBoundedOverhead) {
  Rng rng{3};
  std::vector<std::uint8_t> input(8192);
  for (auto& b : input) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  const auto compressed = zlite_compress(input);
  EXPECT_LT(compressed.size(), input.size() + 64);
  expect_round_trip(input);
}

TEST(ZliteTest, RandomizedStructuredProperty) {
  Rng rng{9};
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> input;
    const int chunks = 1 + static_cast<int>(rng.uniform_index(20));
    for (int c = 0; c < chunks; ++c) {
      if (rng.uniform() < 0.5 && !input.empty()) {
        // Repeat an earlier slice (creates matches at varied distances).
        const std::size_t start = rng.uniform_index(input.size());
        const std::size_t len =
            std::min<std::size_t>(input.size() - start,
                                  rng.uniform_index(300));
        std::vector<std::uint8_t> slice(input.begin() + static_cast<std::ptrdiff_t>(start),
                                        input.begin() + static_cast<std::ptrdiff_t>(start + len));
        input.insert(input.end(), slice.begin(), slice.end());
      } else {
        const std::size_t len = rng.uniform_index(300);
        for (std::size_t i = 0; i < len; ++i) {
          input.push_back(static_cast<std::uint8_t>(rng.uniform_index(7)));
        }
      }
    }
    expect_round_trip(input);
  }
}

TEST(ZliteTest, DecompressRejectsTruncation) {
  auto compressed = zlite_compress(std::vector<std::uint8_t>(1000, 'x'));
  compressed.resize(compressed.size() - 3);
  EXPECT_FALSE(zlite_decompress(compressed).has_value());
}

TEST(ZliteTest, DecompressRejectsOversizedDeclaration) {
  const auto compressed = zlite_compress(std::vector<std::uint8_t>(100, 'x'));
  EXPECT_FALSE(zlite_decompress(compressed, 50).has_value());
}

TEST(ZliteTest, DecompressRejectsEmptyBlob) {
  EXPECT_FALSE(zlite_decompress({}).has_value());
}

TEST(ZliteTest, DecompressRejectsBadDistance) {
  // Hand-craft: size=4, literal_len=0, match_len=4, dist=9 (> produced).
  const std::vector<std::uint8_t> bad = {4, 0, 4, 9};
  EXPECT_FALSE(zlite_decompress(bad).has_value());
}

TEST(ZliteTest, HostileVarintLengthsCannotWrapBoundsChecks) {
  // Regression: literal_len near 2^64 used to wrap `pos + literal_len`
  // and `out.size() + match_len` past both bounds checks, producing an
  // out-of-bounds insert. All-0xFF varints decode to huge values.
  const std::uint8_t huge[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                               0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  // size=5, literal_len=huge.
  std::vector<std::uint8_t> bad = {5};
  bad.insert(bad.end(), std::begin(huge), std::end(huge));
  bad.insert(bad.end(), {1, 2, 3, 4, 5});
  EXPECT_FALSE(zlite_decompress(bad).has_value());

  // size=5, 5 literals, then match_len=huge with dist=1.
  std::vector<std::uint8_t> bad2 = {5, 5, 1, 2, 3, 4, 5};
  bad2.insert(bad2.end(), std::begin(huge), std::end(huge));
  bad2.push_back(1);
  EXPECT_FALSE(zlite_decompress(bad2).has_value());
}

}  // namespace
}  // namespace lcp::sz
