// Deterministic corruption fuzzer for every decode path: seeded mutators
// (bit flips, truncations, splices, zero runs, header tampering) are
// driven against codec containers, framed streams and checkpoints.
// Invariant: no crash, no out-of-bounds access (the CI sanitizer legs
// enforce this), and no silent success — a decode either fails with a
// typed Status or returns a structurally sane result. Equal seeds produce
// equal mutation streams, so any failure is replayable from its seed.

#include <gtest/gtest.h>

#include "compress/common/checkpoint.hpp"
#include "compress/common/framing.hpp"
#include "compress/common/registry.hpp"
#include "core/incremental_checkpoint.hpp"
#include "data/generators.hpp"
#include "io/nfs_server.hpp"
#include "io/replica_set.hpp"
#include "support/rng.hpp"

namespace lcp::compress {
namespace {

enum class Mutator : std::uint64_t {
  kBitFlip = 0,
  kByteSet,
  kTruncate,
  kSplice,
  kZeroRun,
  kHeaderTamper,
  kCount,
};

/// Applies one seeded mutation. Deterministic: the mutation is a pure
/// function of (input, rng state).
std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> bytes, Rng& rng) {
  if (bytes.empty()) {
    return bytes;
  }
  const auto kind = static_cast<Mutator>(
      rng.uniform_index(static_cast<std::uint64_t>(Mutator::kCount)));
  switch (kind) {
    case Mutator::kBitFlip: {
      const std::size_t at = rng.uniform_index(bytes.size());
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
      break;
    }
    case Mutator::kByteSet: {
      const std::size_t at = rng.uniform_index(bytes.size());
      bytes[at] = static_cast<std::uint8_t>(rng.next_u64());
      break;
    }
    case Mutator::kTruncate: {
      bytes.resize(rng.uniform_index(bytes.size()));
      break;
    }
    case Mutator::kSplice: {
      // Copy a random window over another position (simulates a torn
      // write or sector remap stitching two stream regions together).
      const std::size_t len = 1 + rng.uniform_index(
          std::min<std::size_t>(64, bytes.size()));
      const std::size_t src = rng.uniform_index(bytes.size() - len + 1);
      const std::size_t dst = rng.uniform_index(bytes.size() - len + 1);
      std::vector<std::uint8_t> window(bytes.begin() + static_cast<std::ptrdiff_t>(src),
                                       bytes.begin() + static_cast<std::ptrdiff_t>(src + len));
      std::copy(window.begin(), window.end(),
                bytes.begin() + static_cast<std::ptrdiff_t>(dst));
      break;
    }
    case Mutator::kZeroRun: {
      const std::size_t len = 1 + rng.uniform_index(
          std::min<std::size_t>(128, bytes.size()));
      const std::size_t at = rng.uniform_index(bytes.size() - len + 1);
      std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                bytes.begin() + static_cast<std::ptrdiff_t>(at + len), 0);
      break;
    }
    case Mutator::kHeaderTamper: {
      // Concentrate damage in the first 64 bytes, where the magic,
      // version, dims and length fields live.
      const std::size_t window = std::min<std::size_t>(64, bytes.size());
      const std::size_t at = rng.uniform_index(window);
      bytes[at] = static_cast<std::uint8_t>(rng.next_u64());
      break;
    }
    case Mutator::kCount:
      break;
  }
  return bytes;
}

/// A successful decode of a mutated container must still be structurally
/// sane: bounded element count and dims consistent with the values.
void expect_sane(const DecompressResult& result, std::size_t max_elements) {
  EXPECT_LE(result.field.element_count(), max_elements);
  EXPECT_EQ(result.field.dims().element_count(), result.field.element_count());
}

TEST(CorruptionFuzzTest, EveryCodecSurvivesSeededMutations) {
  // >= 2000 mutations across the registered codecs (4 codecs x 600).
  const auto field = data::generate_cesm_atm(2, 12, 16, 21);
  for (const auto& name : registered_codec_names()) {
    auto codec = make_compressor(name);
    ASSERT_TRUE(codec.has_value());
    auto compressed = (*codec)->compress(field, ErrorBound::absolute(1e-2));
    ASSERT_TRUE(compressed.has_value()) << name;

    Rng rng{0xC0FFEEu + std::hash<std::string>{}(name)};
    for (int trial = 0; trial < 600; ++trial) {
      const auto mutated = mutate(compressed->container, rng);
      const auto decoded = decompress_any(mutated);
      if (decoded.has_value()) {
        expect_sane(*decoded, 16 * field.element_count());
      } else {
        EXPECT_NE(decoded.status().code(), ErrorCode::kOk);
      }
    }
  }
}

TEST(CorruptionFuzzTest, FramedStreamsSurviveSeededMutations) {
  const std::vector<std::uint8_t> payload(5000, 0xAB);
  const auto framed = frame_payload(payload, FrameParams{.chunk_bytes = 512});
  Rng rng{777};
  for (int trial = 0; trial < 1000; ++trial) {
    const auto mutated = mutate(framed, rng);
    // Strict read: fail or return the exact payload.
    const auto strict = read_framed(mutated);
    if (strict.has_value()) {
      EXPECT_EQ(*strict, payload);
    }
    // Recovery: must not crash; every intact chunk's span stays in bounds.
    const auto rec = recover_framed(mutated);
    if (rec.has_value()) {
      for (const auto& c : rec->chunks) {
        if (c.state == ChunkState::kIntact) {
          EXPECT_LE(c.payload.size(), mutated.size());
        } else {
          EXPECT_FALSE(c.status.is_ok());
        }
      }
      (void)rec->assemble_zero_filled();
    }
  }
}

TEST(CorruptionFuzzTest, CheckpointsSurviveSeededMutations) {
  const auto field = data::generate_nyx(20, 33);
  CheckpointOptions opts;
  opts.codec = "sz";
  opts.chunk_elements = 1024;
  auto bytes = write_checkpoint(field, opts);
  ASSERT_TRUE(bytes.has_value());

  Rng rng{424242};
  for (int trial = 0; trial < 600; ++trial) {
    const auto mutated = mutate(*bytes, rng);
    const auto report = recover_checkpoint(mutated);
    if (report.has_value()) {
      // The recovered field must have the manifest's shape, and verdicts
      // must cover every slab exactly once.
      EXPECT_EQ(report->field.element_count(), report->total_elements);
      std::size_t covered = 0;
      for (const auto& v : report->slabs) {
        covered += v.element_count;
        EXPECT_TRUE(v.recovered == v.status.is_ok());
      }
      EXPECT_EQ(covered, report->total_elements);
    } else {
      EXPECT_NE(report.status().code(), ErrorCode::kOk);
    }
    const auto strict = read_checkpoint(mutated);
    if (strict.has_value()) {
      // Silent success is only legal if the stream still verifies fully.
      EXPECT_EQ(strict->element_count(), field.element_count());
    }
  }
}

TEST(CorruptionFuzzTest, MutationStreamIsDeterministic) {
  const std::vector<std::uint8_t> input(256, 0x11);
  Rng a{99};
  Rng b{99};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mutate(input, a), mutate(input, b)) << i;
  }
}

TEST(CorruptionFuzzTest, StackedMutationsNeverCrashRecovery) {
  // Pile 1..8 mutations on top of each other before each decode, so the
  // fuzzer also exercises compound damage (truncate + splice + flips).
  const auto field = data::generate_hacc(2048, 5);
  auto bytes = write_checkpoint(field, CheckpointOptions{});
  ASSERT_TRUE(bytes.has_value());
  Rng rng{31337};
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = *bytes;
    const std::uint64_t stack = 1 + rng.uniform_index(8);
    for (std::uint64_t i = 0; i < stack; ++i) {
      mutated = mutate(std::move(mutated), rng);
    }
    (void)recover_checkpoint(mutated);
    (void)read_checkpoint(mutated);
  }
}

/// Fixture state for the journal fuzzers: a 3-replica incremental store
/// holding two generations, plus the lossy-roundtrip reference field for
/// each so "silently wrong" is checkable bit-for-bit.
struct JournalFuzzRig {
  io::NfsServer s0, s1, s2;
  io::ReplicaSet replicas{{&s0, &s1, &s2}, {}};
  core::IncrementalStoreOptions opts;
  core::IncrementalCheckpointStore store;
  std::vector<data::Field> reference;  ///< index g-1 = generation g
  std::string journal_name;            ///< the live epoch's journal path
  std::vector<std::uint8_t> pristine;  ///< intact journal bytes

  JournalFuzzRig() : opts(make_options()), store(replicas, opts) {
    auto gen1 = data::generate_nyx(16, 7);
    auto gen2 = gen1;
    auto values = gen2.mutable_values();
    for (std::size_t i = 0; i < 700; ++i) {
      values[i] += 0.5F;
    }
    EXPECT_TRUE(store.dump(gen1).has_value());
    EXPECT_TRUE(store.dump(gen2).has_value());
    for (std::uint64_t g : {std::uint64_t{1}, std::uint64_t{2}}) {
      auto restored = store.restore(g);
      EXPECT_TRUE(restored.has_value());
      reference.push_back(std::move(restored->field));
    }
    // Journals are epoch-named; superseded epochs are pruned on publish,
    // so exactly one file remains after the two dumps.
    const auto files = s0.list_files("ckpt/journal.");
    EXPECT_EQ(files.size(), 1u);
    if (!files.empty()) {
      journal_name = files.front();
      const auto bytes = s0.read_file(journal_name);
      EXPECT_TRUE(bytes.has_value());
      pristine.assign(bytes->begin(), bytes->end());
    }
  }

  static core::IncrementalStoreOptions make_options() {
    core::IncrementalStoreOptions o;
    o.checkpoint.codec = "sz";
    o.checkpoint.chunk_elements = 512;
    return o;
  }

  io::NfsServer& server(std::size_t r) { return replicas.server(r); }

  void plant_journal(std::size_t r, const std::vector<std::uint8_t>& bytes) {
    for (const std::string& path : server(r).list_files("ckpt/journal.")) {
      (void)server(r).remove_file(path);
    }
    if (!bytes.empty()) {
      EXPECT_TRUE(server(r).handle_write(journal_name, bytes).is_ok());
    }
  }

  /// The fuzz invariant: a restore either fails with a typed Status or
  /// yields a known generation; a restore claiming completeness must be
  /// bit-for-bit one of the two references. Degraded-but-wrong is the
  /// one outcome the journal design must make impossible.
  void expect_sane_restore(std::uint64_t generation) {
    const auto restored = store.restore(generation);
    if (!restored.has_value()) {
      EXPECT_NE(restored.status().code(), ErrorCode::kOk);
      return;
    }
    ASSERT_EQ(restored->generation, generation);
    if (restored->complete()) {
      const auto& want = reference[generation - 1];
      ASSERT_EQ(restored->field.element_count(), want.element_count());
      EXPECT_TRUE(std::equal(want.values().begin(), want.values().end(),
                             restored->field.values().begin()));
    }
  }
};

TEST(CorruptionFuzzTest, JournalSurvivesSingleReplicaMutations) {
  // >= 400 seeded mutations of one replica's journal: the two intact
  // copies hold quorum, so every restore must stay correct (never
  // silently wrong) no matter what the damaged copy claims.
  JournalFuzzRig rig;
  Rng rng{0x10AD5EEDu};
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t victim = trial % 3;
    rig.plant_journal(victim, mutate(rig.pristine, rng));
    rig.expect_sane_restore(1);
    rig.expect_sane_restore(2);
    const auto latest = rig.store.restore_latest();
    if (latest.has_value()) {
      EXPECT_GE(latest->generation, 1u);
      EXPECT_LE(latest->generation, 2u);
    }
    rig.plant_journal(victim, rig.pristine);
  }
}

TEST(CorruptionFuzzTest, JournalSurvivesIdenticalMutationsOnAllReplicas) {
  // >= 200 seeds where the same damage lands on every copy (a bad client
  // fanned out a torn write): no quorum of intact bytes may exist, so
  // the store fails typed or degrades — never fabricates a generation.
  JournalFuzzRig rig;
  Rng rng{0xBADC0DEu};
  for (int trial = 0; trial < 200; ++trial) {
    const auto mutated = mutate(rig.pristine, rng);
    for (std::size_t r = 0; r < 3; ++r) {
      rig.plant_journal(r, mutated);
    }
    rig.expect_sane_restore(1);
    rig.expect_sane_restore(2);
    for (std::size_t r = 0; r < 3; ++r) {
      rig.plant_journal(r, rig.pristine);
    }
  }
}

TEST(CorruptionFuzzTest, TamperedJournalEntryFailsClosed) {
  // Deterministic regression for the fuzz invariant: one flipped byte in
  // generation 1's journal entry on EVERY replica. The per-chunk CRC
  // rejects the entry everywhere, so generation 1 reads as lost — a
  // typed error, not a differently-shaped restore — while generation 2
  // stays bit-for-bit restorable.
  JournalFuzzRig rig;
  // Walk the frame chunk headers to the payload of chunk 1 (chunk 0 is
  // the epoch header record; entries follow in generation order).
  std::size_t pos = kFrameHeaderBytes;
  const auto chunk_length = [&](std::size_t at) {
    return static_cast<std::uint32_t>(rig.pristine[at + 8]) |
           (static_cast<std::uint32_t>(rig.pristine[at + 9]) << 8) |
           (static_cast<std::uint32_t>(rig.pristine[at + 10]) << 16) |
           (static_cast<std::uint32_t>(rig.pristine[at + 11]) << 24);
  };
  pos += kChunkHeaderBytes + chunk_length(pos);  // skip header record
  auto tampered = rig.pristine;
  tampered[pos + kChunkHeaderBytes + 4] ^= 0x01;
  for (std::size_t r = 0; r < 3; ++r) {
    rig.plant_journal(r, tampered);
  }
  const auto gen1 = rig.store.restore(1);
  ASSERT_FALSE(gen1.has_value());
  EXPECT_NE(gen1.status().code(), ErrorCode::kOk);
  const auto gen2 = rig.store.restore(2);
  ASSERT_TRUE(gen2.has_value()) << gen2.status().message();
  EXPECT_TRUE(gen2->complete());
  const auto& want = rig.reference[1];
  EXPECT_TRUE(std::equal(want.values().begin(), want.values().end(),
                         gen2->field.values().begin()));
}

}  // namespace
}  // namespace lcp::compress
