// Deterministic corruption fuzzer for every decode path: seeded mutators
// (bit flips, truncations, splices, zero runs, header tampering) are
// driven against codec containers, framed streams and checkpoints.
// Invariant: no crash, no out-of-bounds access (the CI sanitizer legs
// enforce this), and no silent success — a decode either fails with a
// typed Status or returns a structurally sane result. Equal seeds produce
// equal mutation streams, so any failure is replayable from its seed.

#include <gtest/gtest.h>

#include "compress/common/checkpoint.hpp"
#include "compress/common/framing.hpp"
#include "compress/common/registry.hpp"
#include "data/generators.hpp"
#include "support/rng.hpp"

namespace lcp::compress {
namespace {

enum class Mutator : std::uint64_t {
  kBitFlip = 0,
  kByteSet,
  kTruncate,
  kSplice,
  kZeroRun,
  kHeaderTamper,
  kCount,
};

/// Applies one seeded mutation. Deterministic: the mutation is a pure
/// function of (input, rng state).
std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> bytes, Rng& rng) {
  if (bytes.empty()) {
    return bytes;
  }
  const auto kind = static_cast<Mutator>(
      rng.uniform_index(static_cast<std::uint64_t>(Mutator::kCount)));
  switch (kind) {
    case Mutator::kBitFlip: {
      const std::size_t at = rng.uniform_index(bytes.size());
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
      break;
    }
    case Mutator::kByteSet: {
      const std::size_t at = rng.uniform_index(bytes.size());
      bytes[at] = static_cast<std::uint8_t>(rng.next_u64());
      break;
    }
    case Mutator::kTruncate: {
      bytes.resize(rng.uniform_index(bytes.size()));
      break;
    }
    case Mutator::kSplice: {
      // Copy a random window over another position (simulates a torn
      // write or sector remap stitching two stream regions together).
      const std::size_t len = 1 + rng.uniform_index(
          std::min<std::size_t>(64, bytes.size()));
      const std::size_t src = rng.uniform_index(bytes.size() - len + 1);
      const std::size_t dst = rng.uniform_index(bytes.size() - len + 1);
      std::vector<std::uint8_t> window(bytes.begin() + static_cast<std::ptrdiff_t>(src),
                                       bytes.begin() + static_cast<std::ptrdiff_t>(src + len));
      std::copy(window.begin(), window.end(),
                bytes.begin() + static_cast<std::ptrdiff_t>(dst));
      break;
    }
    case Mutator::kZeroRun: {
      const std::size_t len = 1 + rng.uniform_index(
          std::min<std::size_t>(128, bytes.size()));
      const std::size_t at = rng.uniform_index(bytes.size() - len + 1);
      std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                bytes.begin() + static_cast<std::ptrdiff_t>(at + len), 0);
      break;
    }
    case Mutator::kHeaderTamper: {
      // Concentrate damage in the first 64 bytes, where the magic,
      // version, dims and length fields live.
      const std::size_t window = std::min<std::size_t>(64, bytes.size());
      const std::size_t at = rng.uniform_index(window);
      bytes[at] = static_cast<std::uint8_t>(rng.next_u64());
      break;
    }
    case Mutator::kCount:
      break;
  }
  return bytes;
}

/// A successful decode of a mutated container must still be structurally
/// sane: bounded element count and dims consistent with the values.
void expect_sane(const DecompressResult& result, std::size_t max_elements) {
  EXPECT_LE(result.field.element_count(), max_elements);
  EXPECT_EQ(result.field.dims().element_count(), result.field.element_count());
}

TEST(CorruptionFuzzTest, EveryCodecSurvivesSeededMutations) {
  // >= 2000 mutations across the registered codecs (4 codecs x 600).
  const auto field = data::generate_cesm_atm(2, 12, 16, 21);
  for (const auto& name : registered_codec_names()) {
    auto codec = make_compressor(name);
    ASSERT_TRUE(codec.has_value());
    auto compressed = (*codec)->compress(field, ErrorBound::absolute(1e-2));
    ASSERT_TRUE(compressed.has_value()) << name;

    Rng rng{0xC0FFEEu + std::hash<std::string>{}(name)};
    for (int trial = 0; trial < 600; ++trial) {
      const auto mutated = mutate(compressed->container, rng);
      const auto decoded = decompress_any(mutated);
      if (decoded.has_value()) {
        expect_sane(*decoded, 16 * field.element_count());
      } else {
        EXPECT_NE(decoded.status().code(), ErrorCode::kOk);
      }
    }
  }
}

TEST(CorruptionFuzzTest, FramedStreamsSurviveSeededMutations) {
  const std::vector<std::uint8_t> payload(5000, 0xAB);
  const auto framed = frame_payload(payload, FrameParams{.chunk_bytes = 512});
  Rng rng{777};
  for (int trial = 0; trial < 1000; ++trial) {
    const auto mutated = mutate(framed, rng);
    // Strict read: fail or return the exact payload.
    const auto strict = read_framed(mutated);
    if (strict.has_value()) {
      EXPECT_EQ(*strict, payload);
    }
    // Recovery: must not crash; every intact chunk's span stays in bounds.
    const auto rec = recover_framed(mutated);
    if (rec.has_value()) {
      for (const auto& c : rec->chunks) {
        if (c.state == ChunkState::kIntact) {
          EXPECT_LE(c.payload.size(), mutated.size());
        } else {
          EXPECT_FALSE(c.status.is_ok());
        }
      }
      (void)rec->assemble_zero_filled();
    }
  }
}

TEST(CorruptionFuzzTest, CheckpointsSurviveSeededMutations) {
  const auto field = data::generate_nyx(20, 33);
  CheckpointOptions opts;
  opts.codec = "sz";
  opts.chunk_elements = 1024;
  auto bytes = write_checkpoint(field, opts);
  ASSERT_TRUE(bytes.has_value());

  Rng rng{424242};
  for (int trial = 0; trial < 600; ++trial) {
    const auto mutated = mutate(*bytes, rng);
    const auto report = recover_checkpoint(mutated);
    if (report.has_value()) {
      // The recovered field must have the manifest's shape, and verdicts
      // must cover every slab exactly once.
      EXPECT_EQ(report->field.element_count(), report->total_elements);
      std::size_t covered = 0;
      for (const auto& v : report->slabs) {
        covered += v.element_count;
        EXPECT_TRUE(v.recovered == v.status.is_ok());
      }
      EXPECT_EQ(covered, report->total_elements);
    } else {
      EXPECT_NE(report.status().code(), ErrorCode::kOk);
    }
    const auto strict = read_checkpoint(mutated);
    if (strict.has_value()) {
      // Silent success is only legal if the stream still verifies fully.
      EXPECT_EQ(strict->element_count(), field.element_count());
    }
  }
}

TEST(CorruptionFuzzTest, MutationStreamIsDeterministic) {
  const std::vector<std::uint8_t> input(256, 0x11);
  Rng a{99};
  Rng b{99};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mutate(input, a), mutate(input, b)) << i;
  }
}

TEST(CorruptionFuzzTest, StackedMutationsNeverCrashRecovery) {
  // Pile 1..8 mutations on top of each other before each decode, so the
  // fuzzer also exercises compound damage (truncate + splice + flips).
  const auto field = data::generate_hacc(2048, 5);
  auto bytes = write_checkpoint(field, CheckpointOptions{});
  ASSERT_TRUE(bytes.has_value());
  Rng rng{31337};
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = *bytes;
    const std::uint64_t stack = 1 + rng.uniform_index(8);
    for (std::uint64_t i = 0; i < stack; ++i) {
      mutated = mutate(std::move(mutated), rng);
    }
    (void)recover_checkpoint(mutated);
    (void)read_checkpoint(mutated);
  }
}

}  // namespace
}  // namespace lcp::compress
