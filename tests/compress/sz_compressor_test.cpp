#include "compress/sz/sz_compressor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "compress/common/metrics.hpp"
#include "compress/zfp/zfp_compressor.hpp"
#include "data/generators.hpp"
#include "support/rng.hpp"

namespace lcp::sz {
namespace {

using compress::ErrorBound;

TEST(SzCompressorTest, NameIsSz) {
  EXPECT_EQ(SzCompressor{}.name(), "sz");
}

TEST(SzCompressorTest, SmoothFieldRoundTripHonoursBound) {
  const auto field = data::generate_nyx(24, 1);
  SzCompressor codec;
  const auto range = static_cast<double>(field.value_range().span());
  const auto report =
      compress::round_trip(codec, field, ErrorBound::absolute(range * 1e-3));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected);
  EXPECT_GT(report->compression_ratio, 2.0);
}

TEST(SzCompressorTest, SmoothDataCompressesBetterThanNoisyData) {
  const auto smooth = data::generate_cesm_atm(4, 32, 32, 2);
  const auto noisy = data::generate_hacc(4096, 2);
  SzCompressor codec;
  const auto rs = compress::round_trip(codec, smooth, ErrorBound::absolute(1e-2));
  const auto rn = compress::round_trip(codec, noisy, ErrorBound::absolute(1e-2));
  ASSERT_TRUE(rs.has_value());
  ASSERT_TRUE(rn.has_value());
  EXPECT_GT(rs->compression_ratio, rn->compression_ratio);
}

TEST(SzCompressorTest, FinerBoundLowersRatio) {
  const auto field = data::generate_cesm_atm(4, 32, 64, 3);
  SzCompressor codec;
  const auto coarse = compress::round_trip(codec, field, ErrorBound::absolute(1e-1));
  const auto fine = compress::round_trip(codec, field, ErrorBound::absolute(1e-4));
  ASSERT_TRUE(coarse.has_value());
  ASSERT_TRUE(fine.has_value());
  EXPECT_GT(coarse->compression_ratio, fine->compression_ratio);
  EXPECT_TRUE(coarse->bound_respected);
  EXPECT_TRUE(fine->bound_respected);
}

TEST(SzCompressorTest, OneDFieldRoundTrips) {
  const auto field = data::generate_hacc(5000, 4);
  SzCompressor codec;
  const auto report = compress::round_trip(codec, field, ErrorBound::absolute(1e-3));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected);
}

TEST(SzCompressorTest, ConstantFieldCompressesExtremely) {
  data::Field field{"const", data::Dims::d2(64, 64),
                    std::vector<float>(64 * 64, 2.5F)};
  SzCompressor codec;
  const auto report = compress::round_trip(codec, field, ErrorBound::absolute(1e-3));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected);
  EXPECT_GT(report->compression_ratio, 50.0);
}

TEST(SzCompressorTest, RejectsNonPositiveBound) {
  const auto field = data::generate_nyx(8, 5);
  SzCompressor codec;
  EXPECT_FALSE(codec.compress(field, ErrorBound::absolute(0.0)).has_value());
  EXPECT_FALSE(codec.compress(field, ErrorBound::absolute(-1.0)).has_value());
}

TEST(SzCompressorTest, RejectsNonFiniteInput) {
  data::Field field{"bad", data::Dims::d1(4),
                    {1.0F, std::numeric_limits<float>::infinity(), 0.0F, 2.0F}};
  SzCompressor codec;
  EXPECT_FALSE(codec.compress(field, ErrorBound::absolute(1e-3)).has_value());
}

TEST(SzCompressorTest, DecompressRejectsWrongCodec) {
  const auto field = data::generate_nyx(8, 6);
  zfp::ZfpCompressor other;
  auto compressed = other.compress(field, ErrorBound::absolute(1e-2));
  ASSERT_TRUE(compressed.has_value());
  SzCompressor codec;
  const auto decoded = codec.decompress(compressed->container);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kInvalidArgument);
}

TEST(SzCompressorTest, DecompressRejectsCorruptPayload) {
  const auto field = data::generate_cesm_atm(2, 16, 16, 7);
  SzCompressor codec;
  auto compressed = codec.compress(field, ErrorBound::absolute(1e-2));
  ASSERT_TRUE(compressed.has_value());
  auto bytes = compressed->container;
  // Flip bits near the end (inside the entropy payload).
  for (std::size_t i = bytes.size() - 16; i < bytes.size() - 8; ++i) {
    bytes[i] ^= 0xFF;
  }
  // Either a clean error or (if the flip lands in unpredictable values) a
  // successful decode; it must never crash.
  (void)codec.decompress(bytes);
}

TEST(SzCompressorTest, WithoutLosslessBackendStillRoundTrips) {
  SzOptions options;
  options.use_lossless_backend = false;
  SzCompressor codec{options};
  const auto field = data::generate_cesm_atm(2, 24, 24, 8);
  const auto report = compress::round_trip(codec, field, ErrorBound::absolute(1e-3));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected);
}

TEST(SzCompressorTest, UnpredictableHeavyDataStillBounded) {
  // White noise with huge variance forces many unpredictable samples.
  Rng rng{11};
  std::vector<float> values(4096);
  for (auto& v : values) {
    v = static_cast<float>(rng.normal(0.0, 1e6));
  }
  data::Field field{"noise", data::Dims::d1(values.size()), std::move(values)};
  SzCompressor codec;
  const auto report = compress::round_trip(codec, field, ErrorBound::absolute(1e-5));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected);
}

}  // namespace
}  // namespace lcp::sz
