#include "compress/zfp/zfp_compressor.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "compress/common/metrics.hpp"
#include "data/generators.hpp"
#include "support/rng.hpp"

namespace lcp::zfp {
namespace {

using compress::ErrorBound;

TEST(ZfpCompressorTest, NameIsZfp) {
  EXPECT_EQ(ZfpCompressor{}.name(), "zfp");
}

TEST(ZfpCompressorTest, SmoothFieldRoundTripHonoursBound) {
  const auto field = data::generate_cesm_atm(4, 32, 32, 1);
  ZfpCompressor codec;
  const auto report =
      compress::round_trip(codec, field, ErrorBound::absolute(1e-2));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected)
      << "max err " << report->error.max_abs_error;
  EXPECT_GT(report->compression_ratio, 1.5);
}

TEST(ZfpCompressorTest, FinerBoundLowersRatio) {
  const auto field = data::generate_cesm_atm(4, 32, 64, 3);
  ZfpCompressor codec;
  const auto coarse =
      compress::round_trip(codec, field, ErrorBound::absolute(1e-1));
  const auto fine =
      compress::round_trip(codec, field, ErrorBound::absolute(1e-4));
  ASSERT_TRUE(coarse.has_value());
  ASSERT_TRUE(fine.has_value());
  EXPECT_GT(coarse->compression_ratio, fine->compression_ratio);
  EXPECT_TRUE(coarse->bound_respected);
  EXPECT_TRUE(fine->bound_respected);
}

TEST(ZfpCompressorTest, OneDAndRaggedShapesRoundTrip) {
  ZfpCompressor codec;
  for (const auto& dims :
       {data::Dims::d1(1), data::Dims::d1(5), data::Dims::d1(4097),
        data::Dims::d2(3, 5), data::Dims::d3(5, 7, 9)}) {
    Rng rng{42};
    std::vector<float> values(dims.element_count());
    for (auto& v : values) {
      v = static_cast<float>(rng.normal(0.0, 10.0));
    }
    data::Field field{"ragged", dims, std::move(values)};
    const auto report =
        compress::round_trip(codec, field, ErrorBound::absolute(1e-3));
    ASSERT_TRUE(report.has_value()) << dims.to_string();
    EXPECT_TRUE(report->bound_respected) << dims.to_string();
    EXPECT_EQ(report->error.max_abs_error <= 1e-3 * (1 + 1e-6), true);
  }
}

TEST(ZfpCompressorTest, ZeroBlocksEncodeInOneBit) {
  data::Field field{"zeros", data::Dims::d3(16, 16, 16),
                    std::vector<float>(4096, 0.0F)};
  ZfpCompressor codec;
  const auto compressed = codec.compress(field, ErrorBound::absolute(1e-3));
  ASSERT_TRUE(compressed.has_value());
  // 64 blocks -> 64 bits -> 8 bytes of payload plus container framing.
  EXPECT_LT(compressed->container.size(), 200u);
}

TEST(ZfpCompressorTest, HugeMagnitudeDataFallsBackToVerbatim) {
  // 1e30-scale values with a 1e-3 bound exceed fixed-point precision;
  // verbatim mode must reproduce the floats exactly.
  Rng rng{7};
  std::vector<float> values(256);
  for (auto& v : values) {
    v = static_cast<float>(rng.normal(0.0, 1.0) * 1e30);
  }
  data::Field field{"huge", data::Dims::d1(values.size()), values};
  ZfpCompressor codec;
  const auto report =
      compress::round_trip(codec, field, ErrorBound::absolute(1e-3));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->error.max_abs_error, 0.0);
}

TEST(ZfpCompressorTest, MixedMagnitudeBlocksStayBounded) {
  // Alternate tiny and huge values so neighboring blocks pick very
  // different exponents.
  std::vector<float> values(512);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = (i / 64) % 2 == 0 ? 1e-6F * static_cast<float>(i % 64)
                                  : 1e6F + static_cast<float>(i % 64);
  }
  data::Field field{"mixed", data::Dims::d1(values.size()), values};
  ZfpCompressor codec;
  const auto report =
      compress::round_trip(codec, field, ErrorBound::absolute(1e-2));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected)
      << "max err " << report->error.max_abs_error;
}

TEST(ZfpCompressorTest, NyxHighDynamicRangeWithRelativeScaleBound) {
  const auto field = data::generate_nyx(24, 9);
  const double range = field.value_range().span();
  ZfpCompressor codec;
  const auto report = compress::round_trip(
      codec, field, ErrorBound::absolute(range * 1e-4));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected);
  EXPECT_GT(report->compression_ratio, 1.5);
}

TEST(ZfpCompressorTest, RejectsNonPositiveBoundAndNonFinite) {
  const auto field = data::generate_nyx(8, 5);
  ZfpCompressor codec;
  EXPECT_FALSE(codec.compress(field, ErrorBound::absolute(0.0)).has_value());
  data::Field bad{"bad", data::Dims::d1(1),
                  {std::numeric_limits<float>::quiet_NaN()}};
  EXPECT_FALSE(codec.compress(bad, ErrorBound::absolute(1e-3)).has_value());
}

TEST(ZfpCompressorTest, DecompressRejectsWrongCodecAndTruncation) {
  const auto field = data::generate_cesm_atm(2, 16, 16, 7);
  ZfpCompressor codec;
  auto compressed = codec.compress(field, ErrorBound::absolute(1e-2));
  ASSERT_TRUE(compressed.has_value());

  auto truncated = compressed->container;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(codec.decompress(truncated).has_value());
}

}  // namespace
}  // namespace lcp::zfp
