// Pointwise-relative error bound for SZ (PW_REL, the paper's ref [4]):
// |x - x'| <= rel * |x| per element via the log-domain transform.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "compress/common/metrics.hpp"
#include "compress/common/registry.hpp"
#include "compress/sz/sz_compressor.hpp"
#include "data/generators.hpp"
#include "support/rng.hpp"

namespace lcp::sz {
namespace {

using compress::ErrorBound;

TEST(SzRelativeTest, NyxHighDynamicRangeHonoursRelativeBound) {
  // The showcase for PW_REL: NYX density spans decades; an abs bound is
  // either useless for the voids or lossless for the peaks, while the
  // relative bound treats every element equally.
  const auto field = data::generate_nyx(24, 1);
  SzCompressor codec;
  for (double rel : {1e-2, 1e-3, 1e-4}) {
    const auto report =
        compress::round_trip(codec, field, ErrorBound::pointwise_relative(rel));
    ASSERT_TRUE(report.has_value()) << rel;
    EXPECT_TRUE(report->bound_respected)
        << rel << " max_rel=" << report->error.max_rel_error;
    EXPECT_GT(report->compression_ratio, 1.5) << rel;
  }
}

TEST(SzRelativeTest, NegativeValuesKeepTheirSigns) {
  const auto field = data::generate_isabel(data::IsabelKind::kWindU, 6, 24,
                                           24, 2);
  SzCompressor codec;
  auto compressed =
      codec.compress(field, ErrorBound::pointwise_relative(1e-3));
  ASSERT_TRUE(compressed.has_value());
  auto decoded = codec.decompress(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  for (std::size_t i = 0; i < field.element_count(); ++i) {
    const float a = field.values()[i];
    const float b = decoded->field.values()[i];
    if (a != 0.0F) {
      EXPECT_GT(a * b, 0.0F) << i;  // same sign, and b nonzero
    }
  }
}

TEST(SzRelativeTest, ZerosReconstructExactly) {
  // Sparse precipitation field: many exact zeros must stay exact zeros.
  const auto field = data::generate_isabel(data::IsabelKind::kPrecip, 6, 32,
                                           32, 3);
  SzCompressor codec;
  const auto report =
      compress::round_trip(codec, field, ErrorBound::pointwise_relative(1e-3));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected);
  auto compressed =
      codec.compress(field, ErrorBound::pointwise_relative(1e-3));
  auto decoded = codec.decompress(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  for (std::size_t i = 0; i < field.element_count(); ++i) {
    if (field.values()[i] == 0.0F) {
      EXPECT_EQ(decoded->field.values()[i], 0.0F) << i;
    }
  }
}

TEST(SzRelativeTest, ExtremeMagnitudeSpread) {
  // Values from 1e-30 to 1e30: abs bounds cannot handle this; PW_REL must.
  Rng rng{4};
  std::vector<float> values(2048);
  for (auto& v : values) {
    const double exponent = rng.uniform(-30.0, 30.0);
    v = static_cast<float>((rng.uniform() < 0.5 ? -1.0 : 1.0) *
                           std::pow(10.0, exponent));
  }
  data::Field field{"spread", data::Dims::d1(values.size()),
                    std::move(values)};
  SzCompressor codec;
  const auto report =
      compress::round_trip(codec, field, ErrorBound::pointwise_relative(1e-2));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected)
      << "max_rel=" << report->error.max_rel_error;
}

TEST(SzRelativeTest, TighterRelativeBoundLowersRatio) {
  const auto field = data::generate_nyx(20, 5);
  SzCompressor codec;
  const auto coarse =
      compress::round_trip(codec, field, ErrorBound::pointwise_relative(1e-1));
  const auto fine =
      compress::round_trip(codec, field, ErrorBound::pointwise_relative(1e-4));
  ASSERT_TRUE(coarse.has_value());
  ASSERT_TRUE(fine.has_value());
  EXPECT_GT(coarse->compression_ratio, fine->compression_ratio);
}

TEST(SzRelativeTest, RelativeBeatsAbsoluteOnHighDynamicRangeData) {
  // At matched *relative* fidelity for the smallest values, PW_REL
  // compresses far better than the abs bound that would be needed.
  const auto field = data::generate_nyx(20, 6);
  SzCompressor codec;
  const auto rel_report =
      compress::round_trip(codec, field, ErrorBound::pointwise_relative(1e-3));
  ASSERT_TRUE(rel_report.has_value());
  // Matching abs bound for the minimum magnitude element:
  float min_abs = std::numeric_limits<float>::max();
  for (float v : field.values()) {
    if (v != 0.0F) {
      min_abs = std::min(min_abs, std::fabs(v));
    }
  }
  const auto abs_report = compress::round_trip(
      codec, field, ErrorBound::absolute(static_cast<double>(min_abs) * 1e-3));
  ASSERT_TRUE(abs_report.has_value());
  EXPECT_GT(rel_report->compression_ratio,
            abs_report->compression_ratio * 1.2);
}

TEST(SzRelativeTest, InvalidRelativeBoundsRejected) {
  const auto field = data::generate_nyx(8, 7);
  SzCompressor codec;
  EXPECT_FALSE(
      codec.compress(field, ErrorBound::pointwise_relative(0.0)).has_value());
  EXPECT_FALSE(
      codec.compress(field, ErrorBound::pointwise_relative(1e-9)).has_value());
  EXPECT_FALSE(
      codec.compress(field, ErrorBound::pointwise_relative(0.9)).has_value());
}

TEST(SzRelativeTest, ZfpRejectsRelativeBounds) {
  const auto field = data::generate_nyx(8, 8);
  const auto zfp = compress::make_compressor(compress::CodecId::kZfp);
  EXPECT_FALSE(
      zfp->compress(field, ErrorBound::pointwise_relative(1e-3)).has_value());
}

TEST(SzRelativeTest, ModeSurvivesContainerAndAnyRouting) {
  const auto field = data::generate_nyx(12, 9);
  SzCompressor codec;
  auto compressed =
      codec.compress(field, ErrorBound::pointwise_relative(1e-3));
  ASSERT_TRUE(compressed.has_value());
  auto decoded = compress::decompress_any(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  const auto err = data::compare_fields(field, decoded->field);
  ASSERT_TRUE(err.has_value());
  EXPECT_LE(err->max_rel_error, 1e-3 * (1 + 1e-6));
}

}  // namespace
}  // namespace lcp::sz
