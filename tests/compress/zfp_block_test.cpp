#include "compress/zfp/block.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace lcp::zfp {
namespace {

TEST(EffectiveExtentsTest, PassThroughUpToRankThree) {
  EXPECT_EQ(effective_extents(data::Dims::d1(100)),
            (std::vector<std::size_t>{100}));
  EXPECT_EQ(effective_extents(data::Dims::d3(4, 5, 6)),
            (std::vector<std::size_t>{4, 5, 6}));
}

TEST(EffectiveExtentsTest, RankFourMergesSlowestAxes) {
  const data::Dims d{{2, 3, 4, 5}};
  EXPECT_EQ(effective_extents(d), (std::vector<std::size_t>{6, 4, 5}));
}

TEST(BlockGridTest, CountsAndElements) {
  BlockGrid g1{{10}};
  EXPECT_EQ(g1.rank(), 1u);
  EXPECT_EQ(g1.block_elements(), 4u);
  EXPECT_EQ(g1.block_count(), 3u);  // ceil(10/4)

  BlockGrid g3{{8, 9, 4}};
  EXPECT_EQ(g3.block_elements(), 64u);
  EXPECT_EQ(g3.block_count(), 2u * 3u * 1u);
}

TEST(BlockGridTest, GatherScatterRoundTripsExactMultiples) {
  const std::vector<std::size_t> ext = {8, 8};
  BlockGrid grid{ext};
  std::vector<float> field(64);
  std::iota(field.begin(), field.end(), 0.0F);

  std::vector<float> rebuilt(64, -1.0F);
  std::vector<float> block(grid.block_elements());
  for (std::size_t b = 0; b < grid.block_count(); ++b) {
    grid.gather(field, b, block);
    grid.scatter(block, b, rebuilt);
  }
  EXPECT_EQ(rebuilt, field);
}

TEST(BlockGridTest, GatherScatterRoundTripsRaggedEdges) {
  for (const auto& ext :
       {std::vector<std::size_t>{5}, std::vector<std::size_t>{5, 7},
        std::vector<std::size_t>{3, 5, 6}}) {
    BlockGrid grid{ext};
    std::size_t n = 1;
    for (std::size_t e : ext) {
      n *= e;
    }
    std::vector<float> field(n);
    std::iota(field.begin(), field.end(), 1.0F);

    std::vector<float> rebuilt(n, -99.0F);
    std::vector<float> block(grid.block_elements());
    for (std::size_t b = 0; b < grid.block_count(); ++b) {
      grid.gather(field, b, block);
      grid.scatter(block, b, rebuilt);
    }
    EXPECT_EQ(rebuilt, field) << "rank " << ext.size();
  }
}

TEST(BlockGridTest, BoundaryPaddingReplicatesEdge) {
  BlockGrid grid{{5}};  // blocks [0..3], [4..7 padded]
  std::vector<float> field = {1, 2, 3, 4, 5};
  std::vector<float> block(4);
  grid.gather(field, 1, block);
  EXPECT_EQ(block, (std::vector<float>{5, 5, 5, 5}));
}

TEST(BlockGridTest, ScatterNeverWritesOutsideDomain) {
  BlockGrid grid{{5, 5}};
  std::vector<float> field(25, 0.0F);
  std::vector<float> block(16, 9.0F);
  for (std::size_t b = 0; b < grid.block_count(); ++b) {
    grid.scatter(block, b, field);
  }
  for (float v : field) {
    EXPECT_EQ(v, 9.0F);  // all 25 in-domain cells written, none skipped
  }
}

}  // namespace
}  // namespace lcp::zfp
