// Checkpoint containers: write/read round trips, partial recovery with
// exactly n-k intact slabs bit-for-bit, zero vs interpolate fill, manifest
// replica survival, and the strict fail_on_any_loss policy.

#include <gtest/gtest.h>

#include <cmath>

#include "compress/common/checkpoint.hpp"
#include "data/generators.hpp"
#include "support/rng.hpp"

namespace lcp::compress {
namespace {

data::Field make_field(std::size_t n = 16 * 1024) {
  return data::generate_nyx(static_cast<std::size_t>(std::cbrt(n)) + 1, 42);
}

CheckpointOptions small_chunks(std::size_t chunk_elements = 2048) {
  CheckpointOptions opts;
  opts.codec = "lossless";  // bit-exact slabs simplify equality checks
  opts.chunk_elements = chunk_elements;
  return opts;
}

/// Byte offset of the frame chunk carrying slab `s` (chunk s+1) within a
/// checkpoint stream, found by walking the chunk headers.
std::size_t chunk_payload_offset(const std::vector<std::uint8_t>& bytes,
                                 std::uint32_t chunk_index) {
  std::size_t pos = kFrameHeaderBytes;
  for (std::uint32_t c = 0; c < chunk_index; ++c) {
    const std::uint32_t length =
        static_cast<std::uint32_t>(bytes[pos + 8]) |
        (static_cast<std::uint32_t>(bytes[pos + 9]) << 8) |
        (static_cast<std::uint32_t>(bytes[pos + 10]) << 16) |
        (static_cast<std::uint32_t>(bytes[pos + 11]) << 24);
    pos += kChunkHeaderBytes + length;
  }
  return pos + kChunkHeaderBytes;
}

TEST(CheckpointTest, WriteReadRoundTripIsBitExact) {
  const auto field = make_field();
  auto bytes = write_checkpoint(field, small_chunks());
  ASSERT_TRUE(bytes.has_value()) << bytes.status().to_string();

  auto back = read_checkpoint(*bytes);
  ASSERT_TRUE(back.has_value()) << back.status().to_string();
  EXPECT_EQ(back->name(), field.name());
  EXPECT_EQ(back->dims(), field.dims());
  const auto a = field.values();
  const auto b = back->values();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << i;
  }
}

TEST(CheckpointTest, LossyCodecRoundTripHonorsBound) {
  const auto field = make_field();
  CheckpointOptions opts;
  opts.codec = "sz";
  opts.bound = ErrorBound::absolute(1e-3);
  opts.chunk_elements = 4096;
  auto bytes = write_checkpoint(field, opts);
  ASSERT_TRUE(bytes.has_value());
  auto back = read_checkpoint(*bytes);
  ASSERT_TRUE(back.has_value()) << back.status().to_string();
  const auto a = field.values();
  const auto b = back->values();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], 1e-3) << i;
  }
}

TEST(CheckpointTest, RecoveryOfUndamagedStreamIsComplete) {
  const auto field = make_field();
  auto bytes = write_checkpoint(field, small_chunks());
  ASSERT_TRUE(bytes.has_value());
  auto report = recover_checkpoint(*bytes);
  ASSERT_TRUE(report.has_value()) << report.status().to_string();
  EXPECT_TRUE(report->complete());
  EXPECT_EQ(report->recovered_fraction(), 1.0);
  EXPECT_FALSE(report->manifest_from_replica);
  EXPECT_FALSE(report->header_from_replica);
}

TEST(CheckpointTest, CorruptSlabsLeaveOthersBitForBit) {
  const auto field = make_field();
  const auto opts = small_chunks();
  auto bytes = write_checkpoint(field, opts);
  ASSERT_TRUE(bytes.has_value());

  // Corrupt slabs 1 and 3 (frame chunks 2 and 4).
  auto damaged = *bytes;
  damaged[chunk_payload_offset(damaged, 2) + 5] ^= 0xFF;
  damaged[chunk_payload_offset(damaged, 4) + 9] ^= 0xFF;

  EXPECT_FALSE(read_checkpoint(damaged).has_value());

  auto report = recover_checkpoint(damaged);
  ASSERT_TRUE(report.has_value()) << report.status().to_string();
  EXPECT_FALSE(report->complete());
  EXPECT_EQ(report->recovered_slabs(), report->slabs.size() - 2);

  const auto original = field.values();
  const auto recovered = report->field.values();
  ASSERT_EQ(recovered.size(), original.size());
  for (const auto& slab : report->slabs) {
    for (std::size_t i = 0; i < slab.element_count; ++i) {
      const std::size_t at = slab.element_offset + i;
      if (slab.recovered) {
        ASSERT_EQ(recovered[at], original[at]) << "slab " << slab.chunk_seq - 1;
      } else {
        ASSERT_EQ(recovered[at], 0.0F) << "zero fill, slab "
                                       << slab.chunk_seq - 1;
      }
    }
  }

  // Damaged slabs carry a typed, contextualized status.
  EXPECT_FALSE(report->slabs[1].recovered);
  EXPECT_FALSE(report->slabs[1].status.is_ok());
  EXPECT_FALSE(report->slabs[3].recovered);
  EXPECT_EQ(report->summary(),
            "recovered " + std::to_string(report->slabs.size() - 2) + "/" +
                std::to_string(report->slabs.size()) + " slabs (" +
                [&] {
                  char buf[16];
                  std::snprintf(buf, sizeof(buf), "%.1f",
                                100.0 * report->recovered_fraction());
                  return std::string{buf};
                }() +
                "% of elements)");
}

TEST(CheckpointTest, InterpolateFillRampsAcrossLostSlab) {
  // A linear field recovers exactly under linear interpolation.
  const std::size_t n = 8192;
  std::vector<float> ramp(n);
  for (std::size_t i = 0; i < n; ++i) {
    ramp[i] = static_cast<float>(i);
  }
  const data::Field field{"ramp", data::Dims::d1(n), std::move(ramp)};
  auto bytes = write_checkpoint(field, small_chunks(1024));
  ASSERT_TRUE(bytes.has_value());

  auto damaged = *bytes;
  damaged[chunk_payload_offset(damaged, 3) + 2] ^= 0xFF;  // slab 2

  RecoveryPolicy policy;
  policy.fill = RecoveryFill::kInterpolate;
  auto report = recover_checkpoint(damaged, policy);
  ASSERT_TRUE(report.has_value());
  ASSERT_FALSE(report->slabs[2].recovered);
  const auto values = report->field.values();
  for (std::size_t i = 2 * 1024; i < 3 * 1024; ++i) {
    EXPECT_NEAR(values[i], static_cast<float>(i), 0.51F) << i;
  }
}

TEST(CheckpointTest, InterpolateClampsFlatAtLeadingSlab) {
  // Slab 0 has no left neighbor: the fill must hold flat at the right
  // neighbor's first value, never extrapolate the ramp below it.
  const std::size_t n = 8192;
  std::vector<float> ramp(n);
  for (std::size_t i = 0; i < n; ++i) {
    ramp[i] = 100.0F + static_cast<float>(i);
  }
  const data::Field field{"ramp", data::Dims::d1(n), std::move(ramp)};
  auto bytes = write_checkpoint(field, small_chunks(1024));
  ASSERT_TRUE(bytes.has_value());

  auto damaged = *bytes;
  damaged[chunk_payload_offset(damaged, 1) + 2] ^= 0xFF;  // slab 0

  RecoveryPolicy policy;
  policy.fill = RecoveryFill::kInterpolate;
  auto report = recover_checkpoint(damaged, policy);
  ASSERT_TRUE(report.has_value());
  ASSERT_FALSE(report->slabs[0].recovered);
  const auto values = report->field.values();
  const float anchor = 100.0F + 1024.0F;  // first surviving element
  for (std::size_t i = 0; i < 1024; ++i) {
    ASSERT_EQ(values[i], anchor) << i;
  }
  // The surviving tail is untouched.
  EXPECT_EQ(values[1024], anchor);
  EXPECT_EQ(values[n - 1], 100.0F + static_cast<float>(n - 1));
}

TEST(CheckpointTest, InterpolateClampsFlatAtTrailingSlab) {
  // The last slab has no right neighbor: flat fill at the left
  // neighbor's final value.
  const std::size_t n = 8192;
  std::vector<float> ramp(n);
  for (std::size_t i = 0; i < n; ++i) {
    ramp[i] = static_cast<float>(i);
  }
  const data::Field field{"ramp", data::Dims::d1(n), std::move(ramp)};
  auto bytes = write_checkpoint(field, small_chunks(1024));
  ASSERT_TRUE(bytes.has_value());

  const std::uint32_t last_slab = static_cast<std::uint32_t>(n / 1024) - 1;
  auto damaged = *bytes;
  damaged[chunk_payload_offset(damaged, last_slab + 1) + 2] ^= 0xFF;

  RecoveryPolicy policy;
  policy.fill = RecoveryFill::kInterpolate;
  auto report = recover_checkpoint(damaged, policy);
  ASSERT_TRUE(report.has_value());
  ASSERT_FALSE(report->slabs[last_slab].recovered);
  const auto values = report->field.values();
  const float anchor = static_cast<float>(n - 1024 - 1);  // last survivor
  for (std::size_t i = n - 1024; i < n; ++i) {
    ASSERT_EQ(values[i], anchor) << i;
  }
}

TEST(InterpolateRegionsTest, MidRunRampsBetweenNeighbors) {
  std::vector<float> out = {0.0F, 0.0F, 0.0F, 0.0F, 10.0F};
  out[0] = 0.0F;
  const SlabRegion regions[] = {
      {0, 1, true}, {1, 3, false}, {4, 1, true}};
  interpolate_lost_regions(out, regions);
  // Ramp from out[0]=0 to out[4]=10 across 3 lost elements.
  EXPECT_FLOAT_EQ(out[1], 2.5F);
  EXPECT_FLOAT_EQ(out[2], 5.0F);
  EXPECT_FLOAT_EQ(out[3], 7.5F);
}

TEST(InterpolateRegionsTest, LeadingRunHoldsRightNeighbor) {
  std::vector<float> out = {0.0F, 0.0F, 7.0F, 8.0F};
  const SlabRegion regions[] = {{0, 2, false}, {2, 2, true}};
  interpolate_lost_regions(out, regions);
  EXPECT_FLOAT_EQ(out[0], 7.0F);
  EXPECT_FLOAT_EQ(out[1], 7.0F);
}

TEST(InterpolateRegionsTest, TrailingRunHoldsLeftNeighbor) {
  std::vector<float> out = {3.0F, 4.0F, 0.0F, 0.0F};
  const SlabRegion regions[] = {{0, 2, true}, {2, 2, false}};
  interpolate_lost_regions(out, regions);
  EXPECT_FLOAT_EQ(out[2], 4.0F);
  EXPECT_FLOAT_EQ(out[3], 4.0F);
}

TEST(InterpolateRegionsTest, NothingSurvivingLeavesFillUntouched) {
  std::vector<float> out = {0.0F, 0.0F};
  const SlabRegion regions[] = {{0, 2, false}};
  interpolate_lost_regions(out, regions);
  EXPECT_FLOAT_EQ(out[0], 0.0F);
  EXPECT_FLOAT_EQ(out[1], 0.0F);
}

TEST(CheckpointTest, ZeroFillIsDefault) {
  const auto field = make_field();
  auto bytes = write_checkpoint(field, small_chunks());
  ASSERT_TRUE(bytes.has_value());
  auto damaged = *bytes;
  damaged[chunk_payload_offset(damaged, 1) + 3] ^= 0xFF;  // slab 0
  auto report = recover_checkpoint(damaged);
  ASSERT_TRUE(report.has_value());
  ASSERT_FALSE(report->slabs[0].recovered);
  const auto values = report->field.values();
  for (std::size_t i = 0; i < report->slabs[0].element_count; ++i) {
    ASSERT_EQ(values[i], 0.0F) << i;
  }
}

TEST(CheckpointTest, FailOnAnyLossPolicyReturnsTypedError) {
  const auto field = make_field();
  auto bytes = write_checkpoint(field, small_chunks());
  ASSERT_TRUE(bytes.has_value());
  auto damaged = *bytes;
  damaged[chunk_payload_offset(damaged, 1) + 3] ^= 0xFF;

  RecoveryPolicy policy;
  policy.fail_on_any_loss = true;
  auto report = recover_checkpoint(damaged, policy);
  EXPECT_FALSE(report.has_value());
  EXPECT_EQ(report.status().code(), ErrorCode::kCorruptData);
}

TEST(CheckpointTest, ManifestSurvivesViaReplica) {
  const auto field = make_field();
  auto bytes = write_checkpoint(field, small_chunks());
  ASSERT_TRUE(bytes.has_value());

  // Destroy the manifest chunk (chunk 0) payload.
  auto damaged = *bytes;
  const std::size_t manifest_at = chunk_payload_offset(damaged, 0);
  Rng rng{7};
  for (std::size_t i = 0; i < 8; ++i) {
    damaged[manifest_at + i] = static_cast<std::uint8_t>(rng.next_u64());
  }

  auto report = recover_checkpoint(damaged);
  ASSERT_TRUE(report.has_value()) << report.status().to_string();
  EXPECT_TRUE(report->manifest_from_replica);
  EXPECT_TRUE(report->complete());  // all slabs still intact
  const auto original = field.values();
  const auto recovered = report->field.values();
  ASSERT_EQ(recovered.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(recovered[i], original[i]) << i;
  }
}

TEST(CheckpointTest, BothManifestCopiesLostIsTypedError) {
  const auto field = make_field();
  auto bytes = write_checkpoint(field, small_chunks());
  ASSERT_TRUE(bytes.has_value());
  auto damaged = *bytes;
  const std::uint32_t last_chunk =
      static_cast<std::uint32_t>(2 + (field.element_count() + 2047) / 2048) - 1;
  damaged[chunk_payload_offset(damaged, 0) + 1] ^= 0xFF;
  damaged[chunk_payload_offset(damaged, last_chunk) + 1] ^= 0xFF;
  auto report = recover_checkpoint(damaged);
  EXPECT_FALSE(report.has_value());
  EXPECT_EQ(report.status().code(), ErrorCode::kCorruptData);
}

TEST(CheckpointTest, TruncatedCheckpointRecoversLeadingSlabs) {
  const auto field = make_field();
  auto bytes = write_checkpoint(field, small_chunks());
  ASSERT_TRUE(bytes.has_value());
  // Keep only the first three frame chunks (manifest + slabs 0-1).
  const std::size_t cut = chunk_payload_offset(*bytes, 3) - kChunkHeaderBytes;
  const std::vector<std::uint8_t> truncated(bytes->begin(),
                                            bytes->begin() +
                                                static_cast<std::ptrdiff_t>(cut));
  auto report = recover_checkpoint(truncated);
  ASSERT_TRUE(report.has_value()) << report.status().to_string();
  EXPECT_TRUE(report->slabs[0].recovered);
  EXPECT_TRUE(report->slabs[1].recovered);
  for (std::size_t s = 2; s < report->slabs.size(); ++s) {
    EXPECT_FALSE(report->slabs[s].recovered) << s;
  }
}

TEST(CheckpointTest, RejectsNonCheckpointFrames) {
  const std::vector<std::uint8_t> payload(1000, 0x5A);
  const auto framed = frame_payload(payload);
  auto report = recover_checkpoint(framed);
  EXPECT_FALSE(report.has_value());
  EXPECT_EQ(report.status().code(), ErrorCode::kInvalidArgument);
}

TEST(CheckpointTest, EmptyFieldIsRejected) {
  EXPECT_FALSE(write_checkpoint(data::Field{}, {}).has_value());
}

}  // namespace
}  // namespace lcp::compress
