// Second-order Lorenzo predictor (Zhao et al., HPDC'20 — the paper's ref
// [7]): stencil exactness properties and end-to-end behaviour of the
// SzPredictor::kSecondOrder pipeline option.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/common/metrics.hpp"
#include "compress/sz/lorenzo.hpp"
#include "compress/sz/sz_compressor.hpp"
#include "data/generators.hpp"

namespace lcp::sz {
namespace {

TEST(Lorenzo2Test, OneDExactOnQuadratics) {
  std::vector<float> d(20);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto x = static_cast<float>(i);
    d[i] = 0.5F * x * x - 3.0F * x + 7.0F;
  }
  // Exact for linear extrapolation of quadratic first differences? The
  // 1-D second-order stencil is exact for *linear* data and reduces the
  // residual of quadratics to the constant second difference.
  for (std::size_t i = 2; i < d.size(); ++i) {
    const float resid = d[i] - lorenzo2_predict_1d(d, i);
    EXPECT_FLOAT_EQ(resid, 1.0F) << i;  // 2*a with a=0.5
  }
}

TEST(Lorenzo2Test, OneDExactOnLinearData) {
  std::vector<float> d(20);
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = 3.0F * static_cast<float>(i) + 2.0F;
  }
  for (std::size_t i = 2; i < d.size(); ++i) {
    EXPECT_FLOAT_EQ(lorenzo2_predict_1d(d, i), d[i]);
  }
}

TEST(Lorenzo2Test, TwoDExactOnProductsOfLinears) {
  // (I - L) annihilates anything linear along its axis, so a product of
  // per-axis linear functions — which defeats first-order Lorenzo because
  // of the bilinear cross term — is predicted exactly.
  const std::size_t n0 = 8;
  const std::size_t n1 = 9;
  std::vector<float> d(n0 * n1);
  for (std::size_t i = 0; i < n0; ++i) {
    for (std::size_t j = 0; j < n1; ++j) {
      const auto x = static_cast<float>(i);
      const auto y = static_cast<float>(j);
      d[i * n1 + j] = (2.0F * x + 1.0F) * (3.0F * y - 2.0F);
    }
  }
  for (std::size_t i = 2; i < n0; ++i) {
    for (std::size_t j = 2; j < n1; ++j) {
      EXPECT_NEAR(lorenzo2_predict_2d(d, i, j, n1), d[i * n1 + j],
                  std::fabs(d[i * n1 + j]) * 1e-5 + 1e-4)
          << i << "," << j;
      // First order is NOT exact here (bilinear cross term).
      if (i == 3 && j == 3) {
        EXPECT_GT(std::fabs(lorenzo_predict_2d(d, i, j, n1) - d[i * n1 + j]),
                  1.0F);
      }
    }
  }
}

TEST(Lorenzo2Test, TwoDQuadraticsLeaveConstantResidual) {
  // On per-axis quadratics the residual is the constant second difference —
  // ideal for the quantizer/Huffman stage even though not exactly zero.
  const std::size_t n0 = 8;
  const std::size_t n1 = 8;
  std::vector<float> d(n0 * n1);
  for (std::size_t i = 0; i < n0; ++i) {
    for (std::size_t j = 0; j < n1; ++j) {
      const auto x = static_cast<float>(i);
      const auto y = static_cast<float>(j);
      d[i * n1 + j] = x * x + y * y + x * y;
    }
  }
  float first_resid = 0.0F;
  for (std::size_t i = 2; i < n0; ++i) {
    for (std::size_t j = 2; j < n1; ++j) {
      const float resid = d[i * n1 + j] - lorenzo2_predict_2d(d, i, j, n1);
      if (i == 2 && j == 2) {
        first_resid = resid;
      }
      EXPECT_NEAR(resid, first_resid, 1e-3) << i << "," << j;
    }
  }
}

TEST(Lorenzo2Test, ThreeDExactOnTriquadratics) {
  const std::size_t n = 6;
  std::vector<float> d(n * n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const auto x = static_cast<float>(i);
        const auto y = static_cast<float>(j);
        const auto z = static_cast<float>(k);
        d[(i * n + j) * n + k] =
            (x * x + 1.0F) * (2.0F * y + 3.0F) * (z * z - z + 1.0F);
      }
    }
  }
  for (std::size_t i = 2; i < n; ++i) {
    for (std::size_t j = 2; j < n; ++j) {
      for (std::size_t k = 2; k < n; ++k) {
        const float v = d[(i * n + j) * n + k];
        EXPECT_NEAR(lorenzo2_predict_3d(d, i, j, k, n, n), v,
                    std::fabs(v) * 1e-4)
            << i << "," << j << "," << k;
      }
    }
  }
}

TEST(Lorenzo2Test, BordersFallBackToFirstOrder) {
  const std::vector<float> d = {1.0F, 2.0F, 3.0F, 4.0F};
  EXPECT_EQ(lorenzo2_predict_1d(d, 0), lorenzo_predict_1d(d, 0));
  EXPECT_EQ(lorenzo2_predict_1d(d, 1), lorenzo_predict_1d(d, 1));
}

TEST(SzSecondOrderTest, RoundTripHonoursBound) {
  SzOptions options;
  options.predictor = SzPredictor::kSecondOrder;
  SzCompressor codec{options};
  for (const auto* which : {"cesm", "nyx", "hacc"}) {
    data::Field field;
    if (std::string{which} == "cesm") {
      field = data::generate_cesm_atm(4, 32, 32, 2);
    } else if (std::string{which} == "nyx") {
      field = data::generate_nyx(20, 2);
    } else {
      field = data::generate_hacc(8192, 2);
    }
    const auto report = compress::round_trip(
        codec, field, compress::ErrorBound::absolute(1e-3));
    ASSERT_TRUE(report.has_value()) << which;
    EXPECT_TRUE(report->bound_respected) << which;
  }
}

TEST(SzSecondOrderTest, PredictorIdTravelsInTheStream) {
  SzOptions second;
  second.predictor = SzPredictor::kSecondOrder;
  SzCompressor codec2{second};
  SzCompressor codec1;  // first order

  const auto field = data::generate_cesm_atm(4, 24, 24, 3);
  auto compressed = codec2.compress(field, compress::ErrorBound::absolute(1e-3));
  ASSERT_TRUE(compressed.has_value());
  // A default (first-order) instance must still decode it correctly.
  auto decoded = codec1.decompress(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  const auto err = data::compare_fields(field, decoded->field);
  ASSERT_TRUE(err.has_value());
  EXPECT_LE(err->max_abs_error, 1e-3 * (1 + 1e-6));
}

TEST(SzSecondOrderTest, HelpsOnSmoothGradientData) {
  // A smooth oscillatory field: first-order residuals are O(h^2 f''),
  // second-order residuals O(h^3), so the higher-order stencil should
  // produce tighter quantization codes and a better ratio.
  const std::size_t n = 64;
  std::vector<float> values(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      values[i * n + j] = 100.0F *
                          std::sin(0.12F * static_cast<float>(i)) *
                          std::cos(0.15F * static_cast<float>(j));
    }
  }
  data::Field field{"wave", data::Dims::d2(n, n), std::move(values)};

  SzCompressor first;
  SzOptions options;
  options.predictor = SzPredictor::kSecondOrder;
  SzCompressor second{options};
  const auto bound = compress::ErrorBound::absolute(1e-3);
  const auto r1 = compress::round_trip(first, field, bound);
  const auto r2 = compress::round_trip(second, field, bound);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(r2->bound_respected);
  EXPECT_GT(r2->compression_ratio, r1->compression_ratio);
}

}  // namespace
}  // namespace lcp::sz
