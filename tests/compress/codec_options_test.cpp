// Cross-cutting option and shape coverage: rank-4 fields (merged-axis
// path), non-default quantizer radii, option combinations, and parallel
// frames of fixed-rate streams.

#include <gtest/gtest.h>

#include <cmath>

#include "compress/common/container.hpp"
#include "compress/common/metrics.hpp"
#include "compress/common/parallel.hpp"
#include "compress/common/registry.hpp"
#include "compress/sz/sz_compressor.hpp"
#include "compress/zfp/zfp_compressor.hpp"
#include "data/generators.hpp"
#include "support/rng.hpp"

namespace lcp::compress {
namespace {

data::Field rank4_field(std::uint64_t seed) {
  // A small 4-D (time, z, y, x) series: three timesteps of a smooth field.
  Rng rng{seed};
  const data::Dims dims{{3, 6, 10, 12}};
  std::vector<float> values(dims.element_count());
  std::size_t idx = 0;
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t z = 0; z < 6; ++z) {
      for (std::size_t y = 0; y < 10; ++y) {
        for (std::size_t x = 0; x < 12; ++x) {
          values[idx++] = static_cast<float>(
              std::sin(0.3 * static_cast<double>(x + t)) +
              0.2 * static_cast<double>(z) +
              0.05 * static_cast<double>(y) + 0.01 * rng.normal());
        }
      }
    }
  }
  return data::Field{"rank4", dims, std::move(values)};
}

TEST(Rank4Test, BothCodecsRoundTripMergedAxes) {
  const auto field = rank4_field(1);
  for (CodecId id : all_codecs()) {
    const auto codec = make_compressor(id);
    const auto report =
        round_trip(*codec, field, ErrorBound::absolute(1e-3));
    ASSERT_TRUE(report.has_value()) << codec_name(id);
    EXPECT_TRUE(report->bound_respected) << codec_name(id);
  }
}

TEST(Rank4Test, DecodedDimsKeepRankFour) {
  const auto field = rank4_field(2);
  const auto codec = make_compressor(CodecId::kSz);
  auto compressed = codec->compress(field, ErrorBound::absolute(1e-2));
  ASSERT_TRUE(compressed.has_value());
  auto decoded = codec->decompress(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->field.dims().rank(), 4u);
  EXPECT_EQ(decoded->field.dims(), field.dims());
}

TEST(SzOptionsTest, TinyQuantizerRadiusForcesUnpredictablesButStaysBounded) {
  sz::SzOptions options;
  options.quantizer_radius = 16;  // absurdly small: most samples escape
  sz::SzCompressor codec{options};
  const auto field = data::generate_cesm_atm(3, 20, 20, 3);
  const auto report = round_trip(codec, field, ErrorBound::absolute(1e-4));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->bound_respected);
  // Ratio near (or below) 1: nearly everything stored exactly.
  EXPECT_LT(report->compression_ratio, 2.0);
}

TEST(SzOptionsTest, AllOptionCombinationsRoundTrip) {
  const auto field = data::generate_nyx(16, 4);
  for (bool backend : {false, true}) {
    for (auto predictor :
         {sz::SzPredictor::kFirstOrder, sz::SzPredictor::kSecondOrder}) {
      sz::SzOptions options;
      options.use_lossless_backend = backend;
      options.predictor = predictor;
      sz::SzCompressor codec{options};
      const auto report =
          round_trip(codec, field, ErrorBound::absolute(1e-3));
      ASSERT_TRUE(report.has_value())
          << backend << static_cast<int>(predictor);
      EXPECT_TRUE(report->bound_respected);
    }
  }
}

TEST(ParallelFixedRateTest, ChunkedFixedRateFrameRoundTrips) {
  ThreadPool pool{2};
  zfp::ZfpCompressor codec;
  const auto field = data::generate_cesm_atm(8, 16, 16, 5);
  ParallelOptions options;
  options.target_chunk_elements = 1024;
  auto compressed = parallel_compress(codec, field,
                                      ErrorBound::fixed_rate(12.0), pool,
                                      options);
  ASSERT_TRUE(compressed.has_value()) << compressed.status().to_string();
  auto decoded = parallel_decompress(codec, compressed->container, pool);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->field.dims(), field.dims());
}

TEST(BoundedRegimeTest, CloudFractionFieldHonoursBoundsInBothCodecs) {
  // Hard-clamped [0,1] data with exact-0/exact-1 plateaus: constant runs
  // for SZ's predictor and all-equal blocks for ZFP.
  const auto field =
      data::generate_cesm_field(data::CesmField::kCloudFraction, 6, 32, 32, 9);
  for (CodecId id : all_codecs()) {
    const auto codec = make_compressor(id);
    const auto report = round_trip(*codec, field, ErrorBound::absolute(1e-3));
    ASSERT_TRUE(report.has_value()) << codec_name(id);
    EXPECT_TRUE(report->bound_respected) << codec_name(id);
    // SZ's run-friendly pipeline does very well here; ZFP's per-block
    // headers cap it lower.
    const double floor = id == CodecId::kSz ? 3.0 : 1.8;
    EXPECT_GT(report->compression_ratio, floor) << codec_name(id);
  }
}

TEST(BoundModeTest, FactoriesSetModeAndValue) {
  const auto abs = ErrorBound::absolute(1e-3);
  EXPECT_EQ(abs.mode, BoundMode::kAbsolute);
  EXPECT_DOUBLE_EQ(abs.value, 1e-3);
  const auto rate = ErrorBound::fixed_rate(8.0);
  EXPECT_EQ(rate.mode, BoundMode::kFixedRate);
  EXPECT_DOUBLE_EQ(rate.value, 8.0);
}

TEST(BoundModeTest, FixedRateSurvivesContainerRoundTrip) {
  const auto field = data::generate_nyx(8, 6);
  zfp::ZfpCompressor codec;
  auto compressed = codec.compress(field, ErrorBound::fixed_rate(10.0));
  ASSERT_TRUE(compressed.has_value());
  const auto view = parse_container(compressed->container);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->bound.mode, BoundMode::kFixedRate);
  EXPECT_DOUBLE_EQ(view->bound.value, 10.0);
}

}  // namespace
}  // namespace lcp::compress
