// ZFP fixed-rate mode: hard size guarantees (rate * elements at block
// granularity), graceful quality scaling with rate, and robustness.

#include <gtest/gtest.h>

#include <cmath>

#include <limits>

#include "compress/common/metrics.hpp"
#include "compress/sz/sz_compressor.hpp"
#include "compress/zfp/zfp_compressor.hpp"
#include "data/generators.hpp"

namespace lcp::zfp {
namespace {

using compress::ErrorBound;

/// Payload bit budget implied by rate for a field with 4^3 blocks.
std::uint64_t expected_payload_bits(const data::Dims& dims, double rate) {
  std::uint64_t blocks = 1;
  for (std::size_t e : dims.extents()) {
    blocks *= (e + 3) / 4;
  }
  return blocks *
         static_cast<std::uint64_t>(std::llround(rate * 64.0));
}

TEST(ZfpFixedRateTest, CompressedSizeIsExactlyTheBudget) {
  const auto field = data::generate_nyx(32, 1);  // 8^3 = 512 blocks
  ZfpCompressor codec;
  for (double rate : {2.0, 4.0, 8.0, 16.0}) {
    auto compressed = codec.compress(field, ErrorBound::fixed_rate(rate));
    ASSERT_TRUE(compressed.has_value()) << rate;
    const std::uint64_t bits = expected_payload_bits(field.dims(), rate);
    // Container adds a fixed-size header; payload is exactly ceil(bits/8).
    const std::uint64_t payload_bytes = (bits + 7) / 8;
    EXPECT_NEAR(static_cast<double>(compressed->container.size()),
                static_cast<double>(payload_bytes), 128.0)
        << rate;
  }
}

TEST(ZfpFixedRateTest, RoundTripReproducesShape) {
  const auto field = data::generate_cesm_atm(4, 20, 20, 2);
  ZfpCompressor codec;
  auto compressed = codec.compress(field, ErrorBound::fixed_rate(8.0));
  ASSERT_TRUE(compressed.has_value());
  auto decoded = codec.decompress(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->field.dims(), field.dims());
}

TEST(ZfpFixedRateTest, HigherRateMeansLowerError) {
  const auto field = data::generate_cesm_atm(4, 32, 32, 3);
  ZfpCompressor codec;
  double prev_err = std::numeric_limits<double>::infinity();
  for (double rate : {1.0, 4.0, 10.0, 20.0}) {
    const auto report =
        compress::round_trip(codec, field, ErrorBound::fixed_rate(rate));
    ASSERT_TRUE(report.has_value()) << rate;
    EXPECT_LT(report->error.max_abs_error, prev_err * 1.05) << rate;
    prev_err = report->error.max_abs_error;
  }
  // At 20 bits/value the reconstruction should be quite accurate relative
  // to a ~100 K range field.
  EXPECT_LT(prev_err, 1e-1);
}

TEST(ZfpFixedRateTest, HighRateIsNearLossless) {
  const auto field = data::generate_cesm_atm(2, 16, 16, 4);
  ZfpCompressor codec;
  const auto report =
      compress::round_trip(codec, field, ErrorBound::fixed_rate(40.0));
  ASSERT_TRUE(report.has_value());
  const double range = field.value_range().span();
  EXPECT_LT(report->error.max_abs_error, range * 1e-6);
}

TEST(ZfpFixedRateTest, ZeroBlocksStillCostTheBudget) {
  data::Field field{"zeros", data::Dims::d3(8, 8, 8),
                    std::vector<float>(512, 0.0F)};
  ZfpCompressor codec;
  auto compressed = codec.compress(field, ErrorBound::fixed_rate(4.0));
  ASSERT_TRUE(compressed.has_value());
  auto decoded = codec.decompress(compressed->container);
  ASSERT_TRUE(decoded.has_value());
  for (float v : decoded->field.values()) {
    EXPECT_EQ(v, 0.0F);
  }
}

TEST(ZfpFixedRateTest, RaggedDimsRoundTrip) {
  const auto field = data::generate_isabel(data::IsabelKind::kWindU, 5, 13,
                                           17, 5);
  ZfpCompressor codec;
  const auto report =
      compress::round_trip(codec, field, ErrorBound::fixed_rate(12.0));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->error.max_abs_error < 10.0, true);  // sane quality
}

TEST(ZfpFixedRateTest, InvalidRatesRejected) {
  const auto field = data::generate_nyx(8, 6);
  ZfpCompressor codec;
  EXPECT_FALSE(codec.compress(field, ErrorBound::fixed_rate(0.0)).has_value());
  EXPECT_FALSE(codec.compress(field, ErrorBound::fixed_rate(-2.0)).has_value());
  EXPECT_FALSE(codec.compress(field, ErrorBound::fixed_rate(65.0)).has_value());
  // Below the 17-bit block floor for 64-element blocks.
  EXPECT_FALSE(codec.compress(field, ErrorBound::fixed_rate(0.1)).has_value());
}

TEST(ZfpFixedRateTest, SzRejectsFixedRate) {
  const auto field = data::generate_nyx(8, 7);
  sz::SzCompressor codec;
  const auto result = codec.compress(field, ErrorBound::fixed_rate(8.0));
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), ErrorCode::kUnsupported);
}

TEST(ZfpFixedRateTest, TruncationRejectedCleanly) {
  const auto field = data::generate_nyx(16, 8);
  ZfpCompressor codec;
  auto compressed = codec.compress(field, ErrorBound::fixed_rate(8.0));
  ASSERT_TRUE(compressed.has_value());
  auto cut = compressed->container;
  cut.resize(cut.size() - 8);
  EXPECT_FALSE(codec.decompress(cut).has_value());
}

}  // namespace
}  // namespace lcp::zfp
