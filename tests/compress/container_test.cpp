#include "compress/common/container.hpp"

#include <gtest/gtest.h>

#include "compress/common/registry.hpp"
#include "data/generators.hpp"

namespace lcp::compress {
namespace {

TEST(ContainerTest, HeaderRoundTrips) {
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const auto bytes =
      build_container("sz", ErrorBound::absolute(1e-3),
                      data::Dims::d3(26, 1800, 3600), "CLDHGH", payload);
  const auto view = parse_container(bytes);
  ASSERT_TRUE(view.has_value()) << view.status().to_string();
  EXPECT_EQ(view->codec, "sz");
  EXPECT_DOUBLE_EQ(view->bound.value, 1e-3);
  EXPECT_EQ(view->dims, data::Dims::d3(26, 1800, 3600));
  EXPECT_EQ(view->field_name, "CLDHGH");
  EXPECT_EQ(std::vector<std::uint8_t>(view->payload.begin(),
                                      view->payload.end()),
            payload);
}

TEST(ContainerTest, RejectsBadMagic) {
  auto bytes = build_container("sz", ErrorBound::absolute(1e-3),
                               data::Dims::d1(4), "f", {});
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(parse_container(bytes).has_value());
}

TEST(ContainerTest, RejectsTruncation) {
  const auto bytes = build_container("zfp", ErrorBound::absolute(1e-2),
                                     data::Dims::d2(4, 4), "f",
                                     std::vector<std::uint8_t>(100, 1));
  for (std::size_t cut : {std::size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> t(bytes.begin(),
                                bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(parse_container(t).has_value()) << cut;
  }
}

TEST(ContainerTest, RejectsEmptyInput) {
  EXPECT_FALSE(parse_container({}).has_value());
}

TEST(RegistryTest, NamesAndFactories) {
  EXPECT_STREQ(codec_name(CodecId::kSz), "sz");
  EXPECT_STREQ(codec_name(CodecId::kZfp), "zfp");
  EXPECT_EQ(all_codecs().size(), 2u);
  EXPECT_EQ(make_compressor(CodecId::kSz)->name(), "sz");
  EXPECT_EQ(make_compressor(CodecId::kZfp)->name(), "zfp");
}

TEST(RegistryTest, LookupByNameFailsForUnknown) {
  EXPECT_TRUE(make_compressor("sz").has_value());
  EXPECT_FALSE(make_compressor("lz4").has_value());
  EXPECT_FALSE(make_compressor("SZ").has_value());  // case-sensitive
}

TEST(RegistryTest, DecompressAnyRoutesOnCodecField) {
  const auto field = data::generate_cesm_atm(2, 16, 16, 3);
  for (CodecId id : all_codecs()) {
    const auto codec = make_compressor(id);
    auto compressed = codec->compress(field, ErrorBound::absolute(1e-2));
    ASSERT_TRUE(compressed.has_value());
    auto decoded = decompress_any(compressed->container);
    ASSERT_TRUE(decoded.has_value()) << codec_name(id);
    EXPECT_EQ(decoded->field.element_count(), field.element_count());
  }
}

TEST(RegistryTest, DecompressAnyRejectsGarbage) {
  const std::vector<std::uint8_t> garbage(64, 0xAA);
  EXPECT_FALSE(decompress_any(garbage).has_value());
}

TEST(PaperBoundsTest, FourBoundsInOrder) {
  const auto& bounds = paper_error_bounds();
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-1);
  EXPECT_DOUBLE_EQ(bounds[3], 1e-4);
}

}  // namespace
}  // namespace lcp::compress
