// Resilient frame format: strict round trips, every single-byte flip
// detected, graceful recovery of the intact chunks from damaged streams,
// and the header/trailer replica machinery.

#include <gtest/gtest.h>

#include <numeric>

#include "compress/common/framing.hpp"
#include "support/rng.hpp"

namespace lcp::compress {
namespace {

std::vector<std::uint8_t> test_payload(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::uint8_t> payload(n);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  return payload;
}

TEST(FramingTest, ByteModeRoundTrip) {
  const auto payload = test_payload(10'000, 1);
  FrameParams params;
  params.chunk_bytes = 1024;
  const auto framed = frame_payload(payload, params);
  EXPECT_EQ(framed.size(),
            payload.size() + frame_overhead_bytes(payload.size(), 1024));

  auto back = read_framed(framed);
  ASSERT_TRUE(back.has_value()) << back.status().to_string();
  EXPECT_EQ(*back, payload);
}

TEST(FramingTest, EmptyPayloadRoundTrip) {
  const std::vector<std::uint8_t> empty;
  const auto framed = frame_payload(empty);
  auto back = read_framed(framed);
  ASSERT_TRUE(back.has_value()) << back.status().to_string();
  EXPECT_TRUE(back->empty());
}

TEST(FramingTest, PayloadSmallerThanOneChunk) {
  const auto payload = test_payload(17, 2);
  FrameParams params;
  params.chunk_bytes = 4096;
  auto back = read_framed(frame_payload(payload, params));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(FramingTest, ChunkModeRoundTrip) {
  FramedWriter writer{FrameParams{}};
  const auto a = test_payload(100, 3);
  const auto b = test_payload(5000, 4);
  const auto c = test_payload(1, 5);
  writer.append_chunk(a);
  writer.append_chunk(b);
  writer.append_chunk(c);
  EXPECT_EQ(writer.chunks_emitted(), 3u);
  const auto framed = writer.finish();

  auto info = probe_frame(framed);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->chunk_count, 3u);
  EXPECT_EQ(info->chunk_bytes, 0u);  // variable-length mode

  auto back = read_framed(framed);
  ASSERT_TRUE(back.has_value());
  std::vector<std::uint8_t> expected;
  expected.insert(expected.end(), a.begin(), a.end());
  expected.insert(expected.end(), b.begin(), b.end());
  expected.insert(expected.end(), c.begin(), c.end());
  EXPECT_EQ(*back, expected);
}

TEST(FramingTest, EverySingleByteFlipFailsStrictRead) {
  const auto payload = test_payload(600, 6);
  FrameParams params;
  params.chunk_bytes = 128;
  const auto framed = frame_payload(payload, params);
  for (std::size_t i = 0; i < framed.size(); ++i) {
    auto mutated = framed;
    mutated[i] ^= 0x01;  // single bit: CRC32C guarantees detection
    const auto decoded = read_framed(mutated);
    EXPECT_FALSE(decoded.has_value()) << "flip at byte " << i << " undetected";
  }
}

TEST(FramingTest, EveryTruncationFailsStrictRead) {
  const auto payload = test_payload(600, 7);
  const auto framed = frame_payload(payload, FrameParams{.chunk_bytes = 128});
  for (std::size_t len = 0; len < framed.size(); ++len) {
    const auto decoded = read_framed(
        std::span<const std::uint8_t>{framed.data(), len});
    EXPECT_FALSE(decoded.has_value()) << "truncation to " << len << " decoded";
  }
}

TEST(FramingTest, RecoveryReturnsOtherChunksBitForBit) {
  const auto payload = test_payload(8 * 512, 8);
  FrameParams params;
  params.chunk_bytes = 512;
  const auto framed = frame_payload(payload, params);

  // Corrupt one byte inside chunk 3's payload.
  auto damaged = framed;
  const std::size_t chunk3_payload =
      kFrameHeaderBytes + 3 * (kChunkHeaderBytes + 512) + kChunkHeaderBytes + 7;
  damaged[chunk3_payload] ^= 0xFF;

  auto rec = recover_framed(damaged);
  ASSERT_TRUE(rec.has_value()) << rec.status().to_string();
  ASSERT_EQ(rec->chunks.size(), 8u);
  EXPECT_EQ(rec->intact_chunks(), 7u);
  EXPECT_FALSE(rec->complete());
  EXPECT_NE(rec->chunks[3].state, ChunkState::kIntact);
  EXPECT_FALSE(rec->chunks[3].status.is_ok());

  for (std::uint32_t i = 0; i < 8; ++i) {
    if (i == 3) {
      continue;
    }
    ASSERT_EQ(rec->chunks[i].state, ChunkState::kIntact) << i;
    const auto expected =
        std::span<const std::uint8_t>{payload}.subspan(i * 512, 512);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                           rec->chunks[i].payload.begin(),
                           rec->chunks[i].payload.end()))
        << "chunk " << i;
  }

  const auto assembled = rec->assemble_zero_filled();
  ASSERT_EQ(assembled.size(), payload.size());
  for (std::size_t i = 0; i < assembled.size(); ++i) {
    const bool in_lost = i >= 3 * 512 && i < 4 * 512;
    EXPECT_EQ(assembled[i], in_lost ? 0 : payload[i]) << i;
  }
}

TEST(FramingTest, TruncatedTailRecoversHeadChunks) {
  const auto payload = test_payload(6 * 256, 9);
  const auto framed = frame_payload(payload, FrameParams{.chunk_bytes = 256});
  // Cut mid-way through chunk 4 (losing chunks 4, 5 and the trailer).
  const std::size_t cut =
      kFrameHeaderBytes + 4 * (kChunkHeaderBytes + 256) + 100;
  auto rec = recover_framed(std::span<const std::uint8_t>{framed.data(), cut});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->intact_chunks(), 4u);
  EXPECT_EQ(rec->chunks[4].state, ChunkState::kMissing);
  EXPECT_EQ(rec->chunks[5].state, ChunkState::kMissing);
  EXPECT_EQ(rec->bytes_recovered(), 4u * 256u);
}

TEST(FramingTest, DamagedHeaderFallsBackToTrailerReplica) {
  const auto payload = test_payload(4 * 300, 10);
  auto framed = frame_payload(payload, FrameParams{.chunk_bytes = 300});
  framed[1] ^= 0xFF;  // magic byte: front header unreadable

  EXPECT_FALSE(read_framed(framed).has_value());

  auto info = probe_frame(framed);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->chunk_count, 4u);

  auto rec = recover_framed(framed);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->header_from_replica);
  EXPECT_EQ(rec->intact_chunks(), 4u);
}

TEST(FramingTest, BothHeaderCopiesLostIsTypedError) {
  const auto payload = test_payload(1000, 11);
  auto framed = frame_payload(payload, FrameParams{.chunk_bytes = 250});
  framed[0] ^= 0xFF;
  framed[framed.size() - kFrameTrailerBytes] ^= 0xFF;
  auto rec = recover_framed(framed);
  EXPECT_FALSE(rec.has_value());
  EXPECT_EQ(rec.status().code(), ErrorCode::kCorruptData);
}

TEST(FramingTest, ResynchronizesAcrossSplicedGarbage) {
  // Build the frame, then splice garbage over chunk 1's header so the
  // walk loses lockstep and must resync on chunk 2's magic.
  const auto payload = test_payload(4 * 200, 12);
  auto framed = frame_payload(payload, FrameParams{.chunk_bytes = 200});
  const std::size_t chunk1 = kFrameHeaderBytes + (kChunkHeaderBytes + 200);
  Rng rng{13};
  for (std::size_t i = 0; i < kChunkHeaderBytes; ++i) {
    framed[chunk1 + i] = static_cast<std::uint8_t>(rng.next_u64());
  }
  auto rec = recover_framed(framed);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->chunks[0].state, ChunkState::kIntact);
  EXPECT_NE(rec->chunks[1].state, ChunkState::kIntact);
  EXPECT_EQ(rec->chunks[2].state, ChunkState::kIntact);
  EXPECT_EQ(rec->chunks[3].state, ChunkState::kIntact);
}

TEST(FramingTest, ChunkHeaderTamperingIsDetected) {
  // Rewriting a chunk's seq to hijack another slot must fail its CRC
  // (the CRC covers seq and length, not just the payload).
  const auto payload = test_payload(3 * 400, 14);
  auto framed = frame_payload(payload, FrameParams{.chunk_bytes = 400});
  const std::size_t chunk2 = kFrameHeaderBytes + 2 * (kChunkHeaderBytes + 400);
  framed[chunk2 + 4] = 0;  // seq 2 -> 0
  auto rec = recover_framed(framed);
  ASSERT_TRUE(rec.has_value());
  // Slot 0 keeps its own genuine chunk; slot 2 must not be intact.
  EXPECT_EQ(rec->chunks[0].state, ChunkState::kIntact);
  EXPECT_NE(rec->chunks[2].state, ChunkState::kIntact);
}

TEST(FramingTest, OverheadFormulaMatchesRealStreams) {
  for (const std::size_t n : {0u, 1u, 512u, 513u, 4096u, 10'000u}) {
    const auto payload = test_payload(n, 15 + n);
    const auto framed = frame_payload(payload, FrameParams{.chunk_bytes = 512});
    EXPECT_EQ(framed.size(), n + frame_overhead_bytes(n, 512)) << n;
  }
}

TEST(FramingTest, HostileChunkCountRejectedBeforeAllocation) {
  // Forge a CRC-valid header claiming 2^30 chunks; validate_info must
  // reject it (count limit and size inconsistency) before any allocation.
  FramedWriter writer{FrameParams{.chunk_bytes = 64}};
  const auto payload = test_payload(64, 16);
  writer.append(payload);
  auto framed = writer.finish();
  // Rebuild a hostile header in place: chunk_count at offset 8.
  // Easier: flip bytes and expect *either* CRC failure or validation
  // failure — never success, never a crash.
  for (std::size_t i = 4; i < kFrameHeaderBytes; ++i) {
    auto mutated = framed;
    mutated[i] = 0xFF;
    (void)recover_framed(mutated);  // must not crash or over-allocate
    EXPECT_FALSE(read_framed(mutated).has_value());
  }
}

}  // namespace
}  // namespace lcp::compress
