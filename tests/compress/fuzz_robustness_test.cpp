// Failure injection: decoders must never crash, hang, or allocate absurd
// memory on corrupt input — every byte of a valid container gets flipped,
// truncated streams of every length are fed in, and random garbage is
// routed through decompress_any. Decoders may either fail cleanly or
// (when a flip lands in a don't-care byte) succeed; what they may not do
// is violate memory safety or return a mis-sized field.

#include <gtest/gtest.h>

#include "compress/common/registry.hpp"
#include "data/generators.hpp"
#include "support/rng.hpp"

namespace lcp::compress {
namespace {

std::vector<std::uint8_t> small_container(CodecId id) {
  const auto field = data::generate_cesm_atm(2, 8, 12, 3);
  const auto codec = make_compressor(id);
  auto compressed = codec->compress(field, ErrorBound::absolute(1e-2));
  EXPECT_TRUE(compressed.has_value());
  return compressed->container;
}

class FuzzRobustnessTest : public ::testing::TestWithParam<CodecId> {};

TEST_P(FuzzRobustnessTest, EveryeSingleByteFlipIsHandled) {
  const auto codec = make_compressor(GetParam());
  const auto baseline = small_container(GetParam());
  const std::size_t expected_elements = 2 * 8 * 12;

  for (std::size_t i = 0; i < baseline.size(); ++i) {
    auto mutated = baseline;
    mutated[i] ^= 0xFF;
    const auto decoded = codec->decompress(mutated);
    if (decoded.has_value()) {
      // A successful decode must still be structurally sane.
      EXPECT_LE(decoded->field.element_count(), 4u * expected_elements) << i;
    }
  }
}

TEST_P(FuzzRobustnessTest, EveryTruncationLengthIsHandled) {
  const auto codec = make_compressor(GetParam());
  const auto baseline = small_container(GetParam());
  // Sample lengths densely at the front (headers) and sparsely after.
  for (std::size_t len = 0; len < baseline.size();
       len += (len < 64 ? 1 : 37)) {
    std::vector<std::uint8_t> cut(baseline.begin(),
                                  baseline.begin() + static_cast<std::ptrdiff_t>(len));
    const auto decoded = codec->decompress(cut);
    EXPECT_FALSE(decoded.has_value()) << "truncation to " << len
                                      << " bytes decoded successfully";
  }
}

TEST_P(FuzzRobustnessTest, RandomGarbageNeverCrashes) {
  const auto codec = make_compressor(GetParam());
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 99};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform_index(500));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    (void)codec->decompress(garbage);  // must simply return
  }
}

TEST_P(FuzzRobustnessTest, ValidHeaderCorruptPayloadIsHandled) {
  const auto codec = make_compressor(GetParam());
  auto container = small_container(GetParam());
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 7};
  // Scramble the back half (payload) while keeping the container header.
  for (int trial = 0; trial < 50; ++trial) {
    auto mutated = container;
    for (std::size_t i = mutated.size() / 2; i < mutated.size(); ++i) {
      if (rng.uniform() < 0.2) {
        mutated[i] = static_cast<std::uint8_t>(rng.next_u64());
      }
    }
    (void)codec->decompress(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(BothCodecs, FuzzRobustnessTest,
                         ::testing::Values(CodecId::kSz, CodecId::kZfp),
                         [](const auto& suite_info) {
                           return std::string{codec_name(suite_info.param)};
                         });

TEST(FuzzRobustnessTest, DecompressAnyOnRandomInput) {
  Rng rng{2024};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform_index(300));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    EXPECT_FALSE(decompress_any(garbage).has_value());
  }
}

TEST(FuzzRobustnessTest, DecompressAnyWithSpoofedCodecName) {
  // A container claiming an unknown codec must be rejected by routing.
  const auto field = data::generate_nyx(8, 4);
  const auto codec = make_compressor(CodecId::kSz);
  auto compressed = codec->compress(field, ErrorBound::absolute(1e-2));
  ASSERT_TRUE(compressed.has_value());
  auto bytes = compressed->container;
  // The codec name "sz" sits right after magic(4)+version(1)+len(4).
  ASSERT_EQ(bytes[9], 's');
  ASSERT_EQ(bytes[10], 'z');
  bytes[9] = 'q';
  EXPECT_FALSE(decompress_any(bytes).has_value());
}

}  // namespace
}  // namespace lcp::compress
