// Scalar/AVX2 dispatch identity: every vectorized kernel must produce
// bit-identical bytes and bit-identical reconstructions under either
// dispatch level. This is the contract that keeps container framing,
// checkpoint dedup and replica verification independent of the host's
// instruction set (see docs/simd_kernels.md). Tests skip on hosts (or
// under LCP_FORCE_SCALAR=1) where only one level is reachable — there is
// nothing to compare.

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "compress/common/codec.hpp"
#include "compress/common/registry.hpp"
#include "compress/lossless/shuffle_codec.hpp"
#include "compress/simd/dispatch.hpp"
#include "compress/sz/huffman.hpp"
#include "compress/sz/pipeline.hpp"
#include "compress/sz/quantizer.hpp"
#include "compress/sz/sz_compressor.hpp"
#include "compress/sz/zlite.hpp"
#include "compress/zfp/embedded_coder.hpp"
#include "data/field.hpp"
#include "support/bitstream.hpp"
#include "support/rng.hpp"

namespace {

using lcp::simd::ScopedSimdLevel;
using lcp::simd::SimdLevel;

bool both_levels_available() {
  return lcp::simd::hardware_simd_level() >= SimdLevel::kAvx2;
}

#define SKIP_WITHOUT_AVX2()                                              \
  if (!both_levels_available()) {                                        \
    GTEST_SKIP() << "host/build reaches only scalar dispatch; nothing "  \
                    "to compare";                                        \
  }

/// A smooth field with scattered hostile values: denormals, exact zeros,
/// and magnitudes large enough to saturate the prequantization grid and
/// fall onto the exact-value side stream.
lcp::data::Field make_field(const std::vector<std::size_t>& extents,
                            unsigned seed) {
  std::size_t n = 1;
  for (auto e : extents) {
    n *= e;
  }
  lcp::Rng rng{seed};
  std::vector<float> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    values[i] = static_cast<float>(std::sin(40.0 * x) +
                                   0.05 * rng.uniform());
  }
  for (std::size_t i = 3; i < n; i += 97) {
    values[i] = 1e-42F;  // denormal
  }
  for (std::size_t i = 11; i < n; i += 131) {
    values[i] = 0.0F;
  }
  for (std::size_t i = 29; i < n; i += 211) {
    values[i] = (i % 2 == 0) ? 1e30F : -1e30F;  // saturates the grid
  }
  return lcp::data::Field{"identity", lcp::data::Dims{extents},
                          std::move(values)};
}

/// Compresses under both levels (bytes must match), then decompresses the
/// container under both levels (floats must match bit for bit).
void expect_codec_identity(const std::string& codec_name,
                           const lcp::data::Field& field, double eb) {
  auto codec = lcp::compress::make_compressor(codec_name);
  ASSERT_TRUE(codec.has_value()) << codec_name;
  const auto bound = lcp::compress::ErrorBound::absolute(eb);

  std::vector<std::uint8_t> container_s;
  std::vector<std::uint8_t> container_v;
  {
    ScopedSimdLevel guard{SimdLevel::kScalar};
    auto result = (*codec)->compress(field, bound);
    ASSERT_TRUE(result.has_value()) << result.status().message();
    container_s = std::move(result->container);
  }
  {
    ScopedSimdLevel guard{SimdLevel::kAvx2};
    auto result = (*codec)->compress(field, bound);
    ASSERT_TRUE(result.has_value()) << result.status().message();
    container_v = std::move(result->container);
  }
  ASSERT_EQ(container_s, container_v)
      << codec_name << ": compressed bytes differ between dispatch levels";

  // Cross-decode: the scalar-built container through the AVX2 decoder and
  // vice versa, plus same-level, all bit-identical.
  std::vector<float> decoded_s;
  std::vector<float> decoded_v;
  {
    ScopedSimdLevel guard{SimdLevel::kScalar};
    auto result = (*codec)->decompress(container_v);
    ASSERT_TRUE(result.has_value()) << result.status().message();
    decoded_s.assign(result->field.values().begin(),
                     result->field.values().end());
  }
  {
    ScopedSimdLevel guard{SimdLevel::kAvx2};
    auto result = (*codec)->decompress(container_s);
    ASSERT_TRUE(result.has_value()) << result.status().message();
    decoded_v.assign(result->field.values().begin(),
                     result->field.values().end());
  }
  ASSERT_EQ(decoded_s.size(), decoded_v.size());
  ASSERT_EQ(std::memcmp(decoded_s.data(), decoded_v.data(),
                        decoded_s.size() * sizeof(float)),
            0)
      << codec_name << ": reconstructions differ between dispatch levels";
}

// Every registered codec x rank x bound, on extents chosen so rows are
// not multiples of the 8-lane group width (tail handling).
TEST(SimdIdentityTest, AllCodecsRanksAndBoundsBitIdentical) {
  SKIP_WITHOUT_AVX2();
  const std::vector<std::vector<std::size_t>> shapes = {
      {1013}, {37, 29}, {17, 13, 11}};
  unsigned seed = 1;
  for (const auto& name : lcp::compress::registered_codec_names()) {
    for (const auto& shape : shapes) {
      for (double eb : {1e-2, 1e-4}) {
        const auto field = make_field(shape, seed++);
        SCOPED_TRACE(name + " rank " + std::to_string(shape.size()) +
                     " eb " + std::to_string(eb));
        expect_codec_identity(name, field, eb);
      }
    }
  }
}

// A tiny field (smaller than one SIMD group) and an 8-multiple field.
TEST(SimdIdentityTest, DegenerateSizes) {
  SKIP_WITHOUT_AVX2();
  expect_codec_identity("sz", make_field({5}, 77), 1e-3);
  expect_codec_identity("sz", make_field({64}, 78), 1e-3);
  expect_codec_identity("sz2", make_field({8, 8, 8}, 79), 1e-3);
}

// Radii beyond kSimdMaxRadius legally fall back to the scalar path at
// either level; the containers must still match.
TEST(SimdIdentityTest, OversizedRadiusFallsBackIdentically) {
  SKIP_WITHOUT_AVX2();
  const auto field = make_field({23, 19}, 91);
  lcp::sz::SzOptions options;
  options.quantizer_radius = (1u << 20) + 1;
  const lcp::sz::SzCompressor codec{options};
  const auto bound = lcp::compress::ErrorBound::absolute(1e-3);
  std::vector<std::uint8_t> container_s;
  {
    ScopedSimdLevel guard{SimdLevel::kScalar};
    auto result = codec.compress(field, bound);
    ASSERT_TRUE(result.has_value());
    container_s = std::move(result->container);
  }
  ScopedSimdLevel guard{SimdLevel::kAvx2};
  auto result = codec.compress(field, bound);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(container_s, result->container);
  auto round = codec.decompress(container_s);
  ASSERT_TRUE(round.has_value());
}

// NaN and infinity never reach the codecs (validate_finite gates them)
// but the fused pipeline must still treat them identically at both
// levels: NaN and -inf saturate to the grid floor, +inf to the ceiling.
TEST(SimdIdentityTest, FusedPipelineHandlesNonFiniteIdentically) {
  SKIP_WITHOUT_AVX2();
  const std::vector<std::size_t> extents{13, 11};
  std::vector<float> values(13 * 11, 0.25F);
  values[5] = std::numeric_limits<float>::quiet_NaN();
  values[17] = std::numeric_limits<float>::infinity();
  values[31] = -std::numeric_limits<float>::infinity();
  values[47] = std::numeric_limits<float>::denorm_min();
  values[63] = -1e38F;
  const lcp::sz::LinearQuantizer quantizer{1e-3};

  std::vector<std::uint32_t> codes_s, exact_s, codes_v, exact_v;
  std::vector<float> grid_s, grid_v;
  {
    ScopedSimdLevel guard{SimdLevel::kScalar};
    lcp::sz::predict_quantize_fused(values, extents,
                                    lcp::sz::SzPredictor::kFirstOrder,
                                    quantizer, codes_s, exact_s, grid_s);
  }
  {
    ScopedSimdLevel guard{SimdLevel::kAvx2};
    lcp::sz::predict_quantize_fused(values, extents,
                                    lcp::sz::SzPredictor::kFirstOrder,
                                    quantizer, codes_v, exact_v, grid_v);
  }
  EXPECT_EQ(codes_s, codes_v);
  EXPECT_EQ(exact_s, exact_v);
  ASSERT_EQ(grid_s.size(), grid_v.size());
  EXPECT_EQ(std::memcmp(grid_s.data(), grid_v.data(),
                        grid_s.size() * sizeof(float)),
            0);
}

std::vector<std::uint32_t> quantizer_shaped_symbols(std::size_t count,
                                                    unsigned seed) {
  lcp::Rng rng{seed};
  std::vector<std::uint32_t> symbols(count);
  for (auto& s : symbols) {
    std::int64_t delta = 0;
    while (delta < 300 && rng.uniform() < 0.9) {
      ++delta;
    }
    s = static_cast<std::uint32_t>(32768 + (rng.uniform() < 0.5 ? -delta
                                                                : delta));
  }
  return symbols;
}

TEST(SimdIdentityTest, HuffmanRoundTripMatchesAcrossLevels) {
  SKIP_WITHOUT_AVX2();
  const auto symbols = quantizer_shaped_symbols(50000, 5);
  std::vector<std::uint8_t> blob_s, blob_v;
  {
    ScopedSimdLevel guard{SimdLevel::kScalar};
    blob_s = lcp::sz::huffman_encode(symbols, 65537);
  }
  {
    ScopedSimdLevel guard{SimdLevel::kAvx2};
    blob_v = lcp::sz::huffman_encode(symbols, 65537);
  }
  ASSERT_EQ(blob_s, blob_v);

  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
    ScopedSimdLevel guard{level};
    auto decoded = lcp::sz::huffman_decode(blob_s, symbols.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, symbols);
    std::vector<std::uint32_t> into;
    ASSERT_TRUE(
        lcp::sz::huffman_decode_into(blob_s, symbols.size(), into).is_ok());
    EXPECT_EQ(into, symbols);
  }
}

// Fibonacci-weighted frequencies force code lengths past the 16-bit wide
// window, so the AVX2 decoder's long-code fallback runs; results must
// still match the scalar decoder symbol for symbol.
TEST(SimdIdentityTest, LongCodesDecodeIdentically) {
  SKIP_WITHOUT_AVX2();
  constexpr std::size_t kSymbols = 28;
  std::vector<std::uint32_t> stream;
  std::uint64_t fa = 1;
  std::uint64_t fb = 1;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    for (std::uint64_t r = 0; r < fa && stream.size() < 200000; ++r) {
      stream.push_back(static_cast<std::uint32_t>(s));
    }
    const std::uint64_t next = fa + fb;
    fb = fa;
    fa = next;
  }
  // Interleave so rare (long-code) symbols appear throughout the stream.
  lcp::Rng rng{17};
  for (std::size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.next_u64() % i]);
  }
  const auto blob = lcp::sz::huffman_encode(stream, kSymbols);
  std::vector<std::uint32_t> decoded_s, decoded_v;
  {
    ScopedSimdLevel guard{SimdLevel::kScalar};
    ASSERT_TRUE(
        lcp::sz::huffman_decode_into(blob, stream.size(), decoded_s).is_ok());
  }
  {
    ScopedSimdLevel guard{SimdLevel::kAvx2};
    ASSERT_TRUE(
        lcp::sz::huffman_decode_into(blob, stream.size(), decoded_v).is_ok());
  }
  EXPECT_EQ(decoded_s, stream);
  EXPECT_EQ(decoded_v, stream);
}

// Corrupt streams must draw the same ok/error verdict at both levels: the
// wide-window decoder defers its overflow check but may not change the
// outcome.
TEST(SimdIdentityTest, CorruptStreamsSameVerdictAcrossLevels) {
  SKIP_WITHOUT_AVX2();
  const auto symbols = quantizer_shaped_symbols(20000, 9);
  const auto blob = lcp::sz::huffman_encode(symbols, 65537);
  std::vector<std::vector<std::uint8_t>> variants;
  variants.emplace_back(blob.begin(), blob.begin() + blob.size() / 2);
  variants.emplace_back(blob.begin(), blob.begin() + blob.size() - 3);
  {
    auto flipped = blob;
    for (std::size_t i = flipped.size() / 2; i < flipped.size(); i += 7) {
      flipped[i] ^= 0xFF;
    }
    variants.push_back(std::move(flipped));
  }
  for (std::size_t v = 0; v < variants.size(); ++v) {
    SCOPED_TRACE("variant " + std::to_string(v));
    bool ok_s = false;
    bool ok_v = false;
    std::vector<std::uint32_t> out_s, out_v;
    {
      ScopedSimdLevel guard{SimdLevel::kScalar};
      ok_s = lcp::sz::huffman_decode_into(variants[v], symbols.size(), out_s)
                 .is_ok();
    }
    {
      ScopedSimdLevel guard{SimdLevel::kAvx2};
      ok_v = lcp::sz::huffman_decode_into(variants[v], symbols.size(), out_v)
                 .is_ok();
    }
    EXPECT_EQ(ok_s, ok_v);
    if (ok_s && ok_v) {
      EXPECT_EQ(out_s, out_v);  // decoded garbage must at least agree
    }
  }
}

TEST(SimdIdentityTest, ShuffleUnshuffleBitIdentical) {
  SKIP_WITHOUT_AVX2();
  for (std::size_t n : {std::size_t{1}, std::size_t{13}, std::size_t{4101}}) {
    SCOPED_TRACE(n);
    lcp::Rng rng{static_cast<unsigned>(n)};
    std::vector<float> values(n);
    for (auto& v : values) {
      v = static_cast<float>(rng.uniform() * 2000.0 - 1000.0);
    }
    values[0] = -0.0F;
    std::vector<std::uint8_t> planes_s(n * 4), planes_v(n * 4);
    std::vector<float> back_s(n), back_v(n);
    {
      ScopedSimdLevel guard{SimdLevel::kScalar};
      lcp::lossless::shuffle_bytes(values, planes_s);
      lcp::lossless::unshuffle_bytes(planes_s, back_s);
    }
    {
      ScopedSimdLevel guard{SimdLevel::kAvx2};
      lcp::lossless::shuffle_bytes(values, planes_v);
      lcp::lossless::unshuffle_bytes(planes_v, back_v);
    }
    EXPECT_EQ(planes_s, planes_v);
    EXPECT_EQ(std::memcmp(back_s.data(), back_v.data(), n * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(back_s.data(), values.data(), n * sizeof(float)),
              0);
  }
}

TEST(SimdIdentityTest, ZliteBytesIdenticalAcrossLevels) {
  SKIP_WITHOUT_AVX2();
  // Compressible input with runs and literals: shuffled smooth floats.
  const auto field = make_field({31, 27}, 55);
  std::vector<std::uint8_t> planes(field.element_count() * 4);
  lcp::lossless::shuffle_bytes(field.values(), planes);
  std::vector<std::uint8_t> packed_s, packed_v;
  {
    ScopedSimdLevel guard{SimdLevel::kScalar};
    packed_s = lcp::sz::zlite_compress(planes);
  }
  {
    ScopedSimdLevel guard{SimdLevel::kAvx2};
    packed_v = lcp::sz::zlite_compress(planes);
  }
  ASSERT_EQ(packed_s, packed_v);
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
    ScopedSimdLevel guard{level};
    auto restored = lcp::sz::zlite_decompress(packed_s, planes.size());
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(*restored, planes);
  }
}

// Plane gather feeds both the variable and capped ZFP coders; coefficient
// counts off the 4-word group width exercise the masked tail.
TEST(SimdIdentityTest, ZfpPlaneCoderBitIdentical) {
  SKIP_WITHOUT_AVX2();
  for (std::size_t count :
       {std::size_t{1}, std::size_t{7}, std::size_t{50}, std::size_t{64}}) {
    SCOPED_TRACE(count);
    lcp::Rng rng{static_cast<unsigned>(count) + 3};
    std::vector<std::uint64_t> coeffs(count);
    std::uint64_t all = 0;
    for (std::size_t i = 0; i < count; ++i) {
      coeffs[i] = rng.next_u64() >> (i % 23);
      all |= coeffs[i];
    }
    if (all == 0) {
      coeffs[0] = all = 1;
    }
    const auto hi = static_cast<unsigned>(std::bit_width(all) - 1);

    std::vector<std::uint8_t> blob_s, blob_v;
    {
      ScopedSimdLevel guard{SimdLevel::kScalar};
      lcp::BitWriter writer;
      lcp::zfp::encode_block_planes(coeffs, hi, 0, writer);
      blob_s = writer.finish();
    }
    {
      ScopedSimdLevel guard{SimdLevel::kAvx2};
      lcp::BitWriter writer;
      lcp::zfp::encode_block_planes(coeffs, hi, 0, writer);
      blob_v = writer.finish();
    }
    ASSERT_EQ(blob_s, blob_v);

    for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
      ScopedSimdLevel guard{level};
      std::vector<std::uint64_t> out(count, 0);
      lcp::BitReader reader{blob_s};
      ASSERT_TRUE(lcp::zfp::decode_block_planes(out, hi, 0, reader));
      EXPECT_EQ(out, coeffs);
    }
  }
}

}  // namespace
