// Frame-layer transparency: for every codec x rank x bound x chunk size,
// framing an undamaged container and strict-reading it back must be
// byte-for-byte lossless, and the decompressed field must be bit-identical
// to decompressing the unframed container.

#include <gtest/gtest.h>

#include "compress/common/framing.hpp"
#include "compress/common/registry.hpp"
#include "data/generators.hpp"

namespace lcp::compress {
namespace {

struct RoundTripCase {
  std::string codec;
  std::size_t rank = 1;
  double bound = 1e-3;
  std::size_t chunk_bytes = 4096;
};

std::string case_name(const ::testing::TestParamInfo<RoundTripCase>& info) {
  const auto& p = info.param;
  std::string bound =
      p.bound == 1e-2 ? "b1em2" : "b1em3";
  return p.codec + "_r" + std::to_string(p.rank) + "_" + bound + "_c" +
         std::to_string(p.chunk_bytes);
}

data::Field field_of_rank(std::size_t rank) {
  switch (rank) {
    case 1:
      return data::generate_hacc(4096, 77);
    case 2: {
      // 2-D slice: reshape an Isabel layer.
      auto f = data::generate_isabel(data::IsabelKind::kTemperature, 1, 48, 64,
                                     5);
      return data::Field{"isabel_slice", data::Dims::d2(48, 64),
                         std::vector<float>(f.values().begin(),
                                            f.values().end())};
    }
    default:
      return data::generate_cesm_atm(4, 16, 24, 9);
  }
}

class FramingRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(FramingRoundTripTest, FrameLayerIsTransparent) {
  const auto& p = GetParam();
  const auto field = field_of_rank(p.rank);
  auto codec = make_compressor(p.codec);
  ASSERT_TRUE(codec.has_value());
  auto compressed = (*codec)->compress(field, ErrorBound::absolute(p.bound));
  ASSERT_TRUE(compressed.has_value()) << compressed.status().to_string();
  const auto& container = compressed->container;

  FrameParams params;
  params.chunk_bytes = p.chunk_bytes;
  const auto framed = frame_payload(container, params);

  // Layer transparency: strict read returns the container bit-for-bit.
  auto unframed = read_framed(framed);
  ASSERT_TRUE(unframed.has_value()) << unframed.status().to_string();
  ASSERT_EQ(*unframed, container);

  // And decode-after-frame equals decode-without-frame bit-for-bit.
  auto direct = decompress_any(container);
  auto via_frame = decompress_any(*unframed);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(via_frame.has_value());
  const auto a = direct->field.values();
  const auto b = via_frame->field.values();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

std::vector<RoundTripCase> all_cases() {
  std::vector<RoundTripCase> cases;
  for (const auto& codec : registered_codec_names()) {
    for (std::size_t rank : {1u, 2u, 3u}) {
      for (double bound : {1e-2, 1e-3}) {
        for (std::size_t chunk : {256u, 4096u, 65536u}) {
          cases.push_back({codec, rank, bound, chunk});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, FramingRoundTripTest,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace lcp::compress
