#include "tuning/scheduler.hpp"

#include <gtest/gtest.h>

#include "io/transit_model.hpp"

namespace lcp::tuning {
namespace {

const power::ChipSpec& bdw() {
  return power::chip(power::ChipId::kBroadwellD1548);
}

std::vector<Job> typical_jobs() {
  return {
      {"compress-A", power::compression_workload(bdw(), Seconds{10.0}, 0.53, 1.0)},
      {"compress-B", power::compression_workload(bdw(), Seconds{4.0}, 0.50, 0.94)},
      {"write-A", io::transit_workload(bdw(), Bytes::from_gb(2), {})},
  };
}

TEST(SchedulerTest, BaselineRunsEverythingAtFmax) {
  const auto schedule = schedule_baseline(bdw(), typical_jobs());
  ASSERT_EQ(schedule.jobs.size(), 3u);
  for (const auto& sj : schedule.jobs) {
    EXPECT_DOUBLE_EQ(sj.frequency.ghz(), bdw().f_max.ghz());
  }
  EXPECT_GT(schedule.total_energy.joules(), 0.0);
  EXPECT_GT(schedule.total_runtime.seconds(), 0.0);
}

TEST(SchedulerTest, GenerousDeadlineYieldsEnergyOptimalPoints) {
  const auto jobs = typical_jobs();
  const auto baseline = schedule_baseline(bdw(), jobs);
  const auto schedule =
      schedule_for_deadline(bdw(), jobs, baseline.total_runtime * 10.0);
  ASSERT_TRUE(schedule.has_value()) << schedule.status().to_string();
  EXPECT_LT(schedule->total_energy.joules(), baseline.total_energy.joules());
  // With slack, no job should sit at f_max (energy optimum is interior).
  for (const auto& sj : schedule->jobs) {
    EXPECT_LT(sj.frequency.ghz(), bdw().f_max.ghz()) << sj.job.name;
  }
}

TEST(SchedulerTest, TightDeadlinePushesJobsTowardFmax) {
  const auto jobs = typical_jobs();
  const auto baseline = schedule_baseline(bdw(), jobs);
  const auto schedule =
      schedule_for_deadline(bdw(), jobs, baseline.total_runtime * 1.001);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_LE(schedule->total_runtime.seconds(),
            baseline.total_runtime.seconds() * 1.001 + 1e-9);
}

TEST(SchedulerTest, DeadlineIsRespected) {
  const auto jobs = typical_jobs();
  const auto baseline = schedule_baseline(bdw(), jobs);
  for (double slack : {1.02, 1.05, 1.10, 1.5}) {
    const auto schedule = schedule_for_deadline(
        bdw(), jobs, baseline.total_runtime * slack);
    ASSERT_TRUE(schedule.has_value()) << slack;
    EXPECT_LE(schedule->total_runtime.seconds(),
              baseline.total_runtime.seconds() * slack + 1e-9)
        << slack;
    // Any feasible schedule must beat or match baseline energy.
    EXPECT_LE(schedule->total_energy.joules(),
              baseline.total_energy.joules() + 1e-9)
        << slack;
  }
}

TEST(SchedulerTest, MoreSlackNeverCostsMoreEnergy) {
  const auto jobs = typical_jobs();
  const auto baseline = schedule_baseline(bdw(), jobs);
  double prev_energy = baseline.total_energy.joules();
  for (double slack : {1.01, 1.05, 1.10, 1.25, 2.0}) {
    const auto schedule = schedule_for_deadline(
        bdw(), jobs, baseline.total_runtime * slack);
    ASSERT_TRUE(schedule.has_value());
    EXPECT_LE(schedule->total_energy.joules(), prev_energy + 1e-9) << slack;
    prev_energy = schedule->total_energy.joules();
  }
}

TEST(SchedulerTest, InfeasibleDeadlineFails) {
  const auto jobs = typical_jobs();
  const auto baseline = schedule_baseline(bdw(), jobs);
  const auto schedule =
      schedule_for_deadline(bdw(), jobs, baseline.total_runtime * 0.5);
  EXPECT_FALSE(schedule.has_value());
  EXPECT_EQ(schedule.status().code(), ErrorCode::kInvalidArgument);
}

TEST(SchedulerTest, EmptyJobListRejected) {
  EXPECT_FALSE(schedule_for_deadline(bdw(), {}, Seconds{10.0}).has_value());
  EXPECT_FALSE(schedule_for_power_cap(bdw(), {}, Watts{20.0}).has_value());
}

TEST(SchedulerTest, PowerCapPicksFastestCompliantFrequency) {
  const auto jobs = typical_jobs();
  const auto schedule = schedule_for_power_cap(bdw(), jobs, Watts{10.5});
  ASSERT_TRUE(schedule.has_value()) << schedule.status().to_string();
  for (const auto& sj : schedule->jobs) {
    const auto p = power::workload_power(sj.job.workload, bdw(), sj.frequency);
    EXPECT_LE(p.watts(), 10.5) << sj.job.name;
    // The next grid point up must violate the cap (else we weren't fastest)
    // unless the job already sits at f_max.
    if (sj.frequency < bdw().f_max) {
      const GigaHertz next{sj.frequency.ghz() + bdw().f_step.ghz()};
      EXPECT_GT(power::workload_power(sj.job.workload, bdw(), next).watts(),
                10.5)
          << sj.job.name;
    }
  }
}

TEST(SchedulerTest, LooseCapRunsAtFmax) {
  const auto jobs = typical_jobs();
  const auto schedule = schedule_for_power_cap(bdw(), jobs, Watts{100.0});
  ASSERT_TRUE(schedule.has_value());
  for (const auto& sj : schedule->jobs) {
    EXPECT_DOUBLE_EQ(sj.frequency.ghz(), bdw().f_max.ghz());
  }
}

TEST(SchedulerTest, ImpossibleCapFails) {
  const auto jobs = typical_jobs();
  const auto schedule = schedule_for_power_cap(bdw(), jobs, Watts{1.0});
  EXPECT_FALSE(schedule.has_value());
}

TEST(SchedulerTest, FloorBoundJobsDoNotWedgeTheGreedyLoop) {
  // A fully floor-bound job gains no runtime from frequency; the deadline
  // loop must still terminate and meet a tight deadline via other jobs.
  std::vector<Job> jobs = typical_jobs();
  power::Workload floor_job;
  floor_job.cpu_ghz_seconds = 0.1;
  floor_job.floor_seconds = Seconds{30.0};
  floor_job.activity = 0.5;
  jobs.push_back({"floor-bound", floor_job});
  const auto baseline = schedule_baseline(bdw(), jobs);
  const auto schedule =
      schedule_for_deadline(bdw(), jobs, baseline.total_runtime * 1.01);
  ASSERT_TRUE(schedule.has_value()) << schedule.status().to_string();
  EXPECT_LE(schedule->total_runtime.seconds(),
            baseline.total_runtime.seconds() * 1.01 + 1e-9);
}

}  // namespace
}  // namespace lcp::tuning
