#include "tuning/io_plan.hpp"

#include <gtest/gtest.h>

#include "io/transit_model.hpp"

namespace lcp::tuning {
namespace {

const power::ChipSpec& bdw() {
  return power::chip(power::ChipId::kBroadwellD1548);
}

power::Workload compress_w() {
  return power::compression_workload(bdw(), Seconds{60.0}, 0.53, 1.0);
}

power::Workload write_w() {
  return io::transit_workload(bdw(), Bytes::from_gb(4), {});
}

TEST(IoPlanTest, TotalsAreSumsOverStages) {
  IoPlan plan;
  plan.stages = {{"compress", compress_w(), bdw().f_max},
                 {"write", write_w(), bdw().f_max}};
  const double t = plan.total_runtime(bdw()).seconds();
  const double e = plan.total_energy(bdw()).joules();
  const double t_expected =
      power::workload_runtime(compress_w(), bdw(), bdw().f_max).seconds() +
      power::workload_runtime(write_w(), bdw(), bdw().f_max).seconds();
  EXPECT_NEAR(t, t_expected, 1e-9);
  EXPECT_GT(e, 0.0);
}

TEST(IoPlanTest, EmptyPlanIsZero) {
  IoPlan plan;
  EXPECT_DOUBLE_EQ(plan.total_runtime(bdw()).seconds(), 0.0);
  EXPECT_DOUBLE_EQ(plan.total_energy(bdw()).joules(), 0.0);
}

TEST(PlanComparisonTest, TunedDumpSavesEnergy) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  EXPECT_GT(cmp.energy_savings(), 0.0);
  EXPECT_LT(cmp.energy_savings(), 0.35);
  EXPECT_GT(cmp.runtime_increase(), 0.0);
  EXPECT_LT(cmp.runtime_increase(), 0.2);
  EXPECT_GT(cmp.energy_saved().joules(), 0.0);
}

TEST(PlanComparisonTest, BaseStagesRunAtMaxClock) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  ASSERT_EQ(cmp.base.stages.size(), 2u);
  EXPECT_DOUBLE_EQ(cmp.base.stages[0].frequency.ghz(), bdw().f_max.ghz());
  EXPECT_DOUBLE_EQ(cmp.base.stages[1].frequency.ghz(), bdw().f_max.ghz());
}

TEST(PlanComparisonTest, TunedStagesFollowEqnThree) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  ASSERT_EQ(cmp.tuned.stages.size(), 2u);
  EXPECT_NEAR(cmp.tuned.stages[0].frequency.ghz(), 0.875 * 2.0, 1e-9);
  EXPECT_NEAR(cmp.tuned.stages[1].frequency.ghz(), 0.85 * 2.0, 1e-9);
  EXPECT_EQ(cmp.tuned.stages[0].name, "compress");
  EXPECT_EQ(cmp.tuned.stages[1].name, "write");
}

TEST(PlanComparisonTest, IdentityRuleIsNeutral) {
  const TuningRule identity{1.0, 1.0};
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), identity);
  EXPECT_NEAR(cmp.energy_savings(), 0.0, 1e-12);
  EXPECT_NEAR(cmp.runtime_increase(), 0.0, 1e-12);
}

TEST(IoPlanTest, TransitionOverheadCountsOnlyFrequencyChanges) {
  IoPlan plan;
  plan.stages = {{"a", compress_w(), GigaHertz{1.75}},
                 {"b", write_w(), GigaHertz{1.70}},
                 {"c", write_w(), GigaHertz{1.70}},   // no switch
                 {"d", compress_w(), GigaHertz{1.75}}};
  EXPECT_NEAR(plan.transition_time(bdw()).seconds(),
              2.0 * bdw().dvfs_transition_latency.seconds(), 1e-12);
  EXPECT_GT(plan.transition_energy(bdw()).joules(), 0.0);
}

TEST(IoPlanTest, BaseClockPlanHasNoTransitions) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  EXPECT_DOUBLE_EQ(cmp.base.transition_time(bdw()).seconds(), 0.0);
}

TEST(IoPlanTest, TransitionOverheadIsNegligibleForEqn3Plans) {
  // Validates the paper's implicit assumption: the per-stage frequency
  // switch (tens of microseconds) is noise next to seconds-scale stages.
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  const double overhead_j = cmp.tuned.transition_energy(bdw()).joules();
  const double plan_j = cmp.energy_tuned.joules();
  EXPECT_GT(overhead_j, 0.0);
  EXPECT_LT(overhead_j / plan_j, 1e-5);
  EXPECT_LT(cmp.tuned.transition_time(bdw()).seconds() /
                cmp.runtime_tuned.seconds(),
            1e-5);
}

}  // namespace
}  // namespace lcp::tuning
