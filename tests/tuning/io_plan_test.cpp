#include "tuning/io_plan.hpp"

#include <gtest/gtest.h>

#include "io/transit_model.hpp"

namespace lcp::tuning {
namespace {

const power::ChipSpec& bdw() {
  return power::chip(power::ChipId::kBroadwellD1548);
}

power::Workload compress_w() {
  return power::compression_workload(bdw(), Seconds{60.0}, 0.53, 1.0);
}

power::Workload write_w() {
  return io::transit_workload(bdw(), Bytes::from_gb(4), {});
}

TEST(IoPlanTest, TotalsAreSumsOverStages) {
  IoPlan plan;
  plan.stages = {{"compress", compress_w(), bdw().f_max},
                 {"write", write_w(), bdw().f_max}};
  const double t = plan.total_runtime(bdw()).seconds();
  const double e = plan.total_energy(bdw()).joules();
  const double t_expected =
      power::workload_runtime(compress_w(), bdw(), bdw().f_max).seconds() +
      power::workload_runtime(write_w(), bdw(), bdw().f_max).seconds();
  EXPECT_NEAR(t, t_expected, 1e-9);
  EXPECT_GT(e, 0.0);
}

TEST(IoPlanTest, EmptyPlanIsZero) {
  IoPlan plan;
  EXPECT_DOUBLE_EQ(plan.total_runtime(bdw()).seconds(), 0.0);
  EXPECT_DOUBLE_EQ(plan.total_energy(bdw()).joules(), 0.0);
}

TEST(PlanComparisonTest, TunedDumpSavesEnergy) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  EXPECT_GT(cmp.energy_savings(), 0.0);
  EXPECT_LT(cmp.energy_savings(), 0.35);
  EXPECT_GT(cmp.runtime_increase(), 0.0);
  EXPECT_LT(cmp.runtime_increase(), 0.2);
  EXPECT_GT(cmp.energy_saved().joules(), 0.0);
}

TEST(PlanComparisonTest, BaseStagesRunAtMaxClock) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  ASSERT_EQ(cmp.base.stages.size(), 2u);
  EXPECT_DOUBLE_EQ(cmp.base.stages[0].frequency.ghz(), bdw().f_max.ghz());
  EXPECT_DOUBLE_EQ(cmp.base.stages[1].frequency.ghz(), bdw().f_max.ghz());
}

TEST(PlanComparisonTest, TunedStagesFollowEqnThree) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  ASSERT_EQ(cmp.tuned.stages.size(), 2u);
  EXPECT_NEAR(cmp.tuned.stages[0].frequency.ghz(), 0.875 * 2.0, 1e-9);
  EXPECT_NEAR(cmp.tuned.stages[1].frequency.ghz(), 0.85 * 2.0, 1e-9);
  EXPECT_EQ(cmp.tuned.stages[0].name, "compress");
  EXPECT_EQ(cmp.tuned.stages[1].name, "write");
}

TEST(PlanComparisonTest, IdentityRuleIsNeutral) {
  const TuningRule identity{1.0, 1.0};
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), identity);
  EXPECT_NEAR(cmp.energy_savings(), 0.0, 1e-12);
  EXPECT_NEAR(cmp.runtime_increase(), 0.0, 1e-12);
}

TEST(IoPlanTest, TransitionOverheadCountsOnlyFrequencyChanges) {
  IoPlan plan;
  plan.stages = {{"a", compress_w(), GigaHertz{1.75}},
                 {"b", write_w(), GigaHertz{1.70}},
                 {"c", write_w(), GigaHertz{1.70}},   // no switch
                 {"d", compress_w(), GigaHertz{1.75}}};
  EXPECT_NEAR(plan.transition_time(bdw()).seconds(),
              2.0 * bdw().dvfs_transition_latency.seconds(), 1e-12);
  EXPECT_GT(plan.transition_energy(bdw()).joules(), 0.0);
}

TEST(IoPlanTest, BaseClockPlanHasNoTransitions) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  EXPECT_DOUBLE_EQ(cmp.base.transition_time(bdw()).seconds(), 0.0);
}

TEST(IoPlanTest, TransitionOverheadIsNegligibleForEqn3Plans) {
  // Validates the paper's implicit assumption: the per-stage frequency
  // switch (tens of microseconds) is noise next to seconds-scale stages.
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  const double overhead_j = cmp.tuned.transition_energy(bdw()).joules();
  const double plan_j = cmp.energy_tuned.joules();
  EXPECT_GT(overhead_j, 0.0);
  EXPECT_LT(overhead_j / plan_j, 1e-5);
  EXPECT_LT(cmp.tuned.transition_time(bdw()).seconds() /
                cmp.runtime_tuned.seconds(),
            1e-5);
}

TEST(ScaleWorkloadTest, FactorOneIsTheExactIdentity) {
  const auto w = compress_w();
  const auto scaled = scale_workload(w, 1.0);
  // Bit-for-bit, not merely close: the incremental plan's degeneracy to
  // plan_compressed_dump depends on it.
  EXPECT_EQ(scaled.cpu_ghz_seconds, w.cpu_ghz_seconds);
  EXPECT_EQ(scaled.stall_seconds.seconds(), w.stall_seconds.seconds());
  EXPECT_EQ(scaled.floor_seconds.seconds(), w.floor_seconds.seconds());
  EXPECT_EQ(scaled.activity, w.activity);
}

TEST(ScaleWorkloadTest, ScalesTimeTermsLinearlyAndKeepsActivity) {
  power::Workload w;
  w.cpu_ghz_seconds = 10.0;
  w.stall_seconds = Seconds{4.0};
  w.floor_seconds = Seconds{2.0};
  w.activity = 0.7;
  const auto half = scale_workload(w, 0.5);
  EXPECT_DOUBLE_EQ(half.cpu_ghz_seconds, 5.0);
  EXPECT_DOUBLE_EQ(half.stall_seconds.seconds(), 2.0);
  EXPECT_DOUBLE_EQ(half.floor_seconds.seconds(), 1.0);
  EXPECT_DOUBLE_EQ(half.activity, 0.7);
}

TEST(DirtySlabFractionTest, ClampsAndDegenerates) {
  EXPECT_DOUBLE_EQ(dirty_slab_fraction(0.0, 1024, 128), 0.0);
  EXPECT_DOUBLE_EQ(dirty_slab_fraction(-1.0, 1024, 128), 0.0);
  // Touching everything dirties everything regardless of run length.
  EXPECT_DOUBLE_EQ(dirty_slab_fraction(1.0, 1024, 128), 1.0);
  // Slab granularity amplifies small scattered writes: 5% touched in
  // short runs straddles far more than 5% of slabs.
  const double scattered = dirty_slab_fraction(0.05, 32768, 4096);
  EXPECT_GT(scattered, 0.05);
  EXPECT_LE(scattered, 1.0);
  // Long runs amortize the straddle penalty away.
  EXPECT_LT(dirty_slab_fraction(0.05, 1024, 1 << 20),
            dirty_slab_fraction(0.05, 1024, 256));
}

TEST(IncrementalPlanTest, DegeneratesToFullDumpBitForBit) {
  IncrementalDumpSpec inc;  // d = 1, R = 1, zero overhead workloads
  const auto plan =
      plan_incremental_dump(bdw(), compress_w(), write_w(), paper_rule(), inc);
  const auto full =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  EXPECT_EQ(plan.plan.energy_tuned.joules(), full.energy_tuned.joules());
  EXPECT_EQ(plan.plan.energy_base.joules(), full.energy_base.joules());
  EXPECT_EQ(plan.plan.runtime_tuned.seconds(), full.runtime_tuned.seconds());
  EXPECT_EQ(plan.plan.runtime_base.seconds(), full.runtime_base.seconds());
  EXPECT_DOUBLE_EQ(plan.energy_saved_vs_full().joules(), 0.0);
}

TEST(IncrementalPlanTest, EnergyIsMonotoneInDirtyFraction) {
  double last = -1.0;
  for (const double d : {0.05, 0.25, 0.5, 0.75, 1.0}) {
    IncrementalDumpSpec inc;
    inc.dirty_fraction = d;
    const auto plan = plan_incremental_dump(bdw(), compress_w(), write_w(),
                                            paper_rule(), inc);
    EXPECT_GT(plan.plan.energy_tuned.joules(), last) << d;
    last = plan.plan.energy_tuned.joules();
  }
}

TEST(IncrementalPlanTest, ReplicationScalesOnlyTheWriteSide) {
  IncrementalDumpSpec one;
  IncrementalDumpSpec three;
  three.replicas = 3;
  const auto p1 =
      plan_incremental_dump(bdw(), compress_w(), write_w(), paper_rule(), one);
  const auto p3 = plan_incremental_dump(bdw(), compress_w(), write_w(),
                                        paper_rule(), three);
  EXPECT_GT(p3.plan.energy_tuned.joules(), p1.plan.energy_tuned.joules());
  // The full-dump reference does not depend on R.
  EXPECT_EQ(p3.full_dump.energy_tuned.joules(),
            p1.full_dump.energy_tuned.joules());
}

TEST(IncrementalPlanTest, OverheadWorkloadsAddStages) {
  IncrementalDumpSpec inc;
  inc.dirty_fraction = 0.1;
  const auto lean =
      plan_incremental_dump(bdw(), compress_w(), write_w(), paper_rule(), inc);
  inc.hash_workload = power::compression_workload(bdw(), Seconds{1.0}, 0.5, 1.0);
  inc.journal_workload = io::transit_workload(bdw(), Bytes::from_mb(1), {});
  const auto full =
      plan_incremental_dump(bdw(), compress_w(), write_w(), paper_rule(), inc);
  EXPECT_EQ(full.plan.tuned.stages.size(), lean.plan.tuned.stages.size() + 2);
  EXPECT_GT(full.plan.energy_tuned.joules(), lean.plan.energy_tuned.joules());
}

TEST(IncrementalPlanTest, SmallDeltaBeatsFullDump) {
  IncrementalDumpSpec inc;
  inc.dirty_fraction = 0.05;
  inc.replicas = 2;
  inc.hash_workload = power::compression_workload(bdw(), Seconds{0.5}, 0.5, 1.0);
  const auto plan =
      plan_incremental_dump(bdw(), compress_w(), write_w(), paper_rule(), inc);
  EXPECT_GT(plan.energy_saved_vs_full().joules(), 0.0);
}

TEST(FramingTradeoffTest, SurvivalFractionIsAProbability) {
  for (const double p : {0.0, 1e-9, 1e-6, 1e-3, 0.5, 1.0, 2.0}) {
    for (const std::size_t c : {std::size_t{256}, std::size_t{65536}}) {
      const double s = frame_survival_fraction(c, p, 16);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
  EXPECT_EQ(frame_survival_fraction(1024, 0.0, 16), 1.0);
  EXPECT_EQ(frame_survival_fraction(1024, 1.0, 16), 0.0);
  // Bigger chunks expose more bytes: survival decreases with chunk size.
  EXPECT_GT(frame_survival_fraction(256, 1e-5, 16),
            frame_survival_fraction(65536, 1e-5, 16));
}

TEST(FramingTradeoffTest, RecommendedChunkShrinksAsLossRises) {
  const std::size_t clean = recommended_chunk_bytes(0.0);
  const std::size_t low = recommended_chunk_bytes(1e-9);
  const std::size_t mid = recommended_chunk_bytes(1e-6);
  const std::size_t high = recommended_chunk_bytes(1e-3);
  const std::size_t dead = recommended_chunk_bytes(1.0);
  EXPECT_GE(clean, low);
  EXPECT_GE(low, mid);
  EXPECT_GE(mid, high);
  EXPECT_GE(high, dead);
  EXPECT_EQ(clean, std::size_t{256} << 20);  // max clamp
  EXPECT_EQ(dead, 256u);                     // min clamp
  // Closed form at p = 1e-6, h = 16: sqrt(16/1e-6) = 4000.
  EXPECT_NEAR(static_cast<double>(mid), 4000.0, 10.0);
}

TEST(FramingTradeoffTest, EvaluateChunkSizeExposesBothCosts) {
  const auto t = evaluate_chunk_size(4096, 1e-6, 16);
  EXPECT_EQ(t.chunk_bytes, 4096u);
  EXPECT_DOUBLE_EQ(t.overhead_fraction, 16.0 / 4096.0);
  EXPECT_GT(t.expected_recovered_fraction, 0.99);
  EXPECT_LT(t.expected_recovered_fraction, 1.0);
}

}  // namespace
}  // namespace lcp::tuning
