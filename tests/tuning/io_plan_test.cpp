#include "tuning/io_plan.hpp"

#include <gtest/gtest.h>

#include "io/transit_model.hpp"

namespace lcp::tuning {
namespace {

const power::ChipSpec& bdw() {
  return power::chip(power::ChipId::kBroadwellD1548);
}

power::Workload compress_w() {
  return power::compression_workload(bdw(), Seconds{60.0}, 0.53, 1.0);
}

power::Workload write_w() {
  return io::transit_workload(bdw(), Bytes::from_gb(4), {});
}

TEST(IoPlanTest, TotalsAreSumsOverStages) {
  IoPlan plan;
  plan.stages = {{"compress", compress_w(), bdw().f_max},
                 {"write", write_w(), bdw().f_max}};
  const double t = plan.total_runtime(bdw()).seconds();
  const double e = plan.total_energy(bdw()).joules();
  const double t_expected =
      power::workload_runtime(compress_w(), bdw(), bdw().f_max).seconds() +
      power::workload_runtime(write_w(), bdw(), bdw().f_max).seconds();
  EXPECT_NEAR(t, t_expected, 1e-9);
  EXPECT_GT(e, 0.0);
}

TEST(IoPlanTest, EmptyPlanIsZero) {
  IoPlan plan;
  EXPECT_DOUBLE_EQ(plan.total_runtime(bdw()).seconds(), 0.0);
  EXPECT_DOUBLE_EQ(plan.total_energy(bdw()).joules(), 0.0);
}

TEST(PlanComparisonTest, TunedDumpSavesEnergy) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  EXPECT_GT(cmp.energy_savings(), 0.0);
  EXPECT_LT(cmp.energy_savings(), 0.35);
  EXPECT_GT(cmp.runtime_increase(), 0.0);
  EXPECT_LT(cmp.runtime_increase(), 0.2);
  EXPECT_GT(cmp.energy_saved().joules(), 0.0);
}

TEST(PlanComparisonTest, BaseStagesRunAtMaxClock) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  ASSERT_EQ(cmp.base.stages.size(), 2u);
  EXPECT_DOUBLE_EQ(cmp.base.stages[0].frequency.ghz(), bdw().f_max.ghz());
  EXPECT_DOUBLE_EQ(cmp.base.stages[1].frequency.ghz(), bdw().f_max.ghz());
}

TEST(PlanComparisonTest, TunedStagesFollowEqnThree) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  ASSERT_EQ(cmp.tuned.stages.size(), 2u);
  EXPECT_NEAR(cmp.tuned.stages[0].frequency.ghz(), 0.875 * 2.0, 1e-9);
  EXPECT_NEAR(cmp.tuned.stages[1].frequency.ghz(), 0.85 * 2.0, 1e-9);
  EXPECT_EQ(cmp.tuned.stages[0].name, "compress");
  EXPECT_EQ(cmp.tuned.stages[1].name, "write");
}

TEST(PlanComparisonTest, IdentityRuleIsNeutral) {
  const TuningRule identity{1.0, 1.0};
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), identity);
  EXPECT_NEAR(cmp.energy_savings(), 0.0, 1e-12);
  EXPECT_NEAR(cmp.runtime_increase(), 0.0, 1e-12);
}

TEST(IoPlanTest, TransitionOverheadCountsOnlyFrequencyChanges) {
  IoPlan plan;
  plan.stages = {{"a", compress_w(), GigaHertz{1.75}},
                 {"b", write_w(), GigaHertz{1.70}},
                 {"c", write_w(), GigaHertz{1.70}},   // no switch
                 {"d", compress_w(), GigaHertz{1.75}}};
  EXPECT_NEAR(plan.transition_time(bdw()).seconds(),
              2.0 * bdw().dvfs_transition_latency.seconds(), 1e-12);
  EXPECT_GT(plan.transition_energy(bdw()).joules(), 0.0);
}

TEST(IoPlanTest, BaseClockPlanHasNoTransitions) {
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  EXPECT_DOUBLE_EQ(cmp.base.transition_time(bdw()).seconds(), 0.0);
}

TEST(IoPlanTest, TransitionOverheadIsNegligibleForEqn3Plans) {
  // Validates the paper's implicit assumption: the per-stage frequency
  // switch (tens of microseconds) is noise next to seconds-scale stages.
  const auto cmp =
      plan_compressed_dump(bdw(), compress_w(), write_w(), paper_rule());
  const double overhead_j = cmp.tuned.transition_energy(bdw()).joules();
  const double plan_j = cmp.energy_tuned.joules();
  EXPECT_GT(overhead_j, 0.0);
  EXPECT_LT(overhead_j / plan_j, 1e-5);
  EXPECT_LT(cmp.tuned.transition_time(bdw()).seconds() /
                cmp.runtime_tuned.seconds(),
            1e-5);
}

TEST(FramingTradeoffTest, SurvivalFractionIsAProbability) {
  for (const double p : {0.0, 1e-9, 1e-6, 1e-3, 0.5, 1.0, 2.0}) {
    for (const std::size_t c : {std::size_t{256}, std::size_t{65536}}) {
      const double s = frame_survival_fraction(c, p, 16);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
  EXPECT_EQ(frame_survival_fraction(1024, 0.0, 16), 1.0);
  EXPECT_EQ(frame_survival_fraction(1024, 1.0, 16), 0.0);
  // Bigger chunks expose more bytes: survival decreases with chunk size.
  EXPECT_GT(frame_survival_fraction(256, 1e-5, 16),
            frame_survival_fraction(65536, 1e-5, 16));
}

TEST(FramingTradeoffTest, RecommendedChunkShrinksAsLossRises) {
  const std::size_t clean = recommended_chunk_bytes(0.0);
  const std::size_t low = recommended_chunk_bytes(1e-9);
  const std::size_t mid = recommended_chunk_bytes(1e-6);
  const std::size_t high = recommended_chunk_bytes(1e-3);
  const std::size_t dead = recommended_chunk_bytes(1.0);
  EXPECT_GE(clean, low);
  EXPECT_GE(low, mid);
  EXPECT_GE(mid, high);
  EXPECT_GE(high, dead);
  EXPECT_EQ(clean, std::size_t{256} << 20);  // max clamp
  EXPECT_EQ(dead, 256u);                     // min clamp
  // Closed form at p = 1e-6, h = 16: sqrt(16/1e-6) = 4000.
  EXPECT_NEAR(static_cast<double>(mid), 4000.0, 10.0);
}

TEST(FramingTradeoffTest, EvaluateChunkSizeExposesBothCosts) {
  const auto t = evaluate_chunk_size(4096, 1e-6, 16);
  EXPECT_EQ(t.chunk_bytes, 4096u);
  EXPECT_DOUBLE_EQ(t.overhead_fraction, 16.0 / 4096.0);
  EXPECT_GT(t.expected_recovered_fraction, 0.99);
  EXPECT_LT(t.expected_recovered_fraction, 1.0);
}

}  // namespace
}  // namespace lcp::tuning
