#include "tuning/optimizer.hpp"

#include <gtest/gtest.h>

namespace lcp::tuning {
namespace {

using power::ChipId;

const power::ChipSpec& bdw() {
  return power::chip(ChipId::kBroadwellD1548);
}

power::Workload compression_like() {
  return power::compression_workload(bdw(), Seconds{10.0}, 0.53, 1.0);
}

TEST(EvaluateTuningTest, EqnThreeNumbersForCompression) {
  const auto w = compression_like();
  const auto report =
      evaluate_tuning(bdw(), w, bdw().f_max, bdw().f_max * 0.875);
  // Paper bands: power savings ~10-20%, runtime +7.5%, net energy saved.
  EXPECT_GT(report.power_savings(), 0.05);
  EXPECT_LT(report.power_savings(), 0.25);
  EXPECT_NEAR(report.runtime_increase(), 0.075, 0.01);
  EXPECT_GT(report.energy_savings(), 0.0);
}

TEST(EvaluateTuningTest, IdentityTuningIsNeutral) {
  const auto w = compression_like();
  const auto report = evaluate_tuning(bdw(), w, bdw().f_max, bdw().f_max);
  EXPECT_DOUBLE_EQ(report.power_savings(), 0.0);
  EXPECT_DOUBLE_EQ(report.runtime_increase(), 0.0);
  EXPECT_DOUBLE_EQ(report.energy_savings(), 0.0);
}

TEST(EvaluateTuningTest, ConsistentWithWorkloadModel) {
  const auto w = compression_like();
  const auto report =
      evaluate_tuning(bdw(), w, bdw().f_max, GigaHertz{1.0});
  EXPECT_DOUBLE_EQ(report.energy_base.joules(),
                   power::workload_energy(w, bdw(), bdw().f_max).joules());
  EXPECT_DOUBLE_EQ(report.energy_tuned.joules(),
                   power::workload_energy(w, bdw(), GigaHertz{1.0}).joules());
}

TEST(OptimalFrequencyTest, RuntimeOptimumIsMaxClock) {
  EXPECT_DOUBLE_EQ(runtime_optimal_frequency(bdw(), compression_like()).ghz(),
                   bdw().f_max.ghz());
}

TEST(OptimalFrequencyTest, PowerOptimumIsMinClock) {
  // Section V-A.1: pure power is minimized at the lowest frequency.
  EXPECT_DOUBLE_EQ(power_optimal_frequency(bdw(), compression_like()).ghz(),
                   bdw().f_min.ghz());
}

TEST(OptimalFrequencyTest, EnergyOptimumIsInterior) {
  // The energy-optimal point sits strictly between the extremes for a
  // partially cpu-bound workload — the crux of the paper's trade-off.
  const auto f = energy_optimal_frequency(bdw(), compression_like());
  EXPECT_GT(f.ghz(), bdw().f_min.ghz());
  EXPECT_LT(f.ghz(), bdw().f_max.ghz());
}

TEST(OptimalFrequencyTest, EnergyOptimumBeatsEveryGridNeighbor) {
  const auto w = compression_like();
  const auto f_opt = energy_optimal_frequency(bdw(), w);
  const double e_opt = power::workload_energy(w, bdw(), f_opt).joules();
  for (double f = 0.8; f <= 2.0001; f += 0.05) {
    EXPECT_LE(e_opt,
              power::workload_energy(w, bdw(), GigaHertz{f}).joules() + 1e-9);
  }
}

TEST(OptimalFrequencyTest, FloorBoundWorkloadPrefersLowFrequency) {
  // If the pipeline floor dominates, slowing the core is free runtime-wise,
  // so the energy optimum collapses toward f where cpu time reaches the
  // floor (or below).
  power::Workload w;
  w.cpu_ghz_seconds = 0.5;
  w.floor_seconds = Seconds{10.0};
  w.activity = 0.5;
  const auto f = energy_optimal_frequency(bdw(), w);
  EXPECT_LT(f.ghz(), 1.3);
}

}  // namespace
}  // namespace lcp::tuning
