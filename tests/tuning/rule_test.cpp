#include "tuning/rule.hpp"

#include <gtest/gtest.h>

namespace lcp::tuning {
namespace {

TEST(RuleTest, PaperRuleIsEqnThree) {
  const auto rule = paper_rule();
  EXPECT_DOUBLE_EQ(rule.compression_fraction, 0.875);
  EXPECT_DOUBLE_EQ(rule.transit_fraction, 0.85);
}

TEST(RuleTest, StageFrequenciesScaleFmax) {
  const auto rule = paper_rule();
  EXPECT_DOUBLE_EQ(rule.compression_frequency(GigaHertz{2.0}).ghz(), 1.75);
  EXPECT_DOUBLE_EQ(rule.transit_frequency(GigaHertz{2.0}).ghz(), 1.70);
  EXPECT_NEAR(rule.compression_frequency(GigaHertz{2.2}).ghz(), 1.925, 1e-12);
}

model::PowerLawFit sharp_knee_fit() {
  // Skylake-like: flat floor with a steep rise at the top.
  model::PowerLawFit fit;
  fit.a = 2.235e-9;
  fit.b = 23.31;
  fit.c = 0.7941;
  return fit;
}

model::PowerLawFit gradual_fit() {
  model::PowerLawFit fit;
  fit.a = 0.0064;
  fit.b = 5.315;
  fit.c = 0.7429;
  return fit;
}

TEST(DeriveFractionTest, SharpKneeGivesModestReduction) {
  // Most of the power falls off within the first ~10-15% below f_max, so
  // the derived fraction should land near the paper's 0.85-0.9.
  const double x = derive_fraction(sharp_knee_fit(), GigaHertz{2.2}, 0.53);
  EXPECT_GT(x, 0.75);
  EXPECT_LT(x, 0.97);
}

TEST(DeriveFractionTest, GradualCurveStillAboveMinimum) {
  const double x = derive_fraction(gradual_fit(), GigaHertz{2.0}, 0.53);
  EXPECT_GE(x, 0.5);
  EXPECT_LE(x, 1.0);
}

TEST(DeriveFractionTest, HigherBetaPushesFractionUp) {
  // A more cpu-bound stage pays more runtime for the same power cut, so
  // the optimizer should keep the clock higher.
  const double x_low = derive_fraction(sharp_knee_fit(), GigaHertz{2.2}, 0.2);
  const double x_high = derive_fraction(sharp_knee_fit(), GigaHertz{2.2}, 1.0);
  EXPECT_LE(x_low, x_high);
}

TEST(DeriveFractionTest, FlatPowerCurveMeansNoReduction) {
  model::PowerLawFit flat;
  flat.a = 0.0;
  flat.b = 1.0;
  flat.c = 1.0;
  // No power to save: any slowdown only costs runtime.
  EXPECT_DOUBLE_EQ(derive_fraction(flat, GigaHertz{2.0}, 0.5), 1.0);
}

TEST(DeriveRuleTest, ProducesFractionsNearEqnThree) {
  const auto rule = derive_rule(gradual_fit(), gradual_fit(), GigaHertz{2.0},
                                0.53, 0.53);
  EXPECT_GT(rule.compression_fraction, 0.5);
  EXPECT_LE(rule.compression_fraction, 1.0);
  EXPECT_GT(rule.transit_fraction, 0.5);
  EXPECT_LE(rule.transit_fraction, 1.0);
}

}  // namespace
}  // namespace lcp::tuning
