#include "tuning/codec_choice.hpp"

#include <gtest/gtest.h>

#include "io/transit_model.hpp"
#include "power/chip_model.hpp"
#include "tuning/rule.hpp"

namespace lcp::tuning {
namespace {

constexpr std::uint64_t kDump = std::uint64_t{4} << 30;  // 4 GiB

CodecCostProfile profile(double gbps, double ratio) {
  CodecCostProfile p;
  p.name = "test";
  p.gigabytes_per_second = gbps;
  p.ratio = ratio;
  return p;
}

io::TransitModelConfig config_at(double link_gbps) {
  io::TransitModelConfig transit;
  transit.link.gigabits_per_second = link_gbps;
  return transit;
}

double crossover(const CodecCostProfile& codec) {
  return crossover_bandwidth_gbps(power::chip(power::ChipId::kSkylake4114),
                                  codec, Bytes{kDump},
                                  io::TransitModelConfig{}, paper_rule());
}

// Faster codec at the same ratio shrinks Eqn 3's compute term, so the
// compressed plan stays cheaper up to a strictly higher link bandwidth.
// This is the property the bench's scalar-vs-AVX2 crossover gate relies on.
TEST(CodecChoiceTest, FasterCodecRaisesCrossover) {
  const double slow = crossover(profile(0.1, 0.35));
  const double fast = crossover(profile(0.4, 0.35));
  EXPECT_GT(slow, 0.01);
  EXPECT_GT(fast, slow);
}

// Better ratio means fewer bytes on the wire, which also favors
// compression at higher bandwidths.
TEST(CodecChoiceTest, BetterRatioRaisesCrossover) {
  const double weak = crossover(profile(0.2, 0.6));
  const double strong = crossover(profile(0.2, 0.15));
  EXPECT_GT(strong, weak);
}

// The decision must actually flip across B*: compress below, raw above.
TEST(CodecChoiceTest, DecisionFlipsAtCrossover) {
  const auto spec = power::chip(power::ChipId::kSkylake4114);
  const auto codec = profile(0.25, 0.35);
  const double bstar = crossover(codec);
  ASSERT_GT(bstar, 0.011);
  ASSERT_LT(bstar, 999.0);  // interior crossover, not a clamped bound

  const auto below = compress_or_raw(spec, codec, Bytes{kDump},
                                     config_at(bstar * 0.5), paper_rule());
  const auto above = compress_or_raw(spec, codec, Bytes{kDump},
                                     config_at(bstar * 2.0), paper_rule());
  EXPECT_TRUE(below.compress);
  EXPECT_GT(below.energy_saved().joules(), 0.0);
  EXPECT_FALSE(above.compress);
  EXPECT_LE(above.energy_saved().joules(), 0.0);
}

// Raw-plan energy is independent of the codec; compressed-plan energy
// decomposes into compute + wire and both respond the right way.
TEST(CodecChoiceTest, RawEnergyIndependentOfCodec) {
  const auto spec = power::chip(power::ChipId::kSkylake4114);
  const auto transit = config_at(1.0);
  const auto a = compress_or_raw(spec, profile(0.1, 0.5), Bytes{kDump},
                                 transit, paper_rule());
  const auto b = compress_or_raw(spec, profile(0.9, 0.2), Bytes{kDump},
                                 transit, paper_rule());
  EXPECT_DOUBLE_EQ(a.energy_raw.joules(), b.energy_raw.joules());
  EXPECT_LT(b.energy_compressed.joules(), a.energy_compressed.joules());
}

// A codec that never pays for itself (ratio ~1, glacial throughput) pins
// the bisection to the lower bound; an absurdly good one pins the upper.
TEST(CodecChoiceTest, DegenerateProfilesClampToSearchBounds) {
  EXPECT_DOUBLE_EQ(crossover(profile(1e-4, 0.999)), 0.01);
  EXPECT_DOUBLE_EQ(crossover(profile(100.0, 0.01)), 1000.0);
}

}  // namespace
}  // namespace lcp::tuning
