#include <gtest/gtest.h>

#include "support/csv.hpp"
#include "support/table.hpp"

namespace lcp {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  Table t{{"Model Data", "SSE", "RMSE"}};
  t.add_row({"Total", "11.407", "0.0442"});
  t.add_row({"Broadwell", "2.463", "0.0279"});
  const auto out = t.render();
  EXPECT_NE(out.find("Model Data"), std::string::npos);
  EXPECT_NE(out.find("Broadwell"), std::string::npos);
  EXPECT_NE(out.find("0.0279"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, TitleAppearsAboveTable) {
  Table t{{"A"}};
  t.set_title("TABLE IV");
  t.add_row({"x"});
  const auto out = t.render();
  EXPECT_EQ(out.rfind("TABLE IV", 0), 0u);
}

TEST(TableTest, ColumnsPadToWidestCell) {
  Table t{{"h", "col"}};
  t.add_row({"longvalue", "x"});
  const auto out = t.render();
  // Header row and data row must have identical width.
  const auto first_newline = out.find('\n');
  const auto second = out.find('\n', first_newline + 1);
  const auto third = out.find('\n', second + 1);
  EXPECT_EQ(second - first_newline, third - second);
}

TEST(TableTest, FormattersProduceExpectedStrings) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_scientific(2.235e-9, 3), "2.235e-09");
  EXPECT_EQ(format_percent(0.143, 1), "14.3%");
}

TEST(CsvTest, RendersRowsWithHeader) {
  CsvWriter csv{{"f_ghz", "scaled_power"}};
  csv.add_row({"0.8", "0.801"});
  csv.add_row({"2.0", "1.0"});
  EXPECT_EQ(csv.render(), "f_ghz,scaled_power\n0.8,0.801\n2.0,1.0\n");
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter csv{{"name", "note"}};
  csv.add_row({"a,b", "say \"hi\"\nplease"});
  const auto out = csv.render();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\nplease\""), std::string::npos);
}

TEST(CsvTest, WriteFileRoundTrips) {
  CsvWriter csv{{"x"}};
  csv.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/lcp_csv_test.csv";
  ASSERT_TRUE(csv.write_file(path).is_ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const auto n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "x\n1\n");
}

TEST(CsvTest, WriteFileToBadPathFails) {
  CsvWriter csv{{"x"}};
  EXPECT_FALSE(csv.write_file("/nonexistent-dir-xyz/out.csv").is_ok());
}

}  // namespace
}  // namespace lcp
