#include "support/checksum.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace lcp {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  std::vector<std::uint8_t> out(std::strlen(s));
  std::memcpy(out.data(), s, out.size());
  return out;
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / iSCSI check value.
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
  // 32 bytes of zeros (iSCSI test pattern).
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  // 32 bytes of 0xFF.
  std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(crc32c({}), 0u); }

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(1029);
  std::iota(data.begin(), data.end(), 0);
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{512}, data.size()}) {
    std::uint32_t state = kCrc32cInit;
    state = crc32c_update(state, std::span{data.data(), split});
    state = crc32c_update(
        state, std::span{data.data() + split, data.size() - split});
    EXPECT_EQ(crc32c_finish(state), whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlipInAChunk) {
  std::vector<std::uint8_t> data(64);
  std::iota(data.begin(), data.end(), 100);
  const std::uint32_t clean = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto damaged = data;
      damaged[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32c(damaged), clean) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Fnv1a64Test, KnownVectors) {
  // Reference values from the FNV specification.
  EXPECT_EQ(fnv1a64({}), kFnv1a64Init);
  EXPECT_EQ(fnv1a64(bytes_of("a")), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fnv1a64(bytes_of("foobar")), 0x85944171F73967E8ull);
}

TEST(Fnv1a64Test, StreamingMatchesOneShot) {
  std::vector<std::uint8_t> data(777);
  std::iota(data.begin(), data.end(), 3);
  const std::uint64_t whole = fnv1a64(data);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{255},
                            data.size()}) {
    std::uint64_t state = kFnv1a64Init;
    state = fnv1a64_update(state, std::span{data.data(), split});
    state = fnv1a64_update(
        state, std::span{data.data() + split, data.size() - split});
    EXPECT_EQ(state, whole) << "split at " << split;
  }
}

TEST(Fnv1a64Test, SensitiveToOrderAndContent) {
  // The content-addressed store keys objects by this hash: swapped bytes
  // and single-bit flips must land on different names.
  EXPECT_NE(fnv1a64(bytes_of("ab")), fnv1a64(bytes_of("ba")));
  auto a = bytes_of("checkpoint-slab");
  auto b = a;
  b[4] ^= 0x01;
  EXPECT_NE(fnv1a64(a), fnv1a64(b));
}

}  // namespace
}  // namespace lcp
