#include "support/checksum.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace lcp {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  std::vector<std::uint8_t> out(std::strlen(s));
  std::memcpy(out.data(), s, out.size());
  return out;
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / iSCSI check value.
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
  // 32 bytes of zeros (iSCSI test pattern).
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  // 32 bytes of 0xFF.
  std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(crc32c({}), 0u); }

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(1029);
  std::iota(data.begin(), data.end(), 0);
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{512}, data.size()}) {
    std::uint32_t state = kCrc32cInit;
    state = crc32c_update(state, std::span{data.data(), split});
    state = crc32c_update(
        state, std::span{data.data() + split, data.size() - split});
    EXPECT_EQ(crc32c_finish(state), whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlipInAChunk) {
  std::vector<std::uint8_t> data(64);
  std::iota(data.begin(), data.end(), 100);
  const std::uint32_t clean = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto damaged = data;
      damaged[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32c(damaged), clean) << "byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace lcp
