#include "support/bitstream.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace lcp {
namespace {

TEST(BitStreamTest, SingleBitsRoundTrip) {
  BitWriter w;
  const std::vector<bool> bits = {true, false, true, true, false,
                                  false, true, false, true};
  for (bool b : bits) {
    w.write_bit(b);
  }
  const auto bytes = w.finish();
  BitReader r{bytes};
  for (bool b : bits) {
    EXPECT_EQ(r.read_bit(), b);
  }
  EXPECT_FALSE(r.overflowed());
}

TEST(BitStreamTest, MultiBitFieldsRoundTrip) {
  BitWriter w;
  w.write_bits(0x5, 3);
  w.write_bits(0x1234, 16);
  w.write_bits(0xdeadbeefcafe, 48);
  w.write_bits(1, 1);
  const auto bytes = w.finish();

  BitReader r{bytes};
  EXPECT_EQ(r.read_bits(3), 0x5u);
  EXPECT_EQ(r.read_bits(16), 0x1234u);
  EXPECT_EQ(r.read_bits(48), 0xdeadbeefcafeULL);
  EXPECT_EQ(r.read_bits(1), 1u);
  EXPECT_FALSE(r.overflowed());
}

TEST(BitStreamTest, SixtyFourBitWrite) {
  BitWriter w;
  w.write_bits(UINT64_MAX, 64);
  w.write_bits(0x123456789abcdef0ULL, 64);
  const auto bytes = w.finish();
  BitReader r{bytes};
  EXPECT_EQ(r.read_bits(64), UINT64_MAX);
  EXPECT_EQ(r.read_bits(64), 0x123456789abcdef0ULL);
}

TEST(BitStreamTest, ValueBitsAboveWidthAreMasked) {
  BitWriter w;
  w.write_bits(0xFF, 4);  // only low 4 bits should land
  w.write_bits(0x0, 4);
  const auto bytes = w.finish();
  BitReader r{bytes};
  EXPECT_EQ(r.read_bits(4), 0xFu);
  EXPECT_EQ(r.read_bits(4), 0x0u);
}

TEST(BitStreamTest, UnaryRoundTrip) {
  BitWriter w;
  for (unsigned n : {0u, 1u, 2u, 7u, 31u, 100u}) {
    w.write_unary(n);
  }
  const auto bytes = w.finish();
  BitReader r{bytes};
  for (unsigned n : {0u, 1u, 2u, 7u, 31u, 100u}) {
    EXPECT_EQ(r.read_unary(), n);
  }
  EXPECT_FALSE(r.overflowed());
}

TEST(BitStreamTest, ReadPastEndPadsZeroAndFlagsOverflow) {
  BitWriter w;
  w.write_bits(0b101, 3);
  const auto bytes = w.finish();
  BitReader r{bytes};
  EXPECT_EQ(r.read_bits(3), 0b101u);
  // Padding bits of the final byte read as zero without overflow...
  EXPECT_EQ(r.read_bits(5), 0u);
  EXPECT_FALSE(r.overflowed());
  // ...but crossing the buffer flags it.
  (void)r.read_bits(8);
  EXPECT_TRUE(r.overflowed());
}

TEST(BitStreamTest, BitCountExcludesPadding) {
  BitWriter w;
  w.write_bits(0, 13);
  EXPECT_EQ(w.bit_count(), 13u);
  const auto bytes = w.finish();
  EXPECT_EQ(bytes.size(), 2u);
}

TEST(BitStreamTest, RandomizedRoundTripProperty) {
  Rng rng{2024};
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, unsigned>> writes;
    const int ops = 200;
    for (int i = 0; i < ops; ++i) {
      const unsigned bits = 1 + static_cast<unsigned>(rng.uniform_index(64));
      const std::uint64_t value =
          bits == 64 ? rng.next_u64()
                     : rng.next_u64() & ((std::uint64_t{1} << bits) - 1);
      writes.emplace_back(value, bits);
      w.write_bits(value, bits);
    }
    const auto bytes = w.finish();
    BitReader r{bytes};
    for (const auto& [value, bits] : writes) {
      EXPECT_EQ(r.read_bits(bits), value);
    }
    EXPECT_FALSE(r.overflowed());
  }
}

TEST(BitStreamTest, EmptyWriterYieldsEmptyBuffer) {
  BitWriter w;
  EXPECT_TRUE(w.finish().empty());
}

TEST(BitStreamTest, ReaderOnEmptyBufferOverflowsImmediately) {
  BitReader r{{}};
  EXPECT_EQ(r.bits_remaining(), 0u);
  EXPECT_EQ(r.read_bits(1), 0u);
  EXPECT_TRUE(r.overflowed());
}

TEST(BitStreamTest, PeekDoesNotConsumeOrOverflow) {
  BitWriter w;
  w.write_bits(0b1101, 4);
  const auto bytes = w.finish();
  BitReader r{bytes};
  EXPECT_EQ(r.peek_bits(4), 0b1101u);
  EXPECT_EQ(r.peek_bits(4), 0b1101u);  // still there
  // Peeking past the end zero-pads but never flags overflow.
  EXPECT_EQ(r.peek_bits(32), 0b1101u);
  EXPECT_FALSE(r.overflowed());
  EXPECT_EQ(r.read_bits(4), 0b1101u);
}

TEST(BitStreamTest, SkipAdvancesLikeRead) {
  BitWriter w;
  w.write_bits(0xABCD, 16);
  w.write_bits(0x37, 8);
  const auto bytes = w.finish();
  BitReader r{bytes};
  r.skip_bits(16);
  EXPECT_EQ(r.read_bits(8), 0x37u);
  EXPECT_FALSE(r.overflowed());
}

TEST(BitStreamTest, SkipPastEndFlagsOverflow) {
  BitWriter w;
  w.write_bits(0, 8);
  const auto bytes = w.finish();
  BitReader r{bytes};
  r.skip_bits(9);
  EXPECT_TRUE(r.overflowed());
}

TEST(BitStreamTest, PeekMatchesReadAcrossWordBoundaries) {
  Rng rng{77};
  BitWriter w;
  std::vector<std::pair<std::uint64_t, unsigned>> writes;
  for (int i = 0; i < 100; ++i) {
    const unsigned bits = 1 + static_cast<unsigned>(rng.uniform_index(64));
    const std::uint64_t value =
        bits == 64 ? rng.next_u64()
                   : rng.next_u64() & ((std::uint64_t{1} << bits) - 1);
    writes.emplace_back(value, bits);
    w.write_bits(value, bits);
  }
  const auto bytes = w.finish();
  BitReader r{bytes};
  for (const auto& [value, bits] : writes) {
    EXPECT_EQ(r.peek_bits(bits), value);
    r.skip_bits(bits);
  }
  EXPECT_FALSE(r.overflowed());
}

TEST(BitStreamTest, HugeSkipSaturatesInsteadOfWrapping) {
  // Regression: skip_bits(huge) used to wrap the cursor past 2^64, making
  // a past-end position look in-bounds for the next read.
  const std::vector<std::uint8_t> bytes(8, 0xFF);
  BitReader r{bytes};
  r.skip_bits(UINT64_MAX);
  EXPECT_TRUE(r.overflowed());
  EXPECT_EQ(r.read_bits(32), 0u);  // saturated: reads yield zeros
  EXPECT_TRUE(r.overflowed());

  BitReader r2{bytes};
  r2.skip_bits(UINT64_MAX - 7);  // near-max skip: same saturation
  EXPECT_TRUE(r2.overflowed());
  EXPECT_EQ(r2.read_bits(8), 0u);
}

TEST(BitStreamTest, OverflowingReadSaturatesCursor) {
  const std::vector<std::uint8_t> bytes(2, 0xFF);
  BitReader r{bytes};
  (void)r.read_bits(12);
  (void)r.read_bits(12);  // only 4 bits remain
  EXPECT_TRUE(r.overflowed());
  EXPECT_EQ(r.read_bits(16), 0u);  // cursor pinned at the end
}

// peek_fixed takes the unaligned-64-bit-load fast path while a full
// 8-byte window fits and must hand off to the zero-padding peek_bits
// slow path at exactly the final-word boundary, with identical results
// at every bit position on either side of the switch.
TEST(BitStreamTest, PeekFixedMatchesPeekBitsAcrossFinalWordBoundary) {
  Rng rng{0xBEEF};
  for (std::size_t size : {std::size_t{7}, std::size_t{8}, std::size_t{9},
                           std::size_t{16}}) {
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    for (std::uint64_t bit = 0; bit <= size * 8; ++bit) {
      BitReader fast{bytes};
      BitReader slow{bytes};
      fast.skip_bits(bit);
      slow.skip_bits(bit);
      SCOPED_TRACE("size " + std::to_string(size) + " bit " +
                   std::to_string(bit));
      EXPECT_EQ(fast.peek_fixed<1>(), slow.peek_bits(1));
      EXPECT_EQ(fast.peek_fixed<11>(), slow.peek_bits(11));
      EXPECT_EQ(fast.peek_fixed<16>(), slow.peek_bits(16));
      EXPECT_EQ(fast.peek_fixed<57>(), slow.peek_bits(57));
      // Peeking never consumes or flags overflow, even past the end.
      EXPECT_FALSE(fast.overflowed());
    }
  }
}

}  // namespace
}  // namespace lcp
