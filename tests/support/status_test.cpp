#include "support/status.hpp"

#include <gtest/gtest.h>

namespace lcp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  const auto s = Status::invalid_argument("bad eb");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad eb");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad eb");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (auto code : {ErrorCode::kOk, ErrorCode::kInvalidArgument,
                    ErrorCode::kOutOfRange, ErrorCode::kCorruptData,
                    ErrorCode::kUnsupported, ErrorCode::kInternal,
                    ErrorCode::kUnavailable}) {
    EXPECT_FALSE(error_code_name(code).empty());
    EXPECT_NE(error_code_name(code), "UNKNOWN");
  }
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e{42};
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_TRUE(e.status().is_ok());
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> e{Status::corrupt_data("boom")};
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), ErrorCode::kCorruptData);
}

TEST(ExpectedTest, OkStatusWithoutValueBecomesInternalError) {
  Expected<int> e{Status::ok()};
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), ErrorCode::kInternal);
}

TEST(ExpectedTest, TakeMovesValueOut) {
  Expected<std::string> e{std::string("payload")};
  const std::string v = std::move(e).take();
  EXPECT_EQ(v, "payload");
}

Status fails() { return Status::out_of_range("nope"); }
Status propagates() {
  LCP_RETURN_IF_ERROR(fails());
  return Status::ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(propagates().code(), ErrorCode::kOutOfRange);
}

TEST(StatusTest, WithContextBuildsErrorSiteChain) {
  const Status st = Status::corrupt_data("crc mismatch")
                        .with_context("chunk 17")
                        .with_context("recover");
  EXPECT_EQ(st.code(), ErrorCode::kCorruptData);
  EXPECT_EQ(st.message(), "crc mismatch");
  ASSERT_EQ(st.context().size(), 2u);
  EXPECT_EQ(st.context()[0], "chunk 17");  // innermost first
  EXPECT_EQ(st.context()[1], "recover");
  EXPECT_EQ(st.to_string(), "CORRUPT_DATA: recover: chunk 17: crc mismatch");
}

TEST(StatusTest, WithContextIsNoOpOnOk) {
  const Status st = Status::ok().with_context("somewhere");
  EXPECT_TRUE(st.is_ok());
  EXPECT_TRUE(st.context().empty());
  EXPECT_EQ(st.to_string(), "OK");
}

}  // namespace
}  // namespace lcp
