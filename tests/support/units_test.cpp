#include "support/units.hpp"

#include <gtest/gtest.h>

namespace lcp {
namespace {

TEST(UnitsTest, FrequencyConversions) {
  const auto f = GigaHertz::from_mhz(800);
  EXPECT_DOUBLE_EQ(f.ghz(), 0.8);
  EXPECT_DOUBLE_EQ(f.mhz(), 800.0);
  EXPECT_DOUBLE_EQ(f.hz(), 8e8);
  EXPECT_DOUBLE_EQ(GigaHertz::from_hz(2.2e9).ghz(), 2.2);
}

TEST(UnitsTest, FrequencyArithmeticAndOrdering) {
  const GigaHertz a{2.0};
  const GigaHertz b{0.8};
  EXPECT_DOUBLE_EQ((a - b).ghz(), 1.2);
  EXPECT_DOUBLE_EQ((a * 0.875).ghz(), 1.75);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
}

TEST(UnitsTest, EnergyEqualsPowerTimesTime) {
  // Eqn 1 of the paper.
  const Joules e = Watts{11.85} * Seconds{10.0};
  EXPECT_DOUBLE_EQ(e.joules(), 118.5);
  EXPECT_DOUBLE_EQ((e / Seconds{10.0}).watts(), 11.85);
  EXPECT_DOUBLE_EQ((e / Watts{11.85}).seconds(), 10.0);
  EXPECT_DOUBLE_EQ(Joules::from_kj(6.5).joules(), 6500.0);
  EXPECT_DOUBLE_EQ(e.kj(), 0.1185);
}

TEST(UnitsTest, SecondsConversions) {
  EXPECT_DOUBLE_EQ(Seconds::from_ms(250).seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Seconds{0.25}.ms(), 250.0);
  EXPECT_DOUBLE_EQ((Seconds{1.0} + Seconds{0.5}).seconds(), 1.5);
}

TEST(UnitsTest, BytesConversions) {
  EXPECT_EQ(Bytes::from_gb(512).bytes(), 512'000'000'000ULL);
  EXPECT_DOUBLE_EQ(Bytes::from_mb(673.9).mb(), 673.9);
  EXPECT_EQ(Bytes::from_gib(1).bytes(), 1073741824ULL);
  EXPECT_DOUBLE_EQ(Bytes::from_gb(16) / Bytes::from_gb(4), 4.0);
}

TEST(UnitsTest, DefaultConstructedQuantitiesAreZero) {
  EXPECT_DOUBLE_EQ(GigaHertz{}.ghz(), 0.0);
  EXPECT_DOUBLE_EQ(Watts{}.watts(), 0.0);
  EXPECT_DOUBLE_EQ(Seconds{}.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(Joules{}.joules(), 0.0);
  EXPECT_EQ(Bytes{}.bytes(), 0u);
}

}  // namespace
}  // namespace lcp
