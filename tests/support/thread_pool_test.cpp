#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lcp {
namespace {

TEST(ThreadPoolTest, SubmittedTasksRun) {
  ThreadPool pool{2};
  EXPECT_EQ(pool.worker_count(), 2u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) {
    f.wait();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool{3};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool{2};
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  pool.parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForWorksWithSingleWorker) {
  ThreadPool pool{1};
  std::atomic<long> sum{0};
  pool.parallel_for(1, 101, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool{2};
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 42) {
                            throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SubmitFuturePropagatesException) {
  ThreadPool pool{1};
  auto f = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPoolTest, DestructionDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&count] { ++count; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, NestedSizesAndLargeRange) {
  ThreadPool pool{4};
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 100000, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 100000u);
}

}  // namespace
}  // namespace lcp
