#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace lcp {
namespace {

TEST(ThreadPoolTest, SubmittedTasksRun) {
  ThreadPool pool{2};
  EXPECT_EQ(pool.worker_count(), 2u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) {
    f.wait();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool{3};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool{2};
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  pool.parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForWorksWithSingleWorker) {
  ThreadPool pool{1};
  std::atomic<long> sum{0};
  pool.parallel_for(1, 101, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool{2};
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 42) {
                            throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SubmitFuturePropagatesException) {
  ThreadPool pool{1};
  auto f = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPoolTest, DestructionDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&count] { ++count; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, NestedSizesAndLargeRange) {
  ThreadPool pool{4};
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 100000, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 100000u);
}

TEST(ThreadPoolTest, StressManyTinyTasksFromManySubmitters) {
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 500;
  ThreadPool pool{3};
  std::atomic<int> count{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool, &count] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures.push_back(pool.submit([&count] { ++count; }));
      }
      for (auto& f : futures) {
        f.get();
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  EXPECT_EQ(count.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolTest, GrainSizesCoverEveryIndexExactlyOnce) {
  constexpr std::size_t kRange = 1234;
  ThreadPool pool{4};
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                            std::size_t{64}, std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(kRange);
    pool.parallel_for(
        0, kRange, [&](std::size_t i) { ++hits[i]; }, grain);
    for (std::size_t i = 0; i < kRange; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ThreadPoolTest, OddWorkerCountsWithNonDividingGrain) {
  // 0 means hardware concurrency; 7 deliberately does not divide the range
  // or align with the chunking.
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
    ThreadPool pool{workers};
    EXPECT_GE(pool.worker_count(), 1u);
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(
        0, 101, [&](std::size_t i) { sum += i; }, 13);
    EXPECT_EQ(sum.load(), 5050u) << workers;
  }
}

TEST(ThreadPoolTest, PoolStaysUsableAfterParallelForThrows) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(
                   0, 1000,
                   [](std::size_t i) {
                     if (i == 500) {
                       throw std::logic_error("boom");
                     }
                   },
                   8),
               std::logic_error);
  std::atomic<int> n{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 100);
}

}  // namespace
}  // namespace lcp
