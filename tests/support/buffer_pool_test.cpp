#include "support/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace lcp {
namespace {

TEST(ScratchPoolTest, AcquireReusesReleasedCapacity) {
  ScratchPool<std::uint32_t> pool;
  auto buf = pool.acquire(1024);
  EXPECT_EQ(pool.misses(), 1u);
  buf.resize(1024, 7);
  const auto* data = buf.data();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.retained(), 1u);

  auto again = pool.acquire();
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 1024u);
  EXPECT_EQ(again.data(), data);  // same allocation came back
}

TEST(ScratchPoolTest, PoisonStampsLeadingBytesOnly) {
  // Use-after-release must read deterministic garbage, not stale data:
  // release() stamps kPoisonByte over the leading bytes (poison_buffer is
  // the exact routine it runs before clearing the buffer).
  std::vector<std::uint8_t> buf(256, 0x5A);
  detail::poison_buffer(buf);
  for (std::size_t i = 0; i < kPoisonBytes; ++i) {
    EXPECT_EQ(buf[i], kPoisonByte) << "offset " << i;
  }
  for (std::size_t i = kPoisonBytes; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], 0x5A) << "offset " << i;
  }
}

TEST(ScratchPoolTest, PoisonCoversShortBuffers) {
  std::vector<std::uint32_t> buf(4, 0xDEADBEEF);  // 16 bytes < kPoisonBytes
  detail::poison_buffer(buf);
  for (std::uint32_t v : buf) {
    EXPECT_EQ(v, 0xDBDBDBDBu);
  }
}

TEST(ScratchPoolTest, RetainsAtMostMaxBuffers) {
  ScratchPool<float> pool;
  for (std::size_t i = 0; i < ScratchPool<float>::kMaxRetained + 4; ++i) {
    auto buf = pool.acquire(16);
    buf.resize(16);
    pool.release(std::move(buf));
  }
  EXPECT_LE(pool.retained(), ScratchPool<float>::kMaxRetained);
}

TEST(ScratchPoolTest, ZeroCapacityBuffersAreNotRetained) {
  ScratchPool<int> pool;
  pool.release(std::vector<int>{});
  EXPECT_EQ(pool.retained(), 0u);
}

TEST(ScratchLeaseTest, RoundTripsThroughPool) {
  ScratchPool<std::uint32_t> pool;
  {
    ScratchLease<std::uint32_t> lease{64, pool};
    lease->assign(64, 9);
    EXPECT_EQ(lease.get().size(), 64u);
    EXPECT_EQ((*lease)[0], 9u);
  }
  EXPECT_EQ(pool.retained(), 1u);
  {
    ScratchLease<std::uint32_t> lease{0, pool};
    EXPECT_TRUE(lease->empty());
  }
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(ScratchLeaseTest, ThreadLocalPoolsAreIndependent) {
  // Two threads exercising local() pools concurrently must never share
  // buffers; each sees its own hit/miss stream. Run under
  // -DLCP_SANITIZE=thread this also vets that local() involves no races.
  auto worker = [] {
    for (int i = 0; i < 200; ++i) {
      ScratchLease<std::uint64_t> a{512};
      a->assign(512, static_cast<std::uint64_t>(i));
      ScratchLease<std::uint64_t> b{128};
      b->assign(128, static_cast<std::uint64_t>(i) * 3);
      ASSERT_EQ(a.get()[0], static_cast<std::uint64_t>(i));
      ASSERT_EQ(b.get()[77], static_cast<std::uint64_t>(i) * 3);
    }
  };
  std::thread t1{worker};
  std::thread t2{worker};
  t1.join();
  t2.join();
}

TEST(SlabPoolTest, RecyclesAcrossThreads) {
  SlabPool pool;
  auto slab = pool.acquire(4096);
  slab.resize(4096, 0x11);
  // Release from another thread (the streaming writer releases slabs the
  // compression workers acquired).
  std::thread releaser([&] { pool.release(std::move(slab)); });
  releaser.join();
  EXPECT_EQ(pool.retained(), 1u);

  auto back = pool.acquire();
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(back.empty());
  EXPECT_GE(back.capacity(), 4096u);
}

TEST(SlabPoolTest, MaxRetainedCapsTheFreeList) {
  SlabPool pool{2};
  for (int i = 0; i < 6; ++i) {
    std::vector<std::uint8_t> buf(256, 0xEE);
    pool.release(std::move(buf));
  }
  EXPECT_EQ(pool.retained(), 2u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(SlabPoolTest, ConcurrentAcquireReleaseStress) {
  SlabPool pool{16};
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (std::size_t i = 0; i < kRounds; ++i) {
        auto buf = pool.acquire(1024);
        ASSERT_TRUE(buf.empty());
        buf.resize(512, static_cast<std::uint8_t>(t));
        ASSERT_EQ(buf[100], static_cast<std::uint8_t>(t));
        pool.release(std::move(buf));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(pool.hits() + pool.misses(), kThreads * kRounds);
  EXPECT_LE(pool.retained(), 16u);
}

}  // namespace
}  // namespace lcp
