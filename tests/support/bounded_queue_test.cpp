#include "support/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace lcp {
namespace {

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> q{4};
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q{2};
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full, must not block
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.total_pushed(), 3u);
}

TEST(BoundedQueueTest, CloseDrainsThenReportsExhaustion) {
  BoundedQueue<int> q{4};
  EXPECT_TRUE(q.push(7));
  EXPECT_TRUE(q.push(8));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(9));       // refused after close
  EXPECT_FALSE(q.try_push(9));
  EXPECT_EQ(q.pop(), 7);         // queued items remain poppable
  EXPECT_EQ(q.pop(), 8);
  EXPECT_EQ(q.pop(), std::nullopt);
  q.close();  // idempotent
  EXPECT_EQ(q.total_pushed(), 2u);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q{1};
  ASSERT_TRUE(q.push(0));  // fill to capacity
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = q.push(1); });
  // The producer is (or soon will be) blocked on a full queue; close must
  // wake it with a refusal rather than leaving it stuck.
  q.close();
  producer.join();
  EXPECT_FALSE(push_result.load());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q{1};
  std::optional<int> got = 42;
  std::thread consumer([&] { got = q.pop(); });
  q.close();
  consumer.join();
  EXPECT_EQ(got, std::nullopt);
}

// Producer/consumer stress: every pushed item is popped exactly once and
// the bounded capacity is what throttles the fast side. This is the test
// the -DLCP_SANITIZE=thread matrix leg runs to vet the locking protocol.
TEST(BoundedQueueTest, MpmcStressConservesItems) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr std::size_t kPerProducer = 2000;
  BoundedQueue<std::size_t> q{8};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }

  std::atomic<std::uint64_t> popped_count{0};
  std::atomic<std::uint64_t> popped_sum{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        popped_count.fetch_add(1, std::memory_order_relaxed);
        popped_sum.fetch_add(*item, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : producers) {
    t.join();
  }
  q.close();
  for (auto& t : consumers) {
    t.join();
  }

  const std::uint64_t expected_count = kProducers * kPerProducer;
  std::uint64_t expected_sum = 0;
  for (std::uint64_t v = 0; v < expected_count; ++v) {
    expected_sum += v;
  }
  EXPECT_EQ(popped_count.load(), expected_count);
  EXPECT_EQ(popped_sum.load(), expected_sum);
  EXPECT_EQ(q.total_pushed(), expected_count);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, BackpressureBoundsInFlightItems) {
  constexpr std::size_t kCapacity = 2;
  constexpr std::size_t kItems = 500;
  BoundedQueue<int> q{kCapacity};
  std::atomic<bool> overflow{false};
  std::thread producer([&] {
    for (std::size_t i = 0; i < kItems; ++i) {
      if (q.size() > kCapacity) {
        overflow = true;
      }
      ASSERT_TRUE(q.push(static_cast<int>(i)));
    }
    q.close();
  });
  std::size_t popped = 0;
  while (q.pop()) {
    ++popped;
  }
  producer.join();
  EXPECT_EQ(popped, kItems);
  EXPECT_FALSE(overflow.load());
}

TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::vector<std::uint8_t>> q{2};
  std::vector<std::uint8_t> payload(128, 0xAB);
  ASSERT_TRUE(q.push(std::move(payload)));
  auto out = q.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 128u);
  EXPECT_EQ((*out)[0], 0xAB);
}

}  // namespace
}  // namespace lcp
