#include "support/bytestream.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lcp {
namespace {

TEST(ByteStreamTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u16(0x1234);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_i64(-42);
  w.write_f64(6.5e3);
  const auto bytes = w.finish();

  ByteReader r{bytes};
  EXPECT_EQ(*r.read_u8(), 0xAB);
  EXPECT_EQ(*r.read_u16(), 0x1234);
  EXPECT_EQ(*r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(*r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(*r.read_f64(), 6.5e3);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteStreamTest, LittleEndianLayout) {
  ByteWriter w;
  w.write_u32(0x01020304);
  const auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(ByteStreamTest, BlobAndStringRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5};
  w.write_blob(blob);
  w.write_string("CESM-ATM");
  w.write_string("");  // empty string is legal
  const auto bytes = w.finish();

  ByteReader r{bytes};
  auto read_blob = r.read_blob();
  ASSERT_TRUE(read_blob.has_value());
  EXPECT_EQ(std::vector<std::uint8_t>(read_blob->begin(), read_blob->end()),
            blob);
  EXPECT_EQ(*r.read_string(), "CESM-ATM");
  EXPECT_EQ(*r.read_string(), "");
}

TEST(ByteStreamTest, TruncatedReadsFailCleanly) {
  ByteWriter w;
  w.write_u16(7);
  const auto bytes = w.finish();

  ByteReader r{bytes};
  EXPECT_FALSE(r.read_u32().has_value());
  EXPECT_EQ(r.read_u32().status().code(), ErrorCode::kCorruptData);

  ByteReader r2{bytes};
  ASSERT_TRUE(r2.read_u16().has_value());
  EXPECT_FALSE(r2.read_u8().has_value());
}

TEST(ByteStreamTest, TruncatedBlobFails) {
  ByteWriter w;
  w.write_u32(100);  // declares 100 bytes, provides none
  const auto bytes = w.finish();
  ByteReader r{bytes};
  EXPECT_FALSE(r.read_blob().has_value());
}

TEST(ByteStreamTest, ReadBytesIsZeroCopyView) {
  ByteWriter w;
  w.write_u8(9);
  w.write_u8(8);
  const auto bytes = w.finish();
  ByteReader r{bytes};
  auto view = r.read_bytes(2);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->data(), bytes.data());
}

TEST(ByteStreamTest, PositionTracksConsumption) {
  ByteWriter w;
  w.write_u64(1);
  w.write_u64(2);
  const auto bytes = w.finish();
  ByteReader r{bytes};
  EXPECT_EQ(r.position(), 0u);
  (void)r.read_u64();
  EXPECT_EQ(r.position(), 8u);
  EXPECT_EQ(r.remaining(), 8u);
}

TEST(ByteStreamTest, SkipAdvancesWithinBounds) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};
  ByteReader r{bytes};
  EXPECT_TRUE(r.skip(3).is_ok());
  EXPECT_EQ(r.position(), 3u);
  auto v = r.read_u8();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 4u);
}

TEST(ByteStreamTest, OversizedSkipFailsWithoutMovingCursor) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3};
  ByteReader r{bytes};
  EXPECT_TRUE(r.skip(1).is_ok());
  const Status st = r.skip(100);  // hostile length field
  EXPECT_EQ(st.code(), ErrorCode::kCorruptData);
  EXPECT_EQ(r.position(), 1u);  // cursor unmoved
  EXPECT_EQ(r.skip(SIZE_MAX).code(), ErrorCode::kCorruptData);
  EXPECT_EQ(r.position(), 1u);
}

}  // namespace
}  // namespace lcp
