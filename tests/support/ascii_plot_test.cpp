#include "support/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace lcp {
namespace {

TEST(AsciiPlotTest, EmptySeriesRendersPlaceholder) {
  EXPECT_EQ(render_plot({}, {}), "(empty plot)\n");
  PlotSeries empty{"none", '*', {}, {}};
  EXPECT_EQ(render_plot({empty}, {}), "(empty plot)\n");
}

TEST(AsciiPlotTest, GlyphsAppearInOutput) {
  PlotSeries s{"broadwell", 'B', {0.8, 1.4, 2.0}, {0.8, 0.85, 1.0}};
  PlotOptions opts;
  opts.title = "Fig 1";
  const auto out = render_plot({s}, opts);
  EXPECT_NE(out.find('B'), std::string::npos);
  EXPECT_NE(out.find("Fig 1"), std::string::npos);
  EXPECT_NE(out.find("B=broadwell"), std::string::npos);
}

TEST(AsciiPlotTest, MultipleSeriesShareAxes) {
  PlotSeries a{"a", 'a', {0.0, 1.0}, {0.0, 1.0}};
  PlotSeries b{"b", 'b', {0.0, 1.0}, {1.0, 0.0}};
  const auto out = render_plot({a, b}, {});
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiPlotTest, NonFinitePointsAreSkipped) {
  PlotSeries s{"s", 's',
               {0.0, std::numeric_limits<double>::quiet_NaN(), 2.0},
               {1.0, 5.0, 3.0}};
  const auto out = render_plot({s}, {});
  EXPECT_NE(out.find('s'), std::string::npos);
}

TEST(AsciiPlotTest, ConstantSeriesDoesNotDivideByZero) {
  PlotSeries s{"flat", 'f', {1.0, 2.0, 3.0}, {5.0, 5.0, 5.0}};
  const auto out = render_plot({s}, {});
  EXPECT_NE(out.find('f'), std::string::npos);
}

TEST(AsciiPlotTest, AxisLabelsRendered) {
  PlotSeries s{"s", '*', {0.8, 2.0}, {0.8, 1.0}};
  PlotOptions opts;
  opts.x_label = "frequency (GHz)";
  opts.y_label = "scaled power";
  const auto out = render_plot({s}, opts);
  EXPECT_NE(out.find("frequency (GHz)"), std::string::npos);
  EXPECT_NE(out.find("scaled power"), std::string::npos);
}

}  // namespace
}  // namespace lcp
