#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace lcp {
namespace {

TEST(StatsTest, MeanAndVarianceOfKnownSample) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, EmptyAndSingletonAreSafe) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
  const std::vector<double> one = {3.5};
  EXPECT_DOUBLE_EQ(mean(one), 3.5);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  const auto s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(StatsTest, SummaryMatchesDirectComputation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  // t(4 dof) = 2.776; sd = sqrt(2.5).
  EXPECT_NEAR(s.ci95_half, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
}

TEST(StatsTest, TQuantileTableBoundaries) {
  EXPECT_DOUBLE_EQ(t_quantile_975(0), 0.0);
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-9);
  EXPECT_NEAR(t_quantile_975(9), 2.262, 1e-9);  // the paper's 10 repeats
  EXPECT_DOUBLE_EQ(t_quantile_975(1000), 1.96);
}

TEST(StatsTest, PearsonOfPerfectLine) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> yn = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateCases) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> flat = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, flat), 0.0);
  const std::vector<double> short_x = {1};
  EXPECT_DOUBLE_EQ(pearson(short_x, short_x), 0.0);
}

TEST(RunningStatsTest, MatchesBatchSummary) {
  Rng rng{3};
  std::vector<double> v;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    v.push_back(x);
    rs.add(x);
  }
  const auto batch = summarize(v);
  const auto online = rs.summary();
  EXPECT_EQ(online.count, batch.count);
  EXPECT_NEAR(online.mean, batch.mean, 1e-9);
  EXPECT_NEAR(online.stddev, batch.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(online.min, batch.min);
  EXPECT_DOUBLE_EQ(online.max, batch.max);
}

TEST(RunningStatsTest, MergeEqualsSinglePass) {
  Rng rng{17};
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty.merge(non-empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  a.merge(c);  // non-empty.merge(empty)
  EXPECT_EQ(a.count(), 2u);
}

}  // namespace
}  // namespace lcp
