#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace lcp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng{11};
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++hits[rng.uniform_index(8)];
  }
  for (int h : hits) {
    EXPECT_GT(h, 800);  // each bucket near 1000
    EXPECT_LT(h, 1200);
  }
}

TEST(RngTest, NormalMomentsAreStandard) {
  Rng rng{42};
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng{42};
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.5), 0.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a{99};
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, ZeroSeedDoesNotProduceZeroState) {
  Rng rng{0};
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) {
    any_nonzero |= rng.next_u64() != 0;
  }
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace lcp
