#include "power/voltage_curve.hpp"

#include <gtest/gtest.h>

namespace lcp::power {
namespace {

TEST(VoltageCurveTest, ClampsAtVminBelowKnee) {
  const VoltageCurve vf{Volts{0.65}, Volts{1.0}, GigaHertz{2.0}, 2.2};
  EXPECT_DOUBLE_EQ(vf.at(GigaHertz{0.8}).volts(), 0.65);
  EXPECT_DOUBLE_EQ(vf.at(GigaHertz{0.1}).volts(), 0.65);
}

TEST(VoltageCurveTest, ReachesVmaxAtFmax) {
  const VoltageCurve vf{Volts{0.65}, Volts{1.0}, GigaHertz{2.0}, 2.2};
  EXPECT_DOUBLE_EQ(vf.at(GigaHertz{2.0}).volts(), 1.0);
}

TEST(VoltageCurveTest, MonotoneNonDecreasing) {
  const VoltageCurve vf{Volts{0.7}, Volts{1.05}, GigaHertz{2.2}, 6.0};
  double prev = 0.0;
  for (double f = 0.8; f <= 2.2; f += 0.05) {
    const double v = vf.at(GigaHertz{f}).volts();
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(VoltageCurveTest, ClampFrequencyIsTheBreakpoint) {
  const VoltageCurve vf{Volts{0.65}, Volts{1.0}, GigaHertz{2.0}, 2.2};
  const GigaHertz knee = vf.clamp_frequency();
  EXPECT_NEAR(vf.at(knee).volts(), 0.65, 1e-9);
  EXPECT_GT(vf.at(GigaHertz{knee.ghz() + 0.05}).volts(), 0.65);
  EXPECT_DOUBLE_EQ(vf.at(GigaHertz{knee.ghz() - 0.05}).volts(), 0.65);
}

TEST(VoltageCurveTest, HigherGammaMeansLaterKnee) {
  const VoltageCurve soft{Volts{0.7}, Volts{1.05}, GigaHertz{2.2}, 2.0};
  const VoltageCurve sharp{Volts{0.7}, Volts{1.05}, GigaHertz{2.2}, 6.0};
  EXPECT_GT(sharp.clamp_frequency().ghz(), soft.clamp_frequency().ghz());
}

}  // namespace
}  // namespace lcp::power
