#include "power/chip_model.hpp"

#include <gtest/gtest.h>

namespace lcp::power {
namespace {

TEST(ChipModelTest, TableTwoSpecifications) {
  const auto& bdw = chip(ChipId::kBroadwellD1548);
  EXPECT_EQ(bdw.cpu_name, "Xeon D-1548");
  EXPECT_EQ(bdw.cloudlab_node, "m510");
  EXPECT_EQ(bdw.series, "Broadwell");
  EXPECT_DOUBLE_EQ(bdw.f_min.ghz(), 0.8);
  EXPECT_DOUBLE_EQ(bdw.f_max.ghz(), 2.0);
  EXPECT_DOUBLE_EQ(bdw.tdp.watts(), 45.0);

  const auto& skl = chip(ChipId::kSkylake4114);
  EXPECT_EQ(skl.cpu_name, "Xeon Silver 4114");
  EXPECT_EQ(skl.cloudlab_node, "c220g5");
  EXPECT_DOUBLE_EQ(skl.f_max.ghz(), 2.2);
  EXPECT_DOUBLE_EQ(skl.tdp.watts(), 85.0);
}

TEST(ChipModelTest, FiftyMhzStepping) {
  for (ChipId id : all_chips()) {
    EXPECT_DOUBLE_EQ(chip(id).f_step.mhz(), 50.0);
  }
}

TEST(ChipModelTest, PowerIsMonotoneInFrequency) {
  for (ChipId id : all_chips()) {
    const auto& spec = chip(id);
    double prev = 0.0;
    for (double f = spec.f_min.ghz(); f <= spec.f_max.ghz(); f += 0.05) {
      const double p = package_power(spec, GigaHertz{f}, 1.0).watts();
      EXPECT_GE(p, prev);
      prev = p;
    }
  }
}

TEST(ChipModelTest, PowerIsMonotoneInActivity) {
  const auto& spec = chip(ChipId::kBroadwellD1548);
  const auto f = spec.f_max;
  EXPECT_LT(package_power(spec, f, 0.0).watts(),
            package_power(spec, f, 0.5).watts());
  EXPECT_LT(package_power(spec, f, 0.5).watts(),
            package_power(spec, f, 1.0).watts());
}

TEST(ChipModelTest, ZeroActivityEqualsStaticPower) {
  for (ChipId id : all_chips()) {
    const auto& spec = chip(id);
    EXPECT_DOUBLE_EQ(package_power(spec, spec.f_max, 0.0).watts(),
                     spec.static_power.watts());
  }
}

TEST(ChipModelTest, ScaledPowerFloorNearPaperValue) {
  // Figure 1: scaled compression power bottoms out around 0.8 on both
  // parts. Calibration target, so a tight band.
  for (ChipId id : all_chips()) {
    const auto& spec = chip(id);
    const double floor = package_power(spec, spec.f_min, 1.0).watts() /
                         package_power(spec, spec.f_max, 1.0).watts();
    EXPECT_GT(floor, 0.74) << spec.series;
    EXPECT_LT(floor, 0.86) << spec.series;
  }
}

TEST(ChipModelTest, SkylakeKneeIsLaterThanBroadwell) {
  // The Skylake curve stays flat longer (paper: f^23 vs f^5 fits).
  const auto& bdw = chip(ChipId::kBroadwellD1548);
  const auto& skl = chip(ChipId::kSkylake4114);
  const double bdw_knee = bdw.vf.clamp_frequency().ghz() / bdw.f_max.ghz();
  const double skl_knee = skl.vf.clamp_frequency().ghz() / skl.f_max.ghz();
  EXPECT_GT(skl_knee, bdw_knee);
}

TEST(ChipModelTest, SingleCorePackagePowerIsPhysicallyPlausible) {
  // Single active core should draw a small fraction of TDP plus uncore.
  for (ChipId id : all_chips()) {
    const auto& spec = chip(id);
    const double p = package_power(spec, spec.f_max, 1.0).watts();
    EXPECT_GT(p, 5.0) << spec.series;
    EXPECT_LT(p, spec.tdp.watts()) << spec.series;
  }
}

TEST(ChipModelTest, SeriesNames) {
  EXPECT_STREQ(chip_series_name(ChipId::kBroadwellD1548), "Broadwell");
  EXPECT_STREQ(chip_series_name(ChipId::kSkylake4114), "Skylake");
  EXPECT_EQ(all_chips().size(), 2u);
}

}  // namespace
}  // namespace lcp::power
