#include "power/workload.hpp"

#include <gtest/gtest.h>

#include "power/chip_model.hpp"

namespace lcp::power {
namespace {

const ChipSpec& bdw() { return chip(ChipId::kBroadwellD1548); }
const ChipSpec& skl() { return chip(ChipId::kSkylake4114); }

TEST(WorkloadTest, RuntimeScalesInverselyWithFrequencyForCpuWork) {
  Workload w;
  w.cpu_ghz_seconds = 10.0;
  const auto t_hi = workload_runtime(w, bdw(), bdw().f_max);
  const auto t_lo = workload_runtime(w, bdw(), bdw().f_min);
  EXPECT_NEAR(t_lo / t_hi, bdw().f_max / bdw().f_min, 1e-9);
}

TEST(WorkloadTest, StallShareIsFrequencyInvariant) {
  Workload w;
  w.stall_seconds = Seconds{5.0};
  EXPECT_DOUBLE_EQ(workload_runtime(w, bdw(), bdw().f_min).seconds(), 5.0);
  EXPECT_DOUBLE_EQ(workload_runtime(w, bdw(), bdw().f_max).seconds(), 5.0);
}

TEST(WorkloadTest, FloorDominatesWhenCpuIsFast) {
  Workload w;
  w.cpu_ghz_seconds = 1.0;
  w.floor_seconds = Seconds{100.0};
  EXPECT_DOUBLE_EQ(workload_runtime(w, skl(), skl().f_max).seconds(), 100.0);
}

TEST(WorkloadTest, EffectiveActivityDropsWhenFloorBound) {
  Workload w;
  w.cpu_ghz_seconds = 1.0;
  w.activity = 1.0;
  const double busy_act = effective_activity(w, skl(), skl().f_max);
  w.floor_seconds = Seconds{100.0};
  const double stalled_act = effective_activity(w, skl(), skl().f_max);
  EXPECT_LT(stalled_act, busy_act);
  EXPECT_GT(stalled_act, 0.0);
}

TEST(WorkloadTest, EmptyWorkloadHasZeroActivity) {
  Workload w;
  EXPECT_DOUBLE_EQ(effective_activity(w, bdw(), bdw().f_max), 0.0);
}

TEST(WorkloadTest, EnergyEqualsPowerTimesRuntime) {
  Workload w;
  w.cpu_ghz_seconds = 4.0;
  w.stall_seconds = Seconds{2.0};
  const auto f = GigaHertz{1.5};
  const double e = workload_energy(w, bdw(), f).joules();
  const double p = workload_power(w, bdw(), f).watts();
  const double t = workload_runtime(w, bdw(), f).seconds();
  EXPECT_NEAR(e, p * t, 1e-9);
}

TEST(CompressionWorkloadTest, BetaGovernsRuntimeTradeoff) {
  // The paper's number: at beta ~0.53, a 12.5% frequency drop costs ~7.5%
  // runtime (Section V-A.3).
  const auto w = compression_workload(bdw(), Seconds{10.0}, 0.525, 1.0);
  const auto t_base = workload_runtime(w, bdw(), bdw().f_max);
  const auto t_tuned = workload_runtime(w, bdw(), bdw().f_max * 0.875);
  const double increase = t_tuned / t_base - 1.0;
  EXPECT_NEAR(increase, 0.075, 0.005);
}

TEST(CompressionWorkloadTest, SlowerChipTakesLongerAtItsOwnMaxClock) {
  const auto wb = compression_workload(bdw(), Seconds{10.0}, 0.5, 1.0);
  const auto ws = compression_workload(skl(), Seconds{10.0}, 0.5, 1.0);
  EXPECT_GT(workload_runtime(wb, bdw(), bdw().f_max).seconds(),
            workload_runtime(ws, skl(), skl().f_max).seconds());
}

TEST(CompressionWorkloadTest, PureCpuFraction) {
  const auto w = compression_workload(bdw(), Seconds{10.0}, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(w.stall_seconds.seconds(), 0.0);
  EXPECT_GT(w.cpu_ghz_seconds, 0.0);
}

TEST(CompressionWorkloadTest, ActivityPropagates) {
  const auto w = compression_workload(bdw(), Seconds{1.0}, 0.5, 0.94);
  EXPECT_DOUBLE_EQ(w.activity, 0.94);
}

}  // namespace
}  // namespace lcp::power
