#include "power/uncore.hpp"

#include <gtest/gtest.h>

namespace lcp::power {
namespace {

const ChipSpec& bdw() { return chip(ChipId::kBroadwellD1548); }
const ChipSpec& skl() { return chip(ChipId::kSkylake4114); }

Workload mixed_workload() {
  Workload w;
  w.cpu_ghz_seconds = 5.0;
  w.stall_seconds = Seconds{3.0};
  w.activity = 1.0;
  return w;
}

TEST(UncoreTest, RegistryCoversBothChips) {
  for (ChipId id : all_chips()) {
    const auto& u = uncore(id);
    EXPECT_GT(u.f_min.ghz(), 0.0);
    EXPECT_GT(u.f_max.ghz(), u.f_min.ghz());
    EXPECT_GT(u.share_of_static, 0.0);
    EXPECT_LT(u.share_of_static, 1.0);
  }
}

TEST(UncoreTest, FullUncoreClockMatchesBasePowerModel) {
  // At f_uncore = f_max the extended model must coincide with the base
  // package_power model.
  const auto& u = uncore(ChipId::kBroadwellD1548);
  for (double f = 0.8; f <= 2.0; f += 0.2) {
    EXPECT_NEAR(
        package_power_uncore(bdw(), u, GigaHertz{f}, u.f_max, 1.0).watts(),
        package_power(bdw(), GigaHertz{f}, 1.0).watts(), 1e-9)
        << f;
  }
}

TEST(UncoreTest, LoweringUncoreSavesPower) {
  const auto& u = uncore(ChipId::kSkylake4114);
  const double at_max =
      package_power_uncore(skl(), u, skl().f_max, u.f_max, 1.0).watts();
  const double at_min =
      package_power_uncore(skl(), u, skl().f_max, u.f_min, 1.0).watts();
  EXPECT_LT(at_min, at_max);
  // Saving bounded by the dynamic slice of the uncore share.
  const double max_saving = skl().static_power.watts() * u.share_of_static *
                            u.dynamic_fraction;
  EXPECT_LE(at_max - at_min, max_saving + 1e-9);
}

TEST(UncoreTest, LoweringUncoreStretchesStallTime) {
  const auto& u = uncore(ChipId::kBroadwellD1548);
  const auto w = mixed_workload();
  const double t_fast =
      workload_runtime_uncore(w, bdw(), u, bdw().f_max, u.f_max).seconds();
  const double t_slow =
      workload_runtime_uncore(w, bdw(), u, bdw().f_max, u.f_min).seconds();
  EXPECT_GT(t_slow, t_fast);
  // Only the stall share stretches; cpu time is untouched.
  const double cpu = w.cpu_ghz_seconds / (bdw().f_max.ghz() * bdw().perf_factor);
  EXPECT_NEAR(t_slow - t_fast,
              w.stall_seconds.seconds() *
                  (std::pow(2.4 / 1.2, u.stall_sensitivity) - 1.0),
              1e-9);
  EXPECT_GT(t_fast, cpu);
}

TEST(UncoreTest, FullUncoreRuntimeMatchesBaseModel) {
  const auto& u = uncore(ChipId::kBroadwellD1548);
  const auto w = mixed_workload();
  EXPECT_NEAR(
      workload_runtime_uncore(w, bdw(), u, GigaHertz{1.5}, u.f_max).seconds(),
      workload_runtime(w, bdw(), GigaHertz{1.5}).seconds(), 1e-9);
}

TEST(UncoreTest, EnergyIsPowerTimesRuntime) {
  const auto& u = uncore(ChipId::kSkylake4114);
  const auto w = mixed_workload();
  const auto fc = GigaHertz{1.8};
  const auto fu = GigaHertz{1.6};
  EXPECT_NEAR(workload_energy_uncore(w, skl(), u, fc, fu).joules(),
              workload_power_uncore(w, skl(), u, fc, fu).watts() *
                  workload_runtime_uncore(w, skl(), u, fc, fu).seconds(),
              1e-9);
}

TEST(UncoreTest, OptimalPointBeatsCoreOnlyTuning) {
  // The EAR finding: the combined knob never loses to core-only tuning.
  const auto& u = uncore(ChipId::kSkylake4114);
  const auto w = compression_workload(skl(), Seconds{10.0}, 0.53, 1.0);
  const auto point = energy_optimal_operating_point(w, skl(), u);

  // Best core-only energy (uncore pinned at max).
  double best_core_only = 1e300;
  for (double f = 0.8; f <= 2.2001; f += 0.05) {
    best_core_only =
        std::min(best_core_only,
                 workload_energy_uncore(w, skl(), u, GigaHertz{f}, u.f_max)
                     .joules());
  }
  const double combined =
      workload_energy_uncore(w, skl(), u, point.core, point.uncore).joules();
  EXPECT_LE(combined, best_core_only + 1e-9);
  EXPECT_LT(combined, best_core_only);  // strictly better for mixed work
}

TEST(UncoreTest, CpuBoundWorkPrefersMinUncore) {
  // No stalls: downclocking the uncore is free power savings.
  const auto& u = uncore(ChipId::kBroadwellD1548);
  Workload w;
  w.cpu_ghz_seconds = 5.0;
  w.activity = 1.0;
  const auto point = energy_optimal_operating_point(w, bdw(), u);
  EXPECT_NEAR(point.uncore.ghz(), u.f_min.ghz(), 1e-9);
}

TEST(UncoreTest, MemoryBoundWorkKeepsUncoreHigh) {
  // Stall-dominated work: stretching stalls costs more energy than the
  // uncore saves, so the optimum stays near the top.
  const auto& u = uncore(ChipId::kSkylake4114);
  Workload w;
  w.cpu_ghz_seconds = 0.5;
  w.stall_seconds = Seconds{10.0};
  w.activity = 0.8;
  const auto point = energy_optimal_operating_point(w, skl(), u);
  EXPECT_GT(point.uncore.ghz(), 1.6);
}

}  // namespace
}  // namespace lcp::power
