#include <gtest/gtest.h>

#include "power/energy_counter.hpp"
#include "power/noise_model.hpp"
#include "support/rng.hpp"

namespace lcp::power {
namespace {

TEST(NoiseModelTest, NoneIsIdentity) {
  Rng rng{1};
  const auto noise = NoiseModel::none();
  EXPECT_DOUBLE_EQ(noise.perturb_runtime(Seconds{3.0}, rng).seconds(), 3.0);
  EXPECT_DOUBLE_EQ(noise.perturb_power(Watts{11.0}, rng).watts(), 11.0);
}

TEST(NoiseModelTest, PerturbationsCenterOnTruth) {
  Rng rng{2};
  NoiseModel noise;  // defaults: 1% runtime, 1.5% power
  double sum_t = 0.0;
  double sum_p = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum_t += noise.perturb_runtime(Seconds{10.0}, rng).seconds();
    sum_p += noise.perturb_power(Watts{20.0}, rng).watts();
  }
  EXPECT_NEAR(sum_t / n, 10.0, 0.01);
  EXPECT_NEAR(sum_p / n, 20.0, 0.02);
}

TEST(NoiseModelTest, SpreadMatchesSigma) {
  Rng rng{3};
  NoiseModel noise;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = noise.perturb_power(Watts{1.0}, rng).watts() - 1.0;
    sum_sq += d * d;
  }
  EXPECT_NEAR(std::sqrt(sum_sq / n), noise.power_sigma, 0.002);
}

TEST(NoiseModelTest, DrawsAreClampedPositive) {
  Rng rng{4};
  NoiseModel noise;
  noise.runtime_sigma = 0.9;  // absurd sigma to stress the clamp
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GT(noise.perturb_runtime(Seconds{1.0}, rng).seconds(), 0.0);
  }
}

TEST(EnergyCounterTest, AccumulatesMonotonically) {
  EnergyCounter c;
  EXPECT_DOUBLE_EQ(c.total().joules(), 0.0);
  c.add(Joules{1.5});
  c.add(Joules{2.5});
  EXPECT_NEAR(c.total().joules(), 4.0, 1e-6);
}

TEST(EnergyCounterTest, MicrojouleResolution) {
  EnergyCounter c;
  c.add(Joules{1e-6});
  EXPECT_NEAR(c.total().joules(), 1e-6, 1e-12);
}

TEST(EnergyCounterTest, DeltaHandlesWraparound) {
  // Like the 32-bit RAPL MSR: after ~4295 J the raw counter wraps.
  const std::uint32_t before = 0xFFFFFF00u;
  const std::uint32_t after = 0x00000100u;
  EXPECT_NEAR(EnergyCounter::delta(before, after).joules(), 512e-6, 1e-9);
}

TEST(EnergyCounterTest, RawViewMatchesTotalBelowWrap) {
  EnergyCounter c;
  c.add(Joules{2.0});
  EXPECT_EQ(c.raw_microjoules(), 2000000u);
}

}  // namespace
}  // namespace lcp::power
