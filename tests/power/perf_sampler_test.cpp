#include "power/perf_sampler.hpp"

#include <gtest/gtest.h>

namespace lcp::power {
namespace {

Workload test_workload() {
  Workload w;
  w.cpu_ghz_seconds = 2.0;
  w.stall_seconds = Seconds{1.0};
  w.activity = 1.0;
  return w;
}

TEST(PerfSamplerTest, NoiselessSampleMatchesModel) {
  const auto& spec = chip(ChipId::kBroadwellD1548);
  PerfSampler sampler{spec, NoiseModel::none(), 1};
  const auto w = test_workload();
  const auto m = sampler.sample(w, spec.f_max);
  EXPECT_DOUBLE_EQ(m.runtime.seconds(),
                   workload_runtime(w, spec, spec.f_max).seconds());
  EXPECT_NEAR(m.energy.joules(),
              workload_energy(w, spec, spec.f_max).joules(), 1e-9);
  EXPECT_NEAR(m.average_power().watts(),
              workload_power(w, spec, spec.f_max).watts(), 1e-9);
}

TEST(PerfSamplerTest, NoisySamplesVaryButAverageToTruth) {
  const auto& spec = chip(ChipId::kSkylake4114);
  PerfSampler sampler{spec, NoiseModel{}, 2};
  const auto w = test_workload();
  const auto samples = sampler.sample_repeats(w, spec.f_max, 500);
  ASSERT_EQ(samples.size(), 500u);
  double sum = 0.0;
  bool varied = false;
  for (const auto& m : samples) {
    sum += m.energy.joules();
    varied |= m.energy.joules() != samples[0].energy.joules();
  }
  EXPECT_TRUE(varied);
  const double truth = workload_energy(w, spec, spec.f_max).joules();
  EXPECT_NEAR(sum / 500.0, truth, truth * 0.01);
}

TEST(PerfSamplerTest, CounterAccumulatesEverySample) {
  const auto& spec = chip(ChipId::kBroadwellD1548);
  PerfSampler sampler{spec, NoiseModel::none(), 3};
  const auto w = test_workload();
  (void)sampler.sample_repeats(w, spec.f_min, 5);
  const double expected =
      5.0 * workload_energy(w, spec, spec.f_min).joules();
  EXPECT_NEAR(sampler.counter().total().joules(), expected, expected * 1e-6);
}

TEST(PerfSamplerTest, DeterministicForSameSeed) {
  const auto& spec = chip(ChipId::kBroadwellD1548);
  const auto w = test_workload();
  PerfSampler a{spec, NoiseModel{}, 42};
  PerfSampler b{spec, NoiseModel{}, 42};
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.sample(w, spec.f_max).energy.joules(),
                     b.sample(w, spec.f_max).energy.joules());
  }
}

TEST(PerfSamplerTest, MeasuredEnergyFallsWithFrequencyDropForCpuBoundWork) {
  // Compression-shaped workload: moderate beta means lowering f saves
  // energy (the paper's whole premise).
  const auto& spec = chip(ChipId::kBroadwellD1548);
  PerfSampler sampler{spec, NoiseModel::none(), 4};
  const auto w = compression_workload(spec, Seconds{10.0}, 0.53, 1.0);
  const auto base = sampler.sample(w, spec.f_max);
  const auto tuned = sampler.sample(w, spec.f_max * 0.875);
  EXPECT_LT(tuned.energy.joules(), base.energy.joules());
}

}  // namespace
}  // namespace lcp::power
