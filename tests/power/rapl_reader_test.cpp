#include "power/rapl_reader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace lcp::power {
namespace {

namespace fs = std::filesystem;

class RaplReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "lcp_rapl_test";
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void make_domain(const std::string& name, const std::string& uj,
                   const std::string& label) {
    const auto dir = root_ / name;
    fs::create_directories(dir);
    std::ofstream(dir / "energy_uj") << uj;
    std::ofstream(dir / "name") << label << "\n";
  }

  fs::path root_;
};

TEST_F(RaplReaderTest, MissingRootIsUnavailable) {
  RaplReader reader{(root_ / "nope").string()};
  EXPECT_FALSE(reader.available());
  EXPECT_FALSE(reader.read().has_value());
  EXPECT_EQ(reader.read().status().code(), ErrorCode::kUnavailable);
}

TEST_F(RaplReaderTest, EmptyRootIsUnavailable) {
  RaplReader reader{root_.string()};
  EXPECT_FALSE(reader.available());
}

TEST_F(RaplReaderTest, ReadsPackageDomain) {
  make_domain("intel-rapl:0", "123456789", "package-0");
  RaplReader reader{root_.string()};
  ASSERT_TRUE(reader.available());
  const auto sample = reader.read();
  ASSERT_TRUE(sample.has_value()) << sample.status().to_string();
  EXPECT_NEAR(sample->energy.joules(), 123.456789, 1e-9);
  EXPECT_EQ(sample->domain, "package-0");
}

TEST_F(RaplReaderTest, IgnoresNonRaplEntries) {
  make_domain("other-device", "999", "bogus");
  RaplReader reader{root_.string()};
  EXPECT_FALSE(reader.available());
}

TEST_F(RaplReaderTest, SystemProbeDoesNotCrash) {
  // On CI containers this is typically unavailable; on bare metal it may
  // succeed. Either way the probe must be clean.
  RaplReader reader;
  if (reader.available()) {
    EXPECT_TRUE(reader.read().has_value());
  } else {
    EXPECT_FALSE(reader.read().has_value());
  }
}

}  // namespace
}  // namespace lcp::power
