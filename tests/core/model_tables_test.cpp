#include "core/model_tables.hpp"

#include <gtest/gtest.h>

namespace lcp::core {
namespace {

CompressionStudyResult small_compression_result() {
  CompressionStudyConfig cfg;
  cfg.repeats = 3;
  cfg.error_bounds = {1e-2};
  cfg.datasets = {data::DatasetId::kNyx, data::DatasetId::kCesmAtm};
  cfg.noise = power::NoiseModel::none();
  auto result = run_compression_study(cfg);
  EXPECT_TRUE(result.has_value());
  return std::move(*result);
}

TEST(ModelTablesTest, CompressionTableHasFivePartitions) {
  const auto result = small_compression_result();
  const auto rows = build_compression_models(result);
  ASSERT_TRUE(rows.has_value()) << rows.status().to_string();
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0].partition.name, "Total");
  EXPECT_EQ((*rows)[4].partition.name, "Skylake");
  for (const auto& row : *rows) {
    EXPECT_GT(row.observations, 0u);
    EXPECT_GT(row.fit.b, 0.0);
    EXPECT_GT(row.fit.c, 0.5);  // scaled floor
    EXPECT_LT(row.fit.c, 1.0);
  }
}

TEST(ModelTablesTest, PerChipFitsAreTighterThanTotal) {
  // The paper's key observation from Table IV: hardware-specific partitions
  // fit better (lower RMSE) than pooled ones.
  const auto result = small_compression_result();
  const auto rows = build_compression_models(result);
  ASSERT_TRUE(rows.has_value());
  const double rmse_total = (*rows)[0].fit.stats.rmse;
  const double rmse_bdw = (*rows)[3].fit.stats.rmse;
  const double rmse_skl = (*rows)[4].fit.stats.rmse;
  EXPECT_LT(rmse_bdw, rmse_total);
  EXPECT_LT(rmse_skl, rmse_total);
}

TEST(ModelTablesTest, SkylakeExponentLargerThanBroadwell) {
  const auto result = small_compression_result();
  const auto rows = build_compression_models(result);
  ASSERT_TRUE(rows.has_value());
  const double b_bdw = (*rows)[3].fit.b;
  const double b_skl = (*rows)[4].fit.b;
  EXPECT_GT(b_skl, b_bdw);
}

TEST(ModelTablesTest, ObservationCollectionRespectsPartition) {
  const auto result = small_compression_result();
  const auto& partitions = model::compression_partitions();
  const auto total = collect_compression_observations(result, partitions[0]);
  const auto sz_only = collect_compression_observations(result, partitions[1]);
  const auto bdw_only =
      collect_compression_observations(result, partitions[3]);
  EXPECT_EQ(total.f_ghz.size(), total.scaled_power.size());
  EXPECT_LT(sz_only.f_ghz.size(), total.f_ghz.size());
  EXPECT_LT(bdw_only.f_ghz.size(), total.f_ghz.size());
  EXPECT_EQ(sz_only.f_ghz.size() * 2, total.f_ghz.size());
}

TEST(ModelTablesTest, TransitTableHasThreePartitions) {
  TransitStudyConfig cfg;
  cfg.sizes = {Bytes::from_gb(1), Bytes::from_gb(4)};
  cfg.repeats = 3;
  cfg.noise = power::NoiseModel::none();
  const auto result = run_transit_study(cfg);
  ASSERT_TRUE(result.has_value());
  const auto rows = build_transit_models(*result);
  ASSERT_TRUE(rows.has_value()) << rows.status().to_string();
  ASSERT_EQ(rows->size(), 3u);
  // Per-chip transit fits are tighter than the pooled Total (Table V).
  EXPECT_LT((*rows)[1].fit.stats.rmse, (*rows)[0].fit.stats.rmse);
  EXPECT_LT((*rows)[2].fit.stats.rmse, (*rows)[0].fit.stats.rmse);
}

TEST(ModelTablesTest, CodecFilterMapping) {
  EXPECT_EQ(to_codec_filter(compress::CodecId::kSz), model::CodecFilter::kSz);
  EXPECT_EQ(to_codec_filter(compress::CodecId::kZfp),
            model::CodecFilter::kZfp);
}

}  // namespace
}  // namespace lcp::core
