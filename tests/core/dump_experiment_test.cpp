#include "core/dump_experiment.hpp"

#include <gtest/gtest.h>

#include "compress/common/framing.hpp"

namespace lcp::core {
namespace {

DumpConfig tiny_config() {
  DumpConfig cfg;
  cfg.error_bounds = {1e-2, 1e-4};
  return cfg;
}

TEST(DumpExperimentTest, TunedAlwaysSavesEnergy) {
  // Fig 6: "our solution always reduces the amount of energy consumed".
  const auto result = run_dump_experiment(tiny_config());
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  ASSERT_EQ(result->outcomes.size(), 2u);
  for (const auto& outcome : result->outcomes) {
    EXPECT_GT(outcome.plan.energy_savings(), 0.0) << outcome.error_bound;
    EXPECT_GT(outcome.plan.energy_saved().joules(), 0.0);
  }
}

TEST(DumpExperimentTest, SavingsInPaperBand) {
  // The paper reports 13% / 6.5 kJ measured; its own Table IV/V fitted
  // models imply ~3-7% net energy savings for the two tuned stages
  // (power ratio x runtime ratio), which is the band our model-faithful
  // reproduction must land in. EXPERIMENTS.md discusses the gap.
  const auto result = run_dump_experiment(tiny_config());
  ASSERT_TRUE(result.has_value());
  const double savings = result->mean_energy_savings();
  EXPECT_GT(savings, 0.02);
  EXPECT_LT(savings, 0.25);
  EXPECT_GT(result->mean_energy_saved().kj(), 0.3);
  EXPECT_LT(result->mean_energy_saved().kj(), 50.0);
}

TEST(DumpExperimentTest, FinerBoundCostsMoreEnergy) {
  // Fig 6: magnitudes grow with finer bounds (more compressed bytes, longer
  // compression).
  const auto result = run_dump_experiment(tiny_config());
  ASSERT_TRUE(result.has_value());
  const auto& coarse = result->outcomes[0];  // 1e-2
  const auto& fine = result->outcomes[1];    // 1e-4
  EXPECT_GT(fine.plan.energy_base.joules(), coarse.plan.energy_base.joules());
  EXPECT_LT(fine.compression_ratio, coarse.compression_ratio);
  EXPECT_GT(fine.compressed_bytes.bytes(), coarse.compressed_bytes.bytes());
}

TEST(DumpExperimentTest, CompressedBytesFollowRatio) {
  const auto result = run_dump_experiment(tiny_config());
  ASSERT_TRUE(result.has_value());
  for (const auto& outcome : result->outcomes) {
    const double expected = 512e9 / outcome.compression_ratio;
    EXPECT_NEAR(static_cast<double>(outcome.compressed_bytes.bytes()),
                expected, expected * 0.01);
  }
}

TEST(DumpExperimentTest, DefaultBoundsAreThePaperFour) {
  DumpConfig cfg;
  cfg.total_bytes = Bytes::from_gb(1);  // keep it quick
  const auto result = run_dump_experiment(cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->outcomes.size(), 4u);
}

TEST(DumpExperimentTest, RejectsZeroVolume) {
  DumpConfig cfg;
  cfg.total_bytes = Bytes{0};
  EXPECT_FALSE(run_dump_experiment(cfg).has_value());
}

TEST(DumpExperimentTest, WorksOnSkylakeToo) {
  DumpConfig cfg = tiny_config();
  cfg.chip = power::ChipId::kSkylake4114;
  cfg.error_bounds = {1e-2};
  const auto result = run_dump_experiment(cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->outcomes[0].plan.energy_savings(), 0.0);
}

TEST(DumpExperimentTest, FramingOffPutsOnlyCompressedBytesOnTheWire) {
  // Default config has frame_chunk_bytes = 0: the wire volume must equal
  // the compressed volume exactly (the pre-framing behavior).
  DumpConfig cfg = tiny_config();
  cfg.error_bounds = {1e-3};
  const auto plain = run_dump_experiment(cfg);
  ASSERT_TRUE(plain.has_value());
  const auto& o = plain->outcomes[0];
  EXPECT_EQ(o.framed_bytes.bytes(), o.compressed_bytes.bytes());
}

TEST(DumpExperimentTest, FramedDumpPaysMeasurableOverhead) {
  // Byte accounting is deterministic (unlike the calibrated wall times),
  // so the framing cost is asserted on the byte volumes.
  DumpConfig cfg = tiny_config();
  cfg.error_bounds = {1e-3};
  cfg.frame_chunk_bytes = 64 * 1024;
  const auto framed = run_dump_experiment(cfg);
  ASSERT_TRUE(framed.has_value());

  const auto& f = framed->outcomes[0];
  EXPECT_GT(f.framed_bytes.bytes(), f.compressed_bytes.bytes());
  const std::uint64_t overhead =
      f.framed_bytes.bytes() - f.compressed_bytes.bytes();
  EXPECT_EQ(overhead,
            compress::frame_overhead_bytes(
                static_cast<std::size_t>(f.compressed_bytes.bytes()),
                cfg.frame_chunk_bytes));
  // The overhead stays small at 64 KiB chunks (~0.03% of the stream).
  EXPECT_LT(static_cast<double>(overhead),
            0.001 * static_cast<double>(f.compressed_bytes.bytes()));
}

TEST(DumpExperimentTest, OverlapIsOffByDefault) {
  DumpConfig cfg = tiny_config();
  cfg.error_bounds = {1e-3};
  const auto result = run_dump_experiment(cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->outcomes[0].overlapped);
}

TEST(DumpExperimentTest, OverlapRidesAlongWithoutTouchingTheSerialPlan) {
  // overlap=on adds the streaming schedule NEXT TO the classic plan: the
  // overlap plan's embedded serial comparison must equal the outcome's
  // own plan exactly (same run, same calibration, bit-for-bit joules).
  DumpConfig cfg = tiny_config();
  cfg.error_bounds = {1e-3};
  cfg.overlap = true;
  cfg.overlap_depth = 16;
  const auto result = run_dump_experiment(cfg);
  ASSERT_TRUE(result.has_value());
  const auto& o = result->outcomes[0];
  ASSERT_TRUE(o.overlapped);
  EXPECT_EQ(o.overlap.serial.energy_tuned.joules(),
            o.plan.energy_tuned.joules());
  EXPECT_EQ(o.overlap.serial.runtime_tuned.seconds(),
            o.plan.runtime_tuned.seconds());
  EXPECT_EQ(o.overlap.pipeline_depth, 16u);
}

TEST(DumpExperimentTest, OverlapHidesTimeAndStaticEnergyAtDepth) {
  DumpConfig cfg = tiny_config();
  cfg.error_bounds = {1e-3};
  cfg.overlap = true;
  cfg.overlap_depth = 8;
  const auto result = run_dump_experiment(cfg);
  ASSERT_TRUE(result.has_value());
  const auto& t = result->outcomes[0].overlap.tuned;
  EXPECT_LT(t.runtime.seconds(), t.serial_runtime.seconds());
  EXPECT_LT(t.energy.joules(), t.serial_energy.joules());
  EXPECT_GT(t.overlap_saved().seconds(), 0.0);
}

TEST(DumpExperimentTest, OverlapDepthOneDegeneratesToSerial) {
  DumpConfig cfg = tiny_config();
  cfg.error_bounds = {1e-3};
  cfg.overlap = true;
  cfg.overlap_depth = 1;
  const auto result = run_dump_experiment(cfg);
  ASSERT_TRUE(result.has_value());
  const auto& t = result->outcomes[0].overlap.tuned;
  EXPECT_EQ(t.runtime.seconds(), t.serial_runtime.seconds());
  EXPECT_EQ(t.energy.joules(), t.serial_energy.joules());
}

}  // namespace
}  // namespace lcp::core
