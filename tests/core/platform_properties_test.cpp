// Cross-chip parameterized property sweeps: invariants that must hold on
// every chip x workload-type combination, however the calibration
// constants move.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/platform.hpp"
#include "core/sweep.hpp"
#include "io/transit_model.hpp"
#include "tuning/optimizer.hpp"

namespace lcp::core {
namespace {

enum class WorkloadKind { kSzCompression, kZfpCompression, kNfsWrite };

const char* kind_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kSzCompression:
      return "szc";
    case WorkloadKind::kZfpCompression:
      return "zfpc";
    case WorkloadKind::kNfsWrite:
      return "nfs";
  }
  return "?";
}

power::Workload make_workload(WorkloadKind kind, const power::ChipSpec& spec) {
  switch (kind) {
    case WorkloadKind::kSzCompression:
      return power::compression_workload(spec, Seconds{8.0}, 0.53, 1.0);
    case WorkloadKind::kZfpCompression:
      return power::compression_workload(spec, Seconds{6.0}, 0.50, 0.94);
    case WorkloadKind::kNfsWrite:
      return io::transit_workload(spec, Bytes::from_gb(2), {});
  }
  return {};
}

using Param = std::tuple<power::ChipId, WorkloadKind>;

class PlatformPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  const power::ChipSpec& spec() const {
    return power::chip(std::get<0>(GetParam()));
  }
  power::Workload workload() const {
    return make_workload(std::get<1>(GetParam()), spec());
  }
};

TEST_P(PlatformPropertyTest, PowerIsMonotoneNonDecreasingInFrequency) {
  const auto w = workload();
  double prev = 0.0;
  for (double f = spec().f_min.ghz(); f <= spec().f_max.ghz() + 1e-9;
       f += 0.05) {
    const double p = power::workload_power(w, spec(), GigaHertz{f}).watts();
    EXPECT_GE(p, prev - 1e-9) << f;
    prev = p;
  }
}

TEST_P(PlatformPropertyTest, RuntimeIsMonotoneNonIncreasingInFrequency) {
  const auto w = workload();
  double prev = 1e300;
  for (double f = spec().f_min.ghz(); f <= spec().f_max.ghz() + 1e-9;
       f += 0.05) {
    const double t = power::workload_runtime(w, spec(), GigaHertz{f}).seconds();
    EXPECT_LE(t, prev + 1e-9) << f;
    prev = t;
  }
}

TEST_P(PlatformPropertyTest, ScaledCurvesEndAtOne) {
  Platform platform{std::get<0>(GetParam()), power::NoiseModel::none(), 17};
  const auto sweep = frequency_sweep(platform, workload(), 2);
  for (auto metric : {SweepMetric::kPower, SweepMetric::kRuntime,
                      SweepMetric::kEnergy}) {
    const auto curve = scale_by_max_frequency(sweep, metric);
    EXPECT_NEAR(curve.value.back(), 1.0, 1e-12);
  }
}

TEST_P(PlatformPropertyTest, ScaledPowerNeverExceedsOnePlusNoise) {
  Platform platform{std::get<0>(GetParam()), power::NoiseModel::none(), 18};
  const auto sweep = frequency_sweep(platform, workload(), 1);
  const auto curve = scale_by_max_frequency(sweep, SweepMetric::kPower);
  for (double v : curve.value) {
    EXPECT_LE(v, 1.0 + 1e-9);
    EXPECT_GE(v, 0.5);  // no chip loses more than half its power
  }
}

TEST_P(PlatformPropertyTest, Eqn3NeverIncreasesPower) {
  const auto w = workload();
  const bool is_write = std::get<1>(GetParam()) == WorkloadKind::kNfsWrite;
  const double fraction = is_write ? 0.85 : 0.875;
  const auto report = tuning::evaluate_tuning(spec(), w, spec().f_max,
                                              spec().f_max * fraction);
  EXPECT_GE(report.power_savings(), 0.0);
  EXPECT_GE(report.runtime_increase(), -1e-12);
}

TEST_P(PlatformPropertyTest, EnergyOptimalFrequencyIsStable) {
  // Re-running the search yields the same point (pure function of model).
  const auto w = workload();
  const auto a = tuning::energy_optimal_frequency(spec(), w);
  const auto b = tuning::energy_optimal_frequency(spec(), w);
  EXPECT_DOUBLE_EQ(a.ghz(), b.ghz());
  EXPECT_GE(a.ghz(), spec().f_min.ghz());
  EXPECT_LE(a.ghz(), spec().f_max.ghz());
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = power::chip_series_name(std::get<0>(info.param));
  name += "_";
  name += kind_name(std::get<1>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllChipsWorkloads, PlatformPropertyTest,
    ::testing::Combine(::testing::Values(power::ChipId::kBroadwellD1548,
                                         power::ChipId::kSkylake4114),
                       ::testing::Values(WorkloadKind::kSzCompression,
                                         WorkloadKind::kZfpCompression,
                                         WorkloadKind::kNfsWrite)),
    param_name);

}  // namespace
}  // namespace lcp::core
