// End-to-end degradation: a transit study over a faulty link completes,
// marks failed points with their typed Status, prices the retries into
// the energy model, and leaves fault-free points bit-identical to the
// fault-free study.

#include <gtest/gtest.h>

#include "core/transit_study.hpp"

namespace lcp::core {
namespace {

TransitStudyConfig base_config() {
  TransitStudyConfig cfg;
  cfg.sizes = {Bytes{64 * 1024}, Bytes{128 * 1024}};
  cfg.repeats = 2;
  cfg.chips = {power::ChipId::kBroadwellD1548};
  cfg.fault.probe_chunk_bytes = 16 * 1024;  // 4-chunk and 8-chunk probes
  return cfg;
}

void expect_sweeps_bit_identical(const std::vector<SweepPoint>& a,
                                 const std::vector<SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].frequency.ghz(), b[i].frequency.ghz());
    EXPECT_EQ(a[i].power_w.mean, b[i].power_w.mean);
    EXPECT_EQ(a[i].runtime_s.mean, b[i].runtime_s.mean);
    EXPECT_EQ(a[i].energy_j.mean, b[i].energy_j.mean);
    EXPECT_EQ(a[i].energy_j.ci95_half, b[i].energy_j.ci95_half);
  }
}

TEST(TransitFaultStudyTest, CleanPlanIsBitIdenticalToDisabledFaults) {
  const auto baseline = run_transit_study(base_config());
  ASSERT_TRUE(baseline.has_value());

  TransitStudyConfig cfg = base_config();
  cfg.fault.enabled = true;  // machinery on, but the plan cannot fire
  const auto clean = run_transit_study(cfg);
  ASSERT_TRUE(clean.has_value());

  ASSERT_EQ(clean->series.size(), baseline->series.size());
  for (std::size_t i = 0; i < clean->series.size(); ++i) {
    EXPECT_TRUE(clean->series[i].status.is_ok());
    EXPECT_TRUE(clean->series[i].retry.clean());
    expect_sweeps_bit_identical(clean->series[i].sweep,
                                baseline->series[i].sweep);
  }
  EXPECT_EQ(clean->failed_points(), 0u);
}

TEST(TransitFaultStudyTest, FailedPointIsRecordedAndStudyContinues) {
  TransitStudyConfig cfg = base_config();
  cfg.fault.enabled = true;
  // The study's chunk-index stream is global: the 64 KiB point consumes
  // chunks 0-3, the 128 KiB point chunks 4-11. A permanent outage over
  // the second window must kill exactly that point.
  cfg.fault.plan.episodes.push_back({io::FaultKind::kServerUnavailable,
                                     /*first_rpc=*/4, /*rpc_count=*/8,
                                     io::kFaultPersistsForever});
  const auto result = run_transit_study(cfg);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  ASSERT_EQ(result->series.size(), 2u);

  const auto& healthy = result->series[0];
  const auto& failed = result->series[1];
  EXPECT_TRUE(healthy.status.is_ok());
  EXPECT_FALSE(healthy.sweep.empty());

  EXPECT_FALSE(failed.status.is_ok());
  EXPECT_EQ(failed.status.code(), ErrorCode::kUnavailable);
  EXPECT_NE(failed.status.message().find("failed after"), std::string::npos);
  EXPECT_TRUE(failed.sweep.empty());
  EXPECT_EQ(result->failed_points(), 1u);

  // The surviving point is untouched by its neighbor's failure.
  const auto baseline = run_transit_study(base_config());
  ASSERT_TRUE(baseline.has_value());
  expect_sweeps_bit_identical(healthy.sweep, baseline->series[0].sweep);
}

TEST(TransitFaultStudyTest, LossRateRaisesModeledEnergy) {
  TransitStudyConfig cfg = base_config();
  cfg.sizes = {Bytes{1024 * 1024}};
  cfg.fault.enabled = true;
  cfg.fault.plan = io::FaultPlan::loss(/*seed=*/11, /*rate=*/0.2);
  const auto lossy = run_transit_study(cfg);
  ASSERT_TRUE(lossy.has_value());
  ASSERT_EQ(lossy->series.size(), 1u);
  ASSERT_TRUE(lossy->series[0].status.is_ok())
      << lossy->series[0].status.to_string();
  EXPECT_GT(lossy->series[0].retry.retransmit_fraction, 0.0);
  EXPECT_GT(lossy->series[0].retry.idle_seconds.seconds(), 0.0);

  TransitStudyConfig clean_cfg = cfg;
  clean_cfg.fault = TransitFaultConfig{};
  const auto clean = run_transit_study(clean_cfg);
  ASSERT_TRUE(clean.has_value());

  const auto& lossy_sweep = lossy->series[0].sweep;
  const auto& clean_sweep = clean->series[0].sweep;
  ASSERT_EQ(lossy_sweep.size(), clean_sweep.size());
  for (std::size_t i = 0; i < lossy_sweep.size(); ++i) {
    EXPECT_GT(lossy_sweep[i].energy_j.mean, clean_sweep[i].energy_j.mean)
        << "at " << lossy_sweep[i].frequency.ghz() << " GHz";
    EXPECT_GT(lossy_sweep[i].runtime_s.mean, clean_sweep[i].runtime_s.mean);
  }
}

TEST(TransitFaultStudyTest, RejectsZeroProbeChunk) {
  TransitStudyConfig cfg = base_config();
  cfg.fault.enabled = true;
  cfg.fault.probe_chunk_bytes = 0;
  EXPECT_FALSE(run_transit_study(cfg).has_value());
}

}  // namespace
}  // namespace lcp::core
