#include "core/fetch_experiment.hpp"

#include <gtest/gtest.h>

#include "core/dump_experiment.hpp"

namespace lcp::core {
namespace {

FetchConfig tiny_config() {
  FetchConfig cfg;
  cfg.error_bounds = {1e-2, 1e-4};
  return cfg;
}

TEST(FetchExperimentTest, TunedReadPathSavesEnergy) {
  const auto result = run_fetch_experiment(tiny_config());
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  ASSERT_EQ(result->outcomes.size(), 2u);
  for (const auto& outcome : result->outcomes) {
    EXPECT_GT(outcome.plan.energy_savings(), 0.0) << outcome.error_bound;
  }
  EXPECT_GT(result->mean_energy_saved().joules(), 0.0);
  EXPECT_GT(result->mean_energy_savings(), 0.0);
  EXPECT_LT(result->mean_energy_savings(), 0.25);
}

TEST(FetchExperimentTest, StagesAreReadThenDecompress) {
  const auto result = run_fetch_experiment(tiny_config());
  ASSERT_TRUE(result.has_value());
  const auto& plan = result->outcomes[0].plan;
  ASSERT_EQ(plan.tuned.stages.size(), 2u);
  EXPECT_EQ(plan.tuned.stages[0].name, "read");
  EXPECT_EQ(plan.tuned.stages[1].name, "decompress");
  // Eqn 3: read at 0.85 f_max, decompress at 0.875 f_max (Broadwell).
  EXPECT_NEAR(plan.tuned.stages[0].frequency.ghz(), 1.70, 1e-9);
  EXPECT_NEAR(plan.tuned.stages[1].frequency.ghz(), 1.75, 1e-9);
}

TEST(FetchExperimentTest, FinerBoundMovesMoreBytes) {
  const auto result = run_fetch_experiment(tiny_config());
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->outcomes[1].compressed_bytes.bytes(),
            result->outcomes[0].compressed_bytes.bytes());
}

TEST(FetchExperimentTest, FetchIsCheaperThanDump) {
  // Decompression is faster than compression, so the read path costs less
  // total energy than the Fig 6 dump at the same bound.
  FetchConfig fetch_cfg;
  fetch_cfg.error_bounds = {1e-3};
  const auto fetch = run_fetch_experiment(fetch_cfg);
  ASSERT_TRUE(fetch.has_value());

  DumpConfig dump_cfg;
  dump_cfg.error_bounds = {1e-3};
  const auto dump = run_dump_experiment(dump_cfg);
  ASSERT_TRUE(dump.has_value());

  EXPECT_LT(fetch->outcomes[0].plan.energy_base.joules(),
            dump->outcomes[0].plan.energy_base.joules());
}

TEST(FetchExperimentTest, RejectsZeroVolume) {
  FetchConfig cfg;
  cfg.total_bytes = Bytes{0};
  EXPECT_FALSE(run_fetch_experiment(cfg).has_value());
}

TEST(DecompressWorkloadTest, LighterThanCompressionWorkload) {
  const auto cal = calibrate_codec(compress::CodecId::kSz,
                                   data::DatasetId::kNyx, 1e-3,
                                   data::Scale::kCi, 1);
  ASSERT_TRUE(cal.has_value());
  const auto& spec = power::chip(power::ChipId::kBroadwellD1548);
  const auto comp = workload_from_calibration(*cal, spec);
  const auto decomp = decompress_workload_from_calibration(*cal, spec);
  EXPECT_LT(power::workload_runtime(decomp, spec, spec.f_max).seconds(),
            power::workload_runtime(comp, spec, spec.f_max).seconds());
}

}  // namespace
}  // namespace lcp::core
