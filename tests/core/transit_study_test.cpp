#include "core/transit_study.hpp"

#include <gtest/gtest.h>

#include "core/sweep.hpp"

namespace lcp::core {
namespace {

TransitStudyConfig tiny_config() {
  TransitStudyConfig cfg;
  cfg.sizes = {Bytes::from_gb(1)};
  cfg.repeats = 2;
  cfg.noise = power::NoiseModel::none();
  return cfg;
}

TEST(TransitStudyTest, ProducesSeriesPerChipAndSize) {
  const auto result = run_transit_study(tiny_config());
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->series.size(), 2u);  // 1 size x 2 chips
}

TEST(TransitStudyTest, DefaultSizesAreThePaperLadder) {
  TransitStudyConfig cfg;
  cfg.repeats = 1;
  cfg.chips = {power::ChipId::kBroadwellD1548};
  cfg.noise = power::NoiseModel::none();
  const auto result = run_transit_study(cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->series.size(), 5u);  // 1,2,4,8,16 GB
}

TEST(TransitStudyTest, RejectsZeroSize) {
  TransitStudyConfig cfg = tiny_config();
  cfg.sizes = {Bytes{0}};
  EXPECT_FALSE(run_transit_study(cfg).has_value());
}

TEST(TransitStudyTest, ScaledPowerFloorNearPointNine) {
  // Fig 3: transit power floor ~0.9 (less dynamic range than compression).
  const auto result = run_transit_study(tiny_config());
  ASSERT_TRUE(result.has_value());
  for (const auto& series : result->series) {
    const auto curve =
        scale_by_max_frequency(series.sweep, SweepMetric::kPower);
    EXPECT_GT(curve.value.front(), 0.80);
    EXPECT_LT(curve.value.front(), 0.97);
  }
}

TEST(TransitStudyTest, SkylakeRuntimeFlatterThanBroadwell) {
  const auto result = run_transit_study(tiny_config());
  ASSERT_TRUE(result.has_value());
  double bdw_range = 0.0;
  double skl_range = 0.0;
  for (const auto& series : result->series) {
    const auto curve =
        scale_by_max_frequency(series.sweep, SweepMetric::kRuntime);
    const double range = curve.value.front() - curve.value.back();
    if (series.chip == power::ChipId::kBroadwellD1548) {
      bdw_range = range;
    } else {
      skl_range = range;
    }
  }
  EXPECT_GT(bdw_range, skl_range);
}

TEST(TransitStudyTest, LargerTransfersTakeProportionallyLonger) {
  TransitStudyConfig cfg = tiny_config();
  cfg.sizes = {Bytes::from_gb(1), Bytes::from_gb(8)};
  cfg.chips = {power::ChipId::kBroadwellD1548};
  const auto result = run_transit_study(cfg);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->series.size(), 2u);
  const double t1 = result->series[0].sweep.back().runtime_s.mean;
  const double t8 = result->series[1].sweep.back().runtime_s.mean;
  EXPECT_NEAR(t8 / t1, 8.0, 0.5);
}

}  // namespace
}  // namespace lcp::core
