#include "core/study_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lcp::core {
namespace {

CompressionStudyResult tiny_study() {
  CompressionStudyConfig cfg;
  cfg.repeats = 2;
  cfg.error_bounds = {1e-2};
  cfg.datasets = {data::DatasetId::kNyx};
  cfg.codecs = {compress::CodecId::kSz};
  cfg.chips = {power::ChipId::kBroadwellD1548};
  cfg.noise = power::NoiseModel::none();
  auto result = run_compression_study(cfg);
  EXPECT_TRUE(result.has_value());
  return std::move(*result);
}

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (char c : s) {
    n += c == '\n' ? 1 : 0;
  }
  return n;
}

TEST(StudyExportTest, CompressionCsvHasHeaderAndOneRowPerGridPoint) {
  const auto result = tiny_study();
  const auto csv = export_compression_study(result);
  const auto body = csv.render();
  // 1 series x 25 Broadwell grid points + header.
  EXPECT_EQ(count_lines(body), 26u);
  EXPECT_EQ(body.rfind("chip,codec,dataset,error_bound,f_ghz", 0), 0u);
  EXPECT_NE(body.find("Broadwell,sz,NYX"), std::string::npos);
}

TEST(StudyExportTest, ScaledPowerColumnEndsAtOne) {
  const auto result = tiny_study();
  const auto body = export_compression_study(result).render();
  // The last row is the f_max row; its scaled_power column must be 1.
  const auto last_line_start = body.rfind('\n', body.size() - 2);
  const std::string last_line = body.substr(last_line_start + 1);
  EXPECT_NE(last_line.find(",1.00000,"), std::string::npos) << last_line;
}

TEST(StudyExportTest, CalibrationsCsv) {
  const auto result = tiny_study();
  const auto body = export_calibrations(result).render();
  EXPECT_EQ(count_lines(body), 2u);  // header + one calibration
  EXPECT_NE(body.find("sz,NYX,1.0e-02"), std::string::npos);
}

TEST(StudyExportTest, TransitCsv) {
  TransitStudyConfig cfg;
  cfg.sizes = {Bytes::from_gb(1)};
  cfg.repeats = 2;
  cfg.chips = {power::ChipId::kSkylake4114};
  cfg.noise = power::NoiseModel::none();
  const auto result = run_transit_study(cfg);
  ASSERT_TRUE(result.has_value());
  const auto body = export_transit_study(*result).render();
  EXPECT_EQ(count_lines(body), 30u);  // header + 29 Skylake grid points
  EXPECT_NE(body.find("Skylake,1.00"), std::string::npos);
}

TEST(StudyExportTest, ValidationCsv) {
  ValidationConfig cfg;
  cfg.repeats = 2;
  cfg.noise = power::NoiseModel::none();
  model::PowerLawFit fit;
  fit.a = 0.01;
  fit.b = 5.0;
  fit.c = 0.8;
  const auto result = run_validation_study(cfg, fit);
  ASSERT_TRUE(result.has_value());
  const auto body = export_validation_study(*result).render();
  // 12 series x 25 points + header.
  EXPECT_EQ(count_lines(body), 301u);
  EXPECT_NE(body.find("PRECIP,sz"), std::string::npos);
  EXPECT_NE(body.find("W,zfp"), std::string::npos);
}

}  // namespace
}  // namespace lcp::core
