#include "core/validation_study.hpp"

#include <gtest/gtest.h>

namespace lcp::core {
namespace {

model::PowerLawFit broadwell_like_model() {
  // A model of the right family fitted elsewhere; close to our chip's
  // actual scaled curve.
  model::PowerLawFit fit;
  fit.a = 0.012;
  fit.b = 4.5;
  fit.c = 0.78;
  return fit;
}

ValidationConfig tiny_config() {
  ValidationConfig cfg;
  cfg.repeats = 2;
  cfg.noise = power::NoiseModel::none();
  return cfg;
}

TEST(ValidationStudyTest, ProducesTwelveSeries) {
  const auto result = run_validation_study(tiny_config(), broadwell_like_model());
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  // 6 Isabel fields x 2 codecs.
  EXPECT_EQ(result->series.size(), 12u);
  for (const auto& series : result->series) {
    EXPECT_EQ(series.sweep.size(), 25u);  // Broadwell grid
  }
}

TEST(ValidationStudyTest, StatsOverPooledObservations) {
  const auto result = run_validation_study(tiny_config(), broadwell_like_model());
  ASSERT_TRUE(result.has_value());
  // 12 series x 25 grid points.
  EXPECT_EQ(result->stats.n, 300u);
  EXPECT_GT(result->stats.sse, 0.0);
}

TEST(ValidationStudyTest, ReasonableModelScoresWellOnNewData) {
  // Fig 5's claim: the fitted model transfers to unseen datasets with low
  // error (paper: SSE 0.1463, RMSE 0.0256 — we check the same magnitude).
  const auto result = run_validation_study(tiny_config(), broadwell_like_model());
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(result->stats.rmse, 0.08);
}

TEST(ValidationStudyTest, BogusModelScoresPoorly) {
  model::PowerLawFit bogus;
  bogus.a = 5.0;
  bogus.b = 2.0;
  bogus.c = 10.0;
  const auto result = run_validation_study(tiny_config(), bogus);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->stats.rmse, 1.0);
}

}  // namespace
}  // namespace lcp::core
