// Concurrency suite for the replicated incremental store (runs under the
// tsan CI leg): parallel restores against a fixed journal, restores racing
// a writer, and serialized concurrent dumps must neither race nor corrupt
// the generation chain.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/incremental_checkpoint.hpp"
#include "data/field.hpp"
#include "io/nfs_server.hpp"
#include "io/replica_set.hpp"

namespace lcp::core {
namespace {

using io::NfsServer;

constexpr std::size_t kElements = 2048;
constexpr std::size_t kChunk = 256;

data::Field seed_field(float bias = 0.0F) {
  std::vector<float> values(kElements);
  for (std::size_t i = 0; i < kElements; ++i) {
    values[i] = bias + 0.5F + 0.001F * static_cast<float>(i % 97);
  }
  return data::Field{"rho", data::Dims::d1(kElements), std::move(values)};
}

struct Rig {
  NfsServer s0, s1, s2;
  io::ReplicaSet replicas{{&s0, &s1, &s2}, {}};
  IncrementalStoreOptions opts;
  IncrementalCheckpointStore store;

  Rig() : opts(make_options()), store(replicas, opts) {}

  static IncrementalStoreOptions make_options() {
    IncrementalStoreOptions o;
    o.checkpoint.codec = "sz";
    o.checkpoint.chunk_elements = kChunk;
    return o;
  }
};

TEST(IncrementalConcurrentTest, ParallelRestoresSeeConsistentGenerations) {
  Rig rig;
  ASSERT_TRUE(rig.store.dump(seed_field(0.0F)).has_value());
  ASSERT_TRUE(rig.store.dump(seed_field(1.0F)).has_value());
  ASSERT_TRUE(rig.store.dump(seed_field(2.0F)).has_value());

  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rig, &failures, t] {
      const std::uint64_t gen = 1 + (t % 3);
      for (int round = 0; round < 4; ++round) {
        const auto restored = rig.store.restore(gen);
        if (!restored.has_value() || !restored->complete() ||
            restored->generation != gen) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0u);
}

TEST(IncrementalConcurrentTest, RestoresRaceDumpsWithoutTornState) {
  Rig rig;
  ASSERT_TRUE(rig.store.dump(seed_field(0.0F)).has_value());

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad_restores{0};
  std::thread reader([&rig, &stop, &bad_restores] {
    while (!stop.load(std::memory_order_acquire)) {
      // Any published generation must restore completely; a dump in
      // flight must never be observable half-written.
      const auto restored = rig.store.restore_latest();
      if (!restored.has_value() || !restored->complete()) {
        bad_restores.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int g = 1; g < 6; ++g) {
    const auto summary = rig.store.dump(seed_field(0.25F * g));
    ASSERT_TRUE(summary.has_value()) << summary.status().message();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(bad_restores.load(), 0u);
  EXPECT_EQ(rig.store.latest_generation(), 6u);
}

TEST(IncrementalConcurrentTest, ConcurrentDumpsSerializeIntoOneChain) {
  Rig rig;
  constexpr std::size_t kWriters = 4;
  std::atomic<std::size_t> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (std::size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&rig, &ok, t] {
      const auto summary =
          rig.store.dump(seed_field(static_cast<float>(t)));
      if (summary.has_value()) {
        ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(ok.load(), kWriters);
  // The mutex serializes writers into a dense 1..N generation chain.
  const auto gens = rig.store.generations();
  ASSERT_EQ(gens.size(), kWriters);
  for (std::size_t i = 0; i < gens.size(); ++i) {
    EXPECT_EQ(gens[i], i + 1);
  }
  // Every generation restores cleanly after the dust settles.
  for (std::uint64_t g = 1; g <= kWriters; ++g) {
    const auto restored = rig.store.restore(g);
    ASSERT_TRUE(restored.has_value());
    EXPECT_TRUE(restored->complete());
  }
}

TEST(IncrementalConcurrentTest, RestoreLatestRacesDropOfNewestGeneration) {
  Rig rig;
  ASSERT_TRUE(rig.store.dump(seed_field(0.0F)).has_value());

  // restore_latest picks the newest generation and restores it under one
  // shared lock over one journal read; a drop of that generation in
  // between must be impossible, never an "is not in journal" error.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad{0};
  std::thread reader([&rig, &stop, &bad] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto restored = rig.store.restore_latest();
      if (!restored.has_value() || !restored->complete()) {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int round = 0; round < 6; ++round) {
    const auto summary =
        rig.store.dump(seed_field(1.0F + 0.5F * round));
    ASSERT_TRUE(summary.has_value()) << summary.status().message();
    // Immediately drop the generation the reader is most likely to pick.
    ASSERT_TRUE(rig.store.drop_generation(summary->generation).is_ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(IncrementalConcurrentTest, GcRacesRestoresOfLiveGenerations) {
  Rig rig;
  ASSERT_TRUE(rig.store.dump(seed_field(0.0F)).has_value());
  ASSERT_TRUE(rig.store.dump(seed_field(1.0F)).has_value());
  ASSERT_TRUE(rig.store.drop_generation(1).is_ok());

  std::atomic<std::size_t> bad{0};
  std::thread reader([&rig, &bad] {
    for (int round = 0; round < 8; ++round) {
      const auto restored = rig.store.restore(2);
      if (!restored.has_value() || !restored->complete()) {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  const auto gc = rig.store.gc();
  reader.join();
  ASSERT_TRUE(gc.has_value());
  EXPECT_EQ(bad.load(), 0u);
  // Generation 2 survived GC intact.
  const auto after = rig.store.restore(2);
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->complete());
}

}  // namespace
}  // namespace lcp::core
