// Incremental checkpoint store suite: delta-chain byte-identity against
// the classic checkpoint pipeline, content-addressed dedup, quorum
// restores under replica loss, damaged-object verdicts, journal
// durability, and GC round-trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "compress/common/checkpoint.hpp"
#include "core/incremental_checkpoint.hpp"
#include "data/field.hpp"
#include "io/fault.hpp"
#include "io/nfs_server.hpp"
#include "io/replica_set.hpp"
#include "support/checksum.hpp"

namespace lcp::core {
namespace {

using io::NfsServer;

constexpr std::size_t kElements = 4096;
constexpr std::size_t kChunk = 512;  // 8 slabs

data::Field ramp_field(float scale = 1.0F, const std::string& name = "rho") {
  std::vector<float> values(kElements);
  for (std::size_t i = 0; i < kElements; ++i) {
    values[i] = scale * (0.25F + 0.001F * static_cast<float>(i % 257));
  }
  return data::Field{name, data::Dims::d1(kElements), std::move(values)};
}

data::Field touch(const data::Field& field, std::size_t offset,
                  std::size_t count, float delta) {
  std::vector<float> values(field.values().begin(), field.values().end());
  for (std::size_t i = offset; i < std::min(values.size(), offset + count);
       ++i) {
    values[i] += delta;
  }
  return data::Field{field.name(), field.dims(), std::move(values)};
}

/// What the classic pipeline would decode for `field` — the byte-identity
/// reference (lossy codecs make the raw field the wrong comparand).
data::Field reference(const data::Field& field,
                      const compress::CheckpointOptions& opts) {
  auto bytes = compress::write_checkpoint(field, opts);
  EXPECT_TRUE(bytes.has_value());
  auto decoded = compress::read_checkpoint(*bytes);
  EXPECT_TRUE(decoded.has_value());
  return std::move(*decoded);
}

struct Rig {
  NfsServer s0, s1, s2;
  io::ReplicaSet replicas{{&s0, &s1, &s2}, {}};
  IncrementalStoreOptions opts;
  IncrementalCheckpointStore store;

  explicit Rig(const std::string& codec = "sz")
      : opts(make_options(codec)), store(replicas, opts) {}

  static IncrementalStoreOptions make_options(const std::string& codec) {
    IncrementalStoreOptions o;
    o.root = "ckpt";
    o.checkpoint.codec = codec;
    o.checkpoint.bound = compress::ErrorBound::absolute(1e-3);
    o.checkpoint.chunk_elements = kChunk;
    return o;
  }
};

void expect_identical(const data::Field& a, const data::Field& b) {
  ASSERT_EQ(a.element_count(), b.element_count());
  EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                         b.values().begin()));
}

TEST(IncrementalStoreTest, FirstDumpWritesEverySlab) {
  Rig rig;
  const auto field = ramp_field();
  const auto summary = rig.store.dump(field);
  ASSERT_TRUE(summary.has_value()) << summary.status().message();
  EXPECT_EQ(summary->generation, 1u);
  EXPECT_EQ(summary->slab_count, kElements / kChunk);
  EXPECT_EQ(summary->dirty_slabs, summary->slab_count);
  EXPECT_EQ(summary->written_slabs, summary->slab_count);
  EXPECT_GT(summary->payload_bytes.bytes(), 0u);
  EXPECT_GT(summary->journal_bytes.bytes(), 0u);
  // Every byte fanned out to 3 replicas.
  EXPECT_GE(summary->replicated_bytes.bytes(),
            3u * summary->payload_bytes.bytes());
}

TEST(IncrementalStoreTest, CleanRedumpWritesNothing) {
  Rig rig;
  const auto field = ramp_field();
  ASSERT_TRUE(rig.store.dump(field).has_value());
  const auto again = rig.store.dump(field);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->generation, 2u);
  EXPECT_EQ(again->dirty_slabs, 0u);
  EXPECT_EQ(again->written_slabs, 0u);
  EXPECT_EQ(again->payload_bytes.bytes(), 0u);
  // Only the journal rewrite went on the wire.
  EXPECT_EQ(again->replicated_bytes.bytes(),
            3u * again->journal_bytes.bytes());
}

TEST(IncrementalStoreTest, DeltaDumpTouchesOnlyDirtySlabs) {
  Rig rig;
  const auto gen1 = ramp_field();
  ASSERT_TRUE(rig.store.dump(gen1).has_value());
  // Touch slabs 2 and 3 only.
  const auto gen2 = touch(gen1, 2 * kChunk + 10, kChunk, 0.5F);
  const auto summary = rig.store.dump(gen2);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->dirty_slabs, 2u);
  EXPECT_EQ(summary->written_slabs, 2u);
}

TEST(IncrementalStoreTest, ThreeGenerationChainRestoresByteIdentical) {
  Rig rig;
  std::vector<data::Field> chain;
  chain.push_back(ramp_field());
  chain.push_back(touch(chain[0], 0, kChunk, 0.25F));
  chain.push_back(touch(chain[1], 5 * kChunk, 2 * kChunk, -0.125F));
  for (const auto& field : chain) {
    ASSERT_TRUE(rig.store.dump(field).has_value());
  }
  compress::RecoveryPolicy strict;
  strict.fail_on_any_loss = true;
  for (std::size_t g = 0; g < chain.size(); ++g) {
    const auto restored = rig.store.restore(g + 1, strict);
    ASSERT_TRUE(restored.has_value()) << restored.status().message();
    EXPECT_TRUE(restored->complete());
    EXPECT_EQ(restored->generation, g + 1);
    expect_identical(restored->field,
                     reference(chain[g], rig.opts.checkpoint));
  }
}

TEST(IncrementalStoreTest, RestoreLatestPicksNewestGeneration) {
  Rig rig;
  const auto gen1 = ramp_field();
  const auto gen2 = touch(gen1, 0, kChunk, 1.0F);
  ASSERT_TRUE(rig.store.dump(gen1).has_value());
  ASSERT_TRUE(rig.store.dump(gen2).has_value());
  const auto restored = rig.store.restore_latest();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->generation, 2u);
  expect_identical(restored->field, reference(gen2, rig.opts.checkpoint));
}

TEST(IncrementalStoreTest, IdenticalContentDeduplicatesAcrossSlabs) {
  Rig rig;
  // All 8 slabs carry identical bytes: one stored object serves them all.
  std::vector<float> values(kElements, 1.5F);
  const data::Field field{"flat", data::Dims::d1(kElements),
                          std::move(values)};
  const auto summary = rig.store.dump(field);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->dirty_slabs, kElements / kChunk);
  EXPECT_EQ(summary->written_slabs, 1u);
  const auto restored = rig.store.restore(1);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->complete());
}

TEST(IncrementalStoreTest, RestoreSurvivesAnySingleReplicaLoss) {
  Rig rig;
  const auto gen1 = ramp_field();
  const auto gen2 = touch(gen1, kChunk, kChunk, 0.5F);
  ASSERT_TRUE(rig.store.dump(gen1).has_value());
  ASSERT_TRUE(rig.store.dump(gen2).has_value());
  compress::RecoveryPolicy strict;
  strict.fail_on_any_loss = true;
  for (std::size_t down = 0; down < 3; ++down) {
    rig.replicas.set_replica_down(down, true);
    for (std::uint64_t g : {std::uint64_t{1}, std::uint64_t{2}}) {
      const auto restored = rig.store.restore(g, strict);
      ASSERT_TRUE(restored.has_value())
          << "replica " << down << " down, gen " << g << ": "
          << restored.status().message();
      EXPECT_TRUE(restored->complete());
    }
    rig.replicas.set_replica_down(down, false);
  }
}

TEST(IncrementalStoreTest, CorruptCopyFailsOverToGoodReplica) {
  Rig rig;
  ASSERT_TRUE(rig.store.dump(ramp_field()).has_value());
  // Corrupt every slab object on replica 0 (flip one byte in place).
  for (const std::string& path : rig.s0.list_files("ckpt/slabs/")) {
    auto bytes = rig.s0.read_file(path);
    ASSERT_TRUE(bytes.has_value());
    std::vector<std::uint8_t> damaged(bytes->begin(), bytes->end());
    damaged[damaged.size() / 2] ^= 0x40;
    ASSERT_TRUE(rig.s0.remove_file(path).has_value());
    ASSERT_TRUE(rig.s0.handle_write(path, damaged).is_ok());
  }
  compress::RecoveryPolicy strict;
  strict.fail_on_any_loss = true;
  const auto restored = rig.store.restore(1, strict);
  ASSERT_TRUE(restored.has_value()) << restored.status().message();
  EXPECT_TRUE(restored->complete());
  // Slabs whose preferred replica was 0 had to fail over.
  EXPECT_GT(restored->slab_failovers, 0u);
}

TEST(IncrementalStoreTest, AllCopiesDamagedYieldsPerSlabVerdicts) {
  Rig rig;
  const auto field = ramp_field();
  ASSERT_TRUE(rig.store.dump(field).has_value());
  // Destroy slab object 0's copies everywhere: pick the object referenced
  // by the first slab via a restore report, then damage all replicas.
  const auto before = rig.store.restore(1);
  ASSERT_TRUE(before.has_value());
  const auto paths = rig.s0.list_files("ckpt/slabs/");
  ASSERT_FALSE(paths.empty());
  const std::string victim = paths.front();
  for (NfsServer* s : {&rig.s0, &rig.s1, &rig.s2}) {
    ASSERT_TRUE(s->remove_file(victim).has_value());
  }
  const auto restored = rig.store.restore(1);
  ASSERT_TRUE(restored.has_value());
  EXPECT_FALSE(restored->complete());
  EXPECT_GT(restored->lost_elements, 0u);
  std::size_t lost = 0;
  for (const auto& v : restored->slabs) {
    if (!v.recovered) {
      ++lost;
      EXPECT_FALSE(v.status.is_ok());
    }
  }
  EXPECT_GE(lost, 1u);

  // Strict policy turns the same loss into a typed error.
  compress::RecoveryPolicy strict;
  strict.fail_on_any_loss = true;
  const auto failed = rig.store.restore(1, strict);
  EXPECT_FALSE(failed.has_value());
}

TEST(IncrementalStoreTest, InterpolateFillBridgesLostSlab) {
  Rig rig("lossless");
  const auto field = ramp_field();
  ASSERT_TRUE(rig.store.dump(field).has_value());
  // Remove one mid-field object from every replica; zero vs interpolate
  // fills must differ and interpolation must stay within neighbor range.
  const auto paths = rig.s0.list_files("ckpt/slabs/");
  ASSERT_GT(paths.size(), 2u);
  const std::string victim = paths[paths.size() / 2];
  for (NfsServer* s : {&rig.s0, &rig.s1, &rig.s2}) {
    ASSERT_TRUE(s->remove_file(victim).has_value());
  }
  compress::RecoveryPolicy zero;
  zero.fill = compress::RecoveryFill::kZero;
  compress::RecoveryPolicy lerp;
  lerp.fill = compress::RecoveryFill::kInterpolate;
  const auto z = rig.store.restore(1, zero);
  const auto l = rig.store.restore(1, lerp);
  ASSERT_TRUE(z.has_value());
  ASSERT_TRUE(l.has_value());
  ASSERT_EQ(z->lost_elements, l->lost_elements);
  EXPECT_GT(z->lost_elements, 0u);
  EXPECT_FALSE(std::equal(z->field.values().begin(), z->field.values().end(),
                          l->field.values().begin()));
}

TEST(IncrementalStoreTest, OpenAttachesToExistingStore) {
  Rig rig;
  const auto gen1 = ramp_field();
  const auto gen2 = touch(gen1, 0, kChunk, 0.5F);
  ASSERT_TRUE(rig.store.dump(gen1).has_value());
  ASSERT_TRUE(rig.store.dump(gen2).has_value());

  // A second store instance over the same replicas: open() must rebuild
  // the index so the next dump still deduplicates against stored objects.
  IncrementalCheckpointStore second{rig.replicas, rig.opts};
  ASSERT_TRUE(second.open().is_ok());
  EXPECT_EQ(second.generations(), (std::vector<std::uint64_t>{1, 2}));
  const auto redump = second.dump(gen2);
  ASSERT_TRUE(redump.has_value());
  EXPECT_EQ(redump->generation, 3u);
  EXPECT_EQ(redump->dirty_slabs, 0u);
  EXPECT_EQ(redump->written_slabs, 0u);
}

TEST(IncrementalStoreTest, LayoutChangeMarksEverySlabDirty) {
  Rig rig;
  ASSERT_TRUE(rig.store.dump(ramp_field()).has_value());
  // Same bytes, different field name: raw hashes match but the layout
  // does not, so nothing may be reused.
  const auto renamed = ramp_field(1.0F, "rho2");
  const auto summary = rig.store.dump(renamed);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->dirty_slabs, kElements / kChunk);
  // The slab container embeds the field name, so no object is shared
  // with the old layout either — every slab is re-shipped.
  EXPECT_EQ(summary->written_slabs, kElements / kChunk);
  const auto restored = rig.store.restore(2);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->field.name(), "rho2");
}

TEST(IncrementalStoreTest, GcRemovesOnlyUnreferencedObjects) {
  Rig rig;
  const auto gen1 = ramp_field();
  const auto gen2 = touch(gen1, 0, 2 * kChunk, 0.5F);
  ASSERT_TRUE(rig.store.dump(gen1).has_value());
  ASSERT_TRUE(rig.store.dump(gen2).has_value());

  // Nothing unreferenced yet.
  const auto noop = rig.store.gc();
  ASSERT_TRUE(noop.has_value());
  EXPECT_EQ(noop->objects_removed, 0u);

  ASSERT_TRUE(rig.store.drop_generation(1).is_ok());
  const auto gc = rig.store.gc();
  ASSERT_TRUE(gc.has_value());
  // Gen 1's slabs 0,1 were superseded in gen 2; they are now garbage.
  EXPECT_EQ(gc->objects_removed, 2u);
  EXPECT_GT(gc->bytes_freed.bytes(), 0u);

  compress::RecoveryPolicy strict;
  strict.fail_on_any_loss = true;
  const auto restored = rig.store.restore(2, strict);
  ASSERT_TRUE(restored.has_value()) << restored.status().message();
  expect_identical(restored->field, reference(gen2, rig.opts.checkpoint));
  EXPECT_FALSE(rig.store.restore(1).has_value());
}

TEST(IncrementalStoreTest, RedumpAfterGcRewritesCollectedObjects) {
  Rig rig;
  const auto gen1 = ramp_field();
  const auto gen2 = touch(gen1, 0, kChunk, 0.5F);
  ASSERT_TRUE(rig.store.dump(gen1).has_value());
  ASSERT_TRUE(rig.store.dump(gen2).has_value());
  ASSERT_TRUE(rig.store.drop_generation(1).is_ok());
  ASSERT_TRUE(rig.store.gc().has_value());

  // Gen 1's slab-0 object is gone; dumping gen 1's content again must
  // RE-WRITE it (the index forgot it), not reference the deleted file.
  const auto redump = rig.store.dump(gen1);
  ASSERT_TRUE(redump.has_value());
  EXPECT_EQ(redump->dirty_slabs, 1u);
  EXPECT_EQ(redump->written_slabs, 1u);
  compress::RecoveryPolicy strict;
  strict.fail_on_any_loss = true;
  const auto restored = rig.store.restore(3, strict);
  ASSERT_TRUE(restored.has_value()) << restored.status().message();
  expect_identical(restored->field, reference(gen1, rig.opts.checkpoint));
}

TEST(IncrementalStoreTest, DumpFailsClosedBelowWriteQuorum) {
  Rig rig;
  rig.replicas.set_replica_down(0, true);
  rig.replicas.set_replica_down(1, true);
  const auto summary = rig.store.dump(ramp_field());
  ASSERT_FALSE(summary.has_value());
  EXPECT_EQ(summary.status().code(), ErrorCode::kUnavailable);
  // The generation was never published: nothing to restore.
  EXPECT_FALSE(rig.store.restore_latest().has_value());
}

TEST(IncrementalStoreTest, JournalQuorumRequiredForRestore) {
  Rig rig;
  ASSERT_TRUE(rig.store.dump(ramp_field()).has_value());
  rig.replicas.set_replica_down(0, true);
  rig.replicas.set_replica_down(1, true);
  // One readable journal copy < quorum 2: fail closed, not stale data.
  const auto restored = rig.store.restore(1);
  ASSERT_FALSE(restored.has_value());
  EXPECT_EQ(restored.status().code(), ErrorCode::kUnavailable);
}

TEST(IncrementalStoreTest, StaleReplicaJournalLosesToFresherQuorum) {
  Rig rig;
  const auto gen1 = ramp_field();
  const auto gen2 = touch(gen1, 0, kChunk, 0.5F);
  ASSERT_TRUE(rig.store.dump(gen1).has_value());
  // Replica 2 sleeps through generation 2 and the drop of generation 1.
  rig.replicas.set_replica_down(2, true);
  ASSERT_TRUE(rig.store.dump(gen2).has_value());
  ASSERT_TRUE(rig.store.drop_generation(1).is_ok());
  rig.replicas.set_replica_down(2, false);
  // Replica 2 still holds the epoch-1 journal listing generation 1 only;
  // the two fresh copies outvote it by epoch, not by luck.
  const auto restored = rig.store.restore_latest();
  ASSERT_TRUE(restored.has_value()) << restored.status().message();
  EXPECT_EQ(restored->generation, 2u);
  EXPECT_FALSE(rig.store.restore(1).has_value());
}

TEST(IncrementalStoreTest, FailedJournalPublishNeverDestroysCommittedState) {
  Rig rig;
  const auto gen1 = ramp_field();
  ASSERT_TRUE(rig.store.dump(gen1).has_value());

  // Persistent client-path outage on replicas 1 and 2. Server-side
  // removes still work, so a remove-then-write journal replace would
  // destroy the committed journal everywhere and land the replacement on
  // a single replica — below quorum, losing every published generation.
  io::FaultPlan outage;
  outage.episodes.push_back({io::FaultKind::kServerUnavailable, 0, 1u << 20,
                             io::kFaultPersistsForever});
  io::FaultInjector inj1{outage};
  io::FaultInjector inj2{outage};
  rig.replicas.attach_fault_injector(1, &inj1);
  rig.replicas.attach_fault_injector(2, &inj2);

  // A clean redump writes no slabs: the journal publish is the only
  // write, and it must miss quorum.
  const auto failed = rig.store.dump(gen1);
  ASSERT_FALSE(failed.has_value());
  EXPECT_EQ(failed.status().code(), ErrorCode::kUnavailable);

  rig.replicas.attach_fault_injector(1, nullptr);
  rig.replicas.attach_fault_injector(2, nullptr);

  // The committed generation survived the failed replace bit-for-bit...
  compress::RecoveryPolicy strict;
  strict.fail_on_any_loss = true;
  const auto restored = rig.store.restore_latest(strict);
  ASSERT_TRUE(restored.has_value()) << restored.status().message();
  EXPECT_EQ(restored->generation, 1u);
  expect_identical(restored->field, reference(gen1, rig.opts.checkpoint));
  // ...and the failed dump was rolled back, not half-published.
  EXPECT_FALSE(rig.store.restore(2).has_value());
}

TEST(IncrementalStoreTest, RetriedDumpAfterFailedJournalPublishSucceeds) {
  Rig rig;
  const auto gen1 = ramp_field();
  ASSERT_TRUE(rig.store.dump(gen1).has_value());

  io::FaultPlan outage;
  outage.episodes.push_back({io::FaultKind::kServerUnavailable, 0, 1u << 20,
                             io::kFaultPersistsForever});
  io::FaultInjector inj1{outage};
  io::FaultInjector inj2{outage};
  rig.replicas.attach_fault_injector(1, &inj1);
  rig.replicas.attach_fault_injector(2, &inj2);
  ASSERT_FALSE(rig.store.dump(gen1).has_value());
  rig.replicas.attach_fault_injector(1, nullptr);
  rig.replicas.attach_fault_injector(2, nullptr);

  // The retry must publish under a fresh epoch: an epoch reused from the
  // failed attempt could fork against copies that acked it.
  const auto gen2 = touch(gen1, 0, kChunk, 0.5F);
  const auto summary = rig.store.dump(gen2);
  ASSERT_TRUE(summary.has_value()) << summary.status().message();
  EXPECT_EQ(summary->generation, 2u);

  // A second store instance merges the replicas without seeing a fork.
  IncrementalCheckpointStore second{rig.replicas, rig.opts};
  ASSERT_TRUE(second.open().is_ok());
  EXPECT_EQ(second.generations(), (std::vector<std::uint64_t>{1, 2}));
  compress::RecoveryPolicy strict;
  strict.fail_on_any_loss = true;
  const auto restored = second.restore(2, strict);
  ASSERT_TRUE(restored.has_value()) << restored.status().message();
  expect_identical(restored->field, reference(gen2, rig.opts.checkpoint));
}

TEST(IncrementalStoreTest, FreshStoreVerdictRequiresAbsenceQuorum) {
  Rig rig;
  rig.replicas.set_replica_down(1, true);
  rig.replicas.set_replica_down(2, true);
  // One live, journal-less replica cannot prove the store is fresh: the
  // down replicas may hold committed generations. Everything fails
  // closed instead of restarting the store at epoch 1.
  EXPECT_EQ(rig.store.open().code(), ErrorCode::kUnavailable);
  const auto restored = rig.store.restore_latest();
  ASSERT_FALSE(restored.has_value());
  EXPECT_EQ(restored.status().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(rig.store.dump(ramp_field()).has_value());

  // With every replica reachable the absence quorum is met: genuinely
  // fresh, and the first dump proceeds.
  rig.replicas.set_replica_down(1, false);
  rig.replicas.set_replica_down(2, false);
  EXPECT_TRUE(rig.store.open().is_ok());
  EXPECT_TRUE(rig.store.dump(ramp_field()).has_value());
}

TEST(IncrementalStoreTest, DropOfNewestGenerationNeverReusesItsNumber) {
  Rig rig;
  const auto gen1 = ramp_field();
  const auto gen2 = touch(gen1, 0, kChunk, 0.5F);
  ASSERT_TRUE(rig.store.dump(gen1).has_value());
  // Replica 2 sleeps through generation 2, its drop, and the follow-up.
  rig.replicas.set_replica_down(2, true);
  ASSERT_TRUE(rig.store.dump(gen2).has_value());
  ASSERT_TRUE(rig.store.drop_generation(2).is_ok());
  const auto gen3 = touch(gen1, kChunk, kChunk, -0.25F);
  const auto summary = rig.store.dump(gen3);
  ASSERT_TRUE(summary.has_value());
  // The replacement takes number 3, not 2: replica 2 still holds an
  // entry for generation 2, and a reused number would fork against it.
  EXPECT_EQ(summary->generation, 3u);

  rig.replicas.set_replica_down(2, false);
  const auto latest = rig.store.restore_latest();
  ASSERT_TRUE(latest.has_value()) << latest.status().message();
  EXPECT_EQ(latest->generation, 3u);
  expect_identical(latest->field, reference(gen3, rig.opts.checkpoint));
  EXPECT_FALSE(rig.store.restore(2).has_value());
}

TEST(IncrementalStoreTest, EmptyStoreRestoreIsTypedError) {
  Rig rig;
  const auto restored = rig.store.restore_latest();
  ASSERT_FALSE(restored.has_value());
  EXPECT_EQ(restored.status().code(), ErrorCode::kInvalidArgument);
}

TEST(IncrementalStoreTest, DumpValidatesInput) {
  Rig rig;
  const data::Field empty{"e", data::Dims::d1(1), std::vector<float>{1.0F}};
  IncrementalStoreOptions bad = rig.opts;
  bad.checkpoint.chunk_elements = 0;
  IncrementalCheckpointStore store{rig.replicas, bad};
  EXPECT_FALSE(store.dump(empty).has_value());
}

}  // namespace
}  // namespace lcp::core
