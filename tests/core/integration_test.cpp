// End-to-end integration: the full paper pipeline at CI scale —
// generate -> compress -> ship over NFS -> decompress on the far side;
// and study -> regress -> derive rule -> apply -> savings in band.

#include <gtest/gtest.h>

#include "compress/common/metrics.hpp"
#include "compress/common/registry.hpp"
#include "core/dump_experiment.hpp"
#include "core/model_tables.hpp"
#include "core/validation_study.hpp"
#include "data/registry.hpp"
#include "io/nfs_client.hpp"
#include "tuning/rule.hpp"

namespace lcp {
namespace {

TEST(IntegrationTest, CompressShipDecompressPreservesBound) {
  // The actual data path of the paper's use case, bytes really moving.
  const auto field = data::generate_nyx(24, 99);
  const auto codec = compress::make_compressor(compress::CodecId::kSz);
  const double eb =
      static_cast<double>(field.value_range().span()) * 1e-4;
  auto compressed = codec->compress(field, compress::ErrorBound::absolute(eb));
  ASSERT_TRUE(compressed.has_value());

  io::NfsServer server;
  io::NfsClient client{server};
  ASSERT_TRUE(client.write_file("/dump/nyx.sz", compressed->container).is_ok());
  EXPECT_EQ(server.total_bytes_stored().bytes(),
            compressed->container.size());

  const auto stored = server.read_file("/dump/nyx.sz");
  ASSERT_TRUE(stored.has_value());
  auto decoded = compress::decompress_any(*stored);
  ASSERT_TRUE(decoded.has_value());
  const auto err = data::compare_fields(field, decoded->field);
  ASSERT_TRUE(err.has_value());
  EXPECT_LE(err->max_abs_error, eb * (1 + 1e-6));
}

TEST(IntegrationTest, StudyToRuleToSavingsPipeline) {
  // 1. Run a reduced compression study.
  core::CompressionStudyConfig study_cfg;
  study_cfg.repeats = 3;
  study_cfg.error_bounds = {1e-2};
  study_cfg.datasets = {data::DatasetId::kNyx};
  study_cfg.noise = power::NoiseModel::none();
  const auto study = core::run_compression_study(study_cfg);
  ASSERT_TRUE(study.has_value());

  // 2. Regress the Table IV models.
  const auto rows = core::build_compression_models(*study);
  ASSERT_TRUE(rows.has_value());
  const auto& bdw_fit = (*rows)[3].fit;

  // 3. Derive a tuning rule from the Broadwell fit.
  const double fraction = tuning::derive_fraction(
      bdw_fit, power::chip(power::ChipId::kBroadwellD1548).f_max, 0.53);
  EXPECT_GT(fraction, 0.5);
  EXPECT_LE(fraction, 1.0);

  // 4. Apply the derived rule to the dump experiment and verify savings.
  core::DumpConfig dump_cfg;
  dump_cfg.error_bounds = {1e-2};
  dump_cfg.rule = tuning::TuningRule{fraction, fraction};
  const auto dump = core::run_dump_experiment(dump_cfg);
  ASSERT_TRUE(dump.has_value());
  EXPECT_GT(dump->outcomes[0].plan.energy_savings(), 0.0);
}

TEST(IntegrationTest, ValidationUsesModelFromRealStudy) {
  // Fit on Table I data, validate on Isabel — exactly Section VI-A.
  core::CompressionStudyConfig study_cfg;
  study_cfg.repeats = 2;
  study_cfg.error_bounds = {1e-2};
  study_cfg.datasets = {data::DatasetId::kCesmAtm};
  study_cfg.chips = {power::ChipId::kBroadwellD1548};
  study_cfg.noise = power::NoiseModel::none();
  const auto study = core::run_compression_study(study_cfg);
  ASSERT_TRUE(study.has_value());
  const auto rows = core::build_compression_models(*study);
  ASSERT_TRUE(rows.has_value()) << rows.status().to_string();
  const core::ModelTableRow* bdw_row = nullptr;
  for (const auto& row : *rows) {
    if (row.partition.name == "Broadwell") {
      bdw_row = &row;
    }
  }
  ASSERT_NE(bdw_row, nullptr);

  core::ValidationConfig val_cfg;
  val_cfg.repeats = 2;
  val_cfg.noise = power::NoiseModel::none();
  const auto validation = core::run_validation_study(val_cfg, bdw_row->fit);
  ASSERT_TRUE(validation.has_value());
  // The model was fitted on this chip's physics; new datasets only change
  // workloads, not the scaled power curve, so transfer error is small.
  EXPECT_LT(validation->stats.rmse, 0.05);
}

TEST(IntegrationTest, HeadlineAverageSavingsBand) {
  // The 14.3%-average-savings claim, reproduced from the tuned stages of
  // compression and transit on both chips.
  double total_power_savings = 0.0;
  double total_runtime_increase = 0.0;
  int n = 0;
  for (power::ChipId id : power::all_chips()) {
    const auto& spec = power::chip(id);
    const auto comp =
        power::compression_workload(spec, Seconds{10.0}, 0.53, 1.0);
    const auto comp_report = tuning::evaluate_tuning(
        spec, comp, spec.f_max, spec.f_max * 0.875);
    total_power_savings += comp_report.power_savings();
    total_runtime_increase += comp_report.runtime_increase();
    ++n;

    const auto transit =
        io::transit_workload(spec, Bytes::from_gb(4), {});
    const auto transit_report = tuning::evaluate_tuning(
        spec, transit, spec.f_max, spec.f_max * 0.85);
    total_power_savings += transit_report.power_savings();
    total_runtime_increase += transit_report.runtime_increase();
    ++n;
  }
  const double mean_power_savings = total_power_savings / n;
  const double mean_runtime_increase = total_runtime_increase / n;
  // Paper: 14.3% average savings at +8.4% runtime. Allow a generous band
  // for the simulated substrate.
  EXPECT_GT(mean_power_savings, 0.06);
  EXPECT_LT(mean_power_savings, 0.25);
  EXPECT_GT(mean_runtime_increase, 0.02);
  EXPECT_LT(mean_runtime_increase, 0.15);
}

}  // namespace
}  // namespace lcp
