#include "core/compression_study.hpp"

#include <gtest/gtest.h>

namespace lcp::core {
namespace {

CompressionStudyConfig tiny_config() {
  CompressionStudyConfig cfg;
  cfg.repeats = 2;
  cfg.error_bounds = {1e-2};
  cfg.datasets = {data::DatasetId::kNyx};
  cfg.noise = power::NoiseModel::none();
  return cfg;
}

TEST(CodecProfileTest, SzBusierThanZfp) {
  const auto sz = codec_profile(compress::CodecId::kSz);
  const auto zfp = codec_profile(compress::CodecId::kZfp);
  EXPECT_GE(sz.activity, zfp.activity);
  EXPECT_GT(sz.cpu_fraction, 0.3);
  EXPECT_LT(sz.cpu_fraction, 0.8);
}

TEST(CalibrateCodecTest, ProducesRealMeasurements) {
  const auto cal = calibrate_codec(compress::CodecId::kSz,
                                   data::DatasetId::kNyx, 1e-2,
                                   data::Scale::kCi, 1);
  ASSERT_TRUE(cal.has_value()) << cal.status().to_string();
  EXPECT_GT(cal->native_seconds.seconds(), 0.0);
  EXPECT_GT(cal->compression_ratio, 1.0);
  EXPECT_LE(cal->max_abs_error, 1e-2 * (1 + 1e-6));
  EXPECT_GT(cal->input_bytes.bytes(), 0u);
}

TEST(CalibrateCodecTest, FinerBoundCostsMoreAndCompressesLess) {
  const auto coarse = calibrate_codec(compress::CodecId::kSz,
                                      data::DatasetId::kCesmAtm, 1e-1,
                                      data::Scale::kCi, 1);
  const auto fine = calibrate_codec(compress::CodecId::kSz,
                                    data::DatasetId::kCesmAtm, 1e-4,
                                    data::Scale::kCi, 1);
  ASSERT_TRUE(coarse.has_value());
  ASSERT_TRUE(fine.has_value());
  EXPECT_GT(coarse->compression_ratio, fine->compression_ratio);
}

TEST(WorkloadFromCalibrationTest, MapsToChip) {
  const auto cal = calibrate_codec(compress::CodecId::kZfp,
                                   data::DatasetId::kNyx, 1e-3,
                                   data::Scale::kCi, 1);
  ASSERT_TRUE(cal.has_value());
  const auto& spec = power::chip(power::ChipId::kBroadwellD1548);
  const auto w = workload_from_calibration(*cal, spec);
  EXPECT_GT(w.cpu_ghz_seconds, 0.0);
  EXPECT_GT(w.stall_seconds.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(w.activity,
                   codec_profile(compress::CodecId::kZfp).activity);
}

TEST(CompressionStudyTest, TinyStudyProducesFullGrid) {
  const auto result = run_compression_study(tiny_config());
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  // 2 codecs x 1 dataset x 1 bound calibrations.
  EXPECT_EQ(result->calibrations.size(), 2u);
  // x 2 chips series.
  EXPECT_EQ(result->series.size(), 4u);
  for (const auto& series : result->series) {
    const std::size_t expected =
        series.chip == power::ChipId::kBroadwellD1548 ? 25u : 29u;
    EXPECT_EQ(series.sweep.size(), expected);
  }
}

TEST(CompressionStudyTest, DefaultsExpandToPaperGrid) {
  // Don't run it (expensive); just verify the config expansion logic via a
  // restricted-but-defaulted call: bounds default to 4, chips to 2.
  CompressionStudyConfig cfg;
  cfg.repeats = 1;
  cfg.datasets = {data::DatasetId::kNyx};
  cfg.codecs = {compress::CodecId::kZfp};
  cfg.noise = power::NoiseModel::none();
  const auto result = run_compression_study(cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->calibrations.size(), 4u);  // four paper bounds
  EXPECT_EQ(result->series.size(), 8u);        // x two chips
}

TEST(CompressionStudyTest, DeterministicForSameSeed) {
  const auto a = run_compression_study(tiny_config());
  const auto b = run_compression_study(tiny_config());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->series.size(), b->series.size());
  for (std::size_t s = 0; s < a->series.size(); ++s) {
    // Native calibration times differ run to run (real wall clock), so
    // compare the deterministic parts: grid and ratios.
    EXPECT_EQ(a->series[s].sweep.size(), b->series[s].sweep.size());
    EXPECT_DOUBLE_EQ(a->calibrations[0].compression_ratio,
                     b->calibrations[0].compression_ratio);
  }
}

}  // namespace
}  // namespace lcp::core
