// Streaming dump engine: the wire contract is byte-identity with
// compress::write_checkpoint, so every existing checkpoint reader keeps
// working on streamed dumps. These tests pin that contract plus the
// pipeline mechanics (stats accounting, backpressure, error paths).

#include "core/streaming_dump.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "compress/common/checkpoint.hpp"
#include "compress/common/framing.hpp"
#include "data/generators.hpp"
#include "io/fault.hpp"
#include "io/nfs_client.hpp"
#include "support/thread_pool.hpp"

namespace lcp::core {
namespace {

data::Field make_field(std::size_t side = 24) {
  return data::generate_nyx(side, 42);
}

StreamingDumpConfig small_slabs(std::size_t chunk_elements = 2048) {
  StreamingDumpConfig cfg;
  cfg.checkpoint.codec = "sz";
  cfg.checkpoint.bound = compress::ErrorBound::absolute(1e-3);
  cfg.checkpoint.chunk_elements = chunk_elements;
  return cfg;
}

TEST(StreamingDumpTest, ServerBytesMatchWriteCheckpointExactly) {
  const auto field = make_field();
  const auto cfg = small_slabs();
  auto serial = compress::write_checkpoint(field, cfg.checkpoint);
  ASSERT_TRUE(serial.has_value()) << serial.status().to_string();

  io::NfsServer server;
  io::NfsClient client{server};
  ThreadPool pool{4};
  auto stats = streaming_dump(field, pool, client, "/ckpt/nyx", cfg);
  ASSERT_TRUE(stats.has_value()) << stats.status().to_string();

  auto stored = server.read_file("/ckpt/nyx");
  ASSERT_TRUE(stored.has_value()) << stored.status().to_string();
  ASSERT_EQ(stored->size(), serial->size());
  // bit-for-bit, header back-patch included
  EXPECT_TRUE(std::equal(stored->begin(), stored->end(), serial->begin()));
}

TEST(StreamingDumpTest, StreamedDumpDecodesThroughReadCheckpoint) {
  const auto field = make_field();
  const auto cfg = small_slabs();
  io::NfsServer server;
  io::NfsClient client{server};
  ThreadPool pool{4};
  auto stats = streaming_dump(field, pool, client, "/ckpt/rt", cfg);
  ASSERT_TRUE(stats.has_value()) << stats.status().to_string();

  auto stored = server.read_file("/ckpt/rt");
  ASSERT_TRUE(stored.has_value());
  auto back = compress::read_checkpoint(*stored);
  ASSERT_TRUE(back.has_value()) << back.status().to_string();
  EXPECT_EQ(back->name(), field.name());
  EXPECT_EQ(back->dims(), field.dims());
  const auto a = field.values();
  const auto b = back->values();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], 1e-3) << i;
  }
}

TEST(StreamingDumpTest, StatsAccountForEverySlabAndByte) {
  const auto field = make_field();
  const auto cfg = small_slabs();
  const std::size_t slabs =
      compress::checkpoint_slab_count(field, cfg.checkpoint);
  ASSERT_GT(slabs, 1u);

  io::NfsServer server;
  io::NfsClient client{server};
  ThreadPool pool{2};
  auto stats = streaming_dump(field, pool, client, "/ckpt/stats", cfg);
  ASSERT_TRUE(stats.has_value()) << stats.status().to_string();

  EXPECT_EQ(stats->slabs, slabs);
  EXPECT_EQ(stats->queue_pushes, slabs);
  // manifest + slabs + trailing manifest replica
  EXPECT_EQ(stats->frame_chunks, slabs + 2);
  EXPECT_EQ(stats->input_bytes.bytes(), field.size_bytes().bytes());
  // The placeholder header is the only wire overhead beyond the frame:
  // stored size + the kFrameHeaderBytes zeros overwritten at the end.
  auto stored = server.read_file("/ckpt/stats");
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stats->wire_bytes.bytes(),
            stored->size() + compress::kFrameHeaderBytes);
  EXPECT_LT(stats->payload_bytes.bytes(), stats->wire_bytes.bytes());

  ASSERT_EQ(stats->slab_seconds.size(), slabs);
  double sum = 0.0;
  for (const Seconds s : stats->slab_seconds) {
    EXPECT_GT(s.seconds(), 0.0);
    sum += s.seconds();
  }
  EXPECT_DOUBLE_EQ(stats->compress_seconds.seconds(), sum);
  EXPECT_GT(stats->wall_seconds.seconds(), 0.0);
  EXPECT_GE(stats->write_seconds.seconds(), 0.0);
}

TEST(StreamingDumpTest, TinyQueueBackpressureStillProducesIdenticalBytes) {
  const auto field = make_field();
  auto cfg = small_slabs(1024);  // more slabs than queue slots
  cfg.queue_capacity = 1;
  auto serial = compress::write_checkpoint(field, cfg.checkpoint);
  ASSERT_TRUE(serial.has_value());

  io::NfsServer server;
  io::NfsClient client{server};
  ThreadPool pool{4};
  auto stats = streaming_dump(field, pool, client, "/ckpt/bp", cfg);
  ASSERT_TRUE(stats.has_value()) << stats.status().to_string();
  auto stored = server.read_file("/ckpt/bp");
  ASSERT_TRUE(stored.has_value());
  ASSERT_EQ(stored->size(), serial->size());
  EXPECT_TRUE(std::equal(stored->begin(), stored->end(), serial->begin()));
}

TEST(StreamingDumpTest, SingleSlabFieldStreams) {
  auto cfg = small_slabs();
  cfg.checkpoint.chunk_elements = 1 << 20;  // whole field in one slab
  const auto field = make_field(12);
  io::NfsServer server;
  io::NfsClient client{server};
  ThreadPool pool{1};
  auto stats = streaming_dump(field, pool, client, "/ckpt/one", cfg);
  ASSERT_TRUE(stats.has_value()) << stats.status().to_string();
  EXPECT_EQ(stats->slabs, 1u);
  EXPECT_EQ(stats->frame_chunks, 3u);

  auto serial = compress::write_checkpoint(field, cfg.checkpoint);
  ASSERT_TRUE(serial.has_value());
  auto stored = server.read_file("/ckpt/one");
  ASSERT_TRUE(stored.has_value());
  ASSERT_EQ(stored->size(), serial->size());
  EXPECT_TRUE(std::equal(stored->begin(), stored->end(), serial->begin()));
}

TEST(StreamingDumpTest, RejectsZeroQueueCapacity) {
  auto cfg = small_slabs();
  cfg.queue_capacity = 0;
  io::NfsServer server;
  io::NfsClient client{server};
  ThreadPool pool{1};
  const auto stats =
      streaming_dump(make_field(12), pool, client, "/ckpt/zq", cfg);
  EXPECT_FALSE(stats.has_value());
}

TEST(StreamingDumpTest, RejectsUnknownCodec) {
  auto cfg = small_slabs();
  cfg.checkpoint.codec = "no-such-codec";
  io::NfsServer server;
  io::NfsClient client{server};
  ThreadPool pool{1};
  const auto stats =
      streaming_dump(make_field(12), pool, client, "/ckpt/uc", cfg);
  EXPECT_FALSE(stats.has_value());
}

TEST(StreamingDumpTest, ProducerFailureAbortsPipelineWithRealError) {
  // A NaN poisons one slab: its compressor rejects non-finite input, the
  // producer closes the queue, the writer unwinds, and the caller sees
  // the compressor's status (not a hang, not a generic internal error).
  auto field = make_field();
  field.mutable_values()[field.element_count() / 2] =
      std::numeric_limits<float>::quiet_NaN();

  io::NfsServer server;
  io::NfsClient client{server};
  ThreadPool pool{4};
  const auto stats =
      streaming_dump(field, pool, client, "/ckpt/nan", small_slabs());
  ASSERT_FALSE(stats.has_value());
  EXPECT_NE(stats.status().to_string().find("finite"), std::string::npos)
      << stats.status().to_string();
}

TEST(StreamingDumpTest, ServerDownMidStreamSurfacesTypedStatus) {
  // The server dies partway through the stream and never comes back. The
  // writer thread must unwind with the client's typed retry-exhaustion
  // status — a silent truncation would leave a file that decodes to a
  // short field, which is the one failure a checkpoint must never have.
  const auto field = make_field();
  const auto cfg = small_slabs(1024);

  io::FaultPlan plan;
  plan.episodes.push_back({io::FaultKind::kServerUnavailable,
                           /*first_rpc=*/3, /*rpc_count=*/1u << 20,
                           io::kFaultPersistsForever});
  io::FaultInjector injector{plan};
  io::NfsServer server;
  io::NfsClient client{server};
  client.attach_fault_injector(&injector);
  ThreadPool pool{4};
  const auto stats =
      streaming_dump(field, pool, client, "/ckpt/down", cfg);
  ASSERT_FALSE(stats.has_value());
  EXPECT_EQ(stats.status().code(), ErrorCode::kUnavailable);
  EXPECT_GT(client.retry_stats().rejections, 0u);
  // Whatever partial bytes reached the server must not decode as a
  // complete checkpoint (the frame header back-patch never happened).
  if (server.has_file("/ckpt/down")) {
    const auto stored = server.read_file("/ckpt/down");
    ASSERT_TRUE(stored.has_value());
    EXPECT_FALSE(compress::read_checkpoint(*stored).has_value());
  }
}

TEST(StreamingDumpTest, TransientMidStreamOutageRidesRetries) {
  // Same outage window, but it clears after two failed attempts per RPC:
  // backoff absorbs it and the wire bytes stay identical to the serial
  // write_checkpoint path.
  const auto field = make_field();
  const auto cfg = small_slabs(1024);
  auto serial = compress::write_checkpoint(field, cfg.checkpoint);
  ASSERT_TRUE(serial.has_value());

  io::FaultPlan plan;
  plan.episodes.push_back({io::FaultKind::kServerUnavailable,
                           /*first_rpc=*/3, /*rpc_count=*/4,
                           /*persist_attempts=*/2});
  io::FaultInjector injector{plan};
  io::NfsServer server;
  io::NfsClient client{server};
  client.attach_fault_injector(&injector);
  ThreadPool pool{4};
  const auto stats =
      streaming_dump(field, pool, client, "/ckpt/blip", cfg);
  ASSERT_TRUE(stats.has_value()) << stats.status().to_string();
  EXPECT_GE(client.retry_stats().retries, 1u);

  const auto stored = server.read_file("/ckpt/blip");
  ASSERT_TRUE(stored.has_value());
  ASSERT_EQ(stored->size(), serial->size());
  EXPECT_TRUE(std::equal(stored->begin(), stored->end(), serial->begin()));
}

}  // namespace
}  // namespace lcp::core
