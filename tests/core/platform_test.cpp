#include "core/platform.hpp"

#include <gtest/gtest.h>

namespace lcp::core {
namespace {

using power::ChipId;

power::Workload test_workload() {
  power::Workload w;
  w.cpu_ghz_seconds = 2.0;
  w.stall_seconds = Seconds{0.5};
  w.activity = 1.0;
  return w;
}

TEST(PlatformTest, RunsAtGovernorFrequency) {
  Platform p{ChipId::kBroadwellD1548, power::NoiseModel::none(), 1};
  const auto w = test_workload();
  const auto at_max = p.run(w);
  ASSERT_TRUE(p.governor().set_frequency(GigaHertz{1.0}).is_ok());
  const auto at_low = p.run(w);
  EXPECT_GT(at_low.runtime.seconds(), at_max.runtime.seconds());
}

TEST(PlatformTest, RunAtPinsFrequency) {
  Platform p{ChipId::kSkylake4114, power::NoiseModel::none(), 2};
  const auto m = p.run_at(test_workload(), GigaHertz{1.5});
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(p.governor().current().ghz(), 1.5);
}

TEST(PlatformTest, RunAtRejectsOutOfRange) {
  Platform p{ChipId::kBroadwellD1548, power::NoiseModel::none(), 3};
  EXPECT_FALSE(p.run_at(test_workload(), GigaHertz{3.5}).has_value());
}

TEST(PlatformTest, RepeatsProduceRequestedCount) {
  Platform p{ChipId::kBroadwellD1548, power::NoiseModel{}, 4};
  const auto samples = p.run_repeats(test_workload(), 10);
  EXPECT_EQ(samples.size(), 10u);
}

TEST(PlatformTest, PackageCounterGrowsWithUse) {
  Platform p{ChipId::kBroadwellD1548, power::NoiseModel::none(), 5};
  const double before = p.package_counter().total().joules();
  (void)p.run(test_workload());
  EXPECT_GT(p.package_counter().total().joules(), before);
}

TEST(PlatformTest, SpecMatchesRequestedChip) {
  Platform p{ChipId::kSkylake4114, power::NoiseModel::none(), 6};
  EXPECT_EQ(p.spec().series, "Skylake");
}

}  // namespace
}  // namespace lcp::core
