#include "core/sweep.hpp"

#include <gtest/gtest.h>

namespace lcp::core {
namespace {

using power::ChipId;

power::Workload compression_like(const power::ChipSpec& spec) {
  return power::compression_workload(spec, Seconds{5.0}, 0.53, 1.0);
}

TEST(SweepTest, CoversTheFullGrid) {
  Platform p{ChipId::kBroadwellD1548, power::NoiseModel::none(), 1};
  const auto sweep = frequency_sweep(p, compression_like(p.spec()), 3);
  EXPECT_EQ(sweep.size(), 25u);  // Broadwell grid
  EXPECT_DOUBLE_EQ(sweep.front().frequency.ghz(), 0.8);
  EXPECT_DOUBLE_EQ(sweep.back().frequency.ghz(), 2.0);
  for (const auto& point : sweep) {
    EXPECT_EQ(point.power_w.count, 3u);
    EXPECT_GT(point.power_w.mean, 0.0);
    EXPECT_GT(point.runtime_s.mean, 0.0);
    EXPECT_GT(point.energy_j.mean, 0.0);
  }
}

TEST(SweepTest, GovernorRestoredAfterSweep) {
  Platform p{ChipId::kBroadwellD1548, power::NoiseModel::none(), 2};
  (void)frequency_sweep(p, compression_like(p.spec()), 1);
  EXPECT_DOUBLE_EQ(p.governor().current().ghz(), p.spec().f_max.ghz());
}

TEST(SweepTest, NoiselessRuntimeDecreasesWithFrequency) {
  Platform p{ChipId::kBroadwellD1548, power::NoiseModel::none(), 3};
  const auto sweep = frequency_sweep(p, compression_like(p.spec()), 1);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i].runtime_s.mean, sweep[i - 1].runtime_s.mean);
  }
}

TEST(SweepTest, NoisyRepeatsProduceConfidenceIntervals) {
  Platform p{ChipId::kSkylake4114, power::NoiseModel{}, 4};
  const auto sweep = frequency_sweep(p, compression_like(p.spec()), 10);
  std::size_t nonzero_ci = 0;
  for (const auto& point : sweep) {
    nonzero_ci += point.power_w.ci95_half > 0.0 ? 1 : 0;
  }
  EXPECT_EQ(nonzero_ci, sweep.size());
}

TEST(ScaleTest, ScaledPowerIsOneAtMaxFrequency) {
  Platform p{ChipId::kBroadwellD1548, power::NoiseModel::none(), 5};
  const auto sweep = frequency_sweep(p, compression_like(p.spec()), 1);
  const auto curve = scale_by_max_frequency(sweep, SweepMetric::kPower);
  EXPECT_DOUBLE_EQ(curve.value.back(), 1.0);
  EXPECT_EQ(curve.f_ghz.size(), sweep.size());
}

TEST(ScaleTest, CompressionScaledPowerFloorMatchesFigureOne) {
  Platform p{ChipId::kBroadwellD1548, power::NoiseModel::none(), 6};
  const auto sweep = frequency_sweep(p, compression_like(p.spec()), 1);
  const auto curve = scale_by_max_frequency(sweep, SweepMetric::kPower);
  // Fig 1: floor around 0.8 at f_min.
  EXPECT_GT(curve.value.front(), 0.72);
  EXPECT_LT(curve.value.front(), 0.88);
}

TEST(ScaleTest, ScaledRuntimeRisesTowardLowFrequency) {
  Platform p{ChipId::kBroadwellD1548, power::NoiseModel::none(), 7};
  const auto sweep = frequency_sweep(p, compression_like(p.spec()), 1);
  const auto curve = scale_by_max_frequency(sweep, SweepMetric::kRuntime);
  EXPECT_DOUBLE_EQ(curve.value.back(), 1.0);
  // Fig 2: ~1.6-2.0x at f_min for a half-cpu-bound workload.
  EXPECT_GT(curve.value.front(), 1.4);
  EXPECT_LT(curve.value.front(), 2.2);
}

TEST(ScaleTest, EnergyMetricScalesToo) {
  Platform p{ChipId::kSkylake4114, power::NoiseModel::none(), 8};
  const auto sweep = frequency_sweep(p, compression_like(p.spec()), 1);
  const auto curve = scale_by_max_frequency(sweep, SweepMetric::kEnergy);
  EXPECT_DOUBLE_EQ(curve.value.back(), 1.0);
  // Somewhere in the interior energy dips below the f_max value.
  bool dips = false;
  for (double v : curve.value) {
    dips |= v < 0.99;
  }
  EXPECT_TRUE(dips);
}

TEST(SweepTest, ParallelSweepIsBitIdenticalToSequential) {
  // Same seed, noisy model: every summary statistic must match exactly
  // because each grid point draws from its own index-keyed noise stream.
  const auto run = [](ThreadPool* pool) {
    Platform p{ChipId::kSkylake4114, power::NoiseModel{}, 42};
    SweepOptions options;
    options.repeats = 10;
    options.pool = pool;
    auto sweep = frequency_sweep(p, compression_like(p.spec()), options);
    return std::pair{sweep, p.package_counter().total().joules()};
  };

  const auto [sequential, seq_energy] = run(nullptr);
  ThreadPool pool{5};
  const auto [parallel, par_energy] = run(&pool);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const auto& s = sequential[i];
    const auto& q = parallel[i];
    EXPECT_EQ(q.frequency.ghz(), s.frequency.ghz());
    for (auto pick : {&SweepPoint::power_w, &SweepPoint::runtime_s,
                      &SweepPoint::energy_j}) {
      EXPECT_EQ((q.*pick).mean, (s.*pick).mean) << i;
      EXPECT_EQ((q.*pick).stddev, (s.*pick).stddev) << i;
      EXPECT_EQ((q.*pick).ci95_half, (s.*pick).ci95_half) << i;
      EXPECT_EQ((q.*pick).count, (s.*pick).count) << i;
    }
  }
  EXPECT_EQ(par_energy, seq_energy);
}

TEST(SweepTest, OptionsOverloadMatchesRepeatsOverload) {
  Platform a{ChipId::kBroadwellD1548, power::NoiseModel{}, 9};
  Platform b{ChipId::kBroadwellD1548, power::NoiseModel{}, 9};
  const auto via_repeats = frequency_sweep(a, compression_like(a.spec()), 4);
  SweepOptions options;
  options.repeats = 4;
  const auto via_options =
      frequency_sweep(b, compression_like(b.spec()), options);
  ASSERT_EQ(via_repeats.size(), via_options.size());
  for (std::size_t i = 0; i < via_repeats.size(); ++i) {
    EXPECT_EQ(via_repeats[i].power_w.mean, via_options[i].power_w.mean) << i;
  }
}

}  // namespace
}  // namespace lcp::core
