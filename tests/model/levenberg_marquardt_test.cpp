#include "model/levenberg_marquardt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace lcp::model {
namespace {

TEST(SolveDenseTest, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
  std::vector<double> a = {2, 1, 1, 3};
  std::vector<double> b = {5, 10};
  ASSERT_TRUE(solve_dense(a, b, 2));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(SolveDenseTest, PivotsOnZeroDiagonal) {
  // [0 1; 1 0] x = [2; 3] needs the row swap.
  std::vector<double> a = {0, 1, 1, 0};
  std::vector<double> b = {2, 3};
  ASSERT_TRUE(solve_dense(a, b, 2));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(SolveDenseTest, DetectsSingularSystem) {
  std::vector<double> a = {1, 2, 2, 4};
  std::vector<double> b = {1, 2};
  EXPECT_FALSE(solve_dense(a, b, 2));
}

TEST(LmFitTest, RecoversLinearModelExactly) {
  // y = 3x + 2 observed without noise.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i * 0.5);
    y.push_back(3.0 * i * 0.5 + 2.0);
  }
  const ModelFn model = [&x](std::span<const double> p, std::size_t i) {
    return p[0] * x[i] + p[1];
  };
  const std::vector<double> initial = {0.0, 0.0};
  const auto result = lm_fit(model, y, initial);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->params[0], 3.0, 1e-6);
  EXPECT_NEAR(result->params[1], 2.0, 1e-6);
  EXPECT_LT(result->sse, 1e-10);
}

TEST(LmFitTest, RecoversExponentialDecay) {
  // y = 5 exp(-0.7 x) + noiseless.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(i * 0.2);
    y.push_back(5.0 * std::exp(-0.7 * x.back()));
  }
  const ModelFn model = [&x](std::span<const double> p, std::size_t i) {
    return p[0] * std::exp(p[1] * x[i]);
  };
  const std::vector<double> initial = {1.0, -0.1};
  const auto result = lm_fit(model, y, initial);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->params[0], 5.0, 1e-4);
  EXPECT_NEAR(result->params[1], -0.7, 1e-4);
}

TEST(LmFitTest, NoisyDataStillCloseToTruth) {
  Rng rng{1};
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(0.8 + i * 0.007);
    y.push_back(2.0 * x.back() * x.back() + 1.0 + rng.normal(0.0, 0.01));
  }
  const ModelFn model = [&x](std::span<const double> p, std::size_t i) {
    return p[0] * x[i] * x[i] + p[1];
  };
  const std::vector<double> initial = {1.0, 0.0};
  const auto result = lm_fit(model, y, initial);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->params[0], 2.0, 0.05);
  EXPECT_NEAR(result->params[1], 1.0, 0.05);
}

TEST(LmFitTest, RespectsParameterBounds) {
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  const ModelFn model = [](std::span<const double> p, std::size_t i) {
    return p[0] * static_cast<double>(i + 1);
  };
  LmOptions options;
  options.lower = {2.5};
  options.upper = {10.0};
  const std::vector<double> initial = {3.0};
  const auto result = lm_fit(model, y, initial, options);
  ASSERT_TRUE(result.has_value());
  // Unconstrained optimum is 1.0; the bound pins it at 2.5.
  EXPECT_NEAR(result->params[0], 2.5, 1e-9);
}

TEST(LmFitTest, RejectsEmptyAndUnderdeterminedInputs) {
  const ModelFn model = [](std::span<const double> p, std::size_t) {
    return p[0];
  };
  const std::vector<double> empty;
  const std::vector<double> one_param = {1.0};
  EXPECT_FALSE(lm_fit(model, empty, one_param).has_value());
  const std::vector<double> one_obs = {1.0};
  const std::vector<double> two_params = {1.0, 2.0};
  EXPECT_FALSE(lm_fit(model, one_obs, two_params).has_value());
}

TEST(LmFitTest, AlreadyOptimalStartTerminatesQuickly) {
  std::vector<double> y = {2.0, 4.0, 6.0};
  const ModelFn model = [](std::span<const double> p, std::size_t i) {
    return p[0] * static_cast<double>(i + 1);
  };
  const std::vector<double> initial = {2.0};
  const auto result = lm_fit(model, y, initial);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_LT(result->sse, 1e-20);
  EXPECT_LE(result->iterations, 3u);
}

}  // namespace
}  // namespace lcp::model
