#include "model/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace lcp::model {
namespace {

struct Synth {
  std::vector<double> f;
  std::vector<double> p;
  PowerLawFit fit;
};

Synth make_synth(double noise, std::uint64_t seed) {
  Rng rng{seed};
  Synth s;
  s.fit.a = 0.0064;
  s.fit.b = 5.315;
  s.fit.c = 0.7429;
  for (double x = 0.8; x <= 2.0001; x += 0.05) {
    s.f.push_back(x);
    s.p.push_back(s.fit.evaluate(x) + rng.normal(0.0, noise));
  }
  return s;
}

TEST(ConfidenceTest, NoiselessFitHasVanishingIntervals) {
  const auto s = make_synth(0.0, 1);
  const auto ci = power_law_confidence(s.fit, s.f, s.p);
  ASSERT_TRUE(ci.has_value()) << ci.status().to_string();
  EXPECT_LT(ci->residual_stddev, 1e-12);
  EXPECT_LT(ci->b_half, 1e-9);
  EXPECT_LT(ci->c_half, 1e-9);
}

TEST(ConfidenceTest, IntervalsScaleWithNoise) {
  const auto lo = make_synth(0.005, 2);
  const auto hi = make_synth(0.05, 2);
  const auto ci_lo = power_law_confidence(lo.fit, lo.f, lo.p);
  const auto ci_hi = power_law_confidence(hi.fit, hi.f, hi.p);
  ASSERT_TRUE(ci_lo.has_value());
  ASSERT_TRUE(ci_hi.has_value());
  EXPECT_GT(ci_hi->b_half, ci_lo->b_half * 3.0);
  EXPECT_GT(ci_hi->residual_stddev, ci_lo->residual_stddev * 3.0);
}

TEST(ConfidenceTest, TrueParametersInsideIntervalsMostOfTheTime) {
  // Coverage check: refit-free approximation — evaluate intervals at the
  // true parameters against noisy data; the residual stddev should match
  // the injected noise and the intervals should cover zero-bias usage.
  int covered = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    auto s = make_synth(0.01, 100 + static_cast<std::uint64_t>(t));
    // Fit fresh so the estimate differs from truth by a random amount.
    auto fit = fit_power_law(s.f, s.p);
    ASSERT_TRUE(fit.has_value());
    const auto ci = power_law_confidence(*fit, s.f, s.p);
    ASSERT_TRUE(ci.has_value());
    if (std::fabs(fit->c - 0.7429) <= ci->c_half) {
      ++covered;
    }
  }
  // 95% nominal; allow wide slack for the small sample.
  EXPECT_GE(covered, trials * 2 / 3);
}

TEST(ConfidenceTest, ResidualStddevMatchesInjectedNoise) {
  const auto s = make_synth(0.02, 5);
  const auto fit = fit_power_law(s.f, s.p);
  ASSERT_TRUE(fit.has_value());
  const auto ci = power_law_confidence(*fit, s.f, s.p);
  ASSERT_TRUE(ci.has_value());
  EXPECT_NEAR(ci->residual_stddev, 0.02, 0.01);
}

TEST(ConfidenceTest, RejectsDegenerateInputs) {
  PowerLawFit fit;
  const std::vector<double> f3 = {1.0, 1.5, 2.0};
  const std::vector<double> p3 = {1.0, 1.1, 1.2};
  EXPECT_FALSE(power_law_confidence(fit, f3, p3).has_value());
  const std::vector<double> mismatched = {1.0, 2.0};
  EXPECT_FALSE(power_law_confidence(fit, f3, mismatched).has_value());
}

TEST(ConfidenceTest, SingularNormalMatrixFailsCleanly) {
  // With a = 0 the b column of the Jacobian is identically zero.
  PowerLawFit flat;
  flat.a = 0.0;
  flat.b = 2.0;
  flat.c = 0.9;
  std::vector<double> f;
  std::vector<double> p;
  for (double x = 0.8; x <= 2.0; x += 0.1) {
    f.push_back(x);
    p.push_back(0.9);
  }
  EXPECT_FALSE(power_law_confidence(flat, f, p).has_value());
}

}  // namespace
}  // namespace lcp::model
