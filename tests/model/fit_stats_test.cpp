#include "model/fit_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace lcp::model {
namespace {

TEST(FitStatsTest, PerfectPrediction) {
  const std::vector<double> obs = {1.0, 2.0, 3.0};
  const auto stats = compute_fit_stats(obs, obs);
  EXPECT_DOUBLE_EQ(stats.sse, 0.0);
  EXPECT_DOUBLE_EQ(stats.rmse, 0.0);
  EXPECT_DOUBLE_EQ(stats.r_squared, 1.0);
  EXPECT_EQ(stats.n, 3u);
}

TEST(FitStatsTest, KnownResiduals) {
  const std::vector<double> obs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pred = {1.5, 2.0, 2.5, 4.0};
  const auto stats = compute_fit_stats(obs, pred);
  EXPECT_DOUBLE_EQ(stats.sse, 0.25 + 0.0 + 0.25 + 0.0);
  EXPECT_DOUBLE_EQ(stats.rmse, std::sqrt(0.5 / 4.0));
  // ss_tot = 5.0 around mean 2.5.
  EXPECT_DOUBLE_EQ(stats.r_squared, 1.0 - 0.5 / 5.0);
}

TEST(FitStatsTest, MeanPredictorGivesZeroRSquared) {
  const std::vector<double> obs = {1.0, 2.0, 3.0};
  const std::vector<double> pred = {2.0, 2.0, 2.0};
  const auto stats = compute_fit_stats(obs, pred);
  EXPECT_NEAR(stats.r_squared, 0.0, 1e-12);
}

TEST(FitStatsTest, WorseThanMeanGivesNegativeRSquared) {
  // The paper's R^2 caveat for nonlinear models: it can go negative.
  const std::vector<double> obs = {1.0, 2.0, 3.0};
  const std::vector<double> pred = {3.0, 2.0, 1.0};
  const auto stats = compute_fit_stats(obs, pred);
  EXPECT_LT(stats.r_squared, 0.0);
}

TEST(FitStatsTest, ConstantObservationsYieldZeroRSquaredConvention) {
  const std::vector<double> obs = {2.0, 2.0, 2.0};
  const std::vector<double> pred = {2.0, 2.0, 2.0};
  const auto stats = compute_fit_stats(obs, pred);
  EXPECT_DOUBLE_EQ(stats.r_squared, 0.0);
  EXPECT_DOUBLE_EQ(stats.sse, 0.0);
}

}  // namespace
}  // namespace lcp::model
