#include "model/partitions.hpp"

#include <gtest/gtest.h>

namespace lcp::model {
namespace {

using power::ChipId;

TEST(PartitionsTest, TableThreeRowsInPaperOrder) {
  const auto& parts = compression_partitions();
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0].name, "Total");
  EXPECT_EQ(parts[1].name, "SZ");
  EXPECT_EQ(parts[2].name, "ZFP");
  EXPECT_EQ(parts[3].name, "Broadwell");
  EXPECT_EQ(parts[4].name, "Skylake");
}

TEST(PartitionsTest, TotalMatchesEverything) {
  const auto& total = compression_partitions()[0];
  for (auto codec : {CodecFilter::kSz, CodecFilter::kZfp}) {
    for (auto chip : {ChipId::kBroadwellD1548, ChipId::kSkylake4114}) {
      EXPECT_TRUE(total.matches(codec, chip));
    }
  }
}

TEST(PartitionsTest, CodecPartitionsFilterByCodecOnly) {
  const auto& sz = compression_partitions()[1];
  EXPECT_TRUE(sz.matches(CodecFilter::kSz, ChipId::kBroadwellD1548));
  EXPECT_TRUE(sz.matches(CodecFilter::kSz, ChipId::kSkylake4114));
  EXPECT_FALSE(sz.matches(CodecFilter::kZfp, ChipId::kBroadwellD1548));
}

TEST(PartitionsTest, ChipPartitionsFilterByChipOnly) {
  const auto& bdw = compression_partitions()[3];
  EXPECT_TRUE(bdw.matches(CodecFilter::kSz, ChipId::kBroadwellD1548));
  EXPECT_TRUE(bdw.matches(CodecFilter::kZfp, ChipId::kBroadwellD1548));
  EXPECT_FALSE(bdw.matches(CodecFilter::kSz, ChipId::kSkylake4114));
}

TEST(PartitionsTest, TransitTableHasThreeRows) {
  const auto& parts = transit_partitions();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].name, "Total");
  EXPECT_EQ(parts[1].name, "Broadwell");
  EXPECT_EQ(parts[2].name, "Skylake");
  EXPECT_FALSE(parts[0].codec.has_value());
}

}  // namespace
}  // namespace lcp::model
