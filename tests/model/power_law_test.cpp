#include "model/power_law.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace lcp::model {
namespace {

struct Truth {
  double a, b, c;
};

void synthesize(const Truth& t, double noise_sigma, std::uint64_t seed,
                std::vector<double>& f, std::vector<double>& p) {
  Rng rng{seed};
  f.clear();
  p.clear();
  for (double x = 0.8; x <= 2.2001; x += 0.05) {
    f.push_back(x);
    p.push_back(t.a * std::pow(x, t.b) + t.c + rng.normal(0.0, noise_sigma));
  }
}

TEST(PowerLawFitTest, RecoversBroadwellClassExponent) {
  // Paper Table IV Broadwell: 0.0064 f^5.315 + 0.7429.
  std::vector<double> f;
  std::vector<double> p;
  synthesize({0.0064, 5.315, 0.7429}, 0.0, 1, f, p);
  const auto fit = fit_power_law(f, p);
  ASSERT_TRUE(fit.has_value()) << fit.status().to_string();
  EXPECT_NEAR(fit->b, 5.315, 0.05);
  EXPECT_NEAR(fit->c, 0.7429, 0.005);
  EXPECT_LT(fit->stats.sse, 1e-8);
}

TEST(PowerLawFitTest, RecoversSkylakeClassExponent) {
  // Paper Table IV Skylake: 2.235e-9 f^23.31 + 0.7941 — the multimodal case
  // that requires multi-start.
  std::vector<double> f;
  std::vector<double> p;
  synthesize({2.235e-9, 23.31, 0.7941}, 0.0, 2, f, p);
  const auto fit = fit_power_law(f, p);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->b, 23.31, 1.0);
  EXPECT_NEAR(fit->c, 0.7941, 0.01);
}

TEST(PowerLawFitTest, NoisyRecoveryStaysInBand) {
  std::vector<double> f;
  std::vector<double> p;
  synthesize({0.0107, 3.788, 0.754}, 0.01, 3, f, p);
  const auto fit = fit_power_law(f, p);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->b, 3.788, 1.2);
  EXPECT_NEAR(fit->c, 0.754, 0.05);
  EXPECT_GT(fit->stats.r_squared, 0.5);
}

TEST(PowerLawFitTest, EvaluateMatchesFormula) {
  PowerLawFit fit;
  fit.a = 0.0086;
  fit.b = 4.038;
  fit.c = 0.757;
  EXPECT_NEAR(fit.evaluate(2.0), 0.0086 * std::pow(2.0, 4.038) + 0.757,
              1e-12);
  EXPECT_NEAR(fit.evaluate(GigaHertz{1.0}), 0.7656, 1e-9);
}

TEST(PowerLawFitTest, ToStringRendersReadably) {
  PowerLawFit fit;
  fit.a = 0.0086;
  fit.b = 4.038;
  fit.c = 0.757;
  const auto s = fit.to_string();
  EXPECT_NE(s.find("f^"), std::string::npos);
  PowerLawFit tiny;
  tiny.a = 2.235e-9;
  tiny.b = 23.31;
  tiny.c = 0.794;
  EXPECT_NE(tiny.to_string().find("e-09"), std::string::npos);
}

TEST(PowerLawFitTest, RejectsBadInputs) {
  const std::vector<double> f3 = {1.0, 1.5, 2.0};
  const std::vector<double> p3 = {1.0, 1.1, 1.2};
  EXPECT_FALSE(fit_power_law(f3, p3).has_value());  // < 4 points
  const std::vector<double> f4 = {0.0, 1.0, 1.5, 2.0};
  const std::vector<double> p4 = {1.0, 1.0, 1.1, 1.2};
  EXPECT_FALSE(fit_power_law(f4, p4).has_value());  // f = 0
  const std::vector<double> mismatch = {1.0, 2.0};
  EXPECT_FALSE(fit_power_law(f4, mismatch).has_value());
}

TEST(PowerLawFitTest, FlatDataFitsWithNearZeroAmplitude) {
  std::vector<double> f;
  std::vector<double> p;
  for (double x = 0.8; x <= 2.0; x += 0.05) {
    f.push_back(x);
    p.push_back(0.9);
  }
  const auto fit = fit_power_law(f, p);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->evaluate(0.8), 0.9, 1e-3);
  EXPECT_NEAR(fit->evaluate(2.0), 0.9, 1e-3);
}

TEST(ValidateFitTest, PerfectModelHasZeroSse) {
  PowerLawFit fit;
  fit.a = 0.01;
  fit.b = 4.0;
  fit.c = 0.75;
  std::vector<double> f;
  std::vector<double> p;
  for (double x = 0.8; x <= 2.0; x += 0.1) {
    f.push_back(x);
    p.push_back(fit.evaluate(x));
  }
  const auto stats = validate_fit(fit, f, p);
  ASSERT_TRUE(stats.has_value());
  EXPECT_LT(stats->sse, 1e-20);
  EXPECT_NEAR(stats->r_squared, 1.0, 1e-9);
}

TEST(ValidateFitTest, WrongModelHasLargeError) {
  PowerLawFit fit;
  fit.a = 0.01;
  fit.b = 4.0;
  fit.c = 0.75;
  const std::vector<double> f = {1.0, 1.5, 2.0};
  const std::vector<double> p = {10.0, 20.0, 30.0};
  const auto stats = validate_fit(fit, f, p);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->sse, 100.0);
}

TEST(ValidateFitTest, RejectsEmptyOrMismatched) {
  PowerLawFit fit;
  const std::vector<double> f = {1.0};
  const std::vector<double> empty;
  EXPECT_FALSE(validate_fit(fit, f, empty).has_value());
  EXPECT_FALSE(validate_fit(fit, empty, empty).has_value());
}

}  // namespace
}  // namespace lcp::model
