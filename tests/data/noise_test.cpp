#include "data/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace lcp::data {
namespace {

TEST(SmoothstepTest, EndpointsAndMidpoint) {
  EXPECT_DOUBLE_EQ(smoothstep5(0.0), 0.0);
  EXPECT_DOUBLE_EQ(smoothstep5(1.0), 1.0);
  EXPECT_DOUBLE_EQ(smoothstep5(0.5), 0.5);
}

TEST(SmoothstepTest, Monotone) {
  double prev = smoothstep5(0.0);
  for (int i = 1; i <= 100; ++i) {
    const double cur = smoothstep5(i / 100.0);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(SmoothNoise3DTest, DeterministicForSameSeed) {
  Rng rng1{5};
  Rng rng2{5};
  SmoothNoise3D a(16, 16, 16, 4, rng1);
  SmoothNoise3D b(16, 16, 16, 4, rng2);
  for (std::size_t i = 0; i < 16; i += 3) {
    EXPECT_DOUBLE_EQ(a.at(i, i, i), b.at(i, i, i));
  }
}

TEST(SmoothNoise3DTest, NeighboringSamplesAreCorrelated) {
  Rng rng{7};
  SmoothNoise3D noise(32, 32, 32, 8, rng);
  // Adjacent grid points inside one cell should be close relative to the
  // overall spread.
  double max_step = 0.0;
  for (std::size_t i = 0; i < 31; ++i) {
    max_step = std::max(max_step,
                        std::fabs(noise.at(16, 16, i + 1) - noise.at(16, 16, i)));
  }
  EXPECT_LT(max_step, 1.0);  // lattice values are N(0,1); steps are fractions
}

TEST(SmoothNoise3DTest, LatticePointsReproduceLatticeValues) {
  Rng rng{9};
  SmoothNoise3D noise(16, 16, 16, 4, rng);
  // At exact multiples of the cell the interpolation weights are 0/1, so
  // values at distance `cell` apart must differ in general (no accidental
  // constancy).
  bool varies = false;
  const double v0 = noise.at(0, 0, 0);
  for (std::size_t k = 4; k < 16; k += 4) {
    varies |= std::fabs(noise.at(0, 0, k) - v0) > 1e-9;
  }
  EXPECT_TRUE(varies);
}

TEST(SmoothNoise1DTest, SmoothAndDeterministic) {
  Rng rng1{11};
  Rng rng2{11};
  SmoothNoise1D a(100, 10, rng1);
  SmoothNoise1D b(100, 10, rng2);
  double max_step = 0.0;
  for (std::size_t i = 0; i + 1 < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.at(i), b.at(i));
    max_step = std::max(max_step, std::fabs(a.at(i + 1) - a.at(i)));
  }
  EXPECT_LT(max_step, 1.5);
}

TEST(SmoothNoiseTest, CellOfZeroIsTreatedAsOne) {
  Rng rng{13};
  SmoothNoise1D n(10, 0, rng);
  (void)n.at(9);  // must not crash or divide by zero
}

}  // namespace
}  // namespace lcp::data
