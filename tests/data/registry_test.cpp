#include "data/registry.hpp"

#include <gtest/gtest.h>

namespace lcp::data {
namespace {

TEST(RegistryTest, TableOneHasThePaperRows) {
  const auto& specs = table1_datasets();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].domain, "CESM-ATM");
  EXPECT_EQ(specs[0].paper_dims, Dims::d3(26, 1800, 3600));
  EXPECT_NEAR(specs[0].paper_size_mb, 673.9, 1e-9);
  EXPECT_EQ(specs[1].domain, "HACC");
  EXPECT_EQ(specs[1].paper_dims, Dims::d1(280953867));
  EXPECT_EQ(specs[2].domain, "NYX");
  EXPECT_EQ(specs[2].paper_dims, Dims::d3(512, 512, 512));
}

TEST(RegistryTest, PaperSizesMatchDimsTimesFourBytes) {
  // CESM and NYX sizes in Table I are exactly dims * 4 bytes in MB; the
  // HACC row is ~7% off in the paper itself (1046.9 MB printed vs 1123.8
  // MB implied), so a 10% tolerance reproduces the table as published.
  for (const auto& spec : table1_datasets()) {
    const double mb =
        static_cast<double>(spec.paper_dims.element_count()) * 4.0 / 1e6;
    EXPECT_NEAR(mb, spec.paper_size_mb, spec.paper_size_mb * 0.10)
        << spec.domain;
  }
}

TEST(RegistryTest, CiDimsAreSmallerThanPaperDims) {
  for (const auto& spec : table1_datasets()) {
    EXPECT_LT(spec.ci_dims.element_count(), spec.paper_dims.element_count());
    EXPECT_EQ(spec.ci_dims.rank(), spec.paper_dims.rank());
  }
}

TEST(RegistryTest, IsabelValidationSpec) {
  const auto& spec = isabel_dataset();
  EXPECT_EQ(spec.domain, "Hurricane-ISABEL");
  EXPECT_EQ(spec.paper_dims, Dims::d3(100, 500, 500));
}

TEST(RegistryTest, LookupById) {
  EXPECT_EQ(dataset_spec(DatasetId::kNyx).domain, "NYX");
  EXPECT_EQ(dataset_spec(DatasetId::kIsabel).domain, "Hurricane-ISABEL");
  EXPECT_STREQ(dataset_name(DatasetId::kHacc), "HACC");
}

TEST(RegistryTest, GenerateDatasetHonoursScale) {
  for (const auto& spec : table1_datasets()) {
    const auto field = generate_dataset(spec.id, Scale::kCi, 1);
    EXPECT_EQ(field.dims(), spec.ci_dims) << spec.domain;
    EXPECT_EQ(field.element_count(), spec.ci_dims.element_count());
  }
}

TEST(RegistryTest, GenerateIsDeterministicInSeed) {
  const auto a = generate_dataset(DatasetId::kNyx, Scale::kCi, 7);
  const auto b = generate_dataset(DatasetId::kNyx, Scale::kCi, 7);
  EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                         b.values().begin()));
}

TEST(RegistryTest, DimsForSelectsMode) {
  const auto& spec = dataset_spec(DatasetId::kCesmAtm);
  EXPECT_EQ(dims_for(spec, Scale::kPaper), spec.paper_dims);
  EXPECT_EQ(dims_for(spec, Scale::kCi), spec.ci_dims);
}

}  // namespace
}  // namespace lcp::data
