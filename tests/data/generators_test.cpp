#include "data/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>

namespace lcp::data {
namespace {

TEST(CesmGeneratorTest, DimsAndDeterminism) {
  const auto a = generate_cesm_atm(4, 30, 60, 1);
  const auto b = generate_cesm_atm(4, 30, 60, 1);
  EXPECT_EQ(a.dims(), Dims::d3(4, 30, 60));
  EXPECT_EQ(a.name(), "CESM-ATM");
  EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                         b.values().begin()));
}

TEST(CesmGeneratorTest, DifferentSeedsProduceDifferentFields) {
  const auto a = generate_cesm_atm(2, 16, 16, 1);
  const auto b = generate_cesm_atm(2, 16, 16, 2);
  EXPECT_FALSE(std::equal(a.values().begin(), a.values().end(),
                          b.values().begin()));
}

TEST(CesmGeneratorTest, TemperatureLikeRange) {
  const auto f = generate_cesm_atm(8, 40, 80, 3);
  const auto r = f.value_range();
  // Lapse-rate profile spans roughly 200..330 K.
  EXPECT_GT(r.lo, 150.0F);
  EXPECT_LT(r.hi, 400.0F);
}

TEST(CesmGeneratorTest, UpperLevelsColderOnAverage) {
  const auto f = generate_cesm_atm(8, 24, 48, 5);
  const std::size_t plane = 24 * 48;
  auto mean_level = [&](std::size_t l) {
    double sum = 0.0;
    for (std::size_t i = 0; i < plane; ++i) {
      sum += f.values()[l * plane + i];
    }
    return sum / static_cast<double>(plane);
  };
  EXPECT_GT(mean_level(0), mean_level(7));
}

TEST(HaccGeneratorTest, PositionsInsidePeriodicBox) {
  const auto f = generate_hacc(10000, 9);
  EXPECT_EQ(f.dims().rank(), 1u);
  for (float v : f.values()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LT(v, 256.0F);
  }
}

TEST(HaccGeneratorTest, StreamIsNotSorted) {
  // Real HACC particle output is unordered; pointwise prediction must not
  // get an artificially easy stream.
  const auto f = generate_hacc(10000, 9);
  EXPECT_FALSE(std::is_sorted(f.values().begin(), f.values().end()));
}

TEST(HaccGeneratorTest, ClusteredNotUniform) {
  // Halo clustering concentrates mass: the histogram over 64 bins should
  // be far more uneven than a uniform draw would be.
  const auto f = generate_hacc(65536, 21);
  std::array<int, 64> hist{};
  for (float v : f.values()) {
    ++hist[std::min<std::size_t>(63, static_cast<std::size_t>(v / 4.0F))];
  }
  const auto [lo, hi] = std::minmax_element(hist.begin(), hist.end());
  EXPECT_GT(*hi, 3 * std::max(1, *lo));
}

TEST(CesmFieldTest, TemperatureVariantMatchesDefaultGenerator) {
  const auto a = generate_cesm_field(CesmField::kTemperature, 3, 20, 20, 7);
  const auto b = generate_cesm_atm(3, 20, 20, 7);
  EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                         b.values().begin()));
}

TEST(CesmFieldTest, CloudFractionIsClampedWithSaturatedPlateaus) {
  const auto f = generate_cesm_field(CesmField::kCloudFraction, 6, 40, 80, 8);
  EXPECT_EQ(f.name(), "CLDTOT");
  std::size_t exact_zero = 0;
  std::size_t exact_one = 0;
  for (float v : f.values()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
    exact_zero += v == 0.0F ? 1 : 0;
    exact_one += v == 1.0F ? 1 : 0;
  }
  // Clamping must actually fire on both ends (the regime that stresses
  // codecs with constant runs).
  EXPECT_GT(exact_zero, f.element_count() / 50);
  EXPECT_GT(exact_one, f.element_count() / 50);
}

TEST(CesmFieldTest, HumidityIsNonNegativeAndDecaysWithAltitude) {
  const auto f = generate_cesm_field(CesmField::kHumidity, 8, 24, 48, 9);
  EXPECT_EQ(f.name(), "Q");
  const std::size_t plane = 24 * 48;
  double surface_sum = 0.0;
  double top_sum = 0.0;
  for (std::size_t i = 0; i < plane; ++i) {
    EXPECT_GE(f.values()[i], 0.0F);
    surface_sum += f.values()[i];
    top_sum += f.values()[7 * plane + i];
  }
  EXPECT_GT(surface_sum, 5.0 * top_sum);
}

TEST(CesmFieldTest, AllVariantsCompressWithBoundedError) {
  // The bounded [0,1] regime must not break the codecs.
  for (auto kind : {CesmField::kCloudFraction, CesmField::kHumidity}) {
    const auto f = generate_cesm_field(kind, 4, 24, 24, 10);
    // (covered in depth by codec tests; here just shape + determinism)
    const auto g = generate_cesm_field(kind, 4, 24, 24, 10);
    EXPECT_TRUE(std::equal(f.values().begin(), f.values().end(),
                           g.values().begin()));
  }
}

TEST(NyxGeneratorTest, LogNormalDensityIsPositiveWithHighDynamicRange) {
  const auto f = generate_nyx(32, 4);
  EXPECT_EQ(f.dims(), Dims::d3(32, 32, 32));
  float lo = f.values()[0];
  float hi = lo;
  for (float v : f.values()) {
    EXPECT_GT(v, 0.0F);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi / lo, 50.0F);  // decades of dynamic range like baryon density
}

TEST(IsabelGeneratorTest, AllKindsHaveNamesAndDims) {
  for (IsabelKind kind : isabel_all_kinds()) {
    const auto f = generate_isabel(kind, 8, 32, 32, 6);
    EXPECT_EQ(f.dims(), Dims::d3(8, 32, 32));
    EXPECT_EQ(f.name(), isabel_kind_name(kind));
  }
}

TEST(IsabelGeneratorTest, PrecipIsNonNegativeAndSparse) {
  const auto f = generate_isabel(IsabelKind::kPrecip, 8, 48, 48, 6);
  std::size_t zeros = 0;
  for (float v : f.values()) {
    EXPECT_GE(v, 0.0F);
    zeros += v == 0.0F ? 1 : 0;
  }
  EXPECT_GT(zeros, f.element_count() / 4);  // rain bands are sparse
}

TEST(IsabelGeneratorTest, PressureDipsAtTheEye) {
  const auto f = generate_isabel(IsabelKind::kPressure, 4, 64, 64, 6);
  // Surface level: center pressure below the domain-corner pressure.
  const std::size_t ny = 64;
  const std::size_t nx = 64;
  const float center = f.values()[(ny / 2) * nx + nx / 2];
  const float corner = f.values()[0];
  EXPECT_LT(center, corner);
}

TEST(IsabelGeneratorTest, WindFieldsCirculate) {
  // Tangential winds: U should flip sign across the vortex center row.
  const auto u = generate_isabel(IsabelKind::kWindU, 2, 64, 64, 6);
  const std::size_t nx = 64;
  const std::size_t cy = static_cast<std::size_t>(0.52 * 64);
  const std::size_t cx = static_cast<std::size_t>(0.48 * 64);
  const float above = u.values()[(cy + 12) * nx + cx];
  const float below = u.values()[(cy - 12) * nx + cx];
  EXPECT_LT(above * below, 0.0F);
}

}  // namespace
}  // namespace lcp::data
