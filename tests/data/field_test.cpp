#include "data/field.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

namespace lcp::data {
namespace {

TEST(DimsTest, ElementCountAndRank) {
  const auto d = Dims::d3(26, 1800, 3600);
  EXPECT_EQ(d.rank(), 3u);
  EXPECT_EQ(d.element_count(), 26u * 1800u * 3600u);
  EXPECT_EQ(Dims::d1(280953867).element_count(), 280953867u);
}

TEST(DimsTest, RowMajorOffsets) {
  const auto d = Dims::d3(2, 3, 4);
  const std::array<std::size_t, 3> first = {0, 0, 0};
  const std::array<std::size_t, 3> mid = {1, 2, 3};
  EXPECT_EQ(d.offset(first), 0u);
  EXPECT_EQ(d.offset(mid), 1u * 12 + 2u * 4 + 3u);
}

TEST(DimsTest, ToStringMatchesPaperStyle) {
  EXPECT_EQ(Dims::d3(512, 512, 512).to_string(), "512x512x512");
  EXPECT_EQ(Dims::d1(7).to_string(), "7");
}

TEST(DimsTest, EqualityComparison) {
  EXPECT_EQ(Dims::d2(3, 4), Dims::d2(3, 4));
  EXPECT_NE(Dims::d2(3, 4), Dims::d2(4, 3));
}

TEST(FieldTest, ZeroInitializedConstruction) {
  Field f{"t", Dims::d2(4, 5)};
  EXPECT_EQ(f.element_count(), 20u);
  EXPECT_EQ(f.size_bytes().bytes(), 80u);
  for (float v : f.values()) {
    EXPECT_EQ(v, 0.0F);
  }
}

TEST(FieldTest, IndexedAccess) {
  Field f{"t", Dims::d2(2, 2)};
  const std::array<std::size_t, 2> idx = {1, 0};
  f.at(idx) = 7.5F;
  EXPECT_EQ(f.values()[2], 7.5F);
  EXPECT_EQ(f.at(idx), 7.5F);
}

TEST(FieldTest, ValueRange) {
  Field f{"t", Dims::d1(4), {3.0F, -1.0F, 2.0F, 0.5F}};
  const auto r = f.value_range();
  EXPECT_EQ(r.lo, -1.0F);
  EXPECT_EQ(r.hi, 3.0F);
  EXPECT_EQ(r.span(), 4.0F);
}

TEST(FieldTest, EmptyDefaultField) {
  Field f;
  EXPECT_EQ(f.element_count(), 0u);
  const auto r = f.value_range();
  EXPECT_EQ(r.span(), 0.0F);
}

TEST(CompareFieldsTest, ExactReconstructionGivesZeroErrorInfinitePsnr) {
  Field a{"a", Dims::d1(3), {1.0F, 2.0F, 3.0F}};
  Field b{"b", Dims::d1(3), {1.0F, 2.0F, 3.0F}};
  const auto stats = compare_fields(a, b);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->max_abs_error, 0.0);
  EXPECT_TRUE(std::isinf(stats->psnr_db));
}

TEST(CompareFieldsTest, KnownErrors) {
  Field a{"a", Dims::d1(4), {0.0F, 0.0F, 0.0F, 4.0F}};
  Field b{"b", Dims::d1(4), {1.0F, 0.0F, 0.0F, 4.0F}};
  const auto stats = compare_fields(a, b);
  ASSERT_TRUE(stats.has_value());
  EXPECT_DOUBLE_EQ(stats->max_abs_error, 1.0);
  EXPECT_DOUBLE_EQ(stats->mean_abs_error, 0.25);
  EXPECT_DOUBLE_EQ(stats->rmse, 0.5);
  // PSNR = 20 log10(range / rmse) = 20 log10(8).
  EXPECT_NEAR(stats->psnr_db, 20.0 * std::log10(8.0), 1e-12);
}

TEST(CompareFieldsTest, SizeMismatchFails) {
  Field a{"a", Dims::d1(3)};
  Field b{"b", Dims::d1(4)};
  EXPECT_FALSE(compare_fields(a, b).has_value());
}

}  // namespace
}  // namespace lcp::data
