#!/usr/bin/env python3
"""Self-test for tools/lint.py: every rule must fire on a bad fixture tree
and stay silent on a clean one.

Each case builds a throwaway repo skeleton under a temp dir, runs lint.py
against it with --root (and --rule to isolate the rule under test), and
asserts on exit code plus the rule tag in the output. Registered as a
ctest (lint_selftest) so a rule that silently stops firing turns the suite
red, not just the linter's own CI leg.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import tempfile
import unittest

LINT = pathlib.Path(__file__).resolve().parents[2] / "tools" / "lint.py"


def run_lint(root: pathlib.Path, *rules: str):
    cmd = [sys.executable, str(LINT), "--root", str(root)]
    for rule in rules:
        cmd += ["--rule", rule]
    return subprocess.run(cmd, capture_output=True, text=True)


def write(root: pathlib.Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


class LintRuleTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def assert_fires(self, rule: str, expect_path: str):
        proc = run_lint(self.root, rule)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn(f"[{rule}]", proc.stdout)
        self.assertIn(expect_path, proc.stdout)

    def assert_clean(self, *rules: str):
        proc = run_lint(self.root, *rules)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("clean", proc.stdout)

    # ------------------------------------------------- naked-concurrency

    def test_naked_mutex_outside_support_fires(self):
        write(self.root, "src/io/thing.hpp",
              "struct T { std::mutex mu_; };\n")
        self.assert_fires("naked-concurrency", "src/io/thing.hpp")

    def test_naked_thread_outside_support_fires(self):
        write(self.root, "src/core/runner.cpp",
              "std::thread t{[] {}};\n")
        self.assert_fires("naked-concurrency", "src/core/runner.cpp")

    def test_wrappers_in_support_allowed(self):
        write(self.root, "src/support/thread_annotations.hpp",
              "class Mutex { std::mutex mu_; };\n")
        write(self.root, "src/support/scoped_thread.hpp",
              "class ScopedThread { std::thread t_; };\n")
        self.assert_clean("naked-concurrency")

    def test_comment_mention_allowed(self):
        write(self.root, "src/io/thing.hpp",
              "// replaces the old std::mutex member\nstruct T {};\n")
        self.assert_clean("naked-concurrency")

    # -------------------------------------------- no-analysis-suppression

    def test_suppression_outside_header_fires(self):
        write(self.root, "src/core/hack.cpp",
              "void f() LCP_NO_THREAD_SAFETY_ANALYSIS {}\n")
        self.assert_fires("no-analysis-suppression", "src/core/hack.cpp")

    def test_raw_attribute_in_tests_fires(self):
        write(self.root, "tests/io/hack_test.cpp",
              "__attribute__((no_thread_safety_analysis)) void f();\n")
        self.assert_fires("no-analysis-suppression", "tests/io/hack_test.cpp")

    def test_suppression_in_wrapper_header_allowed(self):
        write(self.root, "src/support/thread_annotations.hpp",
              "#define LCP_NO_THREAD_SAFETY_ANALYSIS "
              "LCP_THREAD_ANNOTATION_(no_thread_safety_analysis)\n")
        self.assert_clean("no-analysis-suppression")

    # ------------------------------------------------------- seeded-rng

    def test_rand_fires(self):
        write(self.root, "bench/extension_foo.cpp",
              "int noise() { return rand() % 7; }\nint main() { return 1; }\n")
        self.assert_fires("seeded-rng", "bench/extension_foo.cpp")

    def test_random_device_fires(self):
        write(self.root, "src/data/gen.cpp",
              "std::mt19937 rng{std::random_device{}()};\n")
        self.assert_fires("seeded-rng", "src/data/gen.cpp")

    def test_support_rng_allowed(self):
        write(self.root, "src/support/rng.hpp",
              "// wraps srand( for legacy comparison\n"
              "inline void seed_legacy(unsigned s) { srand(s); }\n")
        self.assert_clean("seeded-rng")

    def test_operand_named_like_rand_allowed(self):
        write(self.root, "src/model/fit.cpp",
              "double operand = 2.0;\ndouble x = operand * 3.0;\n")
        self.assert_clean("seeded-rng")

    # ------------------------------------------------- test-registration

    def test_unregistered_test_file_fires(self):
        write(self.root, "tests/CMakeLists.txt",
              "lcp_add_test_binary(t io/a_test.cpp)\n")
        write(self.root, "tests/io/a_test.cpp", "TEST(A, B) {}\n")
        write(self.root, "tests/io/orphan_test.cpp", "TEST(C, D) {}\n")
        self.assert_fires("test-registration", "tests/io/orphan_test.cpp")

    def test_registered_and_helper_files_clean(self):
        write(self.root, "tests/CMakeLists.txt",
              "lcp_add_test_binary(t io/a_test.cpp)\n")
        write(self.root, "tests/io/a_test.cpp", "TEST(A, B) {}\n")
        # Helper with no TEST() macros needs no registration.
        write(self.root, "tests/io/helpers.hpp", "inline int x() { return 1; }\n")
        self.assert_clean("test-registration")

    # ------------------------------------------------------ bench-gates

    def test_bench_without_exit_path_fires(self):
        write(self.root, "bench/extension_foo.cpp",
              "int main() { return 0; }\n")
        self.assert_fires("bench-gates", "bench/extension_foo.cpp")

    def test_bench_gate_idioms_clean(self):
        write(self.root, "bench/extension_a.cpp",
              "int main() { return ok ? 0 : 1; }\n")
        write(self.root, "bench/extension_b.cpp",
              "int main() { if (bad) return 1; return 0; }\n")
        write(self.root, "bench/micro_hotpaths.cpp",
              "int main() { return failed ? EXIT_FAILURE : 0; }\n")
        # Ungated figure benches are exempt by design.
        write(self.root, "bench/fig1_compression_power.cpp",
              "int main() { return 0; }\n")
        self.assert_clean("bench-gates")

    # ------------------------------------------------------ whole-linter

    def test_all_rules_on_clean_tree(self):
        write(self.root, "src/support/thread_annotations.hpp",
              "class Mutex { std::mutex mu_; };\n")
        write(self.root, "src/io/thing.hpp", "struct T { Mutex mu_; };\n")
        write(self.root, "tests/CMakeLists.txt", "io/a_test.cpp\n")
        write(self.root, "tests/io/a_test.cpp", "TEST(A, B) {}\n")
        write(self.root, "bench/extension_a.cpp",
              "int main() { return 1; }\n")
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_bad_root_exits_2(self):
        proc = run_lint(self.root / "does-not-exist")
        self.assertEqual(proc.returncode, 2)

    def test_repo_itself_is_clean(self):
        repo = pathlib.Path(__file__).resolve().parents[2]
        proc = run_lint(repo)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
