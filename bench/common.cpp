#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>

#include "support/status.hpp"

namespace lcp::bench {

void print_banner(const std::string& experiment_id,
                  const std::string& paper_artifact,
                  const std::string& paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), paper_artifact.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

void print_comparison(const std::string& quantity, const std::string& paper,
                      const std::string& reproduced) {
  std::printf("  %-42s paper: %-18s reproduced: %s\n", quantity.c_str(),
              paper.c_str(), reproduced.c_str());
}

bool full_scale_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      return true;
    }
  }
  return false;
}

core::CompressionStudyConfig paper_compression_config(bool full_scale) {
  core::CompressionStudyConfig cfg;
  cfg.scale = full_scale ? data::Scale::kPaper : data::Scale::kCi;
  cfg.repeats = 10;
  return cfg;  // all other fields default to the paper grid
}

core::TransitStudyConfig paper_transit_config() {
  core::TransitStudyConfig cfg;
  cfg.repeats = 10;
  return cfg;
}

const core::CompressionStudyResult& shared_compression_study(bool full_scale) {
  static std::optional<core::CompressionStudyResult> cached;
  static bool cached_full = false;
  if (!cached.has_value() || cached_full != full_scale) {
    std::fprintf(stderr,
                 "[bench] running compression study (%s scale)...\n",
                 full_scale ? "paper" : "CI");
    auto result = core::run_compression_study(
        paper_compression_config(full_scale));
    LCP_REQUIRE(result.has_value(), "compression study failed");
    cached = std::move(*result);
    cached_full = full_scale;
  }
  return *cached;
}

const core::TransitStudyResult& shared_transit_study() {
  static std::optional<core::TransitStudyResult> cached;
  if (!cached.has_value()) {
    std::fprintf(stderr, "[bench] running transit study...\n");
    auto result = core::run_transit_study(paper_transit_config());
    LCP_REQUIRE(result.has_value(), "transit study failed");
    cached = std::move(*result);
  }
  return *cached;
}

AggregatedCurve aggregate_scaled(
    const std::string& label,
    const std::vector<const std::vector<core::SweepPoint>*>& sweeps,
    core::SweepMetric metric) {
  LCP_REQUIRE(!sweeps.empty(), "aggregate needs at least one sweep");
  AggregatedCurve out;
  out.label = label;

  std::vector<core::ScaledCurve> curves;
  curves.reserve(sweeps.size());
  for (const auto* sweep : sweeps) {
    curves.push_back(core::scale_by_max_frequency(*sweep, metric));
    LCP_REQUIRE(curves.back().f_ghz.size() == curves.front().f_ghz.size(),
                "sweeps must share a frequency grid");
  }
  const std::size_t n = curves.front().f_ghz.size();
  out.f_ghz = curves.front().f_ghz;
  out.mean.resize(n);
  out.ci95.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values;
    values.reserve(curves.size());
    for (const auto& curve : curves) {
      values.push_back(curve.value[i]);
    }
    const auto summary = summarize(values);
    out.mean[i] = summary.mean;
    // Combine across-series spread with per-series measurement CI.
    double ci = summary.ci95_half;
    for (const auto& curve : curves) {
      ci = std::max(ci, curve.ci95[i]);
    }
    out.ci95[i] = ci;
  }
  return out;
}

void emit_figure(const std::string& name, const std::string& title,
                 const std::string& y_label,
                 const std::vector<AggregatedCurve>& curves) {
  static const char kGlyphs[] = "BSZWXO*+";
  std::vector<PlotSeries> series;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    PlotSeries s;
    s.name = curves[i].label;
    s.glyph = curves[i].label.empty()
                  ? kGlyphs[i % (sizeof(kGlyphs) - 1)]
                  : curves[i].label[0];
    // Ensure distinct glyphs when labels collide on the first letter.
    for (std::size_t j = 0; j < i; ++j) {
      if (series[j].glyph == s.glyph) {
        s.glyph = kGlyphs[i % (sizeof(kGlyphs) - 1)];
      }
    }
    s.x = curves[i].f_ghz;
    s.y = curves[i].mean;
    series.push_back(std::move(s));
  }
  PlotOptions options;
  options.title = title;
  options.x_label = "frequency (GHz)";
  options.y_label = y_label;
  std::printf("%s", render_plot(series, options).c_str());

  CsvWriter csv{{"series", "f_ghz", "value", "ci95_half"}};
  for (const auto& curve : curves) {
    for (std::size_t i = 0; i < curve.f_ghz.size(); ++i) {
      csv.add_row({curve.label, format_double(curve.f_ghz[i], 3),
                   format_double(curve.mean[i], 5),
                   format_double(curve.ci95[i], 5)});
    }
  }
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  emit_csv(csv, "bench_out/" + name + ".csv");
}

void emit_csv(const CsvWriter& csv, const std::string& path) {
  const Status status = csv.write_file(path);
  if (status.is_ok()) {
    std::printf("  [csv] %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  [csv] FAILED %s: %s\n", path.c_str(),
                 status.message().c_str());
  }
}

void print_model_table(const std::string& title,
                       const std::vector<core::ModelTableRow>& rows) {
  Table table{{"Model Data", "P(f)", "SSE", "RMSE", "R^2", "n"}};
  table.set_title(title);
  for (const auto& row : rows) {
    table.add_row({row.partition.name, row.fit.to_string(),
                   format_double(row.fit.stats.sse, 3),
                   format_double(row.fit.stats.rmse, 4),
                   format_double(row.fit.stats.r_squared, 4),
                   std::to_string(row.observations)});
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace lcp::bench
