// Table V — data transit power models: P(f) = a f^b + c fits over the
// 1-16 GB NFS write study on both chips.

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lcp;
  bench::print_banner(
      "T5", "Table V — models and GF, data transit",
      "Total 0.0133f^3.379+0.799 | Broadwell 0.0261f^3.395+0.710 | "
      "Skylake 9.095e-9f^20.9+0.888; per-chip fits are tighter");

  const auto& study = bench::shared_transit_study();
  const auto rows = core::build_transit_models(study);
  if (!rows) {
    std::fprintf(stderr, "model build failed: %s\n",
                 rows.status().to_string().c_str());
    return 1;
  }
  bench::print_model_table("TABLE V (reproduced fits on scaled power)", *rows);

  double rmse_total = 0.0;
  double rmse_bdw = 0.0;
  double rmse_skl = 0.0;
  double c_skl = 0.0;
  for (const auto& row : *rows) {
    if (row.partition.name == "Total") {
      rmse_total = row.fit.stats.rmse;
    } else if (row.partition.name == "Broadwell") {
      rmse_bdw = row.fit.stats.rmse;
    } else {
      rmse_skl = row.fit.stats.rmse;
      c_skl = row.fit.c;
    }
  }
  std::printf("\nShape checks vs the paper:\n");
  bench::print_comparison(
      "per-chip RMSE < pooled RMSE", "yes",
      (rmse_bdw < rmse_total && rmse_skl < rmse_total) ? "yes" : "NO");
  bench::print_comparison("Skylake floor c (~0.89, higher than compression)",
                          "0.888", format_double(c_skl, 3));
  std::printf(
      "\nConclusion check: transit power savings should be modeled per\n"
      "hardware platform (Section IV-B).\n");
  return 0;
}
