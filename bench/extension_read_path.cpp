// Extension — the read path of the paper's I/O story: fetch 512 GB of
// SZ-compressed NYX from the NFS and decompress it for analysis, base
// clock vs the Eqn 3 fractions applied to the inverse pipeline. Not a
// paper artifact; quantifies how the tuning framework transfers to the
// consumer side.

#include <cstdio>

#include "common.hpp"
#include "core/fetch_experiment.hpp"

int main() {
  using namespace lcp;
  bench::print_banner(
      "X1", "extension — 512 GB read path (fetch + decompress)",
      "no paper counterpart; Eqn 3 fractions applied to read (0.85) and "
      "decompress (0.875) stages");

  core::FetchConfig cfg;
  const auto result = core::run_fetch_experiment(cfg);
  if (!result) {
    std::fprintf(stderr, "fetch experiment failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  Table table{{"error bound", "CR", "compressed", "E base (kJ)",
               "E tuned (kJ)", "saved (%)", "runtime +%"}};
  table.set_title("read path, base clock vs tuned");
  for (const auto& o : result->outcomes) {
    table.add_row({format_scientific(o.error_bound, 0),
                   format_double(o.compression_ratio, 1),
                   format_double(o.compressed_bytes.gb(), 1) + "GB",
                   format_double(o.plan.energy_base.kj(), 2),
                   format_double(o.plan.energy_tuned.kj(), 2),
                   format_percent(o.plan.energy_savings(), 1),
                   format_percent(o.plan.runtime_increase(), 1)});
  }
  std::printf("%s", table.render().c_str());

  bench::print_comparison("tuned always below base", "expected",
                          result->mean_energy_savings() > 0.0 ? "yes" : "NO");
  bench::print_comparison(
      "mean energy saved", "(read path, no paper value)",
      format_double(result->mean_energy_saved().kj(), 2) + " kJ");
  std::printf(
      "\nReading: decompression is cheaper than compression, so the read\n"
      "path's absolute energy is lower than Fig 6's dump; the relative\n"
      "savings of frequency tuning carry over to the consumer side.\n");
  return 0;
}
