// Extension — resilient checkpoint containers under corruption. The
// paper's dump model assumes the 512 GB checkpoint either lands intact or
// is rewritten wholesale; chunked framing (framing.hpp / checkpoint.hpp)
// turns storage-side damage into per-slab loss instead. This bench
// corrupts a checkpoint at a ladder of rates with *nested* victim sets
// (the damage at 5% is a strict subset of the damage at 10%), recovers
// each copy, and reports the recovered fraction plus the energy cost of
// re-shipping only the lost region vs re-shipping the whole dump. A
// second ladder prices the framing overhead across chunk sizes against
// the tuning::recommended_chunk_bytes closed form. Exit code enforces
// monotonicity and seed-reproducibility.

#include <cstdio>

#include <algorithm>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "common.hpp"
#include "compress/common/checkpoint.hpp"
#include "compress/common/framing.hpp"
#include "data/generators.hpp"
#include "io/transit_model.hpp"
#include "support/ascii_plot.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "tuning/io_plan.hpp"

namespace {

using namespace lcp;

// Byte offset of frame chunk `index`'s payload (walks the chunk headers;
// the length field sits 8 bytes into each 16-byte chunk header).
std::size_t chunk_payload_offset(const std::vector<std::uint8_t>& bytes,
                                 std::size_t index) {
  std::size_t pos = compress::kFrameHeaderBytes;
  for (std::size_t i = 0; i < index; ++i) {
    const std::size_t len = static_cast<std::size_t>(bytes[pos + 8]) |
                            static_cast<std::size_t>(bytes[pos + 9]) << 8 |
                            static_cast<std::size_t>(bytes[pos + 10]) << 16 |
                            static_cast<std::size_t>(bytes[pos + 11]) << 24;
    pos += compress::kChunkHeaderBytes + len;
  }
  return pos + compress::kChunkHeaderBytes;
}

// Seeded permutation of the slab indices. Corrupting the first k entries
// for growing k yields nested victim sets, which is what makes the
// recovered-fraction ladder provably monotone rather than statistically
// monotone.
std::vector<std::size_t> victim_order(std::size_t slab_count,
                                      std::uint64_t seed) {
  std::vector<std::size_t> order(slab_count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng{seed};
  for (std::size_t i = slab_count; i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }
  return order;
}

struct LadderRow {
  double rate = 0.0;
  std::size_t slabs_hit = 0;
  double recovered_fraction = 0.0;
  std::size_t lost_elements = 0;
  double rework_j = 0.0;  // energy to re-ship only the lost region
};

// Corrupts the first `slabs_hit` victims (one flipped byte mid-payload
// each; slab i rides frame chunk i+1 behind the manifest) and recovers.
Expected<compress::RecoveryReport> recover_damaged(
    const std::vector<std::uint8_t>& clean,
    const std::vector<std::size_t>& order, std::size_t slabs_hit) {
  std::vector<std::uint8_t> damaged = clean;
  for (std::size_t v = 0; v < slabs_hit; ++v) {
    const std::size_t off = chunk_payload_offset(damaged, order[v] + 1);
    damaged[off + 5] ^= 0xA5;
  }
  compress::RecoveryPolicy policy;
  policy.fill = compress::RecoveryFill::kZero;
  return compress::recover_checkpoint(damaged, policy);
}

}  // namespace

int main() {
  bench::print_banner(
      "X3", "Extension — checkpoint recovery vs corruption rate",
      "chunked framing caps the blast radius of storage corruption at one "
      "slab; recovered fraction degrades monotonically and the rework "
      "energy scales with the lost region, not the dump");

  // ~40 slabs: enough resolution for a 2% ladder step to hit >= 1 slab.
  const data::Field field = data::generate_nyx(34, /*seed=*/42);
  compress::CheckpointOptions opts;
  opts.codec = "sz";
  opts.bound = compress::ErrorBound::absolute(1e-3);
  opts.chunk_elements = 1024;
  const auto checkpoint = compress::write_checkpoint(field, opts);
  LCP_REQUIRE(checkpoint.has_value(), "checkpoint write failed");

  const auto info = compress::probe_frame(*checkpoint);
  LCP_REQUIRE(info.has_value(), "fresh checkpoint failed its own probe");
  const std::size_t slab_count = info->chunk_count - 2;  // manifest x2
  std::printf("  checkpoint: %zu elements -> %zu slabs, %zu framed bytes\n\n",
              field.values().size(), slab_count, checkpoint->size());

  const auto& spec = power::chip(power::ChipId::kBroadwellD1548);
  const io::TransitModelConfig transit;
  const auto transit_joules = [&](std::uint64_t bytes) {
    if (bytes == 0) return 0.0;
    const auto w = io::transit_workload(spec, Bytes{bytes}, transit);
    return power::workload_energy(w, spec, spec.f_max).joules();
  };
  const double full_redump_j =
      transit_joules(field.values().size() * sizeof(float));

  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.10, 0.20, 0.40};
  const std::vector<std::size_t> order =
      victim_order(slab_count, /*seed=*/20240601);

  CsvWriter csv{{"corruption_rate", "slabs_hit", "recovered_fraction",
                 "lost_elements", "rework_j", "full_redump_j"}};
  std::vector<LadderRow> ladder;
  bool monotone = true;
  for (double rate : rates) {
    LadderRow row;
    row.rate = rate;
    row.slabs_hit = static_cast<std::size_t>(
        rate * static_cast<double>(slab_count) + 0.5);
    const auto report = recover_damaged(*checkpoint, order, row.slabs_hit);
    LCP_REQUIRE(report.has_value(), "recovery must not fail wholesale");
    row.recovered_fraction = report->recovered_fraction();
    row.lost_elements = report->lost_elements;
    row.rework_j = transit_joules(row.lost_elements * sizeof(float));

    if (!ladder.empty()) {
      const LadderRow& prev = ladder.back();
      if (row.recovered_fraction > prev.recovered_fraction ||
          row.rework_j < prev.rework_j) {
        monotone = false;
      }
    }
    csv.add_row({format_double(rate, 2), std::to_string(row.slabs_hit),
                 format_double(row.recovered_fraction, 4),
                 std::to_string(row.lost_elements),
                 format_double(row.rework_j, 4),
                 format_double(full_redump_j, 4)});
    std::printf(
        "  rate %4.0f%%: %2zu slabs hit, recovered %6.2f%%, rework %8.4f J "
        "(full re-dump %.4f J)\n",
        rate * 100.0, row.slabs_hit, row.recovered_fraction * 100.0,
        row.rework_j, full_redump_j);
    ladder.push_back(row);
  }

  PlotSeries recovered;
  recovered.name = "recovered %";
  recovered.glyph = 'R';
  for (const LadderRow& row : ladder) {
    recovered.x.push_back(row.rate * 100.0);
    recovered.y.push_back(row.recovered_fraction * 100.0);
  }
  PlotOptions plot;
  plot.title = "Recovered fraction vs corrupted slab fraction (sz, 1 Ki "
               "elements/slab)";
  plot.x_label = "corrupted %";
  plot.y_label = "recovered %";
  std::printf("\n%s\n", render_plot({recovered}, plot).c_str());

  // Chunk-size ladder: the framing tax that buys the recovery above,
  // priced through the same transit model, against the closed-form
  // expectation from tuning::evaluate_chunk_size.
  CsvWriter size_csv{{"chunk_bytes", "overhead_fraction",
                      "overhead_j_per_gb", "expected_recovered_fraction"}};
  std::printf("  framing tax per chunk size (1 GB stream, loss 1e-6/byte):\n");
  const std::uint64_t gb = Bytes::from_gb(1).bytes();
  for (const std::size_t chunk_bytes :
       {std::size_t{1} << 10, std::size_t{4} << 10, std::size_t{64} << 10,
        std::size_t{1} << 20}) {
    const std::uint64_t overhead = compress::frame_overhead_bytes(
        static_cast<std::size_t>(gb), chunk_bytes);
    const auto trade = tuning::evaluate_chunk_size(
        chunk_bytes, /*byte_loss_rate=*/1e-6, compress::kChunkHeaderBytes);
    size_csv.add_row({std::to_string(chunk_bytes),
                      format_double(trade.overhead_fraction, 6),
                      format_double(transit_joules(overhead), 3),
                      format_double(trade.expected_recovered_fraction, 4)});
    std::printf("    %8zu B chunks: +%.4f%% bytes, +%.3f J/GB, expected "
                "survival %.4f\n",
                chunk_bytes, trade.overhead_fraction * 100.0,
                transit_joules(overhead),
                trade.expected_recovered_fraction);
  }
  std::printf("  recommended chunk at loss 1e-6/byte: %zu B\n\n",
              tuning::recommended_chunk_bytes(1e-6));

  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  bench::emit_csv(csv, "bench_out/extension_corruption_recovery.csv");
  bench::emit_csv(size_csv,
                  "bench_out/extension_corruption_framing_tax.csv");
  std::printf("\n");

  bench::print_comparison(
      "recovered fraction monotone non-increasing, rework J non-decreasing",
      "yes", monotone ? "yes" : "NO");

  // Determinism contract: the same seed corrupts the same slabs and the
  // recovery emits the identical verdicts and the identical filled field.
  const auto a = recover_damaged(*checkpoint, order, slab_count / 4);
  const auto b = recover_damaged(*checkpoint, order, slab_count / 4);
  bool reproducible = a.has_value() && b.has_value() &&
                      a->lost_elements == b->lost_elements &&
                      a->slabs.size() == b->slabs.size() &&
                      std::ranges::equal(a->field.values(),
                                         b->field.values());
  if (reproducible) {
    for (std::size_t i = 0; i < a->slabs.size(); ++i) {
      if (a->slabs[i].recovered != b->slabs[i].recovered ||
          a->slabs[i].frame_state != b->slabs[i].frame_state) {
        reproducible = false;
      }
    }
  }
  bench::print_comparison("seeded damage replays to identical recovery",
                          "yes", reproducible ? "yes" : "NO");
  return (monotone && reproducible) ? 0 : 1;
}
