// Figure 2 — compression scaled runtime characteristics: scaled runtime vs
// frequency per (chip x compressor); best runtime at max clock, SZ and ZFP
// trends overlapping.

#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcp;
  const bool full = bench::full_scale_requested(argc, argv);
  bench::print_banner(
      "F2", "Fig 2 — compression scaled runtime characteristics",
      "runtime falls monotonically to 1.0 at f_max (~1.8x at f_min); SZ and "
      "ZFP overlap; -12.5% f => ~+7.5% runtime");

  const auto& study = bench::shared_compression_study(full);

  std::vector<bench::AggregatedCurve> curves;
  for (power::ChipId chip : power::all_chips()) {
    for (compress::CodecId codec : compress::all_codecs()) {
      std::vector<const std::vector<core::SweepPoint>*> sweeps;
      for (const auto& series : study.series) {
        if (series.chip == chip && series.codec == codec) {
          sweeps.push_back(&series.sweep);
        }
      }
      std::string label = power::chip_series_name(chip);
      label += "-";
      label += compress::codec_name(codec);
      curves.push_back(
          bench::aggregate_scaled(label, sweeps, core::SweepMetric::kRuntime));
    }
  }
  bench::emit_figure("fig2_compression_runtime",
                     "Fig 2 (reproduced): scaled runtime vs frequency",
                     "t(f)/t(f_max)", curves);

  std::printf("\nShape checks vs the paper:\n");
  for (const auto& curve : curves) {
    bench::print_comparison("scaled runtime at f_min [" + curve.label + "]",
                            "~1.8", format_double(curve.mean.front(), 3));
    // Runtime increase at the Eqn 3 compression point (-12.5%).
    const double f_tuned = curve.f_ghz.back() * 0.875;
    double nearest = curve.mean.back();
    double best_gap = 1e9;
    for (std::size_t i = 0; i < curve.f_ghz.size(); ++i) {
      const double gap = std::abs(curve.f_ghz[i] - f_tuned);
      if (gap < best_gap) {
        best_gap = gap;
        nearest = curve.mean[i];
      }
    }
    bench::print_comparison("runtime at 0.875 f_max [" + curve.label + "]",
                            "~1.075", format_double(nearest, 3));
  }

  // SZ/ZFP overlap: compare the two codecs on the same chip.
  for (power::ChipId chip : power::all_chips()) {
    const bench::AggregatedCurve* sz = nullptr;
    const bench::AggregatedCurve* zfp = nullptr;
    for (const auto& curve : curves) {
      if (curve.label.find(power::chip_series_name(chip)) == std::string::npos) {
        continue;
      }
      if (curve.label.find("-sz") != std::string::npos) {
        sz = &curve;
      } else {
        zfp = &curve;
      }
    }
    double max_gap = 0.0;
    for (std::size_t i = 0; i < sz->mean.size(); ++i) {
      max_gap = std::max(max_gap, std::abs(sz->mean[i] - zfp->mean[i]));
    }
    bench::print_comparison(
        std::string("SZ/ZFP overlap gap [") + power::chip_series_name(chip) +
            "]",
        "overlapping", format_double(max_gap, 3));
  }
  return 0;
}
