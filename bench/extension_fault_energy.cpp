// Extension — energy cost of a lossy link. The paper's Table V transit
// model assumes every byte crosses the wire exactly once; here a seeded
// fault injector drops a configurable fraction of RPC chunks, the client
// rides it out with retry/backoff, and the measured retransmit/idle
// overhead is priced through the power model: package energy per GB as a
// function of loss rate, for both chips at f_max. Also demonstrates the
// determinism contract (one seed -> one exact retry trace).

#include <cstdio>

#include <filesystem>
#include <string>
#include <vector>

#include "common.hpp"
#include "io/fault.hpp"
#include "io/nfs_client.hpp"
#include "io/transit_model.hpp"
#include "power/energy_counter.hpp"
#include "support/ascii_plot.hpp"
#include "support/csv.hpp"

namespace {

struct ProbeResult {
  lcp::io::TransitRetryProfile profile;
  std::vector<lcp::io::RpcAttempt> trace;
};

// Runs a real (byte-moving) probe transfer over a link with `loss_rate`
// and returns the measured retry profile extrapolated to `full_size`.
ProbeResult probe_loss_rate(double loss_rate, lcp::Bytes full_size,
                            std::uint64_t seed) {
  using namespace lcp;
  // 4096 chunks give every loss rate on the ladder a multi-sigma gap in
  // expected retransmit count, so the energy curve is cleanly monotone.
  constexpr std::size_t kChunk = 16 * 1024;
  constexpr std::size_t kChunks = 4096;

  io::FaultPlan plan = io::FaultPlan::loss(seed, loss_rate);
  io::FaultInjector injector{plan};
  io::NfsServer server;
  io::NfsClientConfig cfg;
  cfg.rpc_chunk_bytes = kChunk;
  io::NfsClient client{server, cfg};
  client.attach_fault_injector(&injector);

  std::vector<std::uint8_t> data(kChunk * kChunks);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  const Status st = client.write_file("probe", data);
  LCP_REQUIRE(st.is_ok(), "probe transfer failed (raise max_attempts)");

  ProbeResult result;
  result.profile = io::retry_profile_from_stats(
      client.retry_stats(), Bytes{data.size()}, full_size);
  result.trace = client.trace();
  return result;
}

}  // namespace

int main() {
  using namespace lcp;
  bench::print_banner(
      "X2", "Extension — retry energy on a lossy NFS link",
      "Table V assumes loss-free transit; injected loss adds retransmit "
      "and backoff energy, monotone in the loss rate");

  const Bytes size = Bytes::from_gb(1);
  const io::TransitModelConfig transit;
  const std::vector<double> loss_rates = {0.0,  0.005, 0.01, 0.02,
                                          0.05, 0.10,  0.15};

  CsvWriter csv{{"loss_rate", "chip", "retransmit_fraction", "idle_s_per_gb",
                 "energy_j_per_gb", "retry_overhead_j_per_gb"}};
  std::vector<PlotSeries> series(power::all_chips().size());
  power::EnergyCounter retry_meter;  // accumulates the fault-only energy

  bool monotone = true;
  std::vector<double> prev_energy(power::all_chips().size(), 0.0);
  for (double rate : loss_rates) {
    const ProbeResult probe = probe_loss_rate(rate, size, /*seed=*/20240601);
    for (std::size_t c = 0; c < power::all_chips().size(); ++c) {
      const power::ChipId chip = power::all_chips()[c];
      const auto& spec = power::chip(chip);
      const auto w = io::transit_workload(spec, size, transit, probe.profile);
      const double energy =
          power::workload_energy(w, spec, spec.f_max).joules();
      const Joules overhead = io::transit_retry_energy_overhead(
          spec, size, transit, probe.profile, spec.f_max);
      retry_meter.add(overhead);

      if (energy < prev_energy[c]) {
        monotone = false;
      }
      prev_energy[c] = energy;
      series[c].name = power::chip_series_name(chip);
      series[c].glyph = c == 0 ? 'B' : 'S';
      series[c].x.push_back(rate * 100.0);
      series[c].y.push_back(energy);
      csv.add_row({format_double(rate, 3), power::chip_series_name(chip),
                   format_double(probe.profile.retransmit_fraction, 4),
                   format_double(probe.profile.idle_seconds.seconds(), 3),
                   format_double(energy, 1),
                   format_double(overhead.joules(), 1)});
    }
  }

  PlotOptions opts;
  opts.title = "Package energy per GB written vs injected loss rate (f_max)";
  opts.x_label = "loss %";
  opts.y_label = "J/GB";
  std::printf("%s\n", render_plot(series, opts).c_str());

  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  bench::emit_csv(csv, "bench_out/extension_fault_energy.csv");
  std::printf("\n");

  bench::print_comparison("energy/GB monotone in loss rate", "yes",
                          monotone ? "yes" : "NO");
  std::printf("  total fault-only energy across the ladder: %.1f J\n",
              retry_meter.total().joules());

  // Determinism contract: the same seed replays the same retry trace.
  const ProbeResult a = probe_loss_rate(0.05, size, /*seed=*/7);
  const ProbeResult b = probe_loss_rate(0.05, size, /*seed=*/7);
  const bool reproducible = a.trace == b.trace && !a.trace.empty();
  bench::print_comparison("seed 7 retry trace reproduces exactly",
                          "yes", reproducible ? "yes" : "NO");
  return (monotone && reproducible) ? 0 : 1;
}
