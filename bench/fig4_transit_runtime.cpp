// Figure 4 — data transit scaled runtime characteristics: scaled runtime
// vs frequency per chip. Broadwell keeps scaling (CPU-bound write path);
// Skylake is stagnant over the upper range (pipeline floor).

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lcp;
  bench::print_banner(
      "F4", "Fig 4 — data transit scaled runtime characteristics",
      "lowest runtime at max clock; Skylake runtime stagnant (floor-bound); "
      "-15% f => ~+9.3% runtime on average");

  const auto& study = bench::shared_transit_study();

  std::vector<bench::AggregatedCurve> curves;
  for (power::ChipId chip : power::all_chips()) {
    std::vector<const std::vector<core::SweepPoint>*> sweeps;
    for (const auto& series : study.series) {
      if (series.chip == chip) {
        sweeps.push_back(&series.sweep);
      }
    }
    curves.push_back(bench::aggregate_scaled(power::chip_series_name(chip),
                                             sweeps,
                                             core::SweepMetric::kRuntime));
  }
  bench::emit_figure("fig4_transit_runtime",
                     "Fig 4 (reproduced): transit scaled runtime vs frequency",
                     "t(f)/t(f_max)", curves);

  std::printf("\nShape checks vs the paper:\n");
  double mean_increase = 0.0;
  for (const auto& curve : curves) {
    // Stagnation metric: relative runtime change over the top third of the
    // frequency range.
    const std::size_t top_third = curve.f_ghz.size() * 2 / 3;
    const double top_change =
        curve.mean[top_third] / curve.mean.back() - 1.0;
    bench::print_comparison(
        "runtime change over top third [" + curve.label + "]",
        curve.label == "Skylake" ? "~0 (stagnant)" : "scaling",
        format_percent(top_change, 1));

    const double f_tuned = curve.f_ghz.back() * 0.85;
    double nearest = curve.mean.back();
    double best_gap = 1e9;
    for (std::size_t i = 0; i < curve.f_ghz.size(); ++i) {
      const double gap = std::abs(curve.f_ghz[i] - f_tuned);
      if (gap < best_gap) {
        best_gap = gap;
        nearest = curve.mean[i];
      }
    }
    mean_increase += nearest - 1.0;
    bench::print_comparison("runtime at 0.85 f_max [" + curve.label + "]",
                            "+9.3% avg", format_percent(nearest - 1.0, 1));
  }
  bench::print_comparison("mean runtime increase at -15% f", "+9.3%",
                          format_percent(mean_increase / curves.size(), 1));
  return 0;
}
