// Table I — datasets considered in the study: regenerate each synthetic
// stand-in, print its dimensions and field size next to the published row.

#include <cstdio>

#include "common.hpp"
#include "data/registry.hpp"

int main(int argc, char** argv) {
  using namespace lcp;
  const bool full = bench::full_scale_requested(argc, argv);
  const auto scale = full ? data::Scale::kPaper : data::Scale::kCi;

  bench::print_banner("T1", "Table I — data sets considered in study",
                      "CESM-ATM 26x1800x3600 673.9MB | HACC 1x280953867 "
                      "1046.9MB | NYX 512x512x512 536.9MB");

  Table table{{"Domain", "Dimensions (paper)", "Size (paper)",
               "Dimensions (generated)", "Size (generated)", "value range"}};
  table.set_title(full ? "TABLE I (paper-scale generation)"
                       : "TABLE I (CI-scale generation; --full for paper dims)");
  for (const auto& spec : data::table1_datasets()) {
    const auto field = data::generate_dataset(spec.id, scale, 20220530);
    const auto range = field.value_range();
    char range_str[64];
    std::snprintf(range_str, sizeof(range_str), "[%.3g, %.3g]",
                  static_cast<double>(range.lo),
                  static_cast<double>(range.hi));
    table.add_row({spec.domain, spec.paper_dims.to_string(),
                   format_double(spec.paper_size_mb, 1) + "MB",
                   field.dims().to_string(),
                   format_double(field.size_bytes().mb(), 1) + "MB",
                   range_str});
  }
  std::printf("%s", table.render().c_str());

  bench::print_comparison("dataset count", "3", "3");
  std::printf(
      "\nSubstitution note: fields are synthetic with matching rank and\n"
      "correlation structure (see DESIGN.md section 2).\n");
  return 0;
}
