// Figure 6 — energy dissipation for data dumping: compress 512 GB of NYX
// with SZ and write it over the NFS, base clock vs the Eqn 3 tuned plan,
// across error bounds 1e-1..1e-4. Paper: tuned always lower; 6.5 kJ / 13%
// saved on average.

#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>

#include "common.hpp"
#include "core/dump_experiment.hpp"

int main() {
  using namespace lcp;
  bench::print_banner(
      "F6", "Fig 6 — energy dissipation for data dumping (512 GB NYX, SZ)",
      "tuned plan always below base clock; mean saving 6.5 kJ = 13%");

  core::DumpConfig cfg;  // defaults: 512 GB, Broadwell, SZ, Eqn 3 rule
  const auto result = core::run_dump_experiment(cfg);
  if (!result) {
    std::fprintf(stderr, "dump experiment failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  Table table{{"error bound", "CR", "compressed", "E base (kJ)",
               "E tuned (kJ)", "saved (kJ)", "saved (%)", "runtime +%"}};
  table.set_title("Fig 6 data (reproduced)");
  for (const auto& o : result->outcomes) {
    table.add_row({format_scientific(o.error_bound, 0),
                   format_double(o.compression_ratio, 1),
                   format_double(o.compressed_bytes.gb(), 1) + "GB",
                   format_double(o.plan.energy_base.kj(), 2),
                   format_double(o.plan.energy_tuned.kj(), 2),
                   format_double(o.plan.energy_saved().kj(), 2),
                   format_percent(o.plan.energy_savings(), 1),
                   format_percent(o.plan.runtime_increase(), 1)});
  }
  std::printf("%s", table.render().c_str());

  // Bar-chart style rendering of base vs tuned per bound.
  std::printf("\n");
  for (const auto& o : result->outcomes) {
    const double base_kj = o.plan.energy_base.kj();
    const double tuned_kj = o.plan.energy_tuned.kj();
    const double unit = base_kj / 50.0;
    std::printf("  eb=%-6.0e base  |%s %.1f kJ\n", o.error_bound,
                std::string(static_cast<std::size_t>(base_kj / unit), '#')
                    .c_str(),
                base_kj);
    std::printf("           tuned |%s %.1f kJ\n",
                std::string(static_cast<std::size_t>(tuned_kj / unit), '#')
                    .c_str(),
                tuned_kj);
  }

  bool always_lower = true;
  for (const auto& o : result->outcomes) {
    always_lower &= o.plan.energy_tuned < o.plan.energy_base;
  }
  std::printf("\nShape checks vs the paper:\n");
  bench::print_comparison("tuned always below base clock", "yes",
                          always_lower ? "yes" : "NO");
  bench::print_comparison("mean energy saved", "6.5 kJ",
                          format_double(result->mean_energy_saved().kj(), 2) +
                              " kJ");
  bench::print_comparison("mean energy savings", "13%",
                          format_percent(result->mean_energy_savings(), 1));
  std::printf(
      "\nNote: the paper's own Table IV/V models imply ~5-7%% net energy\n"
      "savings for Eqn 3 (power ratio x runtime ratio); its measured 13%%\n"
      "exceeds what its fitted models predict. This reproduction follows\n"
      "the models (see EXPERIMENTS.md).\n");

  CsvWriter csv{{"error_bound", "cr", "compressed_gb", "energy_base_kj",
                 "energy_tuned_kj"}};
  for (const auto& o : result->outcomes) {
    csv.add_row({format_scientific(o.error_bound, 1),
                 format_double(o.compression_ratio, 2),
                 format_double(o.compressed_bytes.gb(), 2),
                 format_double(o.plan.energy_base.kj(), 3),
                 format_double(o.plan.energy_tuned.kj(), 3)});
  }
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  bench::emit_csv(csv, "bench_out/fig6_data_dumping.csv");
  return 0;
}
