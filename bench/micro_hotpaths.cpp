// Micro-benchmarks for the hot paths touched by the kernel overhaul:
// thread-pool dispatch, the fused SZ predict+quantize pass, canonical
// Huffman encode/decode, raw bitstream write/read, and chunk-parallel SZ
// compression across worker counts.
//
// Unlike the figure/table benches this is a plain timing harness (no
// google-benchmark) so it can emit a stable machine-readable summary:
//   micro_hotpaths [--quick] [--json [path]]
// --json writes BENCH_hotpaths.json (default path) with one record per
// op: {op, ns_per_op, bytes_per_sec, workers}.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "compress/common/parallel.hpp"
#include "compress/sz/huffman.hpp"
#include "compress/sz/pipeline.hpp"
#include "compress/sz/quantizer.hpp"
#include "compress/sz/sz_compressor.hpp"
#include "data/generators.hpp"
#include "support/bitstream.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct BenchRecord {
  std::string op;
  double ns_per_op = 0.0;
  double bytes_per_sec = 0.0;  // 0 when the op has no natural byte volume
  std::size_t workers = 0;     // 0 for single-threaded kernels
};

std::vector<BenchRecord> g_records;

/// Times `body` (which must process `bytes` payload bytes per call) over
/// `iters` iterations and records + prints one line.
template <typename Body>
void run_case(const std::string& op, std::size_t iters, std::size_t bytes,
              std::size_t workers, Body&& body) {
  body();  // warm-up (also primes pool workers / page-faults the buffers)
  const auto start = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    body();
  }
  const auto stop = Clock::now();
  const double total_ns =
      std::chrono::duration<double, std::nano>(stop - start).count();
  BenchRecord rec;
  rec.op = op;
  rec.ns_per_op = total_ns / static_cast<double>(iters);
  rec.workers = workers;
  if (bytes > 0 && total_ns > 0.0) {
    rec.bytes_per_sec = static_cast<double>(bytes) *
                        static_cast<double>(iters) / (total_ns * 1e-9);
  }
  g_records.push_back(rec);
  std::printf("%-34s %12.1f ns/op", rec.op.c_str(), rec.ns_per_op);
  if (rec.bytes_per_sec > 0.0) {
    std::printf(" %9.1f MB/s", rec.bytes_per_sec / 1e6);
  }
  if (rec.workers > 0) {
    std::printf("  workers=%zu", rec.workers);
  }
  std::printf("\n");
}

void write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_hotpaths: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const auto& r = g_records[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"bytes_per_sec\": %.3f, \"workers\": %zu}%s\n",
                 r.op.c_str(), r.ns_per_op, r.bytes_per_sec, r.workers,
                 i + 1 < g_records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path.c_str(), g_records.size());
}

void bench_pool_dispatch(bool quick) {
  const std::size_t tasks = quick ? 2000 : 20000;
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    lcp::ThreadPool pool{workers};
    std::atomic<std::uint64_t> sink{0};
    run_case("pool/parallel_for_" + std::to_string(tasks), quick ? 3 : 10, 0,
             workers, [&] {
               pool.parallel_for(0, tasks, [&](std::size_t i) {
                 sink.fetch_add(i, std::memory_order_relaxed);
               });
             });
  }
}

void bench_fused_pipeline(bool quick) {
  const std::size_t n = quick ? 64 : 192;
  const auto field = lcp::data::generate_nyx(n, 7);
  const lcp::sz::LinearQuantizer quantizer{1e-3};
  std::vector<std::uint32_t> codes;
  std::vector<std::uint32_t> exact;
  std::vector<float> decoded;
  const std::size_t bytes = field.element_count() * sizeof(float);
  run_case("sz/predict_quantize_fused", quick ? 3 : 10, bytes, 0, [&] {
    codes.clear();
    exact.clear();
    lcp::sz::predict_quantize_fused(field.values(), field.dims().extents(),
                                    lcp::sz::SzPredictor::kFirstOrder,
                                    quantizer, codes, exact, decoded);
  });

  std::vector<float> exact_f(exact.size());
  std::memcpy(exact_f.data(), exact.data(), exact.size() * sizeof(float));
  std::vector<float> out(field.element_count());
  run_case("sz/reconstruct_fused", quick ? 3 : 10, bytes, 0, [&] {
    std::size_t consumed = 0;
    const bool ok = lcp::sz::reconstruct_fused(
        codes, exact_f, field.dims().extents(),
        lcp::sz::SzPredictor::kFirstOrder, quantizer, out, consumed);
    LCP_REQUIRE(ok, "fused reconstruction failed in benchmark");
  });
}

void bench_huffman(bool quick) {
  // Quantization-code-shaped symbols: concentrated near the radius with a
  // geometric tail, matching the Huffman coder's production input.
  const std::size_t count = quick ? (1u << 16) : (1u << 20);
  constexpr std::uint32_t kRadius = 32768;
  lcp::Rng rng{11};
  std::vector<std::uint32_t> symbols(count);
  for (auto& s : symbols) {
    std::int64_t delta = 0;
    while (delta < 64 && rng.uniform() < 0.5) {
      ++delta;
    }
    if (rng.uniform() < 0.5) {
      delta = -delta;
    }
    s = static_cast<std::uint32_t>(kRadius + delta);
  }
  const std::size_t bytes = count * sizeof(std::uint32_t);
  std::vector<std::uint8_t> blob;
  run_case("huffman/encode", quick ? 3 : 10, bytes, 0,
           [&] { blob = lcp::sz::huffman_encode(symbols, 2 * kRadius); });
  run_case("huffman/decode", quick ? 3 : 10, bytes, 0, [&] {
    auto decoded = lcp::sz::huffman_decode(blob, count);
    LCP_REQUIRE(decoded.has_value() && decoded->size() == count,
                "huffman decode failed in benchmark");
  });
}

void bench_bitstream(bool quick) {
  const std::size_t n = quick ? (1u << 16) : (1u << 20);
  lcp::Rng rng{23};
  std::vector<std::uint64_t> words(n);
  std::vector<unsigned> widths(n);
  for (std::size_t i = 0; i < n; ++i) {
    widths[i] = 1 + static_cast<unsigned>(rng.next_u64() % 24);
    words[i] = rng.next_u64() & ((1ULL << widths[i]) - 1);
  }
  std::size_t payload_bits = 0;
  for (unsigned w : widths) {
    payload_bits += w;
  }
  const std::size_t bytes = payload_bits / 8;

  std::vector<std::uint8_t> buffer;
  run_case("bitstream/write_bits", quick ? 3 : 10, bytes, 0, [&] {
    lcp::BitWriter writer;
    for (std::size_t i = 0; i < n; ++i) {
      writer.write_bits(words[i], widths[i]);
    }
    buffer = writer.finish();
  });
  run_case("bitstream/read_bits", quick ? 3 : 10, bytes, 0, [&] {
    lcp::BitReader reader{buffer};
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sink ^= reader.read_bits(widths[i]);
    }
    LCP_REQUIRE(!reader.overflowed(), "bitstream benchmark overflow");
  });
}

void bench_parallel_compress(bool quick) {
  const std::size_t n = quick ? 96 : 256;
  const auto field = lcp::data::generate_nyx(n, 3);
  const lcp::sz::SzCompressor codec{{}};
  const auto bound = lcp::compress::ErrorBound::absolute(1e-3);
  lcp::compress::ParallelOptions options;
  options.target_chunk_elements = field.element_count() / 16;
  const std::size_t bytes = field.element_count() * sizeof(float);

  double baseline_ns = 0.0;
  for (std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    lcp::ThreadPool pool{workers};
    run_case("parallel_compress/sz", quick ? 1 : 3, bytes, workers, [&] {
      auto result = lcp::compress::parallel_compress(codec, field, bound, pool,
                                                     options);
      LCP_REQUIRE(result.has_value(), "parallel_compress failed in benchmark");
    });
    const auto& rec = g_records.back();
    if (workers == 1) {
      baseline_ns = rec.ns_per_op;
    } else if (baseline_ns > 0.0) {
      std::printf("  speedup vs 1 worker: %.2fx\n",
                  baseline_ns / rec.ns_per_op);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_path = argv[++i];
      }
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json [path]]\n", argv[0]);
      return 1;
    }
  }

  std::printf("== micro_hotpaths (%s scale) ==\n", quick ? "quick" : "full");
  bench_pool_dispatch(quick);
  bench_fused_pipeline(quick);
  bench_huffman(quick);
  bench_bitstream(quick);
  bench_parallel_compress(quick);

  if (json) {
    write_json(json_path);
  }
  return 0;
}
