// Micro-benchmarks for the hot paths touched by the kernel overhaul:
// thread-pool dispatch, the fused SZ predict+quantize pass, canonical
// Huffman encode/decode, raw bitstream write/read, the byte-shuffle and
// zlite lossless kernels, ZFP embedded plane coding, chunk-parallel SZ
// compression across worker counts, and the streaming dump engine.
//
// Unlike the figure/table benches this is a plain timing harness (no
// google-benchmark) so it can emit a stable machine-readable summary:
//   micro_hotpaths [--quick] [--json [path]]
// --json merges into BENCH_hotpaths.json (default path): records are
// keyed by (op, workers, dispatch) — an existing record with the same key
// is replaced in place, unknown keys are preserved, new keys are appended
// — so one bench run never wipes another's rows, and scalar rows survive
// an AVX2-host run (and vice versa).
//
// SIMD discipline: every vectorized kernel runs as a scalar/avx2 pair
// (interleaved, best-of-N — this host is a noisy shared VM and min-of-
// interleaved is robust where mean-of-batch is not) with a bit-identity
// spot check between the two dispatch levels' outputs. Gates (exit code):
//   sz/predict_quantize_fused and huffman/decode: avx2 >= 2x scalar at
//     full scale (>= 1.5x at --quick scale) when the host has AVX2
//   every other paired kernel: avx2 never worse than scalar beyond a
//     0.85x noise tolerance
//   identity: paired outputs bit-identical across dispatch levels
// On scalar-only hosts (or under LCP_FORCE_SCALAR=1) the SIMD gates all
// pass trivially: there is nothing to compare.
//
// Scaling discipline: wall-clock rows are real measurements and therefore
// flat on a single-CPU host. The */modeled rows are the LPT makespan of
// the *measured* per-chunk durations plus the measured serial share —
// the same modeled-time accounting the rest of the repo uses — and those
// are what the scaling gates (exit code) enforce:
//   parallel_compress/sz_modeled: >= 1.5x at 4 workers, >= 3x at 8
//   dump/streaming_modeled: overlapped makespan strictly below the
//     serial compress + write sum at every worker count
//
// The Eqn 3 section re-derives the compute/transit crossover bandwidth B*
// from each dispatch level's measured end-to-end codec throughput
// (tuning/codec_choice.hpp): a faster codec shrinks the compute term and
// moves B* upward, so the gate checks B*_avx2 >= B*_scalar and that the
// compress-or-raw decision actually flips between the two crossovers.

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "compress/common/parallel.hpp"
#include "compress/lossless/shuffle_codec.hpp"
#include "compress/simd/dispatch.hpp"
#include "compress/sz/huffman.hpp"
#include "compress/sz/pipeline.hpp"
#include "compress/sz/quantizer.hpp"
#include "compress/sz/sz_compressor.hpp"
#include "compress/sz/zlite.hpp"
#include "compress/zfp/embedded_coder.hpp"
#include "core/streaming_dump.hpp"
#include "data/generators.hpp"
#include "io/nfs_client.hpp"
#include "io/transit_model.hpp"
#include "power/chip_model.hpp"
#include "support/bitstream.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/thread_pool.hpp"
#include "tuning/codec_choice.hpp"
#include "tuning/rule.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::string current_dispatch_name() {
  return lcp::simd::simd_level_name(lcp::simd::simd_level());
}

struct BenchRecord {
  std::string op;
  double ns_per_op = 0.0;
  double bytes_per_sec = 0.0;  // 0 when the op has no natural byte volume
  std::size_t workers = 0;     // 0 for single-threaded kernels
  std::string dispatch;        // simd level the op ran at ("scalar"/"avx2")
};

std::vector<BenchRecord> g_records;

void push_record(const std::string& op, double ns_per_op, std::size_t bytes,
                 std::size_t iters, std::size_t workers,
                 const std::string& dispatch) {
  BenchRecord rec;
  rec.op = op;
  rec.ns_per_op = ns_per_op;
  rec.workers = workers;
  rec.dispatch = dispatch;
  if (bytes > 0 && ns_per_op > 0.0) {
    rec.bytes_per_sec = static_cast<double>(bytes) / (ns_per_op * 1e-9);
  }
  (void)iters;
  g_records.push_back(rec);
  std::printf("%-34s %12.1f ns/op", rec.op.c_str(), rec.ns_per_op);
  if (rec.bytes_per_sec > 0.0) {
    std::printf(" %9.1f MB/s", rec.bytes_per_sec / 1e6);
  }
  if (rec.workers > 0) {
    std::printf("  workers=%zu", rec.workers);
  }
  std::printf("  [%s]\n", rec.dispatch.c_str());
}

/// Times `body` (which must process `bytes` payload bytes per call) over
/// `iters` iterations and records + prints one line at the current
/// dispatch level.
template <typename Body>
void run_case(const std::string& op, std::size_t iters, std::size_t bytes,
              std::size_t workers, Body&& body) {
  body();  // warm-up (also primes pool workers / page-faults the buffers)
  const auto start = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    body();
  }
  const auto stop = Clock::now();
  const double total_ns =
      std::chrono::duration<double, std::nano>(stop - start).count();
  push_record(op, total_ns / static_cast<double>(iters), bytes, iters, workers,
              current_dispatch_name());
}

/// Records a row computed from modeled (not measured-in-place) seconds.
void record_modeled(const std::string& op, double seconds, std::size_t bytes,
                    std::size_t workers) {
  push_record(op, seconds * 1e9, bytes, 1, workers, current_dispatch_name());
}

/// Best-of times of one body under both dispatch levels.
struct PairedTimes {
  double scalar_ns = 0.0;
  double simd_ns = 0.0;
  bool has_simd = false;  // host+build actually reach kAvx2

  [[nodiscard]] double speedup() const {
    return has_simd && simd_ns > 0.0 ? scalar_ns / simd_ns : 1.0;
  }
};

/// Runs `body` under forced-scalar and (when available) AVX2 dispatch,
/// interleaving the levels rep by rep and keeping each level's best time.
/// Emits one record per level, keyed by the dispatch name.
template <typename Body>
PairedTimes run_paired(const std::string& op, std::size_t reps,
                       std::size_t bytes, Body&& body) {
  using lcp::simd::ScopedSimdLevel;
  using lcp::simd::SimdLevel;
  PairedTimes times;
  times.has_simd =
      lcp::simd::hardware_simd_level() >= SimdLevel::kAvx2;
  const SimdLevel levels[2] = {SimdLevel::kScalar, SimdLevel::kAvx2};
  const std::size_t nlevels = times.has_simd ? 2 : 1;
  double best[2] = {0.0, 0.0};
  for (std::size_t l = 0; l < nlevels; ++l) {
    ScopedSimdLevel guard{levels[l]};
    body();  // warm-up: page-faults buffers, primes pooled scratch
  }
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t l = 0; l < nlevels; ++l) {
      ScopedSimdLevel guard{levels[l]};
      const auto start = Clock::now();
      body();
      const auto stop = Clock::now();
      const double ns =
          std::chrono::duration<double, std::nano>(stop - start).count();
      if (best[l] == 0.0 || ns < best[l]) {
        best[l] = ns;
      }
    }
  }
  times.scalar_ns = best[0];
  times.simd_ns = times.has_simd ? best[1] : best[0];
  for (std::size_t l = 0; l < nlevels; ++l) {
    push_record(op, best[l], bytes, reps, 0,
                lcp::simd::simd_level_name(levels[l]));
  }
  if (times.has_simd) {
    std::printf("  %s: avx2 speedup %.2fx\n", op.c_str(), times.speedup());
  }
  return times;
}

/// Gate: avx2 must beat scalar by `min_speedup` (no-op without AVX2).
void gate_speedup(std::vector<std::string>& failures, const std::string& op,
                  const PairedTimes& t, double min_speedup) {
  if (!t.has_simd) {
    return;
  }
  if (t.speedup() < min_speedup) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%s avx2 speedup %.2fx below %.2fx gate",
                  op.c_str(), t.speedup(), min_speedup);
    failures.emplace_back(buf);
  }
}

/// Gate: avx2 must not lose to scalar beyond a noise tolerance.
void gate_never_worse(std::vector<std::string>& failures, const std::string& op,
                      const PairedTimes& t) {
  constexpr double kTolerance = 0.85;
  if (!t.has_simd) {
    return;
  }
  if (t.speedup() < kTolerance) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s avx2 is %.2fx of scalar (never-worse tolerance %.2fx)",
                  op.c_str(), t.speedup(), kTolerance);
    failures.emplace_back(buf);
  }
}

void gate_identity(std::vector<std::string>& failures, const std::string& op,
                   bool identical) {
  if (!identical) {
    failures.push_back(op + " outputs differ between scalar and avx2 dispatch");
  }
}

/// Parses records previously written by write_json. Best-effort: a line
/// that does not match the record shape is skipped. Records from before
/// the dispatch field keep an empty dispatch key.
std::vector<BenchRecord> load_existing(const std::string& path) {
  std::vector<BenchRecord> records;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return records;
  }
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char op[256];
    char dispatch[64];
    double ns = 0.0;
    double bps = 0.0;
    unsigned long long workers = 0;
    if (std::sscanf(line,
                    " { \"op\" : \"%255[^\"]\" , \"ns_per_op\" : %lf , "
                    "\"bytes_per_sec\" : %lf , \"workers\" : %llu , "
                    "\"dispatch\" : \"%63[^\"]\"",
                    op, &ns, &bps, &workers, dispatch) == 5) {
      records.push_back(BenchRecord{op, ns, bps,
                                    static_cast<std::size_t>(workers),
                                    dispatch});
    } else if (std::sscanf(line,
                           " { \"op\" : \"%255[^\"]\" , \"ns_per_op\" : %lf , "
                           "\"bytes_per_sec\" : %lf , \"workers\" : %llu",
                           op, &ns, &bps, &workers) == 4) {
      records.push_back(BenchRecord{op, ns, bps,
                                    static_cast<std::size_t>(workers), ""});
    }
  }
  std::fclose(f);
  return records;
}

/// Merge-or-append semantics keyed by (op, workers, dispatch): rows this
/// run did not produce survive, rows it did produce are updated in place.
void write_json(const std::string& path) {
  std::vector<BenchRecord> merged = load_existing(path);
  const std::size_t preserved = merged.size();
  std::size_t replaced = 0;
  for (const auto& rec : g_records) {
    auto it = std::find_if(merged.begin(), merged.end(), [&](const auto& m) {
      return m.op == rec.op && m.workers == rec.workers &&
             m.dispatch == rec.dispatch;
    });
    if (it != merged.end()) {
      *it = rec;
      ++replaced;
    } else {
      merged.push_back(rec);
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_hotpaths: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const auto& r = merged[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"bytes_per_sec\": %.3f, \"workers\": %zu, "
                 "\"dispatch\": \"%s\"}%s\n",
                 r.op.c_str(), r.ns_per_op, r.bytes_per_sec, r.workers,
                 r.dispatch.c_str(), i + 1 < merged.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records: %zu kept, %zu replaced, %zu new)\n",
              path.c_str(), merged.size(), preserved - replaced, replaced,
              merged.size() - preserved);
}

/// Longest-processing-time-first makespan of `durations` over `workers`
/// identical workers: the schedule parallel_for's work stealing converges
/// to for few heavy chunks.
double lpt_makespan(std::vector<double> durations, std::size_t workers) {
  if (workers == 0) {
    workers = 1;
  }
  std::sort(durations.begin(), durations.end(), std::greater<>());
  std::vector<double> load(workers, 0.0);
  for (double d : durations) {
    *std::min_element(load.begin(), load.end()) += d;
  }
  return *std::max_element(load.begin(), load.end());
}

void bench_pool_dispatch(bool quick) {
  const std::size_t tasks = quick ? 2000 : 20000;
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    lcp::ThreadPool pool{workers};
    std::atomic<std::uint64_t> sink{0};
    run_case("pool/parallel_for_" + std::to_string(tasks), quick ? 3 : 10, 0,
             workers, [&] {
               pool.parallel_for(0, tasks, [&](std::size_t i) {
                 sink.fetch_add(i, std::memory_order_relaxed);
               });
             });
  }
}

void bench_fused_pipeline(bool quick, std::vector<std::string>& failures) {
  const std::size_t n = quick ? 64 : 192;
  const auto field = lcp::data::generate_nyx(n, 7);
  const lcp::sz::LinearQuantizer quantizer{1e-3};
  std::vector<std::uint32_t> codes;
  std::vector<std::uint32_t> exact;
  std::vector<float> decoded;
  const std::size_t bytes = field.element_count() * sizeof(float);
  const auto pq = run_paired(
      "sz/predict_quantize_fused", quick ? 5 : 7, bytes, [&] {
        codes.clear();
        exact.clear();
        lcp::sz::predict_quantize_fused(field.values(),
                                        field.dims().extents(),
                                        lcp::sz::SzPredictor::kFirstOrder,
                                        quantizer, codes, exact, decoded);
      });
  gate_speedup(failures, "sz/predict_quantize_fused", pq, quick ? 1.5 : 2.0);

  // Dispatch identity spot check: the quantization codes, exact-value side
  // stream and decoded grid must match bit for bit across levels.
  {
    std::vector<std::uint32_t> codes_s;
    std::vector<std::uint32_t> exact_s;
    std::vector<float> decoded_s;
    {
      lcp::simd::ScopedSimdLevel guard{lcp::simd::SimdLevel::kScalar};
      lcp::sz::predict_quantize_fused(field.values(), field.dims().extents(),
                                      lcp::sz::SzPredictor::kFirstOrder,
                                      quantizer, codes_s, exact_s, decoded_s);
    }
    {
      lcp::simd::ScopedSimdLevel guard{lcp::simd::SimdLevel::kAvx2};
      codes.clear();
      exact.clear();
      lcp::sz::predict_quantize_fused(field.values(), field.dims().extents(),
                                      lcp::sz::SzPredictor::kFirstOrder,
                                      quantizer, codes, exact, decoded);
    }
    const bool same =
        codes == codes_s && exact == exact_s &&
        decoded.size() == decoded_s.size() &&
        std::memcmp(decoded.data(), decoded_s.data(),
                    decoded.size() * sizeof(float)) == 0;
    gate_identity(failures, "sz/predict_quantize_fused", same);
  }

  std::vector<float> exact_f(exact.size());
  std::memcpy(exact_f.data(), exact.data(), exact.size() * sizeof(float));
  std::vector<float> out(field.element_count());
  const auto rec = run_paired("sz/reconstruct_fused", quick ? 5 : 7, bytes,
                              [&] {
                                std::size_t consumed = 0;
                                const bool ok = lcp::sz::reconstruct_fused(
                                    codes, exact_f, field.dims().extents(),
                                    lcp::sz::SzPredictor::kFirstOrder,
                                    quantizer, out, consumed);
                                LCP_REQUIRE(
                                    ok,
                                    "fused reconstruction failed in benchmark");
                              });
  gate_never_worse(failures, "sz/reconstruct_fused", rec);
  {
    std::vector<float> out_s(field.element_count());
    std::size_t consumed = 0;
    lcp::simd::ScopedSimdLevel guard{lcp::simd::SimdLevel::kScalar};
    const bool ok = lcp::sz::reconstruct_fused(
        codes, exact_f, field.dims().extents(),
        lcp::sz::SzPredictor::kFirstOrder, quantizer, out_s, consumed);
    gate_identity(failures, "sz/reconstruct_fused",
                  ok && std::memcmp(out.data(), out_s.data(),
                                    out.size() * sizeof(float)) == 0);
  }
}

void bench_huffman(bool quick, std::vector<std::string>& failures) {
  // Production-shaped symbols: the quantization codes of a real Nyx field,
  // whose ~8-bit average code length is exactly what the wide-window
  // multi-symbol decoder is tuned for. Synthetic near-uniform deltas would
  // flatter the decoder (every pair fits one probe).
  const std::size_t n = quick ? 64 : 128;
  const auto field = lcp::data::generate_nyx(n, 11);
  const lcp::sz::LinearQuantizer quantizer{1e-3};
  std::vector<std::uint32_t> symbols;
  std::vector<std::uint32_t> exact;
  std::vector<float> grid;
  lcp::sz::predict_quantize_fused(field.values(), field.dims().extents(),
                                  lcp::sz::SzPredictor::kFirstOrder, quantizer,
                                  symbols, exact, grid);
  const std::size_t count = symbols.size();
  const std::size_t bytes = count * sizeof(std::uint32_t);

  std::vector<std::uint8_t> blob;
  run_case("huffman/encode", quick ? 5 : 7, bytes, 0, [&] {
    blob = lcp::sz::huffman_encode(symbols, quantizer.alphabet_size());
  });

  std::vector<std::uint32_t> decoded;
  const auto dec = run_paired("huffman/decode", quick ? 5 : 7, bytes, [&] {
    const auto status = lcp::sz::huffman_decode_into(blob, count, decoded);
    LCP_REQUIRE(status.is_ok() && decoded.size() == count,
                "huffman decode failed in benchmark");
  });
  gate_speedup(failures, "huffman/decode", dec, quick ? 1.5 : 2.0);
  // Identity: both dispatch levels reproduce the encoder's input exactly.
  {
    std::vector<std::uint32_t> decoded_s;
    lcp::simd::ScopedSimdLevel guard{lcp::simd::SimdLevel::kScalar};
    const auto status = lcp::sz::huffman_decode_into(blob, count, decoded_s);
    gate_identity(failures, "huffman/decode",
                  status.is_ok() && decoded_s == symbols &&
                      decoded == symbols);
  }
}

void bench_bitstream(bool quick) {
  const std::size_t n = quick ? (1u << 16) : (1u << 20);
  lcp::Rng rng{23};
  std::vector<std::uint64_t> words(n);
  std::vector<unsigned> widths(n);
  for (std::size_t i = 0; i < n; ++i) {
    widths[i] = 1 + static_cast<unsigned>(rng.next_u64() % 24);
    words[i] = rng.next_u64() & ((1ULL << widths[i]) - 1);
  }
  std::size_t payload_bits = 0;
  for (unsigned w : widths) {
    payload_bits += w;
  }
  const std::size_t bytes = payload_bits / 8;

  std::vector<std::uint8_t> buffer;
  run_case("bitstream/write_bits", quick ? 3 : 10, bytes, 0, [&] {
    lcp::BitWriter writer;
    for (std::size_t i = 0; i < n; ++i) {
      writer.write_bits(words[i], widths[i]);
    }
    buffer = writer.finish();
  });
  run_case("bitstream/read_bits", quick ? 3 : 10, bytes, 0, [&] {
    lcp::BitReader reader{buffer};
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sink ^= reader.read_bits(widths[i]);
    }
    LCP_REQUIRE(!reader.overflowed(), "bitstream benchmark overflow");
  });
}

void bench_shuffle(bool quick, std::vector<std::string>& failures) {
  const std::size_t n = quick ? (1u << 18) : (1u << 22);
  lcp::Rng rng{31};
  std::vector<float> values(n);
  for (auto& v : values) {
    v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
  const std::size_t bytes = n * sizeof(float);
  std::vector<std::uint8_t> planes(bytes);
  const auto sh = run_paired("shuffle/shuffle_bytes", quick ? 5 : 7, bytes,
                             [&] {
                               lcp::lossless::shuffle_bytes(values, planes);
                             });
  gate_never_worse(failures, "shuffle/shuffle_bytes", sh);
  {
    std::vector<std::uint8_t> planes_s(bytes);
    lcp::simd::ScopedSimdLevel guard{lcp::simd::SimdLevel::kScalar};
    lcp::lossless::shuffle_bytes(values, planes_s);
    gate_identity(failures, "shuffle/shuffle_bytes", planes == planes_s);
  }

  std::vector<float> restored(n);
  const auto un = run_paired("shuffle/unshuffle_bytes", quick ? 5 : 7, bytes,
                             [&] {
                               lcp::lossless::unshuffle_bytes(planes, restored);
                             });
  gate_never_worse(failures, "shuffle/unshuffle_bytes", un);
  {
    std::vector<float> restored_s(n);
    lcp::simd::ScopedSimdLevel guard{lcp::simd::SimdLevel::kScalar};
    lcp::lossless::unshuffle_bytes(planes, restored_s);
    gate_identity(failures, "shuffle/unshuffle_bytes",
                  std::memcmp(restored.data(), restored_s.data(), bytes) == 0 &&
                      std::memcmp(restored.data(), values.data(), bytes) == 0);
  }
}

void bench_zlite(bool quick, std::vector<std::string>& failures) {
  // Shuffled float planes: the exact byte stream the lossless codec hands
  // to zlite in production (long exponent-byte runs, compressible).
  const std::size_t side = quick ? 48 : 96;
  const auto field = lcp::data::generate_nyx(side, 13);
  const std::size_t bytes = field.element_count() * sizeof(float);
  std::vector<std::uint8_t> planes(bytes);
  lcp::lossless::shuffle_bytes(field.values(), planes);

  std::vector<std::uint8_t> packed;
  const auto zc = run_paired("zlite/compress", quick ? 5 : 7, bytes, [&] {
    packed = lcp::sz::zlite_compress(planes);
  });
  gate_never_worse(failures, "zlite/compress", zc);
  {
    lcp::simd::ScopedSimdLevel guard{lcp::simd::SimdLevel::kScalar};
    const auto packed_s = lcp::sz::zlite_compress(planes);
    gate_identity(failures, "zlite/compress", packed == packed_s);
  }

  const auto zd = run_paired("zlite/decompress", quick ? 5 : 7, bytes, [&] {
    const auto restored = lcp::sz::zlite_decompress(packed, bytes);
    LCP_REQUIRE(restored.has_value() && restored->size() == bytes,
                "zlite decompress failed in benchmark");
  });
  gate_never_worse(failures, "zlite/decompress", zd);
  {
    lcp::simd::ScopedSimdLevel guard{lcp::simd::SimdLevel::kScalar};
    const auto restored = lcp::sz::zlite_decompress(packed, bytes);
    gate_identity(failures, "zlite/decompress",
                  restored.has_value() && *restored == planes);
  }
}

void bench_zfp_planes(bool quick, std::vector<std::string>& failures) {
  // Blocks of 64 negabinary coefficients with a low-frequency-first
  // magnitude decay, mimicking post-transform ZFP blocks.
  const std::size_t blocks = quick ? 512 : 2048;
  constexpr std::size_t kBlock = 64;
  lcp::Rng rng{37};
  std::vector<std::uint64_t> nb(blocks * kBlock);
  std::vector<unsigned> plane_hi(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint64_t all = 0;
    for (std::size_t i = 0; i < kBlock; ++i) {
      const unsigned shift = 20 + static_cast<unsigned>((i * 40) / kBlock);
      nb[b * kBlock + i] = rng.next_u64() >> shift;
      all |= nb[b * kBlock + i];
    }
    if (all == 0) {
      nb[b * kBlock] = 1;
      all = 1;
    }
    plane_hi[b] = static_cast<unsigned>(std::bit_width(all) - 1);
  }
  const std::size_t bytes = nb.size() * sizeof(std::uint64_t);

  std::vector<std::uint8_t> blob;
  const auto enc = run_paired("zfp/encode_planes", quick ? 5 : 7, bytes, [&] {
    lcp::BitWriter writer;
    for (std::size_t b = 0; b < blocks; ++b) {
      lcp::zfp::encode_block_planes({nb.data() + b * kBlock, kBlock},
                                    plane_hi[b], 0, writer);
    }
    blob = writer.finish();
  });
  gate_never_worse(failures, "zfp/encode_planes", enc);
  {
    lcp::simd::ScopedSimdLevel guard{lcp::simd::SimdLevel::kScalar};
    lcp::BitWriter writer;
    for (std::size_t b = 0; b < blocks; ++b) {
      lcp::zfp::encode_block_planes({nb.data() + b * kBlock, kBlock},
                                    plane_hi[b], 0, writer);
    }
    gate_identity(failures, "zfp/encode_planes", writer.finish() == blob);
  }

  std::vector<std::uint64_t> coeffs(nb.size());
  const auto dec = run_paired("zfp/decode_planes", quick ? 5 : 7, bytes, [&] {
    lcp::BitReader reader{blob};
    std::fill(coeffs.begin(), coeffs.end(), 0);
    for (std::size_t b = 0; b < blocks; ++b) {
      const bool ok = lcp::zfp::decode_block_planes(
          {coeffs.data() + b * kBlock, kBlock}, plane_hi[b], 0, reader);
      LCP_REQUIRE(ok, "zfp plane decode failed in benchmark");
    }
  });
  gate_never_worse(failures, "zfp/decode_planes", dec);
  gate_identity(failures, "zfp/decode_planes", coeffs == nb);
}

void bench_parallel_compress(bool quick, std::vector<std::string>& failures) {
  const std::size_t n = quick ? 96 : 256;
  const auto field = lcp::data::generate_nyx(n, 3);
  const lcp::sz::SzCompressor codec{{}};
  const auto bound = lcp::compress::ErrorBound::absolute(1e-3);
  lcp::compress::ParallelStats stats;
  lcp::compress::ParallelOptions options;
  options.target_chunk_elements = field.element_count() / 16;
  options.stats = &stats;
  const std::size_t bytes = field.element_count() * sizeof(float);

  double baseline_ns = 0.0;
  lcp::compress::ParallelStats uncontended;  // from the 1-worker run
  for (std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    lcp::ThreadPool pool{workers};
    run_case("parallel_compress/sz", quick ? 1 : 3, bytes, workers, [&] {
      auto result = lcp::compress::parallel_compress(codec, field, bound, pool,
                                                     options);
      LCP_REQUIRE(result.has_value(), "parallel_compress failed in benchmark");
    });
    const auto& rec = g_records.back();
    if (workers == 1) {
      baseline_ns = rec.ns_per_op;
      uncontended = stats;
    } else if (baseline_ns > 0.0) {
      std::printf("  wall speedup vs 1 worker: %.2fx\n",
                  baseline_ns / rec.ns_per_op);
    }
  }

  // Modeled scaling: LPT makespan of the per-chunk durations measured in
  // the uncontended 1-worker run, plus the measured serial share.
  std::vector<double> chunk_s;
  chunk_s.reserve(uncontended.chunk_seconds.size());
  for (const auto s : uncontended.chunk_seconds) {
    chunk_s.push_back(s.seconds());
  }
  const double serial_s = uncontended.serial_seconds.seconds();
  double modeled_1w = 0.0;
  for (std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const double makespan = serial_s + lpt_makespan(chunk_s, workers);
    record_modeled("parallel_compress/sz_modeled", makespan, bytes, workers);
    const double speedup = modeled_1w > 0.0 ? modeled_1w / makespan : 1.0;
    if (workers == 1) {
      modeled_1w = makespan;
    } else {
      std::printf("  modeled speedup vs 1 worker: %.2fx\n", speedup);
    }
    if (workers == 4 && speedup < 1.5) {
      failures.push_back("parallel_compress/sz modeled speedup at 4 workers "
                         "below 1.5x (" + std::to_string(speedup) + "x)");
    }
    if (workers == 8 && speedup < 3.0) {
      failures.push_back("parallel_compress/sz modeled speedup at 8 workers "
                         "below 3x (" + std::to_string(speedup) + "x)");
    }
  }
}

void bench_streaming_dump(bool quick, std::vector<std::string>& failures) {
  const std::size_t n = quick ? 48 : 96;
  const auto field = lcp::data::generate_nyx(n, 5);
  const std::size_t bytes = field.element_count() * sizeof(float);

  lcp::core::StreamingDumpConfig cfg;
  cfg.checkpoint.codec = "sz";
  cfg.checkpoint.bound = lcp::compress::ErrorBound::absolute(1e-3);
  cfg.checkpoint.chunk_elements =
      std::max<std::size_t>(1, field.element_count() / 16);
  cfg.queue_capacity = 4;

  for (std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    lcp::ThreadPool pool{workers};
    lcp::io::NfsServer server;
    lcp::io::NfsClient client{server};
    lcp::core::StreamingDumpStats stats;
    run_case("dump/streaming", 1, bytes, workers, [&] {
      auto result =
          lcp::core::streaming_dump(field, pool, client, "bench.dump", cfg);
      LCP_REQUIRE(result.has_value(), "streaming_dump failed in benchmark");
      stats = std::move(*result);
    });

    // Overlap credit on the measured slab durations: compress makespan
    // from LPT over this worker count, write time from the link model of
    // the bytes the engine actually shipped.
    std::vector<double> slab_s;
    slab_s.reserve(stats.slab_seconds.size());
    for (const auto s : stats.slab_seconds) {
      slab_s.push_back(s.seconds());
    }
    const double tc = lpt_makespan(slab_s, workers);
    const double tt =
        client.config().link.wire_time(stats.wire_bytes).seconds();
    const double depth = static_cast<double>(std::max<std::size_t>(1,
                                                                   stats.slabs));
    const double serial_sum = tc + tt;
    const double overlapped =
        std::max(tc, tt) + std::min(tc, tt) / depth;
    record_modeled("dump/streaming_modeled", overlapped, bytes, workers);
    if (!(overlapped < serial_sum)) {
      failures.push_back(
          "dump/streaming modeled runtime not below serial compress+write "
          "sum at " + std::to_string(workers) + " workers");
    }
  }
}

void bench_eqn3_crossover(bool quick, std::vector<std::string>& failures) {
  // Re-derive Eqn 3's compute/transit crossover from each dispatch level's
  // measured end-to-end codec cost. The profile feeds the same
  // compress-or-raw pricing the planner uses; B* is the link bandwidth at
  // which shipping raw starts to beat compress-then-ship.
  using lcp::simd::ScopedSimdLevel;
  using lcp::simd::SimdLevel;
  const std::size_t n = quick ? 64 : 128;
  const auto field = lcp::data::generate_nyx(n, 9);
  const lcp::sz::SzCompressor codec{{}};
  const auto bound = lcp::compress::ErrorBound::absolute(1e-3);
  const double input_bytes = static_cast<double>(field.size_bytes().bytes());

  const bool has_simd =
      lcp::simd::hardware_simd_level() >= SimdLevel::kAvx2;
  const SimdLevel levels[2] = {SimdLevel::kScalar, SimdLevel::kAvx2};
  const std::size_t nlevels = has_simd ? 2 : 1;

  const auto& spec = lcp::power::chip(lcp::power::ChipId::kSkylake4114);
  const lcp::io::TransitModelConfig transit;
  const auto rule = lcp::tuning::paper_rule();
  const lcp::Bytes dump_bytes{std::uint64_t{4} << 30};  // one 4 GiB dump

  double bstar[2] = {0.0, 0.0};
  double throughput[2] = {0.0, 0.0};
  lcp::tuning::CodecCostProfile profiles[2];
  for (std::size_t l = 0; l < nlevels; ++l) {
    ScopedSimdLevel guard{levels[l]};
    double best_ns = 0.0;
    double ratio = 1.0;
    const std::size_t reps = quick ? 2 : 4;
    for (std::size_t rep = 0; rep <= reps; ++rep) {
      const auto start = Clock::now();
      auto result = codec.compress(field, bound);
      const auto stop = Clock::now();
      LCP_REQUIRE(result.has_value(), "sz compress failed in eqn3 bench");
      ratio = static_cast<double>(result->output_bytes.bytes()) / input_bytes;
      const double ns =
          std::chrono::duration<double, std::nano>(stop - start).count();
      if (rep > 0 && (best_ns == 0.0 || ns < best_ns)) {
        best_ns = ns;  // rep 0 is warm-up
      }
    }
    throughput[l] = input_bytes / best_ns;  // bytes per ns == GB/s
    push_record("sz/compress_e2e", best_ns,
                static_cast<std::size_t>(input_bytes), reps, 0,
                lcp::simd::simd_level_name(levels[l]));

    auto& profile = profiles[l];
    profile.name =
        std::string{"sz/"} + lcp::simd::simd_level_name(levels[l]);
    profile.gigabytes_per_second = throughput[l];
    profile.ratio = ratio;
    bstar[l] = lcp::tuning::crossover_bandwidth_gbps(spec, profile,
                                                     dump_bytes, transit,
                                                     rule);
    // The record stores the crossover as a bandwidth (bytes/sec): B* is
    // the quantity of interest, not a per-op latency.
    BenchRecord rec;
    rec.op = "eqn3/crossover";
    rec.bytes_per_sec = bstar[l] * 1e9 / 8.0;
    rec.dispatch = lcp::simd::simd_level_name(levels[l]);
    g_records.push_back(rec);
    std::printf("%-34s  B* = %.2f Gbit/s  (%.2f GB/s codec, ratio %.3f) [%s]\n",
                "eqn3/crossover", bstar[l], throughput[l], ratio,
                rec.dispatch.c_str());
  }

  if (!has_simd) {
    return;  // single profile: nothing to compare
  }
  // Faster kernels must push the crossover up (or the model broke), and at
  // a bandwidth between the two crossovers the plans must actually differ:
  // the scalar profile ships raw where the SIMD profile still compresses.
  if (throughput[1] > throughput[0] && bstar[1] < bstar[0] * 0.999) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "eqn3 crossover moved down under avx2 (%.2f -> %.2f Gbit/s)",
                  bstar[0], bstar[1]);
    failures.emplace_back(buf);
  }
  if (std::fabs(bstar[1] - bstar[0]) > 0.01 * bstar[0]) {
    auto mid_transit = transit;
    mid_transit.link.gigabits_per_second = std::sqrt(bstar[0] * bstar[1]);
    const auto lo = lcp::tuning::compress_or_raw(
        spec, profiles[0], dump_bytes, mid_transit, rule);
    const auto hi = lcp::tuning::compress_or_raw(
        spec, profiles[1], dump_bytes, mid_transit, rule);
    std::printf("  at %.2f Gbit/s: scalar plan %s, avx2 plan %s\n",
                mid_transit.link.gigabits_per_second,
                lo.compress ? "compress" : "raw",
                hi.compress ? "compress" : "raw");
    if (lo.compress || !hi.compress) {
      failures.push_back(
          "eqn3 decision did not flip between scalar and avx2 crossovers");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_path = argv[++i];
      }
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json [path]]\n", argv[0]);
      return 1;
    }
  }

  std::printf("== micro_hotpaths (%s scale, dispatch %s) ==\n",
              quick ? "quick" : "full", current_dispatch_name().c_str());
  std::vector<std::string> failures;
  bench_pool_dispatch(quick);
  bench_fused_pipeline(quick, failures);
  bench_huffman(quick, failures);
  bench_bitstream(quick);
  bench_shuffle(quick, failures);
  bench_zlite(quick, failures);
  bench_zfp_planes(quick, failures);
  bench_parallel_compress(quick, failures);
  bench_streaming_dump(quick, failures);
  bench_eqn3_crossover(quick, failures);

  if (json) {
    write_json(json_path);
  }
  if (!failures.empty()) {
    for (const auto& f : failures) {
      std::fprintf(stderr, "BENCH GATE FAILED: %s\n", f.c_str());
    }
    return 1;
  }
  std::printf("all bench gates passed\n");
  return 0;
}
