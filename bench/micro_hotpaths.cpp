// Micro-benchmarks for the hot paths touched by the kernel overhaul:
// thread-pool dispatch, the fused SZ predict+quantize pass, canonical
// Huffman encode/decode, raw bitstream write/read, chunk-parallel SZ
// compression across worker counts, and the streaming dump engine.
//
// Unlike the figure/table benches this is a plain timing harness (no
// google-benchmark) so it can emit a stable machine-readable summary:
//   micro_hotpaths [--quick] [--json [path]]
// --json merges into BENCH_hotpaths.json (default path): records are
// keyed by (op, workers) — an existing record with the same key is
// replaced in place, unknown keys are preserved, new keys are appended —
// so one bench run never wipes another's rows.
//
// Scaling discipline: wall-clock rows are real measurements and therefore
// flat on a single-CPU host. The */modeled rows are the LPT makespan of
// the *measured* per-chunk durations plus the measured serial share —
// the same modeled-time accounting the rest of the repo uses — and those
// are what the scaling gates (exit code) enforce:
//   parallel_compress/sz_modeled: >= 1.5x at 4 workers, >= 3x at 8
//   dump/streaming_modeled: overlapped makespan strictly below the
//     serial compress + write sum at every worker count

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "compress/common/parallel.hpp"
#include "compress/sz/huffman.hpp"
#include "compress/sz/pipeline.hpp"
#include "compress/sz/quantizer.hpp"
#include "compress/sz/sz_compressor.hpp"
#include "core/streaming_dump.hpp"
#include "data/generators.hpp"
#include "io/nfs_client.hpp"
#include "support/bitstream.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct BenchRecord {
  std::string op;
  double ns_per_op = 0.0;
  double bytes_per_sec = 0.0;  // 0 when the op has no natural byte volume
  std::size_t workers = 0;     // 0 for single-threaded kernels
};

std::vector<BenchRecord> g_records;

/// Times `body` (which must process `bytes` payload bytes per call) over
/// `iters` iterations and records + prints one line.
template <typename Body>
void run_case(const std::string& op, std::size_t iters, std::size_t bytes,
              std::size_t workers, Body&& body) {
  body();  // warm-up (also primes pool workers / page-faults the buffers)
  const auto start = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    body();
  }
  const auto stop = Clock::now();
  const double total_ns =
      std::chrono::duration<double, std::nano>(stop - start).count();
  BenchRecord rec;
  rec.op = op;
  rec.ns_per_op = total_ns / static_cast<double>(iters);
  rec.workers = workers;
  if (bytes > 0 && total_ns > 0.0) {
    rec.bytes_per_sec = static_cast<double>(bytes) *
                        static_cast<double>(iters) / (total_ns * 1e-9);
  }
  g_records.push_back(rec);
  std::printf("%-34s %12.1f ns/op", rec.op.c_str(), rec.ns_per_op);
  if (rec.bytes_per_sec > 0.0) {
    std::printf(" %9.1f MB/s", rec.bytes_per_sec / 1e6);
  }
  if (rec.workers > 0) {
    std::printf("  workers=%zu", rec.workers);
  }
  std::printf("\n");
}

/// Records a row computed from modeled (not measured-in-place) seconds.
void record_modeled(const std::string& op, double seconds, std::size_t bytes,
                    std::size_t workers) {
  BenchRecord rec;
  rec.op = op;
  rec.ns_per_op = seconds * 1e9;
  rec.workers = workers;
  if (bytes > 0 && seconds > 0.0) {
    rec.bytes_per_sec = static_cast<double>(bytes) / seconds;
  }
  g_records.push_back(rec);
  std::printf("%-34s %12.1f ns/op %9.1f MB/s  workers=%zu\n", rec.op.c_str(),
              rec.ns_per_op, rec.bytes_per_sec / 1e6, rec.workers);
}

/// Parses records previously written by write_json. Best-effort: a line
/// that does not match the record shape is skipped.
std::vector<BenchRecord> load_existing(const std::string& path) {
  std::vector<BenchRecord> records;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return records;
  }
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char op[256];
    double ns = 0.0;
    double bps = 0.0;
    unsigned long long workers = 0;
    if (std::sscanf(line,
                    " { \"op\" : \"%255[^\"]\" , \"ns_per_op\" : %lf , "
                    "\"bytes_per_sec\" : %lf , \"workers\" : %llu",
                    op, &ns, &bps, &workers) == 4) {
      records.push_back(BenchRecord{op, ns, bps,
                                    static_cast<std::size_t>(workers)});
    }
  }
  std::fclose(f);
  return records;
}

/// Merge-or-append semantics keyed by (op, workers): rows this run did
/// not produce survive, rows it did produce are updated in place.
void write_json(const std::string& path) {
  std::vector<BenchRecord> merged = load_existing(path);
  const std::size_t preserved = merged.size();
  std::size_t replaced = 0;
  for (const auto& rec : g_records) {
    auto it = std::find_if(merged.begin(), merged.end(), [&](const auto& m) {
      return m.op == rec.op && m.workers == rec.workers;
    });
    if (it != merged.end()) {
      *it = rec;
      ++replaced;
    } else {
      merged.push_back(rec);
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_hotpaths: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const auto& r = merged[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"bytes_per_sec\": %.3f, \"workers\": %zu}%s\n",
                 r.op.c_str(), r.ns_per_op, r.bytes_per_sec, r.workers,
                 i + 1 < merged.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records: %zu kept, %zu replaced, %zu new)\n",
              path.c_str(), merged.size(), preserved - replaced, replaced,
              merged.size() - preserved);
}

/// Longest-processing-time-first makespan of `durations` over `workers`
/// identical workers: the schedule parallel_for's work stealing converges
/// to for few heavy chunks.
double lpt_makespan(std::vector<double> durations, std::size_t workers) {
  if (workers == 0) {
    workers = 1;
  }
  std::sort(durations.begin(), durations.end(), std::greater<>());
  std::vector<double> load(workers, 0.0);
  for (double d : durations) {
    *std::min_element(load.begin(), load.end()) += d;
  }
  return *std::max_element(load.begin(), load.end());
}

void bench_pool_dispatch(bool quick) {
  const std::size_t tasks = quick ? 2000 : 20000;
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    lcp::ThreadPool pool{workers};
    std::atomic<std::uint64_t> sink{0};
    run_case("pool/parallel_for_" + std::to_string(tasks), quick ? 3 : 10, 0,
             workers, [&] {
               pool.parallel_for(0, tasks, [&](std::size_t i) {
                 sink.fetch_add(i, std::memory_order_relaxed);
               });
             });
  }
}

void bench_fused_pipeline(bool quick) {
  const std::size_t n = quick ? 64 : 192;
  const auto field = lcp::data::generate_nyx(n, 7);
  const lcp::sz::LinearQuantizer quantizer{1e-3};
  std::vector<std::uint32_t> codes;
  std::vector<std::uint32_t> exact;
  std::vector<float> decoded;
  const std::size_t bytes = field.element_count() * sizeof(float);
  run_case("sz/predict_quantize_fused", quick ? 3 : 10, bytes, 0, [&] {
    codes.clear();
    exact.clear();
    lcp::sz::predict_quantize_fused(field.values(), field.dims().extents(),
                                    lcp::sz::SzPredictor::kFirstOrder,
                                    quantizer, codes, exact, decoded);
  });

  std::vector<float> exact_f(exact.size());
  std::memcpy(exact_f.data(), exact.data(), exact.size() * sizeof(float));
  std::vector<float> out(field.element_count());
  run_case("sz/reconstruct_fused", quick ? 3 : 10, bytes, 0, [&] {
    std::size_t consumed = 0;
    const bool ok = lcp::sz::reconstruct_fused(
        codes, exact_f, field.dims().extents(),
        lcp::sz::SzPredictor::kFirstOrder, quantizer, out, consumed);
    LCP_REQUIRE(ok, "fused reconstruction failed in benchmark");
  });
}

void bench_huffman(bool quick) {
  // Quantization-code-shaped symbols: concentrated near the radius with a
  // geometric tail, matching the Huffman coder's production input.
  const std::size_t count = quick ? (1u << 16) : (1u << 20);
  constexpr std::uint32_t kRadius = 32768;
  lcp::Rng rng{11};
  std::vector<std::uint32_t> symbols(count);
  for (auto& s : symbols) {
    std::int64_t delta = 0;
    while (delta < 64 && rng.uniform() < 0.5) {
      ++delta;
    }
    if (rng.uniform() < 0.5) {
      delta = -delta;
    }
    s = static_cast<std::uint32_t>(kRadius + delta);
  }
  const std::size_t bytes = count * sizeof(std::uint32_t);
  std::vector<std::uint8_t> blob;
  run_case("huffman/encode", quick ? 3 : 10, bytes, 0,
           [&] { blob = lcp::sz::huffman_encode(symbols, 2 * kRadius); });
  run_case("huffman/decode", quick ? 3 : 10, bytes, 0, [&] {
    auto decoded = lcp::sz::huffman_decode(blob, count);
    LCP_REQUIRE(decoded.has_value() && decoded->size() == count,
                "huffman decode failed in benchmark");
  });
}

void bench_bitstream(bool quick) {
  const std::size_t n = quick ? (1u << 16) : (1u << 20);
  lcp::Rng rng{23};
  std::vector<std::uint64_t> words(n);
  std::vector<unsigned> widths(n);
  for (std::size_t i = 0; i < n; ++i) {
    widths[i] = 1 + static_cast<unsigned>(rng.next_u64() % 24);
    words[i] = rng.next_u64() & ((1ULL << widths[i]) - 1);
  }
  std::size_t payload_bits = 0;
  for (unsigned w : widths) {
    payload_bits += w;
  }
  const std::size_t bytes = payload_bits / 8;

  std::vector<std::uint8_t> buffer;
  run_case("bitstream/write_bits", quick ? 3 : 10, bytes, 0, [&] {
    lcp::BitWriter writer;
    for (std::size_t i = 0; i < n; ++i) {
      writer.write_bits(words[i], widths[i]);
    }
    buffer = writer.finish();
  });
  run_case("bitstream/read_bits", quick ? 3 : 10, bytes, 0, [&] {
    lcp::BitReader reader{buffer};
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sink ^= reader.read_bits(widths[i]);
    }
    LCP_REQUIRE(!reader.overflowed(), "bitstream benchmark overflow");
  });
}

void bench_parallel_compress(bool quick, std::vector<std::string>& failures) {
  const std::size_t n = quick ? 96 : 256;
  const auto field = lcp::data::generate_nyx(n, 3);
  const lcp::sz::SzCompressor codec{{}};
  const auto bound = lcp::compress::ErrorBound::absolute(1e-3);
  lcp::compress::ParallelStats stats;
  lcp::compress::ParallelOptions options;
  options.target_chunk_elements = field.element_count() / 16;
  options.stats = &stats;
  const std::size_t bytes = field.element_count() * sizeof(float);

  double baseline_ns = 0.0;
  lcp::compress::ParallelStats uncontended;  // from the 1-worker run
  for (std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    lcp::ThreadPool pool{workers};
    run_case("parallel_compress/sz", quick ? 1 : 3, bytes, workers, [&] {
      auto result = lcp::compress::parallel_compress(codec, field, bound, pool,
                                                     options);
      LCP_REQUIRE(result.has_value(), "parallel_compress failed in benchmark");
    });
    const auto& rec = g_records.back();
    if (workers == 1) {
      baseline_ns = rec.ns_per_op;
      uncontended = stats;
    } else if (baseline_ns > 0.0) {
      std::printf("  wall speedup vs 1 worker: %.2fx\n",
                  baseline_ns / rec.ns_per_op);
    }
  }

  // Modeled scaling: LPT makespan of the per-chunk durations measured in
  // the uncontended 1-worker run, plus the measured serial share.
  std::vector<double> chunk_s;
  chunk_s.reserve(uncontended.chunk_seconds.size());
  for (const auto s : uncontended.chunk_seconds) {
    chunk_s.push_back(s.seconds());
  }
  const double serial_s = uncontended.serial_seconds.seconds();
  double modeled_1w = 0.0;
  for (std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const double makespan = serial_s + lpt_makespan(chunk_s, workers);
    record_modeled("parallel_compress/sz_modeled", makespan, bytes, workers);
    const double speedup = modeled_1w > 0.0 ? modeled_1w / makespan : 1.0;
    if (workers == 1) {
      modeled_1w = makespan;
    } else {
      std::printf("  modeled speedup vs 1 worker: %.2fx\n", speedup);
    }
    if (workers == 4 && speedup < 1.5) {
      failures.push_back("parallel_compress/sz modeled speedup at 4 workers "
                         "below 1.5x (" + std::to_string(speedup) + "x)");
    }
    if (workers == 8 && speedup < 3.0) {
      failures.push_back("parallel_compress/sz modeled speedup at 8 workers "
                         "below 3x (" + std::to_string(speedup) + "x)");
    }
  }
}

void bench_streaming_dump(bool quick, std::vector<std::string>& failures) {
  const std::size_t n = quick ? 48 : 96;
  const auto field = lcp::data::generate_nyx(n, 5);
  const std::size_t bytes = field.element_count() * sizeof(float);

  lcp::core::StreamingDumpConfig cfg;
  cfg.checkpoint.codec = "sz";
  cfg.checkpoint.bound = lcp::compress::ErrorBound::absolute(1e-3);
  cfg.checkpoint.chunk_elements =
      std::max<std::size_t>(1, field.element_count() / 16);
  cfg.queue_capacity = 4;

  for (std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    lcp::ThreadPool pool{workers};
    lcp::io::NfsServer server;
    lcp::io::NfsClient client{server};
    lcp::core::StreamingDumpStats stats;
    run_case("dump/streaming", 1, bytes, workers, [&] {
      auto result =
          lcp::core::streaming_dump(field, pool, client, "bench.dump", cfg);
      LCP_REQUIRE(result.has_value(), "streaming_dump failed in benchmark");
      stats = std::move(*result);
    });

    // Overlap credit on the measured slab durations: compress makespan
    // from LPT over this worker count, write time from the link model of
    // the bytes the engine actually shipped.
    std::vector<double> slab_s;
    slab_s.reserve(stats.slab_seconds.size());
    for (const auto s : stats.slab_seconds) {
      slab_s.push_back(s.seconds());
    }
    const double tc = lpt_makespan(slab_s, workers);
    const double tt =
        client.config().link.wire_time(stats.wire_bytes).seconds();
    const double depth = static_cast<double>(std::max<std::size_t>(1,
                                                                   stats.slabs));
    const double serial_sum = tc + tt;
    const double overlapped =
        std::max(tc, tt) + std::min(tc, tt) / depth;
    record_modeled("dump/streaming_modeled", overlapped, bytes, workers);
    if (!(overlapped < serial_sum)) {
      failures.push_back(
          "dump/streaming modeled runtime not below serial compress+write "
          "sum at " + std::to_string(workers) + " workers");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_path = argv[++i];
      }
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json [path]]\n", argv[0]);
      return 1;
    }
  }

  std::printf("== micro_hotpaths (%s scale) ==\n", quick ? "quick" : "full");
  std::vector<std::string> failures;
  bench_pool_dispatch(quick);
  bench_fused_pipeline(quick);
  bench_huffman(quick);
  bench_bitstream(quick);
  bench_parallel_compress(quick, failures);
  bench_streaming_dump(quick, failures);

  if (json) {
    write_json(json_path);
  }
  if (!failures.empty()) {
    for (const auto& f : failures) {
      std::fprintf(stderr, "SCALING GATE FAILED: %s\n", f.c_str());
    }
    return 1;
  }
  std::printf("all scaling gates passed\n");
  return 0;
}
