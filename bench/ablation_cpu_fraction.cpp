// Ablation — cpu-bound fraction (beta) vs the runtime cost of tuning and
// the energy-optimal frequency. Beta is the one workload parameter the
// paper's fixed -12.5%/-15% rule implicitly assumes; this sweep shows how
// sensitive the trade-off is to it.

#include <cstdio>

#include "common.hpp"
#include "tuning/optimizer.hpp"

int main() {
  using namespace lcp;
  bench::print_banner(
      "A2", "ablation — cpu-bound fraction beta vs tuning outcome",
      "-12.5% f costs +0.143*beta runtime; energy optimum shifts down as "
      "beta falls");

  const auto& spec = power::chip(power::ChipId::kBroadwellD1548);

  Table table{{"beta", "runtime + @ -12.5% f", "energy saved @ -12.5% f",
               "energy-optimal f (GHz)", "max energy savings"}};
  table.set_title("Broadwell, compression-shaped workload");
  for (double beta : {0.0, 0.2, 0.4, 0.53, 0.7, 0.85, 1.0}) {
    const auto w = power::compression_workload(spec, Seconds{10.0}, beta, 1.0);
    const auto report = tuning::evaluate_tuning(spec, w, spec.f_max,
                                                spec.f_max * 0.875);
    const auto f_opt = tuning::energy_optimal_frequency(spec, w);
    const auto opt_report =
        tuning::evaluate_tuning(spec, w, spec.f_max, f_opt);
    table.add_row({format_double(beta, 2),
                   format_percent(report.runtime_increase(), 1),
                   format_percent(report.energy_savings(), 1),
                   format_double(f_opt.ghz(), 2),
                   format_percent(opt_report.energy_savings(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: for memory-bound work (low beta) aggressive downclocking\n"
      "is nearly free; for compute-bound work (beta -> 1) the energy\n"
      "optimum moves toward f_max. The paper's beta (~0.53, from its\n"
      "+7.5%% runtime at -12.5%% f) sits in the regime where Eqn 3 is a\n"
      "good compromise.\n");
  return 0;
}
