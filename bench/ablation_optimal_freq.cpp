// Ablation — Eqn 3's fixed fractions vs the true energy-optimal DVFS
// point per chip and stage: how much does the paper's one-size rule leave
// on the table?

#include <cstdio>

#include "common.hpp"
#include "io/transit_model.hpp"
#include "tuning/optimizer.hpp"
#include "tuning/rule.hpp"

int main() {
  using namespace lcp;
  bench::print_banner(
      "A3", "ablation — Eqn 3 fixed rule vs per-workload energy optimum",
      "Eqn 3 uses 0.875/0.85 f_max for every chip; the model can find the "
      "exact grid optimum");

  const auto rule = tuning::paper_rule();
  Table table{{"stage", "chip", "Eqn3 f", "Eqn3 saved", "optimal f",
               "optimal saved", "left on table"}};

  for (power::ChipId id : power::all_chips()) {
    const auto& spec = power::chip(id);
    struct Stage {
      const char* name;
      power::Workload workload;
      GigaHertz rule_f;
    };
    const Stage stages[] = {
        {"compression",
         power::compression_workload(spec, Seconds{10.0}, 0.53, 1.0),
         rule.compression_frequency(spec.f_max)},
        {"data writing", io::transit_workload(spec, Bytes::from_gb(4), {}),
         rule.transit_frequency(spec.f_max)},
    };
    for (const auto& stage : stages) {
      const auto rule_report = tuning::evaluate_tuning(
          spec, stage.workload, spec.f_max, stage.rule_f);
      const auto f_opt =
          tuning::energy_optimal_frequency(spec, stage.workload);
      const auto opt_report =
          tuning::evaluate_tuning(spec, stage.workload, spec.f_max, f_opt);
      table.add_row(
          {stage.name, spec.series,
           format_double(stage.rule_f.ghz(), 2) + "GHz",
           format_percent(rule_report.energy_savings(), 1),
           format_double(f_opt.ghz(), 2) + "GHz",
           format_percent(opt_report.energy_savings(), 1),
           format_percent(opt_report.energy_savings() -
                              rule_report.energy_savings(),
                          1)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: per-workload optimization beats the fixed rule, at the\n"
      "cost of longer runtimes (the optimum ignores time). Eqn 3 trades a\n"
      "few points of savings for a bounded runtime penalty — the 'future\n"
      "work' per-CPU tuning the paper's conclusion anticipates.\n");
  return 0;
}
