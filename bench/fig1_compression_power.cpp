// Figure 1 — compression scaled power characteristics: scaled power vs
// frequency per (chip x compressor), aggregated over datasets and error
// bounds with 95% CI, matching the paper's plotting method (Section V-A).

#include <cstdio>

#include <filesystem>

#include "common.hpp"
#include "core/study_export.hpp"

int main(int argc, char** argv) {
  using namespace lcp;
  const bool full = bench::full_scale_requested(argc, argv);
  bench::print_banner(
      "F1", "Fig 1 — compression scaled power characteristics",
      "critical power slope: flat ~0.8 floor then sharp rise to 1.0 near "
      "f_max; Skylake range narrower than Broadwell");

  const auto& study = bench::shared_compression_study(full);

  std::vector<bench::AggregatedCurve> curves;
  for (power::ChipId chip : power::all_chips()) {
    for (compress::CodecId codec : compress::all_codecs()) {
      std::vector<const std::vector<core::SweepPoint>*> sweeps;
      for (const auto& series : study.series) {
        if (series.chip == chip && series.codec == codec) {
          sweeps.push_back(&series.sweep);
        }
      }
      std::string label = power::chip_series_name(chip);
      label += "-";
      label += compress::codec_name(codec);
      curves.push_back(
          bench::aggregate_scaled(label, sweeps, core::SweepMetric::kPower));
    }
  }
  {
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    bench::emit_csv(core::export_compression_study(study),
                    "bench_out/compression_study_full.csv");
    bench::emit_csv(core::export_calibrations(study),
                    "bench_out/compression_calibrations.csv");
  }
  bench::emit_figure("fig1_compression_power",
                     "Fig 1 (reproduced): scaled power vs frequency",
                     "P(f)/P(f_max)", curves);

  std::printf("\nShape checks vs the paper:\n");
  for (const auto& curve : curves) {
    bench::print_comparison("floor at f_min [" + curve.label + "]",
                            "~0.80", format_double(curve.mean.front(), 3));
  }
  // Error-bound invariance (the paper found the scaled trends
  // indistinguishable across bounds).
  const auto& s0 = study.series;
  double max_gap = 0.0;
  for (std::size_t a = 0; a < s0.size(); ++a) {
    for (std::size_t b = a + 1; b < s0.size(); ++b) {
      if (s0[a].chip == s0[b].chip && s0[a].codec == s0[b].codec &&
          s0[a].dataset == s0[b].dataset) {
        const auto ca =
            core::scale_by_max_frequency(s0[a].sweep, core::SweepMetric::kPower);
        const auto cb =
            core::scale_by_max_frequency(s0[b].sweep, core::SweepMetric::kPower);
        for (std::size_t i = 0; i < ca.value.size(); ++i) {
          max_gap = std::max(max_gap, std::abs(ca.value[i] - cb.value[i]));
        }
      }
    }
  }
  bench::print_comparison("max scaled gap across error bounds",
                          "indiscernible", format_double(max_gap, 3));
  return 0;
}
