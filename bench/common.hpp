#pragma once
// Shared harness for the paper-reproduction bench binaries: standard study
// configurations, paper-vs-measured reporting, figure rendering (ASCII +
// CSV dump), and series aggregation for the characteristic plots.

#include <string>
#include <vector>

#include "core/compression_study.hpp"
#include "core/model_tables.hpp"
#include "core/sweep.hpp"
#include "core/transit_study.hpp"
#include "support/ascii_plot.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace lcp::bench {

/// Prints the standard experiment banner (id, paper artifact, claim).
void print_banner(const std::string& experiment_id,
                  const std::string& paper_artifact,
                  const std::string& paper_claim);

/// "paper: X | reproduced: Y" comparison line.
void print_comparison(const std::string& quantity, const std::string& paper,
                      const std::string& reproduced);

/// True when `--full` was passed: run at paper-scale dimensions.
[[nodiscard]] bool full_scale_requested(int argc, char** argv);

/// Standard study configs used by several benches (CI scale by default).
[[nodiscard]] core::CompressionStudyConfig paper_compression_config(
    bool full_scale);
[[nodiscard]] core::TransitStudyConfig paper_transit_config();

/// Runs (and memoizes within the process) the full compression study.
[[nodiscard]] const core::CompressionStudyResult& shared_compression_study(
    bool full_scale);

/// Runs (and memoizes) the full transit study.
[[nodiscard]] const core::TransitStudyResult& shared_transit_study();

/// Mean scaled curve (plus CI) over all sweeps in a group, pointwise.
struct AggregatedCurve {
  std::string label;
  std::vector<double> f_ghz;
  std::vector<double> mean;
  std::vector<double> ci95;
};

/// Aggregates scaled curves of the given metric over `sweeps` (all sweeps
/// must share a frequency grid).
[[nodiscard]] AggregatedCurve aggregate_scaled(
    const std::string& label,
    const std::vector<const std::vector<core::SweepPoint>*>& sweeps,
    core::SweepMetric metric);

/// Renders aggregated curves as an ASCII plot and writes a CSV next to the
/// binary (bench_out/<name>.csv).
void emit_figure(const std::string& name, const std::string& title,
                 const std::string& y_label,
                 const std::vector<AggregatedCurve>& curves);

/// Writes `csv` to `path` and prints the standard "  [csv] path" line.
/// A failed write goes to stderr instead of being dropped: the benches
/// used to (void)-cast these Statuses, so a full disk produced a green
/// run whose CSV artifact silently did not exist.
void emit_csv(const CsvWriter& csv, const std::string& path);

/// Prints a Table IV/V-style model table.
void print_model_table(const std::string& title,
                       const std::vector<core::ModelTableRow>& rows);

}  // namespace lcp::bench
