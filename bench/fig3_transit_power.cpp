// Figure 3 — data transit scaled power characteristics: scaled power vs
// frequency per chip, aggregated over the 1-16 GB sizes (the paper found
// no size dependence after scaling).

#include <cstdio>

#include <filesystem>

#include "common.hpp"
#include "core/study_export.hpp"

int main() {
  using namespace lcp;
  bench::print_banner(
      "F3", "Fig 3 — data transit scaled power characteristics",
      "floor ~0.9 (writing is more static-dominated than compression); "
      "Skylake range narrower than Broadwell");

  const auto& study = bench::shared_transit_study();

  std::vector<bench::AggregatedCurve> curves;
  for (power::ChipId chip : power::all_chips()) {
    std::vector<const std::vector<core::SweepPoint>*> sweeps;
    for (const auto& series : study.series) {
      if (series.chip == chip) {
        sweeps.push_back(&series.sweep);
      }
    }
    curves.push_back(bench::aggregate_scaled(power::chip_series_name(chip),
                                             sweeps,
                                             core::SweepMetric::kPower));
  }
  {
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    bench::emit_csv(core::export_transit_study(study),
                    "bench_out/transit_study_full.csv");
  }
  bench::emit_figure("fig3_transit_power",
                     "Fig 3 (reproduced): transit scaled power vs frequency",
                     "P(f)/P(f_max)", curves);

  std::printf("\nShape checks vs the paper:\n");
  for (const auto& curve : curves) {
    bench::print_comparison("floor at f_min [" + curve.label + "]", "~0.90",
                            format_double(curve.mean.front(), 3));
  }
  const double range_bdw = 1.0 - curves[0].mean.front();
  const double range_skl = 1.0 - curves[1].mean.front();
  bench::print_comparison("Skylake range < Broadwell range", "yes",
                          range_skl < range_bdw ? "yes" : "NO");

  // Size-invariance after scaling (Section V-A: "no significant difference
  // in the power consumption ... based on data size").
  double max_gap = 0.0;
  for (std::size_t a = 0; a < study.series.size(); ++a) {
    for (std::size_t b = a + 1; b < study.series.size(); ++b) {
      if (study.series[a].chip != study.series[b].chip) {
        continue;
      }
      const auto ca = core::scale_by_max_frequency(study.series[a].sweep,
                                                   core::SweepMetric::kPower);
      const auto cb = core::scale_by_max_frequency(study.series[b].sweep,
                                                   core::SweepMetric::kPower);
      for (std::size_t i = 0; i < ca.value.size(); ++i) {
        max_gap = std::max(max_gap, std::abs(ca.value[i] - cb.value[i]));
      }
    }
  }
  bench::print_comparison("max scaled gap across sizes 1-16GB",
                          "indiscernible", format_double(max_gap, 3));
  return 0;
}
