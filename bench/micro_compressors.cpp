// Microbenchmarks (google-benchmark) of the compressor kernels and
// end-to-end codecs — the native calibration path of the power studies —
// plus the Huffman-vs-raw and lossless-backend ablations called out in
// DESIGN.md section 6.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "compress/common/registry.hpp"
#include "compress/sz/huffman.hpp"
#include "compress/sz/sz_compressor.hpp"
#include "compress/sz/zlite.hpp"
#include "compress/zfp/transform.hpp"
#include "compress/zfp/zfp_compressor.hpp"
#include "data/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace lcp;

const data::Field& cesm_field() {
  static const data::Field field = data::generate_cesm_atm(8, 90, 180, 1);
  return field;
}

const data::Field& nyx_field() {
  static const data::Field field = data::generate_nyx(48, 2);
  return field;
}

void BM_SzCompressCesm(benchmark::State& state) {
  const double eb = std::pow(10.0, -static_cast<double>(state.range(0)));
  sz::SzCompressor codec;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto result =
        codec.compress(cesm_field(), compress::ErrorBound::absolute(eb));
    benchmark::DoNotOptimize(result);
    bytes += cesm_field().size_bytes().bytes();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SzCompressCesm)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_ZfpCompressCesm(benchmark::State& state) {
  const double eb = std::pow(10.0, -static_cast<double>(state.range(0)));
  zfp::ZfpCompressor codec;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto result =
        codec.compress(cesm_field(), compress::ErrorBound::absolute(eb));
    benchmark::DoNotOptimize(result);
    bytes += cesm_field().size_bytes().bytes();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ZfpCompressCesm)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_SzRoundTripNyx(benchmark::State& state) {
  sz::SzCompressor codec;
  for (auto _ : state) {
    auto compressed =
        codec.compress(nyx_field(), compress::ErrorBound::absolute(1e-3));
    auto decoded = codec.decompress(compressed->container);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(nyx_field().size_bytes().bytes()));
}
BENCHMARK(BM_SzRoundTripNyx)->Unit(benchmark::kMillisecond);

// Ablation: SZ with and without the zlite lossless backend.
void BM_SzBackendAblation(benchmark::State& state) {
  sz::SzOptions options;
  options.use_lossless_backend = state.range(0) != 0;
  sz::SzCompressor codec{options};
  double ratio = 0.0;
  for (auto _ : state) {
    auto result =
        codec.compress(cesm_field(), compress::ErrorBound::absolute(1e-2));
    ratio = result->compression_ratio();
    benchmark::DoNotOptimize(result);
  }
  state.counters["ratio"] = ratio;
}
BENCHMARK(BM_SzBackendAblation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Ablation: first- vs second-order Lorenzo predictor (paper ref [7]).
void BM_SzPredictorAblation(benchmark::State& state) {
  sz::SzOptions options;
  options.predictor = state.range(0) != 0 ? sz::SzPredictor::kSecondOrder
                                          : sz::SzPredictor::kFirstOrder;
  sz::SzCompressor codec{options};
  double ratio = 0.0;
  for (auto _ : state) {
    auto result =
        codec.compress(cesm_field(), compress::ErrorBound::absolute(1e-3));
    ratio = result->compression_ratio();
    benchmark::DoNotOptimize(result);
  }
  state.counters["ratio"] = ratio;
}
BENCHMARK(BM_SzPredictorAblation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ZFP fixed-rate mode throughput across rates.
void BM_ZfpFixedRate(benchmark::State& state) {
  zfp::ZfpCompressor codec;
  const double rate = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto result = codec.compress(cesm_field(),
                                 compress::ErrorBound::fixed_rate(rate));
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cesm_field().size_bytes().bytes()));
}
BENCHMARK(BM_ZfpFixedRate)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng{3};
  std::vector<std::uint32_t> symbols(1 << 18);
  for (auto& s : symbols) {
    // SZ-like: codes concentrated around the center of a 2^16 alphabet.
    s = static_cast<std::uint32_t>(
        std::clamp<double>(32768.0 + rng.normal(0.0, 40.0), 0.0, 65535.0));
  }
  for (auto _ : state) {
    auto blob = sz::huffman_encode(symbols, 65536);
    benchmark::DoNotOptimize(blob);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbols.size()));
}
BENCHMARK(BM_HuffmanEncode)->Unit(benchmark::kMillisecond);

void BM_ZliteCompress(benchmark::State& state) {
  Rng rng{4};
  std::vector<std::uint8_t> input(1 << 20);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>(rng.uniform_index(9));
  }
  for (auto _ : state) {
    auto out = sz::zlite_compress(input);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_ZliteCompress)->Unit(benchmark::kMillisecond);

void BM_ZfpTransform3D(benchmark::State& state) {
  Rng rng{5};
  std::vector<std::int64_t> block(64);
  for (auto& v : block) {
    v = static_cast<std::int64_t>(rng.next_u64() % (1ULL << 40));
  }
  for (auto _ : state) {
    zfp::forward_transform(block, 3);
    zfp::inverse_transform(block, 3);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ZfpTransform3D);

}  // namespace

BENCHMARK_MAIN();
