// Ablation — V/f curve shape vs fitted exponent: sweep the voltage curve's
// gamma and show how the fitted power-law exponent b (Table IV) tracks it.
// This isolates why Broadwell fits b~5 while Skylake fits b~23: the knee
// position of the voltage curve, not the compressor, sets the exponent.

#include <cstdio>

#include "common.hpp"
#include "model/power_law.hpp"
#include "power/voltage_curve.hpp"

int main() {
  using namespace lcp;
  bench::print_banner(
      "A1", "ablation — voltage-curve gamma vs fitted exponent b",
      "later/sharper V(f) knee => larger fitted b (f^5 Broadwell vs f^23 "
      "Skylake)");

  Table table{{"gamma", "knee f/fmax", "fitted b", "fitted c", "RMSE"}};
  table.set_title("P(f)=Ps+k*V(f)^2*f scaled, fitted with a*f^b+c");

  const double f_max = 2.2;
  const double p_static = 16.0;
  const double k_dyn = 2.067;
  for (double gamma : {1.0, 2.0, 3.0, 4.0, 6.0, 9.0, 12.0}) {
    const power::VoltageCurve vf{Volts{0.70}, Volts{1.05}, GigaHertz{f_max},
                                 gamma};
    std::vector<double> f;
    std::vector<double> p;
    for (double x = 0.8; x <= f_max + 1e-9; x += 0.05) {
      const double v = vf.at(GigaHertz{x}).volts();
      f.push_back(x);
      p.push_back(p_static + k_dyn * v * v * x);
    }
    const double p_max = p.back();
    for (double& v : p) {
      v /= p_max;
    }
    const auto fit = model::fit_power_law(f, p);
    if (!fit) {
      std::fprintf(stderr, "fit failed for gamma %.1f\n", gamma);
      return 1;
    }
    table.add_row({format_double(gamma, 1),
                   format_double(vf.clamp_frequency().ghz() / f_max, 3),
                   format_double(fit->b, 2), format_double(fit->c, 3),
                   format_double(fit->stats.rmse, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: the fitted exponent grows monotonically with gamma — the\n"
      "paper's f^23 Skylake fit is the signature of a voltage knee very\n"
      "close to f_max, not of anything compressor-specific.\n");
  return 0;
}
