// Extension — streaming dump overlap ladder. The paper's Figure 6 dump is
// strictly serial: compress everything, then write everything. The
// streaming engine (core/streaming_dump.hpp) pipelines the two stages
// over S slabs, contracting the makespan to max(tc, tt) + min(tc, tt)/S
// and crediting the hidden time against static (package-idle) energy.
// This bench walks that credit across pipeline depth and worker count:
//
//   - depth ladder: runtime/energy of the overlapped tuned plan vs the
//     serial tuned plan as S grows (S = 1 must reproduce serial exactly);
//   - worker ladder: the compression stage's cpu share divides across w
//     workers (the write stage stays wire/disk-bound), shifting which
//     stage is critical and how much overlap there is left to hide.

#include <cstdio>

#include <filesystem>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/dump_experiment.hpp"
#include "io/transit_model.hpp"
#include "support/ascii_plot.hpp"
#include "support/csv.hpp"
#include "tuning/io_plan.hpp"

namespace {

/// Compression workload with its core work split across `workers`
/// (chunk-parallel compression; the frequency-invariant share stays).
lcp::power::Workload split_compute(const lcp::power::Workload& w,
                                   std::size_t workers) {
  lcp::power::Workload out = w;
  out.cpu_ghz_seconds /= static_cast<double>(workers == 0 ? 1 : workers);
  return out;
}

}  // namespace

int main() {
  using namespace lcp;
  bench::print_banner(
      "X4", "Extension — overlapped compress/write dump pipeline",
      "pipelining the Fig. 6 dump stages over S slabs hides "
      "min(compress, write) * (1 - 1/S) of runtime and its static energy");

  // Same calibration path as the Fig. 6 dump experiment, CI scale.
  const auto& spec = power::chip(power::ChipId::kBroadwellD1548);
  const tuning::TuningRule rule = tuning::paper_rule();
  const io::TransitModelConfig transit;
  const Bytes volume = Bytes::from_gb(512);

  auto cal = core::calibrate_codec(compress::CodecId::kSz,
                                   data::DatasetId::kNyx, 1e-3,
                                   data::Scale::kCi, 20220530);
  LCP_REQUIRE(cal.has_value(), "calibration failed");
  const double scale_up = static_cast<double>(volume.bytes()) /
                          static_cast<double>(cal->input_bytes.bytes());
  core::Calibration full = *cal;
  full.native_seconds = cal->native_seconds * scale_up;
  full.input_bytes = volume;
  const power::Workload compress_w = core::workload_from_calibration(full, spec);
  const Bytes compressed{static_cast<std::uint64_t>(
      static_cast<double>(volume.bytes()) / cal->compression_ratio)};
  const power::Workload write_w = io::transit_workload(spec, compressed, transit);

  CsvWriter csv{{"pipeline_depth", "workers", "runtime_serial_s",
                 "runtime_overlap_s", "energy_serial_j", "energy_overlap_j",
                 "overlap_saved_s", "energy_savings_vs_base"}};

  // --- Depth ladder at 1 worker -------------------------------------------
  std::printf("  depth ladder (1 worker, tuned clocks):\n");
  std::printf("  %7s %14s %14s %14s %14s\n", "depth", "serial s", "overlap s",
              "serial J", "overlap J");
  PlotSeries depth_series;
  depth_series.name = "runtime vs depth";
  depth_series.glyph = 'D';
  bool depth_monotone = true;
  bool depth1_exact = false;
  double prev_runtime = 0.0;
  for (std::size_t depth : {1, 2, 4, 8, 16, 32}) {
    const auto plan =
        tuning::plan_overlapped_dump(spec, compress_w, write_w, rule, depth);
    const double serial_s = plan.tuned.serial_runtime.seconds();
    const double overlap_s = plan.tuned.runtime.seconds();
    if (depth == 1) {
      depth1_exact = overlap_s == serial_s &&
                     plan.tuned.energy.joules() ==
                         plan.tuned.serial_energy.joules();
    } else if (overlap_s > prev_runtime) {
      depth_monotone = false;
    }
    prev_runtime = overlap_s;
    depth_series.x.push_back(static_cast<double>(depth));
    depth_series.y.push_back(overlap_s);
    std::printf("  %7zu %14.1f %14.1f %14.1f %14.1f\n", depth, serial_s,
                overlap_s, plan.tuned.serial_energy.joules(),
                plan.tuned.energy.joules());
    csv.add_row({std::to_string(depth), "1", format_double(serial_s, 2),
                 format_double(overlap_s, 2),
                 format_double(plan.tuned.serial_energy.joules(), 1),
                 format_double(plan.tuned.energy.joules(), 1),
                 format_double(plan.tuned.overlap_saved().seconds(), 2),
                 format_double(plan.energy_savings(), 4)});
  }

  PlotOptions opts;
  opts.title = "Overlapped dump runtime vs pipeline depth (tuned)";
  opts.x_label = "depth";
  opts.y_label = "s";
  std::printf("%s\n", render_plot({depth_series}, opts).c_str());

  // --- Worker x depth ladder ----------------------------------------------
  std::printf("  worker ladder (overlapped tuned runtime s / energy kJ):\n");
  std::printf("  %8s %18s %18s %18s\n", "workers", "depth 1", "depth 4",
              "depth 16");
  bool overlap_never_worse = true;
  for (std::size_t workers : {1, 2, 4, 8}) {
    const power::Workload cw = split_compute(compress_w, workers);
    std::printf("  %8zu", workers);
    for (std::size_t depth : {1, 4, 16}) {
      const auto plan =
          tuning::plan_overlapped_dump(spec, cw, write_w, rule, depth);
      if (plan.tuned.runtime.seconds() >
          plan.tuned.serial_runtime.seconds() + 1e-9) {
        overlap_never_worse = false;
      }
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.0fs / %.0fkJ",
                    plan.tuned.runtime.seconds(),
                    plan.tuned.energy.joules() / 1e3);
      std::printf(" %18s", cell);
      csv.add_row({std::to_string(depth), std::to_string(workers),
                   format_double(plan.tuned.serial_runtime.seconds(), 2),
                   format_double(plan.tuned.runtime.seconds(), 2),
                   format_double(plan.tuned.serial_energy.joules(), 1),
                   format_double(plan.tuned.energy.joules(), 1),
                   format_double(plan.tuned.overlap_saved().seconds(), 2),
                   format_double(plan.energy_savings(), 4)});
    }
    std::printf("\n");
  }

  // The dump experiment rides the same model: overlap=off leaves the
  // outcome bare, overlap=on adds the streaming schedule next to (not
  // instead of) the serial plan — its embedded serial comparison must
  // match the classic plan of the very same run exactly. (Cross-run joule
  // equality is not assertable here: calibration re-measures wall time.)
  core::DumpConfig dc;
  dc.error_bounds = {1e-3};
  auto serial_run = core::run_dump_experiment(dc);
  dc.overlap = true;
  dc.overlap_depth = 16;
  auto overlap_run = core::run_dump_experiment(dc);
  LCP_REQUIRE(serial_run.has_value() && overlap_run.has_value(),
              "dump experiment failed");
  const auto& on = overlap_run->outcomes[0];
  const bool off_identical =
      !serial_run->outcomes[0].overlapped && on.overlapped &&
      on.overlap.serial.energy_tuned.joules() ==
          on.plan.energy_tuned.joules() &&
      on.overlap.serial.runtime_tuned.seconds() ==
          on.plan.runtime_tuned.seconds();

  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  bench::emit_csv(csv, "bench_out/extension_overlap.csv");
  std::printf("\n");

  bench::print_comparison("depth 1 reproduces the serial plan exactly",
                          "yes", depth1_exact ? "yes" : "NO");
  bench::print_comparison("runtime monotone non-increasing in depth", "yes",
                          depth_monotone ? "yes" : "NO");
  bench::print_comparison("overlap never slower than serial", "yes",
                          overlap_never_worse ? "yes" : "NO");
  bench::print_comparison("overlap=off leaves serial plan untouched", "yes",
                          off_identical ? "yes" : "NO");
  return (depth1_exact && depth_monotone && overlap_never_worse &&
          off_identical)
             ? 0
             : 1;
}
