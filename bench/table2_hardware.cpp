// Table II — hardware utilized: print the chip registry next to the
// published rows, plus the power-model parameters behind the simulation.

#include <cstdio>

#include "common.hpp"
#include "dvfs/frequency_range.hpp"
#include "power/chip_model.hpp"
#include "power/rapl_reader.hpp"

int main() {
  using namespace lcp;
  bench::print_banner("T2", "Table II — hardware utilized",
                      "m510 Xeon D-1548 0.8-2.0GHz Broadwell | "
                      "c220g5 Xeon Silver 4114 0.8-2.2GHz Skylake");

  Table table{{"CloudLab", "CPU", "CPU Min - Base Clock", "Series", "TDP",
               "DVFS points"}};
  table.set_title("TABLE II (simulated chip models)");
  for (power::ChipId id : power::all_chips()) {
    const auto& spec = power::chip(id);
    const dvfs::FrequencyRange range{spec.f_min, spec.f_max, spec.f_step};
    char clocks[64];
    std::snprintf(clocks, sizeof(clocks), "%.1fGHz - %.1fGHz",
                  spec.f_min.ghz(), spec.f_max.ghz());
    table.add_row({spec.cloudlab_node, spec.cpu_name, clocks, spec.series,
                   format_double(spec.tdp.watts(), 0) + "W",
                   std::to_string(range.steps().size())});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nPower-model parameters (calibrated, see DESIGN.md):\n");
  Table params{{"Series", "P_static", "k_dyn", "Vmin-Vmax", "V(f) gamma",
                "knee f/fmax", "P(fmin)/P(fmax) @u=1"}};
  for (power::ChipId id : power::all_chips()) {
    const auto& spec = power::chip(id);
    const double floor = power::package_power(spec, spec.f_min, 1.0) /
                         power::package_power(spec, spec.f_max, 1.0);
    char vrange[32];
    std::snprintf(vrange, sizeof(vrange), "%.2f-%.2fV",
                  spec.vf.v_min().volts(), spec.vf.v_max().volts());
    params.add_row(
        {spec.series, format_double(spec.static_power.watts(), 1) + "W",
         format_double(spec.dyn_coeff, 3), vrange,
         format_double(spec.vf.gamma(), 1),
         format_double(spec.vf.clamp_frequency().ghz() / spec.f_max.ghz(), 3),
         format_double(floor, 3)});
  }
  std::printf("%s", params.render().c_str());

  power::RaplReader rapl;
  std::printf("\nreal RAPL interface: %s\n",
              rapl.available()
                  ? "available (hardware energy counters readable)"
                  : "unavailable (expected in containers; simulated "
                    "counters substitute)");
  bench::print_comparison("frequency step", "50 MHz", "50 MHz");
  return 0;
}
