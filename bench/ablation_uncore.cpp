// Ablation — uncore frequency scaling (the paper's ref [11] direction):
// how much extra energy does the second DVFS knob buy over the paper's
// core-only tuning, per chip and per workload type?

#include <cstdio>

#include "common.hpp"
#include "io/transit_model.hpp"
#include "power/uncore.hpp"

int main() {
  using namespace lcp;
  bench::print_banner(
      "A4", "ablation — combined core+uncore tuning vs core-only (EAR)",
      "ref [11]: uncore frequency scaling yields additional savings on top "
      "of core DVFS, most for cpu-bound phases");

  Table table{{"workload", "chip", "core-only E", "best (fc, fu)",
               "combined E", "extra saved", "runtime +"}};

  for (power::ChipId id : power::all_chips()) {
    const auto& spec = power::chip(id);
    const auto& unc = power::uncore(id);

    struct Case {
      const char* name;
      power::Workload workload;
    };
    const Case cases[] = {
        {"compression (b=0.53)",
         power::compression_workload(spec, Seconds{10.0}, 0.53, 1.0)},
        {"cpu-bound (b=1.0)",
         power::compression_workload(spec, Seconds{10.0}, 1.0, 1.0)},
        {"nfs write 4GB", io::transit_workload(spec, Bytes::from_gb(4), {})},
    };
    for (const auto& c : cases) {
      // Core-only optimum with the uncore pinned at max.
      double core_only = 1e300;
      GigaHertz best_core = spec.f_max;
      for (double f = spec.f_min.ghz(); f <= spec.f_max.ghz() + 1e-9;
           f += spec.f_step.ghz()) {
        const double e = power::workload_energy_uncore(
                             c.workload, spec, unc, GigaHertz{f}, unc.f_max)
                             .joules();
        if (e < core_only) {
          core_only = e;
          best_core = GigaHertz{f};
        }
      }
      const auto point =
          power::energy_optimal_operating_point(c.workload, spec, unc);
      const double combined =
          power::workload_energy_uncore(c.workload, spec, unc, point.core,
                                        point.uncore)
              .joules();
      const double t_base = power::workload_runtime_uncore(
                                c.workload, spec, unc, spec.f_max, unc.f_max)
                                .seconds();
      const double t_comb = power::workload_runtime_uncore(
                                c.workload, spec, unc, point.core,
                                point.uncore)
                                .seconds();
      char point_str[48];
      std::snprintf(point_str, sizeof(point_str), "(%.2f, %.2f) GHz",
                    point.core.ghz(), point.uncore.ghz());
      table.add_row({c.name, spec.series,
                     format_double(core_only, 1) + " J", point_str,
                     format_double(combined, 1) + " J",
                     format_percent(1.0 - combined / core_only, 1),
                     format_percent(t_comb / t_base - 1.0, 1)});
      (void)best_core;
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: cpu-bound phases can drop the uncore clock almost for\n"
      "free; memory-involved phases must keep it high. A production EAR-\n"
      "style runtime would pick both knobs per phase, which is the natural\n"
      "extension of the paper's Eqn 3.\n");
  return 0;
}
