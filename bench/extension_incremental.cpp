// Extension — replicated incremental checkpoint store. A full dump ships
// every slab every generation; the incremental store ships only the slabs
// whose content hash changed, at the price of R-way replication of what
// it does ship. Two ladders:
//
//   1. Model grid: tuning::plan_incremental_dump over dirty fraction x
//      replication factor, gated on (a) d = 1, R = 1 reproducing
//      plan_compressed_dump bit-for-bit, (b) energy monotone in d, and
//      (c) the delta dump never costing more than the full dump it
//      replaces at the same R.
//
//   2. Functional ladder: a 3-replica store takes a 3-generation delta
//      chain over a Nyx field, restores every generation byte-identically
//      (against the classic checkpoint pipeline as reference), survives
//      the loss of any single replica, and still restores after dropping
//      a generation and garbage-collecting its slabs. Replication traffic
//      is priced through the transit model per generation.

#include <cstdio>

#include <algorithm>
#include <filesystem>
#include <ranges>
#include <string>
#include <vector>

#include "common.hpp"
#include "compress/common/checkpoint.hpp"
#include "core/compression_study.hpp"
#include "core/incremental_checkpoint.hpp"
#include "data/generators.hpp"
#include "io/replica_set.hpp"
#include "io/transit_model.hpp"
#include "support/ascii_plot.hpp"
#include "support/csv.hpp"
#include "tuning/io_plan.hpp"
#include "tuning/rule.hpp"

namespace {

using namespace lcp;

/// Copy of `field` with `count` elements bumped starting at `offset` —
/// the dirty region of one generation.
data::Field touch_region(const data::Field& field, std::size_t offset,
                         std::size_t count, float delta) {
  std::vector<float> values(field.values().begin(), field.values().end());
  const std::size_t end = std::min(values.size(), offset + count);
  for (std::size_t i = offset; i < end; ++i) {
    values[i] += delta;
  }
  return data::Field{field.name(), field.dims(), std::move(values)};
}

/// Reference decode: what the classic checkpoint pipeline would hand back
/// for `field` (lossy codecs make the raw field the wrong reference).
Expected<data::Field> reference_roundtrip(
    const data::Field& field, const compress::CheckpointOptions& opts) {
  auto bytes = compress::write_checkpoint(field, opts);
  if (!bytes.has_value()) {
    return bytes.status();
  }
  return compress::read_checkpoint(*bytes);
}

}  // namespace

int main() {
  bench::print_banner(
      "X5", "Extension — replicated incremental checkpoint store",
      "content-hash dirty detection makes dump energy proportional to the "
      "touched fraction; R-way replication prices durability per byte and "
      "restores survive any single replica loss");

  const auto& spec = power::chip(power::ChipId::kBroadwellD1548);
  const tuning::TuningRule rule = tuning::paper_rule();
  const io::TransitModelConfig transit;
  const Bytes volume = Bytes::from_gb(512);

  // --- Model grid: dirty fraction x replication ---------------------------
  auto cal = core::calibrate_codec(compress::CodecId::kSz,
                                   data::DatasetId::kNyx, 1e-3,
                                   data::Scale::kCi, 20220530);
  LCP_REQUIRE(cal.has_value(), "calibration failed");
  const double scale_up = static_cast<double>(volume.bytes()) /
                          static_cast<double>(cal->input_bytes.bytes());
  core::Calibration full_cal = *cal;
  full_cal.native_seconds = cal->native_seconds * scale_up;
  full_cal.input_bytes = volume;
  const power::Workload compress_w =
      core::workload_from_calibration(full_cal, spec);
  const Bytes compressed{static_cast<std::uint64_t>(
      static_cast<double>(volume.bytes()) / cal->compression_ratio)};
  const power::Workload write_w =
      io::transit_workload(spec, compressed, transit);

  const auto full_plan =
      tuning::plan_compressed_dump(spec, compress_w, write_w, rule);

  tuning::IncrementalDumpSpec degenerate;
  degenerate.dirty_fraction = 1.0;
  degenerate.replicas = 1;
  const auto deg =
      tuning::plan_incremental_dump(spec, compress_w, write_w, rule,
                                    degenerate);
  const bool degeneracy_exact =
      deg.plan.energy_tuned.joules() == full_plan.energy_tuned.joules() &&
      deg.plan.energy_base.joules() == full_plan.energy_base.joules() &&
      deg.plan.runtime_tuned.seconds() == full_plan.runtime_tuned.seconds() &&
      deg.plan.runtime_base.seconds() == full_plan.runtime_base.seconds();
  bench::print_comparison(
      "plan_incremental_dump(d=1, R=1) == plan_compressed_dump (bit-for-bit)",
      "yes", degeneracy_exact ? "yes" : "NO");

  const std::vector<double> dirties = {0.02, 0.05, 0.10, 0.25, 0.50, 1.00};
  const std::vector<std::size_t> replication = {1, 2, 3};
  CsvWriter grid_csv{{"dirty_fraction", "replicas", "energy_tuned_j",
                      "runtime_tuned_s", "savings_vs_full"}};
  std::vector<PlotSeries> series;
  bool grid_monotone = true;
  bool never_worse_than_full = true;
  std::printf("\n  tuned dump energy, 512 GB Nyx/sz field:\n");
  std::printf("  %8s %4s %16s %14s %14s\n", "dirty", "R", "energy J",
              "runtime s", "vs full dump");
  for (std::size_t r : replication) {
    PlotSeries s;
    s.name = "R=" + std::to_string(r);
    s.glyph = static_cast<char>('0' + r);
    double prev = 0.0;
    for (double d : dirties) {
      tuning::IncrementalDumpSpec inc_spec;
      inc_spec.dirty_fraction = d;
      inc_spec.replicas = r;
      const auto plan =
          tuning::plan_incremental_dump(spec, compress_w, write_w, rule,
                                        inc_spec);
      const double joules = plan.plan.energy_tuned.joules();
      if (!s.x.empty() && joules < prev) {
        grid_monotone = false;
      }
      prev = joules;
      // At R = 1 the full dump is the ceiling: no dirty fraction may cost
      // more than re-shipping everything (d = 1 meets it exactly).
      if (r == 1 && joules > full_plan.energy_tuned.joules()) {
        never_worse_than_full = false;
      }
      grid_csv.add_row({format_double(d, 2), std::to_string(r),
                        format_double(joules, 2),
                        format_double(plan.plan.runtime_tuned.seconds(), 3),
                        format_double(plan.energy_saved_vs_full().joules(),
                                      2)});
      std::printf("  %7.0f%% %4zu %16.2f %14.3f %13.2f J\n", d * 100.0, r,
                  joules, plan.plan.runtime_tuned.seconds(),
                  plan.energy_saved_vs_full().joules());
      s.x.push_back(d * 100.0);
      s.y.push_back(joules);
    }
    series.push_back(std::move(s));
  }
  PlotOptions plot;
  plot.title = "Tuned dump energy vs dirty fraction (512 GB, by replication)";
  plot.x_label = "dirty %";
  plot.y_label = "energy J";
  std::printf("\n%s\n", render_plot(series, plot).c_str());

  std::printf(
      "  slab write amplification: touched 5%% in 4 Ki-element runs -> "
      "dirty %.1f%% of 32 Ki-element slabs\n\n",
      100.0 * tuning::dirty_slab_fraction(0.05, 32768, 4096));

  // --- Functional ladder: 3 replicas, 3 generations -----------------------
  io::NfsServer s0, s1, s2;
  io::ReplicaSetConfig rs_config;
  io::ReplicaSet replicas{{&s0, &s1, &s2}, rs_config};
  core::IncrementalStoreOptions store_opts;
  store_opts.root = "bench";
  store_opts.checkpoint.codec = "sz";
  store_opts.checkpoint.bound = compress::ErrorBound::absolute(1e-3);
  store_opts.checkpoint.chunk_elements = 1024;
  core::IncrementalCheckpointStore store{replicas, store_opts};

  const auto transit_joules = [&](std::uint64_t bytes) {
    if (bytes == 0) return 0.0;
    const auto w = io::transit_workload(spec, Bytes{bytes}, transit);
    return power::workload_energy(w, spec, spec.f_max).joules();
  };

  // Generation chain: full field, then two small disjoint touches.
  std::vector<data::Field> chain;
  chain.push_back(data::generate_nyx(34, /*seed=*/42));
  chain.push_back(touch_region(chain[0], 0, 3 * 1024, 0.125F));
  chain.push_back(touch_region(chain[1], 20 * 1024, 2 * 1024, -0.25F));

  CsvWriter ladder_csv{{"generation", "dirty_slabs", "written_slabs",
                        "payload_bytes", "replicated_bytes",
                        "replication_j"}};
  std::vector<core::DumpSummary> dumps;
  for (const data::Field& field : chain) {
    auto summary = store.dump(field);
    LCP_REQUIRE(summary.has_value(), "incremental dump failed");
    ladder_csv.add_row(
        {std::to_string(summary->generation),
         std::to_string(summary->dirty_slabs),
         std::to_string(summary->written_slabs),
         std::to_string(summary->payload_bytes.bytes()),
         std::to_string(summary->replicated_bytes.bytes()),
         format_double(transit_joules(summary->replicated_bytes.bytes()),
                       6)});
    std::printf(
        "  gen %llu: %zu/%zu slabs dirty, %zu written, %llu B payload, "
        "%llu B replicated (%.6f J)\n",
        static_cast<unsigned long long>(summary->generation),
        summary->dirty_slabs, summary->slab_count, summary->written_slabs,
        static_cast<unsigned long long>(summary->payload_bytes.bytes()),
        static_cast<unsigned long long>(summary->replicated_bytes.bytes()),
        transit_joules(summary->replicated_bytes.bytes()));
    dumps.push_back(*summary);
  }
  const bool delta_cheaper =
      dumps.size() == 3 &&
      dumps[1].replicated_bytes.bytes() < dumps[0].replicated_bytes.bytes() &&
      dumps[2].replicated_bytes.bytes() < dumps[0].replicated_bytes.bytes();
  bench::print_comparison(
      "delta generations replicate fewer bytes than the full generation",
      "yes", delta_cheaper ? "yes" : "NO");

  // Byte-identity of every generation against the classic pipeline.
  compress::RecoveryPolicy strict;
  strict.fail_on_any_loss = true;
  bool identical = true;
  for (std::size_t g = 0; g < chain.size(); ++g) {
    const auto restored = store.restore(g + 1, strict);
    const auto reference = reference_roundtrip(chain[g],
                                               store_opts.checkpoint);
    if (!restored.has_value() || !reference.has_value() ||
        !std::ranges::equal(restored->field.values(),
                            reference->values())) {
      identical = false;
    }
  }
  bench::print_comparison(
      "every generation restores byte-identical to the classic pipeline",
      "yes", identical ? "yes" : "NO");

  // Any single replica may be lost.
  bool survives_single_loss = true;
  for (std::size_t down = 0; down < replicas.replica_count(); ++down) {
    replicas.set_replica_down(down, true);
    const auto restored = store.restore_latest(strict);
    if (!restored.has_value() || !restored->complete()) {
      survives_single_loss = false;
    }
    replicas.set_replica_down(down, false);
  }
  bench::print_comparison("latest generation restores with any one replica down",
                          "yes", survives_single_loss ? "yes" : "NO");

  // Drop the full generation, GC its now-unreferenced slabs, and keep
  // restoring the survivors.
  const Bytes stored_before = s0.total_bytes_stored();
  LCP_REQUIRE(store.drop_generation(1).is_ok(), "drop_generation failed");
  const auto gc = store.gc();
  LCP_REQUIRE(gc.has_value(), "gc failed");
  std::printf(
      "  gc after dropping gen 1: removed %zu objects (%llu B freed), "
      "%zu live, replica 0 store %llu -> %llu B\n",
      gc->objects_removed,
      static_cast<unsigned long long>(gc->bytes_freed.bytes()),
      gc->objects_live,
      static_cast<unsigned long long>(stored_before.bytes()),
      static_cast<unsigned long long>(s0.total_bytes_stored().bytes()));
  bool post_gc_ok = gc->objects_removed > 0;
  for (std::uint64_t g : {std::uint64_t{2}, std::uint64_t{3}}) {
    const auto restored = store.restore(g, strict);
    const auto reference = reference_roundtrip(chain[g - 1],
                                               store_opts.checkpoint);
    if (!restored.has_value() || !reference.has_value() ||
        !std::ranges::equal(restored->field.values(),
                            reference->values())) {
      post_gc_ok = false;
    }
  }
  bench::print_comparison(
      "post-gc restores stay byte-identical (gens 2, 3)", "yes",
      post_gc_ok ? "yes" : "NO");

  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  bench::emit_csv(grid_csv, "bench_out/extension_incremental_grid.csv");
  bench::emit_csv(ladder_csv,
                  "bench_out/extension_incremental_ladder.csv");
  std::printf("\n");

  const bool pass = degeneracy_exact && grid_monotone &&
                    never_worse_than_full && delta_cheaper && identical &&
                    survives_single_loss && post_gc_ok;
  bench::print_comparison("all incremental-store gates", "pass",
                          pass ? "pass" : "FAIL");
  return pass ? 0 : 1;
}
