// Headline numbers of Sections V-A.3 and VII: power/energy savings and
// runtime costs of the Eqn 3 tuning rule, averaged over chips and stages.
//   - compression: 19.4% power savings at -12.5% f, +7.5% runtime
//   - data writing: 11.2% power savings at -15% f, +9.3% runtime
//   - combined: 14.3% average savings at +8.4% runtime

#include <cstdio>

#include "common.hpp"
#include "core/dump_experiment.hpp"
#include "io/transit_model.hpp"
#include "tuning/optimizer.hpp"
#include "tuning/rule.hpp"

int main() {
  using namespace lcp;
  bench::print_banner(
      "H", "headline savings (Sections V-A.3, VII)",
      "19.4%@-12.5% compression | 11.2%@-15% writing | 14.3% avg @ +8.4% t");

  const auto rule = tuning::paper_rule();

  Table table{{"stage", "chip", "f_base", "f_tuned", "power saved",
               "runtime +", "energy saved"}};
  table.set_title("Eqn 3 applied per stage and chip (model, noise-free)");

  double comp_power = 0.0;
  double comp_runtime = 0.0;
  double write_power = 0.0;
  double write_runtime = 0.0;
  double all_energy = 0.0;
  double all_runtime = 0.0;
  int n_comp = 0;
  int n_write = 0;

  for (power::ChipId id : power::all_chips()) {
    const auto& spec = power::chip(id);

    const auto comp =
        power::compression_workload(spec, Seconds{10.0}, 0.53, 1.0);
    const auto comp_report = tuning::evaluate_tuning(
        spec, comp, spec.f_max, rule.compression_frequency(spec.f_max));
    comp_power += comp_report.power_savings();
    comp_runtime += comp_report.runtime_increase();
    all_energy += comp_report.energy_savings();
    all_runtime += comp_report.runtime_increase();
    ++n_comp;
    table.add_row({"compression", spec.series,
                   format_double(comp_report.f_base.ghz(), 2) + "GHz",
                   format_double(comp_report.f_tuned.ghz(), 2) + "GHz",
                   format_percent(comp_report.power_savings(), 1),
                   format_percent(comp_report.runtime_increase(), 1),
                   format_percent(comp_report.energy_savings(), 1)});

    const auto write = io::transit_workload(spec, Bytes::from_gb(4), {});
    const auto write_report = tuning::evaluate_tuning(
        spec, write, spec.f_max, rule.transit_frequency(spec.f_max));
    write_power += write_report.power_savings();
    write_runtime += write_report.runtime_increase();
    all_energy += write_report.energy_savings();
    all_runtime += write_report.runtime_increase();
    ++n_write;
    table.add_row({"data writing", spec.series,
                   format_double(write_report.f_base.ghz(), 2) + "GHz",
                   format_double(write_report.f_tuned.ghz(), 2) + "GHz",
                   format_percent(write_report.power_savings(), 1),
                   format_percent(write_report.runtime_increase(), 1),
                   format_percent(write_report.energy_savings(), 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Headline comparisons:\n");
  bench::print_comparison("compression power savings @ -12.5% f", "19.4%",
                          format_percent(comp_power / n_comp, 1));
  bench::print_comparison("compression runtime increase", "+7.5%",
                          format_percent(comp_runtime / n_comp, 1));
  bench::print_comparison("writing power savings @ -15% f", "11.2%",
                          format_percent(write_power / n_write, 1));
  bench::print_comparison("writing runtime increase", "+9.3%",
                          format_percent(write_runtime / n_write, 1));
  bench::print_comparison(
      "average power savings (the paper's 14.3% figure)", "14.3%",
      format_percent((comp_power + write_power) / (n_comp + n_write), 1));
  bench::print_comparison(
      "average TRUE energy savings (P x t)",
      "~7% (implied by the paper's own Table IV/V models)",
      format_percent(all_energy / (n_comp + n_write), 1));
  bench::print_comparison(
      "average runtime increase (all stages)", "+8.4%",
      format_percent(all_runtime / (n_comp + n_write), 1));

  // Fleet extrapolation in the abstract's spirit ("tens of MWs"): a
  // 10,000-node system running one tuned 512 GB compressed dump per node
  // per day.
  core::DumpConfig dump_cfg;
  dump_cfg.error_bounds = {1e-3};
  const auto dump = core::run_dump_experiment(dump_cfg);
  if (dump) {
    const double per_node_kj = dump->outcomes[0].plan.energy_saved().kj();
    const double nodes = 10000.0;
    const double mwh_per_day = per_node_kj * nodes / 3.6e6;
    std::printf(
        "\nexascale extrapolation: %.2f kJ saved per tuned 512 GB dump x "
        "%.0f nodes/day\n  = %.1f kWh/day = %.2f MWh/day of I/O energy\n",
        per_node_kj, nodes, mwh_per_day * 1000.0, mwh_per_day);
  }
  return 0;
}
