// Tables III & IV — model partitions and the fitted compression power
// models P(f) = a f^b + c with goodness of fit, regressed from the full
// compression study (2 codecs x 3 datasets x 4 bounds x 2 chips x 10
// repeats over the 50 MHz DVFS grid).

#include <cstdio>

#include "common.hpp"
#include "model/confidence.hpp"
#include "model/partitions.hpp"

int main(int argc, char** argv) {
  using namespace lcp;
  const bool full = bench::full_scale_requested(argc, argv);

  bench::print_banner(
      "T3+T4", "Tables III & IV — compression power models",
      "Total 0.0086f^4.038+0.757 | SZ 0.0107f^3.788+0.754 | "
      "ZFP 0.0062f^4.414+0.759 | Broadwell 0.0064f^5.315+0.743 | "
      "Skylake 2.235e-9f^23.31+0.794; per-chip partitions fit best");

  Table t3{{"Model Data", "Compressor(s)", "CPU(s)"}};
  t3.set_title("TABLE III (partitions used for regression)");
  for (const auto& p : model::compression_partitions()) {
    const std::string codecs =
        p.codec.has_value()
            ? (*p.codec == model::CodecFilter::kSz ? "SZ" : "ZFP")
            : "SZ, ZFP";
    const std::string chips =
        p.chip.has_value() ? power::chip_series_name(*p.chip)
                           : "Broadwell, Skylake";
    t3.add_row({p.name, codecs, chips});
  }
  std::printf("%s\n", t3.render().c_str());

  const auto& study = bench::shared_compression_study(full);
  const auto rows = core::build_compression_models(study);
  if (!rows) {
    std::fprintf(stderr, "model build failed: %s\n",
                 rows.status().to_string().c_str());
    return 1;
  }
  bench::print_model_table("TABLE IV (reproduced fits on scaled power)",
                           *rows);

  // Parameter uncertainty (not in the paper; see model/confidence.hpp).
  Table ci_table{{"Model Data", "b +- 95% CI", "c +- 95% CI", "resid sd"}};
  ci_table.set_title("Fit parameter confidence (linearized, t-based)");
  for (const auto& row : *rows) {
    const auto obs = core::collect_compression_observations(study,
                                                            row.partition);
    const auto ci = model::power_law_confidence(row.fit, obs.f_ghz,
                                                obs.scaled_power);
    if (ci) {
      ci_table.add_row({row.partition.name,
                        format_double(row.fit.b, 2) + " +- " +
                            format_double(ci->b_half, 2),
                        format_double(row.fit.c, 4) + " +- " +
                            format_double(ci->c_half, 4),
                        format_double(ci->residual_stddev, 4)});
    }
  }
  std::printf("%s", ci_table.render().c_str());

  std::printf("\nShape checks vs the paper:\n");
  double b_bdw = 0.0;
  double b_skl = 0.0;
  double rmse_total = 0.0;
  double rmse_bdw = 0.0;
  double rmse_skl = 0.0;
  for (const auto& row : *rows) {
    if (row.partition.name == "Broadwell") {
      b_bdw = row.fit.b;
      rmse_bdw = row.fit.stats.rmse;
    } else if (row.partition.name == "Skylake") {
      b_skl = row.fit.b;
      rmse_skl = row.fit.stats.rmse;
    } else if (row.partition.name == "Total") {
      rmse_total = row.fit.stats.rmse;
    }
  }
  bench::print_comparison("Broadwell exponent b", "5.315",
                          format_double(b_bdw, 2));
  bench::print_comparison("Skylake exponent b (much larger)", "23.31",
                          format_double(b_skl, 2));
  bench::print_comparison(
      "per-chip RMSE < pooled RMSE", "yes",
      (rmse_bdw < rmse_total && rmse_skl < rmse_total) ? "yes" : "NO");
  std::printf(
      "\nConclusion check: power models depend on hardware far more than\n"
      "on the choice of lossy compressor (Section IV-A).\n");
  return 0;
}
