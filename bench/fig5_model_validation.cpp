// Figure 5 — Broadwell chip model for power consumption, validated on
// data not used in the regression: the six Hurricane-ISABEL fields
// compressed with SZ and ZFP at a 1e-4 bound. Paper: SSE = 0.1463,
// RMSE = 0.0256.

#include <cstdio>

#include "common.hpp"
#include "core/validation_study.hpp"

int main(int argc, char** argv) {
  using namespace lcp;
  const bool full = bench::full_scale_requested(argc, argv);
  bench::print_banner(
      "F5", "Fig 5 — Broadwell model vs Hurricane-ISABEL (new data)",
      "fixed model estimates unseen data well: SSE 0.1463, RMSE 0.0256");

  // Fit the Broadwell model on the Table I study (exactly the paper flow).
  const auto& study = bench::shared_compression_study(full);
  const auto rows = core::build_compression_models(study);
  if (!rows) {
    std::fprintf(stderr, "model build failed\n");
    return 1;
  }
  const core::ModelTableRow* bdw = nullptr;
  for (const auto& row : *rows) {
    if (row.partition.name == "Broadwell") {
      bdw = &row;
    }
  }
  if (bdw == nullptr) {
    std::fprintf(stderr, "no Broadwell partition\n");
    return 1;
  }
  std::printf("fitted Broadwell model: P(f) = %s\n\n",
              bdw->fit.to_string().c_str());

  core::ValidationConfig cfg;
  cfg.scale = full ? data::Scale::kPaper : data::Scale::kCi;
  const auto validation = core::run_validation_study(cfg, bdw->fit);
  if (!validation) {
    std::fprintf(stderr, "validation failed: %s\n",
                 validation.status().to_string().c_str());
    return 1;
  }

  // Plot: model curve vs pooled new observations.
  bench::AggregatedCurve model_curve;
  model_curve.label = "Model";
  bench::AggregatedCurve observed;
  {
    std::vector<const std::vector<core::SweepPoint>*> sweeps;
    for (const auto& series : validation->series) {
      sweeps.push_back(&series.sweep);
    }
    observed =
        bench::aggregate_scaled("Isabel", sweeps, core::SweepMetric::kPower);
  }
  model_curve.f_ghz = observed.f_ghz;
  for (double f : observed.f_ghz) {
    model_curve.mean.push_back(bdw->fit.evaluate(f));
    model_curve.ci95.push_back(0.0);
  }
  bench::emit_figure("fig5_model_validation",
                     "Fig 5 (reproduced): model (M) vs new data (I)",
                     "P(f)/P(f_max)", {model_curve, observed});

  std::printf("\nGoodness of the fixed model on new data:\n");
  bench::print_comparison("SSE", "0.1463",
                          format_double(validation->stats.sse, 4));
  bench::print_comparison("RMSE", "0.0256",
                          format_double(validation->stats.rmse, 4));
  bench::print_comparison("observations (fields x codecs x grid)",
                          "6x2x25", std::to_string(validation->stats.n));
  std::printf(
      "\nConclusion check: the model estimates power behaviour well even\n"
      "for data not factored into the regression (Section VI-A).\n");
  return 0;
}
