# Empty compiler generated dependencies file for fig2_compression_runtime.
# This may be replaced when dependencies are built.
