file(REMOVE_RECURSE
  "../bench/fig2_compression_runtime"
  "../bench/fig2_compression_runtime.pdb"
  "CMakeFiles/fig2_compression_runtime.dir/fig2_compression_runtime.cpp.o"
  "CMakeFiles/fig2_compression_runtime.dir/fig2_compression_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_compression_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
