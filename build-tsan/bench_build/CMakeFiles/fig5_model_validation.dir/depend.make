# Empty dependencies file for fig5_model_validation.
# This may be replaced when dependencies are built.
