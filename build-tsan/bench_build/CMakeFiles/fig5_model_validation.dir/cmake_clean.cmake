file(REMOVE_RECURSE
  "../bench/fig5_model_validation"
  "../bench/fig5_model_validation.pdb"
  "CMakeFiles/fig5_model_validation.dir/fig5_model_validation.cpp.o"
  "CMakeFiles/fig5_model_validation.dir/fig5_model_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
