# Empty dependencies file for fig3_transit_power.
# This may be replaced when dependencies are built.
