file(REMOVE_RECURSE
  "../bench/fig3_transit_power"
  "../bench/fig3_transit_power.pdb"
  "CMakeFiles/fig3_transit_power.dir/fig3_transit_power.cpp.o"
  "CMakeFiles/fig3_transit_power.dir/fig3_transit_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_transit_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
