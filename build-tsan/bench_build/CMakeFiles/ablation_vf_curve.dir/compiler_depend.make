# Empty compiler generated dependencies file for ablation_vf_curve.
# This may be replaced when dependencies are built.
