file(REMOVE_RECURSE
  "../bench/ablation_vf_curve"
  "../bench/ablation_vf_curve.pdb"
  "CMakeFiles/ablation_vf_curve.dir/ablation_vf_curve.cpp.o"
  "CMakeFiles/ablation_vf_curve.dir/ablation_vf_curve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vf_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
