file(REMOVE_RECURSE
  "../bench/table4_compression_models"
  "../bench/table4_compression_models.pdb"
  "CMakeFiles/table4_compression_models.dir/table4_compression_models.cpp.o"
  "CMakeFiles/table4_compression_models.dir/table4_compression_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_compression_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
