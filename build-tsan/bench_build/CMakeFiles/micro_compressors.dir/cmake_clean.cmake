file(REMOVE_RECURSE
  "../bench/micro_compressors"
  "../bench/micro_compressors.pdb"
  "CMakeFiles/micro_compressors.dir/micro_compressors.cpp.o"
  "CMakeFiles/micro_compressors.dir/micro_compressors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_compressors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
