file(REMOVE_RECURSE
  "../bench/ablation_uncore"
  "../bench/ablation_uncore.pdb"
  "CMakeFiles/ablation_uncore.dir/ablation_uncore.cpp.o"
  "CMakeFiles/ablation_uncore.dir/ablation_uncore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uncore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
