# Empty compiler generated dependencies file for ablation_uncore.
# This may be replaced when dependencies are built.
