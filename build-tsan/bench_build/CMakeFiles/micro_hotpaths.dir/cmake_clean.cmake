file(REMOVE_RECURSE
  "../bench/micro_hotpaths"
  "../bench/micro_hotpaths.pdb"
  "CMakeFiles/micro_hotpaths.dir/micro_hotpaths.cpp.o"
  "CMakeFiles/micro_hotpaths.dir/micro_hotpaths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hotpaths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
