file(REMOVE_RECURSE
  "../bench/fig1_compression_power"
  "../bench/fig1_compression_power.pdb"
  "CMakeFiles/fig1_compression_power.dir/fig1_compression_power.cpp.o"
  "CMakeFiles/fig1_compression_power.dir/fig1_compression_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_compression_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
