# Empty compiler generated dependencies file for fig1_compression_power.
# This may be replaced when dependencies are built.
