# Empty dependencies file for fig6_data_dumping.
# This may be replaced when dependencies are built.
