file(REMOVE_RECURSE
  "../bench/fig6_data_dumping"
  "../bench/fig6_data_dumping.pdb"
  "CMakeFiles/fig6_data_dumping.dir/fig6_data_dumping.cpp.o"
  "CMakeFiles/fig6_data_dumping.dir/fig6_data_dumping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_data_dumping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
