file(REMOVE_RECURSE
  "CMakeFiles/lcp_bench_common.dir/common.cpp.o"
  "CMakeFiles/lcp_bench_common.dir/common.cpp.o.d"
  "liblcp_bench_common.a"
  "liblcp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
