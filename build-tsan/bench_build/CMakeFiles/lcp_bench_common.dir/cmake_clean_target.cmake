file(REMOVE_RECURSE
  "liblcp_bench_common.a"
)
