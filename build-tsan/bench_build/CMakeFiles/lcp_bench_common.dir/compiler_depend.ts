# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lcp_bench_common.
