# Empty compiler generated dependencies file for lcp_bench_common.
# This may be replaced when dependencies are built.
