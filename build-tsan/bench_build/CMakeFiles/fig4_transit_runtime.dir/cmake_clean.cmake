file(REMOVE_RECURSE
  "../bench/fig4_transit_runtime"
  "../bench/fig4_transit_runtime.pdb"
  "CMakeFiles/fig4_transit_runtime.dir/fig4_transit_runtime.cpp.o"
  "CMakeFiles/fig4_transit_runtime.dir/fig4_transit_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_transit_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
