# Empty compiler generated dependencies file for fig4_transit_runtime.
# This may be replaced when dependencies are built.
