file(REMOVE_RECURSE
  "../bench/table5_transit_models"
  "../bench/table5_transit_models.pdb"
  "CMakeFiles/table5_transit_models.dir/table5_transit_models.cpp.o"
  "CMakeFiles/table5_transit_models.dir/table5_transit_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_transit_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
