# Empty dependencies file for table5_transit_models.
# This may be replaced when dependencies are built.
