file(REMOVE_RECURSE
  "../bench/ablation_optimal_freq"
  "../bench/ablation_optimal_freq.pdb"
  "CMakeFiles/ablation_optimal_freq.dir/ablation_optimal_freq.cpp.o"
  "CMakeFiles/ablation_optimal_freq.dir/ablation_optimal_freq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimal_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
