# Empty compiler generated dependencies file for ablation_optimal_freq.
# This may be replaced when dependencies are built.
