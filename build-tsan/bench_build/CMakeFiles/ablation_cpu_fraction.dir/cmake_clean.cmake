file(REMOVE_RECURSE
  "../bench/ablation_cpu_fraction"
  "../bench/ablation_cpu_fraction.pdb"
  "CMakeFiles/ablation_cpu_fraction.dir/ablation_cpu_fraction.cpp.o"
  "CMakeFiles/ablation_cpu_fraction.dir/ablation_cpu_fraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
