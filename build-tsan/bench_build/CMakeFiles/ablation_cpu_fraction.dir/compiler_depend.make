# Empty compiler generated dependencies file for ablation_cpu_fraction.
# This may be replaced when dependencies are built.
