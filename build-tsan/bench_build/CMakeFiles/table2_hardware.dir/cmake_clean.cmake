file(REMOVE_RECURSE
  "../bench/table2_hardware"
  "../bench/table2_hardware.pdb"
  "CMakeFiles/table2_hardware.dir/table2_hardware.cpp.o"
  "CMakeFiles/table2_hardware.dir/table2_hardware.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
