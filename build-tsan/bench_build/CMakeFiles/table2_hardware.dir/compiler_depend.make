# Empty compiler generated dependencies file for table2_hardware.
# This may be replaced when dependencies are built.
