file(REMOVE_RECURSE
  "../bench/headline_savings"
  "../bench/headline_savings.pdb"
  "CMakeFiles/headline_savings.dir/headline_savings.cpp.o"
  "CMakeFiles/headline_savings.dir/headline_savings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
