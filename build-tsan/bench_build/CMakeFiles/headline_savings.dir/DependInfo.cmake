
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/headline_savings.cpp" "bench_build/CMakeFiles/headline_savings.dir/headline_savings.cpp.o" "gcc" "bench_build/CMakeFiles/headline_savings.dir/headline_savings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/bench_build/CMakeFiles/lcp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/lcp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tuning/CMakeFiles/lcp_tuning.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/lcp_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/lcp_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dvfs/CMakeFiles/lcp_dvfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/power/CMakeFiles/lcp_power.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/compress/CMakeFiles/lcp_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/lcp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
