# Empty compiler generated dependencies file for extension_read_path.
# This may be replaced when dependencies are built.
