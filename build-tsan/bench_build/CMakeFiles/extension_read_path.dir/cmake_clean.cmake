file(REMOVE_RECURSE
  "../bench/extension_read_path"
  "../bench/extension_read_path.pdb"
  "CMakeFiles/extension_read_path.dir/extension_read_path.cpp.o"
  "CMakeFiles/extension_read_path.dir/extension_read_path.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_read_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
