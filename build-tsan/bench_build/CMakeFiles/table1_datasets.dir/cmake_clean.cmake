file(REMOVE_RECURSE
  "../bench/table1_datasets"
  "../bench/table1_datasets.pdb"
  "CMakeFiles/table1_datasets.dir/table1_datasets.cpp.o"
  "CMakeFiles/table1_datasets.dir/table1_datasets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
