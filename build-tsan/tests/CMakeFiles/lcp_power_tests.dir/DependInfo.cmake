
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dvfs/frequency_range_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/dvfs/frequency_range_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/dvfs/frequency_range_test.cpp.o.d"
  "/root/repo/tests/dvfs/governor_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/dvfs/governor_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/dvfs/governor_test.cpp.o.d"
  "/root/repo/tests/io/link_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/io/link_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/io/link_test.cpp.o.d"
  "/root/repo/tests/io/nfs_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/io/nfs_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/io/nfs_test.cpp.o.d"
  "/root/repo/tests/io/transit_model_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/io/transit_model_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/io/transit_model_test.cpp.o.d"
  "/root/repo/tests/power/chip_model_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/power/chip_model_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/power/chip_model_test.cpp.o.d"
  "/root/repo/tests/power/noise_counter_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/power/noise_counter_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/power/noise_counter_test.cpp.o.d"
  "/root/repo/tests/power/perf_sampler_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/power/perf_sampler_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/power/perf_sampler_test.cpp.o.d"
  "/root/repo/tests/power/rapl_reader_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/power/rapl_reader_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/power/rapl_reader_test.cpp.o.d"
  "/root/repo/tests/power/uncore_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/power/uncore_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/power/uncore_test.cpp.o.d"
  "/root/repo/tests/power/voltage_curve_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/power/voltage_curve_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/power/voltage_curve_test.cpp.o.d"
  "/root/repo/tests/power/workload_test.cpp" "tests/CMakeFiles/lcp_power_tests.dir/power/workload_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_power_tests.dir/power/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/lcp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tuning/CMakeFiles/lcp_tuning.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/lcp_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/lcp_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dvfs/CMakeFiles/lcp_dvfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/power/CMakeFiles/lcp_power.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/compress/CMakeFiles/lcp_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/lcp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
