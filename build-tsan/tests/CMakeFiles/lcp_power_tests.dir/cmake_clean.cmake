file(REMOVE_RECURSE
  "CMakeFiles/lcp_power_tests.dir/dvfs/frequency_range_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/dvfs/frequency_range_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/dvfs/governor_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/dvfs/governor_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/io/link_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/io/link_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/io/nfs_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/io/nfs_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/io/transit_model_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/io/transit_model_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/power/chip_model_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/power/chip_model_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/power/noise_counter_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/power/noise_counter_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/power/perf_sampler_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/power/perf_sampler_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/power/rapl_reader_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/power/rapl_reader_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/power/uncore_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/power/uncore_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/power/voltage_curve_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/power/voltage_curve_test.cpp.o.d"
  "CMakeFiles/lcp_power_tests.dir/power/workload_test.cpp.o"
  "CMakeFiles/lcp_power_tests.dir/power/workload_test.cpp.o.d"
  "lcp_power_tests"
  "lcp_power_tests.pdb"
  "lcp_power_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_power_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
