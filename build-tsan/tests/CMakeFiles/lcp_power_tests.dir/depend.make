# Empty dependencies file for lcp_power_tests.
# This may be replaced when dependencies are built.
