
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/compression_study_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/compression_study_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/compression_study_test.cpp.o.d"
  "/root/repo/tests/core/dump_experiment_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/dump_experiment_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/dump_experiment_test.cpp.o.d"
  "/root/repo/tests/core/fetch_experiment_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/fetch_experiment_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/fetch_experiment_test.cpp.o.d"
  "/root/repo/tests/core/integration_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/integration_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/integration_test.cpp.o.d"
  "/root/repo/tests/core/model_tables_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/model_tables_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/model_tables_test.cpp.o.d"
  "/root/repo/tests/core/platform_properties_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/platform_properties_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/platform_properties_test.cpp.o.d"
  "/root/repo/tests/core/platform_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/platform_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/platform_test.cpp.o.d"
  "/root/repo/tests/core/study_export_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/study_export_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/study_export_test.cpp.o.d"
  "/root/repo/tests/core/sweep_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/sweep_test.cpp.o.d"
  "/root/repo/tests/core/transit_study_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/transit_study_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/transit_study_test.cpp.o.d"
  "/root/repo/tests/core/validation_study_test.cpp" "tests/CMakeFiles/lcp_core_tests.dir/core/validation_study_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_core_tests.dir/core/validation_study_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/lcp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tuning/CMakeFiles/lcp_tuning.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/lcp_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/lcp_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dvfs/CMakeFiles/lcp_dvfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/power/CMakeFiles/lcp_power.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/compress/CMakeFiles/lcp_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/lcp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
