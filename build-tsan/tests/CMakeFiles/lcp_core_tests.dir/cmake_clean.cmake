file(REMOVE_RECURSE
  "CMakeFiles/lcp_core_tests.dir/core/compression_study_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/compression_study_test.cpp.o.d"
  "CMakeFiles/lcp_core_tests.dir/core/dump_experiment_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/dump_experiment_test.cpp.o.d"
  "CMakeFiles/lcp_core_tests.dir/core/fetch_experiment_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/fetch_experiment_test.cpp.o.d"
  "CMakeFiles/lcp_core_tests.dir/core/integration_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/integration_test.cpp.o.d"
  "CMakeFiles/lcp_core_tests.dir/core/model_tables_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/model_tables_test.cpp.o.d"
  "CMakeFiles/lcp_core_tests.dir/core/platform_properties_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/platform_properties_test.cpp.o.d"
  "CMakeFiles/lcp_core_tests.dir/core/platform_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/platform_test.cpp.o.d"
  "CMakeFiles/lcp_core_tests.dir/core/study_export_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/study_export_test.cpp.o.d"
  "CMakeFiles/lcp_core_tests.dir/core/sweep_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/sweep_test.cpp.o.d"
  "CMakeFiles/lcp_core_tests.dir/core/transit_study_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/transit_study_test.cpp.o.d"
  "CMakeFiles/lcp_core_tests.dir/core/validation_study_test.cpp.o"
  "CMakeFiles/lcp_core_tests.dir/core/validation_study_test.cpp.o.d"
  "lcp_core_tests"
  "lcp_core_tests.pdb"
  "lcp_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
