# Empty dependencies file for lcp_core_tests.
# This may be replaced when dependencies are built.
