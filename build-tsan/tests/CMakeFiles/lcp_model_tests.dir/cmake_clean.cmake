file(REMOVE_RECURSE
  "CMakeFiles/lcp_model_tests.dir/model/confidence_test.cpp.o"
  "CMakeFiles/lcp_model_tests.dir/model/confidence_test.cpp.o.d"
  "CMakeFiles/lcp_model_tests.dir/model/fit_stats_test.cpp.o"
  "CMakeFiles/lcp_model_tests.dir/model/fit_stats_test.cpp.o.d"
  "CMakeFiles/lcp_model_tests.dir/model/levenberg_marquardt_test.cpp.o"
  "CMakeFiles/lcp_model_tests.dir/model/levenberg_marquardt_test.cpp.o.d"
  "CMakeFiles/lcp_model_tests.dir/model/partitions_test.cpp.o"
  "CMakeFiles/lcp_model_tests.dir/model/partitions_test.cpp.o.d"
  "CMakeFiles/lcp_model_tests.dir/model/power_law_test.cpp.o"
  "CMakeFiles/lcp_model_tests.dir/model/power_law_test.cpp.o.d"
  "CMakeFiles/lcp_model_tests.dir/tuning/io_plan_test.cpp.o"
  "CMakeFiles/lcp_model_tests.dir/tuning/io_plan_test.cpp.o.d"
  "CMakeFiles/lcp_model_tests.dir/tuning/optimizer_test.cpp.o"
  "CMakeFiles/lcp_model_tests.dir/tuning/optimizer_test.cpp.o.d"
  "CMakeFiles/lcp_model_tests.dir/tuning/rule_test.cpp.o"
  "CMakeFiles/lcp_model_tests.dir/tuning/rule_test.cpp.o.d"
  "CMakeFiles/lcp_model_tests.dir/tuning/scheduler_test.cpp.o"
  "CMakeFiles/lcp_model_tests.dir/tuning/scheduler_test.cpp.o.d"
  "lcp_model_tests"
  "lcp_model_tests.pdb"
  "lcp_model_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_model_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
