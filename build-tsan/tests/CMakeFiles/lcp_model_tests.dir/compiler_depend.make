# Empty compiler generated dependencies file for lcp_model_tests.
# This may be replaced when dependencies are built.
