# Empty compiler generated dependencies file for lcp_data_tests.
# This may be replaced when dependencies are built.
