file(REMOVE_RECURSE
  "CMakeFiles/lcp_data_tests.dir/data/field_test.cpp.o"
  "CMakeFiles/lcp_data_tests.dir/data/field_test.cpp.o.d"
  "CMakeFiles/lcp_data_tests.dir/data/generators_test.cpp.o"
  "CMakeFiles/lcp_data_tests.dir/data/generators_test.cpp.o.d"
  "CMakeFiles/lcp_data_tests.dir/data/noise_test.cpp.o"
  "CMakeFiles/lcp_data_tests.dir/data/noise_test.cpp.o.d"
  "CMakeFiles/lcp_data_tests.dir/data/registry_test.cpp.o"
  "CMakeFiles/lcp_data_tests.dir/data/registry_test.cpp.o.d"
  "lcp_data_tests"
  "lcp_data_tests.pdb"
  "lcp_data_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_data_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
