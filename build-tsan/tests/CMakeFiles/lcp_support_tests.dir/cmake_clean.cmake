file(REMOVE_RECURSE
  "CMakeFiles/lcp_support_tests.dir/support/ascii_plot_test.cpp.o"
  "CMakeFiles/lcp_support_tests.dir/support/ascii_plot_test.cpp.o.d"
  "CMakeFiles/lcp_support_tests.dir/support/bitstream_test.cpp.o"
  "CMakeFiles/lcp_support_tests.dir/support/bitstream_test.cpp.o.d"
  "CMakeFiles/lcp_support_tests.dir/support/bytestream_test.cpp.o"
  "CMakeFiles/lcp_support_tests.dir/support/bytestream_test.cpp.o.d"
  "CMakeFiles/lcp_support_tests.dir/support/rng_test.cpp.o"
  "CMakeFiles/lcp_support_tests.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/lcp_support_tests.dir/support/stats_test.cpp.o"
  "CMakeFiles/lcp_support_tests.dir/support/stats_test.cpp.o.d"
  "CMakeFiles/lcp_support_tests.dir/support/status_test.cpp.o"
  "CMakeFiles/lcp_support_tests.dir/support/status_test.cpp.o.d"
  "CMakeFiles/lcp_support_tests.dir/support/table_csv_test.cpp.o"
  "CMakeFiles/lcp_support_tests.dir/support/table_csv_test.cpp.o.d"
  "CMakeFiles/lcp_support_tests.dir/support/thread_pool_test.cpp.o"
  "CMakeFiles/lcp_support_tests.dir/support/thread_pool_test.cpp.o.d"
  "CMakeFiles/lcp_support_tests.dir/support/units_test.cpp.o"
  "CMakeFiles/lcp_support_tests.dir/support/units_test.cpp.o.d"
  "lcp_support_tests"
  "lcp_support_tests.pdb"
  "lcp_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
