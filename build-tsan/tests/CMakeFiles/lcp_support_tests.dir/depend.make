# Empty dependencies file for lcp_support_tests.
# This may be replaced when dependencies are built.
