# Empty dependencies file for lcp_compress_tests.
# This may be replaced when dependencies are built.
