
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compress/codec_options_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/codec_options_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/codec_options_test.cpp.o.d"
  "/root/repo/tests/compress/codec_property_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/codec_property_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/codec_property_test.cpp.o.d"
  "/root/repo/tests/compress/container_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/container_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/container_test.cpp.o.d"
  "/root/repo/tests/compress/fuzz_robustness_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/fuzz_robustness_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/fuzz_robustness_test.cpp.o.d"
  "/root/repo/tests/compress/huffman_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/huffman_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/huffman_test.cpp.o.d"
  "/root/repo/tests/compress/lorenzo_quantizer_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/lorenzo_quantizer_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/lorenzo_quantizer_test.cpp.o.d"
  "/root/repo/tests/compress/lossless_codec_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/lossless_codec_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/lossless_codec_test.cpp.o.d"
  "/root/repo/tests/compress/parallel_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/parallel_test.cpp.o.d"
  "/root/repo/tests/compress/sz_compressor_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/sz_compressor_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/sz_compressor_test.cpp.o.d"
  "/root/repo/tests/compress/sz_predictor_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/sz_predictor_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/sz_predictor_test.cpp.o.d"
  "/root/repo/tests/compress/sz_relative_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/sz_relative_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/sz_relative_test.cpp.o.d"
  "/root/repo/tests/compress/zfp_block_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zfp_block_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zfp_block_test.cpp.o.d"
  "/root/repo/tests/compress/zfp_coder_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zfp_coder_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zfp_coder_test.cpp.o.d"
  "/root/repo/tests/compress/zfp_compressor_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zfp_compressor_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zfp_compressor_test.cpp.o.d"
  "/root/repo/tests/compress/zfp_fixed_rate_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zfp_fixed_rate_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zfp_fixed_rate_test.cpp.o.d"
  "/root/repo/tests/compress/zfp_transform_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zfp_transform_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zfp_transform_test.cpp.o.d"
  "/root/repo/tests/compress/zlite_test.cpp" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zlite_test.cpp.o" "gcc" "tests/CMakeFiles/lcp_compress_tests.dir/compress/zlite_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/lcp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tuning/CMakeFiles/lcp_tuning.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/lcp_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/lcp_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dvfs/CMakeFiles/lcp_dvfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/power/CMakeFiles/lcp_power.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/compress/CMakeFiles/lcp_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/lcp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
