file(REMOVE_RECURSE
  "liblcp_support.a"
)
