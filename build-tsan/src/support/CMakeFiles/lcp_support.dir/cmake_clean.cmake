file(REMOVE_RECURSE
  "CMakeFiles/lcp_support.dir/ascii_plot.cpp.o"
  "CMakeFiles/lcp_support.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/lcp_support.dir/bitstream.cpp.o"
  "CMakeFiles/lcp_support.dir/bitstream.cpp.o.d"
  "CMakeFiles/lcp_support.dir/bytestream.cpp.o"
  "CMakeFiles/lcp_support.dir/bytestream.cpp.o.d"
  "CMakeFiles/lcp_support.dir/csv.cpp.o"
  "CMakeFiles/lcp_support.dir/csv.cpp.o.d"
  "CMakeFiles/lcp_support.dir/log.cpp.o"
  "CMakeFiles/lcp_support.dir/log.cpp.o.d"
  "CMakeFiles/lcp_support.dir/rng.cpp.o"
  "CMakeFiles/lcp_support.dir/rng.cpp.o.d"
  "CMakeFiles/lcp_support.dir/stats.cpp.o"
  "CMakeFiles/lcp_support.dir/stats.cpp.o.d"
  "CMakeFiles/lcp_support.dir/status.cpp.o"
  "CMakeFiles/lcp_support.dir/status.cpp.o.d"
  "CMakeFiles/lcp_support.dir/table.cpp.o"
  "CMakeFiles/lcp_support.dir/table.cpp.o.d"
  "CMakeFiles/lcp_support.dir/thread_pool.cpp.o"
  "CMakeFiles/lcp_support.dir/thread_pool.cpp.o.d"
  "CMakeFiles/lcp_support.dir/timer.cpp.o"
  "CMakeFiles/lcp_support.dir/timer.cpp.o.d"
  "liblcp_support.a"
  "liblcp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
