# Empty dependencies file for lcp_support.
# This may be replaced when dependencies are built.
