
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/ascii_plot.cpp" "src/support/CMakeFiles/lcp_support.dir/ascii_plot.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/ascii_plot.cpp.o.d"
  "/root/repo/src/support/bitstream.cpp" "src/support/CMakeFiles/lcp_support.dir/bitstream.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/bitstream.cpp.o.d"
  "/root/repo/src/support/bytestream.cpp" "src/support/CMakeFiles/lcp_support.dir/bytestream.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/bytestream.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/support/CMakeFiles/lcp_support.dir/csv.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/csv.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/support/CMakeFiles/lcp_support.dir/log.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/log.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/support/CMakeFiles/lcp_support.dir/rng.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/support/CMakeFiles/lcp_support.dir/stats.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/stats.cpp.o.d"
  "/root/repo/src/support/status.cpp" "src/support/CMakeFiles/lcp_support.dir/status.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/status.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/support/CMakeFiles/lcp_support.dir/table.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/support/CMakeFiles/lcp_support.dir/thread_pool.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/thread_pool.cpp.o.d"
  "/root/repo/src/support/timer.cpp" "src/support/CMakeFiles/lcp_support.dir/timer.cpp.o" "gcc" "src/support/CMakeFiles/lcp_support.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
