# Empty dependencies file for lcp_power.
# This may be replaced when dependencies are built.
