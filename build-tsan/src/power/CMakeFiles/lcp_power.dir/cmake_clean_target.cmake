file(REMOVE_RECURSE
  "liblcp_power.a"
)
