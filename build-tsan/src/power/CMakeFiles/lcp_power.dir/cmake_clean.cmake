file(REMOVE_RECURSE
  "CMakeFiles/lcp_power.dir/chip_model.cpp.o"
  "CMakeFiles/lcp_power.dir/chip_model.cpp.o.d"
  "CMakeFiles/lcp_power.dir/energy_counter.cpp.o"
  "CMakeFiles/lcp_power.dir/energy_counter.cpp.o.d"
  "CMakeFiles/lcp_power.dir/noise_model.cpp.o"
  "CMakeFiles/lcp_power.dir/noise_model.cpp.o.d"
  "CMakeFiles/lcp_power.dir/perf_sampler.cpp.o"
  "CMakeFiles/lcp_power.dir/perf_sampler.cpp.o.d"
  "CMakeFiles/lcp_power.dir/rapl_reader.cpp.o"
  "CMakeFiles/lcp_power.dir/rapl_reader.cpp.o.d"
  "CMakeFiles/lcp_power.dir/uncore.cpp.o"
  "CMakeFiles/lcp_power.dir/uncore.cpp.o.d"
  "CMakeFiles/lcp_power.dir/voltage_curve.cpp.o"
  "CMakeFiles/lcp_power.dir/voltage_curve.cpp.o.d"
  "CMakeFiles/lcp_power.dir/workload.cpp.o"
  "CMakeFiles/lcp_power.dir/workload.cpp.o.d"
  "liblcp_power.a"
  "liblcp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
