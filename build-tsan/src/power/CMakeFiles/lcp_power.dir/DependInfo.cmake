
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/chip_model.cpp" "src/power/CMakeFiles/lcp_power.dir/chip_model.cpp.o" "gcc" "src/power/CMakeFiles/lcp_power.dir/chip_model.cpp.o.d"
  "/root/repo/src/power/energy_counter.cpp" "src/power/CMakeFiles/lcp_power.dir/energy_counter.cpp.o" "gcc" "src/power/CMakeFiles/lcp_power.dir/energy_counter.cpp.o.d"
  "/root/repo/src/power/noise_model.cpp" "src/power/CMakeFiles/lcp_power.dir/noise_model.cpp.o" "gcc" "src/power/CMakeFiles/lcp_power.dir/noise_model.cpp.o.d"
  "/root/repo/src/power/perf_sampler.cpp" "src/power/CMakeFiles/lcp_power.dir/perf_sampler.cpp.o" "gcc" "src/power/CMakeFiles/lcp_power.dir/perf_sampler.cpp.o.d"
  "/root/repo/src/power/rapl_reader.cpp" "src/power/CMakeFiles/lcp_power.dir/rapl_reader.cpp.o" "gcc" "src/power/CMakeFiles/lcp_power.dir/rapl_reader.cpp.o.d"
  "/root/repo/src/power/uncore.cpp" "src/power/CMakeFiles/lcp_power.dir/uncore.cpp.o" "gcc" "src/power/CMakeFiles/lcp_power.dir/uncore.cpp.o.d"
  "/root/repo/src/power/voltage_curve.cpp" "src/power/CMakeFiles/lcp_power.dir/voltage_curve.cpp.o" "gcc" "src/power/CMakeFiles/lcp_power.dir/voltage_curve.cpp.o.d"
  "/root/repo/src/power/workload.cpp" "src/power/CMakeFiles/lcp_power.dir/workload.cpp.o" "gcc" "src/power/CMakeFiles/lcp_power.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
