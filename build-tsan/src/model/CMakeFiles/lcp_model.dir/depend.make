# Empty dependencies file for lcp_model.
# This may be replaced when dependencies are built.
