
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/confidence.cpp" "src/model/CMakeFiles/lcp_model.dir/confidence.cpp.o" "gcc" "src/model/CMakeFiles/lcp_model.dir/confidence.cpp.o.d"
  "/root/repo/src/model/fit_stats.cpp" "src/model/CMakeFiles/lcp_model.dir/fit_stats.cpp.o" "gcc" "src/model/CMakeFiles/lcp_model.dir/fit_stats.cpp.o.d"
  "/root/repo/src/model/levenberg_marquardt.cpp" "src/model/CMakeFiles/lcp_model.dir/levenberg_marquardt.cpp.o" "gcc" "src/model/CMakeFiles/lcp_model.dir/levenberg_marquardt.cpp.o.d"
  "/root/repo/src/model/partitions.cpp" "src/model/CMakeFiles/lcp_model.dir/partitions.cpp.o" "gcc" "src/model/CMakeFiles/lcp_model.dir/partitions.cpp.o.d"
  "/root/repo/src/model/power_law.cpp" "src/model/CMakeFiles/lcp_model.dir/power_law.cpp.o" "gcc" "src/model/CMakeFiles/lcp_model.dir/power_law.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/power/CMakeFiles/lcp_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
