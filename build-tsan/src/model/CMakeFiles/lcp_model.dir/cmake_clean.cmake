file(REMOVE_RECURSE
  "CMakeFiles/lcp_model.dir/confidence.cpp.o"
  "CMakeFiles/lcp_model.dir/confidence.cpp.o.d"
  "CMakeFiles/lcp_model.dir/fit_stats.cpp.o"
  "CMakeFiles/lcp_model.dir/fit_stats.cpp.o.d"
  "CMakeFiles/lcp_model.dir/levenberg_marquardt.cpp.o"
  "CMakeFiles/lcp_model.dir/levenberg_marquardt.cpp.o.d"
  "CMakeFiles/lcp_model.dir/partitions.cpp.o"
  "CMakeFiles/lcp_model.dir/partitions.cpp.o.d"
  "CMakeFiles/lcp_model.dir/power_law.cpp.o"
  "CMakeFiles/lcp_model.dir/power_law.cpp.o.d"
  "liblcp_model.a"
  "liblcp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
