file(REMOVE_RECURSE
  "liblcp_model.a"
)
