
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/common/codec.cpp" "src/compress/CMakeFiles/lcp_compress.dir/common/codec.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/common/codec.cpp.o.d"
  "/root/repo/src/compress/common/container.cpp" "src/compress/CMakeFiles/lcp_compress.dir/common/container.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/common/container.cpp.o.d"
  "/root/repo/src/compress/common/metrics.cpp" "src/compress/CMakeFiles/lcp_compress.dir/common/metrics.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/common/metrics.cpp.o.d"
  "/root/repo/src/compress/common/parallel.cpp" "src/compress/CMakeFiles/lcp_compress.dir/common/parallel.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/common/parallel.cpp.o.d"
  "/root/repo/src/compress/common/registry.cpp" "src/compress/CMakeFiles/lcp_compress.dir/common/registry.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/common/registry.cpp.o.d"
  "/root/repo/src/compress/lossless/shuffle_codec.cpp" "src/compress/CMakeFiles/lcp_compress.dir/lossless/shuffle_codec.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/lossless/shuffle_codec.cpp.o.d"
  "/root/repo/src/compress/sz/huffman.cpp" "src/compress/CMakeFiles/lcp_compress.dir/sz/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/sz/huffman.cpp.o.d"
  "/root/repo/src/compress/sz/lorenzo.cpp" "src/compress/CMakeFiles/lcp_compress.dir/sz/lorenzo.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/sz/lorenzo.cpp.o.d"
  "/root/repo/src/compress/sz/pipeline.cpp" "src/compress/CMakeFiles/lcp_compress.dir/sz/pipeline.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/sz/pipeline.cpp.o.d"
  "/root/repo/src/compress/sz/quantizer.cpp" "src/compress/CMakeFiles/lcp_compress.dir/sz/quantizer.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/sz/quantizer.cpp.o.d"
  "/root/repo/src/compress/sz/sz_compressor.cpp" "src/compress/CMakeFiles/lcp_compress.dir/sz/sz_compressor.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/sz/sz_compressor.cpp.o.d"
  "/root/repo/src/compress/sz/zlite.cpp" "src/compress/CMakeFiles/lcp_compress.dir/sz/zlite.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/sz/zlite.cpp.o.d"
  "/root/repo/src/compress/zfp/block.cpp" "src/compress/CMakeFiles/lcp_compress.dir/zfp/block.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/zfp/block.cpp.o.d"
  "/root/repo/src/compress/zfp/embedded_coder.cpp" "src/compress/CMakeFiles/lcp_compress.dir/zfp/embedded_coder.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/zfp/embedded_coder.cpp.o.d"
  "/root/repo/src/compress/zfp/negabinary.cpp" "src/compress/CMakeFiles/lcp_compress.dir/zfp/negabinary.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/zfp/negabinary.cpp.o.d"
  "/root/repo/src/compress/zfp/transform.cpp" "src/compress/CMakeFiles/lcp_compress.dir/zfp/transform.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/zfp/transform.cpp.o.d"
  "/root/repo/src/compress/zfp/zfp_compressor.cpp" "src/compress/CMakeFiles/lcp_compress.dir/zfp/zfp_compressor.cpp.o" "gcc" "src/compress/CMakeFiles/lcp_compress.dir/zfp/zfp_compressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/lcp_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
