# Empty dependencies file for lcp_compress.
# This may be replaced when dependencies are built.
