file(REMOVE_RECURSE
  "liblcp_compress.a"
)
