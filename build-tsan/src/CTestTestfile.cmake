# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("data")
subdirs("compress")
subdirs("power")
subdirs("dvfs")
subdirs("io")
subdirs("model")
subdirs("tuning")
subdirs("core")
