
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/link.cpp" "src/io/CMakeFiles/lcp_io.dir/link.cpp.o" "gcc" "src/io/CMakeFiles/lcp_io.dir/link.cpp.o.d"
  "/root/repo/src/io/nfs_client.cpp" "src/io/CMakeFiles/lcp_io.dir/nfs_client.cpp.o" "gcc" "src/io/CMakeFiles/lcp_io.dir/nfs_client.cpp.o.d"
  "/root/repo/src/io/nfs_server.cpp" "src/io/CMakeFiles/lcp_io.dir/nfs_server.cpp.o" "gcc" "src/io/CMakeFiles/lcp_io.dir/nfs_server.cpp.o.d"
  "/root/repo/src/io/transit_model.cpp" "src/io/CMakeFiles/lcp_io.dir/transit_model.cpp.o" "gcc" "src/io/CMakeFiles/lcp_io.dir/transit_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/power/CMakeFiles/lcp_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
