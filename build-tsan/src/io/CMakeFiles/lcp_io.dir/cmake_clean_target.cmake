file(REMOVE_RECURSE
  "liblcp_io.a"
)
