file(REMOVE_RECURSE
  "CMakeFiles/lcp_io.dir/link.cpp.o"
  "CMakeFiles/lcp_io.dir/link.cpp.o.d"
  "CMakeFiles/lcp_io.dir/nfs_client.cpp.o"
  "CMakeFiles/lcp_io.dir/nfs_client.cpp.o.d"
  "CMakeFiles/lcp_io.dir/nfs_server.cpp.o"
  "CMakeFiles/lcp_io.dir/nfs_server.cpp.o.d"
  "CMakeFiles/lcp_io.dir/transit_model.cpp.o"
  "CMakeFiles/lcp_io.dir/transit_model.cpp.o.d"
  "liblcp_io.a"
  "liblcp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
