# Empty dependencies file for lcp_io.
# This may be replaced when dependencies are built.
