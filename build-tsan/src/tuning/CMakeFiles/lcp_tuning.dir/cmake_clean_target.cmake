file(REMOVE_RECURSE
  "liblcp_tuning.a"
)
