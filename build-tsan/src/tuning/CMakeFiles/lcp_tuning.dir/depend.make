# Empty dependencies file for lcp_tuning.
# This may be replaced when dependencies are built.
