file(REMOVE_RECURSE
  "CMakeFiles/lcp_tuning.dir/io_plan.cpp.o"
  "CMakeFiles/lcp_tuning.dir/io_plan.cpp.o.d"
  "CMakeFiles/lcp_tuning.dir/optimizer.cpp.o"
  "CMakeFiles/lcp_tuning.dir/optimizer.cpp.o.d"
  "CMakeFiles/lcp_tuning.dir/rule.cpp.o"
  "CMakeFiles/lcp_tuning.dir/rule.cpp.o.d"
  "CMakeFiles/lcp_tuning.dir/scheduler.cpp.o"
  "CMakeFiles/lcp_tuning.dir/scheduler.cpp.o.d"
  "liblcp_tuning.a"
  "liblcp_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
