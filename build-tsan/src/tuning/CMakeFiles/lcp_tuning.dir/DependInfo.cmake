
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuning/io_plan.cpp" "src/tuning/CMakeFiles/lcp_tuning.dir/io_plan.cpp.o" "gcc" "src/tuning/CMakeFiles/lcp_tuning.dir/io_plan.cpp.o.d"
  "/root/repo/src/tuning/optimizer.cpp" "src/tuning/CMakeFiles/lcp_tuning.dir/optimizer.cpp.o" "gcc" "src/tuning/CMakeFiles/lcp_tuning.dir/optimizer.cpp.o.d"
  "/root/repo/src/tuning/rule.cpp" "src/tuning/CMakeFiles/lcp_tuning.dir/rule.cpp.o" "gcc" "src/tuning/CMakeFiles/lcp_tuning.dir/rule.cpp.o.d"
  "/root/repo/src/tuning/scheduler.cpp" "src/tuning/CMakeFiles/lcp_tuning.dir/scheduler.cpp.o" "gcc" "src/tuning/CMakeFiles/lcp_tuning.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/power/CMakeFiles/lcp_power.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dvfs/CMakeFiles/lcp_dvfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/lcp_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
