file(REMOVE_RECURSE
  "liblcp_data.a"
)
