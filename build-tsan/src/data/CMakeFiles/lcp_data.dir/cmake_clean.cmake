file(REMOVE_RECURSE
  "CMakeFiles/lcp_data.dir/field.cpp.o"
  "CMakeFiles/lcp_data.dir/field.cpp.o.d"
  "CMakeFiles/lcp_data.dir/generators.cpp.o"
  "CMakeFiles/lcp_data.dir/generators.cpp.o.d"
  "CMakeFiles/lcp_data.dir/noise.cpp.o"
  "CMakeFiles/lcp_data.dir/noise.cpp.o.d"
  "CMakeFiles/lcp_data.dir/registry.cpp.o"
  "CMakeFiles/lcp_data.dir/registry.cpp.o.d"
  "liblcp_data.a"
  "liblcp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
