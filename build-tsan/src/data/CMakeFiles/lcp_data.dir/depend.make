# Empty dependencies file for lcp_data.
# This may be replaced when dependencies are built.
