
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/field.cpp" "src/data/CMakeFiles/lcp_data.dir/field.cpp.o" "gcc" "src/data/CMakeFiles/lcp_data.dir/field.cpp.o.d"
  "/root/repo/src/data/generators.cpp" "src/data/CMakeFiles/lcp_data.dir/generators.cpp.o" "gcc" "src/data/CMakeFiles/lcp_data.dir/generators.cpp.o.d"
  "/root/repo/src/data/noise.cpp" "src/data/CMakeFiles/lcp_data.dir/noise.cpp.o" "gcc" "src/data/CMakeFiles/lcp_data.dir/noise.cpp.o.d"
  "/root/repo/src/data/registry.cpp" "src/data/CMakeFiles/lcp_data.dir/registry.cpp.o" "gcc" "src/data/CMakeFiles/lcp_data.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
