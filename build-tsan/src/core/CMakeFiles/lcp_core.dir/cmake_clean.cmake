file(REMOVE_RECURSE
  "CMakeFiles/lcp_core.dir/compression_study.cpp.o"
  "CMakeFiles/lcp_core.dir/compression_study.cpp.o.d"
  "CMakeFiles/lcp_core.dir/dump_experiment.cpp.o"
  "CMakeFiles/lcp_core.dir/dump_experiment.cpp.o.d"
  "CMakeFiles/lcp_core.dir/fetch_experiment.cpp.o"
  "CMakeFiles/lcp_core.dir/fetch_experiment.cpp.o.d"
  "CMakeFiles/lcp_core.dir/model_tables.cpp.o"
  "CMakeFiles/lcp_core.dir/model_tables.cpp.o.d"
  "CMakeFiles/lcp_core.dir/platform.cpp.o"
  "CMakeFiles/lcp_core.dir/platform.cpp.o.d"
  "CMakeFiles/lcp_core.dir/study_export.cpp.o"
  "CMakeFiles/lcp_core.dir/study_export.cpp.o.d"
  "CMakeFiles/lcp_core.dir/sweep.cpp.o"
  "CMakeFiles/lcp_core.dir/sweep.cpp.o.d"
  "CMakeFiles/lcp_core.dir/transit_study.cpp.o"
  "CMakeFiles/lcp_core.dir/transit_study.cpp.o.d"
  "CMakeFiles/lcp_core.dir/validation_study.cpp.o"
  "CMakeFiles/lcp_core.dir/validation_study.cpp.o.d"
  "liblcp_core.a"
  "liblcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
