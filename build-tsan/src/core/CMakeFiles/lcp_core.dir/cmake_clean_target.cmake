file(REMOVE_RECURSE
  "liblcp_core.a"
)
