# Empty dependencies file for lcp_core.
# This may be replaced when dependencies are built.
