
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compression_study.cpp" "src/core/CMakeFiles/lcp_core.dir/compression_study.cpp.o" "gcc" "src/core/CMakeFiles/lcp_core.dir/compression_study.cpp.o.d"
  "/root/repo/src/core/dump_experiment.cpp" "src/core/CMakeFiles/lcp_core.dir/dump_experiment.cpp.o" "gcc" "src/core/CMakeFiles/lcp_core.dir/dump_experiment.cpp.o.d"
  "/root/repo/src/core/fetch_experiment.cpp" "src/core/CMakeFiles/lcp_core.dir/fetch_experiment.cpp.o" "gcc" "src/core/CMakeFiles/lcp_core.dir/fetch_experiment.cpp.o.d"
  "/root/repo/src/core/model_tables.cpp" "src/core/CMakeFiles/lcp_core.dir/model_tables.cpp.o" "gcc" "src/core/CMakeFiles/lcp_core.dir/model_tables.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/core/CMakeFiles/lcp_core.dir/platform.cpp.o" "gcc" "src/core/CMakeFiles/lcp_core.dir/platform.cpp.o.d"
  "/root/repo/src/core/study_export.cpp" "src/core/CMakeFiles/lcp_core.dir/study_export.cpp.o" "gcc" "src/core/CMakeFiles/lcp_core.dir/study_export.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/lcp_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/lcp_core.dir/sweep.cpp.o.d"
  "/root/repo/src/core/transit_study.cpp" "src/core/CMakeFiles/lcp_core.dir/transit_study.cpp.o" "gcc" "src/core/CMakeFiles/lcp_core.dir/transit_study.cpp.o.d"
  "/root/repo/src/core/validation_study.cpp" "src/core/CMakeFiles/lcp_core.dir/validation_study.cpp.o" "gcc" "src/core/CMakeFiles/lcp_core.dir/validation_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/lcp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/compress/CMakeFiles/lcp_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/power/CMakeFiles/lcp_power.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dvfs/CMakeFiles/lcp_dvfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/lcp_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/lcp_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tuning/CMakeFiles/lcp_tuning.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
