file(REMOVE_RECURSE
  "CMakeFiles/lcp_dvfs.dir/frequency_range.cpp.o"
  "CMakeFiles/lcp_dvfs.dir/frequency_range.cpp.o.d"
  "CMakeFiles/lcp_dvfs.dir/governor.cpp.o"
  "CMakeFiles/lcp_dvfs.dir/governor.cpp.o.d"
  "liblcp_dvfs.a"
  "liblcp_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
