# Empty dependencies file for lcp_dvfs.
# This may be replaced when dependencies are built.
