
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvfs/frequency_range.cpp" "src/dvfs/CMakeFiles/lcp_dvfs.dir/frequency_range.cpp.o" "gcc" "src/dvfs/CMakeFiles/lcp_dvfs.dir/frequency_range.cpp.o.d"
  "/root/repo/src/dvfs/governor.cpp" "src/dvfs/CMakeFiles/lcp_dvfs.dir/governor.cpp.o" "gcc" "src/dvfs/CMakeFiles/lcp_dvfs.dir/governor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/lcp_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/power/CMakeFiles/lcp_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
