file(REMOVE_RECURSE
  "liblcp_dvfs.a"
)
