# Empty compiler generated dependencies file for lcpower_cli.
# This may be replaced when dependencies are built.
