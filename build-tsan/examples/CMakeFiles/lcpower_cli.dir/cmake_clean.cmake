file(REMOVE_RECURSE
  "CMakeFiles/lcpower_cli.dir/lcpower_cli.cpp.o"
  "CMakeFiles/lcpower_cli.dir/lcpower_cli.cpp.o.d"
  "lcpower_cli"
  "lcpower_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcpower_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
