# Empty compiler generated dependencies file for power_budget_advisor.
# This may be replaced when dependencies are built.
