file(REMOVE_RECURSE
  "CMakeFiles/power_budget_advisor.dir/power_budget_advisor.cpp.o"
  "CMakeFiles/power_budget_advisor.dir/power_budget_advisor.cpp.o.d"
  "power_budget_advisor"
  "power_budget_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_budget_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
