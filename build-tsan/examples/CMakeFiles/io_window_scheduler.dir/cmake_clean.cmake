file(REMOVE_RECURSE
  "CMakeFiles/io_window_scheduler.dir/io_window_scheduler.cpp.o"
  "CMakeFiles/io_window_scheduler.dir/io_window_scheduler.cpp.o.d"
  "io_window_scheduler"
  "io_window_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_window_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
