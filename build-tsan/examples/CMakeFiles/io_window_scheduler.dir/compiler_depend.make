# Empty compiler generated dependencies file for io_window_scheduler.
# This may be replaced when dependencies are built.
