#pragma once
// NFS client: chunked RPC writes to an NfsServer. Moves real bytes (so
// integrity is testable end-to-end) and reports the modeled wall time of
// the transfer at a given CPU frequency via the transit model.

#include <string>

#include "io/link.hpp"
#include "io/nfs_server.hpp"
#include "support/status.hpp"

namespace lcp::io {

/// Client-side configuration.
struct NfsClientConfig {
  LinkSpec link;
  std::size_t rpc_chunk_bytes = 1 << 20;  ///< 1 MiB wsize, NFS default scale
};

class NfsClient {
 public:
  NfsClient(NfsServer& server, NfsClientConfig config = {})
      : server_(server), config_(config) {}

  /// Writes `data` to `path` on the server in rpc_chunk_bytes chunks.
  [[nodiscard]] Status write_file(const std::string& path,
                                  std::span<const std::uint8_t> data);

  [[nodiscard]] Bytes bytes_sent() const noexcept { return Bytes{sent_}; }
  [[nodiscard]] std::size_t rpcs_issued() const noexcept { return rpcs_; }
  [[nodiscard]] const NfsClientConfig& config() const noexcept {
    return config_;
  }

 private:
  NfsServer& server_;
  NfsClientConfig config_;
  std::uint64_t sent_ = 0;
  std::size_t rpcs_ = 0;
};

}  // namespace lcp::io
