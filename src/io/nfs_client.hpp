#pragma once
// NFS client: chunked RPC writes to an NfsServer. Moves real bytes (so
// integrity is testable end-to-end) and reports the modeled wall time of
// the transfer at a given CPU frequency via the transit model.
//
// With a FaultInjector attached the client becomes the system under test
// of the fault-injection suite: each chunk is written at an explicit
// offset (idempotent, NFSv3-style), verified against the server's CRC32C
// write verifier, and retried under a per-RPC timeout with capped
// exponential backoff and deterministic seeded jitter. Without an
// injector the original single-attempt append path runs unchanged.

#include <cstdint>
#include <string>
#include <vector>

#include "io/fault.hpp"
#include "io/link.hpp"
#include "io/nfs_server.hpp"
#include "support/status.hpp"
#include "support/thread_annotations.hpp"

namespace lcp::io {

/// Retry/backoff policy for one RPC (only consulted under fault injection).
struct RetryPolicy {
  std::uint32_t max_attempts = 6;   ///< total attempts per RPC, >= 1
  Seconds rpc_timeout{1.1};         ///< modeled wait before declaring loss
  Seconds backoff_initial{10e-3};   ///< sleep after the first failure
  Seconds backoff_cap{2.0};         ///< exponential growth stops here
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.1;     ///< +-10% seeded jitter on each sleep
};

/// Modeled cost of the retry machinery, accumulated across write_file
/// calls. All durations are modeled (nothing actually sleeps), which is
/// what lets the soak tests run thousands of faulted RPCs in milliseconds.
struct RetryStats {
  std::uint64_t rpc_attempts = 0;        ///< attempts put on the wire
  std::uint64_t retries = 0;             ///< backoff sleeps taken
  std::uint64_t bytes_retransmitted = 0; ///< payload bytes sent more than once
  std::uint64_t timeouts = 0;            ///< drops + over-deadline delays
  std::uint64_t checksum_failures = 0;   ///< corruptions caught by CRC32C
  std::uint64_t rejections = 0;          ///< server-refused attempts
  Seconds wire_seconds{0.0};             ///< serialization of every attempt
  Seconds injected_delay{0.0};           ///< sub-deadline latency absorbed
  Seconds timeout_wait{0.0};             ///< time spent waiting on lost RPCs
  Seconds backoff_idle{0.0};             ///< time spent in backoff sleeps

  /// Total modeled time the client sat idle because of faults; feeds the
  /// stall term of the retry-aware transit workload.
  [[nodiscard]] Seconds idle_seconds() const noexcept {
    return timeout_wait + backoff_idle + injected_delay;
  }
};

/// One line of the retry trace: what the injector did to an attempt and
/// what the client decided. Equal seeds produce equal traces — the
/// determinism contract the reproducibility tests assert on.
struct RpcAttempt {
  std::uint64_t rpc_index = 0;
  std::uint32_t attempt = 0;
  FaultKind fault = FaultKind::kNone;
  ErrorCode result = ErrorCode::kOk;
  Seconds backoff_base{0.0};  ///< un-jittered sleep before the next attempt
  Seconds backoff{0.0};       ///< jittered sleep actually taken
  bool operator==(const RpcAttempt&) const = default;
};

/// Client-side configuration.
struct NfsClientConfig {
  LinkSpec link;
  std::size_t rpc_chunk_bytes = 1 << 20;  ///< 1 MiB wsize, NFS default scale
  RetryPolicy retry;
};

class NfsClient {
 public:
  NfsClient(NfsServer& server, NfsClientConfig config = {})
      : server_(server), config_(config) {}

  /// Attaches (or detaches, with nullptr) the fault injector. The injector
  /// must outlive the client. While attached, writes go through the
  /// offset-based retry path and every attempt is recorded in trace().
  void attach_fault_injector(const FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Writes `data` to `path` on the server in rpc_chunk_bytes chunks.
  /// Under fault injection, returns a typed error after retry exhaustion
  /// (the code of the last failure) instead of silently truncating.
  [[nodiscard]] Status write_file(const std::string& path,
                                  std::span<const std::uint8_t> data);

  /// Wraps `data` in a resilient frame (compress/common/framing.hpp) and
  /// writes the framed stream: a later reader can detect and contain
  /// storage-side corruption per chunk instead of losing the file.
  /// `frame_chunk_bytes` of 0 aligns the frame chunks with the RPC size.
  /// The framing overhead is tracked in framed_overhead_bytes().
  [[nodiscard]] Status write_file_framed(const std::string& path,
                                         std::span<const std::uint8_t> data,
                                         std::size_t frame_chunk_bytes = 0);

  /// Incremental writer over explicit-offset RPCs (NFSv3 WRITE semantics).
  /// This is the streaming dump engine's entry point: frame chunks go on
  /// the wire with append() while later slabs are still compressing, and
  /// the frame header — only known once the last slab is sealed — is
  /// back-patched at offset 0 with write_at(). All byte/RPC accounting
  /// lands on the owning client; under fault injection every RPC takes
  /// the same retry/backoff path as write_file.
  ///
  /// The stream's cursor state (offset, high-water mark, byte count) is
  /// guarded by its own mutex so a future sharded writer can share one
  /// stream; the owning client's counters remain single-writer.
  class FileStream {
   public:
    /// Writes `data` at the running offset and advances it.
    [[nodiscard]] Status append(std::span<const std::uint8_t> data);

    /// Writes `data` at an absolute offset; the running offset and the
    /// high-water mark still cover it (holes are zero-extended by the
    /// server until patched).
    [[nodiscard]] Status write_at(std::uint64_t offset,
                                  std::span<const std::uint8_t> data);

    /// Verifies the server holds exactly the high-water mark of bytes.
    [[nodiscard]] Status finish();

    [[nodiscard]] std::uint64_t offset() const {
      const MutexLock lock{mu_};
      return offset_;
    }
    [[nodiscard]] std::uint64_t bytes_written() const {
      const MutexLock lock{mu_};
      return written_;
    }

   private:
    friend class NfsClient;
    FileStream(NfsClient& client, std::string path)
        : client_(&client), path_(std::move(path)) {}

    /// Chunk-and-send body shared by append/write_at; callers hold mu_.
    Status write_at_locked(std::uint64_t offset,
                           std::span<const std::uint8_t> data)
        LCP_REQUIRES(mu_);

    NfsClient* client_;
    std::string path_;
    mutable Mutex mu_;
    std::uint64_t offset_ LCP_GUARDED_BY(mu_) = 0;      ///< next append position
    std::uint64_t high_water_ LCP_GUARDED_BY(mu_) = 0;  ///< furthest byte written
    std::uint64_t written_ LCP_GUARDED_BY(mu_) = 0;     ///< payload bytes sent
  };

  /// Opens a streaming writer for `path` (the file is created on the
  /// first RPC). The stream borrows the client; one stream at a time.
  [[nodiscard]] FileStream begin_file_stream(const std::string& path) {
    return FileStream{*this, path};
  }

  [[nodiscard]] Bytes bytes_sent() const noexcept { return Bytes{sent_}; }
  /// Cumulative frame bytes added on top of raw payloads by
  /// write_file_framed (headers, trailers, per-chunk headers).
  [[nodiscard]] Bytes framed_overhead_bytes() const noexcept {
    return Bytes{framed_overhead_};
  }
  [[nodiscard]] std::size_t rpcs_issued() const noexcept { return rpcs_; }
  [[nodiscard]] const RetryStats& retry_stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<RpcAttempt>& trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] const NfsClientConfig& config() const noexcept {
    return config_;
  }

  /// Global chunk-index stream position. Chunk indices are a pure function
  /// of the sizes written so far (a failed file still consumes all of its
  /// indices), so fault episodes can target chunk windows predictably.
  [[nodiscard]] std::uint64_t next_chunk_index() const noexcept {
    return next_chunk_;
  }

  /// Zeroes counters, stats and trace; the chunk-index stream keeps
  /// advancing so previously-planned fault windows stay aligned.
  void reset_counters() noexcept {
    sent_ = 0;
    rpcs_ = 0;
    stats_ = RetryStats{};
    trace_.clear();
  }

 private:
  Status write_chunk_with_retries(const std::string& path,
                                  std::uint64_t offset,
                                  std::span<const std::uint8_t> chunk);

  NfsServer& server_;
  NfsClientConfig config_;
  const FaultInjector* fault_ = nullptr;
  std::uint64_t sent_ = 0;
  std::uint64_t framed_overhead_ = 0;
  std::size_t rpcs_ = 0;
  std::uint64_t next_chunk_ = 0;
  RetryStats stats_;
  std::vector<RpcAttempt> trace_;
};

}  // namespace lcp::io
