#pragma once
// N-way replicated NFS storage: one client per backing NfsServer, writes
// fanned out to every live replica, reads served by any replica whose copy
// verifies. A single simulated NFS server is a single point of failure for
// every joule already spent compressing a dump; the replica set makes the
// stored bytes survive a server loss at the cost of R× write traffic —
// the replication tax the transit energy model prices per byte.
//
// Semantics (deliberately NFS-simple, not a consensus protocol):
//   - write_file fans out to every replica that is not administratively
//     down; it succeeds when at least `write_quorum` replicas acked, and
//     reports the per-replica statuses either way.
//   - read_file walks the replicas in rotation from a caller-chosen start
//     (so a slab restore spreads load), skips down replicas, applies the
//     caller's verifier to each copy, and fails over to the next replica
//     until a copy verifies. Content-addressed callers pass a hash check;
//     the result records which replica served and how many failovers the
//     read burned.
//   - Each replica's client can carry its own FaultInjector, so a replica
//     can be flaky (retry/backoff absorbs it) or hard-down (episodes with
//     kFaultPersistsForever) independently of the others.
//
// Read-path counters are atomics: concurrent restores may share one
// ReplicaSet as long as nothing is writing (the incremental checkpoint
// store serializes its writers; see core/incremental_checkpoint.hpp).
// The per-replica down flag is also atomic: an operator may mark a
// replica down while restores are mid-failover, and the flag was a plain
// bool before the -Wthread-safety migration — a genuine data race the
// annotation sweep flushed out (ConcurrentDownToggleDuringReads pins it).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "io/nfs_client.hpp"
#include "io/nfs_server.hpp"
#include "support/status.hpp"

namespace lcp::io {

struct ReplicaSetConfig {
  /// Applied to every replica's client (link, RPC chunking, retry policy).
  NfsClientConfig client;
  /// Replicas that must ack a write before it counts as durable.
  /// 0 = majority (N/2 + 1), the default quorum.
  std::size_t write_quorum = 0;
};

/// Per-replica result of one fan-out write.
struct ReplicaWriteOutcome {
  std::size_t acks = 0;
  std::vector<Status> per_replica;  ///< one entry per replica, in order
  Status status;                    ///< OK iff acks >= write quorum

  [[nodiscard]] bool ok() const noexcept { return status.is_ok(); }
};

class ReplicaSet {
 public:
  /// Builds one client per server. Servers must outlive the set.
  explicit ReplicaSet(std::vector<NfsServer*> servers,
                      ReplicaSetConfig config = {});

  [[nodiscard]] std::size_t replica_count() const noexcept {
    return replicas_.size();
  }
  /// Effective write quorum (config value, or majority when 0).
  [[nodiscard]] std::size_t write_quorum() const noexcept { return quorum_; }

  /// Attaches a fault injector to one replica's client (nullptr detaches).
  void attach_fault_injector(std::size_t replica,
                             const FaultInjector* injector);

  /// Marks a replica administratively down: writes skip it (counted as a
  /// failed ack), reads fail over past it without touching the wire.
  void set_replica_down(std::size_t replica, bool down);
  [[nodiscard]] bool replica_down(std::size_t replica) const;

  /// Fans `data` out to every live replica. Keeps going after quorum is
  /// reached (more durable copies never hurt) and after individual
  /// failures (a failed replica must not mask the others' acks).
  ReplicaWriteOutcome write_file(const std::string& path,
                                 std::span<const std::uint8_t> data);

  /// Removes `path` from every replica that holds it. Missing copies are
  /// not errors (a replica that was down during the write never got one);
  /// returns the total bytes freed across replicas.
  [[nodiscard]] Expected<std::uint64_t> remove_file(const std::string& path);

  /// One verified read with failover.
  struct ReadResult {
    std::vector<std::uint8_t> bytes;
    std::size_t replica = 0;    ///< replica that served the verified copy
    std::size_t failovers = 0;  ///< replicas tried and rejected before it
  };

  /// Verifier contract: OK to accept a copy, any error to fail over.
  using Verifier = std::function<Status(std::span<const std::uint8_t>)>;

  /// Reads `path` from the first replica (rotating from `preferred`) whose
  /// copy passes `verify` (no verifier = any present copy). Fails with the
  /// last per-replica error once every replica has been tried.
  [[nodiscard]] Expected<ReadResult> read_file(
      const std::string& path, std::size_t preferred = 0,
      const Verifier& verify = {}) const;

  [[nodiscard]] NfsClient& client(std::size_t replica);
  [[nodiscard]] NfsServer& server(std::size_t replica);
  [[nodiscard]] const NfsServer& server(std::size_t replica) const;

  /// Total payload bytes put on the wire across all replica clients: the
  /// replication traffic the transit model prices (R× the logical bytes
  /// when every replica is healthy).
  [[nodiscard]] Bytes bytes_replicated() const noexcept;

  /// Read-path accounting (atomic: restores run concurrently).
  [[nodiscard]] std::uint64_t bytes_fetched() const noexcept {
    return fetched_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t read_failovers() const noexcept {
    return read_failovers_.load(std::memory_order_relaxed);
  }

 private:
  struct Replica {
    Replica(NfsServer& s, const NfsClientConfig& cfg) : server(&s), client(s, cfg) {}
    NfsServer* server;
    NfsClient client;
    /// Atomic, not GUARDED_BY: flipped by an admin thread while reads are
    /// in flight; readers only need a coherent snapshot, not an ordering.
    std::atomic<bool> down{false};
  };

  std::vector<std::unique_ptr<Replica>> replicas_;
  ReplicaSetConfig config_;
  std::size_t quorum_ = 1;
  mutable std::atomic<std::uint64_t> fetched_{0};
  mutable std::atomic<std::uint64_t> read_failovers_{0};
};

}  // namespace lcp::io
