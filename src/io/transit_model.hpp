#pragma once
// Transit workload builder: converts "write N bytes over NFS from this
// chip" into a power::Workload, combining the client CPU cost (packet and
// RPC processing, chip-specific cycles/byte), the wire, and the server
// disk into the pipeline model of Section IV-B.

#include "io/link.hpp"
#include "io/nfs_server.hpp"
#include "power/chip_model.hpp"
#include "power/workload.hpp"

namespace lcp::io {

/// Parameters of the data-writing power experiments.
struct TransitModelConfig {
  LinkSpec link;
  DiskSpec disk;
  /// Fixed software overhead per write operation (mount, open, close, sync).
  Seconds setup_seconds{5e-3};
  /// Package activity while the write path is executing (lower than
  /// compression: the core spends cycles in copies and waits, producing the
  /// ~0.9 scaled-power floor of Figure 3).
  double activity = 0.55;
  /// Share of client CPU time that scales with core frequency.
  double cpu_bound_fraction = 0.90;
};

/// The paper's transfer sizes: 1, 2, 4, 8, 16 GB.
[[nodiscard]] const std::vector<Bytes>& paper_transit_sizes();

/// Builds the workload of writing `n` bytes from `spec` through `config`.
[[nodiscard]] power::Workload transit_workload(const power::ChipSpec& spec,
                                               Bytes n,
                                               const TransitModelConfig& config);

/// Wall-time floor (wire vs disk) for `n` bytes — exposed for analysis.
[[nodiscard]] Seconds transit_floor(Bytes n, const TransitModelConfig& config);

}  // namespace lcp::io
