#pragma once
// Transit workload builder: converts "write N bytes over NFS from this
// chip" into a power::Workload, combining the client CPU cost (packet and
// RPC processing, chip-specific cycles/byte), the wire, and the server
// disk into the pipeline model of Section IV-B.

#include "io/link.hpp"
#include "io/nfs_client.hpp"
#include "io/nfs_server.hpp"
#include "power/chip_model.hpp"
#include "power/workload.hpp"

namespace lcp::io {

/// Parameters of the data-writing power experiments.
struct TransitModelConfig {
  LinkSpec link;
  DiskSpec disk;
  /// Fixed software overhead per write operation (mount, open, close, sync).
  Seconds setup_seconds{5e-3};
  /// Package activity while the write path is executing (lower than
  /// compression: the core spends cycles in copies and waits, producing the
  /// ~0.9 scaled-power floor of Figure 3).
  double activity = 0.55;
  /// Share of client CPU time that scales with core frequency.
  double cpu_bound_fraction = 0.90;
};

/// The paper's transfer sizes: 1, 2, 4, 8, 16 GB.
[[nodiscard]] const std::vector<Bytes>& paper_transit_sizes();

/// Builds the workload of writing `n` bytes from `spec` through `config`.
[[nodiscard]] power::Workload transit_workload(const power::ChipSpec& spec,
                                               Bytes n,
                                               const TransitModelConfig& config);

/// Wall-time floor (wire vs disk) for `n` bytes — exposed for analysis.
[[nodiscard]] Seconds transit_floor(Bytes n, const TransitModelConfig& config);

/// Scale-free summary of retry behavior on a lossy link, extending the
/// paper's Table V transit model: every retransmitted byte re-pays the
/// per-byte CPU and wire cost, and every backoff/timeout second is added
/// idle time. Zero-valued profile == the fault-free model, exactly.
struct TransitRetryProfile {
  /// Retransmitted payload bytes as a fraction of the logical transfer
  /// (0.05 = 5% of the data crossed the wire twice).
  double retransmit_fraction = 0.0;
  /// Modeled client idle time (timeouts + backoff + absorbed delays) for
  /// the full transfer size.
  Seconds idle_seconds{0.0};

  [[nodiscard]] bool clean() const noexcept {
    return retransmit_fraction == 0.0 && idle_seconds.seconds() == 0.0;
  }
};

/// Derives a profile from retry stats measured on a probe transfer of
/// `probe_bytes`, extrapolated to a transfer of `full_bytes` (the
/// retransmit fraction is scale-free; idle time scales linearly).
[[nodiscard]] TransitRetryProfile retry_profile_from_stats(
    const RetryStats& stats, Bytes probe_bytes, Bytes full_bytes);

/// Retry-aware transit workload: inflates the CPU and wire terms by the
/// retransmit fraction (retransmitted bytes are processed and serialized
/// again, but never re-hit the disk — the server refused or discarded
/// them) and adds the fault idle time to the stall term. With a clean
/// profile this returns exactly transit_workload(spec, n, config).
[[nodiscard]] power::Workload transit_workload(
    const power::ChipSpec& spec, Bytes n, const TransitModelConfig& config,
    const TransitRetryProfile& retry);

/// Package-energy cost of the faults alone at frequency `f`:
/// E(degraded) - E(clean). This is the quantity a loss-rate sweep charges
/// to an EnergyCounter to report "energy cost of an X% loss rate".
[[nodiscard]] Joules transit_retry_energy_overhead(
    const power::ChipSpec& spec, Bytes n, const TransitModelConfig& config,
    const TransitRetryProfile& retry, GigaHertz f);

}  // namespace lcp::io
