#include "io/nfs_client.hpp"

#include <algorithm>

namespace lcp::io {

Status NfsClient::write_file(const std::string& path,
                             std::span<const std::uint8_t> data) {
  if (config_.rpc_chunk_bytes == 0) {
    return Status::invalid_argument("nfs client: zero chunk size");
  }
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t n =
        std::min(config_.rpc_chunk_bytes, data.size() - offset);
    LCP_RETURN_IF_ERROR(server_.handle_write(path, data.subspan(offset, n)));
    sent_ += n;
    ++rpcs_;
    offset += n;
  }
  if (data.empty()) {
    // Creating an empty file is still one RPC.
    LCP_RETURN_IF_ERROR(server_.handle_write(path, data));
    ++rpcs_;
  }
  return Status::ok();
}

}  // namespace lcp::io
