#include "io/nfs_client.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "compress/common/framing.hpp"
#include "support/checksum.hpp"

namespace lcp::io {

Status NfsClient::write_file(const std::string& path,
                             std::span<const std::uint8_t> data) {
  if (config_.rpc_chunk_bytes == 0) {
    return Status::invalid_argument("nfs client: zero chunk size");
  }

  if (fault_ == nullptr) {
    // Fault-free fast path: byte-for-byte the pre-retry behavior (append
    // writes, one attempt each, no checksum or trace overhead).
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t n =
          std::min(config_.rpc_chunk_bytes, data.size() - offset);
      LCP_RETURN_IF_ERROR(server_.handle_write(path, data.subspan(offset, n)));
      sent_ += n;
      ++rpcs_;
      offset += n;
    }
    if (data.empty()) {
      // Creating an empty file is still one RPC.
      LCP_RETURN_IF_ERROR(server_.handle_write(path, data));
      ++rpcs_;
    }
    return Status::ok();
  }

  // Faulted path: offset-addressed chunks so retries are idempotent.
  const std::size_t chunk = config_.rpc_chunk_bytes;
  const std::uint64_t chunk_count =
      data.empty() ? 1
                   : (data.size() + chunk - 1) / chunk;
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    const std::size_t offset = static_cast<std::size_t>(i) * chunk;
    const std::size_t n = std::min(chunk, data.size() - offset);
    const Status st =
        write_chunk_with_retries(path, offset, data.subspan(offset, n));
    if (!st.is_ok()) {
      // Keep the chunk-index stream a pure function of the sizes written:
      // a failed file still consumes the indices of its remaining chunks,
      // so fault windows planned for later files stay aligned.
      next_chunk_ += chunk_count - i - 1;
      return st;
    }
  }
  return Status::ok();
}

Status NfsClient::write_file_framed(const std::string& path,
                                    std::span<const std::uint8_t> data,
                                    std::size_t frame_chunk_bytes) {
  compress::FrameParams params;
  params.chunk_bytes =
      frame_chunk_bytes == 0 ? config_.rpc_chunk_bytes : frame_chunk_bytes;
  if (params.chunk_bytes == 0) {
    return Status::invalid_argument("nfs client: zero frame chunk size");
  }
  const auto framed = compress::frame_payload(data, params);
  LCP_RETURN_IF_ERROR(write_file(path, framed));
  framed_overhead_ += framed.size() - data.size();
  return Status::ok();
}

Status NfsClient::FileStream::append(std::span<const std::uint8_t> data) {
  const MutexLock lock{mu_};
  const Status st = write_at_locked(offset_, data);
  if (st.is_ok()) {
    offset_ += data.size();
  }
  return st;
}

Status NfsClient::FileStream::write_at(std::uint64_t offset,
                                       std::span<const std::uint8_t> data) {
  const MutexLock lock{mu_};
  return write_at_locked(offset, data);
}

Status NfsClient::FileStream::write_at_locked(
    std::uint64_t offset, std::span<const std::uint8_t> data) {
  NfsClient& c = *client_;
  if (c.config_.rpc_chunk_bytes == 0) {
    return Status::invalid_argument("nfs client: zero chunk size");
  }
  const std::size_t chunk = c.config_.rpc_chunk_bytes;
  std::size_t done = 0;
  // An empty write still creates the file with one RPC, mirroring
  // write_file's empty-file behavior.
  const std::size_t rpc_count =
      data.empty() ? 1 : (data.size() + chunk - 1) / chunk;
  for (std::size_t i = 0; i < rpc_count; ++i) {
    const std::size_t n = std::min(chunk, data.size() - done);
    const auto piece = data.subspan(done, n);
    const std::uint64_t at = offset + done;
    if (c.fault_ == nullptr) {
      auto reply = c.server_.handle_write_at(path_, at, piece);
      if (!reply.has_value()) {
        return reply.status();
      }
      // The offset path always returns the server's write verifier, so
      // the streaming dump gets end-to-end CRC coverage even without an
      // injector attached (a storage-side bit flip surfaces here, not as
      // a silent mismatch at finish()).
      if (*reply != crc32c(piece)) {
        return Status::corrupt_data(
            "nfs client: write verifier mismatch on stream '" + path_ + "'");
      }
      c.sent_ += n;
      ++c.rpcs_;
    } else {
      const Status st = c.write_chunk_with_retries(path_, at, piece);
      if (!st.is_ok()) {
        // Mirror write_file's bookkeeping: a failed stream write still
        // consumes the chunk indices of its remaining pieces, keeping the
        // fault-window stream a pure function of the sizes written.
        c.next_chunk_ += rpc_count - i - 1;
        return st;
      }
    }
    done += n;
    written_ += n;
    high_water_ = std::max(high_water_, at + n);
  }
  return Status::ok();
}

Status NfsClient::FileStream::finish() {
  const MutexLock lock{mu_};
  auto stored = client_->server_.read_file(path_);
  if (!stored.has_value()) {
    return stored.status();
  }
  if (stored->size() != high_water_) {
    return Status::corrupt_data(
        "nfs client: stream for '" + path_ + "' stored " +
        std::to_string(stored->size()) + " bytes, expected " +
        std::to_string(high_water_));
  }
  return Status::ok();
}

Status NfsClient::write_chunk_with_retries(const std::string& path,
                                           std::uint64_t offset,
                                           std::span<const std::uint8_t> chunk) {
  const RetryPolicy& policy = config_.retry;
  const std::uint64_t rpc = next_chunk_++;
  const std::uint32_t max_attempts = std::max<std::uint32_t>(1, policy.max_attempts);
  const Bytes chunk_bytes{chunk.size()};
  const std::uint32_t local_crc = crc32c(chunk);

  Status last = Status::unavailable("nfs client: rpc never attempted");
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    const FaultDecision d = fault_->decide(rpc, attempt, chunk.size());
    Status result = Status::ok();

    // Every decision below puts the request (and payload) on the wire.
    sent_ += chunk.size();
    ++rpcs_;
    ++stats_.rpc_attempts;
    if (attempt > 0) {
      stats_.bytes_retransmitted += chunk.size();
    }
    stats_.wire_seconds = stats_.wire_seconds + config_.link.wire_time(chunk_bytes);

    switch (d.kind) {
      case FaultKind::kDrop:
        stats_.timeouts++;
        stats_.timeout_wait = stats_.timeout_wait + policy.rpc_timeout;
        result = Status::unavailable("nfs client: rpc timed out (dropped)");
        break;
      case FaultKind::kDelay:
        if (d.delay >= policy.rpc_timeout) {
          // The reply would arrive after the deadline: indistinguishable
          // from a drop on the client side, and the late server-side apply
          // is harmless because the retry overwrites the same offset.
          stats_.timeouts++;
          stats_.timeout_wait = stats_.timeout_wait + policy.rpc_timeout;
          result = Status::unavailable("nfs client: rpc timed out (delayed)");
          break;
        }
        stats_.injected_delay = stats_.injected_delay + d.delay;
        [[fallthrough]];
      case FaultKind::kNone:
      case FaultKind::kCorrupt: {
        std::span<const std::uint8_t> payload = chunk;
        std::vector<std::uint8_t> damaged;
        if (d.kind == FaultKind::kCorrupt && !chunk.empty()) {
          damaged.assign(chunk.begin(), chunk.end());
          damaged[d.corrupt_offset] ^= d.corrupt_mask;
          payload = damaged;
        }
        auto reply = server_.handle_write_at(path, offset, payload);
        if (!reply.has_value()) {
          result = reply.status();
          break;
        }
        if (*reply != local_crc) {
          stats_.checksum_failures++;
          result = Status::corrupt_data(
              "nfs client: write verifier mismatch (chunk corrupted in "
              "flight)");
          break;
        }
        trace_.push_back({rpc, attempt, d.kind, ErrorCode::kOk,
                          Seconds{0.0}, Seconds{0.0}});
        return Status::ok();
      }
      case FaultKind::kReject:
        server_.note_refused_rpc();
        stats_.rejections++;
        result = Status::unavailable("nfs client: server busy (rejected)");
        break;
      case FaultKind::kDiskFull:
        server_.note_refused_rpc();
        stats_.rejections++;
        result = Status::out_of_range("nfs client: server disk full");
        break;
      case FaultKind::kServerUnavailable:
        server_.note_refused_rpc();
        stats_.rejections++;
        result = Status::unavailable("nfs client: server unavailable");
        break;
    }

    last = result;
    Seconds backoff_base{0.0};
    Seconds backoff{0.0};
    if (attempt + 1 < max_attempts) {
      const double base = std::min(
          policy.backoff_cap.seconds(),
          policy.backoff_initial.seconds() *
              std::pow(policy.backoff_multiplier, static_cast<double>(attempt)));
      const double jitter = fault_->backoff_jitter(rpc, attempt);
      backoff_base = Seconds{base};
      backoff =
          Seconds{std::max(0.0, base * (1.0 + policy.jitter_fraction * jitter))};
      stats_.retries++;
      stats_.backoff_idle = stats_.backoff_idle + backoff;
    }
    trace_.push_back({rpc, attempt, d.kind, result.code(), backoff_base, backoff});
  }

  return Status{last.code(),
                "nfs client: rpc " + std::to_string(rpc) + " to '" + path +
                    "' failed after " + std::to_string(max_attempts) +
                    " attempts: " + last.message()};
}

}  // namespace lcp::io
