#pragma once
// In-memory NFS server: receives RPC write chunks, appends them to named
// files, and models a bounded-throughput storage backend. Functional (the
// bytes really move) so conservation and content integrity are testable;
// timing is modeled, not measured.
//
// The file table and its byte/RPC accounting are guarded by one mutex
// (annotated for -Wthread-safety), so concurrent restore sessions reading
// different files through one server are safe. Spans returned by
// read_file() point into the table and stay valid only until the next
// mutating call — the same lifetime contract as before, now stated.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "support/status.hpp"
#include "support/thread_annotations.hpp"
#include "support/units.hpp"

namespace lcp::io {

/// Storage backend throughput (single NFS stream with sync-ish semantics;
/// this, not the 10 GbE wire, is often the pipeline floor in practice).
struct DiskSpec {
  double write_bytes_per_second = 0.35e9;

  [[nodiscard]] Seconds write_time(Bytes n) const noexcept {
    return Seconds{static_cast<double>(n.bytes()) / write_bytes_per_second};
  }
};

class NfsServer {
 public:
  explicit NfsServer(DiskSpec disk = {}) : disk_(disk) {}

  /// Appends a chunk to `path`, creating the file on first write.
  Status handle_write(const std::string& path,
                      std::span<const std::uint8_t> chunk);

  /// Writes a chunk at an explicit offset (NFSv3 WRITE semantics: offsets
  /// make retransmission idempotent — a duplicate or late retry overwrites
  /// the same range instead of appending twice). The file is extended with
  /// zeros if `offset` lies past its current end. Returns the CRC32C of
  /// the chunk as stored, the write verifier the client checks to detect
  /// in-flight corruption.
  Expected<std::uint32_t> handle_write_at(const std::string& path,
                                          std::uint64_t offset,
                                          std::span<const std::uint8_t> chunk);

  /// Accounts for an RPC the server received but refused (injected
  /// reject/disk-full/unavailable episodes): it consumed a server request
  /// slot, so it must show up in rpc_count() for conservation checks.
  void note_refused_rpc() {
    const MutexLock lock{mu_};
    ++rpcs_;
  }

  /// Full contents of a stored file.
  [[nodiscard]] Expected<std::span<const std::uint8_t>> read_file(
      const std::string& path) const;

  /// Removes one file (NFSv3 REMOVE). Returns the bytes freed; removing a
  /// missing path is a typed error so garbage collectors can distinguish
  /// "already gone" from "freed now".
  [[nodiscard]] Expected<std::uint64_t> remove_file(const std::string& path);

  /// Paths currently stored under `prefix`, in lexicographic order (the
  /// slab-store GC walk; std::map iteration makes it deterministic).
  [[nodiscard]] std::vector<std::string> list_files(
      const std::string& prefix) const;

  [[nodiscard]] bool has_file(const std::string& path) const {
    const MutexLock lock{mu_};
    return files_.contains(path);
  }
  [[nodiscard]] std::size_t file_count() const {
    const MutexLock lock{mu_};
    return files_.size();
  }
  [[nodiscard]] Bytes total_bytes_stored() const {
    const MutexLock lock{mu_};
    return Bytes{bytes_stored_};
  }
  [[nodiscard]] std::size_t rpc_count() const {
    const MutexLock lock{mu_};
    return rpcs_;
  }
  [[nodiscard]] const DiskSpec& disk() const noexcept { return disk_; }

  void remove_all() {
    const MutexLock lock{mu_};
    files_.clear();
    bytes_stored_ = 0;
    rpcs_ = 0;
  }

 private:
  DiskSpec disk_;
  mutable Mutex mu_;
  std::map<std::string, std::vector<std::uint8_t>> files_ LCP_GUARDED_BY(mu_);
  std::uint64_t bytes_stored_ LCP_GUARDED_BY(mu_) = 0;
  std::size_t rpcs_ LCP_GUARDED_BY(mu_) = 0;
};

}  // namespace lcp::io
