#include "io/replica_set.hpp"

#include <utility>

namespace lcp::io {

ReplicaSet::ReplicaSet(std::vector<NfsServer*> servers,
                       ReplicaSetConfig config)
    : config_(config) {
  replicas_.reserve(servers.size());
  for (NfsServer* server : servers) {
    LCP_REQUIRE(server != nullptr, "replica set: null server");
    replicas_.push_back(std::make_unique<Replica>(*server, config_.client));
  }
  LCP_REQUIRE(!replicas_.empty(), "replica set: need at least one replica");
  quorum_ = config_.write_quorum == 0 ? replicas_.size() / 2 + 1
                                      : config_.write_quorum;
  LCP_REQUIRE(quorum_ <= replicas_.size(),
              "replica set: write quorum exceeds replica count");
}

void ReplicaSet::attach_fault_injector(std::size_t replica,
                                       const FaultInjector* injector) {
  LCP_REQUIRE(replica < replicas_.size(), "replica set: index out of range");
  replicas_[replica]->client.attach_fault_injector(injector);
}

void ReplicaSet::set_replica_down(std::size_t replica, bool down) {
  LCP_REQUIRE(replica < replicas_.size(), "replica set: index out of range");
  replicas_[replica]->down.store(down, std::memory_order_relaxed);
}

bool ReplicaSet::replica_down(std::size_t replica) const {
  LCP_REQUIRE(replica < replicas_.size(), "replica set: index out of range");
  return replicas_[replica]->down.load(std::memory_order_relaxed);
}

ReplicaWriteOutcome ReplicaSet::write_file(
    const std::string& path, std::span<const std::uint8_t> data) {
  ReplicaWriteOutcome out;
  out.per_replica.reserve(replicas_.size());
  for (auto& r : replicas_) {
    if (r->down.load(std::memory_order_relaxed)) {
      // No wire traffic: a down replica rejects before the first byte, so
      // it costs nothing in the transit model but still misses the copy.
      out.per_replica.push_back(
          Status::unavailable("replica set: replica marked down"));
      continue;
    }
    Status st = r->client.write_file(path, data);
    if (st.is_ok()) {
      ++out.acks;
    }
    out.per_replica.push_back(std::move(st));
  }
  if (out.acks >= quorum_) {
    out.status = Status::ok();
  } else {
    std::string detail;
    for (std::size_t i = 0; i < out.per_replica.size(); ++i) {
      if (out.per_replica[i].is_ok()) {
        continue;
      }
      if (!detail.empty()) {
        detail += "; ";
      }
      detail += "replica " + std::to_string(i) + ": " +
                out.per_replica[i].message();
    }
    out.status = Status::unavailable(
        "replica set: write to '" + path + "' acked by " +
        std::to_string(out.acks) + "/" + std::to_string(replicas_.size()) +
        " replicas, quorum " + std::to_string(quorum_) + " (" + detail + ")");
  }
  return out;
}

Expected<std::uint64_t> ReplicaSet::remove_file(const std::string& path) {
  std::uint64_t freed = 0;
  for (auto& r : replicas_) {
    if (r->down.load(std::memory_order_relaxed) ||
        !r->server->has_file(path)) {
      continue;
    }
    auto got = r->server->remove_file(path);
    LCP_RETURN_IF_ERROR(got.status());
    freed += *got;
  }
  return freed;
}

Expected<ReplicaSet::ReadResult> ReplicaSet::read_file(
    const std::string& path, std::size_t preferred,
    const Verifier& verify) const {
  const std::size_t n = replicas_.size();
  Status last = Status::unavailable(
      "replica set: no replica reachable for '" + path + "'");
  std::size_t failovers = 0;
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t r = (preferred + step) % n;
    const Replica& rep = *replicas_[r];
    Status reject;
    if (rep.down.load(std::memory_order_relaxed)) {
      reject = Status::unavailable("replica set: replica " +
                                   std::to_string(r) + " marked down");
    } else {
      auto copy = rep.server->read_file(path);
      if (!copy.has_value()) {
        reject = copy.status();
      } else {
        // Fetching the copy puts its bytes on the wire whether or not it
        // verifies: a rejected fetch is paid-for traffic, which is exactly
        // why failover count matters to the energy ledger.
        fetched_.fetch_add(copy->size(), std::memory_order_relaxed);
        reject = verify ? verify(*copy) : Status::ok();
        if (reject.is_ok()) {
          ReadResult result;
          result.bytes.assign(copy->begin(), copy->end());
          result.replica = r;
          result.failovers = failovers;
          return result;
        }
      }
    }
    ++failovers;
    read_failovers_.fetch_add(1, std::memory_order_relaxed);
    last = std::move(reject);
  }
  return Status{last.code(), "replica set: all " + std::to_string(n) +
                                 " replicas failed for '" + path +
                                 "': " + last.message()};
}

NfsClient& ReplicaSet::client(std::size_t replica) {
  LCP_REQUIRE(replica < replicas_.size(), "replica set: index out of range");
  return replicas_[replica]->client;
}

NfsServer& ReplicaSet::server(std::size_t replica) {
  LCP_REQUIRE(replica < replicas_.size(), "replica set: index out of range");
  return *replicas_[replica]->server;
}

const NfsServer& ReplicaSet::server(std::size_t replica) const {
  LCP_REQUIRE(replica < replicas_.size(), "replica set: index out of range");
  return *replicas_[replica]->server;
}

Bytes ReplicaSet::bytes_replicated() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : replicas_) {
    total += r->client.bytes_sent().bytes();
  }
  return Bytes{total};
}

}  // namespace lcp::io
