#pragma once
// Network link model: the 10 Gbps ethernet connection of the paper's
// CloudLab NFS setup, with protocol efficiency accounting for
// TCP/RPC/NFS framing overhead.

#include "support/units.hpp"

namespace lcp::io {

/// Point-to-point link.
struct LinkSpec {
  double gigabits_per_second = 10.0;
  double protocol_efficiency = 0.94;  ///< payload share after headers/acks

  /// Effective payload bandwidth in bytes/second.
  [[nodiscard]] double payload_bytes_per_second() const noexcept {
    return gigabits_per_second * 1e9 / 8.0 * protocol_efficiency;
  }

  /// Serialization time of `n` payload bytes.
  [[nodiscard]] Seconds wire_time(Bytes n) const noexcept {
    return Seconds{static_cast<double>(n.bytes()) / payload_bytes_per_second()};
  }
};

}  // namespace lcp::io
