#include "io/nfs_server.hpp"

namespace lcp::io {

Status NfsServer::handle_write(const std::string& path,
                               std::span<const std::uint8_t> chunk) {
  if (path.empty()) {
    return Status::invalid_argument("nfs: empty path");
  }
  auto& file = files_[path];
  file.insert(file.end(), chunk.begin(), chunk.end());
  bytes_stored_ += chunk.size();
  ++rpcs_;
  return Status::ok();
}

Expected<std::span<const std::uint8_t>> NfsServer::read_file(
    const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::invalid_argument("nfs: no such file: " + path);
  }
  return std::span<const std::uint8_t>{it->second};
}

}  // namespace lcp::io
