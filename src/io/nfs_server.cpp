#include "io/nfs_server.hpp"

#include <algorithm>

#include "support/checksum.hpp"

namespace lcp::io {

Status NfsServer::handle_write(const std::string& path,
                               std::span<const std::uint8_t> chunk) {
  if (path.empty()) {
    return Status::invalid_argument("nfs: empty path");
  }
  const MutexLock lock{mu_};
  auto& file = files_[path];
  file.insert(file.end(), chunk.begin(), chunk.end());
  bytes_stored_ += chunk.size();
  ++rpcs_;
  return Status::ok();
}

Expected<std::uint32_t> NfsServer::handle_write_at(
    const std::string& path, std::uint64_t offset,
    std::span<const std::uint8_t> chunk) {
  if (path.empty()) {
    return Status::invalid_argument("nfs: empty path");
  }
  const MutexLock lock{mu_};
  auto& file = files_[path];
  const std::uint64_t end = offset + chunk.size();
  if (end > file.size()) {
    // bytes_stored_ tracks the sum of file sizes, so only growth counts:
    // an idempotent retransmit over an already-written range is free.
    bytes_stored_ += end - file.size();
    file.resize(end, 0);
  }
  std::copy(chunk.begin(), chunk.end(),
            file.begin() + static_cast<std::ptrdiff_t>(offset));
  ++rpcs_;
  return crc32c(chunk);
}

Expected<std::span<const std::uint8_t>> NfsServer::read_file(
    const std::string& path) const {
  const MutexLock lock{mu_};
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::invalid_argument("nfs: no such file: " + path);
  }
  return std::span<const std::uint8_t>{it->second};
}

Expected<std::uint64_t> NfsServer::remove_file(const std::string& path) {
  const MutexLock lock{mu_};
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::invalid_argument("nfs: no such file: " + path);
  }
  const std::uint64_t freed = it->second.size();
  bytes_stored_ -= freed;
  files_.erase(it);
  ++rpcs_;
  return freed;
}

std::vector<std::string> NfsServer::list_files(
    const std::string& prefix) const {
  const MutexLock lock{mu_};
  std::vector<std::string> paths;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    paths.push_back(it->first);
  }
  return paths;
}

}  // namespace lcp::io
