#include "io/fault.hpp"

#include "support/rng.hpp"
#include "support/status.hpp"

namespace lcp::io {
namespace {

// Distinct multipliers decorrelate the (seed, rpc, attempt) triple before
// it reaches the Rng, whose splitmix64 seeding finishes the mixing. The
// salt separates the fault-fate stream from the backoff-jitter stream.
std::uint64_t stream_key(std::uint64_t seed, std::uint64_t rpc_index,
                         std::uint32_t attempt, std::uint64_t salt) noexcept {
  std::uint64_t key = seed ^ salt;
  key ^= (rpc_index + 1) * 0x9E3779B97F4A7C15ULL;
  key ^= (static_cast<std::uint64_t>(attempt) + 1) * 0xBF58476D1CE4E5B9ULL;
  return key;
}

constexpr std::uint64_t kFateSalt = 0xFA17ED00D5ULL;
constexpr std::uint64_t kJitterSalt = 0xBACC0FFULL;

}  // namespace

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kReject:
      return "reject";
    case FaultKind::kDiskFull:
      return "disk-full";
    case FaultKind::kServerUnavailable:
      return "server-unavailable";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  const double total = plan_.drop_rate + plan_.corrupt_rate +
                       plan_.delay_rate + plan_.reject_rate;
  LCP_REQUIRE(plan_.drop_rate >= 0.0 && plan_.corrupt_rate >= 0.0 &&
                  plan_.delay_rate >= 0.0 && plan_.reject_rate >= 0.0,
              "fault rates must be non-negative");
  LCP_REQUIRE(total <= 1.0 + 1e-12, "fault rates must sum to <= 1");
  for (const auto& p : plan_.periodic) {
    LCP_REQUIRE(p.period >= 1, "periodic fault period must be >= 1");
  }
}

FaultDecision FaultInjector::decide(std::uint64_t rpc_index,
                                    std::uint32_t attempt,
                                    std::size_t chunk_bytes) const {
  FaultDecision decision;
  FaultKind kind = FaultKind::kNone;

  // Deterministic rules take precedence over random draws: targeted, then
  // periodic, then episodes.
  for (const auto& t : plan_.targeted) {
    if (t.rpc_index == rpc_index && attempt < t.persist_attempts) {
      kind = t.kind;
      break;
    }
  }
  if (kind == FaultKind::kNone) {
    for (const auto& p : plan_.periodic) {
      if (rpc_index % p.period == p.phase && attempt < p.persist_attempts) {
        kind = p.kind;
        break;
      }
    }
  }
  if (kind == FaultKind::kNone) {
    for (const auto& e : plan_.episodes) {
      if (rpc_index >= e.first_rpc && rpc_index < e.first_rpc + e.rpc_count &&
          attempt < e.persist_attempts) {
        kind = e.kind;
        break;
      }
    }
  }

  Rng rng{stream_key(plan_.seed, rpc_index, attempt, kFateSalt)};
  if (kind == FaultKind::kNone) {
    const double u = rng.uniform();
    double edge = plan_.drop_rate;
    if (u < edge) {
      kind = FaultKind::kDrop;
    } else if (u < (edge += plan_.corrupt_rate)) {
      kind = FaultKind::kCorrupt;
    } else if (u < (edge += plan_.delay_rate)) {
      kind = FaultKind::kDelay;
    } else if (u < (edge += plan_.reject_rate)) {
      kind = FaultKind::kReject;
    }
  }

  decision.kind = kind;
  if (kind == FaultKind::kDelay) {
    decision.delay = plan_.delay_seconds;
  }
  if (kind == FaultKind::kCorrupt && chunk_bytes > 0) {
    decision.corrupt_offset =
        static_cast<std::size_t>(rng.uniform_index(chunk_bytes));
    decision.corrupt_mask =
        static_cast<std::uint8_t>(1u << rng.uniform_index(8));
  }
  return decision;
}

double FaultInjector::backoff_jitter(std::uint64_t rpc_index,
                                     std::uint32_t attempt) const {
  Rng rng{stream_key(plan_.seed, rpc_index, attempt, kJitterSalt)};
  return rng.uniform(-1.0, 1.0);
}

}  // namespace lcp::io
