#include "io/transit_model.hpp"

#include <algorithm>

namespace lcp::io {

const std::vector<Bytes>& paper_transit_sizes() {
  static const std::vector<Bytes> sizes = {
      Bytes::from_gb(1), Bytes::from_gb(2), Bytes::from_gb(4),
      Bytes::from_gb(8), Bytes::from_gb(16)};
  return sizes;
}

Seconds transit_floor(Bytes n, const TransitModelConfig& config) {
  const Seconds wire = config.link.wire_time(n);
  const Seconds disk = config.disk.write_time(n);
  return std::max(wire, disk);
}

power::Workload transit_workload(const power::ChipSpec& spec, Bytes n,
                                 const TransitModelConfig& config) {
  const double cpu_seconds_total =
      static_cast<double>(n.bytes()) * spec.transit_cycles_per_byte / 1e9;

  power::Workload w;
  // cpu_seconds_total is expressed in cycles/1e9 = GHz-seconds already.
  w.cpu_ghz_seconds = cpu_seconds_total * config.cpu_bound_fraction;
  // The frequency-invariant share is referenced to the chip's max clock.
  w.stall_seconds =
      Seconds{cpu_seconds_total * (1.0 - config.cpu_bound_fraction) /
                  (spec.f_max.ghz() * spec.perf_factor) +
              config.setup_seconds.seconds()};
  w.floor_seconds = transit_floor(n, config);
  w.activity = config.activity;
  return w;
}

}  // namespace lcp::io
