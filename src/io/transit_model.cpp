#include "io/transit_model.hpp"

#include <algorithm>

namespace lcp::io {

const std::vector<Bytes>& paper_transit_sizes() {
  static const std::vector<Bytes> sizes = {
      Bytes::from_gb(1), Bytes::from_gb(2), Bytes::from_gb(4),
      Bytes::from_gb(8), Bytes::from_gb(16)};
  return sizes;
}

Seconds transit_floor(Bytes n, const TransitModelConfig& config) {
  const Seconds wire = config.link.wire_time(n);
  const Seconds disk = config.disk.write_time(n);
  return std::max(wire, disk);
}

TransitRetryProfile retry_profile_from_stats(const RetryStats& stats,
                                             Bytes probe_bytes,
                                             Bytes full_bytes) {
  TransitRetryProfile profile;
  if (probe_bytes.bytes() == 0) {
    return profile;
  }
  const double scale = static_cast<double>(full_bytes.bytes()) /
                       static_cast<double>(probe_bytes.bytes());
  profile.retransmit_fraction =
      static_cast<double>(stats.bytes_retransmitted) /
      static_cast<double>(probe_bytes.bytes());
  profile.idle_seconds = stats.idle_seconds() * scale;
  return profile;
}

power::Workload transit_workload(const power::ChipSpec& spec, Bytes n,
                                 const TransitModelConfig& config,
                                 const TransitRetryProfile& retry) {
  if (retry.clean()) {
    // Bit-identical to the fault-free model by construction.
    return transit_workload(spec, n, config);
  }
  const double inflate = 1.0 + retry.retransmit_fraction;
  const double cpu_seconds_total = static_cast<double>(n.bytes()) * inflate *
                                   spec.transit_cycles_per_byte / 1e9;

  power::Workload w;
  w.cpu_ghz_seconds = cpu_seconds_total * config.cpu_bound_fraction;
  w.stall_seconds =
      Seconds{cpu_seconds_total * (1.0 - config.cpu_bound_fraction) /
                  (spec.f_max.ghz() * spec.perf_factor) +
              config.setup_seconds.seconds()} +
      retry.idle_seconds;
  // Retransmits re-serialize on the wire but never reach the disk twice
  // (refused, lost, or overwritten in place), so only the wire floor grows.
  const Seconds wire = config.link.wire_time(n) * inflate;
  const Seconds disk = config.disk.write_time(n);
  w.floor_seconds = std::max(wire, disk);
  w.activity = config.activity;
  return w;
}

Joules transit_retry_energy_overhead(const power::ChipSpec& spec, Bytes n,
                                     const TransitModelConfig& config,
                                     const TransitRetryProfile& retry,
                                     GigaHertz f) {
  const auto degraded = transit_workload(spec, n, config, retry);
  const auto clean = transit_workload(spec, n, config);
  return power::workload_energy(degraded, spec, f) -
         power::workload_energy(clean, spec, f);
}

power::Workload transit_workload(const power::ChipSpec& spec, Bytes n,
                                 const TransitModelConfig& config) {
  const double cpu_seconds_total =
      static_cast<double>(n.bytes()) * spec.transit_cycles_per_byte / 1e9;

  power::Workload w;
  // cpu_seconds_total is expressed in cycles/1e9 = GHz-seconds already.
  w.cpu_ghz_seconds = cpu_seconds_total * config.cpu_bound_fraction;
  // The frequency-invariant share is referenced to the chip's max clock.
  w.stall_seconds =
      Seconds{cpu_seconds_total * (1.0 - config.cpu_bound_fraction) /
                  (spec.f_max.ghz() * spec.perf_factor) +
              config.setup_seconds.seconds()};
  w.floor_seconds = transit_floor(n, config);
  w.activity = config.activity;
  return w;
}

}  // namespace lcp::io
