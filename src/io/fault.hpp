#pragma once
// Deterministic fault injection for the NFS write path.
//
// A FaultPlan describes *what* can go wrong (random rates, targeted chunks,
// periodic patterns, and server episodes such as disk-full windows); a
// FaultInjector turns the plan into per-RPC decisions. Every decision is a
// pure function of (plan.seed, rpc index, attempt) — no injector state, no
// call-order dependence — so a single seed reproduces an exact failure
// sequence, and a retried RPC re-rolls its fate instead of being doomed
// forever. This determinism contract is what the fault-matrix and soak
// tests build on (see docs/fault_injection.md).

#include <cstdint>
#include <string_view>
#include <vector>

#include "support/units.hpp"

namespace lcp::io {

/// What happens to one RPC attempt on the client→server path.
enum class FaultKind : std::uint8_t {
  kNone = 0,            ///< delivered intact
  kDrop,                ///< lost in flight: client waits out its RPC timeout
  kCorrupt,             ///< delivered with a flipped bit; caught by CRC32C
  kDelay,               ///< delivered after an injected latency
  kReject,              ///< server receives it but refuses (EAGAIN-style)
  kDiskFull,            ///< server refuses: backing store out of space
  kServerUnavailable,   ///< server refuses: not accepting requests
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind kind) noexcept;

/// Attempt count meaning "the fault never clears".
inline constexpr std::uint32_t kFaultPersistsForever = 0xFFFFFFFFu;

/// A deterministic fault pinned to one chunk index (test matrices).
struct TargetedFault {
  std::uint64_t rpc_index = 0;
  FaultKind kind = FaultKind::kDrop;
  /// Fires on attempts [0, persist_attempts); later retries succeed.
  std::uint32_t persist_attempts = 1;
};

/// A deterministic fault hitting every `period`-th chunk.
struct PeriodicFault {
  std::uint64_t period = 1;   ///< must be >= 1
  std::uint64_t phase = 0;    ///< fires when rpc_index % period == phase
  FaultKind kind = FaultKind::kDrop;
  std::uint32_t persist_attempts = 1;
};

/// A server-side episode covering a contiguous chunk-index window, e.g.
/// "the disk is full for chunks 40..80". With persist_attempts set, the
/// episode clears for an RPC after that many failed attempts (a transient
/// outage the backoff can ride out); kFaultPersistsForever turns it into a
/// hard failure that surfaces as a typed Status after retry exhaustion.
struct FaultEpisode {
  FaultKind kind = FaultKind::kServerUnavailable;
  std::uint64_t first_rpc = 0;
  std::uint64_t rpc_count = 0;
  std::uint32_t persist_attempts = kFaultPersistsForever;
};

/// Full description of a faulty link/server.
struct FaultPlan {
  std::uint64_t seed = 0x10C0FFEEu;

  /// Independent per-attempt probabilities, checked in this order; their
  /// sum must be <= 1.
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  double delay_rate = 0.0;
  double reject_rate = 0.0;

  /// Injected latency when kDelay fires. At or above the client's RPC
  /// timeout this behaves like a drop (the reply arrives too late).
  Seconds delay_seconds{20e-3};

  std::vector<TargetedFault> targeted;
  std::vector<PeriodicFault> periodic;
  std::vector<FaultEpisode> episodes;

  /// Convenience: a pure packet-loss plan at `rate`.
  [[nodiscard]] static FaultPlan loss(std::uint64_t seed, double rate) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_rate = rate;
    return plan;
  }

  /// True when the plan can never produce a fault.
  [[nodiscard]] bool trivially_clean() const noexcept {
    return drop_rate == 0.0 && corrupt_rate == 0.0 && delay_rate == 0.0 &&
           reject_rate == 0.0 && targeted.empty() && periodic.empty() &&
           episodes.empty();
  }
};

/// The injector's verdict for one (rpc, attempt) pair.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  Seconds delay{0.0};            ///< injected latency for kDelay
  std::size_t corrupt_offset = 0;  ///< byte to damage for kCorrupt
  std::uint8_t corrupt_mask = 1;   ///< non-zero XOR mask for kCorrupt
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Fate of attempt `attempt` of chunk `rpc_index` carrying `chunk_bytes`
  /// bytes. Deterministic and stateless: the same triple always yields the
  /// same decision regardless of call order or history.
  [[nodiscard]] FaultDecision decide(std::uint64_t rpc_index,
                                     std::uint32_t attempt,
                                     std::size_t chunk_bytes) const;

  /// Deterministic backoff jitter in [-1, 1] for the same keying, salted
  /// away from the fault stream so fate and jitter are independent draws.
  [[nodiscard]] double backoff_jitter(std::uint64_t rpc_index,
                                      std::uint32_t attempt) const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
};

}  // namespace lcp::io
