#include "io/link.hpp"

// Header-inline; TU anchors the library object.
