#pragma once
// DVFS frequency range with the paper's 50 MHz stepping (Section III-B).

#include <vector>

#include "support/units.hpp"

namespace lcp::dvfs {

/// Inclusive [min, max] range walked in fixed steps.
class FrequencyRange {
 public:
  FrequencyRange(GigaHertz min, GigaHertz max, GigaHertz step);

  [[nodiscard]] GigaHertz min() const noexcept { return min_; }
  [[nodiscard]] GigaHertz max() const noexcept { return max_; }
  [[nodiscard]] GigaHertz step() const noexcept { return step_; }

  /// True if `f` is inside [min, max] (any value, not only grid points).
  [[nodiscard]] bool contains(GigaHertz f) const noexcept;

  /// All grid points min, min+step, ..., max (max always included).
  [[nodiscard]] std::vector<GigaHertz> steps() const;

  /// Nearest grid point to `f`, clamped into range — what a real governor
  /// does with an off-grid userspace request.
  [[nodiscard]] GigaHertz quantize(GigaHertz f) const noexcept;

 private:
  GigaHertz min_;
  GigaHertz max_;
  GigaHertz step_;
};

}  // namespace lcp::dvfs
