#include "dvfs/governor.hpp"

namespace lcp::dvfs {

Governor::Governor(const power::ChipSpec& spec)
    : range_(spec.f_min, spec.f_max, spec.f_step), current_(spec.f_max) {}

Status Governor::set_frequency_locked(GigaHertz f) {
  if (!range_.contains(f)) {
    return Status::out_of_range("requested frequency outside DVFS range");
  }
  current_ = range_.quantize(f);
  ++transitions_;
  return Status::ok();
}

Status Governor::set_frequency(GigaHertz f) {
  const MutexLock lock{mu_};
  return set_frequency_locked(f);
}

Status Governor::set_fraction_of_max(double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::invalid_argument("fraction of f_max must be in (0, 1]");
  }
  const MutexLock lock{mu_};
  return set_frequency_locked(GigaHertz{range_.max().ghz() * fraction});
}

}  // namespace lcp::dvfs
