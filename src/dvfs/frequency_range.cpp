#include "dvfs/frequency_range.hpp"

#include <algorithm>
#include <cmath>

#include "support/status.hpp"

namespace lcp::dvfs {

FrequencyRange::FrequencyRange(GigaHertz min, GigaHertz max, GigaHertz step)
    : min_(min), max_(max), step_(step) {
  LCP_REQUIRE(min.ghz() > 0 && max >= min && step.ghz() > 0,
              "invalid frequency range");
}

bool FrequencyRange::contains(GigaHertz f) const noexcept {
  // Tolerate 1 kHz of floating-point slop at the endpoints.
  constexpr double kSlop = 1e-6;
  return f.ghz() >= min_.ghz() - kSlop && f.ghz() <= max_.ghz() + kSlop;
}

std::vector<GigaHertz> FrequencyRange::steps() const {
  std::vector<GigaHertz> out;
  const double span = max_.ghz() - min_.ghz();
  const auto count = static_cast<std::size_t>(std::floor(span / step_.ghz() + 1e-9));
  out.reserve(count + 2);
  for (std::size_t i = 0; i <= count; ++i) {
    out.push_back(GigaHertz{min_.ghz() + static_cast<double>(i) * step_.ghz()});
  }
  if (out.back().ghz() < max_.ghz() - 1e-9) {
    out.push_back(max_);
  }
  return out;
}

GigaHertz FrequencyRange::quantize(GigaHertz f) const noexcept {
  const double clamped = std::clamp(f.ghz(), min_.ghz(), max_.ghz());
  const double k = std::round((clamped - min_.ghz()) / step_.ghz());
  const double snapped = min_.ghz() + k * step_.ghz();
  return GigaHertz{std::min(snapped, max_.ghz())};
}

}  // namespace lcp::dvfs
