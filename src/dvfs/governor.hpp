#pragma once
// Userspace-governor simulator: the `cpufreq-set` role in the paper's
// methodology. All cores are pinned to one frequency; requests snap to the
// 50 MHz grid and out-of-range requests fail like the real tool does.

#include "dvfs/frequency_range.hpp"
#include "power/chip_model.hpp"
#include "support/status.hpp"
#include "support/thread_annotations.hpp"

namespace lcp::dvfs {

/// Thread-safe: the pinned frequency and transition counter are guarded by
/// one mutex (a sweep running on the pool may consult the governor while a
/// planner thread re-pins it). The range itself is immutable after
/// construction.
class Governor {
 public:
  /// Starts at the chip's max clock (the "Base Clock" baseline of Fig 6).
  explicit Governor(const power::ChipSpec& spec);

  [[nodiscard]] const FrequencyRange& range() const noexcept { return range_; }
  [[nodiscard]] GigaHertz current() const {
    const MutexLock lock{mu_};
    return current_;
  }

  /// Pins all cores to `f` (snapped to grid). Fails if outside the range.
  [[nodiscard]] Status set_frequency(GigaHertz f);

  /// Pins to `fraction * f_max` — the form of the paper's Eqn 3 rule.
  [[nodiscard]] Status set_fraction_of_max(double fraction);

  /// Restores the max clock.
  void reset() {
    const MutexLock lock{mu_};
    current_ = range_.max();
  }

  /// Number of set_frequency transitions performed (diagnostics).
  [[nodiscard]] std::size_t transition_count() const {
    const MutexLock lock{mu_};
    return transitions_;
  }

 private:
  /// Shared body of the two public setters; callers hold mu_.
  Status set_frequency_locked(GigaHertz f) LCP_REQUIRES(mu_);

  FrequencyRange range_;
  mutable Mutex mu_;
  GigaHertz current_ LCP_GUARDED_BY(mu_);
  std::size_t transitions_ LCP_GUARDED_BY(mu_) = 0;
};

}  // namespace lcp::dvfs
