#include "data/noise.hpp"

#include <cmath>

#include "support/status.hpp"

namespace lcp::data {

double smoothstep5(double t) noexcept {
  return t * t * t * (t * (t * 6.0 - 15.0) + 10.0);
}

SmoothNoise3D::SmoothNoise3D(std::size_t n0, std::size_t n1, std::size_t n2,
                             std::size_t cell, Rng& rng)
    : cell_(cell == 0 ? 1 : cell),
      l0_(n0 / cell_ + 2),
      l1_(n1 / cell_ + 2),
      l2_(n2 / cell_ + 2),
      values_(l0_ * l1_ * l2_) {
  for (auto& v : values_) {
    v = rng.normal();
  }
}

double SmoothNoise3D::lattice(std::size_t a, std::size_t b, std::size_t c) const {
  a = a < l0_ ? a : l0_ - 1;
  b = b < l1_ ? b : l1_ - 1;
  c = c < l2_ ? c : l2_ - 1;
  return values_[(a * l1_ + b) * l2_ + c];
}

double SmoothNoise3D::at(std::size_t i, std::size_t j, std::size_t k) const {
  const double fi = static_cast<double>(i) / static_cast<double>(cell_);
  const double fj = static_cast<double>(j) / static_cast<double>(cell_);
  const double fk = static_cast<double>(k) / static_cast<double>(cell_);
  const auto a0 = static_cast<std::size_t>(fi);
  const auto b0 = static_cast<std::size_t>(fj);
  const auto c0 = static_cast<std::size_t>(fk);
  const double ti = smoothstep5(fi - static_cast<double>(a0));
  const double tj = smoothstep5(fj - static_cast<double>(b0));
  const double tk = smoothstep5(fk - static_cast<double>(c0));

  double out = 0.0;
  for (int da = 0; da <= 1; ++da) {
    for (int db = 0; db <= 1; ++db) {
      for (int dc = 0; dc <= 1; ++dc) {
        const double w = (da != 0 ? ti : 1.0 - ti) * (db != 0 ? tj : 1.0 - tj) *
                         (dc != 0 ? tk : 1.0 - tk);
        out += w * lattice(a0 + static_cast<std::size_t>(da),
                           b0 + static_cast<std::size_t>(db),
                           c0 + static_cast<std::size_t>(dc));
      }
    }
  }
  return out;
}

SmoothNoise1D::SmoothNoise1D(std::size_t n, std::size_t cell, Rng& rng)
    : cell_(cell == 0 ? 1 : cell), values_(n / cell_ + 2) {
  for (auto& v : values_) {
    v = rng.normal();
  }
}

double SmoothNoise1D::at(std::size_t i) const {
  const double f = static_cast<double>(i) / static_cast<double>(cell_);
  auto a0 = static_cast<std::size_t>(f);
  if (a0 + 1 >= values_.size()) {
    a0 = values_.size() - 2;
  }
  const double t = smoothstep5(f - static_cast<double>(a0));
  return (1.0 - t) * values_[a0] + t * values_[a0 + 1];
}

}  // namespace lcp::data
