#pragma once
// Dataset registry mirroring Table I of the paper, with two sizing modes:
// paper-scale (the published dimensions) and CI-scale (proportionally
// reduced grids that keep every experiment runnable in seconds).

#include <cstdint>
#include <string>
#include <vector>

#include "data/field.hpp"

namespace lcp::data {

/// Which of the paper's datasets a spec describes.
enum class DatasetId { kCesmAtm, kHacc, kNyx, kIsabel };

/// Sizing mode for generation.
enum class Scale {
  kCi,     ///< reduced grids, a few MB per field (default everywhere)
  kPaper,  ///< the exact Table I dimensions (hundreds of MB per field)
};

/// Static description of one dataset family.
struct DatasetSpec {
  DatasetId id;
  std::string domain;      ///< "CESM-ATM", "HACC", "NYX", "Hurricane-ISABEL"
  Dims paper_dims;         ///< dimensions as printed in the paper
  Dims ci_dims;            ///< reduced dimensions used by default
  double paper_size_mb;    ///< field size the paper reports (Table I)
};

/// Specs for the three Table I datasets, in paper order.
[[nodiscard]] const std::vector<DatasetSpec>& table1_datasets();

/// Spec for the Hurricane-ISABEL validation set (Section VI-A).
[[nodiscard]] const DatasetSpec& isabel_dataset();

/// Looks up a spec by id (Table I datasets + Isabel).
[[nodiscard]] const DatasetSpec& dataset_spec(DatasetId id);

/// Short name ("CESM-ATM", ...).
[[nodiscard]] const char* dataset_name(DatasetId id) noexcept;

/// Generates the dataset's field at the requested scale. For Isabel this
/// returns the pressure field; use generate_isabel directly for other kinds.
[[nodiscard]] Field generate_dataset(DatasetId id, Scale scale,
                                     std::uint64_t seed);

/// Dims actually used for `scale`.
[[nodiscard]] const Dims& dims_for(const DatasetSpec& spec, Scale scale) noexcept;

}  // namespace lcp::data
