#include "data/field.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lcp::data {

Dims::Dims(std::vector<std::size_t> extents) : extents_(std::move(extents)) {
  LCP_REQUIRE(!extents_.empty() && extents_.size() <= 4,
              "field rank must be 1..4");
  for (std::size_t e : extents_) {
    LCP_REQUIRE(e > 0, "field extents must be positive");
  }
}

std::size_t Dims::extent(std::size_t axis) const {
  LCP_REQUIRE(axis < extents_.size(), "axis out of range");
  return extents_[axis];
}

std::size_t Dims::element_count() const noexcept {
  std::size_t n = 1;
  for (std::size_t e : extents_) {
    n *= e;
  }
  return extents_.empty() ? 0 : n;
}

std::size_t Dims::offset(std::span<const std::size_t> index) const {
  LCP_REQUIRE(index.size() == extents_.size(), "index arity != rank");
  std::size_t off = 0;
  for (std::size_t axis = 0; axis < extents_.size(); ++axis) {
    LCP_REQUIRE(index[axis] < extents_[axis], "index out of bounds");
    off = off * extents_[axis] + index[axis];
  }
  return off;
}

std::string Dims::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < extents_.size(); ++i) {
    if (i != 0) {
      out += 'x';
    }
    out += std::to_string(extents_[i]);
  }
  return out;
}

Field::Field(std::string name, Dims dims)
    : name_(std::move(name)),
      dims_(std::move(dims)),
      values_(dims_.element_count(), 0.0F) {}

Field::Field(std::string name, Dims dims, std::vector<float> values)
    : name_(std::move(name)), dims_(std::move(dims)), values_(std::move(values)) {
  LCP_REQUIRE(values_.size() == dims_.element_count(),
              "value count must match dims");
}

Field::Range Field::value_range() const noexcept {
  if (values_.empty()) {
    return {};
  }
  auto [lo, hi] = std::minmax_element(values_.begin(), values_.end());
  return {*lo, *hi};
}

Expected<FieldErrorStats> compare_fields(const Field& original,
                                         const Field& decoded) {
  if (original.element_count() != decoded.element_count()) {
    return Status::invalid_argument("field sizes differ in compare_fields");
  }
  FieldErrorStats stats;
  if (original.element_count() == 0) {
    stats.psnr_db = std::numeric_limits<double>::infinity();
    return stats;
  }
  const auto a = original.values();
  const auto b = decoded.values();
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = std::abs(static_cast<double>(a[i]) - b[i]);
    stats.max_abs_error = std::max(stats.max_abs_error, d);
    sum_abs += d;
    sum_sq += d * d;
    if (a[i] != 0.0F) {
      stats.max_rel_error =
          std::max(stats.max_rel_error, d / std::abs(static_cast<double>(a[i])));
    } else if (d > 0.0) {
      stats.max_rel_error = std::numeric_limits<double>::infinity();
    }
  }
  const auto n = static_cast<double>(a.size());
  stats.mean_abs_error = sum_abs / n;
  stats.rmse = std::sqrt(sum_sq / n);
  const auto range = original.value_range();
  if (stats.rmse == 0.0) {
    stats.psnr_db = std::numeric_limits<double>::infinity();
  } else {
    const double r = std::max(static_cast<double>(range.span()),
                              std::numeric_limits<double>::min());
    stats.psnr_db = 20.0 * std::log10(r / stats.rmse);
  }
  return stats;
}

}  // namespace lcp::data
