#pragma once
// Field: an n-dimensional array of float32 scientific data, the unit of
// compression throughout lcpower (mirrors one SDRBench field file).

#include <cstddef>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "support/status.hpp"
#include "support/units.hpp"

namespace lcp::data {

/// Extents of an n-D field, slowest-varying dimension first (C order).
/// 1 <= rank <= 4 to match the paper's datasets (HACC 1-D ... CESM 3-D,
/// with a slot for 4-D time-series variants).
class Dims {
 public:
  Dims() = default;
  explicit Dims(std::vector<std::size_t> extents);

  [[nodiscard]] static Dims d1(std::size_t n) { return Dims{{n}}; }
  [[nodiscard]] static Dims d2(std::size_t n0, std::size_t n1) {
    return Dims{{n0, n1}};
  }
  [[nodiscard]] static Dims d3(std::size_t n0, std::size_t n1, std::size_t n2) {
    return Dims{{n0, n1, n2}};
  }

  [[nodiscard]] std::size_t rank() const noexcept { return extents_.size(); }
  [[nodiscard]] std::size_t extent(std::size_t axis) const;
  [[nodiscard]] std::size_t element_count() const noexcept;
  [[nodiscard]] const std::vector<std::size_t>& extents() const noexcept {
    return extents_;
  }

  /// Row-major linear offset of (i0, i1, ...) — arity must equal rank.
  [[nodiscard]] std::size_t offset(std::span<const std::size_t> index) const;

  /// "26x1800x3600"-style rendering.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Dims&) const = default;

 private:
  std::vector<std::size_t> extents_;
};

/// Owning float32 n-D array plus a name for reporting.
class Field {
 public:
  Field() = default;
  Field(std::string name, Dims dims);
  Field(std::string name, Dims dims, std::vector<float> values);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Dims& dims() const noexcept { return dims_; }
  [[nodiscard]] std::size_t element_count() const noexcept {
    return values_.size();
  }
  [[nodiscard]] Bytes size_bytes() const noexcept {
    return Bytes{values_.size() * sizeof(float)};
  }

  [[nodiscard]] std::span<const float> values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::span<float> mutable_values() noexcept { return values_; }

  [[nodiscard]] float at(std::span<const std::size_t> index) const {
    return values_[dims_.offset(index)];
  }
  float& at(std::span<const std::size_t> index) {
    return values_[dims_.offset(index)];
  }

  /// Value range of the field; {0,0} when empty.
  struct Range {
    float lo = 0.0F;
    float hi = 0.0F;
    [[nodiscard]] float span() const noexcept { return hi - lo; }
  };
  [[nodiscard]] Range value_range() const noexcept;

 private:
  std::string name_;
  Dims dims_;
  std::vector<float> values_;
};

/// Elementwise quality metrics between an original and its reconstruction.
struct FieldErrorStats {
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  double rmse = 0.0;
  double psnr_db = 0.0;  ///< vs the original's value range; inf if exact
  /// max |x - x'| / |x| over nonzero originals; infinity if any zero
  /// original was reconstructed inexactly.
  double max_rel_error = 0.0;
};

/// Computes error stats; fields must have equal element counts.
[[nodiscard]] Expected<FieldErrorStats> compare_fields(const Field& original,
                                                       const Field& decoded);

}  // namespace lcp::data
