#pragma once
// Synthetic stand-ins for the SDRBench datasets used in the paper (Table I
// plus the Hurricane-ISABEL validation set of Section VI-A).
//
// Substitution note (see DESIGN.md): the paper downloads real simulation
// snapshots; this repo generates fields with the same dimensionality and
// correlation structure, which is what drives lossy-compressor behaviour.
// Every generator is deterministic in (dims, seed).

#include <array>
#include <cstdint>

#include "data/field.hpp"

namespace lcp::data {

/// CESM-ATM-like climate field: `levels` vertically-correlated smooth layers
/// over a lat x lon grid with a strong latitude gradient (temperature-like).
[[nodiscard]] Field generate_cesm_atm(std::size_t levels, std::size_t lat,
                                      std::size_t lon, std::uint64_t seed);

/// Named CESM-ATM field variants: the real dataset carries dozens of
/// variables in distinct value regimes, and codecs behave differently in
/// each. kTemperature is the generate_cesm_atm default; kCloudFraction is
/// hard-clamped to [0, 1] with saturated plateaus (exact-0/exact-1 runs);
/// kHumidity is non-negative with exponential vertical decay.
enum class CesmField { kTemperature, kCloudFraction, kHumidity };

[[nodiscard]] Field generate_cesm_field(CesmField kind, std::size_t levels,
                                        std::size_t lat, std::size_t lon,
                                        std::uint64_t seed);

[[nodiscard]] const char* cesm_field_name(CesmField kind) noexcept;

/// HACC-like particle coordinate stream: 1-D float array of particle
/// positions inside a periodic box, drawn from a clustered (halo) model so
/// the stream is hard to predict pointwise, like real HACC xx/yy/zz fields.
[[nodiscard]] Field generate_hacc(std::size_t particles, std::uint64_t seed);

/// NYX-like baryon density: exp of a smooth Gaussian random field on an
/// n^3 grid (log-normal density, high dynamic range, smooth in log space).
[[nodiscard]] Field generate_nyx(std::size_t n, std::uint64_t seed);

/// Hurricane-ISABEL-like weather field on a (z, y, x) grid. `kind` selects
/// among the six fields used in the paper's validation experiment.
enum class IsabelKind { kPrecip, kPressure, kTemperature, kWindU, kWindV, kWindW };

[[nodiscard]] Field generate_isabel(IsabelKind kind, std::size_t nz,
                                    std::size_t ny, std::size_t nx,
                                    std::uint64_t seed);

/// Short name for an Isabel field kind ("PRECIP", "P", ...).
[[nodiscard]] const char* isabel_kind_name(IsabelKind kind) noexcept;

/// All six Isabel kinds in paper order (PRECIP, P, TC, U, V, W).
[[nodiscard]] const std::array<IsabelKind, 6>& isabel_all_kinds() noexcept;

}  // namespace lcp::data
