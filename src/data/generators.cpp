#include "data/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "data/noise.hpp"
#include "support/rng.hpp"

namespace lcp::data {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

Field generate_cesm_atm(std::size_t levels, std::size_t lat, std::size_t lon,
                        std::uint64_t seed) {
  Rng rng{seed ^ 0xce5011ull};
  Field field{"CESM-ATM", Dims::d3(levels, lat, lon)};
  auto out = field.mutable_values();

  // Horizontal structure: large-scale smooth weather systems plus a zonal
  // (latitude) mean profile; vertical structure: lapse-rate-like decay with
  // level plus level-correlated perturbations.
  const std::size_t cell = std::max<std::size_t>(2, lat / 12);
  SmoothNoise3D synoptic(levels, lat, lon, cell, rng);
  SmoothNoise3D meso(levels, lat, lon, std::max<std::size_t>(2, cell / 4), rng);

  std::size_t idx = 0;
  for (std::size_t l = 0; l < levels; ++l) {
    const double level_frac = static_cast<double>(l) / static_cast<double>(levels);
    const double lapse = 290.0 - 70.0 * level_frac;  // K, surface to stratosphere
    for (std::size_t i = 0; i < lat; ++i) {
      const double phi = kPi * (static_cast<double>(i) / static_cast<double>(lat) - 0.5);
      const double zonal = 25.0 * std::cos(phi) * std::cos(phi);  // warm equator
      for (std::size_t j = 0; j < lon; ++j) {
        const double v = lapse + zonal + 6.0 * synoptic.at(l, i, j) +
                         1.5 * meso.at(l, i, j);
        out[idx++] = static_cast<float>(v);
      }
    }
  }
  return field;
}

const char* cesm_field_name(CesmField kind) noexcept {
  switch (kind) {
    case CesmField::kTemperature:
      return "T";
    case CesmField::kCloudFraction:
      return "CLDTOT";
    case CesmField::kHumidity:
      return "Q";
  }
  return "?";
}

Field generate_cesm_field(CesmField kind, std::size_t levels, std::size_t lat,
                          std::size_t lon, std::uint64_t seed) {
  if (kind == CesmField::kTemperature) {
    return generate_cesm_atm(levels, lat, lon, seed);
  }
  Rng rng{seed ^ (0xce5011ull + static_cast<std::uint64_t>(kind))};
  Field field{cesm_field_name(kind), Dims::d3(levels, lat, lon)};
  auto out = field.mutable_values();

  const std::size_t cell = std::max<std::size_t>(2, lat / 10);
  SmoothNoise3D weather(levels, lat, lon, cell, rng);

  std::size_t idx = 0;
  for (std::size_t l = 0; l < levels; ++l) {
    const double level_frac = static_cast<double>(l) / static_cast<double>(levels);
    for (std::size_t i = 0; i < lat; ++i) {
      const double phi =
          kPi * (static_cast<double>(i) / static_cast<double>(lat) - 0.5);
      for (std::size_t j = 0; j < lon; ++j) {
        const double g = weather.at(l, i, j);
        double v = 0.0;
        if (kind == CesmField::kCloudFraction) {
          // Storm tracks cloud up the mid-latitudes; hard clamping yields
          // the saturated exact-0 / exact-1 plateaus real CLD* fields have.
          const double raw =
              0.5 + 0.8 * g + 0.35 * std::cos(2.0 * phi) - 0.3 * level_frac;
          v = std::min(1.0, std::max(0.0, raw));
        } else {  // humidity: kg/kg, decaying exponentially with altitude
          const double surface =
              0.015 * std::cos(phi) * std::cos(phi) + 0.003;
          const double fluct = std::max(0.0, 1.0 + 0.5 * g);
          v = surface * fluct * std::exp(-4.0 * level_frac);
        }
        out[idx++] = static_cast<float>(v);
      }
    }
  }
  return field;
}

Field generate_hacc(std::size_t particles, std::uint64_t seed) {
  Rng rng{seed ^ 0xaaccull};
  Field field{"HACC", Dims::d1(particles)};
  auto out = field.mutable_values();

  // Halo model: a set of cluster centers in a periodic box; each particle
  // belongs to a halo with an NFW-ish radial spread, or to a uniform
  // background. Particle order is arbitrary (as in real HACC output), which
  // is what makes the stream hard for pointwise predictors.
  constexpr double kBox = 256.0;  // Mpc/h, matches HACC conventions
  const std::size_t halo_count = std::max<std::size_t>(8, particles / 65536);
  std::vector<double> centers(halo_count);
  std::vector<double> radii(halo_count);
  for (std::size_t h = 0; h < halo_count; ++h) {
    centers[h] = rng.uniform(0.0, kBox);
    radii[h] = rng.lognormal(0.0, 0.6);  // ~1 Mpc/h typical
  }
  for (std::size_t p = 0; p < particles; ++p) {
    double x;
    if (rng.uniform() < 0.7) {
      const std::size_t h = rng.uniform_index(halo_count);
      x = centers[h] + radii[h] * rng.normal();
    } else {
      x = rng.uniform(0.0, kBox);
    }
    // Wrap into the periodic box.
    x = std::fmod(x, kBox);
    if (x < 0.0) {
      x += kBox;
    }
    out[p] = static_cast<float>(x);
  }
  return field;
}

Field generate_nyx(std::size_t n, std::uint64_t seed) {
  Rng rng{seed ^ 0x4e7978ull};  // "Nyx"
  Field field{"NYX", Dims::d3(n, n, n)};
  auto out = field.mutable_values();

  // Log-normal baryon overdensity rho/rho_mean = exp(sigma * G(x)) where G
  // is a smooth Gaussian random field; two octaves approximate the
  // cosmological power spectrum's large- and mid-scale structure. The field
  // is kept in normalized (dimensionless) units so the paper's absolute
  // error bounds 1e-1..1e-4 span the meaningful lossy range, as they do for
  // the normalized SDRBench snapshots.
  const std::size_t cell1 = std::max<std::size_t>(2, n / 8);
  const std::size_t cell2 = std::max<std::size_t>(2, n / 32);
  SmoothNoise3D large(n, n, n, cell1, rng);
  SmoothNoise3D mid(n, n, n, cell2, rng);

  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double g = 1.1 * large.at(i, j, k) + 0.5 * mid.at(i, j, k);
        out[idx++] = static_cast<float>(std::exp(1.2 * g));
      }
    }
  }
  return field;
}

const char* isabel_kind_name(IsabelKind kind) noexcept {
  switch (kind) {
    case IsabelKind::kPrecip:
      return "PRECIP";
    case IsabelKind::kPressure:
      return "P";
    case IsabelKind::kTemperature:
      return "TC";
    case IsabelKind::kWindU:
      return "U";
    case IsabelKind::kWindV:
      return "V";
    case IsabelKind::kWindW:
      return "W";
  }
  return "?";
}

const std::array<IsabelKind, 6>& isabel_all_kinds() noexcept {
  static const std::array<IsabelKind, 6> kinds = {
      IsabelKind::kPrecip,   IsabelKind::kPressure, IsabelKind::kTemperature,
      IsabelKind::kWindU,    IsabelKind::kWindV,    IsabelKind::kWindW};
  return kinds;
}

Field generate_isabel(IsabelKind kind, std::size_t nz, std::size_t ny,
                      std::size_t nx, std::uint64_t seed) {
  Rng rng{seed ^ (0x15abe1ull + static_cast<std::uint64_t>(kind))};
  Field field{isabel_kind_name(kind), Dims::d3(nz, ny, nx)};
  auto out = field.mutable_values();

  // A hurricane: cyclonic vortex centered in the domain. Winds follow a
  // Rankine-like tangential profile, pressure dips at the eye, temperature
  // is stratified with a warm core, precipitation is banded and sparse.
  const double cy = 0.52 * static_cast<double>(ny);
  const double cx = 0.48 * static_cast<double>(nx);
  const double r_eye = 0.05 * static_cast<double>(nx);
  const double r_max = 0.45 * static_cast<double>(nx);
  const std::size_t cell = std::max<std::size_t>(2, nx / 16);
  SmoothNoise3D turb(nz, ny, nx, cell, rng);

  std::size_t idx = 0;
  for (std::size_t z = 0; z < nz; ++z) {
    const double zf = static_cast<double>(z) / static_cast<double>(nz);
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const double dy = static_cast<double>(y) - cy;
        const double dx = static_cast<double>(x) - cx;
        const double r = std::sqrt(dx * dx + dy * dy) + 1e-9;
        // Rankine vortex tangential speed (m/s), decaying with altitude.
        double vt;
        if (r < r_eye) {
          vt = 65.0 * (r / r_eye);
        } else {
          vt = 65.0 * std::pow(r_eye / r, 0.6);
        }
        vt *= (1.0 - 0.5 * zf);
        const double noise = turb.at(z, y, x);

        double v = 0.0;
        switch (kind) {
          case IsabelKind::kWindU:
            v = -vt * dy / r + 2.5 * noise;
            break;
          case IsabelKind::kWindV:
            v = vt * dx / r + 2.5 * noise;
            break;
          case IsabelKind::kWindW:
            // Updrafts in the eyewall, weak elsewhere.
            v = 6.0 * std::exp(-((r - r_eye * 1.5) * (r - r_eye * 1.5)) /
                               (2.0 * r_eye * r_eye)) +
                0.4 * noise;
            break;
          case IsabelKind::kPressure: {
            const double drop = 70.0 * std::exp(-r / (0.35 * r_max));
            v = 1013.0 - drop - 90.0 * zf + 0.8 * noise;
            break;
          }
          case IsabelKind::kTemperature: {
            const double warm_core = 8.0 * std::exp(-r / (0.25 * r_max));
            v = 28.0 - 60.0 * zf + warm_core + 0.5 * noise;
            break;
          }
          case IsabelKind::kPrecip: {
            // Spiral rain bands: sparse non-negative field.
            const double theta = std::atan2(dy, dx);
            const double band =
                std::sin(3.0 * theta + 0.05 * r) * std::exp(-r / r_max);
            const double p = band + 0.6 * noise - 0.4;
            v = p > 0.0 ? 25.0 * p * std::exp(-2.5 * zf) : 0.0;
            break;
          }
        }
        out[idx++] = static_cast<float>(v);
      }
    }
  }
  return field;
}

}  // namespace lcp::data
