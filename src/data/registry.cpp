#include "data/registry.hpp"

#include "data/generators.hpp"

namespace lcp::data {

const std::vector<DatasetSpec>& table1_datasets() {
  static const std::vector<DatasetSpec> specs = {
      {DatasetId::kCesmAtm, "CESM-ATM", Dims::d3(26, 1800, 3600),
       Dims::d3(13, 180, 360), 673.9},
      {DatasetId::kHacc, "HACC", Dims::d1(280953867), Dims::d1(2097152),
       1046.9},
      {DatasetId::kNyx, "NYX", Dims::d3(512, 512, 512), Dims::d3(96, 96, 96),
       536.9},
  };
  return specs;
}

const DatasetSpec& isabel_dataset() {
  static const DatasetSpec spec = {DatasetId::kIsabel, "Hurricane-ISABEL",
                                   Dims::d3(100, 500, 500),
                                   Dims::d3(32, 100, 100), 95.0};
  return spec;
}

const DatasetSpec& dataset_spec(DatasetId id) {
  if (id == DatasetId::kIsabel) {
    return isabel_dataset();
  }
  for (const auto& spec : table1_datasets()) {
    if (spec.id == id) {
      return spec;
    }
  }
  LCP_REQUIRE(false, "unknown dataset id");
  return isabel_dataset();  // unreachable
}

const char* dataset_name(DatasetId id) noexcept {
  switch (id) {
    case DatasetId::kCesmAtm:
      return "CESM-ATM";
    case DatasetId::kHacc:
      return "HACC";
    case DatasetId::kNyx:
      return "NYX";
    case DatasetId::kIsabel:
      return "Hurricane-ISABEL";
  }
  return "?";
}

const Dims& dims_for(const DatasetSpec& spec, Scale scale) noexcept {
  return scale == Scale::kPaper ? spec.paper_dims : spec.ci_dims;
}

Field generate_dataset(DatasetId id, Scale scale, std::uint64_t seed) {
  const DatasetSpec& spec = dataset_spec(id);
  const Dims& dims = dims_for(spec, scale);
  switch (id) {
    case DatasetId::kCesmAtm:
      return generate_cesm_atm(dims.extent(0), dims.extent(1), dims.extent(2),
                               seed);
    case DatasetId::kHacc:
      return generate_hacc(dims.extent(0), seed);
    case DatasetId::kNyx:
      return generate_nyx(dims.extent(0), seed);
    case DatasetId::kIsabel:
      return generate_isabel(IsabelKind::kPressure, dims.extent(0),
                             dims.extent(1), dims.extent(2), seed);
  }
  LCP_REQUIRE(false, "unknown dataset id");
  return Field{};
}

}  // namespace lcp::data
