#pragma once
// Smooth correlated-noise primitives backing the synthetic dataset
// generators: value-noise lattices interpolated to the target grid give
// fields with tunable spatial correlation length, the property that actually
// determines lossy-compressor behaviour on scientific data.

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace lcp::data {

/// A lattice of Gaussian noise evaluated with smoothstep interpolation.
/// `cell` is the correlation length in grid points (>= 1).
class SmoothNoise3D {
 public:
  SmoothNoise3D(std::size_t n0, std::size_t n1, std::size_t n2,
                std::size_t cell, Rng& rng);

  /// Interpolated noise value at integer grid point (i, j, k).
  [[nodiscard]] double at(std::size_t i, std::size_t j, std::size_t k) const;

 private:
  [[nodiscard]] double lattice(std::size_t a, std::size_t b, std::size_t c) const;

  std::size_t cell_;
  std::size_t l0_, l1_, l2_;  // lattice extents
  std::vector<double> values_;
};

/// 1-D smooth noise with correlation length `cell`.
class SmoothNoise1D {
 public:
  SmoothNoise1D(std::size_t n, std::size_t cell, Rng& rng);
  [[nodiscard]] double at(std::size_t i) const;

 private:
  std::size_t cell_;
  std::vector<double> values_;
};

/// Quintic smoothstep used by both noise classes (C2-continuous).
[[nodiscard]] double smoothstep5(double t) noexcept;

}  // namespace lcp::data
