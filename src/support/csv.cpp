#include "support/csv.hpp"

#include <cstdio>

namespace lcp {
namespace {

std::string escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

std::string render_row(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += escape(cells[i]);
  }
  out += '\n';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LCP_REQUIRE(!headers_.empty(), "csv needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  LCP_REQUIRE(cells.size() == headers_.size(), "csv row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::render() const {
  std::string out = render_row(headers_);
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

Status CsvWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::unavailable("cannot open csv output: " + path);
  }
  const std::string body = render();
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Status::unavailable("short write to csv output: " + path);
  }
  return Status::ok();
}

}  // namespace lcp
