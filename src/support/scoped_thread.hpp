#pragma once
// Join-on-destruction thread handle. The only std::thread owners outside
// src/support/ should be gone: pipeline stages (e.g. the streaming dump
// writer) hold a ScopedThread instead, so an early return or an exception
// between spawn and join can never leak a running thread over dangling
// stack references (std::thread would call std::terminate; ScopedThread
// blocks until the stage drains). tools/lint.py enforces the "no naked
// std::thread outside support/" invariant.

#include <thread>
#include <utility>

namespace lcp {

class ScopedThread {
 public:
  ScopedThread() noexcept = default;

  template <typename F, typename... Args>
  explicit ScopedThread(F&& f, Args&&... args)
      : thread_(std::forward<F>(f), std::forward<Args>(args)...) {}

  ScopedThread(ScopedThread&&) noexcept = default;
  ScopedThread& operator=(ScopedThread&& other) noexcept {
    if (this != &other) {
      join();
      thread_ = std::move(other.thread_);
    }
    return *this;
  }

  ScopedThread(const ScopedThread&) = delete;
  ScopedThread& operator=(const ScopedThread&) = delete;

  ~ScopedThread() { join(); }

  /// Blocks until the thread finishes; no-op if never started or already
  /// joined. Pipelines still call this explicitly at the point where the
  /// stage must have drained — the destructor is the safety net.
  void join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  [[nodiscard]] bool joinable() const noexcept { return thread_.joinable(); }

 private:
  std::thread thread_;
};

}  // namespace lcp
