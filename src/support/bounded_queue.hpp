#pragma once
// Bounded blocking queue: the backpressure primitive of the streaming dump
// pipeline (compress -> frame -> write). Producers block when the queue is
// full — a slow wire throttles compression instead of buffering the whole
// dump in memory — and the consumer blocks when it is empty, so the writer
// thread sleeps whenever compression is the bottleneck.
//
// Supports multiple producers and multiple consumers (plain mutex + two
// condition variables; the pipeline uses it SPSC but the stress tests and
// future sharded writers run it MPMC). close() initiates shutdown: pushes
// are refused, pops drain what remains and then report exhaustion.
//
// Locking: everything mutable is guarded by mutex_ and annotated for
// Clang's -Wthread-safety analysis; the wait loops are written inline
// (not as predicate lambdas) so the analysis can see the guarded reads.

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "support/status.hpp"
#include "support/thread_annotations.hpp"

namespace lcp {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    LCP_REQUIRE(capacity > 0, "bounded queue needs positive capacity");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room, then enqueues. Returns false (and drops
  /// `item`) when the queue was closed before room appeared.
  [[nodiscard]] bool push(T item) {
    MutexLock lock{mutex_};
    while (!closed_ && items_.size() >= capacity_) {
      not_full_.wait(lock);
    }
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    ++total_pushed_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues only if room is available right now; never blocks.
  [[nodiscard]] bool try_push(T item) {
    {
      MutexLock lock{mutex_};
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
      ++total_pushed_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// nullopt means no item will ever arrive again.
  [[nodiscard]] std::optional<T> pop() {
    MutexLock lock{mutex_};
    while (!closed_ && items_.empty()) {
      not_empty_.wait(lock);
    }
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Dequeues only if an item is available right now; never blocks.
  [[nodiscard]] std::optional<T> try_pop() {
    std::optional<T> item;
    {
      MutexLock lock{mutex_};
      if (items_.empty()) {
        return std::nullopt;
      }
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Refuses further pushes and wakes every waiter. Items already queued
  /// remain poppable; idempotent.
  void close() {
    {
      MutexLock lock{mutex_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock{mutex_};
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Items ever accepted by push/try_push (conservation checks).
  [[nodiscard]] std::uint64_t total_pushed() const {
    MutexLock lock{mutex_};
    return total_pushed_;
  }

 private:
  mutable Mutex mutex_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ LCP_GUARDED_BY(mutex_);
  const std::size_t capacity_;
  bool closed_ LCP_GUARDED_BY(mutex_) = false;
  std::uint64_t total_pushed_ LCP_GUARDED_BY(mutex_) = 0;
};

}  // namespace lcp
