#pragma once
// Bounded blocking queue: the backpressure primitive of the streaming dump
// pipeline (compress -> frame -> write). Producers block when the queue is
// full — a slow wire throttles compression instead of buffering the whole
// dump in memory — and the consumer blocks when it is empty, so the writer
// thread sleeps whenever compression is the bottleneck.
//
// Supports multiple producers and multiple consumers (plain mutex + two
// condition variables; the pipeline uses it SPSC but the stress tests and
// future sharded writers run it MPMC). close() initiates shutdown: pushes
// are refused, pops drain what remains and then report exhaustion.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/status.hpp"

namespace lcp {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    LCP_REQUIRE(capacity > 0, "bounded queue needs positive capacity");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room, then enqueues. Returns false (and drops
  /// `item`) when the queue was closed before room appeared.
  bool push(T item) {
    std::unique_lock lock{mutex_};
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    ++total_pushed_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues only if room is available right now; never blocks.
  bool try_push(T item) {
    {
      std::lock_guard lock{mutex_};
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
      ++total_pushed_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// nullopt means no item will ever arrive again.
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Dequeues only if an item is available right now; never blocks.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::lock_guard lock{mutex_};
      if (items_.empty()) {
        return std::nullopt;
      }
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Refuses further pushes and wakes every waiter. Items already queued
  /// remain poppable; idempotent.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Items ever accepted by push/try_push (conservation checks).
  [[nodiscard]] std::uint64_t total_pushed() const {
    std::lock_guard lock{mutex_};
    return total_pushed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace lcp
