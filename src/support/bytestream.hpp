#pragma once
// Byte-granular serialization helpers for compressed-container headers.
// Fixed little-endian layout so containers are portable across hosts.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace lcp {

/// Append-only byte writer with little-endian primitive encoding.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { bytes_.push_back(v); }
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_f64(double v);
  void write_bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) byte blob.
  void write_blob(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) UTF-8 string.
  void write_string(std::string_view s);

  /// Pre-sizes the buffer (hot paths: avoids growth reallocations).
  void reserve(std::size_t bytes) { bytes_.reserve(bytes); }

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> finish() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential byte reader; every read is bounds-checked and fails with a
/// CORRUPT_DATA status rather than reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  [[nodiscard]] Expected<std::uint8_t> read_u8() noexcept;
  [[nodiscard]] Expected<std::uint16_t> read_u16() noexcept;
  [[nodiscard]] Expected<std::uint32_t> read_u32() noexcept;
  [[nodiscard]] Expected<std::uint64_t> read_u64() noexcept;
  [[nodiscard]] Expected<std::int64_t> read_i64() noexcept;
  [[nodiscard]] Expected<double> read_f64() noexcept;
  /// Reads `n` raw bytes as a subspan of the underlying buffer (no copy).
  [[nodiscard]] Expected<std::span<const std::uint8_t>> read_bytes(
      std::size_t n) noexcept;
  /// Reads a blob written by ByteWriter::write_blob.
  [[nodiscard]] Expected<std::span<const std::uint8_t>> read_blob() noexcept;
  [[nodiscard]] Expected<std::string> read_string() noexcept;

  /// Advances the cursor by `n` bytes; fails (cursor unmoved) if fewer
  /// than `n` bytes remain, so hostile length fields cannot push the
  /// cursor out of bounds.
  [[nodiscard]] Status skip(std::size_t n) noexcept;

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace lcp
