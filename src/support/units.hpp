#pragma once
// Strongly-typed physical quantities used throughout lcpower.
//
// These are thin wrappers over double that prevent accidental mixing of
// frequencies, powers, energies and times in the power-model code, where a
// silent Hz-vs-GHz slip would corrupt every regression downstream.

#include <cmath>
#include <compare>
#include <cstdint>

namespace lcp {

/// CPU clock frequency. Canonical unit: gigahertz.
class GigaHertz {
 public:
  constexpr GigaHertz() noexcept = default;
  constexpr explicit GigaHertz(double ghz) noexcept : ghz_(ghz) {}

  [[nodiscard]] static constexpr GigaHertz from_mhz(double mhz) noexcept {
    return GigaHertz{mhz / 1000.0};
  }
  [[nodiscard]] static constexpr GigaHertz from_hz(double hz) noexcept {
    return GigaHertz{hz / 1e9};
  }

  [[nodiscard]] constexpr double ghz() const noexcept { return ghz_; }
  [[nodiscard]] constexpr double mhz() const noexcept { return ghz_ * 1000.0; }
  [[nodiscard]] constexpr double hz() const noexcept { return ghz_ * 1e9; }

  constexpr auto operator<=>(const GigaHertz&) const noexcept = default;

  constexpr GigaHertz operator+(GigaHertz o) const noexcept {
    return GigaHertz{ghz_ + o.ghz_};
  }
  constexpr GigaHertz operator-(GigaHertz o) const noexcept {
    return GigaHertz{ghz_ - o.ghz_};
  }
  constexpr GigaHertz operator*(double s) const noexcept {
    return GigaHertz{ghz_ * s};
  }
  constexpr double operator/(GigaHertz o) const noexcept { return ghz_ / o.ghz_; }

 private:
  double ghz_ = 0.0;
};

/// Electrical power in watts.
class Watts {
 public:
  constexpr Watts() noexcept = default;
  constexpr explicit Watts(double w) noexcept : w_(w) {}

  [[nodiscard]] constexpr double watts() const noexcept { return w_; }

  constexpr auto operator<=>(const Watts&) const noexcept = default;
  constexpr Watts operator+(Watts o) const noexcept { return Watts{w_ + o.w_}; }
  constexpr Watts operator-(Watts o) const noexcept { return Watts{w_ - o.w_}; }
  constexpr Watts operator*(double s) const noexcept { return Watts{w_ * s}; }
  constexpr double operator/(Watts o) const noexcept { return w_ / o.w_; }

 private:
  double w_ = 0.0;
};

/// Wall-clock duration in seconds.
class Seconds {
 public:
  constexpr Seconds() noexcept = default;
  constexpr explicit Seconds(double s) noexcept : s_(s) {}

  [[nodiscard]] static constexpr Seconds from_ms(double ms) noexcept {
    return Seconds{ms / 1000.0};
  }

  [[nodiscard]] constexpr double seconds() const noexcept { return s_; }
  [[nodiscard]] constexpr double ms() const noexcept { return s_ * 1000.0; }

  constexpr auto operator<=>(const Seconds&) const noexcept = default;
  constexpr Seconds operator+(Seconds o) const noexcept {
    return Seconds{s_ + o.s_};
  }
  constexpr Seconds operator-(Seconds o) const noexcept {
    return Seconds{s_ - o.s_};
  }
  constexpr Seconds operator*(double k) const noexcept { return Seconds{s_ * k}; }
  constexpr double operator/(Seconds o) const noexcept { return s_ / o.s_; }

 private:
  double s_ = 0.0;
};

/// Energy in joules.
class Joules {
 public:
  constexpr Joules() noexcept = default;
  constexpr explicit Joules(double j) noexcept : j_(j) {}

  [[nodiscard]] static constexpr Joules from_kj(double kj) noexcept {
    return Joules{kj * 1000.0};
  }

  [[nodiscard]] constexpr double joules() const noexcept { return j_; }
  [[nodiscard]] constexpr double kj() const noexcept { return j_ / 1000.0; }

  constexpr auto operator<=>(const Joules&) const noexcept = default;
  constexpr Joules operator+(Joules o) const noexcept { return Joules{j_ + o.j_}; }
  constexpr Joules operator-(Joules o) const noexcept { return Joules{j_ - o.j_}; }
  constexpr Joules operator*(double s) const noexcept { return Joules{j_ * s}; }
  constexpr double operator/(Joules o) const noexcept { return j_ / o.j_; }

 private:
  double j_ = 0.0;
};

/// E = P * t  (Eqn 1 of the paper).
constexpr Joules operator*(Watts p, Seconds t) noexcept {
  return Joules{p.watts() * t.seconds()};
}
constexpr Joules operator*(Seconds t, Watts p) noexcept { return p * t; }

/// P = E / t.
constexpr Watts operator/(Joules e, Seconds t) noexcept {
  return Watts{e.joules() / t.seconds()};
}

/// t = E / P.
constexpr Seconds operator/(Joules e, Watts p) noexcept {
  return Seconds{e.joules() / p.watts()};
}

/// Electrical potential in volts (for the V/f curve of a chip model).
class Volts {
 public:
  constexpr Volts() noexcept = default;
  constexpr explicit Volts(double v) noexcept : v_(v) {}
  [[nodiscard]] constexpr double volts() const noexcept { return v_; }
  constexpr auto operator<=>(const Volts&) const noexcept = default;

 private:
  double v_ = 0.0;
};

/// Data sizes, canonical unit: bytes.
class Bytes {
 public:
  constexpr Bytes() noexcept = default;
  constexpr explicit Bytes(std::uint64_t b) noexcept : b_(b) {}

  [[nodiscard]] static constexpr Bytes from_mb(double mb) noexcept {
    return Bytes{static_cast<std::uint64_t>(mb * 1e6)};
  }
  [[nodiscard]] static constexpr Bytes from_gb(double gb) noexcept {
    return Bytes{static_cast<std::uint64_t>(gb * 1e9)};
  }
  [[nodiscard]] static constexpr Bytes from_gib(double gib) noexcept {
    return Bytes{static_cast<std::uint64_t>(gib * 1024.0 * 1024.0 * 1024.0)};
  }

  [[nodiscard]] constexpr std::uint64_t bytes() const noexcept { return b_; }
  [[nodiscard]] constexpr double mb() const noexcept { return static_cast<double>(b_) / 1e6; }
  [[nodiscard]] constexpr double gb() const noexcept { return static_cast<double>(b_) / 1e9; }

  constexpr auto operator<=>(const Bytes&) const noexcept = default;
  constexpr Bytes operator+(Bytes o) const noexcept { return Bytes{b_ + o.b_}; }
  constexpr double operator/(Bytes o) const noexcept {
    return static_cast<double>(b_) / static_cast<double>(o.b_);
  }

 private:
  std::uint64_t b_ = 0;
};

}  // namespace lcp
