#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace lcp {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept {
  if (values.size() < 2) {
    return 0.0;
  }
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) {
    const double d = v - m;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) noexcept {
  return std::sqrt(variance(values));
}

double t_quantile_975(std::size_t dof) noexcept {
  // Standard two-sided 95% t-table; dof >= 30 uses the normal limit.
  static constexpr double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045};
  if (dof == 0) {
    return 0.0;
  }
  if (dof < std::size(kTable)) {
    return kTable[dof];
  }
  return 1.96;
}

SampleSummary summarize(std::span<const double> values) noexcept {
  SampleSummary s;
  if (values.empty()) {
    return s;
  }
  s.count = values.size();
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  if (s.count > 1) {
    s.ci95_half = t_quantile_975(s.count - 1) * s.stddev /
                  std::sqrt(static_cast<double>(s.count));
  }
  return s;
}

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.size() < 2) {
    return 0.0;
  }
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

SampleSummary RunningStats::summary() const noexcept {
  SampleSummary s;
  s.count = n_;
  s.mean = mean_;
  s.stddev = stddev();
  s.min = min_;
  s.max = max_;
  if (n_ > 1) {
    s.ci95_half =
        t_quantile_975(n_ - 1) * s.stddev / std::sqrt(static_cast<double>(n_));
  }
  return s;
}

}  // namespace lcp
