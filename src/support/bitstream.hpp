#pragma once
// Bit-granular output/input streams used by the Huffman coder (SZ path) and
// the embedded bit-plane coder (ZFP path).
//
// Writing is little-endian within a 64-bit accumulator flushed to a byte
// vector; reading mirrors it exactly, so any sequence of writes followed by
// the same sequence of reads round-trips bit-for-bit (property-tested).

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "support/status.hpp"

namespace lcp {

/// Append-only bit writer.
class BitWriter {
 public:
  /// Writes the low `bits` bits of `value` (LSB first). bits in [0, 64].
  void write_bits(std::uint64_t value, unsigned bits);

  /// Writes a single bit.
  void write_bit(bool bit) { write_bits(bit ? 1u : 0u, 1); }

  /// Unary code: `n` zeros followed by a one.
  void write_unary(unsigned n);

  /// Pre-sizes the byte buffer (hot paths: a Huffman encoder that knows
  /// the payload size avoids every growth reallocation).
  void reserve(std::size_t bytes) { bytes_.reserve(bytes); }

  /// Flushes any partial byte (zero padding) and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// Bits written so far (excluding padding).
  [[nodiscard]] std::uint64_t bit_count() const noexcept { return bit_count_; }

 private:
  void flush_accumulator();

  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  unsigned acc_bits_ = 0;
  std::uint64_t bit_count_ = 0;
};

/// Sequential bit reader over a byte span.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  /// Reads `bits` bits (LSB-first order matching BitWriter). bits in [0, 64].
  /// Reading past the end pads with zero bits and marks overflow.
  std::uint64_t read_bits(unsigned bits) noexcept;

  bool read_bit() noexcept { return read_bits(1) != 0; }

  /// Returns what read_bits(bits) would, without consuming anything or
  /// marking overflow (past-the-end bits read as zero). bits in [0, 64].
  [[nodiscard]] std::uint64_t peek_bits(unsigned bits) const noexcept;

  /// peek_bits with a compile-time width: whenever a full 8-byte window
  /// starting at the cursor's byte is in bounds, one unaligned 64-bit load
  /// replaces the byte-gather. Bits is capped at 57 because the load
  /// discards up to 7 cursor-alignment bits; near the final word it
  /// delegates to peek_bits, which zero-pads past the end — identical
  /// results everywhere (regression-pinned by bitstream_test).
  template <unsigned Bits>
  [[nodiscard]] std::uint64_t peek_fixed() const noexcept {
    static_assert(Bits >= 1 && Bits <= 57,
                  "peek_fixed reads one unaligned 64-bit word and may "
                  "discard up to 7 alignment bits");
    const auto byte = static_cast<std::size_t>(pos_ >> 3);
    if (byte + sizeof(std::uint64_t) <= bytes_.size()) {
      std::uint64_t word = 0;
      std::memcpy(&word, bytes_.data() + byte, sizeof(word));
      word >>= (pos_ & 7);
      return word & ((std::uint64_t{1} << Bits) - 1);
    }
    return peek_bits(Bits);
  }

  /// Advances the cursor by `bits` without extracting them. Skipping past
  /// the end marks overflow, exactly as reading those bits would; the
  /// cursor saturates at the end of the buffer, so arbitrarily large
  /// (hostile) skip counts cannot wrap it back into bounds. Inline: the
  /// Huffman fast loop pairs it with peek_fixed per emitted symbol.
  void skip_bits(std::uint64_t bits) noexcept {
    const auto total = static_cast<std::uint64_t>(bytes_.size()) * 8;
    // Overflow-safe form of `pos_ + bits > total`: a hostile length field
    // near 2^64 must not wrap the cursor back into bounds.
    if (bits > total - pos_) {
      overflow_ = true;
      pos_ = total;
      return;
    }
    pos_ += bits;
  }

  /// Reads a unary code written by BitWriter::write_unary.
  /// Returns the count of zeros before the terminating one. If the stream
  /// ends before a one is seen, marks overflow and returns the zeros seen.
  unsigned read_unary() noexcept;

  /// Bits consumed so far.
  [[nodiscard]] std::uint64_t bit_position() const noexcept { return pos_; }

  /// True once a read crossed the end of the underlying buffer.
  [[nodiscard]] bool overflowed() const noexcept { return overflow_; }

  /// Bits remaining in the buffer.
  [[nodiscard]] std::uint64_t bits_remaining() const noexcept {
    const std::uint64_t total = static_cast<std::uint64_t>(bytes_.size()) * 8;
    return pos_ >= total ? 0 : total - pos_;
  }

 private:
  /// Gathers `bits` bits starting at bit offset `pos` (all within bounds).
  [[nodiscard]] std::uint64_t extract(std::uint64_t pos,
                                      unsigned bits) const noexcept;

  std::span<const std::uint8_t> bytes_;
  std::uint64_t pos_ = 0;
  bool overflow_ = false;
};

}  // namespace lcp
