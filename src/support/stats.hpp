#pragma once
// Descriptive statistics used for repeated-measurement aggregation and the
// 95% confidence bands in the paper's characteristic plots (Figs 1-4).

#include <cstddef>
#include <span>
#include <vector>

namespace lcp {

/// Summary of a sample: mean, stddev (sample, n-1), and a 95% CI half-width.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;     ///< sample standard deviation (n-1 denominator)
  double ci95_half = 0.0;  ///< t-based 95% confidence half-width of the mean
  double min = 0.0;
  double max = 0.0;
};

/// Computes the summary of `values`. Empty input yields a zeroed summary.
[[nodiscard]] SampleSummary summarize(std::span<const double> values) noexcept;

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> values) noexcept;

/// Sample variance (n-1); 0 for fewer than 2 values.
[[nodiscard]] double variance(std::span<const double> values) noexcept;

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> values) noexcept;

/// Two-sided Student-t 0.975 quantile for `dof` degrees of freedom.
/// Exact table for small dof, asymptotic 1.96 beyond.
[[nodiscard]] double t_quantile_975(std::size_t dof) noexcept;

/// Pearson correlation of two equal-length samples; 0 if degenerate.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y) noexcept;

/// Online accumulator (Welford) for streaming summaries.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] SampleSummary summary() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lcp
