#pragma once
// Minimal leveled logging to stderr. Benches and examples use this for
// progress lines; the library itself stays quiet below kWarn.

#include <string_view>

namespace lcp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits "[lcp level] message\n" to stderr if `level` passes the threshold.
void log_message(LogLevel level, std::string_view message);

void log_debug(std::string_view message);
void log_info(std::string_view message);
void log_warn(std::string_view message);
void log_error(std::string_view message);

}  // namespace lcp
