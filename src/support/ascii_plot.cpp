#include "support/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace lcp {

std::string render_plot(const std::vector<PlotSeries>& series,
                        const PlotOptions& options) {
  const int w = std::max(options.width, 16);
  const int h = std::max(options.height, 6);

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  bool any = false;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < std::min(s.x.size(), s.y.size()); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) {
        continue;
      }
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      any = true;
    }
  }
  if (!any) {
    return "(empty plot)\n";
  }
  if (xmax <= xmin) {
    xmax = xmin + 1.0;
  }
  if (ymax <= ymin) {
    ymax = ymin + 1.0;
  }
  // A little headroom so extreme points are not on the border.
  const double ypad = 0.04 * (ymax - ymin);
  ymin -= ypad;
  ymax += ypad;

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < std::min(s.x.size(), s.y.size()); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) {
        continue;
      }
      int col = static_cast<int>(
          std::lround((s.x[i] - xmin) / (xmax - xmin) * (w - 1)));
      int row = static_cast<int>(
          std::lround((s.y[i] - ymin) / (ymax - ymin) * (h - 1)));
      col = std::clamp(col, 0, w - 1);
      row = std::clamp(row, 0, h - 1);
      grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] =
          s.glyph;
    }
  }

  std::string out;
  if (!options.title.empty()) {
    out += options.title;
    out += '\n';
  }
  char buf[64];
  for (int r = 0; r < h; ++r) {
    // y-axis tick on first, middle and last rows.
    const double yv = ymax - (ymax - ymin) * r / (h - 1);
    if (r == 0 || r == h - 1 || r == h / 2) {
      std::snprintf(buf, sizeof(buf), "%9.3f |", yv);
    } else {
      std::snprintf(buf, sizeof(buf), "%9s |", "");
    }
    out += buf;
    out += grid[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += "          +";
  out.append(static_cast<std::size_t>(w), '-');
  out += '\n';
  std::snprintf(buf, sizeof(buf), "%9s  %-10.3f", "", xmin);
  out += buf;
  const int mid_pad = w - 22;
  if (mid_pad > 0) {
    std::snprintf(buf, sizeof(buf), "%*.3f", mid_pad, (xmin + xmax) / 2);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%10.3f", xmax);
  out += buf;
  out += '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out += "          x: " + options.x_label + "   y: " + options.y_label + '\n';
  }
  std::string legend = "          legend:";
  for (const auto& s : series) {
    legend += ' ';
    legend += s.glyph;
    legend += '=';
    legend += s.name;
  }
  out += legend;
  out += '\n';
  return out;
}

}  // namespace lcp
