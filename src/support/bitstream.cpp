#include "support/bitstream.hpp"

#include <algorithm>
#include <bit>

namespace lcp {

void BitWriter::write_bits(std::uint64_t value, unsigned bits) {
  LCP_REQUIRE(bits <= 64, "write_bits accepts at most 64 bits");
  if (bits == 0) {
    return;
  }
  if (bits < 64) {
    value &= (std::uint64_t{1} << bits) - 1;
  }
  bit_count_ += bits;

  const unsigned space = 64 - acc_bits_;
  if (bits <= space) {
    acc_ |= value << acc_bits_;
    acc_bits_ += bits;
    if (acc_bits_ == 64) {
      flush_accumulator();
    }
    return;
  }
  // Split across the accumulator boundary.
  acc_ |= value << acc_bits_;
  const unsigned first = space;
  acc_bits_ = 64;
  flush_accumulator();
  acc_ = value >> first;
  acc_bits_ = bits - first;
}

void BitWriter::write_unary(unsigned n) {
  // Zeros in word-sized batches instead of bit-by-bit.
  while (n >= 64) {
    write_bits(0, 64);
    n -= 64;
  }
  write_bits(std::uint64_t{1} << n, n + 1);
}

void BitWriter::flush_accumulator() {
  for (unsigned i = 0; i < acc_bits_; i += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(acc_ >> i));
  }
  acc_ = 0;
  acc_bits_ = 0;
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (acc_bits_ > 0) {
    // Round partial accumulator up to whole bytes.
    const unsigned whole = (acc_bits_ + 7) / 8 * 8;
    acc_bits_ = whole;
    flush_accumulator();
  }
  return std::move(bytes_);
}

std::uint64_t BitReader::extract(std::uint64_t pos,
                                 unsigned bits) const noexcept {
  if (bits == 0) {
    return 0;
  }
  const std::size_t first = static_cast<std::size_t>(pos >> 3);
  const unsigned off = static_cast<unsigned>(pos & 7);
  const std::size_t nbytes = (off + bits + 7) >> 3;  // <= 9
  std::uint64_t word = 0;
  const std::size_t low = std::min<std::size_t>(nbytes, 8);
  for (std::size_t i = 0; i < low; ++i) {
    word |= static_cast<std::uint64_t>(bytes_[first + i]) << (8 * i);
  }
  word >>= off;
  if (nbytes == 9) {
    // off > 0 here, so the shift amount is in (0, 64).
    word |= static_cast<std::uint64_t>(bytes_[first + 8]) << (64 - off);
  }
  if (bits < 64) {
    word &= (std::uint64_t{1} << bits) - 1;
  }
  return word;
}

std::uint64_t BitReader::read_bits(unsigned bits) noexcept {
  if (bits == 0) {
    return 0;
  }
  const std::uint64_t total = static_cast<std::uint64_t>(bytes_.size()) * 8;
  // pos_ never exceeds total (reads and skips saturate there), so
  // pos_ + bits cannot wrap for bits <= 64.
  if (pos_ + bits <= total) {
    const std::uint64_t out = extract(pos_, bits);
    pos_ += bits;
    return out;
  }
  // Crossing the end: available bits, zero-padded, and overflow marked —
  // byte-granular like the hardware-free reference reader. The cursor
  // saturates at the end so no later read can compute an in-bounds-looking
  // position from a wrapped cursor.
  const unsigned avail = static_cast<unsigned>(total - pos_);
  const std::uint64_t out = extract(pos_, std::min(avail, bits));
  overflow_ = true;
  pos_ = total;
  return out;
}

std::uint64_t BitReader::peek_bits(unsigned bits) const noexcept {
  if (bits == 0) {
    return 0;
  }
  const std::uint64_t total = static_cast<std::uint64_t>(bytes_.size()) * 8;
  if (pos_ + bits <= total) {
    return extract(pos_, bits);
  }
  const unsigned avail = static_cast<unsigned>(total - pos_);
  return extract(pos_, std::min(avail, bits));
}

unsigned BitReader::read_unary() noexcept {
  unsigned zeros = 0;
  for (;;) {
    const std::uint64_t remaining = bits_remaining();
    if (remaining == 0) {
      overflow_ = true;
      return zeros;
    }
    const unsigned take =
        static_cast<unsigned>(std::min<std::uint64_t>(remaining, 64));
    const std::uint64_t word = peek_bits(take);
    if (word == 0) {
      zeros += take;
      pos_ += take;
      continue;
    }
    const unsigned tz = static_cast<unsigned>(std::countr_zero(word));
    zeros += tz;
    pos_ += tz + 1;
    return zeros;
  }
}

}  // namespace lcp
