#include "support/bitstream.hpp"

namespace lcp {

void BitWriter::write_bits(std::uint64_t value, unsigned bits) {
  LCP_REQUIRE(bits <= 64, "write_bits accepts at most 64 bits");
  if (bits == 0) {
    return;
  }
  if (bits < 64) {
    value &= (std::uint64_t{1} << bits) - 1;
  }
  bit_count_ += bits;

  const unsigned space = 64 - acc_bits_;
  if (bits <= space) {
    acc_ |= value << acc_bits_;
    acc_bits_ += bits;
    if (acc_bits_ == 64) {
      flush_accumulator();
    }
    return;
  }
  // Split across the accumulator boundary.
  acc_ |= value << acc_bits_;
  const unsigned first = space;
  acc_bits_ = 64;
  flush_accumulator();
  acc_ = value >> first;
  acc_bits_ = bits - first;
}

void BitWriter::write_unary(unsigned n) {
  for (unsigned i = 0; i < n; ++i) {
    write_bit(false);
  }
  write_bit(true);
}

void BitWriter::flush_accumulator() {
  for (unsigned i = 0; i < acc_bits_; i += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(acc_ >> i));
  }
  acc_ = 0;
  acc_bits_ = 0;
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (acc_bits_ > 0) {
    // Round partial accumulator up to whole bytes.
    const unsigned whole = (acc_bits_ + 7) / 8 * 8;
    acc_bits_ = whole;
    flush_accumulator();
  }
  return std::move(bytes_);
}

std::uint64_t BitReader::read_bits(unsigned bits) noexcept {
  if (bits == 0) {
    return 0;
  }
  std::uint64_t out = 0;
  for (unsigned i = 0; i < bits; ++i) {
    const std::uint64_t byte_index = (pos_ + i) >> 3;
    std::uint64_t bit = 0;
    if (byte_index < bytes_.size()) {
      bit = (bytes_[byte_index] >> ((pos_ + i) & 7)) & 1u;
    } else {
      overflow_ = true;
    }
    out |= bit << i;
  }
  pos_ += bits;
  return out;
}

unsigned BitReader::read_unary() noexcept {
  unsigned zeros = 0;
  while (bits_remaining() > 0) {
    if (read_bit()) {
      return zeros;
    }
    ++zeros;
  }
  overflow_ = true;
  return zeros;
}

}  // namespace lcp
