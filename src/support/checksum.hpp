#pragma once
// CRC32C (Castagnoli polynomial, as used by iSCSI, ext4 and the NFS/RDMA
// stack) for end-to-end chunk integrity on the modeled I/O path. The
// injected-fault tests rely on CRC32C's guaranteed detection of any
// single-bit corruption within an RPC-sized chunk.

#include <cstdint>
#include <span>

namespace lcp {

/// Incremental update: feeds `data` into a running CRC32C. Start from
/// `kCrc32cInit` (or a previous update's return value) and finish with
/// crc32c_finish. Chains so that update(a)+update(b) == update(a||b).
inline constexpr std::uint32_t kCrc32cInit = 0xFFFFFFFFu;

[[nodiscard]] std::uint32_t crc32c_update(
    std::uint32_t state, std::span<const std::uint8_t> data) noexcept;

[[nodiscard]] constexpr std::uint32_t crc32c_finish(
    std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC32C of `data` ("123456789" -> 0xE3069283).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data) noexcept;

// --- FNV-1a 64 --------------------------------------------------------------
//
// 64-bit content keys for the content-addressed slab store
// (core/incremental_checkpoint.hpp). CRC32C stays the per-chunk wire/frame
// check; slab identity needs the wider keyspace (a 512 GB dump at 128 KiB
// slabs holds 2^22 slabs, where 32-bit keys would collide birthday-style
// every few thousand generations while 2^64 keeps the expected collision
// count negligible for the life of the store).

inline constexpr std::uint64_t kFnv1a64Init = 0xCBF29CE484222325ull;

/// Incremental update: chains like crc32c_update, starting from
/// kFnv1a64Init (or a previous update's return value). No finalization
/// step: the running state is the hash.
[[nodiscard]] std::uint64_t fnv1a64_update(
    std::uint64_t state, std::span<const std::uint8_t> data) noexcept;

/// One-shot FNV-1a 64 of `data` ("" -> kFnv1a64Init, "a" -> 0xAF63DC4C8601EC8C).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept;

}  // namespace lcp
