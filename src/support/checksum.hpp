#pragma once
// CRC32C (Castagnoli polynomial, as used by iSCSI, ext4 and the NFS/RDMA
// stack) for end-to-end chunk integrity on the modeled I/O path. The
// injected-fault tests rely on CRC32C's guaranteed detection of any
// single-bit corruption within an RPC-sized chunk.

#include <cstdint>
#include <span>

namespace lcp {

/// Incremental update: feeds `data` into a running CRC32C. Start from
/// `kCrc32cInit` (or a previous update's return value) and finish with
/// crc32c_finish. Chains so that update(a)+update(b) == update(a||b).
inline constexpr std::uint32_t kCrc32cInit = 0xFFFFFFFFu;

[[nodiscard]] std::uint32_t crc32c_update(
    std::uint32_t state, std::span<const std::uint8_t> data) noexcept;

[[nodiscard]] constexpr std::uint32_t crc32c_finish(
    std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC32C of `data` ("123456789" -> 0xE3069283).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data) noexcept;

}  // namespace lcp
