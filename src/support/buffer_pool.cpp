#include "support/buffer_pool.hpp"

namespace lcp {

std::vector<std::uint8_t> SlabPool::acquire(std::size_t reserve_hint) {
  std::vector<std::uint8_t> buf;
  {
    const MutexLock lock{mutex_};
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
      ++hits_;
    } else {
      ++misses_;
    }
  }
  buf.clear();
  if (reserve_hint > 0) {
    buf.reserve(reserve_hint);
  }
  return buf;
}

void SlabPool::release(std::vector<std::uint8_t>&& buf) {
  detail::poison_buffer(buf);
  buf.clear();
  if (buf.capacity() == 0) {
    return;
  }
  const MutexLock lock{mutex_};
  if (max_retained_ > 0 && free_.size() >= max_retained_) {
    return;
  }
  free_.push_back(std::move(buf));
}

std::size_t SlabPool::retained() const {
  const MutexLock lock{mutex_};
  return free_.size();
}

std::uint64_t SlabPool::hits() const {
  const MutexLock lock{mutex_};
  return hits_;
}

std::uint64_t SlabPool::misses() const {
  const MutexLock lock{mutex_};
  return misses_;
}

}  // namespace lcp
