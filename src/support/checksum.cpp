#include "support/checksum.hpp"

#include <array>

namespace lcp {
namespace {

// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

// Slice-by-4 tables: table[0] is the classic byte-at-a-time table, tables
// 1..3 advance a byte by 1..3 extra zero bytes, letting the hot loop fold
// a 32-bit word per iteration.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};
};

constexpr Tables build_tables() {
  Tables tables;
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (std::size_t k = 1; k < 4; ++k) {
      crc = tables.t[0][crc & 0xFFu] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

constexpr Tables kTables = build_tables();

}  // namespace

std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = state;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFFu] ^ kTables.t[2][(crc >> 8) & 0xFFu] ^
          kTables.t[1][(crc >> 16) & 0xFFu] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = kTables.t[0][(crc ^ *p) & 0xFFu] ^ (crc >> 8);
    ++p;
    --n;
  }
  return crc;
}

std::uint32_t crc32c(std::span<const std::uint8_t> data) noexcept {
  return crc32c_finish(crc32c_update(kCrc32cInit, data));
}

std::uint64_t fnv1a64_update(std::uint64_t state,
                             std::span<const std::uint8_t> data) noexcept {
  constexpr std::uint64_t kPrime = 0x00000100000001B3ull;
  std::uint64_t h = state;
  for (const std::uint8_t byte : data) {
    h ^= byte;
    h *= kPrime;
  }
  return h;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept {
  return fnv1a64_update(kFnv1a64Init, data);
}

}  // namespace lcp
