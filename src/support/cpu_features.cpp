#include "support/cpu_features.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

namespace lcp {
namespace {

bool detect_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool detect_force_scalar() noexcept {
  const char* raw = std::getenv("LCP_FORCE_SCALAR");
  if (raw == nullptr) {
    return false;
  }
  std::string v{raw};
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace

bool cpu_supports_avx2() noexcept {
  static const bool cached = detect_avx2();
  return cached;
}

bool force_scalar_requested() noexcept {
  static const bool cached = detect_force_scalar();
  return cached;
}

}  // namespace lcp
