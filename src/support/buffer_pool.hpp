#pragma once
// Reusable buffer pools for the compression hot paths and the streaming
// dump pipeline.
//
// The parallel compression collapse traced to allocation churn: every
// chunk allocated (and freed) multi-hundred-KiB scratch vectors — codes,
// reconstruction planes, Huffman frequency tables, zlite hash heads. The
// allocator services those with mmap/munmap, and munmap takes the
// process-wide mmap semaphore, so eight workers spend their time
// serialized in the kernel instead of compressing. Recycling the scratch
// keeps every allocation after warm-up thread-local and lock-free.
//
// Two pools:
//   ScratchPool<T>  — per-thread free list of std::vector<T>. No locking;
//                     ScratchPool<T>::local() hands each thread its own.
//   SlabPool        — mutex-protected pool of byte buffers shared across
//                     threads, used by the streaming dump engine to recycle
//                     compressed-slab buffers between the producer (pool
//                     workers) and the writer thread.
//
// Released buffers are poisoned (first kPoisonBytes overwritten with
// kPoisonByte) so use-after-release reads deterministic garbage instead of
// stale plausible data; the tsan/asan suites assert on the pattern.

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "support/thread_annotations.hpp"

namespace lcp {

inline constexpr std::uint8_t kPoisonByte = 0xDB;
inline constexpr std::size_t kPoisonBytes = 64;

namespace detail {

/// Overwrites the leading bytes of a buffer's live contents.
template <typename T>
void poison_buffer(std::vector<T>& buf) noexcept {
  static_assert(std::is_trivially_copyable_v<T>,
                "pooled buffers must hold trivially copyable elements");
  const std::size_t bytes = buf.size() * sizeof(T);
  if (bytes > 0) {
    std::memset(buf.data(), kPoisonByte, std::min(bytes, kPoisonBytes));
  }
}

}  // namespace detail

/// Per-thread recycling pool of std::vector<T>. acquire() pops the most
/// recently released buffer (cache-hot) or default-constructs one; the
/// returned vector is empty but keeps its old capacity. release() poisons
/// and stores the buffer for reuse. Not thread-safe by design — use
/// local() to get the calling thread's own instance.
template <typename T>
class ScratchPool {
 public:
  /// At most this many buffers are retained; extra releases deallocate.
  static constexpr std::size_t kMaxRetained = 8;

  [[nodiscard]] std::vector<T> acquire(std::size_t reserve_hint = 0) {
    std::vector<T> buf;
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
      ++hits_;
    } else {
      ++misses_;
    }
    buf.clear();
    if (reserve_hint > 0) {
      buf.reserve(reserve_hint);
    }
    return buf;
  }

  void release(std::vector<T>&& buf) {
    detail::poison_buffer(buf);
    buf.clear();
    if (buf.capacity() == 0 || free_.size() >= kMaxRetained) {
      return;  // nothing worth keeping / pool is full
    }
    free_.push_back(std::move(buf));
  }

  [[nodiscard]] std::size_t retained() const noexcept { return free_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// The calling thread's pool instance.
  [[nodiscard]] static ScratchPool& local() {
    thread_local ScratchPool pool;
    return pool;
  }

 private:
  std::vector<std::vector<T>> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// RAII lease on a ScratchPool<T> buffer: acquires on construction,
/// releases back on destruction. Access the vector via get()/operator*.
template <typename T>
class ScratchLease {
 public:
  explicit ScratchLease(std::size_t reserve_hint = 0,
                        ScratchPool<T>& pool = ScratchPool<T>::local())
      : pool_(pool), buf_(pool.acquire(reserve_hint)) {}

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  ~ScratchLease() { pool_.release(std::move(buf_)); }

  [[nodiscard]] std::vector<T>& operator*() noexcept { return buf_; }
  [[nodiscard]] std::vector<T>* operator->() noexcept { return &buf_; }
  [[nodiscard]] std::vector<T>& get() noexcept { return buf_; }

 private:
  ScratchPool<T>& pool_;
  std::vector<T> buf_;
};

/// Cross-thread pool of byte buffers (compressed slabs in the streaming
/// dump pipeline). The writer thread releases each slab after it hits the
/// wire and a compression worker reuses it for a later slab, bounding the
/// pipeline's allocation footprint at (depth + workers) slabs.
class SlabPool {
 public:
  /// `max_retained` of 0 keeps every released buffer.
  explicit SlabPool(std::size_t max_retained = 0) noexcept
      : max_retained_(max_retained) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// An empty buffer with at least `reserve_hint` capacity when a recycled
  /// one is available; freshly allocated otherwise.
  [[nodiscard]] std::vector<std::uint8_t> acquire(std::size_t reserve_hint = 0);

  /// Poisons and stores `buf` for reuse.
  void release(std::vector<std::uint8_t>&& buf);

  [[nodiscard]] std::size_t retained() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  mutable Mutex mutex_;
  std::vector<std::vector<std::uint8_t>> free_ LCP_GUARDED_BY(mutex_);
  std::size_t max_retained_;
  std::uint64_t hits_ LCP_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ LCP_GUARDED_BY(mutex_) = 0;
};

}  // namespace lcp
