#include "support/timer.hpp"

// Header-only today; this TU anchors the library target and reserves a home
// for future timing backends (e.g. rdtsc calibration).
