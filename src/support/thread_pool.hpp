#pragma once
// Work-stealing thread pool used by the parallel compression layer and the
// sweep harness.
//
// Each worker owns a deque: the owner pushes and pops at the back (LIFO,
// cache-hot), thieves take from the front (FIFO, oldest first — the classic
// work-stealing discipline). External submitters go through a shared
// injector queue that idle workers drain before stealing from peers. Tasks
// are stored in a small-buffer type-erased container, so the common case
// (a lambda capturing a few pointers) never touches the heap.
//
// parallel_for partitions an index range into grain-sized chunks claimed
// from a shared atomic cursor; the calling thread participates and, while
// waiting for stragglers, helps by executing unrelated pool tasks, so
// nested parallelism cannot deadlock the pool.

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/thread_annotations.hpp"

namespace lcp {

namespace detail {

/// Move-only type-erased nullary callable with inline (small-buffer)
/// storage. Callables up to kInlineSize bytes that are nothrow-movable are
/// stored in place; larger ones fall back to the heap.
class Task {
 public:
  static constexpr std::size_t kInlineSize = 48;

  Task() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): function-like wrapper
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      relocate_ = [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      };
      destroy_ = [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); };
    } else {
      heap_ = new Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) noexcept { delete static_cast<Fn*>(p); };
    }
  }

  Task(Task&& other) noexcept { move_from(other); }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  void operator()() { invoke_(target()); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  void* target() noexcept { return relocate_ != nullptr ? storage_ : heap_; }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      destroy_(target());
      invoke_ = nullptr;
      relocate_ = nullptr;
    }
  }

  void move_from(Task& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (invoke_ != nullptr) {
      if (relocate_ != nullptr) {
        relocate_(storage_, other.storage_);
      } else {
        heap_ = other.heap_;
      }
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  void* heap_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) noexcept = nullptr;  // inline storage only
  void (*destroy_)(void*) noexcept = nullptr;
};

}  // namespace detail

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. The caller's thread also executes chunks, so the
  /// pool works even with zero queued workers. Exceptions propagate (first
  /// one wins). `grain` is the number of consecutive indices claimed per
  /// dispatch; 0 picks one aiming at a few chunks per thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

 private:
  struct Worker {
    Mutex mutex;
    std::deque<detail::Task> deque
        LCP_GUARDED_BY(mutex);  // owner: back; thieves: front
  };

  void worker_loop(std::size_t self);
  void push_task(detail::Task task);
  [[nodiscard]] detail::Task try_acquire(std::size_t self);
  [[nodiscard]] detail::Task try_acquire_any();
  [[nodiscard]] detail::Task pop_injected();
  [[nodiscard]] detail::Task steal_from(Worker& victim);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::deque<detail::Task> inject_ LCP_GUARDED_BY(inject_mutex_);
  Mutex inject_mutex_;

  // Pure rendezvous for cv_: the sleep predicate reads only the atomics
  // below, so the mutex guards no data — it exists to make wakeups and
  // predicate re-checks atomic with respect to each other.
  Mutex sleep_mutex_;
  CondVar cv_;
  std::atomic<std::size_t> pending_{0};  // queued, not-yet-acquired tasks
  std::atomic<bool> stopping_{false};
};

}  // namespace lcp
