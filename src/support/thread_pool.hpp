#pragma once
// Minimal fixed-size thread pool used by the parallel compression layer.
// Work items are type-erased tasks; parallel_for partitions an index range
// into contiguous chunks (one in-flight task per worker, plus the calling
// thread participates) — the shape OpenMP's static schedule would give.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace lcp {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. The caller's thread also executes chunks, so the
  /// pool works even with zero workers. Exceptions propagate (first one
  /// wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace lcp
