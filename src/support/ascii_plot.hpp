#pragma once
// Terminal line plots for the bench binaries: each paper figure is rendered
// as an ASCII chart (one glyph per series) next to the CSV dump, so the
// curve shapes are inspectable without leaving the terminal.

#include <string>
#include <vector>

namespace lcp {

/// One plotted series: (x, y) points plus a single-character glyph.
struct PlotSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// Options for AsciiPlot rendering.
struct PlotOptions {
  int width = 72;    ///< plot area columns
  int height = 20;   ///< plot area rows
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders superimposed series on shared axes with min/max auto-ranging.
/// Later series overwrite earlier glyphs where they collide.
[[nodiscard]] std::string render_plot(const std::vector<PlotSeries>& series,
                                      const PlotOptions& options);

}  // namespace lcp
