#pragma once
// Clang thread-safety analysis for the whole locking surface.
//
// Every mutex-owning type in src/ uses the wrappers below instead of the
// naked <mutex>/<shared_mutex> primitives (tools/lint.py enforces this).
// Under Clang, `-Wthread-safety` then proves at compile time that every
// access to a `LCP_GUARDED_BY(mu)` field happens with `mu` held, that every
// `*_locked()` helper is only reachable with its `LCP_REQUIRES(mu)`
// capability, and that no path leaks a lock. Under GCC (or any compiler
// without the attributes) the macros expand to nothing and the wrappers
// compile down to the plain standard primitives — zero runtime cost either
// way.
//
// The attribute macros follow the Clang documentation's capability
// vocabulary (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the
// wrapper classes mirror the std types they replace:
//
//   Mutex        — std::mutex        + CAPABILITY, lock/unlock/try_lock
//   SharedMutex  — std::shared_mutex + CAPABILITY, *_shared variants
//   CondVar      — std::condition_variable bound to MutexLock
//   MutexLock    — scoped exclusive lock on a Mutex       (SCOPED_CAPABILITY)
//   WriterLock   — scoped exclusive lock on a SharedMutex (SCOPED_CAPABILITY)
//   ReaderLock   — scoped shared    lock on a SharedMutex (SCOPED_CAPABILITY)
//
// This header is the single place where the analysis is allowed to be
// bypassed (LCP_NO_THREAD_SAFETY_ANALYSIS exists for the wrappers' own
// plumbing); annotated code elsewhere must not suppress it.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LCP_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef LCP_THREAD_ANNOTATION_
#define LCP_THREAD_ANNOTATION_(x)  // not Clang: annotations compile away
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define LCP_CAPABILITY(x) LCP_THREAD_ANNOTATION_(capability(x))
/// Declares an RAII type whose lifetime equals a critical section.
#define LCP_SCOPED_CAPABILITY LCP_THREAD_ANNOTATION_(scoped_lockable)
/// Field may only be read/written with the named capability held
/// (exclusively for writes, at least shared for reads).
#define LCP_GUARDED_BY(x) LCP_THREAD_ANNOTATION_(guarded_by(x))
/// Pointer field whose *pointee* is guarded by the named capability.
#define LCP_PT_GUARDED_BY(x) LCP_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function may only be called with the capability held exclusively
/// (the `*_locked()` helper contract).
#define LCP_REQUIRES(...) \
  LCP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function may only be called with the capability held at least shared.
#define LCP_REQUIRES_SHARED(...) \
  LCP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability exclusively and does not release it.
#define LCP_ACQUIRE(...) \
  LCP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function acquires the capability shared and does not release it.
#define LCP_ACQUIRE_SHARED(...) \
  LCP_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
/// Function releases the (exclusive or shared) capability.
#define LCP_RELEASE(...) \
  LCP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define LCP_RELEASE_SHARED(...) \
  LCP_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define LCP_TRY_ACQUIRE(...) \
  LCP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard
/// for public entry points of self-locking types).
#define LCP_EXCLUDES(...) LCP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define LCP_RETURN_CAPABILITY(x) LCP_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch for the wrappers' own plumbing. Must not appear outside
/// this header (tools/lint.py enforces that, too).
#define LCP_NO_THREAD_SAFETY_ANALYSIS \
  LCP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace lcp {

class CondVar;

/// std::mutex with the capability attribute. Prefer MutexLock; the manual
/// lock/unlock/try_lock surface exists for the patterns RAII cannot
/// express (e.g. work-stealing's try-lock-and-bail).
class LCP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LCP_ACQUIRE() { mu_.lock(); }
  void unlock() LCP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() LCP_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// std::shared_mutex with the capability attribute: exclusive for writers,
/// shared for any number of readers.
class LCP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() LCP_ACQUIRE() { mu_.lock(); }
  void unlock() LCP_RELEASE() { mu_.unlock(); }
  void lock_shared() LCP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() LCP_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex. unlock()/lock() allow releasing early
/// (e.g. before a condition-variable notify); the destructor releases
/// whatever is still held.
class LCP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LCP_ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() LCP_RELEASE() {}  // std::unique_lock releases iff held

  /// Releases before end of scope (notify-outside-the-lock pattern).
  void unlock() LCP_RELEASE() { lock_.unlock(); }
  /// Re-acquires after an early unlock().
  void lock() LCP_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class LCP_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) LCP_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() LCP_RELEASE() { mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class LCP_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) LCP_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() LCP_RELEASE() { mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

/// std::condition_variable bound to MutexLock. The predicate overloads are
/// deliberately absent: a lambda predicate is analyzed as a separate
/// function that cannot see the held lock, so guarded reads inside it
/// would defeat the analysis. Write the wait loop inline instead:
///
///   MutexLock lock{mutex_};
///   while (!condition_involving_guarded_state()) {
///     cv_.wait(lock);
///   }
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock, sleeps, and re-acquires it before
  /// returning — the capability is held across the call as far as the
  /// analysis (correctly) observes.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lcp
