#pragma once
// Wall-clock timing for native calibration runs (the real compressor
// executions that parameterize the simulated workloads).

#include <chrono>

#include "support/units.hpp"

namespace lcp {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] Seconds elapsed() const noexcept {
    const auto dt = Clock::now() - start_;
    return Seconds{std::chrono::duration<double>(dt).count()};
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lcp
