#pragma once
// Deterministic, fast PRNG (xoshiro256**) used by the synthetic dataset
// generators and the measurement-noise model.
//
// std::mt19937_64 is avoided because its 2.5 KB state makes value-semantics
// awkward and its stream is not reproducible across standard-library
// distribution implementations; all distribution math here is our own, so a
// given seed yields identical datasets on every platform.

#include <array>
#include <cstdint>

namespace lcp {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (cached pair).
  double normal() noexcept;

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Splits off an independent stream (jump-free: reseeds from this stream).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lcp
