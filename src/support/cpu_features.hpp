#pragma once
// Runtime CPU feature detection for the SIMD kernel dispatch layer
// (compress/simd/dispatch.hpp). Both queries run once per process and are
// cached; they are the raw inputs the dispatcher combines with the build
// gate (was the AVX2 translation unit compiled at all?) to pick a level.

namespace lcp {

/// True when the host CPU executes AVX2 instructions. Always false on
/// non-x86 builds.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// True when the LCP_FORCE_SCALAR environment variable requests scalar
/// dispatch ("1", "true", "yes", "on"; case-insensitive). The escape hatch
/// CI's forced-scalar leg and field debugging rely on: every kernel falls
/// back to its bit-identical scalar path.
[[nodiscard]] bool force_scalar_requested() noexcept;

}  // namespace lcp
