#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/status.hpp"

namespace lcp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LCP_REQUIRE(!headers_.empty(), "table needs at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::set_alignments(std::vector<Align> aligns) {
  LCP_REQUIRE(aligns.size() == headers_.size(),
              "alignment arity must match headers");
  aligns_ = std::move(aligns);
}

void Table::add_row(std::vector<std::string> cells) {
  LCP_REQUIRE(cells.size() == headers_.size(), "row arity must match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_cell = [&](const std::string& cell, std::size_t c) {
    std::string out;
    const std::size_t pad = widths[c] - cell.size();
    if (aligns_[c] == Align::kRight) {
      out.append(pad, ' ');
      out += cell;
    } else {
      out += cell;
      out.append(pad, ' ');
    }
    return out;
  };

  auto rule = [&]() {
    std::string out = "+";
    for (std::size_t w : widths) {
      out.append(w + 2, '-');
      out += '+';
    }
    out += '\n';
    return out;
  };

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  out += rule();
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += ' ';
    out += render_cell(headers_[c], c);
    out += " |";
  }
  out += '\n';
  out += rule();
  for (const auto& row : rows_) {
    out += "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += ' ';
      out += render_cell(row[c], c);
      out += " |";
    }
    out += '\n';
  }
  out += rule();
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_scientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace lcp
