#pragma once
// ASCII table renderer used by the bench binaries to print paper-style
// tables (Tables I-V) to stdout.

#include <string>
#include <vector>

namespace lcp {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A simple fixed-schema ASCII table.
///
///   Table t{{"Model Data", "SSE", "RMSE"}};
///   t.add_row({"Total", "11.407", "0.0442"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Per-column alignment; defaults to left for col 0, right otherwise.
  void set_alignments(std::vector<Align> aligns);

  /// Adds a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Renders with unicode-free box drawing (pipes and dashes).
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string format_double(double v, int precision = 4);
[[nodiscard]] std::string format_scientific(double v, int precision = 3);
[[nodiscard]] std::string format_percent(double fraction, int precision = 1);

}  // namespace lcp
