#include "support/rng.hpp"

#include <cmath>

namespace lcp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // All-zero state is the one forbidden state for xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Rejection-free modulo is fine here: n is tiny relative to 2^64 in all
  // library uses, so modulo bias is far below measurement noise.
  return next_u64() % n;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

Rng Rng::fork() noexcept { return Rng{next_u64()}; }

}  // namespace lcp
