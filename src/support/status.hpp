#pragma once
// Lightweight error handling for lcpower.
//
// The library avoids exceptions on hot paths; fallible operations return
// Status or Expected<T>. Programming errors (contract violations) abort via
// LCP_REQUIRE so they cannot be silently swallowed in Release builds.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lcp {

/// Error categories used across the library.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kCorruptData,
  kUnsupported,
  kInternal,
  kUnavailable,
};

/// Human-readable name for an ErrorCode.
[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;

/// Result of a fallible operation that produces no value.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() noexcept { return {}; }
  [[nodiscard]] static Status invalid_argument(std::string msg) {
    return {ErrorCode::kInvalidArgument, std::move(msg)};
  }
  [[nodiscard]] static Status out_of_range(std::string msg) {
    return {ErrorCode::kOutOfRange, std::move(msg)};
  }
  [[nodiscard]] static Status corrupt_data(std::string msg) {
    return {ErrorCode::kCorruptData, std::move(msg)};
  }
  [[nodiscard]] static Status unsupported(std::string msg) {
    return {ErrorCode::kUnsupported, std::move(msg)};
  }
  [[nodiscard]] static Status internal(std::string msg) {
    return {ErrorCode::kInternal, std::move(msg)};
  }
  [[nodiscard]] static Status unavailable(std::string msg) {
    return {ErrorCode::kUnavailable, std::move(msg)};
  }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// Returns a copy with `site` pushed onto the error-site context chain,
  /// so a status that bubbled through several layers can say *where* it
  /// happened: corrupt_data("crc mismatch").with_context("chunk 17")
  /// .with_context("recover") renders as
  /// "CORRUPT_DATA: recover: chunk 17: crc mismatch". No-op on OK.
  [[nodiscard]] Status with_context(std::string site) const;

  /// Error-site chain, innermost (first added) first. Empty for OK.
  [[nodiscard]] const std::vector<std::string>& context() const noexcept {
    return context_;
  }

  /// "OK" or "<code>: <outer ctx>: ...: <inner ctx>: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
  std::vector<std::string> context_;
};

/// Result of a fallible operation that produces a T on success.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.is_ok()) {
      status_ = Status::internal("Expected constructed from OK status without value");
    }
  }

  [[nodiscard]] bool has_value() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const T& value() const& {
    require_value();
    return *value_;
  }
  [[nodiscard]] T& value() & {
    require_value();
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    require_value();
    return std::move(*value_);
  }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// OK status when a value is present, otherwise the stored error.
  [[nodiscard]] const Status& status() const noexcept {
    static const Status kOk{};
    return has_value() ? kOk : status_;
  }

 private:
  void require_value() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "lcpower: Expected<> accessed without value: %s\n",
                   status_.to_string().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

namespace detail {
[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 const char* msg);
}  // namespace detail

/// Contract check: aborts with a diagnostic if `expr` is false.
/// Used for programmer errors (bad API usage), not data-dependent failures.
#define LCP_REQUIRE(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::lcp::detail::require_failed(#expr, __FILE__, __LINE__, msg);  \
    }                                                                 \
  } while (false)

/// Propagate a non-OK Status from the current function.
#define LCP_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::lcp::Status lcp_status_ = (expr);        \
    if (!lcp_status_.is_ok()) {                \
      return lcp_status_;                      \
    }                                          \
  } while (false)

}  // namespace lcp
