#include "support/status.hpp"

namespace lcp {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kCorruptData:
      return "CORRUPT_DATA";
    case ErrorCode::kUnsupported:
      return "UNSUPPORTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

Status Status::with_context(std::string site) const {
  if (is_ok()) {
    return *this;
  }
  Status out = *this;
  out.context_.push_back(std::move(site));
  return out;
}

std::string Status::to_string() const {
  if (is_ok()) {
    return "OK";
  }
  std::string out{error_code_name(code_)};
  out += ": ";
  for (auto it = context_.rbegin(); it != context_.rend(); ++it) {
    out += *it;
    out += ": ";
  }
  out += message_;
  return out;
}

namespace detail {

void require_failed(const char* expr, const char* file, int line,
                    const char* msg) {
  std::fprintf(stderr, "lcpower: contract violated at %s:%d: (%s) %s\n", file,
               line, expr, msg);
  std::abort();
}

}  // namespace detail
}  // namespace lcp
