#include "support/bytestream.hpp"

#include <bit>

namespace lcp {

void ByteWriter::write_u16(std::uint16_t v) {
  write_u8(static_cast<std::uint8_t>(v));
  write_u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    write_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    write_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::write_f64(double v) {
  write_u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::write_bytes(std::span<const std::uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void ByteWriter::write_blob(std::span<const std::uint8_t> data) {
  LCP_REQUIRE(data.size() <= UINT32_MAX, "blob exceeds u32 length prefix");
  write_u32(static_cast<std::uint32_t>(data.size()));
  write_bytes(data);
}

void ByteWriter::write_string(std::string_view s) {
  write_blob({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

Expected<std::uint8_t> ByteReader::read_u8() noexcept {
  if (remaining() < 1) {
    return Status::corrupt_data("byte stream truncated reading u8");
  }
  return bytes_[pos_++];
}

Expected<std::uint16_t> ByteReader::read_u16() noexcept {
  if (remaining() < 2) {
    return Status::corrupt_data("byte stream truncated reading u16");
  }
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(bytes_[pos_ + i]) << (8 * i)));
  }
  pos_ += 2;
  return v;
}

Expected<std::uint32_t> ByteReader::read_u32() noexcept {
  if (remaining() < 4) {
    return Status::corrupt_data("byte stream truncated reading u32");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Expected<std::uint64_t> ByteReader::read_u64() noexcept {
  if (remaining() < 8) {
    return Status::corrupt_data("byte stream truncated reading u64");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Expected<std::int64_t> ByteReader::read_i64() noexcept {
  auto v = read_u64();
  if (!v) {
    return v.status();
  }
  return static_cast<std::int64_t>(*v);
}

Expected<double> ByteReader::read_f64() noexcept {
  auto v = read_u64();
  if (!v) {
    return v.status();
  }
  return std::bit_cast<double>(*v);
}

Expected<std::span<const std::uint8_t>> ByteReader::read_bytes(
    std::size_t n) noexcept {
  if (remaining() < n) {
    return Status::corrupt_data("byte stream truncated reading raw bytes");
  }
  auto out = bytes_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Expected<std::span<const std::uint8_t>> ByteReader::read_blob() noexcept {
  auto len = read_u32();
  if (!len) {
    return len.status();
  }
  return read_bytes(*len);
}

Status ByteReader::skip(std::size_t n) noexcept {
  if (remaining() < n) {
    return Status::corrupt_data("byte stream truncated skipping bytes");
  }
  pos_ += n;
  return Status::ok();
}

Expected<std::string> ByteReader::read_string() noexcept {
  auto blob = read_blob();
  if (!blob) {
    return blob.status();
  }
  return std::string{reinterpret_cast<const char*>(blob->data()), blob->size()};
}

}  // namespace lcp
