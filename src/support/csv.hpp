#pragma once
// CSV emission for bench outputs so figure data can be re-plotted externally.

#include <string>
#include <vector>

#include "support/status.hpp"

namespace lcp {

/// Row-oriented CSV writer. Values are escaped per RFC 4180 where needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string render() const;

  /// Writes the rendered CSV to `path` (overwrites).
  [[nodiscard]] Status write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lcp
