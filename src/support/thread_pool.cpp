#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "support/status.hpp"

namespace lcp {
namespace {

/// Identity of the worker thread currently executing pool code, so that
/// tasks spawned from inside the pool land on the spawner's own deque
/// (LIFO, cache-hot) instead of the shared injector.
struct WorkerIdentity {
  const void* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  {
    const MutexLock lock{sleep_mutex_};
  }
  cv_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::push_task(detail::Task task) {
  if (tls_worker.pool == this) {
    Worker& own = *workers_[tls_worker.index];
    const MutexLock lock{own.mutex};
    own.deque.push_back(std::move(task));
  } else {
    const MutexLock lock{inject_mutex_};
    inject_.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Pairs with the waiters' predicate check: a waiter is either about to
    // re-test `pending_` or already blocked and gets the notify.
    const MutexLock lock{sleep_mutex_};
  }
  cv_.notify_one();
}

detail::Task ThreadPool::pop_injected() {
  const MutexLock lock{inject_mutex_};
  if (inject_.empty()) {
    return {};
  }
  detail::Task task = std::move(inject_.front());
  inject_.pop_front();
  return task;
}

detail::Task ThreadPool::steal_from(Worker& victim) {
  // try-lock-and-bail: a contended victim is skipped, not waited on. The
  // manual unlock on both paths is what the TRY_ACQUIRE annotation checks.
  if (!victim.mutex.try_lock()) {
    return {};
  }
  detail::Task task;
  if (!victim.deque.empty()) {
    task = std::move(victim.deque.front());
    victim.deque.pop_front();
  }
  victim.mutex.unlock();
  return task;
}

detail::Task ThreadPool::try_acquire(std::size_t self) {
  {
    // Own deque first, newest first (LIFO keeps the working set hot).
    Worker& own = *workers_[self];
    const MutexLock lock{own.mutex};
    if (!own.deque.empty()) {
      detail::Task task = std::move(own.deque.back());
      own.deque.pop_back();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return task;
    }
  }
  if (detail::Task task = pop_injected()) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return task;
  }
  const std::size_t n = workers_.size();
  for (std::size_t hop = 1; hop < n; ++hop) {
    if (detail::Task task = steal_from(*workers_[(self + hop) % n])) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return task;
    }
  }
  return {};
}

detail::Task ThreadPool::try_acquire_any() {
  if (detail::Task task = pop_injected()) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return task;
  }
  for (auto& worker : workers_) {
    if (detail::Task task = steal_from(*worker)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return task;
    }
  }
  return {};
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker = {this, self};
  unsigned failed_acquires = 0;
  for (;;) {
    if (detail::Task task = try_acquire(self)) {
      failed_acquires = 0;
      task();
      continue;
    }
    if (pending_.load(std::memory_order_acquire) > 0) {
      // Queued work exists but was not acquirable — a victim's deque lock
      // was contended, or another thread took the task between the count
      // check and the scan. The sleep predicate below would pass
      // immediately, so back off briefly instead of hammering the deques.
      if (++failed_acquires < 16) {
        std::this_thread::yield();
      } else {
        MutexLock lock{sleep_mutex_};
        (void)cv_.wait_for(lock, std::chrono::microseconds(100));
      }
      continue;
    }
    failed_acquires = 0;
    MutexLock lock{sleep_mutex_};
    while (!stopping_.load(std::memory_order_acquire) &&
           pending_.load(std::memory_order_acquire) == 0) {
      cv_.wait(lock);
    }
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;  // stopping and drained
    }
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  LCP_REQUIRE(!stopping_.load(std::memory_order_acquire),
              "submit on a stopping pool");
  std::packaged_task<void()> packaged{std::move(task)};
  auto future = packaged.get_future();
  push_task(detail::Task{std::move(packaged)});
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) {
    return;
  }
  const std::size_t n = end - begin;
  if (grain == 0) {
    // A few chunks per thread balances stealing against dispatch overhead.
    const std::size_t threads = worker_count() + 1;
    grain = std::max<std::size_t>(1, n / (4 * threads));
  }
  const std::size_t chunks = (n + grain - 1) / grain;

  // Shared-ownership completion state: each helper task holds a reference,
  // so the mutex/condition_variable stay alive while the last helper is
  // inside its post-decrement notify even if the caller has already observed
  // active == 0 and returned from parallel_for.
  struct SharedState {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> active{0};
    std::size_t end = 0;
    std::size_t grain = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    Mutex error_mutex;
    std::exception_ptr first_error LCP_GUARDED_BY(error_mutex);
    Mutex done_mutex;  // rendezvous only: `active` is the atomic predicate
    CondVar done_cv;
  };
  auto state = std::make_shared<SharedState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->grain = grain;
  state->body = &body;  // outlives every chunk: the caller blocks on active

  auto run_chunks = [](SharedState& s) {
    for (;;) {
      const std::size_t lo =
          s.next.fetch_add(s.grain, std::memory_order_relaxed);
      if (lo >= s.end) {
        return;
      }
      const std::size_t hi = std::min(s.end, lo + s.grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          (*s.body)(i);
        }
      } catch (...) {
        {
          const MutexLock lock{s.error_mutex};
          if (!s.first_error) {
            s.first_error = std::current_exception();
          }
        }
        s.next.store(s.end, std::memory_order_relaxed);  // abort early
        return;
      }
    }
  };

  const std::size_t helpers =
      std::min(worker_count(), chunks > 0 ? chunks - 1 : 0);
  state->active.store(helpers, std::memory_order_relaxed);
  for (std::size_t h = 0; h < helpers; ++h) {
    push_task(detail::Task{[state, run_chunks] {
      run_chunks(*state);
      if (state->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const MutexLock lock{state->done_mutex};
        state->done_cv.notify_all();
      }
    }});
  }

  run_chunks(*state);  // calling thread participates

  // Wait for helpers; while they lag, help with whatever is queued (possibly
  // other callers' chunks) so nested parallel_for cannot deadlock the pool.
  while (state->active.load(std::memory_order_acquire) != 0) {
    if (detail::Task task = try_acquire_any()) {
      task();
      continue;
    }
    MutexLock lock{state->done_mutex};
    if (state->active.load(std::memory_order_acquire) != 0) {
      (void)state->done_cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  std::exception_ptr first_error;
  {
    const MutexLock lock{state->error_mutex};
    first_error = state->first_error;
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace lcp
