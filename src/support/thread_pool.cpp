#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "support/status.hpp"

namespace lcp {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged{std::move(task)};
  auto future = packaged.get_future();
  {
    std::lock_guard lock{mutex_};
    LCP_REQUIRE(!stopping_, "submit on a stopping pool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock{mutex_};
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) {
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t parts = std::min(n, worker_count() + 1);
  const std::size_t chunk = (n + parts - 1) / parts;

  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_chunks = [&] {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) {
        return;
      }
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          body(i);
        }
      } catch (...) {
        std::lock_guard lock{error_mutex};
        if (!first_error) {
          first_error = std::current_exception();
        }
        return;
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(parts - 1);
  for (std::size_t p = 1; p < parts; ++p) {
    futures.push_back(submit(run_chunks));
  }
  run_chunks();  // calling thread participates
  for (auto& f : futures) {
    f.wait();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace lcp
