#include "support/log.hpp"

#include <atomic>
#include <cstdio>

namespace lcp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) {
    return;
  }
  std::fprintf(stderr, "[lcp %s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

void log_debug(std::string_view message) { log_message(LogLevel::kDebug, message); }
void log_info(std::string_view message) { log_message(LogLevel::kInfo, message); }
void log_warn(std::string_view message) { log_message(LogLevel::kWarn, message); }
void log_error(std::string_view message) { log_message(LogLevel::kError, message); }

}  // namespace lcp
