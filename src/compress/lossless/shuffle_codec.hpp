#pragma once
// Lossless baseline codec: byte-shuffle + zlite.
//
// The paper's motivation rests on "lossy compressors have the advantage of
// better space-savings and runtime efficiency over lossless compressors";
// this codec is the in-repo lossless comparator that lets benches reproduce
// that claim. Byte-shuffling (grouping the k-th byte of every float
// together, the blosc/HDF5-shuffle trick) exposes the low-entropy exponent
// bytes of scientific data to the LZ stage.
//
// The ErrorBound argument is accepted for interface uniformity and ignored
// — reconstruction is always exact.

#include "compress/common/codec.hpp"

namespace lcp::lossless {

class ShuffleCodec final : public compress::Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "lossless"; }

  [[nodiscard]] Expected<compress::CompressResult> compress(
      const data::Field& field,
      const compress::ErrorBound& bound) const override;

  [[nodiscard]] Expected<compress::DecompressResult> decompress(
      std::span<const std::uint8_t> container) const override;
};

/// Byte-shuffle: out[k * n + i] = byte k of value i (exposed for tests).
void shuffle_bytes(std::span<const float> values,
                   std::span<std::uint8_t> out) noexcept;

/// Exact inverse of shuffle_bytes.
void unshuffle_bytes(std::span<const std::uint8_t> bytes,
                     std::span<float> out) noexcept;

}  // namespace lcp::lossless
