#include "compress/lossless/shuffle_codec.hpp"

#include <bit>
#include <cstring>

#include "compress/common/container.hpp"
#include "compress/simd/dispatch.hpp"
#include "compress/sz/zlite.hpp"
#include "support/bytestream.hpp"
#include "support/timer.hpp"

#if defined(LCP_HAVE_AVX2_BUILD)
#include "compress/simd/avx2_kernels.hpp"
#endif

namespace lcp::lossless {
namespace {

constexpr std::uint8_t kPayloadVersion = 1;

}  // namespace

void shuffle_bytes(std::span<const float> values,
                   std::span<std::uint8_t> out) noexcept {
  const std::size_t n = values.size();
#if defined(LCP_HAVE_AVX2_BUILD)
  if (simd::simd_level() >= simd::SimdLevel::kAvx2) {
    simd::avx2::shuffle_bytes(values.data(), n, out.data());
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const auto bits = std::bit_cast<std::uint32_t>(values[i]);
    out[0 * n + i] = static_cast<std::uint8_t>(bits);
    out[1 * n + i] = static_cast<std::uint8_t>(bits >> 8);
    out[2 * n + i] = static_cast<std::uint8_t>(bits >> 16);
    out[3 * n + i] = static_cast<std::uint8_t>(bits >> 24);
  }
}

void unshuffle_bytes(std::span<const std::uint8_t> bytes,
                     std::span<float> out) noexcept {
  const std::size_t n = out.size();
#if defined(LCP_HAVE_AVX2_BUILD)
  if (simd::simd_level() >= simd::SimdLevel::kAvx2) {
    simd::avx2::unshuffle_bytes(bytes.data(), n, out.data());
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t bits =
        static_cast<std::uint32_t>(bytes[0 * n + i]) |
        (static_cast<std::uint32_t>(bytes[1 * n + i]) << 8) |
        (static_cast<std::uint32_t>(bytes[2 * n + i]) << 16) |
        (static_cast<std::uint32_t>(bytes[3 * n + i]) << 24);
    out[i] = std::bit_cast<float>(bits);
  }
}

Expected<compress::CompressResult> ShuffleCodec::compress(
    const data::Field& field, const compress::ErrorBound& bound) const {
  Timer timer;
  std::vector<std::uint8_t> shuffled(field.element_count() * sizeof(float));
  shuffle_bytes(field.values(), shuffled);
  const auto packed = sz::zlite_compress(shuffled);

  ByteWriter payload;
  payload.write_u8(kPayloadVersion);
  payload.write_u64(packed.size());
  payload.write_bytes(packed);
  const auto payload_bytes = payload.finish();

  compress::CompressResult result;
  result.container = compress::build_container("lossless", bound, field.dims(),
                                               field.name(), payload_bytes);
  result.input_bytes = field.size_bytes();
  result.output_bytes = Bytes{result.container.size()};
  result.native_wall_time = timer.elapsed();
  return result;
}

Expected<compress::DecompressResult> ShuffleCodec::decompress(
    std::span<const std::uint8_t> container) const {
  Timer timer;
  auto view = compress::parse_container(container);
  if (!view) {
    return view.status().with_context("lossless container");
  }
  if (view->codec != "lossless") {
    return Status::invalid_argument("container codec is not lossless");
  }
  ByteReader r{view->payload};
  auto version = r.read_u8();
  if (!version || *version != kPayloadVersion) {
    return Status::unsupported("unknown lossless payload version");
  }
  auto packed_size = r.read_u64();
  if (!packed_size) {
    return packed_size.status().with_context("lossless packed size");
  }
  auto packed = r.read_bytes(static_cast<std::size_t>(*packed_size));
  if (!packed) {
    return packed.status().with_context("lossless packed blob");
  }
  const std::size_t n = view->dims.element_count();
  auto shuffled = sz::zlite_decompress(*packed, n * sizeof(float));
  if (!shuffled) {
    return shuffled.status().with_context("lossless payload");
  }
  if (shuffled->size() != n * sizeof(float)) {
    return Status::corrupt_data("lossless: shuffled size mismatch");
  }
  std::vector<float> values(n);
  unshuffle_bytes(*shuffled, values);

  compress::DecompressResult result;
  result.field = data::Field{view->field_name, view->dims, std::move(values)};
  result.native_wall_time = timer.elapsed();
  return result;
}

}  // namespace lcp::lossless
