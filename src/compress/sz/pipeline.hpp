#pragma once
// Fused SZ hot-path kernels: Lorenzo prediction and linear-scaling
// quantization (or reconstruction) in one pass over the field.
//
// The per-site work is compiled once per (rank, predictor) pair, so the
// inner loops carry no stencil dispatch, and interior rows — where every
// causal neighbour exists — run an unguarded stencil. Row-major traversal
// keeps the previous plane/row in cache, which is the access pattern the
// Lorenzo stencils want.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/sz/quantizer.hpp"

namespace lcp::sz {

/// Prediction stencil family.
enum class SzPredictor : std::uint8_t {
  kFirstOrder = 0,   ///< classic Lorenzo (SZ 1.x/2.x default path)
  kSecondOrder = 1,  ///< second-order Lorenzo (Zhao et al., HPDC'20)
};

/// Runs prediction+quantization over the field in row-major order.
/// Fills `codes` (one per element) and appends to `exact` (raw bits of
/// unpredictable samples, in stream order). `decoded` is resized and
/// carries the decoder-visible values.
void predict_quantize_fused(std::span<const float> values,
                            std::span<const std::size_t> ext,
                            SzPredictor predictor,
                            const LinearQuantizer& quantizer,
                            std::vector<std::uint32_t>& codes,
                            std::vector<std::uint32_t>& exact,
                            std::vector<float>& decoded);

/// Inverse pass: rebuilds `decoded` (sized to the element count by the
/// caller) from quantization codes and the exact-value side stream.
/// Returns false if the streams are inconsistent (bad code, exhausted
/// exact values); `exact_consumed` reports how many exact values were
/// used either way.
[[nodiscard]] bool reconstruct_fused(std::span<const std::uint32_t> codes,
                                     std::span<const float> exact,
                                     std::span<const std::size_t> ext,
                                     SzPredictor predictor,
                                     const LinearQuantizer& quantizer,
                                     std::span<float> decoded,
                                     std::size_t& exact_consumed);

}  // namespace lcp::sz
