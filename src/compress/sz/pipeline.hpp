#pragma once
// SZ hot-path kernels: prequantized integer Lorenzo prediction and
// linear-scaling quantization (or reconstruction) over the field.
//
// The pipeline is the cuSZ-style prequantized formulation (see
// compress/sz/prequant.hpp): each sample is first snapped to its error-
// bound grid index independently, the Lorenzo stencil then runs in exact
// integer arithmetic over that grid, and only sites whose float32
// reconstruction would break the bound (or that fall off the grid) are
// stored exactly. Removing the reconstructed-value feedback chain makes
// the encoder embarrassingly parallel, which is what lets the AVX2
// dispatch level (compress/simd/dispatch.hpp) run 8-lane kernels that are
// bit-identical to the scalar path — same codes, same exact stream, same
// decoded values, under either dispatch level.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/sz/quantizer.hpp"

namespace lcp::sz {

/// Prediction stencil family.
enum class SzPredictor : std::uint8_t {
  kFirstOrder = 0,   ///< classic Lorenzo (SZ 1.x/2.x default path)
  kSecondOrder = 1,  ///< second-order Lorenzo (Zhao et al., HPDC'20)
};

/// Runs prediction+quantization over the field in row-major order.
/// Fills `codes` (one per element) and appends to `exact` (raw bits of
/// unpredictable samples, in stream order). `decoded` is resized and
/// carries the decoder-visible values.
void predict_quantize_fused(std::span<const float> values,
                            std::span<const std::size_t> ext,
                            SzPredictor predictor,
                            const LinearQuantizer& quantizer,
                            std::vector<std::uint32_t>& codes,
                            std::vector<std::uint32_t>& exact,
                            std::vector<float>& decoded);

/// Inverse pass: rebuilds `decoded` (sized to the element count by the
/// caller) from quantization codes and the exact-value side stream.
/// Returns false if the streams are inconsistent (bad code, exhausted
/// exact values); `exact_consumed` reports how many exact values were
/// used either way.
[[nodiscard]] bool reconstruct_fused(std::span<const std::uint32_t> codes,
                                     std::span<const float> exact,
                                     std::span<const std::size_t> ext,
                                     SzPredictor predictor,
                                     const LinearQuantizer& quantizer,
                                     std::span<float> decoded,
                                     std::size_t& exact_consumed);

}  // namespace lcp::sz
