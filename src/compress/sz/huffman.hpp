#pragma once
// Canonical Huffman coder for SZ quantization codes.
//
// Encoding: build per-symbol lengths from frequencies (package-merge-free
// heap construction with a 32-bit length cap enforced by frequency
// flattening), derive canonical codes, serialize the length table with RLE,
// then emit the symbol stream. Decoding rebuilds the canonical table and
// walks the bit stream length-by-length.

#include <cstdint>
#include <span>
#include <vector>

#include "support/bitstream.hpp"
#include "support/status.hpp"

namespace lcp::sz {

/// Encodes `symbols` (values < alphabet_size) into a self-contained blob.
[[nodiscard]] std::vector<std::uint8_t> huffman_encode(
    std::span<const std::uint32_t> symbols, std::uint32_t alphabet_size);

/// Decodes a blob from huffman_encode. `expected_count` guards against
/// corrupt streams claiming absurd sizes.
[[nodiscard]] lcp::Expected<std::vector<std::uint32_t>> huffman_decode(
    std::span<const std::uint8_t> blob, std::uint64_t max_count = UINT64_MAX);

/// huffman_decode into a caller-owned vector (cleared and resized), so hot
/// paths can reuse pooled storage instead of allocating the full symbol
/// buffer on every call.
[[nodiscard]] Status huffman_decode_into(std::span<const std::uint8_t> blob,
                                         std::uint64_t max_count,
                                         std::vector<std::uint32_t>& out);

/// Computes canonical code lengths for `freq` (internal; exposed for tests).
/// Lengths are capped at 32 bits. Symbols with zero frequency get length 0.
[[nodiscard]] std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freq);

}  // namespace lcp::sz
