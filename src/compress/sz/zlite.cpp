#include "compress/sz/zlite.hpp"

#include <bit>
#include <cstring>

#include "support/buffer_pool.hpp"

namespace lcp::sz {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxDistance = 1 << 20;
constexpr std::size_t kHashBits = 16;

std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761U) >> (32 - kHashBits);
}

void write_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool read_varint(std::span<const std::uint8_t> in, std::size_t& pos,
                 std::uint64_t& v) noexcept {
  v = 0;
  unsigned shift = 0;
  while (pos < in.size() && shift < 64) {
    const std::uint8_t byte = in[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

std::vector<std::uint8_t> zlite_compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);
  write_varint(out, input.size());

  // 256 KiB hash table, pooled: recycled across calls on the same thread
  // so the parallel compression path does not pay an mmap round-trip per
  // chunk just to look up matches.
  ScratchLease<std::uint32_t> head_lease{std::size_t{1} << kHashBits};
  auto& head = head_lease.get();
  head.assign(std::size_t{1} << kHashBits, UINT32_MAX);

  std::size_t pos = 0;
  std::size_t literal_start = 0;
  while (pos + kMinMatch <= input.size()) {
    const std::uint32_t h = hash4(&input[pos]);
    const std::uint32_t candidate = head[h];
    head[h] = static_cast<std::uint32_t>(pos);

    std::size_t match_len = 0;
    if (candidate != UINT32_MAX && pos - candidate <= kMaxDistance &&
        std::memcmp(&input[candidate], &input[pos], kMinMatch) == 0) {
      match_len = kMinMatch;
      const std::size_t limit = input.size() - pos;
      // Extend 8 bytes at a time; the first XOR difference pinpoints the
      // mismatch byte via its trailing zero count. Same greedy longest
      // match as the byte loop, so the emitted stream is unchanged.
      while (match_len + 8 <= limit) {
        std::uint64_t lhs = 0;
        std::uint64_t rhs = 0;
        std::memcpy(&lhs, &input[candidate + match_len], 8);
        std::memcpy(&rhs, &input[pos + match_len], 8);
        const std::uint64_t diff = lhs ^ rhs;
        if (diff != 0) {
          match_len += static_cast<std::size_t>(std::countr_zero(diff)) >> 3;
          break;
        }
        match_len += 8;
      }
      if (match_len + 8 > limit) {
        while (match_len < limit &&
               input[candidate + match_len] == input[pos + match_len]) {
          ++match_len;
        }
      }
    }

    if (match_len >= kMinMatch) {
      // literal run | match
      write_varint(out, pos - literal_start);
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(literal_start),
                 input.begin() + static_cast<std::ptrdiff_t>(pos));
      write_varint(out, match_len);
      write_varint(out, pos - candidate);
      // Insert sparse hash entries inside the match to keep the table warm.
      const std::size_t end = pos + match_len;
      for (std::size_t i = pos + 1; i + kMinMatch <= end; i += 3) {
        head[hash4(&input[i])] = static_cast<std::uint32_t>(i);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  // Trailing literals with a terminating zero-length match.
  write_varint(out, input.size() - literal_start);
  out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(literal_start),
             input.end());
  write_varint(out, 0);
  return out;
}

Expected<std::vector<std::uint8_t>> zlite_decompress(
    std::span<const std::uint8_t> input, std::uint64_t max_output) {
  std::size_t pos = 0;
  std::uint64_t total = 0;
  if (!read_varint(input, pos, total)) {
    return Status::corrupt_data("zlite: missing size prefix");
  }
  if (total > max_output) {
    return Status::corrupt_data("zlite: declared size exceeds limit");
  }
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(total));

  while (true) {
    std::uint64_t literal_len = 0;
    if (!read_varint(input, pos, literal_len)) {
      return Status::corrupt_data("zlite: truncated literal length");
    }
    // Subtraction form: `pos + literal_len` could wrap for a hostile
    // 64-bit varint and sail past both checks.
    if (literal_len > input.size() - pos || literal_len > total - out.size()) {
      return Status::corrupt_data("zlite: literal run out of bounds");
    }
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
               input.begin() + static_cast<std::ptrdiff_t>(pos + literal_len));
    pos += static_cast<std::size_t>(literal_len);

    std::uint64_t match_len = 0;
    if (!read_varint(input, pos, match_len)) {
      return Status::corrupt_data("zlite: truncated match length");
    }
    if (match_len == 0) {
      break;
    }
    std::uint64_t dist = 0;
    if (!read_varint(input, pos, dist)) {
      return Status::corrupt_data("zlite: truncated match distance");
    }
    if (dist == 0 || dist > out.size() || match_len > total - out.size()) {
      return Status::corrupt_data("zlite: match out of bounds");
    }
    // Overlapping matches (dist < len) are legal and must replicate the
    // period byte-by-byte. For dist >= 8 the source window never reaches
    // the bytes being written (src + i + 8 <= dst + i), so the copy can
    // move 8-byte blocks after one resize; short distances keep the
    // byte loop.
    const std::size_t src = out.size() - static_cast<std::size_t>(dist);
    const std::size_t len = static_cast<std::size_t>(match_len);
    if (dist >= 8) {
      const std::size_t dst = out.size();
      out.resize(dst + len);
      std::uint8_t* data = out.data();
      std::size_t i = 0;
      for (; i + 8 <= len; i += 8) {
        std::memcpy(data + dst + i, data + src + i, 8);
      }
      for (; i < len; ++i) {
        data[dst + i] = data[src + i];
      }
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
    }
  }
  if (out.size() != total) {
    return Status::corrupt_data("zlite: output size mismatch");
  }
  return out;
}

}  // namespace lcp::sz
