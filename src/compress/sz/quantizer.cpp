#include "compress/sz/quantizer.hpp"

// Header-inline; TU anchors the library object.
