#include "compress/sz/sz_compressor.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "compress/common/container.hpp"
#include "compress/sz/huffman.hpp"
#include "compress/sz/pipeline.hpp"
#include "compress/sz/quantizer.hpp"
#include "compress/sz/zlite.hpp"
#include "support/buffer_pool.hpp"
#include "support/bytestream.hpp"
#include "support/timer.hpp"

namespace lcp::sz {
namespace {

// v2: prequantized integer Lorenzo pipeline (compress/sz/prequant.hpp).
// v1 payloads used reconstructed-value feedback prediction and would
// silently misdecode under the v2 semantics, so the version gates them out.
constexpr std::uint8_t kPayloadVersion = 2;

/// Collapses rank-4 fields to 3-D by merging the two slowest axes; SZ's
/// highest-order stencil is 3-D.
std::vector<std::size_t> effective_extents(const data::Dims& dims) {
  auto ext = dims.extents();
  while (ext.size() > 3) {
    ext[1] *= ext[0];
    ext.erase(ext.begin());
  }
  return ext;
}

/// Packs one bit per element into bytes (LSB-first).
std::vector<std::uint8_t> pack_bits(const std::vector<bool>& bits) {
  std::vector<std::uint8_t> out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) {
      out[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
    }
  }
  return out;
}

bool unpack_bit(std::span<const std::uint8_t> bytes, std::size_t i) {
  return ((bytes[i >> 3] >> (i & 7)) & 1u) != 0;
}

}  // namespace

Expected<compress::CompressResult> SzCompressor::compress(
    const data::Field& field, const compress::ErrorBound& bound) const {
  const bool relative =
      bound.mode == compress::BoundMode::kPointwiseRelative;
  if (bound.mode != compress::BoundMode::kAbsolute && !relative) {
    return Status::unsupported(
        "sz supports absolute and pointwise-relative bounds only");
  }
  if (bound.value <= 0.0) {
    return Status::invalid_argument("error bound must be positive");
  }
  if (relative && (bound.value < 1e-6 || bound.value > 0.5)) {
    return Status::invalid_argument(
        "pointwise-relative bound must be in [1e-6, 0.5]");
  }
  LCP_RETURN_IF_ERROR(compress::validate_finite(field));

  Timer timer;
  const auto ext = effective_extents(field.dims());

  // PW_REL (the paper's ref [4]): compress log|x| with an absolute bound of
  // log(1+rel); |log x' - log x| <= log(1+rel) implies |x'-x| <= rel*|x|.
  // Signs and exact zeros travel in side bitmaps. The 0.95 margin absorbs
  // the float32 rounding of the log and exp evaluations.
  std::span<const float> work = field.values();
  std::vector<float> logs;
  std::vector<std::uint8_t> sign_bytes;
  std::vector<std::uint8_t> zero_bytes;
  double eb_abs = bound.value;
  if (relative) {
    eb_abs = std::log1p(bound.value) * 0.95;
    const std::size_t n = field.element_count();
    logs.resize(n);
    std::vector<bool> negatives(n, false);
    std::vector<bool> zeros(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      const float v = field.values()[i];
      if (v == 0.0F) {
        zeros[i] = true;
        logs[i] = 0.0F;
      } else {
        negatives[i] = v < 0.0F;
        logs[i] = static_cast<float>(std::log(std::fabs(static_cast<double>(v))));
      }
    }
    sign_bytes = zlite_compress(pack_bits(negatives));
    zero_bytes = zlite_compress(pack_bits(zeros));
    work = logs;
  }

  const LinearQuantizer quantizer{eb_abs, options_.quantizer_radius};

  // Pooled scratch: chunk-parallel compression runs this function once per
  // slab per worker, and fresh multi-MB vectors each time serialize the
  // workers on the allocator (mmap churn). The leases return the buffers
  // to the calling thread's pool on scope exit.
  const std::size_t n_elements = field.element_count();
  ScratchLease<std::uint32_t> codes_lease{n_elements};
  ScratchLease<std::uint32_t> exact_lease;
  ScratchLease<float> decoded_lease{n_elements};
  auto& codes = codes_lease.get();
  auto& exact = exact_lease.get();
  auto& decoded = decoded_lease.get();
  predict_quantize_fused(work, ext, options_.predictor, quantizer, codes,
                         exact, decoded);

  auto huffman = huffman_encode(codes, quantizer.alphabet_size());
  std::vector<std::uint8_t> entropy_blob;
  if (options_.use_lossless_backend) {
    entropy_blob = zlite_compress(huffman);
  } else {
    entropy_blob = std::move(huffman);
  }

  ByteWriter payload;
  payload.reserve(entropy_blob.size() + exact.size() * sizeof(std::uint32_t) +
                  sign_bytes.size() + zero_bytes.size() + 64);
  payload.write_u8(kPayloadVersion);
  payload.write_u8(options_.use_lossless_backend ? 1 : 0);
  payload.write_u8(static_cast<std::uint8_t>(options_.predictor));
  payload.write_u8(relative ? 1 : 0);  // transform: 0 = none, 1 = log
  if (relative) {
    payload.write_blob(sign_bytes);
    payload.write_blob(zero_bytes);
  }
  payload.write_u32(quantizer.radius());
  payload.write_u64(entropy_blob.size());
  payload.write_bytes(entropy_blob);
  payload.write_u64(exact.size());
  for (std::uint32_t bits : exact) {
    payload.write_u32(bits);
  }

  const auto payload_bytes = payload.finish();
  compress::CompressResult result;
  result.container = compress::build_container("sz", bound, field.dims(),
                                               field.name(), payload_bytes);
  result.input_bytes = field.size_bytes();
  result.output_bytes = Bytes{result.container.size()};
  result.native_wall_time = timer.elapsed();
  return result;
}

Expected<compress::DecompressResult> SzCompressor::decompress(
    std::span<const std::uint8_t> container) const {
  Timer timer;
  auto view = compress::parse_container(container);
  if (!view) {
    return view.status().with_context("sz container");
  }
  if (view->codec != "sz") {
    return Status::invalid_argument("container codec is not sz");
  }

  ByteReader r{view->payload};
  auto version = r.read_u8();
  if (!version || *version != kPayloadVersion) {
    return Status::unsupported("unknown sz payload version");
  }
  auto lossless = r.read_u8();
  if (!lossless) {
    return lossless.status().with_context("sz header");
  }
  auto predictor_raw = r.read_u8();
  if (!predictor_raw || *predictor_raw > 1) {
    return Status::corrupt_data("sz: unknown predictor id");
  }
  const auto predictor = static_cast<SzPredictor>(*predictor_raw);
  auto transform = r.read_u8();
  if (!transform || *transform > 1) {
    return Status::corrupt_data("sz: unknown transform id");
  }
  const bool relative = *transform == 1;
  std::span<const std::uint8_t> sign_blob;
  std::span<const std::uint8_t> zero_blob;
  if (relative) {
    auto signs = r.read_blob();
    auto zeros = r.read_blob();
    if (!signs || !zeros) {
      return Status::corrupt_data("sz: truncated sign/zero bitmaps");
    }
    sign_blob = *signs;
    zero_blob = *zeros;
  }
  auto radius = r.read_u32();
  if (!radius || *radius == 0) {
    return Status::corrupt_data("sz: bad quantizer radius");
  }
  auto entropy_size = r.read_u64();
  if (!entropy_size) {
    return entropy_size.status().with_context("sz entropy size");
  }
  auto entropy_blob = r.read_bytes(static_cast<std::size_t>(*entropy_size));
  if (!entropy_blob) {
    return entropy_blob.status().with_context("sz entropy blob");
  }

  const std::size_t n = view->dims.element_count();
  // Pooled like the compress-side scratch: the decoded symbol buffer is the
  // largest decompression allocation (4 bytes per element) and would
  // otherwise be mapped and faulted in fresh on every call.
  ScratchLease<std::uint32_t> codes_lease;
  auto& codes = codes_lease.get();
  if (*lossless != 0) {
    // Cap the inflated size: huffman blob is bounded by table + payload.
    auto huffman = zlite_decompress(*entropy_blob, 64 + 8 * n + (n + 1) * 16);
    if (!huffman) {
      return huffman.status().with_context("sz entropy payload");
    }
    auto status = huffman_decode_into(*huffman, n, codes);
    if (!status.is_ok()) {
      return status.with_context("sz entropy payload");
    }
  } else {
    auto status = huffman_decode_into(*entropy_blob, n, codes);
    if (!status.is_ok()) {
      return status.with_context("sz entropy payload");
    }
  }
  if (codes.size() != n) {
    return Status::corrupt_data("sz: code count mismatch");
  }

  auto exact_count = r.read_u64();
  if (!exact_count) {
    return exact_count.status().with_context("sz unpredictables");
  }
  if (*exact_count > n) {
    return Status::corrupt_data("sz: more unpredictables than elements");
  }
  std::vector<float> exact;
  exact.reserve(static_cast<std::size_t>(*exact_count));
  for (std::uint64_t i = 0; i < *exact_count; ++i) {
    auto bits = r.read_u32();
    if (!bits) {
      return bits.status().with_context("sz unpredictables");
    }
    exact.push_back(std::bit_cast<float>(*bits));
  }

  const double eb_abs = relative ? std::log1p(view->bound.value) * 0.95
                                 : view->bound.value;
  const LinearQuantizer quantizer{eb_abs, *radius};
  const auto ext = effective_extents(view->dims);
  std::vector<float> decoded(n, 0.0F);
  std::size_t exact_pos = 0;
  const bool ok = reconstruct_fused(codes, exact, ext, predictor, quantizer,
                                    decoded, exact_pos);
  if (!ok || exact_pos != exact.size()) {
    return Status::corrupt_data("sz: stream inconsistent with unpredictables");
  }

  if (relative) {
    const auto signs = zlite_decompress(sign_blob, (n + 7) / 8);
    const auto zeros = zlite_decompress(zero_blob, (n + 7) / 8);
    if (!signs || !zeros || signs->size() != (n + 7) / 8 ||
        zeros->size() != (n + 7) / 8) {
      return Status::corrupt_data("sz: sign/zero bitmap mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (unpack_bit(*zeros, i)) {
        decoded[i] = 0.0F;
      } else {
        const double magnitude = std::exp(static_cast<double>(decoded[i]));
        decoded[i] = static_cast<float>(unpack_bit(*signs, i) ? -magnitude
                                                              : magnitude);
      }
    }
  }

  compress::DecompressResult result;
  result.field = data::Field{view->field_name, view->dims, std::move(decoded)};
  result.native_wall_time = timer.elapsed();
  return result;
}

}  // namespace lcp::sz
