#pragma once
// Linear-scaling quantizer: maps prediction residuals to integer codes with
// bin width 2*eb, guaranteeing |reconstructed - original| <= eb for every
// quantized sample. Residuals outside the code radius (or whose float32
// reconstruction would violate the bound) are flagged unpredictable and
// stored exactly.

#include <cmath>
#include <cstdint>
#include <optional>

namespace lcp::sz {

/// Code 0 is reserved for "unpredictable"; valid codes are [1, 2*radius).
class LinearQuantizer {
 public:
  LinearQuantizer(double error_bound, std::uint32_t radius = 32768) noexcept
      : eb_(error_bound), radius_(radius) {}

  [[nodiscard]] double error_bound() const noexcept { return eb_; }
  [[nodiscard]] std::uint32_t radius() const noexcept { return radius_; }
  [[nodiscard]] std::uint32_t alphabet_size() const noexcept {
    return 2 * radius_;
  }

  /// Attempts to quantize `value` against `prediction`. On success returns
  /// the code and writes the float32 reconstruction to `reconstructed`.
  [[nodiscard]] std::optional<std::uint32_t> quantize(
      double value, double prediction, float& reconstructed) const noexcept {
    const double diff = value - prediction;
    const double scaled = diff / (2.0 * eb_);
    if (!(std::fabs(scaled) < static_cast<double>(radius_) - 1.0)) {
      return std::nullopt;  // also catches NaN
    }
    const auto q = static_cast<std::int64_t>(std::llround(scaled));
    const float recon =
        static_cast<float>(prediction + static_cast<double>(q) * 2.0 * eb_);
    // float32 rounding of the reconstruction can push the realized error
    // past the bound near huge magnitudes; such samples go unpredictable.
    if (!(std::fabs(static_cast<double>(recon) - value) <= eb_)) {
      return std::nullopt;
    }
    reconstructed = recon;
    return static_cast<std::uint32_t>(q + radius_);
  }

  /// Reconstruction for a code produced by quantize (code != 0).
  [[nodiscard]] float reconstruct(std::uint32_t code,
                                  double prediction) const noexcept {
    const auto q =
        static_cast<std::int64_t>(code) - static_cast<std::int64_t>(radius_);
    return static_cast<float>(prediction + static_cast<double>(q) * 2.0 * eb_);
  }

 private:
  double eb_;
  std::uint32_t radius_;
};

}  // namespace lcp::sz
