#include "compress/sz/huffman.hpp"

#include <algorithm>
#include <queue>

#include "support/bytestream.hpp"

namespace lcp::sz {
namespace {

constexpr unsigned kMaxCodeLength = 32;

struct HeapNode {
  std::uint64_t weight;
  std::uint32_t index;  // tie-break for determinism
  bool operator>(const HeapNode& o) const {
    return weight != o.weight ? weight > o.weight : index > o.index;
  }
};

/// Builds code lengths by standard Huffman tree construction.
std::vector<std::uint8_t> build_lengths(std::span<const std::uint64_t> freq) {
  const std::uint32_t n = static_cast<std::uint32_t>(freq.size());
  std::vector<std::uint8_t> lengths(n, 0);

  // Internal representation: parent links over (symbols + internal nodes).
  std::vector<std::uint32_t> parent;
  parent.reserve(2 * n);
  std::vector<std::uint64_t> weight;
  weight.reserve(2 * n);

  std::priority_queue<HeapNode, std::vector<HeapNode>, std::greater<>> heap;
  std::uint32_t live = 0;
  std::uint32_t last_symbol = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    weight.push_back(freq[s]);
    parent.push_back(UINT32_MAX);
    if (freq[s] > 0) {
      heap.push({freq[s], s});
      ++live;
      last_symbol = s;
    }
  }
  if (live == 0) {
    return lengths;
  }
  if (live == 1) {
    lengths[last_symbol] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const HeapNode a = heap.top();
    heap.pop();
    const HeapNode b = heap.top();
    heap.pop();
    const auto node = static_cast<std::uint32_t>(weight.size());
    weight.push_back(a.weight + b.weight);
    parent.push_back(UINT32_MAX);
    parent[a.index] = node;
    parent[b.index] = node;
    heap.push({a.weight + b.weight, node});
  }
  for (std::uint32_t s = 0; s < n; ++s) {
    if (freq[s] == 0) {
      continue;
    }
    unsigned depth = 0;
    std::uint32_t cur = s;
    while (parent[cur] != UINT32_MAX) {
      cur = parent[cur];
      ++depth;
    }
    lengths[s] = static_cast<std::uint8_t>(depth);
  }
  return lengths;
}

/// Canonical codes from lengths: symbols sorted by (length, index).
std::vector<std::uint64_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  std::vector<std::uint64_t> codes(lengths.size(), 0);
  std::vector<std::uint32_t> count(kMaxCodeLength + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l > 0) {
      ++count[l];
    }
  }
  std::vector<std::uint64_t> next(kMaxCodeLength + 2, 0);
  std::uint64_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) {
      codes[s] = next[lengths[s]]++;
    }
  }
  return codes;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freq) {
  // Cap excessive depths by flattening frequencies and rebuilding. With a
  // 2^16-ish alphabet and 64-bit weights, a single pass virtually always
  // fits in 32 bits, but skewed adversarial inputs are handled by halving.
  std::vector<std::uint64_t> work(freq.begin(), freq.end());
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto lengths = build_lengths(work);
    const auto deepest =
        *std::max_element(lengths.begin(), lengths.end());
    if (deepest <= kMaxCodeLength) {
      return lengths;
    }
    for (auto& w : work) {
      if (w > 0) {
        w = (w + 1) / 2;
      }
    }
  }
  // Degenerate fallback: fixed-length codes.
  std::vector<std::uint8_t> lengths(freq.size(), 0);
  unsigned bits = 1;
  while ((std::size_t{1} << bits) < freq.size()) {
    ++bits;
  }
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) {
      lengths[s] = static_cast<std::uint8_t>(bits);
    }
  }
  return lengths;
}

std::vector<std::uint8_t> huffman_encode(std::span<const std::uint32_t> symbols,
                                         std::uint32_t alphabet_size) {
  LCP_REQUIRE(alphabet_size > 0, "alphabet must be non-empty");
  std::vector<std::uint64_t> freq(alphabet_size, 0);
  for (std::uint32_t s : symbols) {
    LCP_REQUIRE(s < alphabet_size, "symbol out of alphabet range");
    ++freq[s];
  }
  const auto lengths = huffman_code_lengths(freq);
  const auto codes = canonical_codes(lengths);

  ByteWriter header;
  header.write_u32(alphabet_size);
  header.write_u64(symbols.size());
  // RLE of the length table: (length byte, run length u32).
  std::uint32_t runs = 0;
  ByteWriter rle;
  for (std::size_t i = 0; i < lengths.size();) {
    std::size_t j = i;
    while (j < lengths.size() && lengths[j] == lengths[i]) {
      ++j;
    }
    rle.write_u8(lengths[i]);
    rle.write_u32(static_cast<std::uint32_t>(j - i));
    ++runs;
    i = j;
  }
  header.write_u32(runs);
  auto rle_bytes = rle.finish();
  header.write_bytes(rle_bytes);

  BitWriter bits;
  for (std::uint32_t s : symbols) {
    // Canonical codes are MSB-first by construction; emit MSB-first so the
    // decoder can extend a prefix one bit at a time.
    const unsigned len = lengths[s];
    const std::uint64_t code = codes[s];
    for (unsigned b = 0; b < len; ++b) {
      bits.write_bit(((code >> (len - 1 - b)) & 1) != 0);
    }
  }
  auto payload = bits.finish();

  ByteWriter out;
  auto header_bytes = header.finish();
  out.write_bytes(header_bytes);
  out.write_u64(payload.size());
  out.write_bytes(payload);
  return out.finish();
}

Expected<std::vector<std::uint32_t>> huffman_decode(
    std::span<const std::uint8_t> blob, std::uint64_t max_count) {
  ByteReader r{blob};
  auto alphabet = r.read_u32();
  if (!alphabet || *alphabet == 0) {
    return Status::corrupt_data("huffman: bad alphabet size");
  }
  auto count = r.read_u64();
  if (!count) {
    return count.status();
  }
  if (*count > max_count) {
    return Status::corrupt_data("huffman: symbol count exceeds expectation");
  }
  auto runs = r.read_u32();
  if (!runs) {
    return runs.status();
  }
  std::vector<std::uint8_t> lengths;
  lengths.reserve(*alphabet);
  for (std::uint32_t run = 0; run < *runs; ++run) {
    auto len = r.read_u8();
    auto n = r.read_u32();
    if (!len || !n) {
      return Status::corrupt_data("huffman: truncated length table");
    }
    if (*len > kMaxCodeLength) {
      return Status::corrupt_data("huffman: code length too large");
    }
    if (lengths.size() + *n > *alphabet) {
      return Status::corrupt_data("huffman: length table overflow");
    }
    lengths.insert(lengths.end(), *n, *len);
  }
  if (lengths.size() != *alphabet) {
    return Status::corrupt_data("huffman: length table size mismatch");
  }

  // Canonical decode tables: for each length, the first code and the index
  // into the symbol list ordered by (length, symbol).
  std::vector<std::uint32_t> count_by_len(kMaxCodeLength + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l > 0) {
      ++count_by_len[l];
    }
  }
  std::vector<std::uint64_t> first_code(kMaxCodeLength + 2, 0);
  std::vector<std::uint32_t> first_index(kMaxCodeLength + 2, 0);
  std::uint64_t code = 0;
  std::uint32_t index = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count_by_len[l - 1]) << 1;
    first_code[l] = code;
    first_index[l] = index;
    index += count_by_len[l];
  }
  std::vector<std::uint32_t> symbols_by_rank;
  symbols_by_rank.reserve(index);
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    for (std::uint32_t s = 0; s < *alphabet; ++s) {
      if (lengths[s] == l) {
        symbols_by_rank.push_back(s);
      }
    }
  }

  auto payload_size = r.read_u64();
  if (!payload_size) {
    return payload_size.status();
  }
  auto payload = r.read_bytes(static_cast<std::size_t>(*payload_size));
  if (!payload) {
    return payload.status();
  }

  BitReader bits{*payload};
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    std::uint64_t acc = 0;
    unsigned len = 0;
    std::uint32_t symbol = UINT32_MAX;
    while (len < kMaxCodeLength) {
      acc = (acc << 1) | (bits.read_bit() ? 1u : 0u);
      ++len;
      if (count_by_len[len] == 0) {
        continue;
      }
      const std::uint64_t offset = acc - first_code[len];
      if (acc >= first_code[len] && offset < count_by_len[len]) {
        symbol = symbols_by_rank[first_index[len] + offset];
        break;
      }
    }
    if (symbol == UINT32_MAX || bits.overflowed()) {
      return Status::corrupt_data("huffman: invalid code in stream");
    }
    out.push_back(symbol);
  }
  return out;
}

}  // namespace lcp::sz
