#include "compress/sz/huffman.hpp"

#include <algorithm>
#include <queue>

#include "compress/simd/dispatch.hpp"
#include "support/buffer_pool.hpp"
#include "support/bytestream.hpp"

namespace lcp::sz {
namespace {

constexpr unsigned kMaxCodeLength = 32;

/// Primary decode table width: codes up to this many bits resolve with one
/// table lookup; longer codes (rare tails of skewed histograms) fall back
/// to the canonical per-length walk.
constexpr unsigned kDecodeTableBits = 11;

struct HeapNode {
  std::uint64_t weight;
  std::uint32_t index;  // tie-break for determinism
  bool operator>(const HeapNode& o) const {
    return weight != o.weight ? weight > o.weight : index > o.index;
  }
};

/// Reverses the low `len` bits of `v` (code <-> stream bit order).
std::uint64_t reverse_bits(std::uint64_t v, unsigned len) {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < len; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

/// Builds code lengths by standard Huffman tree construction. Depths are
/// computed in one topological pass over the parent links: internal nodes
/// are appended after their children, so parent indices are always larger
/// and a single descending sweep resolves every depth.
std::vector<std::uint8_t> build_lengths(std::span<const std::uint64_t> freq) {
  const std::uint32_t n = static_cast<std::uint32_t>(freq.size());
  std::vector<std::uint8_t> lengths(n, 0);

  // Internal representation: parent links over (symbols + internal nodes).
  std::vector<std::uint32_t> parent;
  parent.reserve(2 * n);

  std::priority_queue<HeapNode, std::vector<HeapNode>, std::greater<>> heap;
  std::uint32_t live = 0;
  std::uint32_t last_symbol = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    parent.push_back(UINT32_MAX);
    if (freq[s] > 0) {
      heap.push({freq[s], s});
      ++live;
      last_symbol = s;
    }
  }
  if (live == 0) {
    return lengths;
  }
  if (live == 1) {
    lengths[last_symbol] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const HeapNode a = heap.top();
    heap.pop();
    const HeapNode b = heap.top();
    heap.pop();
    const auto node = static_cast<std::uint32_t>(parent.size());
    parent.push_back(UINT32_MAX);
    parent[a.index] = node;
    parent[b.index] = node;
    heap.push({a.weight + b.weight, node});
  }

  // With 64-bit weights the deepest possible tree is Fibonacci-bounded at
  // ~92 levels, so a 16-bit depth cannot saturate.
  const auto total = static_cast<std::uint32_t>(parent.size());
  std::vector<std::uint16_t> depth(total, 0);
  for (std::uint32_t idx = total; idx-- > 0;) {
    if (parent[idx] != UINT32_MAX) {
      depth[idx] = static_cast<std::uint16_t>(depth[parent[idx]] + 1);
    }
  }
  for (std::uint32_t s = 0; s < n; ++s) {
    if (freq[s] > 0) {
      lengths[s] = static_cast<std::uint8_t>(std::min<std::uint16_t>(
          depth[s], 255));
    }
  }
  return lengths;
}

/// Canonical codes from lengths: symbols sorted by (length, index).
std::vector<std::uint64_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  std::vector<std::uint64_t> codes(lengths.size(), 0);
  std::vector<std::uint32_t> count(kMaxCodeLength + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l > 0) {
      ++count[l];
    }
  }
  std::vector<std::uint64_t> next(kMaxCodeLength + 2, 0);
  std::uint64_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) {
      codes[s] = next[lengths[s]]++;
    }
  }
  return codes;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freq) {
  // Cap excessive depths by flattening frequencies and rebuilding. With a
  // 2^16-ish alphabet and 64-bit weights, a single pass virtually always
  // fits in 32 bits, but skewed adversarial inputs are handled by halving.
  ScratchLease<std::uint64_t> work_lease{freq.size()};
  auto& work = work_lease.get();
  work.assign(freq.begin(), freq.end());
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto lengths = build_lengths(work);
    const auto deepest =
        *std::max_element(lengths.begin(), lengths.end());
    if (deepest <= kMaxCodeLength) {
      return lengths;
    }
    for (auto& w : work) {
      if (w > 0) {
        w = (w + 1) / 2;
      }
    }
  }
  // Degenerate fallback: fixed-length codes.
  std::vector<std::uint8_t> lengths(freq.size(), 0);
  unsigned bits = 1;
  while ((std::size_t{1} << bits) < freq.size()) {
    ++bits;
  }
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) {
      lengths[s] = static_cast<std::uint8_t>(bits);
    }
  }
  return lengths;
}

std::vector<std::uint8_t> huffman_encode(std::span<const std::uint32_t> symbols,
                                         std::uint32_t alphabet_size) {
  LCP_REQUIRE(alphabet_size > 0, "alphabet must be non-empty");
  // The frequency table is half a MiB at SZ's 2^16 alphabet; pooled so the
  // chunk-parallel path does not hammer the allocator once per chunk.
  ScratchLease<std::uint64_t> freq_lease{alphabet_size};
  auto& freq = freq_lease.get();
  freq.assign(alphabet_size, 0);
  for (std::uint32_t s : symbols) {
    LCP_REQUIRE(s < alphabet_size, "symbol out of alphabet range");
    ++freq[s];
  }
  const auto lengths = huffman_code_lengths(freq);
  const auto codes = canonical_codes(lengths);

  ByteWriter header;
  header.write_u32(alphabet_size);
  header.write_u64(symbols.size());
  // RLE of the length table: (length byte, run length u32).
  std::uint32_t runs = 0;
  ByteWriter rle;
  for (std::size_t i = 0; i < lengths.size();) {
    std::size_t j = i;
    while (j < lengths.size() && lengths[j] == lengths[i]) {
      ++j;
    }
    rle.write_u8(lengths[i]);
    rle.write_u32(static_cast<std::uint32_t>(j - i));
    ++runs;
    i = j;
  }
  header.write_u32(runs);
  auto rle_bytes = rle.finish();
  header.write_bytes(rle_bytes);

  // Canonical codes are MSB-first by construction and the decoder consumes
  // them MSB-first; BitWriter emits the low bit of a value first, so each
  // code is emitted pre-reversed as a single write_bits call.
  ScratchLease<std::uint64_t> stream_codes_lease{alphabet_size};
  auto& stream_codes = stream_codes_lease.get();
  stream_codes.assign(alphabet_size, 0);
  std::uint64_t payload_bits = 0;
  for (std::uint32_t s = 0; s < alphabet_size; ++s) {
    if (lengths[s] > 0) {
      stream_codes[s] = reverse_bits(codes[s], lengths[s]);
      payload_bits += freq[s] * lengths[s];
    }
  }
  BitWriter bits;
  bits.reserve(static_cast<std::size_t>((payload_bits + 7) / 8) + 8);
  for (std::uint32_t s : symbols) {
    bits.write_bits(stream_codes[s], lengths[s]);
  }
  auto payload = bits.finish();

  ByteWriter out;
  auto header_bytes = header.finish();
  out.reserve(header_bytes.size() + 8 + payload.size());
  out.write_bytes(header_bytes);
  out.write_u64(payload.size());
  out.write_bytes(payload);
  return out.finish();
}

Expected<std::vector<std::uint32_t>> huffman_decode(
    std::span<const std::uint8_t> blob, std::uint64_t max_count) {
  std::vector<std::uint32_t> out;
  auto status = huffman_decode_into(blob, max_count, out);
  if (!status.is_ok()) {
    return status;
  }
  return out;
}

Status huffman_decode_into(std::span<const std::uint8_t> blob,
                           std::uint64_t max_count,
                           std::vector<std::uint32_t>& out) {
  ByteReader r{blob};
  auto alphabet = r.read_u32();
  if (!alphabet || *alphabet == 0) {
    return Status::corrupt_data("huffman: bad alphabet size");
  }
  auto count = r.read_u64();
  if (!count) {
    return count.status();
  }
  if (*count > max_count) {
    return Status::corrupt_data("huffman: symbol count exceeds expectation");
  }
  auto runs = r.read_u32();
  if (!runs) {
    return runs.status();
  }
  std::vector<std::uint8_t> lengths;
  lengths.reserve(*alphabet);
  for (std::uint32_t run = 0; run < *runs; ++run) {
    auto len = r.read_u8();
    auto n = r.read_u32();
    if (!len || !n) {
      return Status::corrupt_data("huffman: truncated length table");
    }
    if (*len > kMaxCodeLength) {
      return Status::corrupt_data("huffman: code length too large");
    }
    if (lengths.size() + *n > *alphabet) {
      return Status::corrupt_data("huffman: length table overflow");
    }
    lengths.insert(lengths.end(), *n, *len);
  }
  if (lengths.size() != *alphabet) {
    return Status::corrupt_data("huffman: length table size mismatch");
  }

  // Canonical decode tables: for each length, the first code and the index
  // into the symbol list ordered by (length, symbol).
  std::vector<std::uint32_t> count_by_len(kMaxCodeLength + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l > 0) {
      ++count_by_len[l];
    }
  }
  std::vector<std::uint64_t> first_code(kMaxCodeLength + 2, 0);
  std::vector<std::uint32_t> first_index(kMaxCodeLength + 2, 0);
  std::uint64_t code = 0;
  std::uint32_t index = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count_by_len[l - 1]) << 1;
    first_code[l] = code;
    first_index[l] = index;
    index += count_by_len[l];
  }
  // Counting sort of the symbols by (length, symbol) in one pass.
  std::vector<std::uint32_t> symbols_by_rank(index, 0);
  {
    std::vector<std::uint32_t> cursor(first_index.begin(), first_index.end());
    for (std::uint32_t s = 0; s < *alphabet; ++s) {
      if (lengths[s] > 0) {
        symbols_by_rank[cursor[lengths[s]]++] = s;
      }
    }
  }

  const auto codes = canonical_codes(lengths);

  auto payload_size = r.read_u64();
  if (!payload_size) {
    return payload_size.status();
  }
  auto payload = r.read_bytes(static_cast<std::size_t>(*payload_size));
  if (!payload) {
    return payload.status();
  }

  BitReader bits{*payload};
  out.clear();
  out.reserve(static_cast<std::size_t>(*count));

  // Slow path shared by both loops: extend the prefix one bit at a time
  // (codes longer than the table width, or garbage).
  const auto decode_slow = [&](std::uint32_t& symbol) noexcept {
    std::uint64_t acc = 0;
    unsigned len = 0;
    symbol = UINT32_MAX;
    while (len < kMaxCodeLength) {
      acc = (acc << 1) | (bits.read_bit() ? 1u : 0u);
      ++len;
      if (count_by_len[len] == 0) {
        continue;
      }
      const std::uint64_t offset = acc - first_code[len];
      if (acc >= first_code[len] && offset < count_by_len[len]) {
        symbol = symbols_by_rank[first_index[len] + offset];
        break;
      }
    }
    return symbol != UINT32_MAX && !bits.overflowed();
  };

  if (simd::simd_level() >= simd::SimdLevel::kAvx2 &&
      *alphabet <= (std::uint32_t{1} << 17)) {
    // Multi-symbol decode over a wider probe window. SZ's quantizer codes
    // average ~8 bits on smooth fields, so the 11-bit classic table sends
    // nearly one symbol in ten to the bit-serial slow path and almost
    // never fits two codes in one probe. A 16-bit window resolves ~99% of
    // symbols in one lookup and pairs two codes about half the time.
    //
    // Each slot packs into one 64-bit word (the loop is latency-bound on
    // the serial peek -> table load -> skip chain, so the table must stay
    // as small and line-aligned as possible — hence the 2^17 alphabet cap,
    // which SZ's 17-bit quantizer alphabet always satisfies):
    //   bits  0..16  first symbol
    //   bits 17..33  second symbol
    //   bits 34..39  bits consumed when emitting the first symbol only
    //   bits 40..45  bits consumed when emitting both
    //   bits 62..63  symbols resolvable at this slot (0-2)
    //
    // The wide table is built once per decode (pooled across calls, so
    // steady-state decompression re-faults no pages): one pass writes the
    // single-symbol entries — total fill work is bounded by 2^16 slots via
    // the Kraft inequality, regardless of alphabet size — and a second
    // pass upgrades slots to pairs in place. The in-place upgrade is sound
    // because pair entries preserve their own first-symbol and
    // first-length fields, which is all the chaining read needs. Chaining
    // two single-symbol lookups per slot is sound because for
    // len0 + len1 <= window width the second lookup's index bits are all
    // genuine stream bits; the same zero-padding past the end of the
    // payload feeds both this loop and the classic one, so the
    // success/corrupt verdicts are identical.
    constexpr unsigned kWideBits = 16;
    constexpr std::size_t kWideSlots = std::size_t{1} << kWideBits;
    ScratchLease<std::uint64_t> mtable_lease;
    auto& mtable = mtable_lease.get();
    mtable.assign(kWideSlots, 0);
    for (std::uint32_t s = 0; s < *alphabet; ++s) {
      const unsigned len = lengths[s];
      if (len == 0 || len > kWideBits) {
        continue;
      }
      const std::uint64_t base = reverse_bits(codes[s], len);
      const std::size_t fills = std::size_t{1} << (kWideBits - len);
      const std::uint64_t m = s | (std::uint64_t{len} << 34) |
                              (std::uint64_t{len} << 40) |
                              (std::uint64_t{1} << 62);
      for (std::size_t fill = 0; fill < fills; ++fill) {
        mtable[base | (fill << len)] = m;
      }
    }
    for (std::size_t idx = 0; idx < kWideSlots; ++idx) {
      const std::uint64_t m1 = mtable[idx];
      if (m1 == 0) {
        continue;
      }
      const unsigned len0 = static_cast<unsigned>((m1 >> 34) & 63);
      const std::uint64_t m2 = mtable[idx >> len0];
      const unsigned len1 = static_cast<unsigned>((m2 >> 34) & 63);
      if (m2 != 0 && len0 + len1 <= kWideBits) {
        mtable[idx] = (m1 & 0x1FFFF) | ((m2 & 0x1FFFF) << 17) |
                      (std::uint64_t{len0} << 34) |
                      (std::uint64_t{len0 + len1} << 40) |
                      (std::uint64_t{2} << 62);
      }
    }

    // Long codes (beyond the wide window) resolve with the same canonical
    // per-length walk as decode_slow, but over one peeked register instead
    // of a read_bit call per bit. The overflow verdict is unchanged: a
    // match whose final bit lies past the end trips skip_bits exactly
    // where the bit-serial walk would have tripped read_bits.
    const auto decode_long = [&](std::uint32_t& symbol) noexcept {
      const std::uint64_t window = bits.peek_bits(kMaxCodeLength);
      std::uint64_t acc = 0;
      unsigned len = 0;
      symbol = UINT32_MAX;
      while (len < kMaxCodeLength) {
        acc = (acc << 1) | ((window >> len) & 1u);
        ++len;
        if (count_by_len[len] == 0) {
          continue;
        }
        const std::uint64_t offset = acc - first_code[len];
        if (acc >= first_code[len] && offset < count_by_len[len]) {
          symbol = symbols_by_rank[first_index[len] + offset];
          break;
        }
      }
      if (symbol == UINT32_MAX) {
        return false;
      }
      bits.skip_bits(len);
      return !bits.overflowed();
    };

    // The hot loop is a serial dependency chain (probe -> table load ->
    // cursor advance -> next probe), so the body holds the pending stream
    // bits in a register and refills it from memory only every few symbols
    // (a refill banks >= 57 bits; one probe spends at most kWideBits).
    // Everything else is branchless apart from the rare long-code
    // fallback: both symbol slots store unconditionally, and running the
    // loop only while two output slots remain (i + 1 < total) makes the
    // advance and bit counts plain field extracts — a pair entry always
    // consumes both symbols, so `total bits` is the consumption for every
    // resolvable entry. While a full 8-byte refill window is in bounds
    // every consumed bit is a genuine stream bit, so no overflow checks
    // are needed; the last symbols and any long-code fallback run
    // through the bounds-checked BitReader, synced to the register
    // cursor's position on entry.
    const std::uint64_t total = *count;
    out.resize(static_cast<std::size_t>(total) + 1);
    std::uint32_t* dst = out.data();
    std::uint64_t i = 0;

    const std::uint8_t* data = payload->data();
    const std::size_t size = payload->size();
    std::uint64_t buf = 0;  // stream bits [pos, pos + navail), LSB first
    unsigned navail = 0;
    std::uint64_t pos = 0;  // bits consumed, tracked ahead of `bits`

    while (i + 1 < total) {
      if (navail < kWideBits) {
        const auto byte = static_cast<std::size_t>(pos >> 3);
        if (byte + sizeof(std::uint64_t) > size) {
          break;  // within 8 bytes of the end: finish on the checked path
        }
        std::uint64_t word;
        std::memcpy(&word, data + byte, sizeof(word));
        buf = word >> (pos & 7);
        navail = 64 - static_cast<unsigned>(pos & 7);
      }
      const std::uint64_t e = mtable[buf & ((1u << kWideBits) - 1)];
      if (e == 0) {
        bits.skip_bits(pos - bits.bit_position());
        std::uint32_t symbol = UINT32_MAX;
        if (!decode_long(symbol)) {
          return Status::corrupt_data("huffman: invalid code in stream");
        }
        dst[i] = symbol;
        ++i;
        pos = bits.bit_position();
        navail = 0;
        continue;
      }
      const auto consumed = static_cast<unsigned>((e >> 40) & 63);
      dst[i] = static_cast<std::uint32_t>(e & 0x1FFFF);
      dst[i + 1] = static_cast<std::uint32_t>((e >> 17) & 0x1FFFF);
      buf >>= consumed;
      navail -= consumed;
      pos += consumed;
      i += static_cast<std::uint64_t>(e >> 62);
    }

    // Tail (and corrupt-stream) path: same decode over the checked reader,
    // with the overflow verdict deferred to one check after the loop.
    // Deferring is sound because the flag is sticky and the loop always
    // terminates (every iteration advances i); a stream that overflows
    // decodes garbage past that point under either policy and returns the
    // same corrupt verdict.
    bits.skip_bits(pos - bits.bit_position());
    while (i < total) {
      const std::uint64_t e = mtable[bits.peek_fixed<kWideBits>()];
      const auto resolved = static_cast<unsigned>(e >> 62);
      if (resolved == 0) {
        std::uint32_t symbol = UINT32_MAX;
        if (!decode_long(symbol)) {
          return Status::corrupt_data("huffman: invalid code in stream");
        }
        dst[i] = symbol;
        ++i;
        continue;
      }
      const std::uint64_t advance = (resolved == 2 && i + 2 <= total) ? 2 : 1;
      const std::uint64_t consumed =
          advance == 2 ? ((e >> 40) & 63) : ((e >> 34) & 63);
      dst[i] = static_cast<std::uint32_t>(e & 0x1FFFF);
      dst[i + 1] = static_cast<std::uint32_t>((e >> 17) & 0x1FFFF);
      bits.skip_bits(consumed);
      i += advance;
    }
    if (bits.overflowed()) {
      return Status::corrupt_data("huffman: invalid code in stream");
    }
    out.resize(static_cast<std::size_t>(total));
    return Status::ok();
  }

  // Primary lookup table over the next kDecodeTableBits stream bits. The
  // stream carries codes MSB-first but BitReader::peek_bits returns the
  // first stream bit in the LSB, so entries are indexed by the reversed
  // code with every possible fill of the remaining high bits.
  struct TableEntry {
    std::uint32_t symbol = 0;
    std::uint8_t length = 0;  // 0 = not resolvable at table width
  };
  std::vector<TableEntry> table(std::size_t{1} << kDecodeTableBits);
  for (std::uint32_t s = 0; s < *alphabet; ++s) {
    const unsigned len = lengths[s];
    if (len == 0 || len > kDecodeTableBits) {
      continue;
    }
    const std::uint64_t base = reverse_bits(codes[s], len);
    const std::size_t fills = std::size_t{1} << (kDecodeTableBits - len);
    for (std::size_t fill = 0; fill < fills; ++fill) {
      table[base | (fill << len)] = {s, static_cast<std::uint8_t>(len)};
    }
  }

  for (std::uint64_t i = 0; i < *count; ++i) {
    const TableEntry entry = table[bits.peek_bits(kDecodeTableBits)];
    if (entry.length != 0) {
      bits.skip_bits(entry.length);
      if (bits.overflowed()) {
        return Status::corrupt_data("huffman: invalid code in stream");
      }
      out.push_back(entry.symbol);
      continue;
    }
    std::uint32_t symbol = UINT32_MAX;
    if (!decode_slow(symbol)) {
      return Status::corrupt_data("huffman: invalid code in stream");
    }
    out.push_back(symbol);
  }
  return Status::ok();
}

}  // namespace lcp::sz
