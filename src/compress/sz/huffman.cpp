#include "compress/sz/huffman.hpp"

#include <algorithm>
#include <queue>

#include "support/buffer_pool.hpp"
#include "support/bytestream.hpp"

namespace lcp::sz {
namespace {

constexpr unsigned kMaxCodeLength = 32;

/// Primary decode table width: codes up to this many bits resolve with one
/// table lookup; longer codes (rare tails of skewed histograms) fall back
/// to the canonical per-length walk.
constexpr unsigned kDecodeTableBits = 11;

struct HeapNode {
  std::uint64_t weight;
  std::uint32_t index;  // tie-break for determinism
  bool operator>(const HeapNode& o) const {
    return weight != o.weight ? weight > o.weight : index > o.index;
  }
};

/// Reverses the low `len` bits of `v` (code <-> stream bit order).
std::uint64_t reverse_bits(std::uint64_t v, unsigned len) {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < len; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

/// Builds code lengths by standard Huffman tree construction. Depths are
/// computed in one topological pass over the parent links: internal nodes
/// are appended after their children, so parent indices are always larger
/// and a single descending sweep resolves every depth.
std::vector<std::uint8_t> build_lengths(std::span<const std::uint64_t> freq) {
  const std::uint32_t n = static_cast<std::uint32_t>(freq.size());
  std::vector<std::uint8_t> lengths(n, 0);

  // Internal representation: parent links over (symbols + internal nodes).
  std::vector<std::uint32_t> parent;
  parent.reserve(2 * n);

  std::priority_queue<HeapNode, std::vector<HeapNode>, std::greater<>> heap;
  std::uint32_t live = 0;
  std::uint32_t last_symbol = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    parent.push_back(UINT32_MAX);
    if (freq[s] > 0) {
      heap.push({freq[s], s});
      ++live;
      last_symbol = s;
    }
  }
  if (live == 0) {
    return lengths;
  }
  if (live == 1) {
    lengths[last_symbol] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const HeapNode a = heap.top();
    heap.pop();
    const HeapNode b = heap.top();
    heap.pop();
    const auto node = static_cast<std::uint32_t>(parent.size());
    parent.push_back(UINT32_MAX);
    parent[a.index] = node;
    parent[b.index] = node;
    heap.push({a.weight + b.weight, node});
  }

  // With 64-bit weights the deepest possible tree is Fibonacci-bounded at
  // ~92 levels, so a 16-bit depth cannot saturate.
  const auto total = static_cast<std::uint32_t>(parent.size());
  std::vector<std::uint16_t> depth(total, 0);
  for (std::uint32_t idx = total; idx-- > 0;) {
    if (parent[idx] != UINT32_MAX) {
      depth[idx] = static_cast<std::uint16_t>(depth[parent[idx]] + 1);
    }
  }
  for (std::uint32_t s = 0; s < n; ++s) {
    if (freq[s] > 0) {
      lengths[s] = static_cast<std::uint8_t>(std::min<std::uint16_t>(
          depth[s], 255));
    }
  }
  return lengths;
}

/// Canonical codes from lengths: symbols sorted by (length, index).
std::vector<std::uint64_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  std::vector<std::uint64_t> codes(lengths.size(), 0);
  std::vector<std::uint32_t> count(kMaxCodeLength + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l > 0) {
      ++count[l];
    }
  }
  std::vector<std::uint64_t> next(kMaxCodeLength + 2, 0);
  std::uint64_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) {
      codes[s] = next[lengths[s]]++;
    }
  }
  return codes;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freq) {
  // Cap excessive depths by flattening frequencies and rebuilding. With a
  // 2^16-ish alphabet and 64-bit weights, a single pass virtually always
  // fits in 32 bits, but skewed adversarial inputs are handled by halving.
  ScratchLease<std::uint64_t> work_lease{freq.size()};
  auto& work = work_lease.get();
  work.assign(freq.begin(), freq.end());
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto lengths = build_lengths(work);
    const auto deepest =
        *std::max_element(lengths.begin(), lengths.end());
    if (deepest <= kMaxCodeLength) {
      return lengths;
    }
    for (auto& w : work) {
      if (w > 0) {
        w = (w + 1) / 2;
      }
    }
  }
  // Degenerate fallback: fixed-length codes.
  std::vector<std::uint8_t> lengths(freq.size(), 0);
  unsigned bits = 1;
  while ((std::size_t{1} << bits) < freq.size()) {
    ++bits;
  }
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) {
      lengths[s] = static_cast<std::uint8_t>(bits);
    }
  }
  return lengths;
}

std::vector<std::uint8_t> huffman_encode(std::span<const std::uint32_t> symbols,
                                         std::uint32_t alphabet_size) {
  LCP_REQUIRE(alphabet_size > 0, "alphabet must be non-empty");
  // The frequency table is half a MiB at SZ's 2^16 alphabet; pooled so the
  // chunk-parallel path does not hammer the allocator once per chunk.
  ScratchLease<std::uint64_t> freq_lease{alphabet_size};
  auto& freq = freq_lease.get();
  freq.assign(alphabet_size, 0);
  for (std::uint32_t s : symbols) {
    LCP_REQUIRE(s < alphabet_size, "symbol out of alphabet range");
    ++freq[s];
  }
  const auto lengths = huffman_code_lengths(freq);
  const auto codes = canonical_codes(lengths);

  ByteWriter header;
  header.write_u32(alphabet_size);
  header.write_u64(symbols.size());
  // RLE of the length table: (length byte, run length u32).
  std::uint32_t runs = 0;
  ByteWriter rle;
  for (std::size_t i = 0; i < lengths.size();) {
    std::size_t j = i;
    while (j < lengths.size() && lengths[j] == lengths[i]) {
      ++j;
    }
    rle.write_u8(lengths[i]);
    rle.write_u32(static_cast<std::uint32_t>(j - i));
    ++runs;
    i = j;
  }
  header.write_u32(runs);
  auto rle_bytes = rle.finish();
  header.write_bytes(rle_bytes);

  // Canonical codes are MSB-first by construction and the decoder consumes
  // them MSB-first; BitWriter emits the low bit of a value first, so each
  // code is emitted pre-reversed as a single write_bits call.
  ScratchLease<std::uint64_t> stream_codes_lease{alphabet_size};
  auto& stream_codes = stream_codes_lease.get();
  stream_codes.assign(alphabet_size, 0);
  std::uint64_t payload_bits = 0;
  for (std::uint32_t s = 0; s < alphabet_size; ++s) {
    if (lengths[s] > 0) {
      stream_codes[s] = reverse_bits(codes[s], lengths[s]);
      payload_bits += freq[s] * lengths[s];
    }
  }
  BitWriter bits;
  bits.reserve(static_cast<std::size_t>((payload_bits + 7) / 8) + 8);
  for (std::uint32_t s : symbols) {
    bits.write_bits(stream_codes[s], lengths[s]);
  }
  auto payload = bits.finish();

  ByteWriter out;
  auto header_bytes = header.finish();
  out.reserve(header_bytes.size() + 8 + payload.size());
  out.write_bytes(header_bytes);
  out.write_u64(payload.size());
  out.write_bytes(payload);
  return out.finish();
}

Expected<std::vector<std::uint32_t>> huffman_decode(
    std::span<const std::uint8_t> blob, std::uint64_t max_count) {
  ByteReader r{blob};
  auto alphabet = r.read_u32();
  if (!alphabet || *alphabet == 0) {
    return Status::corrupt_data("huffman: bad alphabet size");
  }
  auto count = r.read_u64();
  if (!count) {
    return count.status();
  }
  if (*count > max_count) {
    return Status::corrupt_data("huffman: symbol count exceeds expectation");
  }
  auto runs = r.read_u32();
  if (!runs) {
    return runs.status();
  }
  std::vector<std::uint8_t> lengths;
  lengths.reserve(*alphabet);
  for (std::uint32_t run = 0; run < *runs; ++run) {
    auto len = r.read_u8();
    auto n = r.read_u32();
    if (!len || !n) {
      return Status::corrupt_data("huffman: truncated length table");
    }
    if (*len > kMaxCodeLength) {
      return Status::corrupt_data("huffman: code length too large");
    }
    if (lengths.size() + *n > *alphabet) {
      return Status::corrupt_data("huffman: length table overflow");
    }
    lengths.insert(lengths.end(), *n, *len);
  }
  if (lengths.size() != *alphabet) {
    return Status::corrupt_data("huffman: length table size mismatch");
  }

  // Canonical decode tables: for each length, the first code and the index
  // into the symbol list ordered by (length, symbol).
  std::vector<std::uint32_t> count_by_len(kMaxCodeLength + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l > 0) {
      ++count_by_len[l];
    }
  }
  std::vector<std::uint64_t> first_code(kMaxCodeLength + 2, 0);
  std::vector<std::uint32_t> first_index(kMaxCodeLength + 2, 0);
  std::uint64_t code = 0;
  std::uint32_t index = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count_by_len[l - 1]) << 1;
    first_code[l] = code;
    first_index[l] = index;
    index += count_by_len[l];
  }
  // Counting sort of the symbols by (length, symbol) in one pass.
  std::vector<std::uint32_t> symbols_by_rank(index, 0);
  {
    std::vector<std::uint32_t> cursor(first_index.begin(), first_index.end());
    for (std::uint32_t s = 0; s < *alphabet; ++s) {
      if (lengths[s] > 0) {
        symbols_by_rank[cursor[lengths[s]]++] = s;
      }
    }
  }

  // Primary lookup table over the next kDecodeTableBits stream bits. The
  // stream carries codes MSB-first but BitReader::peek_bits returns the
  // first stream bit in the LSB, so entries are indexed by the reversed
  // code with every possible fill of the remaining high bits.
  struct TableEntry {
    std::uint32_t symbol = 0;
    std::uint8_t length = 0;  // 0 = not resolvable at table width
  };
  std::vector<TableEntry> table(std::size_t{1} << kDecodeTableBits);
  {
    const auto codes = canonical_codes(lengths);
    for (std::uint32_t s = 0; s < *alphabet; ++s) {
      const unsigned len = lengths[s];
      if (len == 0 || len > kDecodeTableBits) {
        continue;
      }
      const std::uint64_t base = reverse_bits(codes[s], len);
      const std::size_t fills = std::size_t{1} << (kDecodeTableBits - len);
      for (std::size_t fill = 0; fill < fills; ++fill) {
        table[base | (fill << len)] = {s, static_cast<std::uint8_t>(len)};
      }
    }
  }

  auto payload_size = r.read_u64();
  if (!payload_size) {
    return payload_size.status();
  }
  auto payload = r.read_bytes(static_cast<std::size_t>(*payload_size));
  if (!payload) {
    return payload.status();
  }

  BitReader bits{*payload};
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const TableEntry entry = table[bits.peek_bits(kDecodeTableBits)];
    if (entry.length != 0) {
      bits.skip_bits(entry.length);
      if (bits.overflowed()) {
        return Status::corrupt_data("huffman: invalid code in stream");
      }
      out.push_back(entry.symbol);
      continue;
    }
    // Slow path: extend the prefix one bit at a time (codes longer than the
    // table width, or garbage).
    std::uint64_t acc = 0;
    unsigned len = 0;
    std::uint32_t symbol = UINT32_MAX;
    while (len < kMaxCodeLength) {
      acc = (acc << 1) | (bits.read_bit() ? 1u : 0u);
      ++len;
      if (count_by_len[len] == 0) {
        continue;
      }
      const std::uint64_t offset = acc - first_code[len];
      if (acc >= first_code[len] && offset < count_by_len[len]) {
        symbol = symbols_by_rank[first_index[len] + offset];
        break;
      }
    }
    if (symbol == UINT32_MAX || bits.overflowed()) {
      return Status::corrupt_data("huffman: invalid code in stream");
    }
    out.push_back(symbol);
  }
  return out;
}

}  // namespace lcp::sz
