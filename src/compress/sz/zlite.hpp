#pragma once
// zlite: the byte-oriented LZ77 lossless backend applied to SZ's entropy-
// coded stream (the role zstd/gzip plays in upstream SZ).
//
// Format: a sequence of tokens. Each token is
//   literal_len (varint) | literal bytes | match_len (varint) | dist (varint)
// A match_len of 0 terminates (final literals already emitted). Matches are
// found greedily via a 4-byte hash table of previous positions.

#include <cstdint>
#include <span>
#include <vector>

#include "support/status.hpp"

namespace lcp::sz {

/// Compresses arbitrary bytes. Never fails; incompressible data grows by a
/// small bounded overhead.
[[nodiscard]] std::vector<std::uint8_t> zlite_compress(
    std::span<const std::uint8_t> input);

/// Decompresses a zlite stream. `max_output` bounds memory for corrupt input.
[[nodiscard]] Expected<std::vector<std::uint8_t>> zlite_decompress(
    std::span<const std::uint8_t> input, std::uint64_t max_output = UINT64_MAX);

}  // namespace lcp::sz
