#pragma once
// SZ-class lossy compressor: Lorenzo prediction -> linear-scaling
// quantization -> canonical Huffman -> zlite lossless backend, honouring an
// absolute error bound (the configuration the paper studies).

#include "compress/common/codec.hpp"
#include "compress/sz/pipeline.hpp"

namespace lcp::sz {

/// Tunables; defaults match upstream SZ conventions.
struct SzOptions {
  std::uint32_t quantizer_radius = 32768;  ///< codes span [1, 2*radius)
  bool use_lossless_backend = true;        ///< zlite pass over Huffman output
  SzPredictor predictor = SzPredictor::kFirstOrder;
};

class SzCompressor final : public compress::Compressor {
 public:
  SzCompressor() = default;
  explicit SzCompressor(SzOptions options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "sz"; }

  [[nodiscard]] Expected<compress::CompressResult> compress(
      const data::Field& field,
      const compress::ErrorBound& bound) const override;

  [[nodiscard]] Expected<compress::DecompressResult> decompress(
      std::span<const std::uint8_t> container) const override;

 private:
  SzOptions options_;
};

}  // namespace lcp::sz
