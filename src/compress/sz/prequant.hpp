#pragma once
// Prequantized integer Lorenzo kernels shared by the scalar and AVX2 SZ
// pipelines (compress/sz/pipeline.cpp, compress/simd/avx2_kernels.cpp).
//
// The classic SZ loop predicts each sample from previously *reconstructed*
// float values, which chains a lossy rounding step through every element
// and cannot be vectorized bit-identically. The prequantized formulation
// (the cuSZ/vecSZ design) removes the chain:
//
//   r[i]    = nearest-int(value[i] / (2*eb))        -- independent per site
//   pred[i] = integer Lorenzo stencil over r        -- exact arithmetic
//   code[i] = (r[i] - pred[i]) + radius             -- entropy-coded
//
// The decoder rebuilds r exactly (integer arithmetic has no rounding), and
// the reconstruction float(r * 2*eb) is within eb of the input whenever
// |r| stayed on the grid; every site where float32 rounding or grid
// saturation would break the bound is flagged code 0 and stored exactly.
// Unpredictable sites still contribute their true grid value r =
// prequantize(value) to later predictions, so prediction never depends on
// which sites went exact and the encoder is embarrassingly parallel.
//
// Bit-identity rules (the reason helpers live here and both pipelines call
// the same ones): rounding is round-to-nearest-even (std::nearbyint in the
// default mode == _mm256_round_pd TO_NEAREST_INT), NaN/saturation clamping
// mirrors maxpd/minpd NaN semantics (NaN in the first operand yields the
// second), and every double multiply/convert happens in the same order in
// both paths. Any divergence here changes compressed bytes between
// dispatch levels, which simd_identity_test pins.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lcp::sz {

/// Grid saturation limit: 2^23. Beyond |r| = 2^23 a float32's own ulp
/// exceeds the bin width 2*eb, so such samples cannot honour the bound in
/// float32 anyway — they are exactly the samples the classic quantizer
/// also rejected. Keeping |r| <= 2^23 additionally bounds every integer
/// stencil sum (worst case 63 * 2^23 < 2^29) far inside int32.
inline constexpr std::int32_t kPrequantMax = 1 << 23;

/// Derived constants of one (error bound, radius) configuration.
struct PrequantParams {
  double eb = 0.0;        ///< error bound
  double step = 0.0;      ///< bin width 2*eb
  double inv_step = 0.0;  ///< 1 / (2*eb)
  std::uint32_t radius = 0;

  static PrequantParams make(double eb, std::uint32_t radius) noexcept {
    PrequantParams p;
    p.eb = eb;
    p.step = 2.0 * eb;
    p.inv_step = 1.0 / p.step;
    p.radius = radius;
    return p;
  }
};

/// value -> grid index, saturated to [-kPrequantMax, kPrequantMax].
/// The clamp sequence mirrors AVX2 max_pd/min_pd exactly: max first (NaN
/// and -inf land on -kPrequantMax), then min. Round-to-nearest-even.
[[nodiscard]] inline std::int32_t prequantize(float value,
                                              double inv_step) noexcept {
  double x = static_cast<double>(value) * inv_step;
  x = std::nearbyint(x);
  const double lo = -static_cast<double>(kPrequantMax);
  const double hi = static_cast<double>(kPrequantMax);
  x = x >= lo ? x : lo;  // maxpd(x, lo): NaN in x yields lo
  x = x <= hi ? x : hi;  // minpd(x, hi)
  return static_cast<std::int32_t>(x);
}

/// Grid index -> decoder-visible float. The double product is exact for
/// |r| <= 2^23; the float cast is the single rounding both paths share.
[[nodiscard]] inline float dequantize(std::int32_t r, double step) noexcept {
  return static_cast<float>(static_cast<double>(r) * step);
}

/// The encode-side admission test: can `value` travel as grid index `r`?
/// True only when the float32 reconstruction honours the bound. Identical
/// operation order to the AVX2 lane test (mul_pd, cvtpd_ps, fabs, cmp).
[[nodiscard]] inline bool reconstruction_in_bound(std::int32_t r, float value,
                                                  const PrequantParams& p,
                                                  float& recon) noexcept {
  const float rec = dequantize(r, p.step);
  recon = rec;
  return std::fabs(static_cast<double>(rec) - static_cast<double>(value)) <=
         p.eb;
}

/// Per-site encode finisher, shared verbatim by the scalar pass and the
/// AVX2 pass's bailed-out lanes: admit the code when the residual fits the
/// radius AND the float32 reconstruction honours the bound; otherwise the
/// site goes exact (code 0, raw bits appended in stream order). For radii
/// within the SIMD eligibility cap this computes exactly what the vector
/// lane test computes, so mixing the two paths cannot change the bytes.
inline void encode_site(float value, std::int32_t r, std::int64_t pred,
                        const PrequantParams& p, std::uint32_t& code_out,
                        float& decoded_out,
                        std::vector<std::uint32_t>& exact) {
  const std::int64_t q = static_cast<std::int64_t>(r) - pred;
  const std::int64_t radius = static_cast<std::int64_t>(p.radius);
  float recon = 0.0F;
  if (q > -radius && q < radius &&
      reconstruction_in_bound(r, value, p, recon)) {
    code_out = static_cast<std::uint32_t>(q + radius);
    decoded_out = recon;
  } else {
    code_out = 0;
    exact.push_back(std::bit_cast<std::uint32_t>(value));
    decoded_out = value;
  }
}

/// Per-site decode twin. Exact sites re-derive their grid index from the
/// stored value — the same prequantize the encoder ran — so the decode
/// grid matches the encode grid at every site. Returns false on corrupt
/// streams (bad code, exhausted exact stream, off-grid index).
[[nodiscard]] inline bool decode_site(std::uint32_t code, std::int64_t pred,
                                      const PrequantParams& p,
                                      std::span<const float> exact,
                                      std::size_t& exact_pos,
                                      std::int32_t& r_out,
                                      float& decoded_out) noexcept {
  if (code == 0) {
    if (exact_pos >= exact.size()) {
      return false;
    }
    const float v = exact[exact_pos++];
    r_out = prequantize(v, p.inv_step);
    decoded_out = v;
    return true;
  }
  if (code >= 2ULL * p.radius) {
    return false;
  }
  const std::int64_t q = static_cast<std::int64_t>(code) -
                         static_cast<std::int64_t>(p.radius);
  const std::int64_t r = pred + q;
  if (r > kPrequantMax || r < -kPrequantMax) {
    return false;
  }
  r_out = static_cast<std::int32_t>(r);
  decoded_out = dequantize(r_out, p.step);
  return true;
}

// --- Guarded integer Lorenzo predictors -----------------------------------
//
// Mirrors of compress/sz/lorenzo.hpp over the int32 grid: out-of-domain
// neighbours contribute zero; second-order falls back to first-order when
// any axis index is < 2 (same all-or-nothing guard as the float family).
// All sums are bounded by 63 * kPrequantMax < 2^29, so int32 is exact.

[[nodiscard]] inline std::int32_t lorenzo_int_1d(const std::int32_t* r,
                                                 std::size_t i) noexcept {
  return i >= 1 ? r[i - 1] : 0;
}

[[nodiscard]] inline std::int32_t lorenzo_int_2d(const std::int32_t* r,
                                                 std::size_t i, std::size_t j,
                                                 std::size_t n1) noexcept {
  const std::size_t base = i * n1 + j;
  std::int32_t pred = 0;
  if (i >= 1) {
    pred += r[base - n1];
  }
  if (j >= 1) {
    pred += r[base - 1];
  }
  if (i >= 1 && j >= 1) {
    pred -= r[base - n1 - 1];
  }
  return pred;
}

[[nodiscard]] inline std::int32_t lorenzo_int_3d(const std::int32_t* r,
                                                 std::size_t i, std::size_t j,
                                                 std::size_t k, std::size_t n1,
                                                 std::size_t n2) noexcept {
  const std::size_t plane = n1 * n2;
  const std::size_t base = i * plane + j * n2 + k;
  std::int32_t pred = 0;
  if (i >= 1) {
    pred += r[base - plane];
  }
  if (j >= 1) {
    pred += r[base - n2];
  }
  if (k >= 1) {
    pred += r[base - 1];
  }
  if (i >= 1 && j >= 1) {
    pred -= r[base - plane - n2];
  }
  if (i >= 1 && k >= 1) {
    pred -= r[base - plane - 1];
  }
  if (j >= 1 && k >= 1) {
    pred -= r[base - n2 - 1];
  }
  if (i >= 1 && j >= 1 && k >= 1) {
    pred += r[base - plane - n2 - 1];
  }
  return pred;
}

[[nodiscard]] inline std::int32_t lorenzo2_int_1d(const std::int32_t* r,
                                                  std::size_t i) noexcept {
  if (i >= 2) {
    return 2 * r[i - 1] - r[i - 2];
  }
  return lorenzo_int_1d(r, i);
}

[[nodiscard]] inline std::int32_t lorenzo2_int_2d(const std::int32_t* r,
                                                  std::size_t i, std::size_t j,
                                                  std::size_t n1) noexcept {
  if (i < 2 || j < 2) {
    return lorenzo_int_2d(r, i, j, n1);
  }
  const std::size_t base = i * n1 + j;
  return 2 * r[base - n1] + 2 * r[base - 1] - r[base - 2 * n1] -
         r[base - 2] - 4 * r[base - n1 - 1] + 2 * r[base - 2 * n1 - 1] +
         2 * r[base - n1 - 2] - r[base - 2 * n1 - 2];
}

/// Second-order 3-D stencil weights: w(di,dj,dk) = -f(di)f(dj)f(dk) with
/// f = {1, -2, 1}, the all-zero term dropped. Shared with the AVX2 kernel
/// so both iterate neighbours in the identical order.
struct Lorenzo2Tap {
  std::int32_t offset_i;
  std::int32_t offset_j;
  std::int32_t offset_k;
  std::int32_t weight;
};

inline constexpr Lorenzo2Tap kLorenzo2Taps3d[26] = {
    {0, 0, 1, 2},  {0, 0, 2, -1}, {0, 1, 0, 2},  {0, 1, 1, -4}, {0, 1, 2, 2},
    {0, 2, 0, -1}, {0, 2, 1, 2},  {0, 2, 2, -1}, {1, 0, 0, 2},  {1, 0, 1, -4},
    {1, 0, 2, 2},  {1, 1, 0, -4}, {1, 1, 1, 8},  {1, 1, 2, -4}, {1, 2, 0, 2},
    {1, 2, 1, -4}, {1, 2, 2, 2},  {2, 0, 0, -1}, {2, 0, 1, 2},  {2, 0, 2, -1},
    {2, 1, 0, 2},  {2, 1, 1, -4}, {2, 1, 2, 2},  {2, 2, 0, -1}, {2, 2, 1, 2},
    {2, 2, 2, -1}};

[[nodiscard]] inline std::int32_t lorenzo2_int_3d(const std::int32_t* r,
                                                  std::size_t i, std::size_t j,
                                                  std::size_t k, std::size_t n1,
                                                  std::size_t n2) noexcept {
  if (i < 2 || j < 2 || k < 2) {
    return lorenzo_int_3d(r, i, j, k, n1, n2);
  }
  const std::size_t plane = n1 * n2;
  const std::size_t base = i * plane + j * n2 + k;
  std::int32_t pred = 0;
  for (const auto& tap : kLorenzo2Taps3d) {
    pred += tap.weight *
            r[base - static_cast<std::size_t>(tap.offset_i) * plane -
              static_cast<std::size_t>(tap.offset_j) * n2 -
              static_cast<std::size_t>(tap.offset_k)];
  }
  return pred;
}

}  // namespace lcp::sz
