#include "compress/sz/pipeline.hpp"

#include <bit>

#include "compress/sz/lorenzo.hpp"

namespace lcp::sz {
namespace {

/// Walks every site in row-major order, invoking emit(idx, prediction).
/// emit returns false to abort the walk (decode-side corruption).
///
/// Rows whose every causal neighbour is in-domain take an unguarded
/// stencil path; border rows fall back to the guarded predictors. The
/// unguarded expressions mirror the accumulation order of the guarded
/// ones, so both produce bit-identical float predictions.
template <int Rank, bool Second, typename Emit>
bool walk_sites(std::span<const std::size_t> ext, std::span<const float> d,
                Emit&& emit) {
  if constexpr (Rank == 1) {
    const std::size_t n0 = ext[0];
    for (std::size_t i = 0; i < n0; ++i) {
      const float pred =
          Second ? lorenzo2_predict_1d(d, i) : lorenzo_predict_1d(d, i);
      if (!emit(i, pred)) {
        return false;
      }
    }
  } else if constexpr (Rank == 2) {
    const std::size_t n0 = ext[0];
    const std::size_t n1 = ext[1];
    std::size_t idx = 0;
    for (std::size_t i = 0; i < n0; ++i) {
      if (Second || i == 0) {
        for (std::size_t j = 0; j < n1; ++j, ++idx) {
          const float pred = Second ? lorenzo2_predict_2d(d, i, j, n1)
                                    : lorenzo_predict_2d(d, i, j, n1);
          if (!emit(idx, pred)) {
            return false;
          }
        }
      } else {
        if (!emit(idx, lorenzo_predict_2d(d, i, 0, n1))) {
          return false;
        }
        ++idx;
        for (std::size_t j = 1; j < n1; ++j, ++idx) {
          const float pred = d[idx - n1] + d[idx - 1] - d[idx - n1 - 1];
          if (!emit(idx, pred)) {
            return false;
          }
        }
      }
    }
  } else {
    static_assert(Rank == 3);
    const std::size_t n0 = ext[0];
    const std::size_t n1 = ext[1];
    const std::size_t n2 = ext[2];
    const std::size_t plane = n1 * n2;
    std::size_t idx = 0;
    for (std::size_t i = 0; i < n0; ++i) {
      for (std::size_t j = 0; j < n1; ++j) {
        if (Second) {
          // lorenzo2 falls back internally near borders; interior rows
          // (i, j >= 2) resolve its guard once per site but the stencil
          // dispatch is already compiled out.
          for (std::size_t k = 0; k < n2; ++k, ++idx) {
            if (!emit(idx, lorenzo2_predict_3d(d, i, j, k, n1, n2))) {
              return false;
            }
          }
        } else if (i == 0 || j == 0) {
          for (std::size_t k = 0; k < n2; ++k, ++idx) {
            if (!emit(idx, lorenzo_predict_3d(d, i, j, k, n1, n2))) {
              return false;
            }
          }
        } else {
          if (!emit(idx, lorenzo_predict_3d(d, i, j, 0, n1, n2))) {
            return false;
          }
          ++idx;
          for (std::size_t k = 1; k < n2; ++k, ++idx) {
            const float pred = d[idx - plane] + d[idx - n2] + d[idx - 1] -
                               d[idx - plane - n2] - d[idx - plane - 1] -
                               d[idx - n2 - 1] + d[idx - plane - n2 - 1];
            if (!emit(idx, pred)) {
              return false;
            }
          }
        }
      }
    }
  }
  return true;
}

template <typename Emit>
bool walk_dispatch(std::span<const std::size_t> ext, SzPredictor predictor,
                   std::span<const float> decoded, Emit&& emit) {
  const bool second = predictor == SzPredictor::kSecondOrder;
  switch (ext.size()) {
    case 1:
      return second ? walk_sites<1, true>(ext, decoded, emit)
                    : walk_sites<1, false>(ext, decoded, emit);
    case 2:
      return second ? walk_sites<2, true>(ext, decoded, emit)
                    : walk_sites<2, false>(ext, decoded, emit);
    default:
      return second ? walk_sites<3, true>(ext, decoded, emit)
                    : walk_sites<3, false>(ext, decoded, emit);
  }
}

}  // namespace

void predict_quantize_fused(std::span<const float> values,
                            std::span<const std::size_t> ext,
                            SzPredictor predictor,
                            const LinearQuantizer& quantizer,
                            std::vector<std::uint32_t>& codes,
                            std::vector<std::uint32_t>& exact,
                            std::vector<float>& decoded) {
  const std::size_t n = values.size();
  codes.resize(n);
  decoded.assign(n, 0.0F);
  float* const dec = decoded.data();
  std::uint32_t* const out = codes.data();
  const float* const vals = values.data();

  (void)walk_dispatch(
      ext, predictor, decoded, [&](std::size_t idx, float prediction) {
        float recon = 0.0F;
        const auto code = quantizer.quantize(vals[idx], prediction, recon);
        if (code.has_value()) {
          out[idx] = *code;
          dec[idx] = recon;
        } else {
          out[idx] = 0;
          exact.push_back(std::bit_cast<std::uint32_t>(vals[idx]));
          dec[idx] = vals[idx];
        }
        return true;
      });
}

bool reconstruct_fused(std::span<const std::uint32_t> codes,
                       std::span<const float> exact,
                       std::span<const std::size_t> ext,
                       SzPredictor predictor, const LinearQuantizer& quantizer,
                       std::span<float> decoded, std::size_t& exact_consumed) {
  float* const dec = decoded.data();
  std::size_t exact_pos = 0;
  const bool ok = walk_dispatch(
      ext, predictor, decoded, [&](std::size_t idx, float prediction) {
        const std::uint32_t code = codes[idx];
        if (code == 0) {
          if (exact_pos >= exact.size()) {
            return false;
          }
          dec[idx] = exact[exact_pos++];
        } else if (code < quantizer.alphabet_size()) {
          dec[idx] = quantizer.reconstruct(code, prediction);
        } else {
          return false;
        }
        return true;
      });
  exact_consumed = exact_pos;
  return ok;
}

}  // namespace lcp::sz
