#include "compress/sz/pipeline.hpp"

#include <algorithm>
#include <cstdint>

#include "compress/simd/dispatch.hpp"
#include "compress/sz/prequant.hpp"
#include "support/buffer_pool.hpp"

#if defined(LCP_HAVE_AVX2_BUILD)
#include "compress/simd/avx2_kernels.hpp"
#endif

namespace lcp::sz {
namespace {

/// SIMD eligibility cap on the quantizer radius: valid codes then stay
/// below 2^21, which bounds every int32 lane sum in the AVX2 kernels (see
/// avx2_kernels.cpp) away from wrap. The default radius (32768) is far
/// below the cap; configurations above it run the scalar int64 path under
/// every dispatch level, so the two levels agree trivially there too.
constexpr std::uint32_t kSimdMaxRadius = 1U << 20;

[[nodiscard]] std::size_t element_count(
    std::span<const std::size_t> ext) noexcept {
  std::size_t n = ext.empty() ? 0 : 1;
  for (const std::size_t e : ext) {
    n *= e;
  }
  return n;
}

// --- Scalar prediction pass -------------------------------------------------

void predict_fill_scalar(const std::int32_t* grid,
                         std::span<const std::size_t> ext,
                         SzPredictor predictor, std::int32_t* pred) {
  const bool second = predictor == SzPredictor::kSecondOrder;
  switch (ext.size()) {
    case 1: {
      const std::size_t n0 = ext[0];
      for (std::size_t i = 0; i < n0; ++i) {
        pred[i] = second ? lorenzo2_int_1d(grid, i) : lorenzo_int_1d(grid, i);
      }
      break;
    }
    case 2: {
      const std::size_t n0 = ext[0];
      const std::size_t n1 = ext[1];
      std::size_t idx = 0;
      for (std::size_t i = 0; i < n0; ++i) {
        for (std::size_t j = 0; j < n1; ++j, ++idx) {
          pred[idx] = second ? lorenzo2_int_2d(grid, i, j, n1)
                             : lorenzo_int_2d(grid, i, j, n1);
        }
      }
      break;
    }
    default: {
      const std::size_t n0 = ext[0];
      const std::size_t n1 = ext[1];
      const std::size_t n2 = ext[2];
      std::size_t idx = 0;
      for (std::size_t i = 0; i < n0; ++i) {
        for (std::size_t j = 0; j < n1; ++j) {
          for (std::size_t k = 0; k < n2; ++k, ++idx) {
            pred[idx] = second ? lorenzo2_int_3d(grid, i, j, k, n1, n2)
                               : lorenzo_int_3d(grid, i, j, k, n1, n2);
          }
        }
      }
      break;
    }
  }
}

#if defined(LCP_HAVE_AVX2_BUILD)

// --- AVX2 prediction pass ---------------------------------------------------
//
// Border rows (any site whose unguarded stencil would reach out of domain)
// stay on the guarded scalar predictors; interior rows hand their tail to
// the row kernels. Integer arithmetic is exact, so the split cannot change
// a single prediction.

void predict_fill_avx2(const std::int32_t* grid,
                       std::span<const std::size_t> ext, SzPredictor predictor,
                       std::int32_t* pred) {
  const bool second = predictor == SzPredictor::kSecondOrder;
  switch (ext.size()) {
    case 1: {
      const std::size_t n0 = ext[0];
      if (n0 == 0) {
        break;
      }
      if (second) {
        for (std::size_t i = 0; i < std::min<std::size_t>(2, n0); ++i) {
          pred[i] = lorenzo2_int_1d(grid, i);
        }
        if (n0 > 2) {
          simd::avx2::predict_row_l2_1d(grid, 2, n0, pred);
        }
      } else {
        pred[0] = 0;
        if (n0 > 1) {
          simd::avx2::predict_row_l1_1d(grid, 1, n0, pred);
        }
      }
      break;
    }
    case 2: {
      const std::size_t n0 = ext[0];
      const std::size_t n1 = ext[1];
      for (std::size_t i = 0; i < n0; ++i) {
        const std::size_t base = i * n1;
        if (second) {
          if (i < 2) {
            for (std::size_t j = 0; j < n1; ++j) {
              pred[base + j] = lorenzo2_int_2d(grid, i, j, n1);
            }
          } else {
            for (std::size_t j = 0; j < std::min<std::size_t>(2, n1); ++j) {
              pred[base + j] = lorenzo2_int_2d(grid, i, j, n1);
            }
            if (n1 > 2) {
              simd::avx2::predict_row_l2_2d(grid + base, n1, 2, n1,
                                            pred + base);
            }
          }
        } else {
          if (i == 0) {
            for (std::size_t j = 0; j < n1; ++j) {
              pred[base + j] = lorenzo_int_2d(grid, i, j, n1);
            }
          } else {
            pred[base] = lorenzo_int_2d(grid, i, 0, n1);
            if (n1 > 1) {
              simd::avx2::predict_row_l1_2d(grid + base, n1, 1, n1,
                                            pred + base);
            }
          }
        }
      }
      break;
    }
    default: {
      const std::size_t n0 = ext[0];
      const std::size_t n1 = ext[1];
      const std::size_t n2 = ext[2];
      const std::size_t plane = n1 * n2;
      for (std::size_t i = 0; i < n0; ++i) {
        for (std::size_t j = 0; j < n1; ++j) {
          const std::size_t base = i * plane + j * n2;
          if (second) {
            if (i < 2 || j < 2) {
              for (std::size_t k = 0; k < n2; ++k) {
                pred[base + k] = lorenzo2_int_3d(grid, i, j, k, n1, n2);
              }
            } else {
              for (std::size_t k = 0; k < std::min<std::size_t>(2, n2); ++k) {
                pred[base + k] = lorenzo2_int_3d(grid, i, j, k, n1, n2);
              }
              if (n2 > 2) {
                simd::avx2::predict_row_l2_3d(grid + base, plane, n2, 2, n2,
                                              pred + base);
              }
            }
          } else {
            if (i == 0 || j == 0) {
              for (std::size_t k = 0; k < n2; ++k) {
                pred[base + k] = lorenzo_int_3d(grid, i, j, k, n1, n2);
              }
            } else {
              pred[base] = lorenzo_int_3d(grid, i, j, 0, n1, n2);
              if (n2 > 1) {
                simd::avx2::predict_row_l1_3d(grid + base, plane, n2, 1, n2,
                                              pred + base);
              }
            }
          }
        }
      }
      break;
    }
  }
}

/// Decodes one row, alternating between the vector kernel and <= 8-site
/// scalar replays at every bail point (exact site, bad code, off-grid
/// index, or tail shorter than one group). `pred_fn(k)` supplies the
/// guarded scalar prediction for replayed sites.
template <typename PredFn>
[[nodiscard]] bool decode_row_avx2(const std::uint32_t* codes_row,
                                   const std::int32_t* a, const std::int32_t* b,
                                   const std::int32_t* ab, std::size_t n,
                                   const PrequantParams& p,
                                   std::span<const float> exact,
                                   std::size_t& exact_pos, std::int32_t* row,
                                   float* dec_row, PredFn&& pred_fn) {
  const auto radius = static_cast<std::int32_t>(p.radius);
  std::size_t k = 0;
  while (k < n) {
    k = simd::avx2::decode_row_l1(codes_row, a, b, ab, k, n, radius, p.step,
                                  row, dec_row);
    if (k >= n) {
      break;
    }
    const std::size_t stop = std::min(k + 8, n);
    for (; k < stop; ++k) {
      if (!decode_site(codes_row[k], pred_fn(k), p, exact, exact_pos, row[k],
                       dec_row[k])) {
        return false;
      }
    }
  }
  return true;
}

[[nodiscard]] bool reconstruct_avx2(std::span<const std::uint32_t> codes,
                                    std::span<const float> exact,
                                    std::span<const std::size_t> ext,
                                    const PrequantParams& p, std::int32_t* grid,
                                    float* dec, std::size_t& exact_pos) {
  switch (ext.size()) {
    case 1:
      return decode_row_avx2(
          codes.data(), nullptr, nullptr, nullptr, ext[0], p, exact, exact_pos,
          grid, dec, [&](std::size_t k) {
            return static_cast<std::int64_t>(lorenzo_int_1d(grid, k));
          });
    case 2: {
      const std::size_t n0 = ext[0];
      const std::size_t n1 = ext[1];
      for (std::size_t i = 0; i < n0; ++i) {
        const std::size_t base = i * n1;
        const std::int32_t* a = i > 0 ? grid + base - n1 : nullptr;
        if (!decode_row_avx2(
                codes.data() + base, a, nullptr, nullptr, n1, p, exact,
                exact_pos, grid + base, dec + base, [&](std::size_t k) {
                  return static_cast<std::int64_t>(
                      lorenzo_int_2d(grid, i, k, n1));
                })) {
          return false;
        }
      }
      return true;
    }
    default: {
      const std::size_t n0 = ext[0];
      const std::size_t n1 = ext[1];
      const std::size_t n2 = ext[2];
      const std::size_t plane = n1 * n2;
      for (std::size_t i = 0; i < n0; ++i) {
        for (std::size_t j = 0; j < n1; ++j) {
          const std::size_t base = i * plane + j * n2;
          const std::int32_t* a = i > 0 ? grid + base - plane : nullptr;
          const std::int32_t* b = j > 0 ? grid + base - n2 : nullptr;
          const std::int32_t* ab =
              (i > 0 && j > 0) ? grid + base - plane - n2 : nullptr;
          if (!decode_row_avx2(
                  codes.data() + base, a, b, ab, n2, p, exact, exact_pos,
                  grid + base, dec + base, [&](std::size_t k) {
                    return static_cast<std::int64_t>(
                        lorenzo_int_3d(grid, i, j, k, n1, n2));
                  })) {
            return false;
          }
        }
      }
      return true;
    }
  }
}

#endif  // LCP_HAVE_AVX2_BUILD

[[nodiscard]] bool reconstruct_scalar(std::span<const std::uint32_t> codes,
                                      std::span<const float> exact,
                                      std::span<const std::size_t> ext,
                                      SzPredictor predictor,
                                      const PrequantParams& p,
                                      std::int32_t* grid, float* dec,
                                      std::size_t& exact_pos) {
  const bool second = predictor == SzPredictor::kSecondOrder;
  switch (ext.size()) {
    case 1: {
      const std::size_t n0 = ext[0];
      for (std::size_t i = 0; i < n0; ++i) {
        const std::int64_t pred = second ? lorenzo2_int_1d(grid, i)
                                         : lorenzo_int_1d(grid, i);
        if (!decode_site(codes[i], pred, p, exact, exact_pos, grid[i],
                         dec[i])) {
          return false;
        }
      }
      return true;
    }
    case 2: {
      const std::size_t n0 = ext[0];
      const std::size_t n1 = ext[1];
      std::size_t idx = 0;
      for (std::size_t i = 0; i < n0; ++i) {
        for (std::size_t j = 0; j < n1; ++j, ++idx) {
          const std::int64_t pred = second ? lorenzo2_int_2d(grid, i, j, n1)
                                           : lorenzo_int_2d(grid, i, j, n1);
          if (!decode_site(codes[idx], pred, p, exact, exact_pos, grid[idx],
                           dec[idx])) {
            return false;
          }
        }
      }
      return true;
    }
    default: {
      const std::size_t n0 = ext[0];
      const std::size_t n1 = ext[1];
      const std::size_t n2 = ext[2];
      std::size_t idx = 0;
      for (std::size_t i = 0; i < n0; ++i) {
        for (std::size_t j = 0; j < n1; ++j) {
          for (std::size_t k = 0; k < n2; ++k, ++idx) {
            const std::int64_t pred =
                second ? lorenzo2_int_3d(grid, i, j, k, n1, n2)
                       : lorenzo_int_3d(grid, i, j, k, n1, n2);
            if (!decode_site(codes[idx], pred, p, exact, exact_pos, grid[idx],
                             dec[idx])) {
              return false;
            }
          }
        }
      }
      return true;
    }
  }
}

}  // namespace

void predict_quantize_fused(std::span<const float> values,
                            std::span<const std::size_t> ext,
                            SzPredictor predictor,
                            const LinearQuantizer& quantizer,
                            std::vector<std::uint32_t>& codes,
                            std::vector<std::uint32_t>& exact,
                            std::vector<float>& decoded) {
  const std::size_t n = values.size();
  codes.resize(n);
  decoded.assign(n, 0.0F);
  if (n == 0) {
    return;
  }
  const auto p =
      PrequantParams::make(quantizer.error_bound(), quantizer.radius());

  ScratchLease<std::int32_t> grid_lease{n};
  auto& grid = grid_lease.get();
  grid.resize(n);
  ScratchLease<std::int32_t> pred_lease{n};
  auto& pred = pred_lease.get();
  pred.resize(n);

#if defined(LCP_HAVE_AVX2_BUILD)
  if (simd::simd_level() == simd::SimdLevel::kAvx2 && p.radius >= 1 &&
      p.radius <= kSimdMaxRadius) {
    simd::avx2::prequantize(values.data(), n, p.inv_step, grid.data());
    predict_fill_avx2(grid.data(), ext, predictor, pred.data());
    simd::avx2::encode_finish(values.data(), grid.data(), pred.data(), n, p,
                              codes.data(), decoded.data(), exact);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    grid[i] = prequantize(values[i], p.inv_step);
  }
  predict_fill_scalar(grid.data(), ext, predictor, pred.data());
  for (std::size_t i = 0; i < n; ++i) {
    encode_site(values[i], grid[i], pred[i], p, codes[i], decoded[i], exact);
  }
}

bool reconstruct_fused(std::span<const std::uint32_t> codes,
                       std::span<const float> exact,
                       std::span<const std::size_t> ext,
                       SzPredictor predictor, const LinearQuantizer& quantizer,
                       std::span<float> decoded, std::size_t& exact_consumed) {
  exact_consumed = 0;
  const std::size_t n = element_count(ext);
  if (n != codes.size() || n != decoded.size()) {
    return false;
  }
  if (n == 0) {
    return true;
  }
  const auto p =
      PrequantParams::make(quantizer.error_bound(), quantizer.radius());

  ScratchLease<std::int32_t> grid_lease{n};
  auto& grid = grid_lease.get();
  grid.resize(n);

  std::size_t exact_pos = 0;
  bool ok = false;
#if defined(LCP_HAVE_AVX2_BUILD)
  if (simd::simd_level() == simd::SimdLevel::kAvx2 && p.radius >= 1 &&
      p.radius <= kSimdMaxRadius && predictor == SzPredictor::kFirstOrder) {
    ok = reconstruct_avx2(codes, exact, ext, p, grid.data(), decoded.data(),
                          exact_pos);
    exact_consumed = exact_pos;
    return ok;
  }
#endif
  ok = reconstruct_scalar(codes, exact, ext, predictor, p, grid.data(),
                          decoded.data(), exact_pos);
  exact_consumed = exact_pos;
  return ok;
}

}  // namespace lcp::sz
