#include "compress/sz/lorenzo.hpp"

// Predictors are header-inline for the hot loops; this TU anchors the
// object in the library.
