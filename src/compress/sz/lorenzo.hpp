#pragma once
// Lorenzo predictors for the SZ-class pipeline. Each predicts a sample from
// its already-decoded causal neighbors; out-of-domain neighbors contribute
// zero, which degrades gracefully to lower-order prediction along borders.
//
// Two families:
//  - first-order (classic SZ): exact for data that is multilinear per axis;
//  - second-order (Zhao et al., HPDC'20 — cited by the paper as SZ's
//    improved predictor): per-axis operator L = 2S - S^2 combined by
//    inclusion-exclusion, exact for per-axis quadratics.

#include <cstddef>
#include <span>

namespace lcp::sz {

/// 1-D: pred(i) = d[i-1].
[[nodiscard]] inline float lorenzo_predict_1d(std::span<const float> decoded,
                                              std::size_t i) noexcept {
  return i >= 1 ? decoded[i - 1] : 0.0F;
}

/// 2-D: pred(i,j) = d[i-1,j] + d[i,j-1] - d[i-1,j-1]; row length n1.
[[nodiscard]] inline float lorenzo_predict_2d(std::span<const float> decoded,
                                              std::size_t i, std::size_t j,
                                              std::size_t n1) noexcept {
  const std::size_t base = i * n1 + j;
  float pred = 0.0F;
  if (i >= 1) {
    pred += decoded[base - n1];
  }
  if (j >= 1) {
    pred += decoded[base - 1];
  }
  if (i >= 1 && j >= 1) {
    pred -= decoded[base - n1 - 1];
  }
  return pred;
}

/// 3-D: the 7-neighbor Lorenzo stencil; plane size n1*n2, row length n2.
[[nodiscard]] inline float lorenzo_predict_3d(std::span<const float> decoded,
                                              std::size_t i, std::size_t j,
                                              std::size_t k, std::size_t n1,
                                              std::size_t n2) noexcept {
  const std::size_t plane = n1 * n2;
  const std::size_t base = i * plane + j * n2 + k;
  float pred = 0.0F;
  if (i >= 1) {
    pred += decoded[base - plane];
  }
  if (j >= 1) {
    pred += decoded[base - n2];
  }
  if (k >= 1) {
    pred += decoded[base - 1];
  }
  if (i >= 1 && j >= 1) {
    pred -= decoded[base - plane - n2];
  }
  if (i >= 1 && k >= 1) {
    pred -= decoded[base - plane - 1];
  }
  if (j >= 1 && k >= 1) {
    pred -= decoded[base - n2 - 1];
  }
  if (i >= 1 && j >= 1 && k >= 1) {
    pred += decoded[base - plane - n2 - 1];
  }
  return pred;
}

/// 1-D second-order: pred(i) = 2 d[i-1] - d[i-2] (linear extrapolation).
/// Falls back to first order at the borders.
[[nodiscard]] inline float lorenzo2_predict_1d(std::span<const float> decoded,
                                               std::size_t i) noexcept {
  if (i >= 2) {
    return 2.0F * decoded[i - 1] - decoded[i - 2];
  }
  return lorenzo_predict_1d(decoded, i);
}

/// 2-D second-order: expansion of I - (I - L_i)(I - L_j) with L = 2S - S^2:
///   pred(i,j) = 2 d[i-1,j] + 2 d[i,j-1] - d[i-2,j] - d[i,j-2]
///             - 4 d[i-1,j-1] + 2 d[i-2,j-1] + 2 d[i-1,j-2] - d[i-2,j-2].
/// Exact for per-axis quadratics; first-order fallback near borders.
[[nodiscard]] inline float lorenzo2_predict_2d(std::span<const float> decoded,
                                               std::size_t i, std::size_t j,
                                               std::size_t n1) noexcept {
  if (i < 2 || j < 2) {
    return lorenzo_predict_2d(decoded, i, j, n1);
  }
  const std::size_t base = i * n1 + j;
  return 2.0F * decoded[base - n1] + 2.0F * decoded[base - 1] -
         decoded[base - 2 * n1] - decoded[base - 2] -
         4.0F * decoded[base - n1 - 1] + 2.0F * decoded[base - 2 * n1 - 1] +
         2.0F * decoded[base - n1 - 2] - decoded[base - 2 * n1 - 2];
}

/// 3-D second-order: I - (I - L_i)(I - L_j)(I - L_k). Expanding the product,
/// the coefficient of the neighbor at offset (di,dj,dk) is
/// -prod_axes f(d) with f(0)=1, f(1)=-2, f(2)=+1 (and the all-zero term
/// cancels). First-order fallback near borders.
[[nodiscard]] inline float lorenzo2_predict_3d(std::span<const float> decoded,
                                               std::size_t i, std::size_t j,
                                               std::size_t k, std::size_t n1,
                                               std::size_t n2) noexcept {
  if (i < 2 || j < 2 || k < 2) {
    return lorenzo_predict_3d(decoded, i, j, k, n1, n2);
  }
  const std::size_t plane = n1 * n2;
  const std::size_t base = i * plane + j * n2 + k;
  constexpr float f[3] = {1.0F, -2.0F, 1.0F};
  float pred = 0.0F;
  for (int di = 0; di <= 2; ++di) {
    for (int dj = 0; dj <= 2; ++dj) {
      for (int dk = 0; dk <= 2; ++dk) {
        if (di == 0 && dj == 0 && dk == 0) {
          continue;
        }
        const float w = -f[di] * f[dj] * f[dk];
        pred += w * decoded[base - static_cast<std::size_t>(di) * plane -
                            static_cast<std::size_t>(dj) * n2 -
                            static_cast<std::size_t>(dk)];
      }
    }
  }
  return pred;
}

}  // namespace lcp::sz
