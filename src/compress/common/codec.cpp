#include "compress/common/codec.hpp"

#include <cmath>

namespace lcp::compress {

const std::vector<double>& paper_error_bounds() {
  static const std::vector<double> bounds = {1e-1, 1e-2, 1e-3, 1e-4};
  return bounds;
}

Status validate_finite(const data::Field& field) {
  for (float v : field.values()) {
    if (!std::isfinite(v)) {
      return Status::invalid_argument(
          "field contains non-finite values; lossy codecs require finite data");
    }
  }
  return Status::ok();
}

}  // namespace lcp::compress
