#pragma once
// Self-describing container framing shared by both codecs:
//   magic "LCPC" | version | codec name | bound | dims | field name | payload
// so a compressed blob can be routed to the right decoder and carries
// everything needed to rebuild the Field.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "compress/common/codec.hpp"
#include "data/field.hpp"
#include "support/status.hpp"

namespace lcp::compress {

/// Upper bound on decoded elements accepted from a container header
/// (2^31 floats = 8 GiB — an order of magnitude above the paper's largest
/// field). Corrupt or hostile headers with larger claims are rejected
/// before any allocation happens.
inline constexpr std::uint64_t kMaxContainerElements = std::uint64_t{1} << 31;

/// Parsed container header plus a view of the codec payload.
struct ContainerView {
  std::string codec;
  ErrorBound bound;
  data::Dims dims;
  std::string field_name;
  std::span<const std::uint8_t> payload;
};

/// Serializes a container around `payload`.
[[nodiscard]] std::vector<std::uint8_t> build_container(
    const std::string& codec, const ErrorBound& bound, const data::Dims& dims,
    const std::string& field_name, std::span<const std::uint8_t> payload);

/// Parses and validates a container. The returned payload view borrows from
/// `bytes`, which must outlive the view.
[[nodiscard]] Expected<ContainerView> parse_container(
    std::span<const std::uint8_t> bytes);

}  // namespace lcp::compress
