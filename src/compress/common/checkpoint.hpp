#pragma once
// Resilient checkpoint containers: a field is split into element slabs,
// each slab compressed independently with a registered codec and framed
// as one CRC-protected chunk (framing.hpp). A manifest chunk describing
// codec/bound/dims travels as chunk 0 with an identical replica as the
// last chunk, so either end of the stream can be lost without losing the
// layout. One flipped bit or truncated tail then costs one slab, not the
// whole 512 GB dump — recover() decodes every intact slab and fills the
// lost regions per a RecoveryPolicy instead of failing wholesale.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "compress/common/codec.hpp"
#include "compress/common/framing.hpp"
#include "data/field.hpp"
#include "support/status.hpp"

namespace lcp::compress {

struct CheckpointOptions {
  /// Any name make_compressor(name) accepts ("sz", "sz2", "zfp",
  /// "lossless").
  std::string codec = "sz";
  ErrorBound bound = ErrorBound::absolute(1e-3);
  /// Elements per slab. Smaller slabs bound the blast radius of a
  /// corruption at the cost of per-chunk overhead and lower ratios (each
  /// slab compresses independently); see tuning::recommended_chunk_bytes
  /// for the trade-off model.
  std::size_t chunk_elements = 1 << 15;
};

/// Compresses `field` slab-by-slab into a framed checkpoint stream.
[[nodiscard]] Expected<std::vector<std::uint8_t>> write_checkpoint(
    const data::Field& field, const CheckpointOptions& options);

// Incremental building blocks, exposed so the streaming dump engine
// (core/streaming_dump.hpp) can compress slabs out of order on a pool and
// still emit a stream byte-identical to write_checkpoint: manifest as
// chunk 0, compressed slabs as chunks 1..N in order, the manifest replica
// last, all under a kFrameFlagCheckpoint frame.

/// Number of element slabs `field` splits into (0 elements -> 0 slabs).
[[nodiscard]] std::size_t checkpoint_slab_count(
    const data::Field& field, const CheckpointOptions& options) noexcept;

/// Serialized manifest chunk for `field` under `options`.
[[nodiscard]] Expected<std::vector<std::uint8_t>> checkpoint_manifest(
    const data::Field& field, const CheckpointOptions& options);

/// Compresses slab `slab_index` exactly as write_checkpoint does. `codec`
/// must be an instance of options.codec (passed in so parallel callers
/// construct it once per thread, not once per slab).
[[nodiscard]] Expected<std::vector<std::uint8_t>> compress_checkpoint_slab(
    const data::Field& field, const CheckpointOptions& options,
    std::size_t slab_index, const Compressor& codec);

/// How recover() reconstructs regions whose slab was lost.
enum class RecoveryFill : std::uint8_t {
  kZero = 0,         ///< lost elements read as 0.0f
  kInterpolate = 1,  ///< linear ramp between the surviving neighbors
};

struct RecoveryPolicy {
  RecoveryFill fill = RecoveryFill::kZero;
  /// When set, any data loss turns the recovery into a typed error
  /// (strict-restart semantics) instead of a degraded field.
  bool fail_on_any_loss = false;
};

/// Verdict for one slab of a recovered checkpoint.
struct SlabVerdict {
  std::uint32_t chunk_seq = 0;  ///< frame chunk carrying this slab
  std::size_t element_offset = 0;
  std::size_t element_count = 0;
  ChunkState frame_state = ChunkState::kMissing;
  Status status;  ///< OK when decoded; else why the slab was lost
  bool recovered = false;
};

/// Outcome of walking a (possibly damaged) checkpoint stream.
struct RecoveryReport {
  data::Field field;  ///< intact slabs decoded, lost regions filled
  std::vector<SlabVerdict> slabs;
  std::size_t total_elements = 0;
  std::size_t lost_elements = 0;
  bool manifest_from_replica = false;
  bool header_from_replica = false;

  [[nodiscard]] std::size_t recovered_slabs() const noexcept;
  [[nodiscard]] double recovered_fraction() const noexcept;
  [[nodiscard]] bool complete() const noexcept { return lost_elements == 0; }
  /// "recovered 14/16 slabs (93.8% of elements)" one-liner.
  [[nodiscard]] std::string summary() const;
};

/// One contiguous element region of a sliced field and whether its slab
/// survived — the minimal shape interpolate_lost_regions needs, shared by
/// recover_checkpoint and the incremental checkpoint store's restore path.
struct SlabRegion {
  std::size_t element_offset = 0;
  std::size_t element_count = 0;
  bool recovered = false;
};

/// Fills each run of lost regions in `out` with a linear ramp anchored on
/// the surviving neighbor elements. Boundary clamp: a run at either end of
/// the field has only one surviving neighbor and is held flat at that
/// nearest neighbor's value (no extrapolation); a field with no surviving
/// regions at all is left untouched (the caller's zero fill stands).
/// `regions` must be contiguous, in element order, and cover `out`.
void interpolate_lost_regions(std::span<float> out,
                              std::span<const SlabRegion> regions);

/// Graceful-degradation decode of a checkpoint stream. Fails only when
/// the frame layout or both manifest copies are unrecoverable (or when
/// policy.fail_on_any_loss is set and anything was lost); all other
/// damage degrades to per-slab verdicts.
[[nodiscard]] Expected<RecoveryReport> recover_checkpoint(
    std::span<const std::uint8_t> bytes, const RecoveryPolicy& policy = {});

/// Strict decode: every chunk and every slab must verify and decode;
/// equivalent to recover_checkpoint with zero tolerance, but cheaper in
/// the happy path and with whole-payload CRC confirmation.
[[nodiscard]] Expected<data::Field> read_checkpoint(
    std::span<const std::uint8_t> bytes);

}  // namespace lcp::compress
