#pragma once
// Round-trip quality/size metrics reported by examples and benches.

#include "compress/common/codec.hpp"
#include "data/field.hpp"
#include "support/status.hpp"

namespace lcp::compress {

/// Everything a user typically wants to know about one compression run.
struct RoundTripReport {
  std::string codec;
  double error_bound = 0.0;
  double compression_ratio = 0.0;
  double bit_rate = 0.0;  ///< compressed bits per element
  data::FieldErrorStats error;
  Seconds compress_time;
  Seconds decompress_time;
  bool bound_respected = false;  ///< max_abs_error <= error_bound (+ ulp slack)
};

/// Compresses and decompresses `field`, verifying the bound.
[[nodiscard]] Expected<RoundTripReport> round_trip(const Compressor& codec,
                                                   const data::Field& field,
                                                   const ErrorBound& bound);

}  // namespace lcp::compress
