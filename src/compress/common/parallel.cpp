#include "compress/common/parallel.hpp"

#include <algorithm>
#include <atomic>

#include "compress/common/container.hpp"
#include "support/bytestream.hpp"
#include "support/timer.hpp"

namespace lcp::compress {
namespace {

constexpr std::uint32_t kFrameMagic = 0x4d50434cU;  // "LCPM"
constexpr std::uint8_t kFrameVersion = 1;

/// Extents of one chunk: dims with axis 0 replaced by `rows`.
data::Dims chunk_dims(const data::Dims& dims, std::size_t rows) {
  auto extents = dims.extents();
  extents[0] = rows;
  return data::Dims{extents};
}

/// Elements per slowest-axis hyperplane.
std::size_t plane_elements(const data::Dims& dims) {
  return dims.element_count() / dims.extent(0);
}

}  // namespace

std::vector<std::size_t> chunk_rows(const data::Dims& dims,
                                    std::size_t target_elements) {
  const std::size_t rows_total = dims.extent(0);
  const std::size_t plane = plane_elements(dims);
  const std::size_t rows_per_chunk = std::clamp<std::size_t>(
      plane == 0 ? rows_total : target_elements / std::max<std::size_t>(plane, 1),
      1, rows_total);
  std::vector<std::size_t> out;
  std::size_t remaining = rows_total;
  while (remaining > 0) {
    const std::size_t take = std::min(rows_per_chunk, remaining);
    out.push_back(take);
    remaining -= take;
  }
  return out;
}

Expected<CompressResult> parallel_compress(const Compressor& codec,
                                           const data::Field& field,
                                           const ErrorBound& bound,
                                           ThreadPool& pool,
                                           const ParallelOptions& options) {
  if (field.element_count() == 0) {
    return Status::invalid_argument("parallel_compress: empty field");
  }
  Timer timer;
  const auto rows = chunk_rows(field.dims(), options.target_chunk_elements);
  const std::size_t plane = plane_elements(field.dims());

  struct ChunkJob {
    std::size_t row_begin = 0;
    std::size_t row_count = 0;
    Seconds seconds{0.0};
    Expected<CompressResult> result{Status::internal("not run")};
  };
  std::vector<ChunkJob> jobs(rows.size());
  {
    std::size_t row = 0;
    for (std::size_t c = 0; c < rows.size(); ++c) {
      jobs[c].row_begin = row;
      jobs[c].row_count = rows[c];
      row += rows[c];
    }
  }

  Timer parallel_timer;
  // Grain 1: chunks are few and heavy, so every dispatch should be
  // stealable — a coarser grain serializes whole chunk runs behind one
  // worker, which is exactly the collapse the scaling bench guards.
  pool.parallel_for(
      0, jobs.size(),
      [&](std::size_t c) {
        ChunkJob& job = jobs[c];
        Timer chunk_timer;
        const auto values = field.values().subspan(job.row_begin * plane,
                                                   job.row_count * plane);
        data::Field chunk{field.name(),
                          chunk_dims(field.dims(), job.row_count),
                          std::vector<float>(values.begin(), values.end())};
        job.result = codec.compress(chunk, bound);
        job.seconds = chunk_timer.elapsed();
      },
      /*grain=*/1);
  const Seconds parallel_seconds = parallel_timer.elapsed();

  ByteWriter frame;
  frame.write_u32(kFrameMagic);
  frame.write_u8(kFrameVersion);
  frame.write_string(codec.name());
  frame.write_u8(static_cast<std::uint8_t>(field.dims().rank()));
  for (std::size_t e : field.dims().extents()) {
    frame.write_u64(e);
  }
  frame.write_string(field.name());
  frame.write_u32(static_cast<std::uint32_t>(jobs.size()));
  for (auto& job : jobs) {
    if (!job.result.has_value()) {
      return job.result.status();
    }
    frame.write_u64(job.row_count);
    frame.write_u64(job.result->container.size());
    frame.write_bytes(job.result->container);
  }

  CompressResult result;
  result.container = frame.finish();
  result.input_bytes = field.size_bytes();
  result.output_bytes = Bytes{result.container.size()};
  result.native_wall_time = timer.elapsed();
  if (options.stats != nullptr) {
    ParallelStats& stats = *options.stats;
    stats.chunk_seconds.clear();
    stats.chunk_seconds.reserve(jobs.size());
    for (const auto& job : jobs) {
      stats.chunk_seconds.push_back(job.seconds);
    }
    stats.parallel_seconds = parallel_seconds;
    stats.total_seconds = result.native_wall_time;
    stats.serial_seconds =
        Seconds{std::max(0.0, stats.total_seconds.seconds() -
                                  parallel_seconds.seconds())};
  }
  return result;
}

Expected<DecompressResult> parallel_decompress(
    const Compressor& codec, std::span<const std::uint8_t> frame,
    ThreadPool& pool) {
  Timer timer;
  ByteReader r{frame};
  auto magic = r.read_u32();
  if (!magic || *magic != kFrameMagic) {
    return Status::corrupt_data("parallel frame: bad magic");
  }
  auto version = r.read_u8();
  if (!version || *version != kFrameVersion) {
    return Status::unsupported("parallel frame: unknown version");
  }
  auto codec_name = r.read_string();
  if (!codec_name) {
    return codec_name.status();
  }
  if (*codec_name != codec.name()) {
    return Status::invalid_argument("parallel frame: codec mismatch (" +
                                    *codec_name + ")");
  }
  auto rank = r.read_u8();
  if (!rank || *rank == 0 || *rank > 4) {
    return Status::corrupt_data("parallel frame: bad rank");
  }
  std::vector<std::size_t> extents;
  std::uint64_t elements = 1;
  for (std::uint8_t i = 0; i < *rank; ++i) {
    auto e = r.read_u64();
    if (!e || *e == 0) {
      return Status::corrupt_data("parallel frame: bad extent");
    }
    if (*e > kMaxContainerElements ||
        elements > kMaxContainerElements / *e) {
      return Status::corrupt_data("parallel frame: dims exceed element limit");
    }
    elements *= *e;
    extents.push_back(static_cast<std::size_t>(*e));
  }
  const data::Dims dims{std::move(extents)};
  auto field_name = r.read_string();
  if (!field_name) {
    return field_name.status();
  }
  auto chunk_count = r.read_u32();
  if (!chunk_count || *chunk_count == 0) {
    return Status::corrupt_data("parallel frame: no chunks");
  }

  struct ChunkSlot {
    std::size_t row_begin = 0;
    std::size_t row_count = 0;
    std::span<const std::uint8_t> bytes;
    Expected<DecompressResult> result{Status::internal("not run")};
  };
  std::vector<ChunkSlot> slots(*chunk_count);
  std::size_t row = 0;
  for (auto& slot : slots) {
    auto rows_here = r.read_u64();
    auto size = r.read_u64();
    if (!rows_here || !size) {
      return Status::corrupt_data("parallel frame: truncated chunk header");
    }
    auto bytes = r.read_bytes(static_cast<std::size_t>(*size));
    if (!bytes) {
      return bytes.status();
    }
    slot.row_begin = row;
    slot.row_count = static_cast<std::size_t>(*rows_here);
    slot.bytes = *bytes;
    row += slot.row_count;
  }
  if (row != dims.extent(0)) {
    return Status::corrupt_data("parallel frame: chunk rows do not sum to dims");
  }

  pool.parallel_for(0, slots.size(), [&](std::size_t c) {
    slots[c].result = codec.decompress(slots[c].bytes);
  });

  const std::size_t plane = plane_elements(dims);
  std::vector<float> values(dims.element_count());
  for (auto& slot : slots) {
    if (!slot.result.has_value()) {
      return slot.result.status();
    }
    const auto& chunk_field = slot.result->field;
    if (chunk_field.element_count() != slot.row_count * plane) {
      return Status::corrupt_data("parallel frame: chunk size mismatch");
    }
    std::copy(chunk_field.values().begin(), chunk_field.values().end(),
              values.begin() +
                  static_cast<std::ptrdiff_t>(slot.row_begin * plane));
  }

  DecompressResult result;
  result.field = data::Field{*field_name, dims, std::move(values)};
  result.native_wall_time = timer.elapsed();
  return result;
}

}  // namespace lcp::compress
